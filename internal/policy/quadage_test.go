package policy

import (
	"testing"
	"testing/quick"
)

// allEvictable is the common no-restriction mask (covers any test way count).
var allEvictable = AllWays(64)

// evenWays restricts eviction to even way indices.
var evenWays = func() Mask {
	var m Mask
	for w := 0; w < 64; w += 2 {
		m |= 1 << uint(w)
	}
	return m
}()

// maskOf converts a per-way bool slice into an evictability mask.
func maskOf(ok []bool) Mask {
	var m Mask
	for w, v := range ok {
		if v {
			m |= Mask(1) << uint(w)
		}
	}
	return m
}

// fillSet fills ways 0..n-1 with loads.
func fillSet(s SetState, n int) {
	for w := 0; w < n; w++ {
		s.OnFill(w, ClassLoad)
	}
}

func TestQuadAgeInsertionAges(t *testing.T) {
	q := NewQuadAge()
	s := q.NewSet(4)
	s.OnFill(0, ClassLoad)
	s.OnFill(1, ClassNTA)
	s.OnFill(2, ClassT0)
	s.OnFill(3, ClassHW)
	ages := s.Snapshot()
	want := []int{2, 3, 2, 2}
	for w := range want {
		if ages[w] != want[w] {
			t.Errorf("way %d age = %d, want %d", w, ages[w], want[w])
		}
	}
}

// TestQuadAgeFigure1 replays the request sequence of Figure 1 in the paper
// — a hit on l1, then misses on l6 and l7 that the caption says evict l0
// and then l1 — and checks every intermediate set state. For l6 to evict l0
// via an aging pass and l7 to then evict l1 directly, the initial ages must
// be l0:2 l1:3 l2:0 l3:2 l4:1 l5:1.
func TestQuadAgeFigure1(t *testing.T) {
	q := NewQuadAge()
	s := q.NewSet(6)
	// Build the initial state: NTA fill yields age 3, load fill age 2,
	// demand hits decrement.
	build := []struct {
		cls  AccessClass
		hits int
	}{
		{ClassLoad, 0}, // l0: 2
		{ClassNTA, 0},  // l1: 3
		{ClassLoad, 2}, // l2: 0
		{ClassLoad, 0}, // l3: 2
		{ClassLoad, 1}, // l4: 1
		{ClassLoad, 1}, // l5: 1
	}
	for w, b := range build {
		s.OnFill(w, b.cls)
		for i := 0; i < b.hits; i++ {
			s.OnHit(w, ClassLoad)
		}
	}
	check := func(step string, want []int) {
		t.Helper()
		got := s.Snapshot()
		for w := range want {
			if got[w] != want[w] {
				t.Fatalf("%s: way %d age = %d, want %d (full: %v)", step, w, got[w], want[w], got)
			}
		}
	}
	check("initial", []int{2, 3, 0, 2, 1, 1})

	// Load l1 hits in the LLC: its age drops 3 -> 2.
	s.OnHit(1, ClassLoad)
	check("after hit l1", []int{2, 2, 0, 2, 1, 1})

	// Load l6 misses: no way has age 3 -> one aging pass -> l0 and l1
	// (and l3) reach 3 -> the first in scan order, way 0 (l0), is
	// evicted; l6 fills with age 2.
	v := s.Victim(allEvictable)
	if v != 0 {
		t.Fatalf("victim = way %d, want way 0 (l0)", v)
	}
	s.OnInvalidate(v)
	s.OnFill(v, ClassLoad)
	check("after miss l6", []int{2, 3, 1, 3, 2, 2})

	// Load l7 misses: way 1 (l1) is the first way at age 3 -> evicted
	// directly, no aging pass.
	v = s.Victim(allEvictable)
	if v != 1 {
		t.Fatalf("victim = way %d, want way 1 (l1)", v)
	}
	s.OnInvalidate(v)
	s.OnFill(v, ClassLoad)
	check("after miss l7", []int{2, 2, 1, 3, 2, 2})
}

func TestQuadAgeNTAHitDoesNotUpdate(t *testing.T) {
	q := NewQuadAge()
	s := q.NewSet(4)
	fillSet(s, 4)
	s.OnFill(2, ClassNTA) // way 2 at age 3
	if s.Snapshot()[2] != 3 {
		t.Fatal("NTA fill should insert at age 3")
	}
	s.OnHit(2, ClassNTA)
	if got := s.Snapshot()[2]; got != 3 {
		t.Fatalf("NTA hit changed age to %d; Property #2 says it must stay 3", got)
	}
	s.OnHit(2, ClassLoad)
	if got := s.Snapshot()[2]; got != 2 {
		t.Fatalf("demand hit should decrement age to 2, got %d", got)
	}
	// Ablation switch: NTAHitUpdates makes NTA hits behave like loads.
	q2 := &QuadAge{LoadAge: 2, NTAAge: 3, HWAge: 2, MaxAge: 3, NTAHitUpdates: true}
	s2 := q2.NewSet(2)
	s2.OnFill(0, ClassNTA)
	s2.OnHit(0, ClassNTA)
	if got := s2.Snapshot()[0]; got != 2 {
		t.Fatalf("with NTAHitUpdates, NTA hit should decrement age, got %d", got)
	}
}

func TestQuadAgeNTAIsImmediateCandidate(t *testing.T) {
	// Property #1 consequence: wherever the NTA line sits, it is evicted
	// next (Figure 2's experiment at policy level).
	for pos := 0; pos < 8; pos++ {
		q := NewQuadAge()
		s := q.NewSet(8)
		for w := 0; w < 8; w++ {
			if w == pos {
				s.OnFill(w, ClassNTA)
			} else {
				s.OnFill(w, ClassLoad)
			}
		}
		if v := s.Victim(allEvictable); v != pos {
			t.Errorf("NTA at way %d: victim = %d, want %d", pos, v, pos)
		}
	}
}

func TestQuadAgeDemandHitFloorsAtZero(t *testing.T) {
	q := NewQuadAge()
	s := q.NewSet(2)
	s.OnFill(0, ClassLoad)
	for i := 0; i < 5; i++ {
		s.OnHit(0, ClassLoad)
	}
	if got := s.Snapshot()[0]; got != 0 {
		t.Fatalf("age after many hits = %d, want 0", got)
	}
}

func TestQuadAgeVictimScanOrder(t *testing.T) {
	// Two age-3 ways: the first in scan order must win.
	q := NewQuadAge()
	s := q.NewSet(4)
	fillSet(s, 4)
	s.OnFill(1, ClassNTA)
	s.OnFill(3, ClassNTA)
	if v := s.Victim(allEvictable); v != 1 {
		t.Fatalf("victim = %d, want 1 (first age-3 way)", v)
	}
}

func TestQuadAgeVictimSkipsInFlight(t *testing.T) {
	q := NewQuadAge()
	s := q.NewSet(4)
	fillSet(s, 4)
	s.OnFill(1, ClassNTA)
	// Way 1 is the candidate but is in flight: the policy must pick
	// another way rather than stall forever.
	v := s.Victim(allEvictable.Without(1))
	if v == 1 {
		t.Fatal("picked an in-flight way")
	}
	if v < 0 {
		t.Fatal("no victim found although three ways are evictable")
	}
	// Nothing evictable: -1.
	if v := s.Victim(Mask(0)); v != -1 {
		t.Fatalf("victim with nothing evictable = %d, want -1", v)
	}
}

func TestQuadAgeAgingPass(t *testing.T) {
	q := NewQuadAge()
	s := q.NewSet(3)
	fillSet(s, 3) // all at age 2
	s.OnHit(1, ClassLoad)
	s.OnHit(1, ClassLoad) // way 1 at 0
	v := s.Victim(allEvictable)
	if v != 0 {
		t.Fatalf("victim = %d, want 0", v)
	}
	// One aging pass must have happened: 2,0,2 -> 3,1,3.
	want := []int{3, 1, 3}
	got := s.Snapshot()
	for w := range want {
		if got[w] != want[w] {
			t.Fatalf("post-aging ages = %v, want %v", got, want)
		}
	}
}

func TestQuadAgeCountermeasure(t *testing.T) {
	q := NewQuadAgeCountermeasure()
	s := q.NewSet(4)
	s.OnFill(0, ClassLoad)
	s.OnFill(1, ClassNTA)
	ages := s.Snapshot()
	if ages[0] != 1 || ages[1] != 2 {
		t.Fatalf("countermeasure ages = %v, want load=1 nta=2", ages[:2])
	}
	// An NTA line is no longer guaranteed to be the next victim: a line
	// already at age 3 beats it.
	s.OnFill(2, ClassLoad)
	s.OnFill(3, ClassLoad)
	// Age way 3 to 3 by three aging passes through eviction attempts is
	// complex; instead verify simply that the NTA way is NOT at max age.
	if ages[1] >= q.MaxAge {
		t.Fatal("countermeasure should not insert NTA at max age")
	}
}

func TestQuadAgeSnapshotIsCopy(t *testing.T) {
	q := NewQuadAge()
	s := q.NewSet(2)
	s.OnFill(0, ClassLoad)
	snap := s.Snapshot()
	snap[0] = 99
	if s.Snapshot()[0] == 99 {
		t.Fatal("Snapshot aliases internal state")
	}
}

// TestQuadAgeInvariants is a property test: under arbitrary operation
// sequences, ages stay in [-1, MaxAge] and Victim (when anything is
// evictable) returns a valid way.
func TestQuadAgeInvariants(t *testing.T) {
	q := NewQuadAge()
	f := func(ops []uint8) bool {
		const ways = 8
		s := q.NewSet(ways)
		valid := make([]bool, ways)
		for _, op := range ops {
			w := int(op) % ways
			switch (op / 8) % 4 {
			case 0:
				s.OnFill(w, ClassLoad)
				valid[w] = true
			case 1:
				s.OnFill(w, ClassNTA)
				valid[w] = true
			case 2:
				if valid[w] {
					s.OnHit(w, ClassLoad)
				}
			case 3:
				s.OnInvalidate(w)
				valid[w] = false
			}
			for way, age := range s.Snapshot() {
				if age < -1 || age > q.MaxAge {
					return false
				}
				if valid[way] && age < 0 {
					return false
				}
			}
			anyValid := false
			for _, v := range valid {
				anyValid = anyValid || v
			}
			if anyValid {
				v := s.Victim(maskOf(valid[:]))
				if v < 0 || v >= ways || !valid[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
