package trace

import (
	"bufio"
	"io"
	"strconv"
)

// Exporters. Both renderings are hand-assembled (no reflection, no maps in
// the output path) so a trace file is byte-identical for a given event
// stream — the property the -jobs determinism checks diff for.
//
// Chrome trace-event JSON (the "JSON Array Format" Perfetto and
// chrome://tracing load): each Buffer becomes one process (pid), each
// agent within it one thread (tid), hier events without an agent land on
// per-core tracks, and each cache level gets a counter track fed by the
// cumulative hit/miss/fill/eviction counts over virtual time. Timestamps
// are virtual cycles written into the format's microsecond field; the
// scale is arbitrary but consistent, which is all a virtual clock needs.

// jw is a minimal deterministic JSON writer.
type jw struct {
	w     *bufio.Writer
	buf   []byte
	first bool // no comma needed before the next element
}

func newJW(w io.Writer) *jw { return &jw{w: bufio.NewWriterSize(w, 1<<16), first: true} }

func (j *jw) raw(s string) { j.w.WriteString(s) }

// elem starts a new array element, inserting the separator.
func (j *jw) elem() {
	if !j.first {
		j.w.WriteString(",\n")
	}
	j.first = false
}

func (j *jw) str(s string)  { j.buf = strconv.AppendQuote(j.buf[:0], s); j.w.Write(j.buf) }
func (j *jw) int(v int64)   { j.buf = strconv.AppendInt(j.buf[:0], v, 10); j.w.Write(j.buf) }
func (j *jw) uint(v uint64) { j.buf = strconv.AppendUint(j.buf[:0], v, 10); j.w.Write(j.buf) }

// field writes a comma-prefixed string field.
func (j *jw) field(name, val string) {
	j.raw(",")
	j.str(name)
	j.raw(":")
	j.str(val)
}

func (j *jw) fieldInt(name string, v int64) {
	j.raw(",")
	j.str(name)
	j.raw(":")
	j.int(v)
}

// trackKey returns the thread-track identity for an event within its
// process: the agent when known, otherwise the core, otherwise the
// machine-wide track.
func trackKey(e Event) string {
	if e.Agent != "" {
		return e.Agent
	}
	if e.Core >= 0 {
		return "core-" + strconv.Itoa(e.Core)
	}
	return "machine"
}

// argPairs appends the kind-specific argument fields of e.
func argPairs(j *jw, e Event) {
	if e.Level != "" {
		j.field("level", e.Level)
	}
	if e.Slice >= 0 {
		j.fieldInt("slice", int64(e.Slice))
	}
	if e.Set >= 0 {
		j.fieldInt("set", int64(e.Set))
	}
	if e.Way >= 0 {
		j.fieldInt("way", int64(e.Way))
	}
	if e.AgeBefore >= 0 {
		j.fieldInt("age_before", int64(e.AgeBefore))
	}
	if e.AgeAfter >= 0 {
		j.fieldInt("age_after", int64(e.AgeAfter))
	}
	if e.Addr != 0 {
		j.raw(",")
		j.str("addr")
		j.raw(":")
		j.uint(e.Addr)
	}
	if e.Slot >= 0 {
		j.fieldInt("slot", int64(e.Slot))
	}
	if e.Bit >= 0 {
		j.fieldInt("bit", int64(e.Bit))
	}
	if e.Lat != 0 {
		j.fieldInt("lat", e.Lat)
	}
	if e.Dur != 0 {
		j.fieldInt("dur", e.Dur)
	}
	if e.Val != 0 {
		j.fieldInt("val", e.Val)
	}
	if e.Note != "" {
		j.field("note", e.Note)
	}
}

// levelCounters is the cumulative per-level counter state of one process.
type levelCounters struct {
	hits, misses, fills, evicts int64
}

// WriteChromeTrace renders the buffers as Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, bufs []*Buffer) error {
	j := newJW(w)
	j.raw("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")

	for bi, b := range bufs {
		pid := int64(bi + 1)

		// Process metadata.
		j.elem()
		j.raw(`{"name":"process_name","ph":"M","pid":`)
		j.int(pid)
		j.raw(`,"tid":0,"args":{"name":`)
		j.str(b.label)
		j.raw("}}")

		// Thread tracks in first-appearance order (deterministic: the
		// event stream itself is).
		tids := map[string]int64{}
		var order []string
		for _, e := range b.events {
			k := trackKey(e)
			if _, ok := tids[k]; !ok {
				tids[k] = int64(len(order) + 1)
				order = append(order, k)
			}
		}
		for _, k := range order {
			j.elem()
			j.raw(`{"name":"thread_name","ph":"M","pid":`)
			j.int(pid)
			j.raw(`,"tid":`)
			j.int(tids[k])
			j.raw(`,"args":{"name":`)
			j.str(k)
			j.raw("}}")
		}

		counters := map[string]*levelCounters{}
		for _, e := range b.events {
			j.elem()
			j.raw(`{"name":`)
			j.str(e.Pkg + ":" + e.Kind)
			if e.Dur > 0 {
				j.raw(`,"ph":"X","dur":`)
				j.int(e.Dur)
			} else {
				j.raw(`,"ph":"i","s":"t"`)
			}
			j.raw(`,"ts":`)
			j.int(e.Time)
			j.raw(`,"pid":`)
			j.int(pid)
			j.raw(`,"tid":`)
			j.int(tids[trackKey(e)])
			j.raw(`,"cat":`)
			j.str(e.Pkg)
			j.raw(`,"args":{"_":0`)
			argPairs(j, e)
			j.raw("}}")

			// Counter track per cache level, advanced by every hier event.
			if e.Pkg == "hier" && e.Level != "" {
				c := counters[e.Level]
				if c == nil {
					c = &levelCounters{}
					counters[e.Level] = c
				}
				switch e.Kind {
				case "hit":
					c.hits++
				case "miss":
					c.misses++
				case "fill":
					c.fills++
				case "evict":
					c.evicts++
				}
				j.elem()
				j.raw(`{"name":`)
				j.str(e.Level)
				j.raw(`,"ph":"C","ts":`)
				j.int(e.Time)
				j.raw(`,"pid":`)
				j.int(pid)
				j.raw(`,"args":{"hits":`)
				j.int(c.hits)
				j.raw(`,"misses":`)
				j.int(c.misses)
				j.raw(`,"fills":`)
				j.int(c.fills)
				j.raw(`,"evictions":`)
				j.int(c.evicts)
				j.raw("}}")
			}
		}
	}
	j.raw("\n]}\n")
	return j.w.Flush()
}

// WriteJSONL renders the buffers as one JSON object per line: a stream
// header per buffer ({"stream": label}) followed by its events. The
// format is grep-friendly and an order of magnitude smaller than the
// Chrome rendering.
func WriteJSONL(w io.Writer, bufs []*Buffer) error {
	j := newJW(w)
	for _, b := range bufs {
		j.raw(`{"stream":`)
		j.str(b.label)
		j.raw(`,"events":`)
		j.int(int64(len(b.events)))
		j.raw("}\n")
		for _, e := range b.events {
			j.raw(`{"ts":`)
			j.int(e.Time)
			j.field("pkg", e.Pkg)
			j.field("kind", e.Kind)
			if e.Agent != "" {
				j.field("agent", e.Agent)
			}
			if e.Core >= 0 {
				j.fieldInt("core", int64(e.Core))
			}
			argPairs(j, e)
			j.raw("}\n")
		}
	}
	return j.w.Flush()
}
