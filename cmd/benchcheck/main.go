// Command benchcheck is the CI perf-regression gate: it runs the pinned
// microbenchmark set and compares ns/op and allocs/op against the committed
// baselines in BENCH.json ("gates" section).
//
//	go run ./cmd/benchcheck             # check against baselines
//	go run ./cmd/benchcheck -update     # refresh baselines from this host
//	go run ./cmd/benchcheck -inflate 2  # sanity-check the gate itself: a
//	                                    # synthetic 2x slowdown must fail
//
// A benchmark fails the gate when its measured ns/op exceeds the baseline by
// more than the tolerance (default ±20%), or when its allocs/op exceeds the
// committed ceiling (allocation counts are deterministic, so no tolerance).
// Improvements beyond the tolerance are reported as stale baselines but do
// not fail the build; run -update to re-pin them.
//
// Benchmarks run with fixed iteration counts (-benchtime Nx) so short CI
// runs measure identical work on every invocation. Shared runners see
// seconds-long speed excursions that one sample cannot average away, so a
// gate that fails its first measurement is re-measured (up to -retries extra
// attempts) and passes if any attempt lands inside the tolerance; a genuine
// regression fails every attempt.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// gate is one pinned benchmark in BENCH.json. CalNs is the reference
// workload's time measured immediately before this gate's benchmark ran on
// the pinning host: the check compares ns_per_op/cal_ns ratios, a
// dimensionless cost that cancels host-speed differences (CPU steal,
// frequency scaling, a different CI runner) which would otherwise swamp a
// ±20% gate.
type gate struct {
	Bench       string  `json:"bench"`
	Package     string  `json:"package"`
	Benchtime   string  `json:"benchtime"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	CalNs       float64 `json:"cal_ns"`
}

// gatesSection is BENCH.json's "gates" object.
type gatesSection struct {
	TolerancePct float64 `json:"tolerance_pct"`
	Entries      []gate  `json:"entries"`
}

// benchFile mirrors BENCH.json so -update can rewrite the gates without
// disturbing the narrative sections.
type benchFile struct {
	Date              string         `json:"date"`
	Host              map[string]any `json:"host"`
	KernelSpeedup     map[string]any `json:"kernel_speedup,omitempty"`
	BatchKernel       map[string]any `json:"batch_kernel,omitempty"`
	Benchmarks        map[string]any `json:"benchmarks"`
	Speedups          map[string]any `json:"speedups,omitempty"`
	TraceOverhead     map[string]any `json:"trace_overhead,omitempty"`
	TelemetryOverhead map[string]any `json:"telemetry_overhead,omitempty"`
	Determinism       string         `json:"determinism,omitempty"`
	Gates             gatesSection   `json:"gates"`
}

// benchLine matches one `go test -bench` result line, with or without the
// -GOMAXPROCS suffix and with optional custom metrics between ns/op and the
// -benchmem columns.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(?:.*?\s([0-9]+) allocs/op)?`)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		path      = flag.String("baseline", "BENCH.json", "baseline file to check or update")
		update    = flag.Bool("update", false, "rewrite the baselines from this host's measurements")
		tolerance = flag.Float64("tolerance", 0, "override ns/op tolerance percentage (0 = use the file's)")
		inflate   = flag.Float64("inflate", 1, "multiply measured ns/op (gate self-test: -inflate 2 must fail)")
		retries   = flag.Int("retries", 3, "extra measurement attempts for gates that fail (noise guard)")
	)
	flag.Parse()

	raw, err := os.ReadFile(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return 2
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: parse %s: %v\n", *path, err)
		return 2
	}
	if len(bf.Gates.Entries) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %s has no gates\n", *path)
		return 2
	}
	tol := bf.Gates.TolerancePct
	if *tolerance > 0 {
		tol = *tolerance
	}

	measured, err := runBenchmarks(bf.Gates.Entries)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return 2
	}

	if *update {
		var rows []summaryRow
		for i := range bf.Gates.Entries {
			g := &bf.Gates.Entries[i]
			m, ok := measured[g.Bench]
			if !ok {
				fmt.Fprintf(os.Stderr, "benchcheck: %s produced no result\n", g.Bench)
				return 2
			}
			rows = append(rows, summaryRow{
				bench: g.Bench, status: "repinned",
				baseline: g.NsPerOp, measured: m.ns,
				delta:  (m.ns/g.NsPerOp - 1) * 100,
				allocs: m.allocs, maxAllocs: g.AllocsPerOp,
			})
			g.NsPerOp = m.ns
			g.AllocsPerOp = m.allocs
			g.CalNs = m.cal
		}
		writeStepSummary("benchcheck: re-pinned baselines", rows)
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetEscapeHTML(false) // keep "->" in narrative strings readable
		enc.SetIndent("", "  ")
		if err := enc.Encode(&bf); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			return 2
		}
		if err := os.WriteFile(*path, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			return 2
		}
		fmt.Printf("benchcheck: rewrote %d baselines in %s\n", len(bf.Gates.Entries), *path)
		return 0
	}

	failed := false
	maxAttempts := 1 + *retries
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	// latest holds each gate's most recent evaluation; re-measured gates
	// overwrite their first noisy sample, so the job summary shows the
	// verdict attempt.
	latest := map[string]summaryRow{}
	pending := bf.Gates.Entries
	for attempt := 1; ; attempt++ {
		var still []gate
		for _, g := range pending {
			m, ok := measured[g.Bench]
			if !ok {
				fmt.Printf("FAIL  %-28s no result (renamed or removed?)\n", g.Bench)
				latest[g.Bench] = summaryRow{bench: g.Bench, status: "FAIL (no result)"}
				failed = true
				continue
			}
			row := evaluate(g, m, tol, *inflate)
			latest[g.Bench] = row
			if row.status == "FAIL" {
				still = append(still, g)
			}
		}
		if len(still) == 0 || attempt == maxAttempts {
			failed = failed || len(still) > 0
			break
		}
		fmt.Printf("benchcheck: %d gate(s) outside tolerance; re-measuring (attempt %d of %d)\n",
			len(still), attempt+1, maxAttempts)
		measured, err = runBenchmarks(still)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			return 2
		}
		pending = still
	}
	rows := make([]summaryRow, 0, len(bf.Gates.Entries))
	for _, g := range bf.Gates.Entries {
		if row, ok := latest[g.Bench]; ok {
			rows = append(rows, row)
		}
	}
	if failed {
		writeStepSummary(fmt.Sprintf("benchcheck: FAILED (tolerance ±%.0f%%)", tol), rows)
		fmt.Printf("benchcheck: FAILED (tolerance ±%.0f%%, %d attempts); if intentional, re-pin with `go run ./cmd/benchcheck -update`\n", tol, maxAttempts)
		return 1
	}
	writeStepSummary(fmt.Sprintf("benchcheck: all %d gates within ±%.0f%%", len(bf.Gates.Entries), tol), rows)
	fmt.Printf("benchcheck: all %d gates within ±%.0f%%\n", len(bf.Gates.Entries), tol)
	return 0
}

// summaryRow is one gate's outcome for the CI job summary: the (scaled)
// baseline it was held against, what was measured, and the verdict.
type summaryRow struct {
	bench     string
	status    string
	baseline  float64 // scaled baseline ns/op (or pinned ns/op in -update)
	measured  float64 // measured ns/op
	delta     float64 // percent vs baseline
	allocs    int64
	maxAllocs int64
}

// writeStepSummary appends a markdown before/after table to the file named
// by $GITHUB_STEP_SUMMARY, the GitHub Actions job-summary sink. Outside CI
// (variable unset) it does nothing; write errors are reported but never
// change the gate's exit status.
func writeStepSummary(title string, rows []summaryRow) {
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" || len(rows) == 0 {
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s\n\n", title)
	sb.WriteString("| benchmark | baseline ns/op | measured ns/op | Δ | allocs/op (max) | status |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "| %s | %.0f | %.0f | %+.1f%% | %d (%d) | %s |\n",
			r.bench, r.baseline, r.measured, r.delta, r.allocs, r.maxAllocs, r.status)
	}
	sb.WriteString("\n")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck: step summary:", err)
		return
	}
	defer f.Close()
	if _, err := f.WriteString(sb.String()); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck: step summary:", err)
	}
}

// evaluate prints one gate's result line and returns its summary row.
func evaluate(g gate, m result, tol, inflate float64) summaryRow {
	ns := m.ns * inflate
	// Host-speed factor for this gate's invocation window, clamped: a
	// factor outside [0.25, 4] means calibration itself is broken, and
	// scaling that far would make the gate meaningless either way.
	scale := 1.0
	if g.CalNs > 0 && m.cal > 0 {
		scale = m.cal / g.CalNs
		if scale < 0.25 {
			scale = 0.25
		} else if scale > 4 {
			scale = 4
		}
	}
	ratio := ns / (g.NsPerOp * scale)
	status := "ok  "
	switch {
	// The same tolerance applies to allocations, which keeps 0-alloc
	// gates exact (0 * anything = 0) while giving the macro gates'
	// engine-internal counts a little slack.
	case float64(m.allocs) > float64(g.AllocsPerOp)*(1+tol/100):
		status = "FAIL"
	case ratio > 1+tol/100:
		status = "FAIL"
	case ratio < 1-tol/100:
		status = "note" // faster than baseline: stale, not fatal
	}
	fmt.Printf("%s  %-28s %10.1f ns/op (scaled baseline %10.1f, %+.0f%%)  %d allocs/op (max %d)\n",
		status, g.Bench, ns, g.NsPerOp*scale, (ratio-1)*100, m.allocs, g.AllocsPerOp)
	return summaryRow{
		bench: g.Bench, status: strings.TrimSpace(status),
		baseline: g.NsPerOp * scale, measured: ns, delta: (ratio - 1) * 100,
		allocs: m.allocs, maxAllocs: g.AllocsPerOp,
	}
}

// result is one measured benchmark, plus the reference-workload time
// sampled just before its invocation.
type result struct {
	ns     float64
	allocs int64
	cal    float64
}

// calSink defeats dead-code elimination of the calibration loop.
var calSink uint64

// calibrate times a fixed pure-ALU workload (an LCG chain, serially
// dependent so the compiler cannot vectorize it away) and returns the best
// of three runs in nanoseconds. It runs immediately before each benchmark
// invocation so the sample shares that invocation's host-speed window; the
// benchmarks under test are L1-resident, so they track core speed the same
// way this loop does.
func calibrate() float64 {
	best := 0.0
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		x := uint64(rep + 1)
		for i := 0; i < 50_000_000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
		}
		calSink += x
		el := float64(time.Since(start).Nanoseconds())
		if best == 0 || el < best {
			best = el
		}
	}
	return best
}

// runBenchmarks executes the gate set, one `go test` per (package,
// benchtime) group, and parses the results.
func runBenchmarks(gates []gate) (map[string]result, error) {
	type groupKey struct{ pkg, benchtime string }
	groups := map[groupKey][]string{}
	for _, g := range gates {
		k := groupKey{g.Package, g.Benchtime}
		groups[k] = append(groups[k], g.Bench)
	}
	keys := make([]groupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pkg != keys[j].pkg {
			return keys[i].pkg < keys[j].pkg
		}
		return keys[i].benchtime < keys[j].benchtime
	})

	out := map[string]result{}
	for _, k := range keys {
		cal := calibrate()
		pattern := "^(" + strings.Join(groups[k], "|") + ")$"
		// -count 5, median per benchmark: fixed iteration counts make each
		// repetition measure identical work, and the median damps both
		// one-off stalls and brief frequency excursions. Allocation counts
		// are near-deterministic; the max is kept so growth trips the gate.
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
			"-benchtime", k.benchtime, "-count", "5", "-benchmem", k.pkg)
		raw, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("go test -bench %s %s: %v\n%s", pattern, k.pkg, err, raw)
		}
		samples := map[string][]float64{}
		for _, line := range strings.Split(string(raw), "\n") {
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("parse ns/op in %q: %v", line, err)
			}
			var allocs int64
			if m[3] != "" {
				allocs, _ = strconv.ParseInt(m[3], 10, 64)
			}
			samples[m[1]] = append(samples[m[1]], ns)
			if prev, seen := out[m[1]]; !seen || allocs > prev.allocs {
				out[m[1]] = result{allocs: allocs}
			}
		}
		for name, ns := range samples {
			sort.Float64s(ns)
			r := out[name]
			r.ns = ns[len(ns)/2]
			r.cal = cal
			out[name] = r
		}
	}
	return out, nil
}
