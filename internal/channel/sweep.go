package channel

import (
	"fmt"
	"math/rand"

	"leakyway/internal/hier"
	"leakyway/internal/sim"
	"leakyway/internal/trace"
)

// Runner is a channel implementation: NTP+NTP or Prime+Probe.
type Runner func(m *sim.Machine, cfg Config, msg []bool) (Report, []bool)

// SweepResult is one Figure 8 curve: reports across raw transmission rates
// (one per interval), for a single channel on a single platform.
type SweepResult struct {
	Channel  string
	Platform string
	Points   []Report
}

// Peak returns the report with the highest channel capacity — the Table II
// number.
func (s SweepResult) Peak() Report {
	var best Report
	for _, p := range s.Points {
		if p.CapacityKBps > best.CapacityKBps {
			best = p
		}
	}
	return best
}

// ParallelFor runs fn(0), ..., fn(n-1); implementations may run the
// calls concurrently, so fn must only write to per-index state. A nil
// ParallelFor means a plain serial loop.
type ParallelFor func(n int, fn func(i int))

// Sweep measures a channel across transmission intervals on fresh machines
// (same platform and seed each point, so points differ only in rate). bits
// is the message length per point.
func Sweep(platform hier.Config, run Runner, base Config, intervals []int64, bits int, seed int64) SweepResult {
	return SweepPar(platform, run, base, intervals, bits, seed, nil)
}

// SweepPar is Sweep with the points fanned out through pf. Every point
// runs on its own fresh machine with the same seed and message, so the
// sweep is embarrassingly parallel and its result is identical to the
// serial Sweep's for any schedule.
func SweepPar(platform hier.Config, run Runner, base Config, intervals []int64, bits int, seed int64, pf ParallelFor) SweepResult {
	return SweepTraced(platform, run, base, intervals, bits, seed, pf, nil)
}

// SweepTraced is SweepPar with an optional per-point tracer factory: tf(i)
// returns the tracer attached to point i's machine (nil to leave the point
// untraced). The factory is called before the points fan out, so tracer
// registration order — and therefore the trace output — is independent of
// the parallel schedule.
func SweepTraced(platform hier.Config, run Runner, base Config, intervals []int64, bits int, seed int64, pf ParallelFor, tf func(i int) *trace.Tracer) SweepResult {
	var trials sim.TrialFor
	if pf != nil {
		trials = func(n int, body func(i int, src sim.MachineSource)) {
			pf(n, func(i int) { body(i, sim.Scalar()) })
		}
	}
	return SweepBatch(platform, run, base, intervals, bits, seed, trials, tf)
}

// SweepBatch is the kernel-agnostic sweep: each point's machine is built
// through the MachineSource its trial body receives, so the same sweep
// runs on the scalar kernel (a plain loop or Parallel adapter), a
// recycling serial kernel, or the batched lockstep kernel — with
// byte-identical results, since every point uses the same platform, seed
// and message regardless of how its machine was constructed. A nil trials
// kernel runs the points serially on fresh machines.
func SweepBatch(platform hier.Config, run Runner, base Config, intervals []int64, bits int, seed int64, trials sim.TrialFor, tf func(i int) *trace.Tracer) SweepResult {
	if bits <= 0 {
		panic(fmt.Errorf("channel: sweep bit count must be positive, got %d", bits))
	}
	if len(intervals) == 0 {
		panic(fmt.Errorf("channel: sweep needs at least one interval"))
	}
	tracers := make([]*trace.Tracer, len(intervals))
	if tf != nil {
		for i := range intervals {
			tracers[i] = tf(i)
		}
	}
	msg := RandomMessage(bits, seed)
	points := make([]Report, len(intervals))
	body := func(i int, src sim.MachineSource) {
		m := src.NewMachine(platform, 1<<30, seed)
		m.SetTracer(tracers[i])
		cfg := base
		cfg.Interval = intervals[i]
		points[i], _ = run(m, cfg, msg)
	}
	if trials == nil {
		sim.SerialTrials(len(intervals), body)
	} else {
		trials(len(intervals), body)
	}
	var out SweepResult
	out.Points = points
	if len(points) > 0 {
		out.Channel = points[0].Channel
		out.Platform = points[0].Platform
	}
	return out
}

// DefaultIntervals returns the interval grid used for the Figure 8 sweeps:
// dense around the capacity knee, sparser in the tails.
func DefaultIntervals() []int64 {
	return []int64{
		600, 800, 1000, 1100, 1200, 1300, 1400, 1500, 1700,
		2000, 2400, 3000, 4000, 5000, 7000, 10000,
	}
}

// RandomMessage generates a deterministic pseudo-random bit string.
func RandomMessage(n int, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed ^ 0x6d657373))
	msg := make([]bool, n)
	for i := range msg {
		msg[i] = rng.Intn(2) == 1
	}
	return msg
}

// BytesToBits expands data MSB-first, the encoding the examples use.
func BytesToBits(data []byte) []bool {
	out := make([]bool, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			out = append(out, b>>uint(i)&1 == 1)
		}
	}
	return out
}

// BitsToBytes packs bits MSB-first; trailing partial bytes are dropped.
func BitsToBytes(bits []bool) []byte {
	out := make([]byte, 0, len(bits)/8)
	for i := 0; i+8 <= len(bits); i += 8 {
		var b byte
		for j := 0; j < 8; j++ {
			b <<= 1
			if bits[i+j] {
				b |= 1
			}
		}
		out = append(out, b)
	}
	return out
}

// EncodeRepetition triples every bit — the simple reliability encoding the
// paper alludes to for noisy conditions.
func EncodeRepetition(bits []bool, k int) []bool {
	if k <= 1 {
		return append([]bool(nil), bits...)
	}
	out := make([]bool, 0, len(bits)*k)
	for _, b := range bits {
		for i := 0; i < k; i++ {
			out = append(out, b)
		}
	}
	return out
}

// DecodeRepetition majority-votes k-bit groups.
func DecodeRepetition(bits []bool, k int) []bool {
	if k <= 1 {
		return append([]bool(nil), bits...)
	}
	out := make([]bool, 0, len(bits)/k)
	for i := 0; i+k <= len(bits); i += k {
		ones := 0
		for j := 0; j < k; j++ {
			if bits[i+j] {
				ones++
			}
		}
		out = append(out, ones*2 > k)
	}
	return out
}
