// Package trace is the simulator's structured, seed-deterministic event
// bus. Every subsystem — the cache hierarchy (hier), the scheduler (sim),
// the fault injector (fault) and the covert-channel protocols (channel) —
// emits typed events into a per-machine Tracer; exporters render the
// collected streams as Chrome trace-event JSON (loadable in Perfetto) or
// as compact JSONL, and the diagnostics layer turns channel events into an
// eye-diagram summary with per-bit error attribution.
//
// The design contract is the nil fast path: a nil *Tracer is the disabled
// state, every method is safe on it, and emit sites guard with On() before
// building an Event, so a run without tracing performs zero allocations
// and no measurable extra work. Determinism is inherited from the
// simulator: each Tracer is owned by exactly one sim.Machine, whose agents
// are resumed one at a time in global clock order, so a buffer's event
// sequence is a pure function of the machine's seed. The Collector orders
// buffers by label, never by creation time, which is what keeps a traced
// parallel experiment run byte-identical for any worker count.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Mask selects which subsystems a tracer records.
type Mask uint8

// Subsystem bits. PkgAll is the default when no filter is given.
const (
	PkgHier Mask = 1 << iota
	PkgSim
	PkgFault
	PkgChannel

	PkgAll = PkgHier | PkgSim | PkgFault | PkgChannel
)

// pkgNames maps filter-flag names to bits, in canonical order.
var pkgNames = []struct {
	name string
	bit  Mask
}{
	{"hier", PkgHier},
	{"sim", PkgSim},
	{"fault", PkgFault},
	{"channel", PkgChannel},
}

// ParseMask parses a comma-separated subsystem list ("hier,channel").
// The empty string means everything.
func ParseMask(s string) (Mask, error) {
	if strings.TrimSpace(s) == "" {
		return PkgAll, nil
	}
	var m Mask
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		found := false
		for _, p := range pkgNames {
			if p.name == part {
				m |= p.bit
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("trace: unknown subsystem %q (want a comma-separated subset of hier,sim,fault,channel)", part)
		}
	}
	return m, nil
}

// maskOf returns the bit for an event's Pkg string (0 for unknown).
func maskOf(pkg string) Mask {
	for _, p := range pkgNames {
		if p.name == pkg {
			return p.bit
		}
	}
	return 0
}

// Event is one structured occurrence on the virtual cycle clock. Fields
// beyond Time/Pkg/Kind are kind-specific; integer fields default to -1
// ("not applicable") via E, so zero values like way 0 stay unambiguous.
type Event struct {
	// Time is the virtual cycle at which the event occurred.
	Time int64
	// Pkg is the emitting subsystem: "hier", "sim", "fault" or "channel".
	Pkg string
	// Kind names the event within its subsystem ("fill", "rx-bit", ...).
	Kind string
	// Agent is the simulated agent on whose behalf the event occurred.
	Agent string
	// Core is the physical core involved, -1 when not core-specific.
	Core int

	// Cache-hierarchy placement (hier events).
	Level string // "L1", "L2", "LLC"
	Slice int    // LLC slice, -1 for private levels
	Set   int    // set index
	Way   int    // way index, -1 when unknown (e.g. a miss)
	// AgeBefore and AgeAfter are the replacement ages around the event,
	// -1 when unknown (policy-specific meaning, quad-age for the LLC).
	AgeBefore, AgeAfter int
	// Addr is the physical line address involved (hier events).
	Addr uint64

	// Channel protocol placement.
	Slot int // slot index or frame sequence number, -1 when n/a
	Bit  int // bit value 0/1, -1 when n/a

	// Lat is a measured latency in cycles; Dur a window length; Val a
	// kind-specific scalar (threshold, target core, new interval, ...).
	Lat, Dur, Val int64
	// Note carries short free-form detail (scenario name, CRC error, ...).
	Note string
}

// E starts an event of the given subsystem and kind at cycle t, with all
// placement fields marked not-applicable.
func E(pkg, kind string, t int64) Event {
	return Event{
		Time: t, Pkg: pkg, Kind: kind,
		Core: -1, Slice: -1, Set: -1, Way: -1,
		AgeBefore: -1, AgeAfter: -1, Slot: -1, Bit: -1,
	}
}

// Buffer is one machine's ordered event stream. It is not goroutine-safe:
// a buffer must be fed by a single sim.Machine, whose scheduler serializes
// all agents (the Collector hands out one buffer per label for exactly
// this reason).
type Buffer struct {
	label  string
	events []Event
}

// Label returns the buffer's collector label.
func (b *Buffer) Label() string { return b.label }

// Events returns the recorded events in emission order. The slice is the
// buffer's backing store; callers must not mutate it.
func (b *Buffer) Events() []Event { return b.events }

// EventCounts is the aggregating trace sink: per-subsystem running event
// counters a telemetry consumer (the daemon's progress stream, an online
// detector) can sample at any time while a run is in flight. It folds the
// event bus into four atomic adds instead of a growing buffer, so a
// counting-only traced run costs event construction but no memory growth
// and no locks.
type EventCounts struct {
	hier, sim, fault, channel atomic.Int64
}

// add counts one event of the given subsystem bit.
func (c *EventCounts) add(m Mask) {
	switch m {
	case PkgHier:
		c.hier.Add(1)
	case PkgSim:
		c.sim.Add(1)
	case PkgFault:
		c.fault.Add(1)
	case PkgChannel:
		c.channel.Add(1)
	}
}

// Counts returns the current per-subsystem totals keyed by subsystem name
// (the ParseMask vocabulary). Safe to call concurrently with emits; each
// counter is read once.
func (c *EventCounts) Counts() map[string]int64 {
	if c == nil {
		return nil
	}
	return map[string]int64{
		"hier":    c.hier.Load(),
		"sim":     c.sim.Load(),
		"fault":   c.fault.Load(),
		"channel": c.channel.Load(),
	}
}

// Total returns the event count across all subsystems.
func (c *EventCounts) Total() int64 {
	if c == nil {
		return 0
	}
	return c.hier.Load() + c.sim.Load() + c.fault.Load() + c.channel.Load()
}

// Tracer is the handle emit sites hold. A nil Tracer is the disabled
// state: On reports false and Emit is a no-op, so untraced runs never
// construct events. A tracer records into a buffer, an EventCounts sink,
// or both (counting-only tracers come from NewCountingCollector).
type Tracer struct {
	buf    *Buffer
	mask   Mask
	counts *EventCounts
}

// New returns a standalone tracer recording into a fresh buffer — the
// entry point for library users tracing a single machine outside the
// experiment engine.
func New(label string, mask Mask) *Tracer {
	return &Tracer{buf: &Buffer{label: label}, mask: mask}
}

// On reports whether any of the given subsystem bits are being recorded.
// Emit sites call it before building an Event.
func (t *Tracer) On(m Mask) bool { return t != nil && t.mask&m != 0 }

// Emit records the event if its subsystem is enabled.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	m := maskOf(e.Pkg)
	if t.mask&m == 0 {
		return
	}
	if t.counts != nil {
		t.counts.add(m)
	}
	if t.buf != nil {
		t.buf.events = append(t.buf.events, e)
	}
}

// Buffer returns the tracer's underlying buffer (nil for a nil tracer).
func (t *Tracer) Buffer() *Buffer {
	if t == nil {
		return nil
	}
	return t.buf
}

// Collector aggregates the buffers of one traced run. Tracer creation is
// concurrency-safe (parallel experiment shards register buffers as they
// start), but every buffer is still single-writer. Export order is sorted
// by label, so the rendered trace does not depend on scheduling.
type Collector struct {
	mu   sync.Mutex
	bufs map[string]*Buffer
	// counts, when non-nil, receives every emitted event's subsystem in
	// addition to (or, with countOnly, instead of) buffering.
	counts    *EventCounts
	countOnly bool
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{bufs: map[string]*Buffer{}}
}

// NewCountingCollector returns a collector whose tracers only fold events
// into counts — no event is ever stored, so memory stays flat no matter
// how long the run. This is how the daemon watches an untraced job: the
// full event bus runs, but the only residue is four counters.
func NewCountingCollector(counts *EventCounts) *Collector {
	return &Collector{bufs: map[string]*Buffer{}, counts: counts, countOnly: true}
}

// SetCounts attaches an aggregating sink to a buffering collector: every
// event is recorded in its buffer and counted. Call before any Tracer is
// created; tracers made earlier do not count.
func (c *Collector) SetCounts(counts *EventCounts) {
	c.mu.Lock()
	c.counts = counts
	c.mu.Unlock()
}

// Counts returns the collector's aggregating sink (nil if none).
func (c *Collector) Counts() *EventCounts {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts
}

// Tracer creates the buffer for label and returns a tracer recording into
// it with the given mask. Labels must be unique within a run — they are
// the deterministic identity of a machine's stream — so a duplicate label
// panics rather than silently interleaving two machines' events.
func (c *Collector) Tracer(label string, mask Mask) *Tracer {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.bufs[label]; dup {
		panic(fmt.Sprintf("trace: duplicate buffer label %q", label))
	}
	b := &Buffer{label: label}
	c.bufs[label] = b
	t := &Tracer{buf: b, mask: mask, counts: c.counts}
	if c.countOnly {
		t.buf = nil
	}
	return t
}

// Buffers returns all buffers sorted by label.
func (c *Collector) Buffers() []*Buffer {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Buffer, 0, len(c.bufs))
	for _, b := range c.bufs {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

// TotalEvents returns the event count across all buffers.
func (c *Collector) TotalEvents() int {
	n := 0
	for _, b := range c.Buffers() {
		n += len(b.events)
	}
	return n
}

// CountByPrefix aggregates event counts by the first '/'-separated label
// segment — with the experiment engine's labeling convention, that is the
// experiment ID. Keys are returned sorted.
func (c *Collector) CountByPrefix() ([]string, map[string]int) {
	counts := map[string]int{}
	for _, b := range c.Buffers() {
		key := b.label
		if i := strings.IndexByte(key, '/'); i >= 0 {
			key = key[:i]
		}
		counts[key] += len(b.events)
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, counts
}
