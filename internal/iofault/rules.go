package iofault

import (
	"math/rand"
	"strings"
	"time"
)

// pathMatch reports whether a rule filtered on substr applies to path.
// The empty filter matches everything.
func pathMatch(path, substr string) bool {
	return substr == "" || strings.Contains(path, substr)
}

// failSync fails fsync with err on every Nth matching sync call.
type failSync struct {
	substr string
	everyN int
	err    error
	n      int
}

// FailSync returns a rule that fails every Nth fsync of files whose
// path contains pathSubstr ("" = all files) with err. everyN = 1 fails
// every fsync — a persistently dying device; everyN = 3 models the
// transient stall a bounded retry should absorb.
func FailSync(pathSubstr string, everyN int, err error) Rule {
	if everyN < 1 {
		everyN = 1
	}
	return &failSync{substr: pathSubstr, everyN: everyN, err: err}
}

func (r *failSync) Name() string { return "fail-sync" }

func (r *failSync) Check(op Op, _ *rand.Rand) Fault {
	if op.Kind != OpSync || !pathMatch(op.Path, r.substr) {
		return Fault{}
	}
	r.n++
	if r.n%r.everyN == 0 {
		return Fault{Err: r.err}
	}
	return Fault{}
}

// failFirst fails the first n matching operations, then heals.
type failFirst struct {
	substr string
	kind   OpKind
	n      int
	err    error
}

// FailFirst returns a rule that fails the first n matching operations of
// the given kind with err and then lets everything through — a disk that
// is sick for a while and recovers. It is the deterministic shape the
// chaos smoke uses: the outage length is exact, so entry into and exit
// from degraded mode are both guaranteed.
func FailFirst(pathSubstr string, kind OpKind, n int, err error) Rule {
	return &failFirst{substr: pathSubstr, kind: kind, n: n, err: err}
}

func (r *failFirst) Name() string { return "fail-first" }

func (r *failFirst) Check(op Op, _ *rand.Rand) Fault {
	if op.Kind != r.kind || !pathMatch(op.Path, r.substr) || r.n <= 0 {
		return Fault{}
	}
	r.n--
	return Fault{Err: r.err}
}

// diskFull injects ENOSPC once a cumulative write budget is spent.
type diskFull struct {
	substr  string
	limit   int64
	written int64
}

// DiskFull returns a rule modeling a filling disk: matching writes
// succeed until limitBytes cumulative bytes have been written, then the
// write that crosses the boundary is TORN (the remaining budget is
// written, the rest is not) and fails with ENOSPC, as do all writes,
// mkdirs and renames after it. Clearing the condition (SetActive(false)
// or Reset) models an operator freeing space.
func DiskFull(pathSubstr string, limitBytes int64) *DiskFullRule {
	return &DiskFullRule{diskFull{substr: pathSubstr, limit: limitBytes}}
}

// DiskFullRule exposes Reset so tests can refill the budget.
type DiskFullRule struct{ diskFull }

// Reset restores the full write budget — the disk was cleaned up.
func (r *DiskFullRule) Reset() { r.written = 0 }

func (r *DiskFullRule) Name() string { return "disk-full" }

func (r *DiskFullRule) Check(op Op, _ *rand.Rand) Fault {
	if !pathMatch(op.Path, r.substr) {
		return Fault{}
	}
	switch op.Kind {
	case OpWrite:
		if r.written >= r.limit {
			return Fault{Err: ErrNoSpace, TornBytes: -1}
		}
		if r.written+int64(op.Bytes) > r.limit {
			torn := int(r.limit - r.written)
			r.written = r.limit
			return Fault{Err: ErrNoSpace, TornBytes: torn}
		}
		r.written += int64(op.Bytes)
	case OpMkdir, OpRename:
		// Directory entries need blocks too; a full disk fails them.
		if r.written >= r.limit {
			return Fault{Err: ErrNoSpace}
		}
	}
	return Fault{}
}

// tornWrite probabilistically cuts writes short.
type tornWrite struct {
	substr string
	prob   float64
	err    error
}

// TornWrite returns a rule that, with probability prob per matching
// write, writes only a random prefix of the buffer and fails with err —
// the classic torn write a crash mid-write leaves behind. Determinism:
// the injector's seeded rng drives both the coin flip and the cut
// point.
func TornWrite(pathSubstr string, prob float64, err error) Rule {
	return &tornWrite{substr: pathSubstr, prob: prob, err: err}
}

func (r *tornWrite) Name() string { return "torn-write" }

func (r *tornWrite) Check(op Op, rng *rand.Rand) Fault {
	if op.Kind != OpWrite || !pathMatch(op.Path, r.substr) {
		return Fault{}
	}
	if rng.Float64() >= r.prob {
		return Fault{}
	}
	torn := 0
	if op.Bytes > 1 {
		torn = rng.Intn(op.Bytes)
	}
	return Fault{Err: r.err, TornBytes: torn}
}

// brokenRemove fails removes, leaving RemoveAll trees half-deleted.
type brokenRemove struct {
	substr string
	err    error
}

// BrokenRemove returns a rule that fails matching Remove/RemoveAll
// calls with err. Through the injector a faulted RemoveAll is torn —
// half the tree is gone, half remains — which is exactly the state a
// SIGKILL mid-eviction leaves and the startup sweep must repair.
func BrokenRemove(pathSubstr string, err error) Rule {
	return &brokenRemove{substr: pathSubstr, err: err}
}

func (r *brokenRemove) Name() string { return "broken-remove" }

func (r *brokenRemove) Check(op Op, _ *rand.Rand) Fault {
	if op.Kind != OpRemove || !pathMatch(op.Path, r.substr) {
		return Fault{}
	}
	return Fault{Err: r.err}
}

// slow delays matching operations.
type slow struct {
	substr string
	kinds  map[OpKind]bool
	d      time.Duration
}

// Slow returns a rule that stalls each matching operation by d without
// failing it — a congested or throttled device. kinds restricts which
// operation classes stall; empty means all.
func Slow(pathSubstr string, d time.Duration, kinds ...OpKind) Rule {
	km := map[OpKind]bool{}
	for _, k := range kinds {
		km[k] = true
	}
	return &slow{substr: pathSubstr, kinds: km, d: d}
}

func (r *slow) Name() string { return "slow-io" }

func (r *slow) Check(op Op, _ *rand.Rand) Fault {
	if !pathMatch(op.Path, r.substr) {
		return Fault{}
	}
	if len(r.kinds) > 0 && !r.kinds[op.Kind] {
		return Fault{}
	}
	return Fault{Delay: r.d}
}
