package channel

import (
	"leakyway/internal/sim"
	"leakyway/internal/stats"
)

// RunPrimeProbe transmits msg over the Prime+Probe baseline channel used
// for Table II / Figure 8: the sender loads (or not) one line per target
// set; the receiver probes each set with a timed walk of its w-line
// eviction set and re-primes with additional walks. Two sets carry two bits
// per iteration, as in the paper's comparison setup.
func RunPrimeProbe(m *sim.Machine, cfg Config, msg []bool) (Report, []bool) {
	mustValidRun(cfg, false, msg)
	const sets = 2
	ways := m.H.Config().LLCWays
	ep, err := Setup(m, sets, ways)
	if err != nil {
		panic(err)
	}
	interval := cfg.Interval
	n := len(msg)
	received := make([]bool, n)
	walks := cfg.PrimeWalks
	if walks <= 0 {
		walks = 2
	}

	m.Spawn("sender", 0, ep.SenderAS, func(c *sim.Core) {
		for it := 0; it*sets < n; it++ {
			c.WaitUntil(cfg.Start + int64(it)*interval + cfg.SenderOffset)
			for s := 0; s < sets; s++ {
				if i := it*sets + s; i < n {
					emitTxBit(c, i, msg[i])
					if msg[i] {
						c.Load(ep.DS[s])
					}
				}
			}
			c.Spin(cfg.ProtocolOverhead)
		}
	})

	m.Spawn("receiver", 1, ep.ReceiverAS, func(c *sim.Core) {
		// Prime both sets and calibrate the clean probe time per set.
		clean := make([]int64, sets)
		for s := 0; s < sets; s++ {
			for w := 0; w < walks+1; w++ {
				for _, va := range ep.REv[s] {
					c.Load(va)
				}
			}
			var samples []int64
			for k := 0; k < 6; k++ {
				var sum int64
				for _, va := range ep.REv[s] {
					sum += c.TimedLoad(va)
				}
				samples = append(samples, sum)
			}
			// Threshold: clean mean plus half the DRAM/LLC gap.
			lat := m.H.Config().Lat
			clean[s] = int64(stats.Mean(samples)) + (lat.Mem-lat.LLCHit)/2
		}
		for it := 0; it*sets < n; it++ {
			c.WaitUntil(cfg.Start + int64(it)*interval + cfg.ReceiverOffset)
			for s := 0; s < sets; s++ {
				i := it*sets + s
				if i >= n {
					break
				}
				// Probe: timed walk.
				probeAt := c.Now()
				var sum int64
				for _, va := range ep.REv[s] {
					sum += c.TimedLoad(va)
				}
				received[i] = sum > clean[s]
				emitRxBit(c, probeAt, i, received[i], sum, interval, clean[s])
				// Re-prime: untimed refresh walks.
				for w := 0; w < walks-1; w++ {
					for _, va := range ep.REv[s] {
						c.Load(va)
					}
				}
			}
			c.Spin(cfg.ProtocolOverhead)
		}
	})

	spawnNoise(m, cfg, ep, 2)
	m.Run()

	rep := Report{
		Channel:  "Prime+Probe",
		Platform: m.H.Config().Name,
		Bits:     n,
		Interval: interval,
	}
	for i := range msg {
		if received[i] != msg[i] {
			rep.Errors++
		}
	}
	finishReport(&rep, m.H.Config().FreqGHz, sets)
	return rep, received
}
