# Build/verify entry points. `make verify` is the tier-1 gate: build,
# vet, formatting, tests, the race detector over the whole module (the
# parallel experiment engine must stay clean under -race), and a short
# fuzz smoke over the ARQ frame decoders.

GO ?= go

.PHONY: all build vet fmt-check staticcheck test race fuzz-smoke trace-smoke verify bench bench-jobs clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if it prints anything.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# staticcheck when the host has it; skipped (not failed) otherwise, so
# verify works on boxes where the tool cannot be installed.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# Short fuzz runs over the wire-format decoders (go test takes one -fuzz
# pattern per invocation, hence one command per target).
fuzz-smoke:
	$(GO) test ./internal/channel -run '^$$' -fuzz FuzzFrameDecode -fuzztime 5s
	$(GO) test ./internal/channel -run '^$$' -fuzz FuzzAckDecode -fuzztime 5s

# Traced-run determinism gate: the same traced fig8 run at -jobs 1 and
# -jobs 8 must export byte-identical traces. Filtered to the protocol-level
# subsystems to keep the files small.
trace-smoke:
	$(GO) build -o /tmp/leakyway-smoke ./cmd/leakyway
	/tmp/leakyway-smoke -quick -jobs 1 -trace /tmp/leakyway-trace-j1.jsonl \
		-trace-filter channel,sim,fault run fig8 > /dev/null
	/tmp/leakyway-smoke -quick -jobs 8 -trace /tmp/leakyway-trace-j8.jsonl \
		-trace-filter channel,sim,fault run fig8 > /dev/null
	cmp /tmp/leakyway-trace-j1.jsonl /tmp/leakyway-trace-j8.jsonl
	@echo "trace-smoke: traces byte-identical across -jobs 1/8"

verify: build vet fmt-check staticcheck test race fuzz-smoke trace-smoke

# Full benchmark sweep (quick-mode trial counts).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Engine scaling curve: the full suite at 1/2/4/8 workers.
bench-jobs:
	$(GO) test -bench 'BenchmarkRunAllJobs' -benchtime 3x -run '^$$' .

clean:
	$(GO) clean ./...
