package experiments

import (
	"io"
	"testing"
)

// TestExperimentsDeterministic re-runs a representative sample of
// experiments with the same seed and asserts every metric is bit-identical —
// the reproducibility contract EXPERIMENTS.md makes.
func TestExperimentsDeterministic(t *testing.T) {
	sample := []string{"fig2", "fig5", "table2", "fnrate", "fig12", "counter", "defense"}
	runOnce := func() map[string]map[string]float64 {
		ctx := NewContext(io.Discard)
		ctx.Quick = true
		ctx.Seed = 1234
		out := map[string]map[string]float64{}
		for _, id := range sample {
			r, err := RunOne(ctx, id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out[id] = r.Metrics
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for id, am := range a {
		bm := b[id]
		if len(am) != len(bm) {
			t.Fatalf("%s: metric sets differ in size", id)
		}
		for k, v := range am {
			if bv, ok := bm[k]; !ok || bv != v {
				t.Errorf("%s/%s: %v vs %v — not deterministic", id, k, v, bv)
			}
		}
	}
}

// TestSeedActuallyMatters guards against accidentally ignoring the seed: a
// different seed must change at least one stochastic metric.
func TestSeedActuallyMatters(t *testing.T) {
	run := func(seed int64) float64 {
		ctx := NewContext(io.Discard)
		ctx.Quick = true
		ctx.Seed = seed
		r, err := RunOne(ctx, "fig5")
		if err != nil {
			t.Fatal(err)
		}
		return r.Metrics["dram_mean"]
	}
	if run(1) == run(99) {
		t.Error("different seeds produced identical DRAM-tier jitter; seeding is broken")
	}
}
