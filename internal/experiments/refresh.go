package experiments

import (
	"fmt"

	"leakyway/internal/attack"
	"leakyway/internal/core"
	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
	"leakyway/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Figure 9 — Reload+Refresh LLC set state walk",
		Paper: "the set is filled at age 2 with dt first; the conflict load evicts l0 if the victim accessed dt, else dt itself",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Figure 10 — Prefetch+Refresh LLC set state walk",
		Paper: "the set is prefetched at age 3; the victim's access drops dt to 2, protecting it from the conflict prefetch",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Figure 12 — attacker latency per iteration: Reload+Refresh vs Prefetch+Refresh v1/v2",
		Paper: "1601/1767 cycles (SKL/KBL) for Reload+Refresh, 1165/1369 for v1, 873/1054 for v2",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Table III — operations for reverting the cache state (16-way LLC)",
		Paper: "R+R: 2 flushes, 2 DRAM, 14 LLC accesses; v1: 2/2/0; v2: 1/1/0",
		Run:   runTable3,
	})
}

// stateWalk drives one accessed and one idle iteration of a refresh attack
// with set-state snapshots, for the Figure 9/10 traces.
func stateWalk(ctx *Context, nta bool) (*Result, error) {
	res := &Result{}
	cfg := quietPlatform(ctx.Platforms[0])
	m := sim.MustNewMachine(cfg, 1<<30, ctx.Seed)
	attackerAS := m.NewSpace()
	victimAS := m.NewSpace()
	dt, err := attackerAS.Alloc(mem.PageSize)
	if err != nil {
		return nil, err
	}
	if err := victimAS.MapShared(attackerAS, dt, mem.PageSize); err != nil {
		return nil, err
	}
	w := cfg.LLCWays
	ls := core.MustCongruentLines(m, attackerAS, dt, w)

	tr := core.NewTrace()
	verdicts := make([]bool, 2)

	const window = int64(40_000)
	m.SpawnDaemon("victim", 1, victimAS, func(c *sim.Core) {
		// Window 0: access dt (case a). Window 1: stay idle (case b).
		c.WaitUntil(window + window/2)
		c.Load(dt)
	})
	m.Spawn("attacker", 0, attackerAS, func(c *sim.Core) {
		th := core.Calibrate(c, 48)
		tr.Label(c, dt, "dt")
		tr.Label(c, ls[0], "l0")
		tr.Label(c, ls[w-1], "lw-1")

		prepareWalkSet(c, dt, ls, nta)
		tr.Snap(m, c, dt, "step 1: attacker fills the set (dt first)")
		op := func(va mem.VAddr) {
			if nta {
				c.PrefetchNTA(va)
			} else {
				c.Load(va)
			}
		}
		timedOp := func(va mem.VAddr) int64 {
			if nta {
				return c.TimedPrefetchNTA(va)
			}
			return c.TimedLoad(va)
		}
		for it := 0; it < 2; it++ {
			caseName := "(a) victim accessed dt"
			if it == 1 {
				caseName = "(b) victim idle"
			}
			c.WaitUntil(window + int64(it+1)*window)
			tr.Snap(m, c, dt, fmt.Sprintf("step 2 %s: after the wait window", caseName))
			op(ls[w-1])
			tr.Snap(m, c, dt, "step 3: conflict on l(w-1)")
			t := timedOp(dt)
			verdicts[it] = !th.IsMiss(t)
			tr.Snap(m, c, dt, fmt.Sprintf("step 4: timed re-access of dt: %d cycles -> accessed=%v", t, verdicts[it]))
			// Step 5 (v1-style revert for both walks).
			c.Flush(dt)
			c.Flush(ls[w-1])
			op(dt)
			op(ls[0])
			if !nta {
				for i := 1; i < w-1; i++ {
					c.Load(ls[i])
				}
			}
			tr.Snap(m, c, dt, "step 5: state reverted")
		}
	})
	m.Run()

	ctx.Printf("%s", tr.Render())
	ok := 0.0
	if verdicts[0] && !verdicts[1] {
		ok = 1
	}
	ctx.Printf("verdicts: accessed=%v idle=%v (want true,false)\n", verdicts[0], verdicts[1])
	res.Metric("state_walk_correct", ok)
	return res, nil
}

// prepareWalkSet takes ownership of the set and fills it dt-first.
func prepareWalkSet(c *sim.Core, dt mem.VAddr, ls []mem.VAddr, nta bool) {
	all := append([]mem.VAddr{dt}, ls...)
	for round := 0; round < 3; round++ {
		for _, va := range all {
			c.Load(va)
		}
	}
	for _, va := range all {
		c.Flush(va)
	}
	c.Fence()
	fill := func(va mem.VAddr) {
		if nta {
			c.PrefetchNTA(va)
		} else {
			c.Load(va)
		}
	}
	fill(dt)
	for i := 0; i < len(ls)-1; i++ {
		fill(ls[i])
	}
}

func runFig9(ctx *Context) (*Result, error)  { return stateWalk(ctx, false) }
func runFig10(ctx *Context) (*Result, error) { return stateWalk(ctx, true) }

func runFig12(ctx *Context) (*Result, error) {
	res := &Result{}
	iters := ctx.Trials(2000)
	paper := map[string][3]float64{
		"skylake":  {1601, 1165, 873},
		"kabylake": {1767, 1369, 1054},
	}
	variants := []attack.RefreshVariant{attack.ReloadRefresh, attack.PrefetchRefreshV1, attack.PrefetchRefreshV2}
	err := ctx.EachPlatform(func(sub *Context, cfg hier.Config) error {
		sub.Printf("\n%s\n", cfg.Name)
		// Each variant runs against its own machine, so the three attacks
		// shard across free workers.
		results := make([]attack.RefreshResult, len(variants))
		sub.Parallel(len(variants), func(i int) {
			results[i] = attack.RunRefresh(cfg, variants[i],
				attack.RefreshConfig{Iterations: iters}, sub.SeedFor(variants[i].String()))
		})
		rows := [][]string{}
		var means [3]float64
		var all [][]int64
		for i, v := range variants {
			r := results[i]
			means[i] = stats.Mean(r.IterLatencies)
			all = append(all, r.IterLatencies)
			rows = append(rows, []string{
				v.String(),
				fmt.Sprintf("%.0f", means[i]),
				fmt.Sprintf("%.0f", paper[shortName(cfg)][i]),
				fmt.Sprintf("%.1f%%", 100*r.Accuracy),
			})
		}
		renderTable(sub, []string{"attack", "iteration mean (cyc)", "paper (cyc)", "detection accuracy"}, rows)
		lo := stats.NewCDF(all[2]).Quantile(0.02)
		hi := stats.NewCDF(all[0]).Quantile(0.999)
		for i, v := range variants {
			sub.Printf("%s", stats.NewCDF(all[i]).Render("  CDF "+v.String(), lo, hi, 56))
		}
		res.Metric(shortName(cfg)+"/reload_refresh_mean", means[0])
		res.Metric(shortName(cfg)+"/prefetch_refresh_v1_mean", means[1])
		res.Metric(shortName(cfg)+"/prefetch_refresh_v2_mean", means[2])
		return nil
	})
	return res, err
}

func runTable3(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	rows := [][]string{}
	for _, v := range []attack.RefreshVariant{attack.ReloadRefresh, attack.PrefetchRefreshV1, attack.PrefetchRefreshV2} {
		r := attack.RunRefresh(cfg, v, attack.RefreshConfig{Iterations: ctx.Trials(300)}, ctx.Seed)
		rows = append(rows, []string{
			v.String(),
			fmt.Sprintf("%d", r.Revert.Flushes),
			fmt.Sprintf("%d", r.Revert.DRAMAccesses),
			fmt.Sprintf("%d", r.Revert.LLCAccesses),
			fmt.Sprintf("%.1f%%", 100*r.Accuracy),
		})
		res.Metric(fmt.Sprintf("variant%d/flushes", v), float64(r.Revert.Flushes))
		res.Metric(fmt.Sprintf("variant%d/dram", v), float64(r.Revert.DRAMAccesses))
		res.Metric(fmt.Sprintf("variant%d/llc", v), float64(r.Revert.LLCAccesses))
	}
	renderTable(ctx, []string{"attack method", "# flushes", "# DRAM accesses", "# LLC accesses", "accuracy"}, rows)
	return res, nil
}
