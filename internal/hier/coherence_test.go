package hier

import (
	"testing"

	"leakyway/internal/cache"
	"leakyway/internal/mem"
)

func TestExclusiveOnSoleLoad(t *testing.T) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0x4040)
	h.Load(0, pa, 0)
	st, ok := h.PrivCoh(0, pa)
	if !ok || st != cache.CohExclusive {
		t.Fatalf("sole loader state = %v,%v; want Exclusive", st, ok)
	}
}

func TestSharedOnSecondLoad(t *testing.T) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0x4040)
	h.Load(0, pa, 0)
	h.Load(1, pa, 1000)
	for corenum := 0; corenum < 2; corenum++ {
		st, ok := h.PrivCoh(corenum, pa)
		if !ok || st != cache.CohShared {
			t.Fatalf("core %d state = %v,%v; want Shared", corenum, st, ok)
		}
	}
}

func TestStoreObtainsModifiedAndInvalidatesRemotes(t *testing.T) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0x4040)
	h.Load(0, pa, 0)
	h.Load(1, pa, 1000) // both Shared
	res := h.Store(0, pa, 2000)
	if st, ok := h.PrivCoh(0, pa); !ok || st != cache.CohModified {
		t.Fatalf("writer state = %v,%v; want Modified", st, ok)
	}
	if _, ok := h.PrivCoh(1, pa); ok {
		t.Fatal("remote Shared copy survived a store upgrade")
	}
	// The upgrade paid the invalidation round.
	if res.Latency < testConfig().Lat.L1Hit+testConfig().Lat.CohInval {
		t.Fatalf("upgrade latency %d missing the invalidation cost", res.Latency)
	}
}

func TestRemoteModifiedLoadForwardsAndDowngrades(t *testing.T) {
	cfg := testConfig()
	h := MustNew(cfg)
	pa := mem.PAddr(0x4040)
	h.Store(0, pa, 0) // core 0 holds M
	res := h.Load(1, pa, 1000)
	if res.Level != LevelLLC {
		t.Fatalf("reader level = %v, want LLC", res.Level)
	}
	if res.Latency != cfg.Lat.LLCHit+cfg.Lat.CohTransfer {
		t.Fatalf("forwarded load latency = %d, want %d",
			res.Latency, cfg.Lat.LLCHit+cfg.Lat.CohTransfer)
	}
	if st, _ := h.PrivCoh(0, pa); st != cache.CohShared {
		t.Fatalf("owner state after forward = %v, want Shared", st)
	}
	if st, _ := h.PrivCoh(1, pa); st != cache.CohShared {
		t.Fatalf("reader state = %v, want Shared", st)
	}
	// The forwarded dirty data landed in the LLC copy.
	fl := h.Flush(pa, 2000)
	if fl.Latency != cfg.Lat.FlushDirty {
		t.Fatalf("flush latency %d; the LLC copy should be dirty after forwarding", fl.Latency)
	}
}

func TestCleanRemoteLoadPaysNoPenalty(t *testing.T) {
	cfg := testConfig()
	h := MustNew(cfg)
	pa := mem.PAddr(0x4040)
	h.Load(0, pa, 0) // clean Exclusive copy at core 0
	res := h.Load(1, pa, 1000)
	if res.Latency != cfg.Lat.LLCHit {
		t.Fatalf("clean cross-core load latency = %d, want %d", res.Latency, cfg.Lat.LLCHit)
	}
}

func TestStoreMissPerformsRFO(t *testing.T) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0x4040)
	h.Load(1, pa, 0) // core 1 holds E
	h.Store(0, pa, 1000)
	if st, ok := h.PrivCoh(0, pa); !ok || st != cache.CohModified {
		t.Fatalf("writer state = %v,%v; want Modified", st, ok)
	}
	if _, ok := h.PrivCoh(1, pa); ok {
		t.Fatal("remote copy survived an RFO")
	}
}

func TestRepeatedStoresStayCheap(t *testing.T) {
	cfg := testConfig()
	h := MustNew(cfg)
	pa := mem.PAddr(0x4040)
	h.Store(0, pa, 0)
	res := h.Store(0, pa, 1000)
	if res.Latency != cfg.Lat.L1Hit {
		t.Fatalf("store to own Modified line cost %d, want plain L1 hit %d", res.Latency, cfg.Lat.L1Hit)
	}
}
