package experiments

import (
	"testing"

	"leakyway/internal/channel"
	"leakyway/internal/fault"
	"leakyway/internal/platform"
	"leakyway/internal/sim"
	"leakyway/internal/trace"
)

// TestFaultLogMatchesTraceEvents replays every faults-experiment scenario
// with tracing attached and checks the two observability surfaces against
// each other: each fired fault-injector log entry must have exactly one
// pkg="fault" trace event with the same virtual timestamp, agent, kind and
// resolved scenario name — and no trace event may lack a log entry.
func TestFaultLogMatchesTraceEvents(t *testing.T) {
	cfg := platform.Skylake()
	base := channel.DefaultConfig(cfg.Name, cfg.FreqGHz)
	base.Interval = 2000
	base.NoisePeriod = 0
	const bits = 160

	spec, ok := BuiltinSpec("faults")
	if !ok {
		t.Fatal("no builtin faults scenario")
	}
	col := trace.NewCollector()
	for _, sc := range spec.Faults.Scenarios {
		if sc.Key == "none" {
			continue
		}
		seedv := SplitSeed(42, "faults", sc.Key)
		m := sim.MustNewMachine(cfg, 1<<30, seedv)
		m.SetTracer(col.Tracer(sc.Key, trace.PkgAll))
		ep, err := channel.Setup(m, 2, 0)
		if err != nil {
			t.Fatalf("%s: %v", sc.Key, err)
		}
		log := &fault.Log{}
		tgt := fault.Target{PolluteAS: ep.NoiseAS, Pollute: ep.NoiseLines}
		tgt.Sender, tgt.Receiver = "sender", "receiver"
		tgt.SpareCore = 3
		tgt.Horizon = base.Start + int64(bits)*base.Interval
		log.Attach(m)
		sc.Compile().Inject(m, tgt, seedv, log)
		msg := channel.RandomMessage(bits, seedv)
		channel.RunNTPNTPOn(m, base, ep, msg)

		fired := log.Fired()
		if len(fired) == 0 {
			t.Errorf("%s: no fault fired within the horizon", sc.Key)
			continue
		}
		var traced []trace.Event
		for _, e := range findBuffer(t, col, sc.Key).Events() {
			if e.Pkg == "fault" {
				traced = append(traced, e)
			}
		}
		if len(traced) != len(fired) {
			t.Errorf("%s: %d fired log entries but %d fault trace events",
				sc.Key, len(fired), len(traced))
		}
		used := make([]bool, len(traced))
	outer:
		for _, f := range fired {
			for i, e := range traced {
				if used[i] || e.Time != f.At || e.Agent != f.Agent || e.Kind != f.Kind {
					continue
				}
				if e.Note != f.Scenario {
					t.Errorf("%s: event %s@%d: trace scenario %q != log scenario %q",
						sc.Key, f.Kind, f.At, e.Note, f.Scenario)
				}
				if e.Dur != f.Dur {
					t.Errorf("%s: event %s@%d: trace dur %d != log dur %d",
						sc.Key, f.Kind, f.At, e.Dur, f.Dur)
				}
				used[i] = true
				continue outer
			}
			t.Errorf("%s: fired %v has no matching trace event", sc.Key, f)
		}
	}
}

func findBuffer(t *testing.T, col *trace.Collector, label string) *trace.Buffer {
	t.Helper()
	for _, b := range col.Buffers() {
		if b.Label() == label {
			return b
		}
	}
	t.Fatalf("no trace buffer labeled %q", label)
	return nil
}

// TestFig8TraceDeterministicAcrossJobs is the tentpole's determinism
// acceptance check at the library level: a traced fig8 run must export a
// byte-identical trace for every worker count, because stream labels and
// event streams derive from seeds and names, never from scheduling.
func TestFig8TraceDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("traced fig8 run is slow")
	}
	export := func(jobs int) string {
		ctx := NewContext(nil)
		ctx.Quick = true
		ctx.Jobs = jobs
		ctx.Platforms = ctx.Platforms[:1]
		ctx.Trace = trace.NewCollector()
		ctx.TraceMask = trace.PkgChannel | trace.PkgSim | trace.PkgFault
		if _, err := RunOne(ctx, "fig8"); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var sb stringWriter
		if err := trace.WriteJSONL(&sb, ctx.Trace.Buffers()); err != nil {
			t.Fatalf("jobs=%d: export: %v", jobs, err)
		}
		if ctx.Trace.TotalEvents() == 0 {
			t.Fatalf("jobs=%d: traced run recorded no events", jobs)
		}
		return sb.String()
	}
	want := export(1)
	for _, jobs := range []int{2, 8} {
		if got := export(jobs); got != want {
			t.Fatalf("trace differs between -jobs 1 and -jobs %d (len %d vs %d)",
				jobs, len(want), len(got))
		}
	}
}

// stringWriter is a minimal io.Writer capturing into a string.
type stringWriter struct{ b []byte }

func (w *stringWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *stringWriter) String() string              { return string(w.b) }
