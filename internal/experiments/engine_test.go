package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// fakeSuite builds a list of synthetic experiments that each chat on
// ctx.Printf from inside ctx.Parallel shards — the most interleaving-prone
// write pattern the engine supports.
func fakeSuite(n, lines int) []Experiment {
	list := make([]Experiment, n)
	for i := range list {
		id := fmt.Sprintf("fake%02d", i)
		list[i] = Experiment{
			ID:    id,
			Title: "synthetic " + id,
			Run: func(ctx *Context) (*Result, error) {
				res := &Result{}
				ctx.Parallel(lines, func(j int) {
					// Yield aggressively so broken locking would actually
					// interleave instead of passing by scheduling luck.
					runtime.Gosched()
					res.Metric(fmt.Sprintf("m%d", j), float64(ctx.ShardSeed(j)))
				})
				for j := 0; j < lines; j++ {
					ctx.Printf("%s line %d\n", id, j)
				}
				return res, nil
			},
		}
	}
	return list
}

// TestEngineNoInterleavedOutput runs a chatty fake suite at jobs=8 and
// asserts the report is exactly the serial concatenation: every
// experiment's lines contiguous, experiments in list order.
func TestEngineNoInterleavedOutput(t *testing.T) {
	const n, lines = 12, 40
	var want strings.Builder
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("fake%02d", i)
		want.WriteString(fmt.Sprintf("\n=== %s — synthetic %s ===\n", id, id))
		for j := 0; j < lines; j++ {
			want.WriteString(fmt.Sprintf("%s line %d\n", id, j))
		}
	}
	for trial := 0; trial < 3; trial++ {
		var buf bytes.Buffer
		ctx := NewContext(&buf)
		ctx.Jobs = 8
		if _, err := runExperiments(ctx, fakeSuite(n, lines)); err != nil {
			t.Fatal(err)
		}
		if got := buf.String(); got != want.String() {
			t.Fatalf("trial %d: interleaved or reordered output:\n%s", trial, got)
		}
	}
}

// TestEngineMetricsIndependentOfJobs runs the fake suite across worker
// counts and checks the metric maps agree — the shard seeds must not see
// scheduling.
func TestEngineMetricsIndependentOfJobs(t *testing.T) {
	runWith := func(jobs int) map[string]map[string]float64 {
		ctx := NewContext(io.Discard)
		ctx.Jobs = jobs
		res, err := runExperiments(ctx, fakeSuite(6, 25))
		if err != nil {
			t.Fatal(err)
		}
		return MetricsMap(res)
	}
	ref := runWith(1)
	for _, jobs := range []int{2, 8} {
		got := runWith(jobs)
		for id := range ref {
			for k, v := range ref[id] {
				if got[id][k] != v {
					t.Fatalf("jobs=%d: %s/%s = %v, want %v", jobs, id, k, got[id][k], v)
				}
			}
		}
	}
}

// TestEngineErrorStillFlushesPriorReports mirrors the serial engine's
// contract: on failure, every report before the failing experiment is
// flushed and the error names the experiment.
func TestEngineErrorStillFlushesPriorReports(t *testing.T) {
	boom := errors.New("boom")
	list := []Experiment{
		{ID: "ok1", Title: "t", Run: func(ctx *Context) (*Result, error) {
			ctx.Printf("ok1 ran\n")
			return &Result{}, nil
		}},
		{ID: "bad", Title: "t", Run: func(ctx *Context) (*Result, error) {
			return nil, boom
		}},
		{ID: "ok2", Title: "t", Run: func(ctx *Context) (*Result, error) {
			ctx.Printf("ok2 ran\n")
			return &Result{}, nil
		}},
	}
	for _, jobs := range []int{1, 4} {
		var buf bytes.Buffer
		ctx := NewContext(&buf)
		ctx.Jobs = jobs
		res, err := runExperiments(ctx, list)
		if !errors.Is(err, boom) {
			t.Fatalf("jobs=%d: err = %v, want %v", jobs, err, boom)
		}
		if !strings.Contains(err.Error(), "bad") {
			t.Fatalf("jobs=%d: error does not name the experiment: %v", jobs, err)
		}
		if !strings.Contains(buf.String(), "ok1 ran") {
			t.Fatalf("jobs=%d: report before the failure was dropped", jobs)
		}
		if _, found := res["ok1"]; !found {
			t.Fatalf("jobs=%d: results before the failure were dropped", jobs)
		}
	}
}

// TestEnginePanicBecomesError checks runGuarded converts an agent panic
// into a per-experiment error instead of killing the pool.
func TestEnginePanicBecomesError(t *testing.T) {
	list := []Experiment{{ID: "panicky", Title: "t", Run: func(ctx *Context) (*Result, error) {
		panic("sim blew up")
	}}}
	ctx := NewContext(io.Discard)
	ctx.Jobs = 4
	_, err := runExperiments(ctx, list)
	if err == nil || !strings.Contains(err.Error(), "sim blew up") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

// TestParallelRunsEveryShardOnce counts shard executions under a
// saturated and an idle pool.
func TestParallelRunsEveryShardOnce(t *testing.T) {
	for _, jobs := range []int{1, 2, 8} {
		ctx := NewContext(io.Discard)
		ctx.Jobs = jobs
		var sem chan struct{}
		if jobs > 1 {
			sem = make(chan struct{}, jobs)
		}
		sub := ctx.child(ctx.Seed, io.Discard, "")
		sub.sem = sem
		const n = 100
		var counts [n]atomic.Int64
		sub.Parallel(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("jobs=%d: shard %d ran %d times", jobs, i, c)
			}
		}
	}
}

// TestWriteMetricsJSONCanonical asserts the JSON export is byte-stable
// across encodings of the same results.
func TestWriteMetricsJSONCanonical(t *testing.T) {
	ctx := NewContext(io.Discard)
	ctx.Jobs = 4
	res, err := runExperiments(ctx, fakeSuite(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteMetricsJSON(&a, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetricsJSON(&b, res); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("JSON export is not canonical")
	}
	if !strings.Contains(a.String(), "fake00") {
		t.Fatalf("export missing experiments: %s", a.String())
	}
}
