// Package victim provides realistic victim programs for the side-channel
// demonstrations: an AES-style T-table encryptor whose first-round lookups
// leak key material through the cache, plus the recovery analysis an
// attacker runs on the observations.
package victim

import (
	"fmt"
	"math/rand"

	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

// TTableLines is the number of cache lines covering one 1 KiB AES T-table
// (256 4-byte entries, 16 entries per 64-byte line).
const TTableLines = 16

// AESVictim models the first round of a T-table AES encryptor: for each
// encryption of plaintext p under key k it touches T-table line
// (p[b]^k[b])>>4 for every byte position b. That access pattern is exactly
// what Flush+Reload-style attacks have exploited since Osvik et al., and it
// leaks the high nibble of every key byte.
type AESVictim struct {
	// Key is the secret 16-byte key.
	Key [16]byte
	// Table is the T-table's base address in the victim's address space
	// (16 consecutive lines, shared with the attacker as a library page).
	Table mem.VAddr
	// Plaintexts records the plaintext of each completed encryption —
	// the known-plaintext side of the attack.
	Plaintexts [][16]byte
	// Window is the cycle budget per encryption.
	Window int64
	// Start is when the first encryption begins.
	Start int64
}

// NewAESVictim allocates the shared T-table page in as and returns the
// victim. Share the page into the attacker's address space with MapShared.
func NewAESVictim(as *mem.AddressSpace, key [16]byte, window, start int64) (*AESVictim, error) {
	table, err := as.Alloc(mem.PageSize)
	if err != nil {
		return nil, err
	}
	return &AESVictim{Key: key, Table: table, Window: window, Start: start}, nil
}

// Spawn starts the victim daemon on the given core: one encryption per
// window, with deterministic pseudo-random plaintexts derived from seed.
func (v *AESVictim) Spawn(m *sim.Machine, coreID int, as *mem.AddressSpace, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0xae5))
	m.SpawnDaemon("aes-victim", coreID, as, func(c *sim.Core) {
		for i := 0; ; i++ {
			c.WaitUntil(v.Start + int64(i)*v.Window)
			var pt [16]byte
			rng.Read(pt[:])
			// First AES round: one T-table lookup per state byte.
			for b := 0; b < 16; b++ {
				line := int(pt[b]^v.Key[b]) >> 4
				c.Load(v.Table + mem.VAddr(line*mem.LineSize))
			}
			v.Plaintexts = append(v.Plaintexts, pt)
		}
	})
}

// Observation is one encryption's cache evidence: which T-table lines the
// attacker saw touched.
type Observation struct {
	Plaintext [16]byte
	Lines     [TTableLines]bool
}

// RecoverHighNibbles runs the classic first-round elimination analysis: a
// key-byte candidate k survives an observation only if the line
// (pt[b]^k)>>4 was among the touched lines. The high nibble of every key
// byte is uniquely determined once enough observations accumulate; the low
// nibble is not recoverable from first-round line granularity (return value
// has the low nibble zeroed).
func RecoverHighNibbles(obs []Observation) ([16]byte, error) {
	var out [16]byte
	for b := 0; b < 16; b++ {
		alive := make([]bool, 16) // candidate high nibbles
		for i := range alive {
			alive[i] = true
		}
		for _, o := range obs {
			for hk := 0; hk < 16; hk++ {
				if !alive[hk] {
					continue
				}
				line := int(o.Plaintext[b]>>4) ^ hk
				if !o.Lines[line] {
					alive[hk] = false
				}
			}
		}
		count, winner := 0, -1
		for hk, a := range alive {
			if a {
				count++
				winner = hk
			}
		}
		if count != 1 {
			return out, fmt.Errorf("victim: key byte %d: %d candidates survive; need more observations", b, count)
		}
		out[b] = byte(winner << 4)
	}
	return out, nil
}
