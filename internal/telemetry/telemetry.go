// Package telemetry is the daemon's live-metrics substrate: a lock-cheap
// registry of counters, gauges and fixed-bucket histograms, plus the
// per-job Progress tracker the experiment engine publishes checkpoints
// into. It exists as its own layer — not an HTTP detail of the service —
// because the same running counters feed several consumers: the
// /metricsz Prometheus exposition, the per-job SSE progress stream, and
// (next) the online detectors of the attacker-vs-defender loop, which
// need exactly this kind of cheap always-current counter feed.
//
// Concurrency contract: every metric handle is safe for concurrent use
// and updates are single atomic operations (histograms: two), so emit
// sites on hot paths pay nanoseconds, never a lock. The registry's own
// mutex is taken only at registration and snapshot time. Iteration order
// is deterministic — families sorted by name, series by label signature
// — so two snapshots of the same state render byte-identically.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension ("status"="done"). Labels are fixed at
// registration: a series is identified by its name plus its full label
// set, and updates never allocate label machinery.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric kinds, in exposition vocabulary.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. A gauge registered with
// GaugeFunc is read-only from the outside: its value is sampled from the
// callback at snapshot time.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add applies a delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (sampling the callback for a func
// gauge).
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. Bounds are upper bounds in
// ascending order; an implicit +Inf bucket catches the overflow. Observe
// is two atomic adds — no lock, no allocation — so it is safe on request
// paths.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // per-bucket (non-cumulative), len(bounds)+1
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Bucket count is small (≤ ~20); a linear scan beats binary search
	// on branch prediction and stays allocation-free.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the total number of observations. It is derived from the
// bucket counts, so a snapshot's cumulative buckets and count always
// agree even under concurrent Observes.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefBuckets is the default latency histogram: sub-millisecond up to a
// minute, roughly logarithmic, in seconds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// series is one labeled instance of a family.
type series struct {
	labels []Label
	sig    string

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name, help, kind string
	bounds           []float64 // histogram families only
	series           map[string]*series
}

// Registry holds the metric families. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// sigOf renders a label set's canonical signature (sorted by key).
func sigOf(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	sig := ""
	for _, l := range ls {
		sig += l.Key + "\x00" + l.Value + "\x00"
	}
	return sig
}

// register finds or creates the series for (name, labels), enforcing kind
// consistency across a family. Registration is idempotent: asking for the
// same series twice returns the same handle, so packages can re-derive
// handles instead of threading them around.
func (r *Registry) register(name, help, kind string, bounds []float64, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: map[string]*series{}}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	sig := sigOf(labels)
	s := f.series[sig]
	if s == nil {
		ls := append([]Label(nil), labels...)
		sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
		s = &series{labels: ls, sig: sig}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			b := append([]float64(nil), f.bounds...)
			s.hist = &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
		}
		f.series[sig] = s
	}
	return s
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, kindCounter, nil, labels).counter
}

// Gauge registers (or finds) a settable gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, kindGauge, nil, labels).gauge
}

// GaugeFunc registers a gauge sampled from fn at snapshot time — for
// values that already live elsewhere (queue depth under the server's
// lock, Go runtime stats). fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, nil, labels).gauge.fn = fn
}

// Histogram registers (or finds) a histogram series. The first
// registration of a family fixes its buckets; nil means DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.register(name, help, kindHistogram, bounds, labels).hist
}

// SeriesSnapshot is one series' point-in-time state.
type SeriesSnapshot struct {
	Labels []Label
	// Value holds counter and gauge readings.
	Value float64
	// Histogram fields: cumulative counts per bound (+Inf last), total
	// count and sum. Buckets is nil for non-histograms.
	Buckets []int64
	Count   int64
	Sum     float64
}

// FamilySnapshot is one family's point-in-time state.
type FamilySnapshot struct {
	Name, Help, Kind string
	Bounds           []float64
	Series           []SeriesSnapshot
}

// Snapshot captures every family in deterministic order: families sorted
// by name, series by canonical label signature. Values are read once per
// series, so a snapshot is internally consistent per metric and stable
// to render.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		r.mu.Lock()
		sers := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			sers = append(sers, s)
		}
		r.mu.Unlock()
		sort.Slice(sers, func(i, j int) bool { return sers[i].sig < sers[j].sig })

		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind, Bounds: f.bounds}
		for _, s := range sers {
			ss := SeriesSnapshot{Labels: s.labels}
			switch {
			case s.counter != nil:
				ss.Value = float64(s.counter.Value())
			case s.gauge != nil:
				ss.Value = s.gauge.Value()
			case s.hist != nil:
				ss.Buckets = make([]int64, len(s.hist.buckets))
				var cum int64
				for i := range s.hist.buckets {
					cum += s.hist.buckets[i].Load()
					ss.Buckets[i] = cum
				}
				ss.Count = cum
				ss.Sum = s.hist.Sum()
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}
