// Package policy implements cache replacement policies as pluggable per-set
// state machines. The load-bearing one is QuadAge, the quad-age pseudo-LRU
// that prior work reverse-engineered on Intel client LLCs and that the Leaky
// Way paper's PREFETCHNTA properties are defined against. Tree-PLRU and
// Bit-PLRU cover the private levels, and the remaining policies exist as
// baselines and for countermeasure studies.
package policy

// AccessClass tells a policy what kind of request caused a fill or hit, so
// that it can treat demand loads and non-temporal prefetches differently —
// the asymmetry the entire paper exploits.
type AccessClass int

const (
	// ClassLoad is a demand load (or store) from the core.
	ClassLoad AccessClass = iota
	// ClassNTA is a PREFETCHNTA software prefetch.
	ClassNTA
	// ClassT0 is a PREFETCHT0-style temporal software prefetch.
	ClassT0
	// ClassHW is a hardware prefetcher fill.
	ClassHW
)

// String implements fmt.Stringer.
func (c AccessClass) String() string {
	switch c {
	case ClassLoad:
		return "load"
	case ClassNTA:
		return "nta"
	case ClassT0:
		return "t0"
	case ClassHW:
		return "hw"
	}
	return "unknown"
}

// Policy is a factory for per-set replacement state.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// NewSet creates replacement state for one set with the given number
	// of ways.
	NewSet(ways int) SetState
}

// SetState is the replacement bookkeeping for a single cache set. The cache
// guarantees way indices are in range and that OnFill follows a Victim (or
// targets an invalid way).
type SetState interface {
	// Victim selects the way to evict, consulting evictable to skip ways
	// that cannot currently be replaced (invalid ways are never passed in
	// here — the cache fills those directly). It returns -1 if no way is
	// evictable. Victim may mutate state (e.g. quad-age aging).
	Victim(evictable func(way int) bool) int
	// OnFill records that a line of the given class was installed in way.
	OnFill(way int, cls AccessClass)
	// OnHit records a hit of the given class on way.
	OnHit(way int, cls AccessClass)
	// OnInvalidate clears any per-way state when a line is removed
	// without replacement (flush or back-invalidation).
	OnInvalidate(way int)
	// Snapshot exposes per-way metadata (ages/ranks) for tracing. The
	// meaning is policy-specific; -1 marks "no meaningful value".
	Snapshot() []int
}
