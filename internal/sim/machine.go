// Package sim runs attacker/victim programs against a hier.Hierarchy on a
// deterministic global cycle clock. Each program (Agent) is an ordinary Go
// function making memory operations through its Core; the Machine resumes
// exactly one agent at a time — always the one earliest on the clock — so
// cross-core interleavings are reproducible bit-for-bit for a given seed,
// while the attack code reads like the paper's listings.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"
	"sort"

	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/trace"
)

// errKilled is panicked inside daemon agents when the machine shuts down;
// the agent wrapper recovers it.
type killedError struct{}

func (killedError) Error() string { return "sim: agent killed" }

// Machine owns the hierarchy, the physical memory pool and the agents.
type Machine struct {
	H    *hier.Hierarchy
	Phys *mem.PhysMem

	// Kernel is the shared kernel address space: mapped into every
	// process's upper half, inaccessible but *translated* — exactly the
	// surface prefetch-timing KASLR attacks probe. Nil until
	// KernelSpace is first called.
	Kernel *mem.AddressSpace

	agents []*Agent
	rng    *rand.Rand
	// SyncSlack is the ± jitter applied by Core.WaitUntil, modelling the
	// granularity of a TSC spin-wait loop.
	SyncSlack int64

	// faults holds scheduled disturbances keyed by agent name; see
	// fault.go. FaultNotify, when set, observes each disturbance firing.
	faults      map[string]*agentFaults
	FaultNotify func(agent, kind string, at, detail, dur int64)

	// tr, when non-nil, receives sim events and is shared with the
	// hierarchy; see SetTracer.
	tr *trace.Tracer

	// batch/slot/quantumEnd connect a machine built by a BatchMachine's
	// MachineSource to the lockstep scheduler (batch.go): Run yields the
	// slot's turn whenever the clock passes quantumEnd. All three are zero
	// on scalar machines and the hook never fires.
	batch      *BatchMachine
	slot       int
	quantumEnd int64
}

// SetTracer attaches an event sink to the machine and its hierarchy. The
// machine resumes exactly one agent at a time, so a single tracer per
// machine is race-free and its stream is a pure function of the seed.
func (m *Machine) SetTracer(t *trace.Tracer) {
	m.tr = t
	m.H.SetTracer(t)
}

// Tracer returns the attached event sink (nil when untraced).
func (m *Machine) Tracer() *trace.Tracer { return m.tr }

// NewMachine builds a machine for the given platform config with a physical
// memory pool of memBytes. All jitter, frame shuffling and sync slack derive
// from seed.
func NewMachine(cfg hier.Config, memBytes uint64, seed int64) (*Machine, error) {
	cfg.Seed = seed
	h, err := hier.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Machine{
		H:         h,
		Phys:      mem.NewPhysMem(memBytes, seed^0x9e3779b9),
		rng:       rand.New(rand.NewSource(seed ^ 0x5DEECE66D)),
		SyncSlack: 3,
	}, nil
}

// MustNewMachine is NewMachine for static configs; it panics on error.
func MustNewMachine(cfg hier.Config, memBytes uint64, seed int64) *Machine {
	m, err := NewMachine(cfg, memBytes, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// NewSpace allocates a fresh address space over the machine's memory.
func (m *Machine) NewSpace() *mem.AddressSpace { return mem.NewAddressSpace(m.Phys) }

// KernelSpace returns the machine-wide kernel address space, creating it on
// first use.
func (m *Machine) KernelSpace() *mem.AddressSpace {
	if m.Kernel == nil {
		m.Kernel = mem.NewAddressSpace(m.Phys)
	}
	return m.Kernel
}

// Agent is one running program pinned to a core.
type Agent struct {
	Name   string
	Daemon bool

	core    *Core
	fn      func(*Core)
	resume  chan struct{}
	yielded chan struct{}
	done    bool
	err     any    // recovered panic, if any (killedError excluded)
	stack   []byte // goroutine stack captured with err

	// Fault state (fault.go): scheduled disturbances, perceived-clock skew
	// and its sub-cycle accumulator.
	faults   *agentFaults
	skew     int64
	driftAcc int64
}

// Spawn registers a program pinned to coreID using the given address space.
// The agent does not run until Run is called. A nil address space gets a
// fresh private one.
func (m *Machine) Spawn(name string, coreID int, as *mem.AddressSpace, fn func(*Core)) *Agent {
	return m.spawn(name, coreID, as, fn, false)
}

// SpawnDaemon registers a background program (victim, noise generator) that
// is allowed to loop forever; Run returns when all non-daemon agents finish
// and daemons are then killed.
func (m *Machine) SpawnDaemon(name string, coreID int, as *mem.AddressSpace, fn func(*Core)) *Agent {
	return m.spawn(name, coreID, as, fn, true)
}

func (m *Machine) spawn(name string, coreID int, as *mem.AddressSpace, fn func(*Core), daemon bool) *Agent {
	if coreID < 0 || coreID >= m.H.Config().Cores {
		panic(fmt.Sprintf("sim: Spawn(%q): core %d out of range", name, coreID))
	}
	if as == nil {
		as = m.NewSpace()
	}
	a := &Agent{
		Name:    name,
		Daemon:  daemon,
		fn:      fn,
		resume:  make(chan struct{}),
		yielded: make(chan struct{}),
	}
	a.core = &Core{m: m, agent: a, ID: coreID, AS: as}
	a.faults = m.faults[name] // nil unless faults were staged for this name
	m.agents = append(m.agents, a)
	if m.tr.On(trace.PkgSim) {
		e := trace.E("sim", "spawn", 0)
		e.Agent, e.Core = name, coreID
		if daemon {
			e.Note = "daemon"
		}
		m.tr.Emit(e)
	}
	return a
}

// AgentError is the panic value Run raises when an agent panicked: it
// names the agent and carries the original panic value plus the agent
// goroutine's stack, so a test failure points at the faulty agent instead
// of a bare scheduler-internal value.
type AgentError struct {
	Agent string
	Value any
	Stack []byte
}

func (e *AgentError) Error() string {
	return fmt.Sprintf("sim: agent %q panicked: %v\n%s", e.Agent, e.Value, e.Stack)
}

// Run starts every spawned agent and interleaves them in clock order until
// all non-daemon agents complete; daemons are then torn down. It panics
// with an *AgentError (naming the agent and carrying the original panic
// value) if any agent panicked — including a daemon that panics during
// teardown — since that always indicates a harness bug. Agents spawned
// after Run returns belong to a fresh Run call.
func (m *Machine) Run() {
	for _, a := range m.agents {
		a.start()
	}
	for {
		a := m.nextRunnable()
		if a == nil {
			break
		}
		if m.batch != nil && a.core.now > m.quantumEnd {
			// Lockstep batching: this machine has used up its granted
			// quantum; park the fleet slot until the scheduler's next
			// grant. Scheduling never alters which agent runs next or any
			// RNG draw, so batched output is byte-identical to scalar.
			m.quantumEnd = m.batch.yield(m, a.core.now)
		}
		if m.tr != nil {
			// Stamp the agent context so hier events emitted during this
			// agent's turn land on its track.
			m.H.SetTraceAgent(a.Name, a.core.ID)
		}
		// Batched run-until-blocked: let the agent keep executing ops
		// without a channel handshake for as long as it would remain
		// nextRunnable's pick anyway. This removes two goroutine context
		// switches per memory operation — the dominant cost of the
		// handshake-per-op design — while preserving the exact op
		// interleaving, RNG draw order and trace stream.
		a.core.runLimit = m.batchLimit(a)
		a.resume <- struct{}{}
		<-a.yielded
		if a.done && a.err != nil {
			m.killAll() // ignore secondary teardown errors; the first panic wins
			m.agents = nil
			panic(&AgentError{Agent: a.Name, Value: a.err, Stack: a.stack})
		}
		if a.done && a.err == nil && m.tr.On(trace.PkgSim) {
			e := trace.E("sim", "done", a.core.now)
			e.Agent, e.Core = a.Name, a.core.ID
			m.tr.Emit(e)
		}
	}
	err := m.killAll()
	m.agents = nil
	if err != nil {
		panic(err)
	}
}

// nextRunnable picks the live non-done agent with the smallest core clock,
// but only while at least one non-daemon agent remains.
func (m *Machine) nextRunnable() *Agent {
	workLeft := false
	for _, a := range m.agents {
		if !a.Daemon && !a.done {
			workLeft = true
			break
		}
	}
	if !workLeft {
		return nil
	}
	var best *Agent
	for _, a := range m.agents {
		if a.done {
			continue
		}
		if best == nil || a.core.now < best.core.now {
			best = a
		}
	}
	return best
}

// batchLimit computes how far agent a's clock may advance while it is still
// the agent nextRunnable would pick. Ties go to the earliest-spawned agent,
// so a must stay strictly below every earlier live agent's clock and at or
// below every later one's. When no other agent is live the limit is
// unbounded and a runs to completion in a single resume.
func (m *Machine) batchLimit(a *Agent) int64 {
	limit := int64(math.MaxInt64)
	seenSelf := false
	for _, b := range m.agents {
		if b == a {
			seenSelf = true
			continue
		}
		if b.done {
			continue
		}
		bound := b.core.now
		if !seenSelf {
			// b spawned earlier: it wins clock ties, so a must stay
			// strictly below it.
			bound--
		}
		if bound < limit {
			limit = bound
		}
	}
	return limit
}

// killAll tears down any still-running agents (daemons). The expected
// teardown path is the killedError panic the agent wrapper swallows; a
// daemon that instead dies with a real panic (e.g. a deferred function
// blowing up while unwinding) is reported, not silently discarded.
func (m *Machine) killAll() *AgentError {
	var firstErr *AgentError
	for _, a := range m.agents {
		if a.done {
			continue
		}
		close(a.resume)
		<-a.yielded
		if a.err != nil && firstErr == nil {
			firstErr = &AgentError{Agent: a.Name, Value: a.err, Stack: a.stack}
		}
	}
	return firstErr
}

// start launches the agent goroutine; it stays parked until first resumed.
func (a *Agent) start() {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, isKill := r.(killedError); !isKill {
					a.err = r
					a.stack = debug.Stack()
				}
			}
			a.done = true
			a.yielded <- struct{}{}
		}()
		if _, ok := <-a.resume; !ok {
			panic(killedError{})
		}
		a.fn(a.core)
	}()
}

// yield hands control back to the machine and waits for the next turn.
func (a *Agent) yield() {
	a.yielded <- struct{}{}
	if _, ok := <-a.resume; !ok {
		panic(killedError{})
	}
}

// AgentNames lists spawned agents in deterministic order (test helper).
func (m *Machine) AgentNames() []string {
	names := make([]string, len(m.agents))
	for i, a := range m.agents {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}
