// Package stats provides the summary statistics the experiment harness
// reports: means, percentiles, empirical CDFs, histograms, and the
// information-theoretic channel-capacity metric the paper uses for Figure 8
// and Table II.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses a sample of cycle measurements.
type Summary struct {
	N      int
	Mean   float64
	Stdev  float64
	Min    int64
	Max    int64
	Median int64
	P95    int64
	P99    int64
}

// Summarize computes a Summary. It copies and sorts internally; the input is
// not modified. An empty input yields a zero Summary.
func Summarize(samples []int64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum, sumsq float64
	for _, v := range sorted {
		f := float64(v)
		sum += f
		sumsq += f * f
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Stdev:  math.Sqrt(variance),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: percentileSorted(sorted, 50),
		P95:    percentileSorted(sorted, 95),
		P99:    percentileSorted(sorted, 99),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f sd=%.1f min=%d p50=%d p95=%d max=%d",
		s.N, s.Mean, s.Stdev, s.Min, s.Median, s.P95, s.Max)
}

// Percentile returns the p-th percentile (0..100) of the sample.
func Percentile(samples []int64, p float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []int64, p float64) int64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Mean returns the arithmetic mean of the sample (0 for empty input).
func Mean(samples []int64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range samples {
		sum += float64(v)
	}
	return sum / float64(len(samples))
}

// FractionAbove returns the fraction of samples strictly above the
// threshold, used for hit/miss classification checks.
func FractionAbove(samples []int64, threshold int64) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := 0
	for _, v := range samples {
		if v > threshold {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}

// BinaryEntropy is H(p) in bits; H(0)=H(1)=0.
func BinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// ChannelCapacity applies the paper's metric: raw transmission rate scaled
// by 1−H(e), where e is the bit error rate. Rates share whatever unit the
// caller uses (the paper reports KB/s). An error rate at or beyond 0.5
// yields zero capacity.
func ChannelCapacity(rawRate, errorRate float64) float64 {
	if errorRate >= 0.5 {
		return 0
	}
	if errorRate < 0 {
		errorRate = 0
	}
	return rawRate * (1 - BinaryEntropy(errorRate))
}
