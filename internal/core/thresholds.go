// Package core is the paper's attacker toolkit: timing-threshold
// calibration, congruent-address oracles used to stage experiments, the
// priming access patterns of Listings 1 and 2, and LLC set-state tracing for
// the state-walk figures. The covert channels (package channel), side
// channels (package attack) and eviction-set construction (package evset)
// are all built from these primitives.
package core

import (
	"leakyway/internal/mem"
	"leakyway/internal/sim"
	"leakyway/internal/trace"
)

// Thresholds are the calibrated timing cut-offs an attacker derives before
// mounting an attack (the paper's Th0).
type Thresholds struct {
	// MissThreshold separates "serviced from some cache level" from
	// "serviced from DRAM" for timed loads and timed NTA prefetches. On
	// the paper's Skylake this lands around 150 cycles.
	MissThreshold int64
	// L1Threshold separates L1 hits from everything slower; Prime+Scope's
	// scope loop keys on it.
	L1Threshold int64
}

// Calibrate measures the agent's own timing tiers and derives thresholds,
// exactly as a real attacker would before mounting an attack. It allocates a
// scratch page in the agent's address space.
func Calibrate(c *sim.Core, samples int) Thresholds {
	if samples <= 0 {
		samples = 64
	}
	scratch := c.Alloc(mem.PageSize)

	maxL1, minMiss := int64(0), int64(1<<62)
	for i := 0; i < samples; i++ {
		// DRAM tier: flush, fence, timed load.
		c.Flush(scratch)
		c.Fence()
		if t := c.TimedLoad(scratch); t < minMiss {
			minMiss = t
		}
		// L1 tier: immediate timed reload.
		if t := c.TimedLoad(scratch); t > maxL1 {
			maxL1 = t
		}
	}
	// The LLC-hit tier sits between the two; the midpoint classifies all
	// three correctly (L1 ≈ 70, LLC ≈ 95, DRAM ≈ 210+ on the Skylake
	// calibration).
	th := Thresholds{
		MissThreshold: (maxL1 + minMiss) / 2,
		L1Threshold:   maxL1 + 5,
	}
	if tr := c.Tracer(); tr.On(trace.PkgChannel) {
		e := trace.E("channel", "calibrate", c.Now())
		e.Agent, e.Core = c.AgentName(), c.ID
		e.Lat, e.Val = th.MissThreshold, th.L1Threshold
		tr.Emit(e)
	}
	return th
}

// IsMiss classifies a timed load/prefetch as a DRAM access.
func (t Thresholds) IsMiss(cycles int64) bool { return cycles > t.MissThreshold }
