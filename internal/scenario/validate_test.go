package scenario

import (
	"strings"
	"testing"
)

// minimal is the smallest valid template; negative cases below are
// mutations of it (or of per-kind variants).
const minimal = `id: demo
title: Demo scenario
kind: statewalk
statewalk:
  message: "10"
  calibrate_samples: 8
  receiver_ready: 30000
  phase_step: 5000
`

// TestValidateNegative is the strictness table: every malformed template
// must be rejected with an error that names the file and the exact field
// path, and must yield a nil Spec (never a partially-applied one).
func TestValidateNegative(t *testing.T) {
	cases := []struct {
		name string
		yaml string
		// path is the field path the error must carry; msg a fragment of
		// the diagnostic.
		path, msg string
	}{
		{
			name: "missing id",
			yaml: "title: T\nkind: pipeline\npipeline:\n  message: \"1\"\n",
			path: "id", msg: "required",
		},
		{
			name: "invalid id",
			yaml: "id: Demo_X\ntitle: T\nkind: pipeline\npipeline:\n  message: \"1\"\n",
			path: "id", msg: "not a valid scenario id",
		},
		{
			name: "missing title",
			yaml: "id: demo\nkind: pipeline\npipeline:\n  message: \"1\"\n",
			path: "title", msg: "required",
		},
		{
			name: "unknown kind",
			yaml: "id: demo\ntitle: T\nkind: warp\n",
			path: "kind", msg: `unknown kind "warp"`,
		},
		{
			name: "missing kind section",
			yaml: "id: demo\ntitle: T\nkind: statewalk\n",
			path: "statewalk", msg: `kind "statewalk" requires`,
		},
		{
			name: "conflicting section",
			yaml: minimal + "pipeline:\n  message: \"1\"\n",
			path: "pipeline", msg: `conflicts with kind "statewalk"`,
		},
		{
			name: "unknown top-level field",
			yaml: minimal + "bogus: 1\n",
			path: "bogus", msg: "unknown field",
		},
		{
			name: "unknown nested field",
			yaml: minimal + "platform:\n  warp_drive: 1\n",
			path: "platform.warp_drive", msg: "unknown field",
		},
		{
			name: "wrong scalar type",
			yaml: strings.Replace(minimal, "title: Demo scenario", "title: 5", 1),
			path: "title", msg: "",
		},
		{
			name: "unknown platform base",
			yaml: minimal + "platform:\n  base: alderlake\n",
			path: "platform.base", msg: "unknown platform",
		},
		{
			name: "unknown llc policy",
			yaml: minimal + "platform:\n  llc_policy: fifo\n",
			path: "platform.llc_policy", msg: "unknown policy",
		},
		{
			name: "non-power-of-two sets",
			yaml: minimal + "platform:\n  l1_sets: 48\n",
			path: "platform.l1_sets", msg: "power of two",
		},
		{
			name: "negative geometry",
			yaml: minimal + "platform:\n  cores: -1\n",
			path: "platform.cores", msg: "non-negative",
		},
		{
			name: "statewalk bad message",
			yaml: strings.Replace(minimal, `message: "10"`, "message: abc", 1),
			path: "statewalk.message", msg: "0s and 1s",
		},
		{
			name: "statewalk zero samples",
			yaml: strings.Replace(minimal, "calibrate_samples: 8", "calibrate_samples: 0", 1),
			path: "statewalk.calibrate_samples", msg: "must be positive",
		},
		{
			name: "transport on non-faults kind",
			yaml: minimal + "transport:\n  max_retries: 3\n",
			path: "transport", msg: `only used by kind "faults"`,
		},
		{
			name: "channel invalid on platform",
			yaml: minimal + "channel:\n  interval: -5\n",
			path: "channel", msg: "invalid for platform",
		},
		{
			name: "sweep unknown channel",
			yaml: "id: demo\ntitle: T\nkind: sweep\nsweep:\n  bits: 10\n  channels:\n" +
				"    - channel: morse\n      intervals: [1000]\n",
			path: "sweep.channels[0].channel", msg: "unknown channel",
		},
		{
			name: "sweep duplicate channel",
			yaml: "id: demo\ntitle: T\nkind: sweep\nsweep:\n  bits: 10\n  channels:\n" +
				"    - channel: ntpntp\n      intervals: [1000]\n" +
				"    - channel: ntpntp\n      intervals: [2000]\n",
			path: "sweep.channels[1].channel", msg: "duplicate channel",
		},
		{
			name: "sweep non-positive interval",
			yaml: "id: demo\ntitle: T\nkind: sweep\nsweep:\n  bits: 10\n  channels:\n" +
				"    - channel: ntpntp\n      intervals: [1000, 0]\n",
			path: "sweep.channels[0].intervals[1]", msg: "must be positive",
		},
		{
			name: "lanes exceed llc sets",
			yaml: "id: demo\ntitle: T\nkind: lanes\nlanes:\n  bits: 10\n" +
				"  lane_counts: [100000]\n  offsets: [0]\n  lane_cost: 100\n",
			path: "lanes.lane_counts[0]", msg: "sets per slice",
		},
		{
			name: "noise duplicate period",
			yaml: "id: demo\ntitle: T\nkind: noise\nnoise:\n  bits: 10\n" +
				"  periods: [0, 0]\n  interleave_depth: 7\n",
			path: "noise.periods[1]", msg: "duplicate period",
		},
		{
			name: "faults bad scenario key",
			yaml: "id: demo\ntitle: T\nkind: faults\nfaults:\n  raw_bits: 10\n  arq_bits: 8\n" +
				"  interleave_depth: 7\n  scenarios:\n    - key: \"Bad Key\"\n",
			path: "faults.scenarios[0].key", msg: "not a valid scenario key",
		},
		{
			name: "faults duplicate key",
			yaml: "id: demo\ntitle: T\nkind: faults\nfaults:\n  raw_bits: 10\n  arq_bits: 8\n" +
				"  interleave_depth: 7\n  scenarios:\n    - key: none\n    - key: none\n",
			path: "faults.scenarios[1].key", msg: "duplicate key",
		},
		{
			name: "unknown fault type",
			yaml: "id: demo\ntitle: T\nkind: faults\nfaults:\n  raw_bits: 10\n  arq_bits: 8\n" +
				"  interleave_depth: 7\n  scenarios:\n    - key: x\n      faults:\n        - type: meltdown\n",
			path: "faults.scenarios[0].faults[0].type", msg: "unknown fault type",
		},
		{
			name: "fault field of wrong type",
			yaml: "id: demo\ntitle: T\nkind: faults\nfaults:\n  raw_bits: 10\n  arq_bits: 8\n" +
				"  interleave_depth: 7\n  scenarios:\n    - key: x\n      faults:\n" +
				"        - type: pollution\n          bursts: 2\n          walks: 2\n          ppm: 5\n",
			path: "faults.scenarios[0].faults[0].ppm", msg: "not used by fault type",
		},
		{
			name: "duplicate fault in one scenario",
			yaml: "id: demo\ntitle: T\nkind: faults\nfaults:\n  raw_bits: 10\n  arq_bits: 8\n" +
				"  interleave_depth: 7\n  scenarios:\n    - key: x\n      faults:\n" +
				"        - type: preemption\n          count: 2\n          min_dur: 10\n          max_dur: 20\n" +
				"        - type: preemption\n          count: 2\n          min_dur: 10\n          max_dur: 20\n",
			path: "faults.scenarios[0].faults[1]", msg: "duplicate fault",
		},
		{
			name: "victim bad key",
			yaml: "id: demo\ntitle: T\nkind: victim\nvictim:\n  program: aes\n  key: zz\n" +
				"  encryptions: 10\n  window: 1000\n  start: 1000\n",
			path: "victim.key", msg: "32 hex characters",
		},
		{
			name: "extract bad regex",
			yaml: minimal + "extract:\n  - name: x\n    type: regex\n    pattern: \"(\"\n",
			path: "extract[0].pattern", msg: "",
		},
		{
			name: "extract group out of range",
			yaml: minimal + "extract:\n  - name: x\n    type: regex\n    pattern: peak\n    group: 2\n",
			path: "extract[0].group", msg: "out of range",
		},
		{
			name: "extract duplicate name",
			yaml: minimal + "extract:\n  - name: x\n    type: metric\n    metric: a\n" +
				"  - name: x\n    type: metric\n    metric: b\n",
			path: "extract[1].name", msg: "duplicate extractor name",
		},
		{
			name: "extract unknown type",
			yaml: minimal + "extract:\n  - name: x\n    type: xpath\n",
			path: "extract[0].type", msg: "unknown extractor type",
		},
		{
			name: "assert both metric and extract",
			yaml: minimal + "extract:\n  - name: x\n    type: metric\n    metric: a\n" +
				"assert:\n  - metric: a\n    extract: x\n    op: eq\n    value: 1\n",
			path: "assert[0]", msg: "exactly one of metric or extract",
		},
		{
			name: "assert undeclared extractor",
			yaml: minimal + "assert:\n  - extract: nope\n    op: eq\n    value: 1\n",
			path: "assert[0].extract", msg: "undeclared extractor",
		},
		{
			name: "assert unknown op",
			yaml: minimal + "assert:\n  - metric: a\n    op: near\n    value: 1\n",
			path: "assert[0].op", msg: "unknown op",
		},
		{
			name: "assert inverted between",
			yaml: minimal + "assert:\n  - metric: a\n    op: between\n    value: 5\n    max: 1\n",
			path: "assert[0].max", msg: "value <= max",
		},
		{
			name: "assert stray tol",
			yaml: minimal + "assert:\n  - metric: a\n    op: eq\n    value: 1\n    tol: 0.5\n",
			path: "assert[0].tol", msg: "only used by the approx op",
		},
	}
	const file = "bad.yaml"
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := Parse([]byte(tc.yaml), file)
			if err == nil {
				t.Fatalf("accepted malformed template:\n%s", tc.yaml)
			}
			if spec != nil {
				t.Fatalf("error with non-nil spec: %v", err)
			}
			got := err.Error()
			if !strings.Contains(got, file) {
				t.Errorf("error does not name the file %q: %v", file, err)
			}
			if !strings.Contains(got, tc.path) {
				t.Errorf("error does not name field path %q: %v", tc.path, err)
			}
			if tc.msg != "" && !strings.Contains(got, tc.msg) {
				t.Errorf("error lacks %q: %v", tc.msg, err)
			}
		})
	}
}

// TestValidateMinimalKinds parses one minimal valid template per kind —
// the strict loader must accept every section it documents.
func TestValidateMinimalKinds(t *testing.T) {
	cases := map[string]string{
		"statewalk": minimal,
		"pipeline":  "id: demo\ntitle: T\nkind: pipeline\npipeline:\n  message: \"1011\"\n",
		"sweep": "id: demo\ntitle: T\nkind: sweep\nsweep:\n  bits: 10\n  channels:\n" +
			"    - channel: ntpntp\n      intervals: [2000, 4000]\n",
		"lanes": "id: demo\ntitle: T\nkind: lanes\nlanes:\n  bits: 10\n" +
			"  lane_counts: [1, 2]\n  offsets: [0, 100]\n  lane_cost: 100\n",
		"noise": "id: demo\ntitle: T\nkind: noise\nnoise:\n  bits: 10\n" +
			"  periods: [0, 40000]\n  interleave_depth: 7\n",
		"faults": "id: demo\ntitle: T\nkind: faults\ntransport:\n  max_retries: 3\n" +
			"  fer_window: 10\n  fer_threshold: 0.5\n  channel:\n    noise_period: 0\n" +
			"faults:\n  raw_bits: 10\n  arq_bits: 8\n  interleave_depth: 7\n" +
			"  scenarios:\n    - key: none\n    - key: drift\n      faults:\n" +
			"        - type: clock-drift\n          ppm: -8000\n",
		"victim": "id: demo\ntitle: T\nkind: victim\nvictim:\n  program: aes\n" +
			"  key: 000102030405060708090a0b0c0d0e0f\n  encryptions: 10\n" +
			"  window: 1000\n  start: 1000\n",
	}
	for kind, doc := range cases {
		t.Run(kind, func(t *testing.T) {
			spec, err := Parse([]byte(doc), kind+".yaml")
			if err != nil {
				t.Fatalf("minimal %s template rejected: %v", kind, err)
			}
			if spec.Kind != kind {
				t.Fatalf("parsed kind %q, want %q", spec.Kind, kind)
			}
		})
	}
}

// TestPlatformSpecConfig pins the override semantics: zero-valued geometry
// inherits the base, pointer fields apply explicit false/zero.
func TestPlatformSpecConfig(t *testing.T) {
	doc := minimal + `platform:
  base: kabylake
  name: Custom Box
  llc_ways: 12
  llc_policy: lru
  adjacent_line: true
  non_inclusive: false
  llc_partition_ways: 0
`
	spec, err := Parse([]byte(doc), "p.yaml")
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.Platform.Config()
	if cfg.Name != "Custom Box" {
		t.Errorf("name override lost: %q", cfg.Name)
	}
	if cfg.LLCWays != 12 {
		t.Errorf("llc_ways override lost: %d", cfg.LLCWays)
	}
	if !cfg.HWPrefetch.AdjacentLine {
		t.Error("adjacent_line: true not applied")
	}
	if cfg.NonInclusive {
		t.Error("non_inclusive: false flipped the config")
	}
	if cfg.LLCPartitionWays != 0 {
		t.Errorf("llc_partition_ways: 0 not applied, got %d", cfg.LLCPartitionWays)
	}
	// Inherited geometry stays at the Kaby Lake base values.
	if cfg.L1Sets == 0 || cfg.LLCSlices == 0 {
		t.Errorf("base geometry not inherited: %+v", cfg)
	}
}
