package leakyway

import (
	"bytes"
	"strings"
	"testing"
)

// The facade tests exercise the public API end to end, the way the examples
// and a downstream user would.

func TestPlatforms(t *testing.T) {
	sky, kbl := Skylake(), KabyLake()
	if sky.Name == kbl.Name {
		t.Fatal("platforms indistinguishable")
	}
	if len(Platforms()) != 2 {
		t.Fatal("want both paper platforms")
	}
	if _, ok := PlatformByName("skylake"); !ok {
		t.Fatal("skylake not resolvable")
	}
	if _, ok := PlatformByName("pentium"); ok {
		t.Fatal("nonexistent platform resolved")
	}
}

func TestPublicChannelRoundTrip(t *testing.T) {
	plat := Skylake()
	cfg := DefaultChannelConfig(plat)
	cfg.Interval = 1600
	cfg.NoisePeriod = 0
	payload := []byte("public api")
	m := MustNewMachine(plat, 1<<30, 5)
	rep, bits := RunNTPNTP(m, cfg, BytesToBits(payload))
	if rep.Errors != 0 {
		t.Fatalf("errors: %d", rep.Errors)
	}
	if got := string(BitsToBytes(bits)); got != string(payload) {
		t.Fatalf("round trip = %q", got)
	}
}

func TestPublicPrimeProbe(t *testing.T) {
	plat := Skylake()
	cfg := DefaultChannelConfig(plat)
	cfg.Interval = 9000
	cfg.NoisePeriod = 0
	m := MustNewMachine(plat, 1<<30, 5)
	rep, _ := RunPrimeProbe(m, cfg, RandomMessage(300, 2))
	if rep.BER > 0.02 {
		t.Fatalf("Prime+Probe BER = %.2f%%", 100*rep.BER)
	}
}

func TestPublicAttacks(t *testing.T) {
	res := RunScope(Skylake(), PrimePrefetchScope, ScopeConfig{Iterations: 100}, 3)
	if len(res.Detections) == 0 {
		t.Fatal("scope attack detected nothing")
	}
	ref := RunRefresh(Skylake(), PrefetchRefreshV2, RefreshConfig{Iterations: 100}, 3)
	if ref.Accuracy < 0.95 {
		t.Fatalf("refresh accuracy = %.2f", ref.Accuracy)
	}
}

func TestPublicEvset(t *testing.T) {
	m := MustNewMachine(Skylake(), 1<<30, 9)
	as := m.NewSpace()
	var res EvsetResult
	var err error
	var target VAddr
	m.Spawn("a", 0, as, func(c *Core) {
		th := Calibrate(c, 32)
		target = c.Alloc(PageSize)
		res, err = BuildPrefetchEvset(c, target, EvsetOptions{
			Desired: 4, Pool: NewEvsetPool(c, target, 2048), Thresholds: th,
		})
	})
	m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ok := VerifyEvset(m, as, target, res.Set); ok != 4 {
		t.Fatalf("verified %d/4 congruent lines", ok)
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if len(Experiments()) < 20 {
		t.Fatalf("registry holds %d experiments; want the full suite", len(Experiments()))
	}
	var buf bytes.Buffer
	ctx := NewExperimentContext(&buf)
	ctx.Quick = true
	r, err := RunExperiment(ctx, "fig1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["eviction_order_matches_paper"] != 1 {
		t.Fatal("fig1 metric wrong through the facade")
	}
	if !strings.Contains(buf.String(), "fig1") {
		t.Fatal("no rendered output")
	}
}

func TestRepetitionCodecFacade(t *testing.T) {
	bits := BytesToBits([]byte{0xA5})
	enc := EncodeRepetition(bits, 3)
	dec := DecodeRepetition(enc, 3)
	for i := range bits {
		if bits[i] != dec[i] {
			t.Fatal("codec mismatch")
		}
	}
}
