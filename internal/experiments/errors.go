package experiments

import "fmt"

// EngineVersion identifies the simulation engine for result-cache keying.
// The daemon's content-addressed store keys every entry on
// hash(canonical template ‖ seed ‖ jobs ‖ EngineVersion), so bumping this
// string invalidates cached results whenever a change could alter any
// experiment's output. Bump it in any PR that changes simulation
// behaviour, seed derivation, metric names or report rendering.
const EngineVersion = "leakyway-engine/7"

// taskFail carries a structured experiment failure through a panic. The
// experiment helpers raise it with failf instead of panicking with a bare
// error, and runGuarded unwraps it back into a plain error — so a failed
// job's record reads "experiment stealth: map shared line: <cause>"
// instead of "panic: <opaque>".
type taskFail struct{ err error }

// taskAbort carries a context-cancellation unwind. Parallel raises it on
// the task goroutine when the run's context is cancelled between trial
// shards; runGuarded converts it into the context's error, so RunAll
// returns context.Canceled (or DeadlineExceeded) to the caller.
type taskAbort struct{ err error }

// failf aborts the running experiment with an error naming the experiment
// and the phase that failed. It must only be called on a goroutine whose
// panics the engine recovers: the task goroutine itself, or a trial shard
// run by ctx.Parallel (whose helpers forward panics to the task).
func failf(id, phase string, err error) {
	panic(taskFail{fmt.Errorf("experiment %s: %s: %w", id, phase, err)})
}
