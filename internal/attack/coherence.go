package attack

import (
	"leakyway/internal/core"
	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

// CoherenceResult reports a coherence-state attack run (Yao et al., the
// paper's reference [67]): the attacker detects the victim's *writes* to a
// shared line purely from load timing — a write invalidates the attacker's
// private copy and leaves the line Modified remotely, so the attacker's
// next load misses its L1 and pays the cache-to-cache forwarding penalty.
// No flushes and no LLC evictions: stealthier than Flush+Reload and
// invisible to eviction-based detectors.
type CoherenceResult struct {
	// IterLatencies is the attacker's per-window cost.
	IterLatencies []int64
	// Truth and Detected are per-window ground truth (victim wrote) and
	// verdicts.
	Truth, Detected []bool
	// Accuracy is the fraction classified correctly.
	Accuracy float64
}

// RunCoherence mounts the write-detection attack against a windowed victim
// that stores to the shared line in '1' windows.
func RunCoherence(platformCfg hier.Config, cfg ClassicConfig, seed int64) CoherenceResult {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1000
	}
	if cfg.Window <= 0 {
		cfg.Window = 5000
	}
	m := sim.MustNewMachine(platformCfg, 1<<30, seed)
	attackerAS := m.NewSpace()
	victimAS := m.NewSpace()

	dt, err := attackerAS.Alloc(mem.PageSize)
	if err != nil {
		panic(err)
	}
	if err := victimAS.MapShared(attackerAS, dt, mem.PageSize); err != nil {
		panic(err)
	}

	const start = int64(50_000)
	pattern := make([]bool, 64)
	rng := newXorshift(uint64(seed)*5 + 11)
	for i := range pattern {
		pattern[i] = rng.next()&1 == 1
	}
	m.SpawnDaemon("victim", 1, victimAS, func(c *sim.Core) {
		for i := 0; ; i++ {
			c.WaitUntil(start + int64(i)*cfg.Window + cfg.Window/2)
			if pattern[i%len(pattern)] {
				c.Store(dt)
			}
		}
	})

	res := CoherenceResult{}
	res.Truth = make([]bool, cfg.Iterations)
	res.Detected = make([]bool, cfg.Iterations)
	for i := range res.Truth {
		res.Truth[i] = pattern[i%len(pattern)]
	}

	m.Spawn("attacker", 0, attackerAS, func(c *sim.Core) {
		th := core.Calibrate(c, 48)
		c.Load(dt) // take a private copy before the epoch
		for it := 0; it < cfg.Iterations; it++ {
			c.WaitUntil(start + int64(it+1)*cfg.Window)
			t0 := c.Now()
			// A write invalidated our copy: the reload leaves the
			// L1-hit band (LLC + forwarding penalty). No write: our
			// private copy is untouched and the load is an L1 hit.
			t := c.TimedLoad(dt)
			res.Detected[it] = t > th.L1Threshold
			res.IterLatencies = append(res.IterLatencies, c.Now()-t0)
		}
	})
	m.Run()

	correct := 0
	for i := range res.Truth {
		if res.Truth[i] == res.Detected[i] {
			correct++
		}
	}
	res.Accuracy = float64(correct) / float64(len(res.Truth))
	return res
}
