package service

import (
	"bytes"
	"encoding/json"
	"sync"
	"time"

	"leakyway/internal/telemetry"
)

// progressEvent is one progress sample: a snapshot stamped with
// milliseconds since the execution started running. It is both one line
// of the stored "progress" artifact (JSONL) and one SSE data payload, so
// a replayed stream and a live stream carry identical records.
type progressEvent struct {
	TMs int64 `json:"t_ms"`
	telemetry.ProgressSnapshot
}

// maxProgressEntries caps the stored progress log. A multi-hour run
// sampled every quarter second would otherwise write an unbounded
// artifact; past the cap the recorder keeps only the newest sample slot
// updated, so the final state is always present.
const maxProgressEntries = 2048

// progressLog accumulates the sampled progress history of one execution.
// The worker's recorder goroutine appends; SSE handlers read the start
// time concurrently, hence the lock.
type progressLog struct {
	mu      sync.Mutex
	start   time.Time
	entries []progressEvent
}

// begin stamps the execution's start; samples are timed relative to it.
func (pl *progressLog) begin() {
	pl.mu.Lock()
	pl.start = time.Now()
	pl.entries = pl.entries[:0]
	pl.mu.Unlock()
}

// sinceStartMs returns milliseconds since begin (0 before the execution
// starts running).
func (pl *progressLog) sinceStartMs() int64 {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.start.IsZero() {
		return 0
	}
	return time.Since(pl.start).Milliseconds()
}

// record appends one sample, dropping no-change duplicates. Past the
// size cap it overwrites the last slot instead of growing, preserving
// the final state without unbounded memory.
func (pl *progressLog) record(s telemetry.ProgressSnapshot) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if n := len(pl.entries); n > 0 && pl.entries[n-1].ProgressSnapshot.Equal(s) {
		return
	}
	ev := progressEvent{ProgressSnapshot: s}
	if !pl.start.IsZero() {
		ev.TMs = time.Since(pl.start).Milliseconds()
	}
	if len(pl.entries) >= maxProgressEntries {
		pl.entries[len(pl.entries)-1] = ev
		return
	}
	pl.entries = append(pl.entries, ev)
}

// marshal renders the log as JSONL — the bytes stored as the "progress"
// artifact and replayed over SSE after the job completes.
func (pl *progressLog) marshal() []byte {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	var buf bytes.Buffer
	for i := range pl.entries {
		b, err := json.Marshal(&pl.entries[i])
		if err != nil {
			continue
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}
