// Package cache implements a generic set-associative cache with pluggable
// replacement policy and per-line in-flight (MSHR) windows. It knows nothing
// about levels or inclusion; package hier composes caches into the Intel
// hierarchy the paper targets.
package cache

import (
	"fmt"

	"leakyway/internal/mem"
	"leakyway/internal/policy"
)

// CohState is a private-cache line's coherence state (MESI without the
// I — invalid lines are simply not Valid).
type CohState uint8

// Coherence states.
const (
	CohShared CohState = iota
	CohExclusive
	CohModified
)

// String implements fmt.Stringer.
func (s CohState) String() string {
	switch s {
	case CohShared:
		return "S"
	case CohExclusive:
		return "E"
	case CohModified:
		return "M"
	}
	return "?"
}

// Line is one cache way's contents, as a view value. The cache itself keeps
// line state in structure-of-arrays form (see Cache); Line is what ViewSet
// and the trace/assertion surface hand out.
type Line struct {
	Addr  mem.LineAddr
	Valid bool
	Dirty bool
	// Coh is the coherence state; meaningful only in private caches.
	Coh CohState
	// InFlightUntil is the cycle at which the fill that installed this
	// line completes. Until then the line cannot be evicted — the paper
	// relies on this to explain why a single-set NTP+NTP channel must
	// space out its prefetches (Section IV-B2).
	InFlightUntil int64
}

// meta bit layout: bit 0 = valid, bit 1 = dirty, bits 2-3 = coherence state.
const (
	metaValid   = uint8(1 << 0)
	metaDirty   = uint8(1 << 1)
	metaCohShft = 2
	metaCohMask = uint8(3 << metaCohShft)
)

// Config describes one cache.
type Config struct {
	Name string
	Sets int
	Ways int
	Pol  policy.Policy
}

// Stats counts cache events for diagnostics and experiments.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Fills     uint64
	Flushes   uint64
}

// Cache is a single set-associative cache array.
//
// Line state is held as structure-of-arrays: a flat address array, a packed
// valid/dirty/coherence byte per way, and the in-flight deadline array, each
// indexed by set*ways+way. The split keeps the hot probe loop scanning a
// contiguous uint64 lane (addresses) with a parallel one-byte metadata lane,
// and — just as importantly — makes recycling cheap: the cache records which
// sets were ever written, so Reset restores a heavily-used cache to its
// freshly-built state by re-zeroing only those sets instead of the whole
// multi-megabyte array. sim.BatchMachine leans on that to run Monte-Carlo
// fleets without rebuilding a hierarchy per trial.
type Cache struct {
	cfg   Config
	addrs []mem.LineAddr // sets*ways line addresses
	meta  []uint8        // sets*ways packed valid/dirty/coh
	ready []int64        // sets*ways in-flight deadlines

	states []policy.SetState

	// touched lists the sets mutated since construction or the last Reset;
	// isTouched is its membership bitmap. A set is marked at its first
	// fill attempt — every other mutation (hit update, invalidate, dirty
	// or coherence marking) requires a valid line and therefore a prior
	// fill in the same set.
	touched   []int32
	isTouched []bool

	stats Stats
}

// New builds the cache. All sets share flat preallocated state arrays (each
// set views its own ways-sized window), so a set scan touches contiguous
// memory and construction cost does not scale with the set count beyond the
// per-set policy state.
func New(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %q: sets=%d ways=%d must be positive", cfg.Name, cfg.Sets, cfg.Ways))
	}
	if cfg.Ways > 64 {
		panic(fmt.Sprintf("cache %q: ways=%d exceeds the 64-way mask limit", cfg.Name, cfg.Ways))
	}
	n := cfg.Sets * cfg.Ways
	c := &Cache{
		cfg:       cfg,
		addrs:     make([]mem.LineAddr, n),
		meta:      make([]uint8, n),
		ready:     make([]int64, n),
		states:    make([]policy.SetState, cfg.Sets),
		isTouched: make([]bool, cfg.Sets),
	}
	for i := range c.states {
		c.states[i] = cfg.Pol.NewSet(cfg.Ways)
	}
	return c
}

// Reset restores the cache to its freshly-built state: every previously
// touched set has its line state re-zeroed and its policy state reset, and
// the event counters are cleared. Cost is proportional to the number of
// distinct sets the previous use actually wrote, not the geometry.
func (c *Cache) Reset() {
	for _, s := range c.touched {
		base := int(s) * c.cfg.Ways
		for i := base; i < base+c.cfg.Ways; i++ {
			c.addrs[i] = 0
			c.meta[i] = 0
			c.ready[i] = 0
		}
		c.states[s].Reset()
		c.isTouched[s] = false
	}
	c.touched = c.touched[:0]
	c.stats = Stats{}
}

// markTouched records that setIdx has been mutated since the last Reset.
func (c *Cache) markTouched(setIdx int) {
	if !c.isTouched[setIdx] {
		c.isTouched[setIdx] = true
		c.touched = append(c.touched, int32(setIdx))
	}
}

// Name returns the configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.cfg.Sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Probe looks a line up without touching replacement state. It returns the
// way index and whether the line is present.
func (c *Cache) Probe(setIdx int, la mem.LineAddr) (way int, ok bool) {
	base := setIdx * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.addrs[base+w] == la && c.meta[base+w]&metaValid != 0 {
			return w, true
		}
	}
	return -1, false
}

// Touch records a hit of the given class on a line previously found with
// Probe, updating replacement state.
func (c *Cache) Touch(setIdx, way int, cls policy.AccessClass) {
	c.stats.Hits++
	c.states[setIdx].OnHit(way, cls)
}

// MarkDirty flags the line as modified.
func (c *Cache) MarkDirty(setIdx, way int) {
	c.meta[setIdx*c.cfg.Ways+way] |= metaDirty
}

// Coh returns the line's coherence state.
func (c *Cache) Coh(setIdx, way int) CohState {
	return CohState(c.meta[setIdx*c.cfg.Ways+way]&metaCohMask) >> metaCohShft
}

// SetCoh updates the line's coherence state.
func (c *Cache) SetCoh(setIdx, way int, s CohState) {
	i := setIdx*c.cfg.Ways + way
	c.meta[i] = c.meta[i]&^metaCohMask | uint8(s)<<metaCohShft
}

// Evicted describes a line displaced by Fill.
type Evicted struct {
	Addr  mem.LineAddr
	Dirty bool
}

// Fill installs la into the given set with the given access class at time
// now; the fill completes (and the line becomes evictable) at readyAt.
//
// It prefers an invalid way; otherwise it asks the policy for a victim,
// skipping ways whose fills are still in flight at time now. The displaced
// line, if any, is returned. ok is false when every way is in flight and
// nothing can be replaced — the caller treats the fill as dropped, which is
// how the paper describes conflicting in-flight prefetches behaving.
func (c *Cache) Fill(setIdx int, la mem.LineAddr, cls policy.AccessClass, now, readyAt int64) (ev Evicted, evicted, ok bool) {
	return c.FillRestricted(setIdx, la, cls, now, readyAt, policy.AllWays(c.cfg.Ways))
}

// FillRestricted is Fill with a way restriction: only ways in the allowed
// mask may receive the line or be evicted. This is the mechanism behind
// way-partitioned (isolation) LLC defenses: a security domain's fills can
// never displace another domain's lines. The mask form keeps the eviction
// decision allocation-free — no closure is built per fill.
func (c *Cache) FillRestricted(setIdx int, la mem.LineAddr, cls policy.AccessClass, now, readyAt int64, allowed policy.Mask) (ev Evicted, evicted, ok bool) {
	// Mark before any state can change: even a dropped fill may have aged
	// the set through the policy's victim search.
	c.markTouched(setIdx)
	base := setIdx * c.cfg.Ways
	if w, present := c.Probe(setIdx, la); present {
		// Already present (racing fills): treat as a hit refresh.
		c.states[setIdx].OnHit(w, cls)
		return Evicted{}, false, true
	}
	way := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if c.meta[base+w]&metaValid == 0 && allowed.Has(w) {
			way = w
			break
		}
	}
	if way < 0 {
		var evictable policy.Mask
		for w := 0; w < c.cfg.Ways; w++ {
			if c.ready[base+w] <= now {
				evictable |= 1 << uint(w)
			}
		}
		way = c.states[setIdx].Victim(evictable & allowed)
		if way < 0 {
			return Evicted{}, false, false
		}
		ev = Evicted{Addr: c.addrs[base+way], Dirty: c.meta[base+way]&metaDirty != 0}
		evicted = true
		c.stats.Evictions++
		c.states[setIdx].OnInvalidate(way)
	}
	c.addrs[base+way] = la
	c.meta[base+way] = metaValid
	c.ready[base+way] = readyAt
	c.states[setIdx].OnFill(way, cls)
	c.stats.Fills++
	return ev, evicted, true
}

// Invalidate removes la from the set if present (flush or back-invalidation)
// and reports whether it was present and dirty.
func (c *Cache) Invalidate(setIdx int, la mem.LineAddr) (present, dirty bool) {
	w, ok := c.Probe(setIdx, la)
	if !ok {
		return false, false
	}
	i := setIdx*c.cfg.Ways + w
	dirty = c.meta[i]&metaDirty != 0
	c.addrs[i] = 0
	c.meta[i] = 0
	c.ready[i] = 0
	c.states[setIdx].OnInvalidate(w)
	c.stats.Flushes++
	return true, dirty
}

// AgeOf returns the replacement-policy metadata value (age/rank) of one
// way, for tracing. It does not mutate policy state and does not allocate.
func (c *Cache) AgeOf(setIdx, way int) int {
	return c.states[setIdx].AgeAt(way)
}

// View returns a copy of the set's lines plus the policy snapshot, for
// tracing and assertions. The two slices are index-aligned.
type View struct {
	Lines []Line
	Meta  []int
}

// lineAt materializes the Line view of one way.
func (c *Cache) lineAt(i int) Line {
	return Line{
		Addr:          c.addrs[i],
		Valid:         c.meta[i]&metaValid != 0,
		Dirty:         c.meta[i]&metaDirty != 0,
		Coh:           CohState(c.meta[i]&metaCohMask) >> metaCohShft,
		InFlightUntil: c.ready[i],
	}
}

// ViewSet captures the current contents of one set.
func (c *Cache) ViewSet(setIdx int) View {
	v := View{Lines: make([]Line, c.cfg.Ways), Meta: c.states[setIdx].Snapshot()}
	base := setIdx * c.cfg.Ways
	for w := range v.Lines {
		v.Lines[w] = c.lineAt(base + w)
	}
	return v
}

// Occupancy returns how many valid lines the set holds.
func (c *Cache) Occupancy(setIdx int) int {
	base := setIdx * c.cfg.Ways
	n := 0
	for w := 0; w < c.cfg.Ways; w++ {
		if c.meta[base+w]&metaValid != 0 {
			n++
		}
	}
	return n
}

// EvictionCandidate reports which line the policy would evict right now
// (ignoring in-flight restrictions) without mutating any policy state: it
// reads the metadata snapshot and applies the age-based scan rule directly
// (first valid way holding the maximum age/rank), which matches the
// quad-age and RRIP policies' behaviour after their aging passes.
func (c *Cache) EvictionCandidate(setIdx int) (mem.LineAddr, bool) {
	st := c.states[setIdx]
	maxAge := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if m := st.AgeAt(w); m > maxAge {
			maxAge = m
		}
	}
	if maxAge < 0 {
		return 0, false
	}
	base := setIdx * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if st.AgeAt(w) == maxAge && c.meta[base+w]&metaValid != 0 {
			return c.addrs[base+w], true
		}
	}
	return 0, false
}

// Lookup is Probe + Touch for the common hit path; it reports whether the
// access hit.
func (c *Cache) Lookup(setIdx int, la mem.LineAddr, cls policy.AccessClass) bool {
	if w, ok := c.Probe(setIdx, la); ok {
		c.Touch(setIdx, w, cls)
		return true
	}
	c.stats.Misses++
	return false
}
