package scenario

import (
	"encoding/hex"
	"fmt"
	"regexp"

	"leakyway/internal/channel"
	"leakyway/internal/hier"
	"leakyway/internal/platform"
)

// idRe restricts scenario IDs to registry-key shape: they name report
// sections, trace-stream prefixes and seed-derivation keys.
var idRe = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]*$`)

// validator accumulates the first error with file/field context, like dec.
type validator struct {
	file string
	err  error
}

func (v *validator) fail(path, format string, args ...any) {
	if v.err == nil {
		v.err = fmt.Errorf("%s: %s: %s", v.file, path, fmt.Sprintf(format, args...))
	}
}

// Validate checks a decoded Spec: required fields, enum membership,
// exactly-one-kind-section, and the cross-field constraints (channel
// configurations valid for every target platform, lane sets fitting the
// LLC geometry, assertions referencing declared extractors). The file
// name is carried into every error.
func (s *Spec) Validate(file string) error {
	v := &validator{file: file}
	s.validate(v)
	return v.err
}

func (s *Spec) validate(v *validator) {
	if s.ID == "" {
		v.fail("id", "required")
	} else if !idRe.MatchString(s.ID) {
		v.fail("id", "%q is not a valid scenario id (want %s)", s.ID, idRe)
	}
	if s.Title == "" {
		v.fail("title", "required")
	}
	if !contains(Kinds(), s.Kind) {
		v.fail("kind", "unknown kind %q (valid kinds: %v)", s.Kind, Kinds())
		return
	}

	// Exactly the section for Kind must be present.
	sections := []struct {
		key     string
		kind    string
		present bool
	}{
		{"statewalk", KindStateWalk, s.StateWalk != nil},
		{"pipeline", KindPipeline, s.Pipeline != nil},
		{"sweep", KindSweep, s.Sweep != nil},
		{"lanes", KindLanes, s.Lanes != nil},
		{"noise", KindNoise, s.Noise != nil},
		{"faults", KindFaults, s.Faults != nil},
		{"victim", KindVictim, s.Victim != nil},
	}
	for _, sec := range sections {
		if sec.kind == s.Kind && !sec.present {
			v.fail(sec.key, "kind %q requires a %q section", s.Kind, sec.key)
		}
		if sec.kind != s.Kind && sec.present {
			v.fail(sec.key, "section %q conflicts with kind %q", sec.key, s.Kind)
		}
	}

	if s.Platform != nil {
		s.Platform.validate(v, "platform")
	}
	platforms := s.targetPlatforms()

	// Channel and transport overrides must yield runnable configurations
	// on every platform the scenario targets.
	if s.Channel != nil {
		for _, cfg := range platforms {
			if err := s.Channel.Apply(channel.DefaultConfig(cfg.Name, cfg.FreqGHz)).Validate(); err != nil {
				v.fail("channel", "invalid for platform %s: %v", cfg.Name, err)
			}
		}
	}
	if s.Transport != nil {
		if s.Kind != KindFaults {
			v.fail("transport", "section %q is only used by kind %q", "transport", KindFaults)
		}
		for _, cfg := range platforms {
			if err := s.Transport.Apply(channel.DefaultTransportConfig(cfg.Name, cfg.FreqGHz)).Validate(); err != nil {
				v.fail("transport", "invalid for platform %s: %v", cfg.Name, err)
			}
		}
	}

	// The section can be nil here when it is missing (already reported
	// above); skip the per-kind checks rather than dereference it.
	switch {
	case s.Kind == KindStateWalk && s.StateWalk != nil:
		s.StateWalk.validate(v, "statewalk")
	case s.Kind == KindPipeline && s.Pipeline != nil:
		s.Pipeline.validate(v, "pipeline")
	case s.Kind == KindSweep && s.Sweep != nil:
		s.Sweep.validate(v, "sweep")
	case s.Kind == KindLanes && s.Lanes != nil:
		s.Lanes.validate(v, "lanes", platforms)
	case s.Kind == KindNoise && s.Noise != nil:
		s.Noise.validate(v, "noise")
	case s.Kind == KindFaults && s.Faults != nil:
		s.Faults.validate(v, "faults")
	case s.Kind == KindVictim && s.Victim != nil:
		s.Victim.validate(v, "victim")
	}

	s.validateExtractAssert(v)
}

// targetPlatforms resolves the platforms validation must consider: the
// custom platform when present, both paper machines otherwise (the
// runtime context may narrow the list, never widen it).
func (s *Spec) targetPlatforms() []hier.Config {
	if s.Platform != nil {
		if _, ok := platform.ByName(baseOf(s.Platform.Base)); !ok {
			return nil // base already failed validation
		}
		if s.Platform.LLCPolicy != "" && !contains(LLCPolicies(), s.Platform.LLCPolicy) {
			return nil // policy already failed validation
		}
		return []hier.Config{s.Platform.Config()}
	}
	return platform.All()
}

func baseOf(base string) string {
	if base == "" {
		return "skylake"
	}
	return base
}

func (p *PlatformSpec) validate(v *validator, path string) {
	if _, ok := platform.ByName(baseOf(p.Base)); !ok {
		v.fail(joinPath(path, "base"), "unknown platform %q (want skylake or kabylake)", p.Base)
	}
	if p.LLCPolicy != "" && !contains(LLCPolicies(), p.LLCPolicy) {
		v.fail(joinPath(path, "llc_policy"), "unknown policy %q (valid policies: %v)", p.LLCPolicy, LLCPolicies())
	}
	checkNonNeg := func(key string, n int) {
		if n < 0 {
			v.fail(joinPath(path, key), "must be non-negative, got %d", n)
		}
	}
	checkNonNeg("cores", p.Cores)
	checkNonNeg("l1_sets", p.L1Sets)
	checkNonNeg("l1_ways", p.L1Ways)
	checkNonNeg("l2_sets", p.L2Sets)
	checkNonNeg("l2_ways", p.L2Ways)
	checkNonNeg("llc_slices", p.LLCSlices)
	checkNonNeg("llc_sets_per_slice", p.LLCSetsPerSlice)
	checkNonNeg("llc_ways", p.LLCWays)
	if p.FreqGHz < 0 {
		v.fail(joinPath(path, "freq_ghz"), "must be non-negative, got %v", p.FreqGHz)
	}
	for _, pow2 := range []struct {
		key string
		n   int
	}{{"l1_sets", p.L1Sets}, {"l2_sets", p.L2Sets}, {"llc_sets_per_slice", p.LLCSetsPerSlice}} {
		if pow2.n > 0 && pow2.n&(pow2.n-1) != 0 {
			v.fail(joinPath(path, pow2.key), "must be a power of two, got %d", pow2.n)
		}
	}
	if p.LLCPartitionWays != nil && *p.LLCPartitionWays < 0 {
		v.fail(joinPath(path, "llc_partition_ways"), "must be non-negative, got %d", *p.LLCPartitionWays)
	}
}

func validBits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r != '0' && r != '1' {
			return false
		}
	}
	return true
}

func (w *StateWalkSpec) validate(v *validator, path string) {
	if !validBits(w.Message) {
		v.fail(joinPath(path, "message"), "must be a non-empty string of 0s and 1s, got %q", w.Message)
	}
	if w.CalibrateSamples <= 0 {
		v.fail(joinPath(path, "calibrate_samples"), "must be positive, got %d", w.CalibrateSamples)
	}
	if w.ReceiverReady <= 0 {
		v.fail(joinPath(path, "receiver_ready"), "must be positive, got %d", w.ReceiverReady)
	}
	if w.PhaseStep <= 0 {
		v.fail(joinPath(path, "phase_step"), "must be positive, got %d", w.PhaseStep)
	}
}

func (p *PipelineSpec) validate(v *validator, path string) {
	if !validBits(p.Message) {
		v.fail(joinPath(path, "message"), "must be a non-empty string of 0s and 1s, got %q", p.Message)
	}
}

func (w *SweepSpec) validate(v *validator, path string) {
	if w.Bits <= 0 {
		v.fail(joinPath(path, "bits"), "must be positive, got %d", w.Bits)
	}
	if len(w.Channels) == 0 {
		v.fail(joinPath(path, "channels"), "at least one channel is required")
	}
	seen := map[string]bool{}
	for i, c := range w.Channels {
		cpath := fmt.Sprintf("%s.channels[%d]", path, i)
		if !contains(SweepChannels(), c.Channel) {
			v.fail(joinPath(cpath, "channel"), "unknown channel %q (valid channels: %v)", c.Channel, SweepChannels())
		}
		if seen[c.Channel] {
			v.fail(joinPath(cpath, "channel"), "duplicate channel %q", c.Channel)
		}
		seen[c.Channel] = true
		if len(c.Intervals) == 0 {
			v.fail(joinPath(cpath, "intervals"), "at least one interval is required")
		}
		for j, iv := range c.Intervals {
			if iv <= 0 {
				v.fail(fmt.Sprintf("%s.intervals[%d]", cpath, j), "must be positive, got %d", iv)
			}
		}
	}
}

func (l *LanesSpec) validate(v *validator, path string, platforms []hier.Config) {
	if l.Bits <= 0 {
		v.fail(joinPath(path, "bits"), "must be positive, got %d", l.Bits)
	}
	if len(l.LaneCounts) == 0 {
		v.fail(joinPath(path, "lane_counts"), "at least one lane count is required")
	}
	for i, n := range l.LaneCounts {
		if n <= 0 {
			v.fail(fmt.Sprintf("%s.lane_counts[%d]", path, i), "must be positive, got %d", n)
			continue
		}
		// Each lane pipelines across two LLC sets; the lane set must fit
		// inside one slice's set array.
		for _, cfg := range platforms {
			if 2*n > cfg.LLCSetsPerSlice {
				v.fail(fmt.Sprintf("%s.lane_counts[%d]", path, i),
					"%d lanes need %d LLC sets but %s has %d sets per slice",
					n, 2*n, cfg.Name, cfg.LLCSetsPerSlice)
			}
		}
	}
	if len(l.Offsets) == 0 {
		v.fail(joinPath(path, "offsets"), "at least one offset is required")
	}
	for i, off := range l.Offsets {
		if off < 0 {
			v.fail(fmt.Sprintf("%s.offsets[%d]", path, i), "must be non-negative, got %d", off)
		}
	}
	if l.LaneCost <= 0 {
		v.fail(joinPath(path, "lane_cost"), "must be positive, got %d", l.LaneCost)
	}
}

func (n *NoiseSpec) validate(v *validator, path string) {
	if n.Bits <= 0 {
		v.fail(joinPath(path, "bits"), "must be positive, got %d", n.Bits)
	}
	if len(n.Periods) == 0 {
		v.fail(joinPath(path, "periods"), "at least one period is required")
	}
	seen := map[int64]bool{}
	for i, p := range n.Periods {
		if p < 0 {
			v.fail(fmt.Sprintf("%s.periods[%d]", path, i), "must be non-negative (0 = quiet), got %d", p)
		}
		if seen[p] {
			v.fail(fmt.Sprintf("%s.periods[%d]", path, i), "duplicate period %d (it would reuse the same derived seed)", p)
		}
		seen[p] = true
	}
	if n.InterleaveDepth <= 0 {
		v.fail(joinPath(path, "interleave_depth"), "must be positive, got %d", n.InterleaveDepth)
	}
}

// faultFields names the FaultSpec fields each type consumes; setting any
// other field is an error, so a typo'd scenario cannot silently no-op.
var faultFields = map[string][]string{
	"preemption":   {"role", "count", "min_dur", "max_dur"},
	"pollution":    {"bursts", "walks", "gap"},
	"clock-drift":  {"role", "ppm"},
	"timer-spikes": {"role", "count", "dur", "extra"},
	"migration":    {"role", "cost"},
}

func (f *FaultsSpec) validate(v *validator, path string) {
	if f.RawBits <= 0 {
		v.fail(joinPath(path, "raw_bits"), "must be positive, got %d", f.RawBits)
	}
	if f.ARQBits <= 0 {
		v.fail(joinPath(path, "arq_bits"), "must be positive, got %d", f.ARQBits)
	}
	if f.InterleaveDepth <= 0 {
		v.fail(joinPath(path, "interleave_depth"), "must be positive, got %d", f.InterleaveDepth)
	}
	if len(f.Scenarios) == 0 {
		v.fail(joinPath(path, "scenarios"), "at least one scenario is required")
	}
	seen := map[string]bool{}
	for i, sc := range f.Scenarios {
		spath := fmt.Sprintf("%s.scenarios[%d]", path, i)
		if sc.Key == "" || !idRe.MatchString(sc.Key) {
			v.fail(joinPath(spath, "key"), "%q is not a valid scenario key (want %s)", sc.Key, idRe)
		}
		if seen[sc.Key] {
			v.fail(joinPath(spath, "key"), "duplicate key %q (it would reuse the same derived seed)", sc.Key)
		}
		seen[sc.Key] = true
		names := map[string]bool{}
		for j, fs := range sc.Faults {
			fpath := fmt.Sprintf("%s.faults[%d]", spath, j)
			fs.validate(v, fpath)
			if v.err != nil {
				return
			}
			// Compose rejects duplicate scenario names at run time;
			// catch it at validation time instead.
			name := fs.Compile().Name()
			if names[name] {
				v.fail(fpath, "duplicate fault %q in one scenario (composition requires distinct names)", name)
			}
			names[name] = true
		}
	}
}

func (f FaultSpec) validate(v *validator, path string) {
	allowed, ok := faultFields[f.Type]
	if !ok {
		v.fail(joinPath(path, "type"), "unknown fault type %q (valid types: %v)", f.Type, FaultTypes())
		return
	}
	if f.Role != "" && f.Role != "sender" && f.Role != "receiver" {
		v.fail(joinPath(path, "role"), "unknown role %q (want sender or receiver)", f.Role)
	}
	set := map[string]bool{
		"role":    f.Role != "",
		"count":   f.Count != 0,
		"min_dur": f.MinDur != 0, "max_dur": f.MaxDur != 0,
		"bursts": f.Bursts != 0, "walks": f.Walks != 0, "gap": f.Gap != 0,
		"ppm": f.PPM != 0,
		"dur": f.Dur != 0, "extra": f.Extra != 0,
		"cost": f.Cost != 0,
	}
	for key, isSet := range set {
		if isSet && !contains(allowed, key) {
			v.fail(joinPath(path, key), "field is not used by fault type %q (its fields: %v)", f.Type, allowed)
		}
	}
	switch f.Type {
	case "preemption":
		if f.Count <= 0 {
			v.fail(joinPath(path, "count"), "must be positive, got %d", f.Count)
		}
		if f.MinDur < 0 || f.MaxDur < f.MinDur {
			v.fail(joinPath(path, "min_dur"), "need 0 <= min_dur <= max_dur, got [%d, %d]", f.MinDur, f.MaxDur)
		}
	case "pollution":
		if f.Bursts <= 0 {
			v.fail(joinPath(path, "bursts"), "must be positive, got %d", f.Bursts)
		}
	case "clock-drift":
		if f.PPM == 0 {
			v.fail(joinPath(path, "ppm"), "must be non-zero")
		}
	case "timer-spikes":
		if f.Count <= 0 {
			v.fail(joinPath(path, "count"), "must be positive, got %d", f.Count)
		}
		if f.Dur <= 0 {
			v.fail(joinPath(path, "dur"), "must be positive, got %d", f.Dur)
		}
	case "migration":
		if f.Cost <= 0 {
			v.fail(joinPath(path, "cost"), "must be positive, got %d", f.Cost)
		}
	}
}

func (w *VictimSpec) validate(v *validator, path string) {
	if !contains(VictimPrograms(), w.Program) {
		v.fail(joinPath(path, "program"), "unknown program %q (valid programs: %v)", w.Program, VictimPrograms())
	}
	if raw, err := hex.DecodeString(w.Key); err != nil || len(raw) != 16 {
		v.fail(joinPath(path, "key"), "must be 32 hex characters (a 16-byte AES key), got %q", w.Key)
	}
	if w.Encryptions <= 0 {
		v.fail(joinPath(path, "encryptions"), "must be positive, got %d", w.Encryptions)
	}
	if w.Window <= 0 {
		v.fail(joinPath(path, "window"), "must be positive, got %d", w.Window)
	}
	if w.Start <= 0 {
		v.fail(joinPath(path, "start"), "must be positive, got %d", w.Start)
	}
}

func (s *Spec) validateExtractAssert(v *validator) {
	names := map[string]bool{}
	for i, x := range s.Extract {
		path := fmt.Sprintf("extract[%d]", i)
		if x.Name == "" {
			v.fail(joinPath(path, "name"), "required")
		} else if names[x.Name] {
			v.fail(joinPath(path, "name"), "duplicate extractor name %q", x.Name)
		}
		names[x.Name] = true
		switch x.Type {
		case "regex":
			if x.Metric != "" {
				v.fail(joinPath(path, "metric"), "not used by regex extractors")
			}
			re, err := regexp.Compile(x.Pattern)
			if err != nil {
				v.fail(joinPath(path, "pattern"), "%v", err)
				continue
			}
			group := x.Group
			if group == 0 {
				group = 1
			}
			if group < 0 || group > re.NumSubexp() {
				v.fail(joinPath(path, "group"), "capture group %d out of range (pattern has %d)", group, re.NumSubexp())
			}
		case "metric":
			if x.Metric == "" {
				v.fail(joinPath(path, "metric"), "required for metric extractors")
			}
			if x.Pattern != "" || x.Group != 0 {
				v.fail(joinPath(path, "pattern"), "not used by metric extractors")
			}
		default:
			v.fail(joinPath(path, "type"), "unknown extractor type %q (valid types: %v)", x.Type, ExtractorTypes())
		}
	}
	for i, a := range s.Assert {
		path := fmt.Sprintf("assert[%d]", i)
		if (a.Metric == "") == (a.Extract == "") {
			v.fail(path, "exactly one of metric or extract must be set")
		}
		if a.Extract != "" && !names[a.Extract] {
			v.fail(joinPath(path, "extract"), "references undeclared extractor %q", a.Extract)
		}
		if !contains(AssertionOps(), a.Op) {
			v.fail(joinPath(path, "op"), "unknown op %q (valid ops: %v)", a.Op, AssertionOps())
			continue
		}
		if a.Op == "between" && a.Max < a.Value {
			v.fail(joinPath(path, "max"), "between needs value <= max, got [%v, %v]", a.Value, a.Max)
		}
		if a.Op != "between" && a.Max != 0 {
			v.fail(joinPath(path, "max"), "only used by the between op")
		}
		if a.Op == "approx" && a.Tol <= 0 {
			v.fail(joinPath(path, "tol"), "approx needs a positive tolerance, got %v", a.Tol)
		}
		if a.Op != "approx" && a.Tol != 0 {
			v.fail(joinPath(path, "tol"), "only used by the approx op")
		}
	}
}

func contains(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
