package channel

import (
	"sort"

	"leakyway/internal/core"
	"leakyway/internal/sim"
)

// Self-synchronizing NTP+NTP: framing parameters. Each frame is
//
//	pulse ×8   silence ×2   START pulse   guard   payload ×48   silence ×2
//
// (one slot each). The receiver re-locks its clock on every frame, so the
// residual error of the slot-length estimate never accumulates beyond one
// frame's payload.
const (
	ssPreamble = 8
	ssPayload  = 48
	ssFrame    = ssPreamble + 2 + 1 + 1 + ssPayload + 2
)

// RunNTPNTPSelfSync removes the shared-epoch assumption of the basic
// channel: the receiver does not know when the sender starts. The sender
// frames the message as above; the receiver probes its line continuously,
// estimates the slot length by regression over the preamble pulses and the
// START pulse, locks phase, decodes one frame, and re-locks for the next.
//
// Because the receiver's probe can collide with a pulse's in-flight fill
// (the Section IV-B2 hazard), a collision can leave the receiver's line dr
// demoted from the eviction-candidate position. The receiver re-primes
// after every detected miss: a filler walk restores full occupancy and
// evicts stray sender lines (whose private copies die by
// back-invalidation), and a final PREFETCHNTA reinstates dr as candidate.
//
// cfg.Interval is the slot length (≥2200 cycles on the default calibration,
// leaving room for the re-prime); cfg.Start is the *sender's* private start
// time — the receiver never reads it. The receiver must be listening before
// the sender's first frame.
func RunNTPNTPSelfSync(m *sim.Machine, cfg Config, msg []bool) (Report, []bool) {
	mustValidRun(cfg, true, msg)
	ep, err := Setup(m, 1, 0)
	if err != nil {
		panic(err)
	}
	interval := cfg.Interval
	n := len(msg)
	received := make([]bool, 0, n)
	rawRecv := make([]bool, 0, n+ssPayload)

	senderStart := cfg.Start
	if senderStart <= 0 {
		senderStart = 80_000
	}
	// An all-zero bootstrap frame precedes the payload: its START pulse
	// gives the receiver the long cross-frame baseline before any real
	// bit is decoded (the short within-frame baseline leaves too much
	// quantization error for a 48-bit payload).
	pad := ssPayload
	padded := make([]bool, pad+n)
	copy(padded[pad:], msg)
	n = len(padded)
	frames := (n + ssPayload - 1) / ssPayload

	m.Spawn("sender", 0, ep.SenderAS, func(c *sim.Core) {
		slotAt := func(f int, slot int64) int64 {
			return senderStart + (int64(f)*ssFrame+slot)*interval
		}
		for f := 0; f < frames; f++ {
			for p := int64(0); p < ssPreamble; p++ {
				c.WaitUntil(slotAt(f, p))
				c.PrefetchNTA(ep.DS[0])
				c.Spin(cfg.ProtocolOverhead)
			}
			// Slots 8,9: silence. Slot 10: START. Slot 11: guard.
			c.WaitUntil(slotAt(f, ssPreamble+2))
			c.PrefetchNTA(ep.DS[0])
			c.Spin(cfg.ProtocolOverhead)
			for i := 0; i < ssPayload; i++ {
				bit := f*ssPayload + i
				c.WaitUntil(slotAt(f, int64(ssPreamble+4+i)))
				if bit < n && padded[bit] {
					c.PrefetchNTA(ep.DS[0])
				}
				c.Spin(cfg.ProtocolOverhead)
			}
		}
	})

	m.Spawn("receiver", 1, ep.ReceiverAS, func(c *sim.Core) {
		th := core.Calibrate(c, 48)
		reprime := func() {
			for _, va := range ep.Filler[0] {
				c.Load(va)
			}
			c.PrefetchNTA(ep.DR[0])
		}
		// hardReprime recovers from a stuck channel (a sender line left
		// resident by an in-flight collision): flushing and reloading
		// the whole filler set forces the stray age-3 line out, and the
		// final NTA reinstates dr as candidate.
		hardReprime := func() {
			c.Flush(ep.DR[0])
			for _, va := range ep.Filler[0] {
				c.Flush(va)
			}
			c.Fence()
			for _, va := range ep.Filler[0] {
				c.Load(va)
			}
			c.PrefetchNTA(ep.DR[0])
		}
		reprime()

		probePeriod := interval / 8
		if probePeriod < 150 {
			probePeriod = 150
		}
		probe := func() (int64, bool) {
			t := c.TimedPrefetchNTA(ep.DR[0])
			at := c.Now()
			if th.IsMiss(t) {
				reprime()
				return at, true
			}
			return at, false
		}

		deadline := c.Now() + int64(frames+4)*ssFrame*interval + 600_000
		prevStart := int64(0)
		firstStart := int64(0)
		for f := 0; f < frames && c.Now() < deadline; f++ {
			// Phase 1: preamble pulses until silence. If the channel
			// has gone quiet for most of a frame, assume a stuck
			// sender line and recover with a hard re-prime.
			var misses []int64
			med := int64(0)
			lastRecover := c.Now()
			for c.Now() < deadline {
				if at, miss := probe(); miss {
					misses = append(misses, at)
				}
				c.Spin(probePeriod)
				if len(misses) == 0 && c.Now()-lastRecover > (ssFrame/2)*interval {
					hardReprime()
					lastRecover = c.Now()
				}
				if len(misses) < 4 {
					continue
				}
				med = medianGap(misses)
				if med > 0 && c.Now()-misses[len(misses)-1] > med*17/10 {
					// Keep only the trailing run of consistently
					// spaced pulses: stragglers from the previous
					// frame's payload are separated from the real
					// preamble by a multi-slot gap.
					run := misses
					for i := len(misses) - 1; i > 0; i-- {
						if misses[i]-misses[i-1] > med*13/10 {
							run = misses[i:]
							break
						}
					}
					if len(run) >= 4 {
						misses = run
						med = medianGap(misses)
						break
					}
					misses = run // too short: keep waiting
				}
			}
			if len(misses) < 4 || med <= 0 {
				return // lock lost; remaining bits stay unreceived
			}
			// Phase 2: the START pulse.
			var start int64
			for c.Now() < deadline {
				if at, miss := probe(); miss {
					start = at
					break
				}
				c.Spin(probePeriod)
			}
			if start == 0 {
				return
			}
			// Regression estimate: the span from the first observed
			// pulse to the START pulse covers a whole number of
			// slots, recovered by rounding with the median gap.
			est := med
			if span := start - misses[0]; span > 0 {
				slots := (span + med/2) / med
				if slots > 0 {
					est = span / slots
				}
			}
			// Across frames the START pulses are exactly ssFrame
			// slots apart: a much longer baseline that shrinks the
			// quantization error of the estimate ~6x. (The slot
			// count is known by construction — deriving it from the
			// short-baseline estimate would just re-import its
			// bias.)
			if prevStart > 0 {
				gap := start - prevStart
				if diff := gap - int64(ssFrame)*est; diff < 3*est && diff > -3*est {
					est = gap / ssFrame
				}
			}
			prevStart = start
			// The frame index comes from the START timestamp, not
			// the loop counter: frame boundaries are ssFrame slots
			// apart, so even if one lock was stolen by noise the
			// next frames land back on their true indices instead
			// of cascading a one-frame shift through the message.
			frameIdx := f
			if firstStart == 0 {
				firstStart = start
			} else if est > 0 {
				span := int64(ssFrame) * est
				if fi := int((start - firstStart + span/2) / span); fi >= 0 && fi < frames {
					frameIdx = fi
				}
			}
			// Phase 3: the frame's payload. Reads land early in the
			// slot (2/5 in, minus the probe-cadence quantization of
			// the START timestamp) so that a post-miss re-prime
			// finishes before the sender's next slot begins.
			phase := start - probePeriod/2
			for i := 0; i < ssPayload; i++ {
				bit := frameIdx*ssPayload + i
				if bit >= n {
					break
				}
				c.WaitUntil(phase + (2+int64(i))*est + est*2/5)
				_, miss := probe()
				for len(rawRecv) < bit {
					rawRecv = append(rawRecv, false) // lost slots
				}
				rawRecv = append(rawRecv, miss)
				c.Spin(cfg.ProtocolOverhead)
			}
		}
	})

	spawnNoise(m, cfg, ep, 2)
	m.Run()

	// Strip the bootstrap frame and align with the caller's message.
	received = received[:0]
	for i := 0; i < len(msg); i++ {
		idx := pad + i
		if idx < len(rawRecv) {
			received = append(received, rawRecv[idx])
		} else {
			received = append(received, false)
		}
	}
	rep := Report{
		Channel:  "NTP+NTP selfsync",
		Platform: m.H.Config().Name,
		Bits:     len(msg),
		Interval: interval,
	}
	for i := range msg {
		if received[i] != msg[i] {
			rep.Errors++
		}
	}
	finishReport(&rep, m.H.Config().FreqGHz, float64(ssPayload)/float64(ssFrame))
	return rep, received
}

// medianGap returns the median spacing between consecutive timestamps —
// robust to a few noise insertions among the preamble pulses.
func medianGap(ts []int64) int64 {
	if len(ts) < 2 {
		return 0
	}
	gaps := make([]int64, 0, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		gaps = append(gaps, ts[i]-ts[i-1])
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps[len(gaps)/2]
}
