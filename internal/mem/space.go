package mem

import (
	"fmt"
	"sort"
)

// AddressSpace is a per-process virtual address space: a page table mapping
// virtual pages to physical frames. Every page of a region is backed
// eagerly on Alloc; the simulator has no demand-paging concerns.
//
// Two address spaces can share physical frames via MapShared, which is how
// the Reload+Refresh experiments model a shared library / deduplicated page
// between victim and attacker.
type AddressSpace struct {
	pm    *PhysMem
	pages map[uint64]uint64 // virtual page -> physical frame
	brk   uint64            // next free virtual page

	// Direct-mapped software TLB over pages. Mappings are only ever added,
	// never changed or removed, so cached entries can never go stale and
	// the TLB needs no shootdown path.
	tlbTags   [tlbSlots]uint64 // page+1 per slot; 0 = empty
	tlbFrames [tlbSlots]uint64

	// tlMemo caches TranslationLevels results for unmapped pages; adding a
	// mapping can deepen a neighbouring walk, so mutators drop it wholesale.
	tlMemo map[uint64]int
}

// tlbSlots sizes the translation cache; collisions just recompute.
const tlbSlots = 1 << 9

// NewAddressSpace creates an empty address space drawing frames from pm.
func NewAddressSpace(pm *PhysMem) *AddressSpace {
	return &AddressSpace{
		pm:    pm,
		pages: make(map[uint64]uint64),
		brk:   0x1000, // leave page 0 unmapped, like a real process
	}
}

// Alloc reserves size bytes of fresh virtual memory (rounded up to whole
// pages) backed by randomized physical frames, and returns the base address.
func (as *AddressSpace) Alloc(size uint64) (VAddr, error) {
	if size == 0 {
		return 0, fmt.Errorf("mem: Alloc(0): size must be positive")
	}
	npages := (size + PageSize - 1) / PageSize
	base := as.brk
	for i := uint64(0); i < npages; i++ {
		frame, err := as.pm.AllocFrame()
		if err != nil {
			return 0, err
		}
		as.pages[base+i] = frame
	}
	as.brk += npages
	as.tlMemo = nil
	return VAddr(base << PageBits), nil
}

// AllocContiguous reserves size bytes backed by physically contiguous
// frames (a modelled huge-page region) and returns the base address.
func (as *AddressSpace) AllocContiguous(size uint64) (VAddr, error) {
	if size == 0 {
		return 0, fmt.Errorf("mem: AllocContiguous(0): size must be positive")
	}
	npages := (size + PageSize - 1) / PageSize
	first, err := as.pm.AllocContiguous(int(npages))
	if err != nil {
		return 0, err
	}
	base := as.brk
	for i := uint64(0); i < npages; i++ {
		as.pages[base+i] = first + i
	}
	as.brk += npages
	as.tlMemo = nil
	return VAddr(base << PageBits), nil
}

// Translate resolves a virtual address to its physical address.
func (as *AddressSpace) Translate(va VAddr) (PAddr, error) {
	page := va.Page()
	idx := page & (tlbSlots - 1)
	if as.tlbTags[idx] == page+1 {
		return PAddr(as.tlbFrames[idx]<<PageBits | uint64(va)&(PageSize-1)), nil
	}
	frame, ok := as.pages[page]
	if !ok {
		return 0, fmt.Errorf("mem: page fault at %#x", uint64(va))
	}
	as.tlbTags[idx] = page + 1
	as.tlbFrames[idx] = frame
	return PAddr(frame<<PageBits | uint64(va)&(PageSize-1)), nil
}

// MustTranslate is Translate for addresses the caller has itself mapped;
// it panics on a page fault, which always indicates a harness bug.
func (as *AddressSpace) MustTranslate(va VAddr) PAddr {
	pa, err := as.Translate(va)
	if err != nil {
		panic(err)
	}
	return pa
}

// MapShared maps size bytes starting at the other space's base address into
// this space at the same virtual address, sharing the physical frames. It
// models page deduplication / a shared library segment. The virtual range
// must not already be mapped here.
func (as *AddressSpace) MapShared(other *AddressSpace, base VAddr, size uint64) error {
	if size == 0 {
		return fmt.Errorf("mem: MapShared: size must be positive")
	}
	npages := (size + PageSize - 1) / PageSize
	start := base.Page()
	for i := uint64(0); i < npages; i++ {
		if _, dup := as.pages[start+i]; dup {
			return fmt.Errorf("mem: MapShared: virtual page %#x already mapped", start+i)
		}
		frame, ok := other.pages[start+i]
		if !ok {
			return fmt.Errorf("mem: MapShared: source page %#x not mapped", start+i)
		}
		as.pages[start+i] = frame
	}
	if end := start + npages; end > as.brk {
		as.brk = end
	}
	as.tlMemo = nil
	return nil
}

// MappedPages returns the mapped virtual page numbers in ascending order.
// Used by tests and diagnostics.
func (as *AddressSpace) MappedPages() []uint64 {
	out := make([]uint64, 0, len(as.pages))
	for p := range as.pages {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Lines enumerates the line-aligned virtual addresses of a [base, base+size)
// region, a convenience for building candidate pools.
func Lines(base VAddr, size uint64) []VAddr {
	n := size / LineSize
	out := make([]VAddr, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, base+VAddr(i*LineSize))
	}
	return out
}
