package service

import (
	"leakyway/internal/experiments"
	"leakyway/internal/telemetry"
)

// serverMetrics is the daemon's telemetry surface: every operational
// counter the old Stats struct carried, re-homed onto registry-backed
// series so /metricsz, /v1/statsz and tests all read the same atomics.
// Counter updates are single atomic adds, so the hot admission and
// worker paths pay nothing measurable.
type serverMetrics struct {
	reg *telemetry.Registry

	// leakywayd_jobs_total{event=...} — job lifecycle event counts.
	accepted  *telemetry.Counter
	completed *telemetry.Counter
	failed    *telemetry.Counter
	canceled  *telemetry.Counter
	rejected  *telemetry.Counter
	retries   *telemetry.Counter
	panics    *telemetry.Counter
	recovered *telemetry.Counter
	// rejected_degraded: admissions refused while the disk is sick.
	rejectedDegraded *telemetry.Counter

	// leakywayd_store_lookups_total{result=...} — admission-time store
	// outcome: hit (served from cache), coalesced (attached to an
	// in-flight execution), miss (fresh execution scheduled).
	storeHit       *telemetry.Counter
	storeCoalesced *telemetry.Counter
	storeMiss      *telemetry.Counter

	// Store governance and integrity repair.
	storeEvictions    *telemetry.Counter
	storeEvictedBytes *telemetry.Counter
	sweepRemoved      *telemetry.Counter

	// Durability hardening: degraded-mode episodes, absorbed fsync
	// retries and online journal compactions.
	degradedEntered *telemetry.Counter
	walFsyncRetries *telemetry.Counter
	walRotations    *telemetry.Counter

	// Worker utilization and SSE fan-out.
	workersBusy *telemetry.Gauge
	sseSubs     *telemetry.Gauge

	// Latency distributions, in seconds.
	queueWait   *telemetry.Histogram
	jobDone     *telemetry.Histogram
	jobFailed   *telemetry.Histogram
	jobCanceled *telemetry.Histogram
	walFsync    *telemetry.Histogram
}

// walFsyncBuckets resolves fsync latency: journal appends are tiny, so
// the interesting range is tens of microseconds to tens of milliseconds,
// with the long tail covered up to a second.
var walFsyncBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// newServerMetrics builds the registry and registers every family. The
// gauge callbacks sample the server's own state under its lock at
// snapshot time, so queue depth and job-table size are never duplicated
// into shadow variables that could drift.
func newServerMetrics(s *Server) *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{reg: reg}

	const jobsTotal = "leakywayd_jobs_total"
	const jobsHelp = "Job lifecycle events by type."
	m.accepted = reg.Counter(jobsTotal, jobsHelp, telemetry.L("event", "accepted"))
	m.completed = reg.Counter(jobsTotal, jobsHelp, telemetry.L("event", "completed"))
	m.failed = reg.Counter(jobsTotal, jobsHelp, telemetry.L("event", "failed"))
	m.canceled = reg.Counter(jobsTotal, jobsHelp, telemetry.L("event", "canceled"))
	m.rejected = reg.Counter(jobsTotal, jobsHelp, telemetry.L("event", "rejected"))
	m.retries = reg.Counter(jobsTotal, jobsHelp, telemetry.L("event", "retried"))
	m.panics = reg.Counter(jobsTotal, jobsHelp, telemetry.L("event", "panic"))
	m.recovered = reg.Counter(jobsTotal, jobsHelp, telemetry.L("event", "recovered"))
	m.rejectedDegraded = reg.Counter(jobsTotal, jobsHelp, telemetry.L("event", "rejected_degraded"))

	const lookups = "leakywayd_store_lookups_total"
	const lookupsHelp = "Admission-time result-store outcomes."
	m.storeHit = reg.Counter(lookups, lookupsHelp, telemetry.L("result", "hit"))
	m.storeCoalesced = reg.Counter(lookups, lookupsHelp, telemetry.L("result", "coalesced"))
	m.storeMiss = reg.Counter(lookups, lookupsHelp, telemetry.L("result", "miss"))

	m.storeEvictions = reg.Counter("leakywayd_store_evictions_total",
		"Entries evicted to keep the store under its quota.")
	m.storeEvictedBytes = reg.Counter("leakywayd_store_evicted_bytes_total",
		"Bytes reclaimed by store eviction.")
	m.sweepRemoved = reg.Counter("leakywayd_store_sweep_removed_total",
		"Entries the startup integrity sweep removed.")
	m.degradedEntered = reg.Counter("leakywayd_degraded_entered_total",
		"Times the server entered degraded mode over a disk failure.")
	m.walFsyncRetries = reg.Counter("leakywayd_wal_fsync_retries_total",
		"Transient journal fsync failures absorbed by retry.")
	m.walRotations = reg.Counter("leakywayd_wal_rotations_total",
		"Online journal compactions.")

	m.workersBusy = reg.Gauge("leakywayd_workers_busy",
		"Workers currently running an execution.")
	m.sseSubs = reg.Gauge("leakywayd_sse_subscribers",
		"Open SSE progress streams.")

	m.queueWait = reg.Histogram("leakywayd_queue_wait_seconds",
		"Time executions spend queued before a worker picks them up.", nil)
	const jobDur = "leakywayd_job_duration_seconds"
	const jobDurHelp = "Execution wall time from admission to terminal state."
	m.jobDone = reg.Histogram(jobDur, jobDurHelp, nil, telemetry.L("status", "done"))
	m.jobFailed = reg.Histogram(jobDur, jobDurHelp, nil, telemetry.L("status", "failed"))
	m.jobCanceled = reg.Histogram(jobDur, jobDurHelp, nil, telemetry.L("status", "canceled"))
	m.walFsync = reg.Histogram("leakywayd_wal_fsync_seconds",
		"Write-ahead journal append+fsync latency.", walFsyncBuckets)

	reg.GaugeFunc("leakywayd_queue_depth",
		"Executions accepted but not yet picked up by a worker.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.queued)
		})
	reg.GaugeFunc("leakywayd_workers",
		"Configured worker-pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("leakywayd_jobs_tracked",
		"Jobs in the in-memory job table.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.jobs))
		})
	reg.GaugeFunc("leakywayd_draining",
		"1 while the server has stopped admitting work.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.draining {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("leakywayd_store_bytes",
		"Total bytes of live result-store entries.",
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.SizeBytes())
		})
	reg.GaugeFunc("leakywayd_store_entries",
		"Live result-store entry count.",
		func() float64 {
			if s.store == nil {
				return 0
			}
			return float64(s.store.Len())
		})
	reg.GaugeFunc("leakywayd_degraded",
		"1 while the server is refusing admissions over a disk failure.",
		func() float64 {
			if deg, _ := s.DegradedState(); deg {
				return 1
			}
			return 0
		})
	reg.Gauge("leakywayd_build_info",
		"Constant 1, labeled with the engine version.",
		telemetry.L("engine", experiments.EngineVersion)).Set(1)

	return m
}

// jobDuration returns the latency histogram for a terminal status.
func (m *serverMetrics) jobDuration(status string) *telemetry.Histogram {
	switch status {
	case StatusDone:
		return m.jobDone
	case StatusFailed:
		return m.jobFailed
	case StatusCanceled:
		return m.jobCanceled
	}
	return nil
}

// Stats returns the legacy counter map (the /v1/statsz view), now read
// from the registry-backed series so there is exactly one copy of every
// count.
func (s *Server) Stats() map[string]int64 {
	return map[string]int64{
		"accepted":   s.met.accepted.Value(),
		"completed":  s.met.completed.Value(),
		"failed":     s.met.failed.Value(),
		"canceled":   s.met.canceled.Value(),
		"cache_hits": s.met.storeHit.Value(),
		"coalesced":  s.met.storeCoalesced.Value(),
		"rejected":   s.met.rejected.Value(),
		"retries":    s.met.retries.Value(),
		"panics":     s.met.panics.Value(),
		"recovered":  s.met.recovered.Value(),
	}
}
