// Package iofault abstracts the filesystem operations the daemon's
// durability layer performs — opens, writes, fsyncs, renames, removes —
// behind a small FS interface with two implementations: a production
// passthrough to the os package, and a deterministic fault injector that
// turns the same calls into the disk failures a long-running service
// eventually meets (ENOSPC, EIO on fsync, torn writes, torn removes,
// slow I/O).
//
// The injector follows the same composable, seed-deterministic style as
// internal/fault: each Rule models one hostile disk condition, rules
// compose on one Injector, every stochastic choice derives from the
// injector's seed, and the injector records what it injected so tests
// can assert exact fault counts for a fixed seed. Rules can be switched
// on and off at runtime (SetActive), which is how chaos tests model a
// fault window that later clears.
package iofault

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem surface the service layer consumes. It is the
// minimal set of operations store and journal code performs; anything
// not needed for durability (chmod, symlinks, ...) is deliberately
// absent so a fault implementation stays small and complete.
type FS interface {
	// MkdirAll creates a directory path along with any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// MkdirTemp creates a new temporary directory under dir.
	MkdirTemp(dir, pattern string) (string, error)
	// OpenFile opens a file with the given flags (create, append, ...).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Open opens a file (or directory, for directory fsync) read-only.
	Open(name string) (File, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes one file.
	Remove(name string) error
	// RemoveAll deletes a tree.
	RemoveAll(path string) error
}

// File is the open-file surface: sequential reads and writes, fsync,
// and truncate (the journal's torn-append repair path).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Name() string
}

// osFS is the production passthrough.
type osFS struct{}

// OS returns the production FS: every call forwards to the os package.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) MkdirTemp(dir, pattern string) (string, error) {
	return os.MkdirTemp(dir, pattern)
}
func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}
func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) RemoveAll(path string) error                { return os.RemoveAll(path) }
