package experiments

import "leakyway/internal/scenario"

// The builtin declarative scenarios. Six experiments — fig6, fig7, fig8,
// faults, ablate-lanes and noise — are not hand-coded: each registers as
// FromSpec(spec) over one of the Spec literals below, and the shipped
// templates/ pack is the Marshal of exactly these literals. That makes the
// equivalence guarantee structural: a template run and the registered
// experiment execute the same interpreter on a deeply-equal Spec under the
// same engine-derived seed, so their reports and metrics are
// byte-identical for any -jobs value (template_test.go pins it).

func init() {
	for _, s := range BuiltinSpecs() {
		register(FromSpec(s))
	}
}

// pointer-literal helpers for sparse override sections.
func i64p(v int64) *int64 { return &v }

// BuiltinSpecs returns the declarative scenarios that ship as templates/,
// in pack order. The slice and its Specs are freshly built on every call,
// so callers may mutate them freely.
func BuiltinSpecs() []*scenario.Spec {
	return []*scenario.Spec{
		specFig6(),
		specFig7(),
		specFig8(),
		specFaults(),
		specLanes(),
		specNoise(),
	}
}

// BuiltinSpec returns one builtin scenario by ID.
func BuiltinSpec(id string) (*scenario.Spec, bool) {
	for _, s := range BuiltinSpecs() {
		if s.ID == id {
			return s, true
		}
	}
	return nil, false
}

func specFig6() *scenario.Spec {
	return &scenario.Spec{
		ID:    "fig6",
		Title: "Figure 6 — LLC set states during NTP+NTP transmission",
		Paper: "dr is installed as the eviction candidate; a sent '1' replaces it with ds; the receiver's timed prefetch reads the bit and resets the set",
		Kind:  scenario.KindStateWalk,
		StateWalk: &scenario.StateWalkSpec{
			Message:          "10",
			CalibrateSamples: 48,
			ReceiverReady:    30_000,
			PhaseStep:        5_000,
		},
		Assert: []scenario.Assertion{
			{Metric: "state_walk_correct", Op: "eq", Value: 1},
		},
	}
}

func specFig7() *scenario.Spec {
	return &scenario.Spec{
		ID:    "fig7",
		Title: "Figure 7 — two-set pipelined NTP+NTP schedule",
		Paper: "sender and receiver alternate sets; the receiver always detects the bit sent one iteration earlier",
		Kind:  scenario.KindPipeline,
		// The fault framework is absent and the message is short; disable
		// the background noise daemon so the schedule renders cleanly.
		Channel:  &scenario.ChannelSpec{NoisePeriod: i64p(0)},
		Pipeline: &scenario.PipelineSpec{Message: "10110100"},
		Assert: []scenario.Assertion{
			{Metric: "pipeline_errors", Op: "eq", Value: 0},
		},
	}
}

func specFig8() *scenario.Spec {
	return &scenario.Spec{
		ID:    "fig8",
		Title: "Figure 8 — channel capacity and bit error rate vs raw transmission rate",
		Paper: "BER stays low until a knee, then capacity collapses; NTP+NTP peaks ≈302/275 KB/s (SKL/KBL), Prime+Probe ≈86/81 KB/s",
		Kind:  scenario.KindSweep,
		Sweep: &scenario.SweepSpec{
			Bits: 2000,
			Channels: []scenario.SweepChannel{
				{Channel: "ntpntp", Intervals: []int64{900, 1100, 1300, 1500, 1800, 2200, 2800, 3600, 5000, 8000}},
				{Channel: "primeprobe", Intervals: []int64{4000, 5000, 6000, 6500, 7000, 8000, 9000, 11000, 14000, 20000}},
			},
		},
		Extract: []scenario.Extractor{
			{Name: "skl_ntp_peak", Type: "metric", Metric: "skylake/ntpntp_peak_kbps"},
			{Name: "skl_pp_peak", Type: "metric", Metric: "skylake/primeprobe_peak_kbps"},
			{Name: "skl_peak_ratio", Type: "regex",
				Pattern: `peaks on Skylake[^\n]*\((\d+\.\d)x\)`},
		},
		Assert: []scenario.Assertion{
			{Extract: "skl_ntp_peak", Op: "gt", Value: 0},
			{Extract: "skl_pp_peak", Op: "gt", Value: 0},
			{Extract: "skl_peak_ratio", Op: "gt", Value: 1},
		},
	}
}

func specFaults() *scenario.Spec {
	return &scenario.Spec{
		ID:    "faults",
		Title: "Extension — fault injection: raw vs Hamming vs ARQ transport",
		Paper: "Section IV-B3 lists preemption, noise and timing degradation as reliability threats; the ARQ transport must deliver through all of them",
		Kind:  scenario.KindFaults,
		Channel: &scenario.ChannelSpec{
			Interval:    i64p(2000),
			NoisePeriod: i64p(0), // the fault framework injects the interference
		},
		Transport: &scenario.TransportSpec{
			Channel: &scenario.ChannelSpec{NoisePeriod: i64p(0)},
		},
		Faults: &scenario.FaultsSpec{
			RawBits:         1200,
			ARQBits:         128,
			InterleaveDepth: 56,
			Scenarios: []scenario.FaultScenario{
				{Key: "none"},
				{Key: "preempt", Faults: []scenario.FaultSpec{
					{Type: "preemption", Count: 6, MinDur: 20_000, MaxDur: 60_000},
				}},
				{Key: "pollute", Faults: []scenario.FaultSpec{
					{Type: "pollution", Bursts: 8, Walks: 4, Gap: 60},
				}},
				// A slow receiver clock: strong enough that the slot grids
				// slide a full slot apart within even a quick-mode raw
				// transmission (~340k cycles).
				{Key: "drift", Faults: []scenario.FaultSpec{
					{Type: "clock-drift", PPM: -8000},
				}},
				{Key: "spikes", Faults: []scenario.FaultSpec{
					{Type: "timer-spikes", Count: 6, Dur: 60_000, Extra: 400},
				}},
				{Key: "migrate", Faults: []scenario.FaultSpec{
					{Type: "migration", Cost: 60_000},
				}},
				{Key: "all", Faults: []scenario.FaultSpec{
					{Type: "preemption", Count: 3, MinDur: 15_000, MaxDur: 40_000},
					{Type: "pollution", Bursts: 4, Walks: 3, Gap: 60},
					{Type: "clock-drift", PPM: 800},
					{Type: "timer-spikes", Count: 3, Dur: 40_000, Extra: 400},
				}},
			},
		},
		Assert: []scenario.Assertion{
			{Metric: "faults_none_arq_delivered", Op: "eq", Value: 1},
			{Metric: "faults_all_arq_delivered", Op: "eq", Value: 1},
			{Metric: "faults_none_raw_ber", Op: "le", Value: 0.01},
		},
	}
}

func specLanes() *scenario.Spec {
	return &scenario.Spec{
		ID:    "ablate-lanes",
		Title: "Extension — multi-lane NTP+NTP bandwidth scaling",
		Paper: "the paper uses one two-set lane; extra lanes multiply bits per iteration until receiver probing saturates the interval",
		Kind:  scenario.KindLanes,
		// Each extra lane adds one timed prefetch (~300 cycles worst case)
		// of receiver work per iteration; sweep a few interval offsets
		// around the expected knee and keep the best.
		Channel: &scenario.ChannelSpec{NoisePeriod: i64p(0)},
		Lanes: &scenario.LanesSpec{
			Bits:       2000,
			LaneCounts: []int{1, 2, 4, 8},
			Offsets:    []int64{120, 400, 900},
			LaneCost:   330,
		},
		Assert: []scenario.Assertion{
			{Metric: "lanes1_capacity", Op: "gt", Value: 0},
			{Metric: "lanes8_capacity", Op: "gt", Value: 0},
		},
	}
}

func specNoise() *scenario.Spec {
	return &scenario.Spec{
		ID:    "noise",
		Title: "Extension — channel reliability vs co-tenant noise (Section IV-B3)",
		Paper: "other processes touching the target sets flip bits; the paper prescribes more reliable encodings",
		Kind:  scenario.KindNoise,
		Channel: &scenario.ChannelSpec{
			Interval: i64p(1600),
		},
		Noise: &scenario.NoiseSpec{
			Bits:            2000,
			Periods:         []int64{0, 400_000, 100_000, 40_000, 15_000},
			InterleaveDepth: 56,
		},
		Assert: []scenario.Assertion{
			{Metric: "noise0_raw_ber", Op: "le", Value: 0.01},
			{Metric: "noise0_hamming_residual", Op: "eq", Value: 0},
		},
	}
}
