package hier

import (
	"testing"

	"leakyway/internal/mem"
)

func partitionedConfig() Config {
	cfg := testConfig()
	cfg.LLCWays = 8
	cfg.Cores = 2
	cfg.LLCPartitionWays = 4
	return cfg
}

func TestPartitionValidation(t *testing.T) {
	bad := testConfig()
	bad.LLCPartitionWays = -1
	if _, err := New(bad); err == nil {
		t.Error("negative partition accepted")
	}
	bad = testConfig()
	bad.Cores = 4
	bad.LLCWays = 8
	bad.LLCPartitionWays = 4 // 16 ways needed, 8 available
	if _, err := New(bad); err == nil {
		t.Error("oversubscribed partition accepted")
	}
}

func TestPartitionBlocksCrossCoreEviction(t *testing.T) {
	h := MustNew(partitionedConfig())
	victim := mem.PAddr(0x4040)
	// Core 0 caches its line.
	h.Load(0, victim, 0)
	// Core 1 thrashes the same LLC set far beyond its own partition.
	lines := congruentLines(h, victim, 24)
	now := int64(1000)
	for round := 0; round < 4; round++ {
		for _, pa := range lines {
			h.Load(1, pa, now)
			now += 1000
		}
	}
	if !h.Present(LevelLLC, victim) {
		t.Fatal("partitioned LLC let core 1 evict core 0's line")
	}
}

func TestPartitionStillEvictsWithinOwnWays(t *testing.T) {
	h := MustNew(partitionedConfig())
	base := mem.PAddr(0x4040)
	lines := congruentLines(h, base, 6)
	now := int64(0)
	// Core 0 fills its 4 ways then keeps going: its own lines must churn.
	h.Load(0, base, now)
	for _, pa := range lines {
		now += 1000
		h.Load(0, pa, now)
	}
	// 7 lines through a 4-way partition: the first must be gone.
	if h.Present(LevelLLC, base) && func() bool {
		for _, pa := range lines {
			if !h.Present(LevelLLC, pa) {
				return false
			}
		}
		return true
	}() {
		t.Fatal("7 lines all present in a 4-way partition")
	}
	if got := h.LLCOccupancy(base); got > 4 {
		t.Fatalf("core 0 occupies %d ways, partition allows 4", got)
	}
}

func TestPartitionSharedHitsStillWork(t *testing.T) {
	h := MustNew(partitionedConfig())
	pa := mem.PAddr(0x8080)
	h.Load(0, pa, 0)
	// Core 1 can still *read* the line (cross-core LLC hit).
	res := h.Load(1, pa, 1000)
	if res.Level != LevelLLC {
		t.Fatalf("cross-core shared read level = %v, want LLC", res.Level)
	}
}

func TestPartitionBlocksNTAConflict(t *testing.T) {
	// The NTP+NTP primitive dies: core 1's NTA cannot displace core 0's
	// prefetched candidate.
	h := MustNew(partitionedConfig())
	dr := mem.PAddr(0x4040)
	h.PrefetchNTA(0, dr, 0)
	lines := congruentLines(h, dr, 8)
	now := int64(1000)
	for _, pa := range lines {
		h.PrefetchNTA(1, pa, now)
		now += 1000
	}
	if !h.Present(LevelLLC, dr) {
		t.Fatal("cross-core NTA evicted the other domain's line despite partitioning")
	}
}
