package scenario

import (
	"strings"
	"testing"
)

// TestAssertionHolds covers every comparison op through Evaluate.
func TestAssertionHolds(t *testing.T) {
	cases := []struct {
		op         string
		value, max float64
		tol        float64
		v          float64
		want       bool
	}{
		{op: "eq", value: 1, v: 1, want: true},
		{op: "eq", value: 1, v: 2, want: false},
		{op: "ne", value: 1, v: 2, want: true},
		{op: "ne", value: 1, v: 1, want: false},
		{op: "lt", value: 5, v: 4, want: true},
		{op: "lt", value: 5, v: 5, want: false},
		{op: "le", value: 5, v: 5, want: true},
		{op: "le", value: 5, v: 6, want: false},
		{op: "gt", value: 5, v: 6, want: true},
		{op: "gt", value: 5, v: 5, want: false},
		{op: "ge", value: 5, v: 5, want: true},
		{op: "ge", value: 5, v: 4, want: false},
		{op: "between", value: 1, max: 3, v: 2, want: true},
		{op: "between", value: 1, max: 3, v: 4, want: false},
		{op: "approx", value: 10, tol: 0.5, v: 10.4, want: true},
		{op: "approx", value: 10, tol: 0.5, v: 9.6, want: true},
		{op: "approx", value: 10, tol: 0.5, v: 11, want: false},
	}
	for _, tc := range cases {
		s := &Spec{Assert: []Assertion{{
			Metric: "m", Op: tc.op, Value: tc.value, Max: tc.max, Tol: tc.tol,
		}}}
		ev := s.Evaluate("", map[string]float64{"m": tc.v})
		if len(ev.Assertions) != 1 {
			t.Fatalf("%s: %d assertion results", tc.op, len(ev.Assertions))
		}
		got := ev.Assertions[0]
		if !got.Found {
			t.Fatalf("%s: metric not found", tc.op)
		}
		if got.Pass != tc.want {
			t.Errorf("%s(%v, max=%v, tol=%v) on %v: pass=%v, want %v",
				tc.op, tc.value, tc.max, tc.tol, tc.v, got.Pass, tc.want)
		}
		wantFailed := 0
		if !tc.want {
			wantFailed = 1
		}
		if ev.Failed != wantFailed {
			t.Errorf("%s: Failed=%d, want %d", tc.op, ev.Failed, wantFailed)
		}
	}
}

// TestEvaluateExtractors covers regex group capture (explicit and default
// group), numeric parsing, metric extraction and the no-match path.
func TestEvaluateExtractors(t *testing.T) {
	report := "peaks on Skylake: NTP+NTP 172.9 KB/s vs Prime+Probe 64.2 KB/s (2.7x)\n"
	s := &Spec{
		Extract: []Extractor{
			{Name: "ratio", Type: "regex", Pattern: `\((\d+\.\d)x\)`},
			{Name: "pair", Type: "regex", Pattern: `NTP\+NTP (\d+\.\d) KB/s vs Prime\+Probe (\d+\.\d)`, Group: 2},
			{Name: "word", Type: "regex", Pattern: `peaks on (\w+)`},
			{Name: "missing", Type: "regex", Pattern: `no such line (\d+)`},
			{Name: "met", Type: "metric", Metric: "skylake/peak"},
			{Name: "nomet", Type: "metric", Metric: "absent"},
		},
		Assert: []Assertion{
			{Extract: "ratio", Op: "gt", Value: 1},
			{Extract: "word", Op: "eq", Value: 0},    // non-numeric extract: not Found
			{Extract: "missing", Op: "eq", Value: 0}, // unmatched extract: not Found
			{Metric: "absent", Op: "eq", Value: 0},   // missing metric: not Found
		},
	}
	ev := s.Evaluate(report, map[string]float64{"skylake/peak": 172.9})

	byName := map[string]ExtractedValue{}
	for _, x := range ev.Extracted {
		byName[x.Name] = x
	}
	if x := byName["ratio"]; !x.Matched || x.Text != "2.7" || !x.Numeric || x.Value != 2.7 {
		t.Errorf("ratio: %+v", x)
	}
	if x := byName["pair"]; !x.Matched || x.Text != "64.2" {
		t.Errorf("pair (group 2): %+v", x)
	}
	if x := byName["word"]; !x.Matched || x.Text != "Skylake" || x.Numeric {
		t.Errorf("word: %+v", x)
	}
	if x := byName["missing"]; x.Matched {
		t.Errorf("missing matched: %+v", x)
	}
	if x := byName["met"]; !x.Matched || x.Value != 172.9 {
		t.Errorf("met: %+v", x)
	}
	if x := byName["nomet"]; x.Matched {
		t.Errorf("nomet matched: %+v", x)
	}

	if a := ev.Assertions[0]; !a.Found || !a.Pass {
		t.Errorf("ratio assertion: %+v", a)
	}
	for i, name := range map[int]string{1: "word", 2: "missing", 3: "absent"} {
		if a := ev.Assertions[i]; a.Found || a.Pass {
			t.Errorf("%s assertion should be not-Found and failing: %+v", name, a)
		}
	}
	if ev.Failed != 3 {
		t.Errorf("Failed=%d, want 3", ev.Failed)
	}
}

// TestEvaluationRender pins the rendered block's shape: extract lines,
// no-match markers, PASS/FAIL verdicts and the value-not-found suffix.
func TestEvaluationRender(t *testing.T) {
	s := &Spec{
		Extract: []Extractor{
			{Name: "hit", Type: "metric", Metric: "m"},
			{Name: "miss", Type: "metric", Metric: "absent"},
		},
		Assert: []Assertion{
			{Metric: "m", Op: "ge", Value: 1},
			{Metric: "m", Op: "lt", Value: 1},
			{Extract: "miss", Op: "eq", Value: 0},
		},
	}
	out := s.Evaluate("", map[string]float64{"m": 2}).Render()
	for _, want := range []string{
		"extract hit",
		"= 2",
		"(no match)",
		"PASS metric m ge 1 (got 2)",
		"FAIL metric m lt 1 (got 2)",
		"FAIL extract miss eq 0 (value not found)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered evaluation lacks %q:\n%s", want, out)
		}
	}
}

// TestAssertionDescribe pins the one-line forms for the three arities.
func TestAssertionDescribe(t *testing.T) {
	cases := []struct {
		a    Assertion
		want string
	}{
		{Assertion{Metric: "m", Op: "ge", Value: 10}, "metric m ge 10"},
		{Assertion{Extract: "x", Op: "between", Value: 1, Max: 3}, "extract x between [1, 3]"},
		{Assertion{Metric: "m", Op: "approx", Value: 10, Tol: 0.5}, "metric m approx 10 ± 0.5"},
	}
	for _, tc := range cases {
		if got := tc.a.Describe(); got != tc.want {
			t.Errorf("Describe() = %q, want %q", got, tc.want)
		}
	}
}

func TestMetricNames(t *testing.T) {
	got := MetricNames(map[string]float64{"b": 1, "a": 2, "c": 3})
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MetricNames = %v, want %v", got, want)
		}
	}
}
