package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"leakyway/internal/telemetry"
)

// handleJobEvents streams one job's progress as Server-Sent Events:
//
//	event: progress
//	data: {"t_ms":1234,"phase":"fig6","phases_done":0,...}
//
// repeated while the job runs (one frame per changed snapshot, sampled
// at ProgressInterval), then a terminal frame:
//
//	event: done
//	data: {"id":"j-000001","status":"done",...}
//
// For a job that already finished, the stored "progress" artifact is
// replayed frame-for-frame before the done event, so late subscribers
// see the same stream a live one did. Client disconnects are honored
// via the request context; a stream holds no server resources beyond
// its goroutine, and the subscriber gauge tracks open streams so tests
// can prove they drain.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	var exec *execution
	var key string
	terminal := false
	if j != nil {
		exec = j.exec
		key = j.Key
		terminal = j.terminal()
	}
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	s.met.sseSubs.Add(1)
	defer s.met.sseSubs.Add(-1)

	send := func(event string, data []byte) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}
	sendDone := func() {
		b, err := json.Marshal(s.viewOf(id))
		if err == nil {
			send("done", b)
		}
	}

	// Terminal job (including cache hits, which never had an execution):
	// replay the stored progress artifact, then the final job view.
	if terminal || exec == nil {
		if data, err := s.store.Artifact(key, "progress"); err == nil {
			for _, line := range bytes.Split(data, []byte("\n")) {
				if len(line) > 0 {
					send("progress", line)
				}
			}
		}
		sendDone()
		return
	}

	// Live job: an immediate frame, then one per changed snapshot.
	ticker := time.NewTicker(s.cfg.ProgressInterval)
	defer ticker.Stop()
	var last telemetry.ProgressSnapshot
	sent := false
	emit := func() {
		snap := exec.prog.Snapshot()
		if sent && snap.Equal(last) {
			return
		}
		last, sent = snap, true
		b, err := json.Marshal(progressEvent{TMs: exec.progLog.sinceStartMs(), ProgressSnapshot: snap})
		if err == nil {
			send("progress", b)
		}
	}
	emit()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-exec.done:
			emit()
			sendDone()
			return
		case <-ticker.C:
			emit()
		}
	}
}
