package victim

import (
	"leakyway/internal/core"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

// ExponentVictim models a square-and-multiply modular exponentiation: one
// fixed-length window per exponent bit, with the multiply routine's code
// line touched only when the bit is 1. Monitoring that single line with a
// scope attack recovers the exponent — the classic RSA scenario the scope
// attacks of Section V-A are built for.
type ExponentVictim struct {
	// Exponent is the secret bit string, MSB first.
	Exponent []bool
	// MulLine is the multiply routine's cache line (victim address
	// space); the attacker monitors the LLC set it maps to.
	MulLine mem.VAddr
	// Window is the cycle length of one square-and-multiply iteration.
	Window int64
	// Start is when the exponentiation begins.
	Start int64
}

// NewExponentVictim allocates the multiply routine's line in as.
func NewExponentVictim(as *mem.AddressSpace, exponent []bool, window, start int64) (*ExponentVictim, error) {
	buf, err := as.Alloc(mem.PageSize)
	if err != nil {
		return nil, err
	}
	return &ExponentVictim{Exponent: exponent, MulLine: buf, Window: window, Start: start}, nil
}

// Spawn starts the victim daemon: it walks the exponent bits once, touching
// the multiply line mid-window for every 1 bit, then idles.
func (v *ExponentVictim) Spawn(m *sim.Machine, coreID int, as *mem.AddressSpace) {
	m.SpawnDaemon("exp-victim", coreID, as, func(c *sim.Core) {
		for i, bit := range v.Exponent {
			c.WaitUntil(v.Start + int64(i)*v.Window + v.Window/2)
			if bit {
				c.Load(v.MulLine)
			}
		}
		for {
			c.Spin(1 << 20) // exponentiation done; idle forever
		}
	})
}

// SpyExponent mounts Prime+Prefetch+Scope against the victim's multiply
// line and reconstructs the exponent from the detection timeline: a window
// containing a detection is a 1, an empty window a 0. The attacker uses the
// paper's 31-reference NTA preparation, so it re-arms well within one
// window.
//
// The returned slice is the recovered exponent; the bool reports whether
// every window was observed (the attacker kept up).
func SpyExponent(m *sim.Machine, coreID int, as *mem.AddressSpace, v *ExponentVictim, vicAS *mem.AddressSpace) *[]bool {
	recovered := &[]bool{}
	// The eviction set targets the multiply line's LLC set.
	mulLLC := vicAS.MustTranslate(v.MulLine).Line()
	evset, err := core.CongruentWithLine(m, as, mulLLC, m.H.Config().LLCWays)
	if err != nil {
		panic(err)
	}
	m.Spawn("exp-spy", coreID, as, func(c *sim.Core) {
		th := core.Calibrate(c, 48)
		n := len(v.Exponent)
		// Rotate the priming order across iterations (see RunScope).
		view := make([]mem.VAddr, len(evset))
		view[0] = evset[0]
		for w := 0; w < n; w++ {
			for i := 1; i < len(evset); i++ {
				view[i] = evset[1+(i-1+w)%(len(evset)-1)]
			}
			// Prepare before the window opens, then scope through it.
			c.WaitUntil(v.Start + int64(w)*v.Window - v.Window/4)
			core.PrimePrefetchScopePrepare(c, view, 2)
			end := v.Start + int64(w+1)*v.Window - v.Window/4
			hit := false
			for c.Now() < end {
				if t := c.TimedLoad(view[0]); t > th.L1Threshold {
					hit = true
					// Stay quiet until the window closes; the
					// next prepare re-arms the set.
					c.WaitUntil(end)
					break
				}
			}
			*recovered = append(*recovered, hit)
		}
	})
	return recovered
}
