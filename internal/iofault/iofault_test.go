package iofault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// writeVia writes data to path through fsys, returning the write and
// sync errors separately.
func writeVia(t *testing.T, fsys FS, path string, data []byte) (writeErr, syncErr error) {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	_, writeErr = f.Write(data)
	syncErr = f.Sync()
	return writeErr, syncErr
}

func TestOSPassthroughRoundTrip(t *testing.T) {
	fsys := OS()
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := fsys.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(sub, "f.txt")
	if w, s := writeVia(t, fsys, path, []byte("hello")); w != nil || s != nil {
		t.Fatalf("write/sync: %v / %v", w, s)
	}
	got, err := fsys.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back: %q, %v", got, err)
	}
	if err := fsys.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	ents, err := fsys.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "f.txt.2" {
		t.Fatalf("readdir: %v, %v", ents, err)
	}
	if err := fsys.RemoveAll(filepath.Join(dir, "a")); err != nil {
		t.Fatal(err)
	}
}

func TestFailSyncEveryN(t *testing.T) {
	inj := NewInjector(OS(), 1, FailSync("", 3, ErrIO))
	dir := t.TempDir()
	var failures int
	for i := 0; i < 9; i++ {
		_, syncErr := writeVia(t, inj, filepath.Join(dir, "f"), []byte("x"))
		if syncErr != nil {
			if !errors.Is(syncErr, syscall.EIO) {
				t.Fatalf("sync error %v, want EIO", syncErr)
			}
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("%d sync failures over 9 syncs with everyN=3, want 3", failures)
	}
	if got := inj.Injected("fail-sync"); got != 3 {
		t.Fatalf("injected count %d, want 3", got)
	}
}

func TestFailSyncPathFilter(t *testing.T) {
	inj := NewInjector(OS(), 1, FailSync("journal", 1, ErrIO))
	dir := t.TempDir()
	if _, syncErr := writeVia(t, inj, filepath.Join(dir, "journal.jsonl"), []byte("x")); syncErr == nil {
		t.Fatalf("journal sync must fail")
	}
	if _, syncErr := writeVia(t, inj, filepath.Join(dir, "other.txt"), []byte("x")); syncErr != nil {
		t.Fatalf("non-matching path faulted: %v", syncErr)
	}
}

func TestDiskFullTearsBoundaryWrite(t *testing.T) {
	rule := DiskFull("", 10)
	inj := NewInjector(OS(), 1, rule)
	dir := t.TempDir()
	path := filepath.Join(dir, "f")

	// 6 bytes fit; the next 6-byte write crosses the 10-byte budget and
	// must be torn at 4 bytes with ENOSPC.
	f, err := inj.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aaaaaa")); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	n, err := f.Write([]byte("bbbbbb"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("boundary write error %v, want ENOSPC", err)
	}
	if n != 4 {
		t.Fatalf("torn write reported %d bytes, want 4", n)
	}
	f.Close()
	got, _ := os.ReadFile(path)
	if string(got) != "aaaaaabbbb" {
		t.Fatalf("on-disk bytes %q, want the torn prefix", got)
	}

	// Every later write fails without touching the file.
	if w, _ := writeVia(t, inj, filepath.Join(dir, "g"), []byte("c")); !errors.Is(w, syscall.ENOSPC) {
		t.Fatalf("post-full write error %v, want ENOSPC", w)
	}
	// Reset refills the budget — space was freed.
	rule.Reset()
	if w, s := writeVia(t, inj, filepath.Join(dir, "g"), []byte("c")); w != nil || s != nil {
		t.Fatalf("after Reset: %v / %v", w, s)
	}
}

func TestTornWriteIsSeedDeterministic(t *testing.T) {
	run := func(seedv int64) []int {
		inj := NewInjector(OS(), seedv, TornWrite("", 0.5, ErrIO))
		dir := t.TempDir()
		var cuts []int
		for i := 0; i < 20; i++ {
			f, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			n, werr := f.Write(make([]byte, 100))
			f.Close()
			if werr != nil {
				cuts = append(cuts, n)
			} else if n != 100 {
				t.Fatalf("clean write wrote %d", n)
			}
		}
		return cuts
	}
	a, b := run(7), run(7)
	if len(a) == 0 || len(a) == 20 {
		t.Fatalf("prob 0.5 over 20 writes tore %d — rng not engaged", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different tear counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different cut points: %v vs %v", a, b)
		}
	}
}

func TestBrokenRemoveTearsTree(t *testing.T) {
	inj := NewInjector(OS(), 1, BrokenRemove("victim", ErrIO))
	dir := t.TempDir()
	victim := filepath.Join(dir, "victim-entry")
	if err := os.MkdirAll(victim, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a.json", "b.json", "c.json", "d.json"} {
		if err := os.WriteFile(filepath.Join(victim, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	err := inj.RemoveAll(victim)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("RemoveAll error %v, want EIO", err)
	}
	ents, _ := os.ReadDir(victim)
	if len(ents) == 0 || len(ents) == 4 {
		t.Fatalf("torn RemoveAll left %d of 4 files; want a partial tree", len(ents))
	}
	// Unmatched paths remove cleanly.
	if err := inj.RemoveAll(dir); err != nil {
		t.Fatalf("unmatched RemoveAll: %v", err)
	}
}

func TestSetActiveClearsFaults(t *testing.T) {
	inj := NewInjector(OS(), 1, FailSync("", 1, ErrIO))
	dir := t.TempDir()
	if _, syncErr := writeVia(t, inj, filepath.Join(dir, "f"), []byte("x")); syncErr == nil {
		t.Fatalf("active injector must fault")
	}
	inj.SetActive(false)
	if inj.Active() {
		t.Fatalf("Active() true after SetActive(false)")
	}
	if _, syncErr := writeVia(t, inj, filepath.Join(dir, "f"), []byte("x")); syncErr != nil {
		t.Fatalf("inactive injector faulted: %v", syncErr)
	}
	inj.SetActive(true)
	if _, syncErr := writeVia(t, inj, filepath.Join(dir, "f"), []byte("x")); syncErr == nil {
		t.Fatalf("reactivated injector must fault")
	}
	if got := inj.InjectedTotal(); got != 2 {
		t.Fatalf("injected total %d, want 2", got)
	}
}

func TestSlowDelaysWithoutFailing(t *testing.T) {
	inj := NewInjector(OS(), 1, Slow("", 20*time.Millisecond, OpSync))
	dir := t.TempDir()
	start := time.Now()
	w, s := writeVia(t, inj, filepath.Join(dir, "f"), []byte("x"))
	if w != nil || s != nil {
		t.Fatalf("slow I/O must still succeed: %v / %v", w, s)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("sync returned in %v, want >= 20ms stall", d)
	}
	if got := inj.InjectedTotal(); got != 0 {
		t.Fatalf("pure delays counted as injected faults: %d", got)
	}
}
