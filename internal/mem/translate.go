package mem

import "fmt"

// Four-level x86-64 style paging: 9 index bits per level above the 12-bit
// page offset. TranslationLevels walks the same structure the hardware
// page-table walker does, which is what the prefetch-timing KASLR attacks
// of Gruss et al. (the paper's Section VI-C related work) observe.
const (
	PageLevels    = 4
	levelBits     = 9
	pageIndexBits = PageBits // 12
)

// levelPrefix returns va's index prefix covering the top `level` levels
// (level 1 = PML4 index only, level 4 = full page number).
func levelPrefix(va VAddr, level int) uint64 {
	shift := uint(pageIndexBits + (PageLevels-level)*levelBits)
	return uint64(va) >> shift
}

// AllocAt maps size bytes of fresh physical frames at the given
// page-aligned virtual base (modelling a kernel region or a fixed-address
// mapping). It fails if any page in the range is already mapped.
func (as *AddressSpace) AllocAt(base VAddr, size uint64) error {
	if base.PageOffset() != 0 {
		return fmt.Errorf("mem: AllocAt(%#x): base not page aligned", uint64(base))
	}
	if size == 0 {
		return fmt.Errorf("mem: AllocAt: size must be positive")
	}
	npages := (size + PageSize - 1) / PageSize
	start := base.Page()
	for i := uint64(0); i < npages; i++ {
		if _, dup := as.pages[start+i]; dup {
			return fmt.Errorf("mem: AllocAt: page %#x already mapped", start+i)
		}
	}
	for i := uint64(0); i < npages; i++ {
		frame, err := as.pm.AllocFrame()
		if err != nil {
			return err
		}
		as.pages[start+i] = frame
	}
	if end := start + npages; end > as.brk {
		as.brk = end
	}
	as.tlMemo = nil
	return nil
}

// TranslationLevels reports how many page-table levels resolve for va:
// 0 means even the top-level entry is absent, PageLevels means the page is
// fully mapped. The walk time a prefetch of va takes is proportional to
// this depth — timing it leaks the layout of address spaces the prober
// cannot read.
func (as *AddressSpace) TranslationLevels(va VAddr) int {
	page := va.Page()
	if _, ok := as.pages[page]; ok {
		return PageLevels
	}
	// An upper-level entry exists iff some mapped page shares the prefix.
	// Address spaces here are small (thousands of pages), so a scan per
	// level is acceptable; KASLR probes hammer the same unmapped pages, so
	// the depth is memoized per page (any mutator drops the whole memo,
	// since a new mapping can deepen a neighbouring walk).
	if depth, ok := as.tlMemo[page]; ok {
		return depth
	}
	depth := 0
	for level := PageLevels - 1; level >= 1; level-- {
		want := levelPrefix(va, level)
		for p := range as.pages {
			if levelPrefix(VAddr(p<<PageBits), level) == want {
				depth = level
				break
			}
		}
		if depth != 0 {
			break
		}
	}
	if as.tlMemo == nil {
		as.tlMemo = make(map[uint64]int)
	}
	as.tlMemo[page] = depth
	return depth
}
