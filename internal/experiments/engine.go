package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"leakyway/internal/hier"
	"leakyway/internal/sim"
)

// The parallel experiment engine.
//
// runExperiments fans a task list out over a pool of ctx.Jobs workers.
// Determinism is preserved by construction, not by luck:
//
//   - every task's stochastic behaviour derives from SplitSeed(master,
//     taskKey), never from a shared RNG, so it cannot observe scheduling;
//   - every task renders into a private buffer; buffers are flushed to
//     ctx.Out strictly in canonical (paper) order;
//   - concurrent metric recording goes through Result's lock and the
//     final map is key-addressed, so recording order is invisible.
//
// Inside a task, Parallel hands trial shards to idle pool workers. The
// pool uses a token bucket in which each outer worker holds a token for
// its lifetime: while all workers are busy, inner Parallel finds no free
// token and degrades to the calling goroutine running its shards itself
// (never a deadlock); during the tail of a run, drained workers return
// their tokens and the still-running heavy experiments soak them up.

// task is one unit of outer-level work.
type taskState struct {
	res *Result
	err error
	buf bytes.Buffer
}

// runExperiments executes the given experiments and emits their reports
// in canonical order. On error it still flushes every report preceding
// the failing experiment, mirroring the serial engine's behaviour.
func runExperiments(ctx *Context, list []Experiment) (map[string]*Result, error) {
	slots := make([]taskState, len(list))
	jobs := ctx.workers()
	ctx.Progress.SetPhasesTotal(len(list))
	// With one worker there is no spare capacity to recruit, so children
	// get no token bucket and Parallel degrades to a plain loop.
	var sem chan struct{}
	if jobs > 1 {
		sem = make(chan struct{}, jobs)
	}

	runTask := func(i int) {
		e := list[i]
		// Cancellation checkpoint: a cancelled run starts no new
		// experiments; already-running ones unwind at their next shard
		// boundary (see Parallel).
		if err := ctx.canceled(); err != nil {
			slots[i].err = err
			return
		}
		sub := ctx.child(SplitSeed(ctx.Seed, e.ID), &slots[i].buf, e.ID)
		sub.sem = sem
		sub.guarded = true
		ctx.Progress.StartPhase(e.ID)
		header(sub, e)
		slots[i].res, slots[i].err = runGuarded(sub, e)
		ctx.Progress.EndPhase()
	}

	if jobs <= 1 {
		for i := range list {
			runTask(i)
		}
	} else {
		feed := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				for i := range feed {
					runTask(i)
				}
			}()
		}
		for i := range list {
			feed <- i
		}
		close(feed)
		wg.Wait()
	}

	out := map[string]*Result{}
	for i, e := range list {
		if slots[i].res != nil {
			slots[i].res.Report = slots[i].buf.String()
		}
		if ctx.Out != nil {
			ctx.mu.Lock()
			_, werr := ctx.Out.Write(slots[i].buf.Bytes())
			ctx.mu.Unlock()
			if werr != nil {
				return out, fmt.Errorf("experiments: writing report: %w", werr)
			}
		}
		if slots[i].err != nil {
			return out, fmt.Errorf("experiments: %s: %w", e.ID, slots[i].err)
		}
		out[e.ID] = slots[i].res
	}
	return out, nil
}

// runGuarded invokes the experiment, converting a panic (e.g. from a sim
// agent) into an error so one bad task cannot take down the whole pool —
// the panic-isolation discipline the daemon's workers rely on. Structured
// unwinds keep their meaning: a failf abort surfaces as its wrapped error
// (experiment + phase + cause), and a cancellation abort surfaces as the
// context's error, so callers can errors.Is against context.Canceled.
func runGuarded(ctx *Context, e Experiment) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			switch v := r.(type) {
			case taskFail:
				err = v.err
			case taskAbort:
				err = v.err
			default:
				err = fmt.Errorf("panic: %v", r)
			}
		}
	}()
	return e.Run(ctx)
}

// workers returns the effective worker count.
func (ctx *Context) workers() int {
	if ctx.Jobs > 1 {
		return ctx.Jobs
	}
	return 1
}

// Parallel runs fn(0), ..., fn(n-1), recruiting an extra goroutine for
// every free engine worker token; the calling goroutine always
// participates, so Parallel makes progress even when the pool is
// saturated and can never deadlock. Shards are handed out dynamically,
// so fn must be schedule-independent: write results into per-index
// slots and derive any randomness from ctx.ShardSeed(i) (or another
// SplitSeed key), never from state shared across shards.
//
// Two robustness properties hold at shard granularity:
//
//   - a panic in any shard — including one running on a recruited helper
//     goroutine — stops the loop and is re-raised on the calling
//     goroutine, where the engine's runGuarded converts it into a task
//     error instead of killing the process;
//   - when ctx.Ctx is cancelled, no further shards start. Under the
//     engine the task then unwinds with the context's error; on a
//     hand-built Context, Parallel simply returns early and the caller
//     must check ctx.Ctx itself.
func (ctx *Context) Parallel(n int, fn func(i int)) {
	// Progress checkpoint: shards scheduled and (below) completed. Both
	// are atomic ticks on the nil-safe Progress — they observe the run,
	// never steer it, so output stays byte-identical with telemetry on.
	ctx.Progress.AddShards(n)
	if n <= 1 || ctx.sem == nil {
		for i := 0; i < n; i++ {
			if err := ctx.canceled(); err != nil {
				ctx.abort(err)
				return
			}
			fn(i)
			ctx.Progress.ShardDone()
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var stop atomic.Bool
	var firstPanic struct {
		mu  sync.Mutex
		val any
		set bool
	}
	work := func() {
		defer func() {
			if r := recover(); r != nil {
				stop.Store(true)
				firstPanic.mu.Lock()
				if !firstPanic.set {
					firstPanic.val, firstPanic.set = r, true
				}
				firstPanic.mu.Unlock()
			}
		}()
		for {
			if stop.Load() || ctx.canceled() != nil {
				return
			}
			i := int(next.Add(1))
			if i >= n {
				return
			}
			fn(i)
			ctx.Progress.ShardDone()
		}
	}
	var wg sync.WaitGroup
recruit:
	for helpers := 0; helpers < n-1; helpers++ {
		select {
		case ctx.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-ctx.sem }()
				work()
			}()
		default:
			break recruit
		}
	}
	work()
	wg.Wait()
	firstPanic.mu.Lock()
	r, set := firstPanic.val, firstPanic.set
	firstPanic.mu.Unlock()
	if set {
		panic(r)
	}
	if err := ctx.canceled(); err != nil {
		ctx.abort(err)
	}
}

// defaultBatchWidth is the lockstep fleet width when the context leaves
// BatchWidth at zero. Eight machines per fleet keeps an arena's recycled
// hierarchies hot without ballooning resident memory.
const defaultBatchWidth = 8

// batchWidth resolves the effective fleet width.
func (ctx *Context) batchWidth() int {
	switch {
	case ctx.BatchWidth == 0:
		return defaultBatchWidth
	case ctx.BatchWidth < 1:
		return 1
	default:
		return ctx.BatchWidth
	}
}

// BatchTrials runs body(0), ..., body(n-1), where each body builds its
// machines through the MachineSource it is handed. Eligible runs go through
// the batched lockstep kernel (sim.RunBatch): trials are striped across up
// to ctx.workers() worker groups, and each group steps its trials as one
// fleet over a recycled construction arena. Trial output is byte-identical
// to the scalar path for every Jobs value and batch width — bodies must
// only write per-index state and derive randomness from per-trial seeds,
// exactly as Parallel already requires.
//
// Two situations force the scalar kernel: traced runs (every machine needs
// its own fresh hierarchy so trace streams see pristine construction
// events, and trace buffers dwarf the construction cost anyway) and
// cancellable runs (the daemon's per-job deadlines need the between-shard
// cancellation checkpoints Parallel provides; a lockstep fleet only stops
// at quantum boundaries).
func (ctx *Context) BatchTrials(n int, body func(i int, src sim.MachineSource)) {
	width := ctx.batchWidth()
	if n <= 1 || width <= 1 || ctx.Trace != nil || ctx.Ctx != nil {
		ctx.Parallel(n, func(i int) { body(i, sim.Scalar()) })
		return
	}
	groups := ctx.workers()
	if g := (n + width - 1) / width; g < groups {
		groups = g
	}
	runFleet := func(g int) {
		count := (n - g + groups - 1) / groups // trials g, g+groups, ...
		ar := sim.AcquireArena()
		defer sim.ReleaseArena(ar)
		sim.RunBatch(count, width, ar, func(j int, src sim.MachineSource) {
			body(g+j*groups, src)
			ctx.Progress.ShardDone()
		})
	}
	ctx.Progress.AddShards(n)
	if groups <= 1 {
		runFleet(0)
		return
	}
	// Fan the fleets out through the engine's worker tokens directly
	// (not via Parallel, whose shard accounting is per-call — progress
	// here ticks once per trial, added above). Each fleet is one coarse
	// unit of work; when no token is free the fleet runs on the calling
	// goroutine, so this can never deadlock.
	var wg sync.WaitGroup
	var firstPanic struct {
		mu  sync.Mutex
		val any
		set bool
	}
	run := func(g int) {
		defer func() {
			if r := recover(); r != nil {
				firstPanic.mu.Lock()
				if !firstPanic.set {
					firstPanic.val, firstPanic.set = r, true
				}
				firstPanic.mu.Unlock()
			}
		}()
		runFleet(g)
	}
	for g := 1; g < groups; g++ {
		g := g
		select {
		case ctx.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-ctx.sem }()
				run(g)
			}()
		default:
			run(g)
		}
	}
	run(0)
	wg.Wait()
	if firstPanic.set {
		panic(firstPanic.val)
	}
}

// abort unwinds a cancelled task. Under the engine (guarded contexts) it
// panics with taskAbort, which runGuarded turns into the context error;
// on a hand-built context it is a no-op so the panic can never reach
// library callers, and Parallel just returns early instead.
func (ctx *Context) abort(err error) {
	if ctx.guarded {
		panic(taskAbort{err})
	}
}

// EachPlatform runs fn once per context platform — concurrently when
// engine workers are free — and returns the first error in platform
// order. Each invocation gets a sub-context scoped to that single
// platform, with a platform-derived seed and a private output buffer;
// buffers are flushed to ctx.Out in platform order, so the rendered
// report is identical to a serial loop's.
func (ctx *Context) EachPlatform(fn func(sub *Context, cfg hier.Config) error) error {
	n := len(ctx.Platforms)
	bufs := make([]bytes.Buffer, n)
	errs := make([]error, n)
	ctx.Parallel(n, func(i int) {
		cfg := ctx.Platforms[i]
		sub := ctx.child(ctx.SeedFor("platform/"+shortName(cfg)), &bufs[i], "platform/"+shortName(cfg))
		sub.Platforms = []hier.Config{cfg}
		errs[i] = fn(sub, cfg)
	})
	// On an unguarded context a cancelled Parallel returns early instead
	// of unwinding; surface the context error rather than partial output.
	if err := ctx.canceled(); err != nil {
		return err
	}
	for i := range bufs {
		if ctx.Out != nil {
			ctx.mu.Lock()
			ctx.Out.Write(bufs[i].Bytes())
			ctx.mu.Unlock()
		}
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// MetricsMap flattens RunAll's results into the plain map the -json
// export and the golden-metrics tests share.
func MetricsMap(results map[string]*Result) map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(results))
	for id, r := range results {
		m := map[string]float64{}
		if r != nil {
			for k, v := range r.Metrics {
				m[k] = v
			}
		}
		out[id] = m
	}
	return out
}

// WriteMetricsJSON renders results as canonical JSON (keys sorted,
// indented, full float precision) so CI can diff metric exports across
// runs byte-for-byte.
func WriteMetricsJSON(w io.Writer, results map[string]*Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(MetricsMap(results))
}

// sortedKeys is a small helper for deterministic iteration in tests.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
