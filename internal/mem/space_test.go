package mem

import "testing"

func TestAllocAndTranslate(t *testing.T) {
	pm := NewPhysMem(1<<20, 1)
	as := NewAddressSpace(pm)
	base, err := as.Alloc(3 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if base.PageOffset() != 0 {
		t.Fatalf("base %#x not page aligned", uint64(base))
	}
	// Offsets survive translation.
	for _, off := range []uint64{0, 1, 63, 64, PageSize - 1, PageSize, 2*PageSize + 123} {
		pa, err := as.Translate(base + VAddr(off))
		if err != nil {
			t.Fatalf("Translate(+%d): %v", off, err)
		}
		if pa.PageOffset() != (uint64(base)+off)%PageSize {
			t.Errorf("offset mismatch at +%d: got %#x", off, pa.PageOffset())
		}
	}
	// Unmapped access faults.
	if _, err := as.Translate(base + VAddr(3*PageSize)); err == nil {
		t.Fatal("expected page fault past the region")
	}
	if _, err := as.Translate(0); err == nil {
		t.Fatal("expected page fault at null page")
	}
}

func TestDistinctSpacesDistinctFrames(t *testing.T) {
	pm := NewPhysMem(1<<20, 1)
	a := NewAddressSpace(pm)
	b := NewAddressSpace(pm)
	va, _ := a.Alloc(PageSize)
	vb, _ := b.Alloc(PageSize)
	pa := a.MustTranslate(va)
	pb := b.MustTranslate(vb)
	if pa.Frame() == pb.Frame() {
		t.Fatalf("two private allocations share frame %d", pa.Frame())
	}
}

func TestMapShared(t *testing.T) {
	pm := NewPhysMem(1<<20, 1)
	victim := NewAddressSpace(pm)
	attacker := NewAddressSpace(pm)
	base, _ := victim.Alloc(2 * PageSize)
	if err := attacker.MapShared(victim, base, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 2*PageSize; off += PageSize / 2 {
		pv := victim.MustTranslate(base + VAddr(off))
		pa := attacker.MustTranslate(base + VAddr(off))
		if pv != pa {
			t.Fatalf("shared mapping diverges at +%d: %#x vs %#x", off, uint64(pv), uint64(pa))
		}
	}
	// Double-mapping the same range must fail.
	if err := attacker.MapShared(victim, base, PageSize); err == nil {
		t.Fatal("expected error on overlapping MapShared")
	}
	// Sharing an unmapped source must fail.
	if err := attacker.MapShared(victim, base+VAddr(16*PageSize), PageSize); err == nil {
		t.Fatal("expected error for unmapped source")
	}
}

func TestAllocContiguousSpace(t *testing.T) {
	pm := NewPhysMem(1<<20, 1)
	as := NewAddressSpace(pm)
	base, err := as.AllocContiguous(4 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	first := as.MustTranslate(base)
	for i := uint64(1); i < 4; i++ {
		pa := as.MustTranslate(base + VAddr(i*PageSize))
		if pa.Frame() != first.Frame()+i {
			t.Fatalf("page %d frame %d, want %d", i, pa.Frame(), first.Frame()+i)
		}
	}
}

func TestAllocAtAndTranslationLevels(t *testing.T) {
	pm := NewPhysMem(1<<22, 1)
	as := NewAddressSpace(pm)
	base := VAddr(0x7f00_0000_0000)
	if err := as.AllocAt(base, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := as.AllocAt(base, PageSize); err == nil {
		t.Fatal("double AllocAt accepted")
	}
	if err := as.AllocAt(base+1, PageSize); err == nil {
		t.Fatal("unaligned AllocAt accepted")
	}
	// Mapped page: full depth.
	if got := as.TranslationLevels(base); got != PageLevels {
		t.Fatalf("mapped page depth = %d, want %d", got, PageLevels)
	}
	// Same 2 MiB region (level 3 shared), unmapped page: depth 3.
	if got := as.TranslationLevels(base + 8*PageSize); got != 3 {
		t.Fatalf("same-L2-entry depth = %d, want 3", got)
	}
	// Same 1 GiB region: depth 2.
	if got := as.TranslationLevels(base + (4 << 20)); got != 2 {
		t.Fatalf("same-1G depth = %d, want 2", got)
	}
	// Far away: depth 0.
	if got := as.TranslationLevels(0xffff_0000_0000_0000); got != 0 {
		t.Fatalf("far address depth = %d, want 0", got)
	}
}
