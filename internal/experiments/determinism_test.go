package experiments

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// TestRunAllJobsMatrix is the engine's core contract: the full suite,
// run with 1, 2 and 8 workers from the same seed, must produce identical
// metrics AND a byte-identical rendered report. Any scheduling leak —
// a shared RNG, an unordered buffer flush, a racy metric write — shows
// up here.
func TestRunAllJobsMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite matrix is not short")
	}
	type outcome struct {
		metrics map[string]map[string]float64
		report  string
	}
	runWith := func(jobs int) outcome {
		var buf bytes.Buffer
		ctx := NewContext(&buf)
		ctx.Quick = true
		ctx.Seed = 42
		ctx.Jobs = jobs
		results, err := RunAll(ctx)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return outcome{metrics: MetricsMap(results), report: buf.String()}
	}
	ref := runWith(1)
	if len(ref.metrics) == 0 || ref.report == "" {
		t.Fatal("reference run produced nothing")
	}
	for _, jobs := range []int{2, 8} {
		got := runWith(jobs)
		if !reflect.DeepEqual(ref.metrics, got.metrics) {
			for id, rm := range ref.metrics {
				for k, v := range rm {
					if gv := got.metrics[id][k]; gv != v {
						t.Errorf("jobs=%d: %s/%s = %v, want %v", jobs, id, k, gv, v)
					}
				}
			}
			t.Fatalf("jobs=%d: metrics diverge from jobs=1", jobs)
		}
		if got.report != ref.report {
			a, b := ref.report, got.report
			i := 0
			for i < len(a) && i < len(b) && a[i] == b[i] {
				i++
			}
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("jobs=%d: report is not byte-identical to jobs=1; first divergence at byte %d:\njobs=1: %q\njobs=%d: %q",
				jobs, i, a[lo:min(i+80, len(a))], jobs, b[lo:min(i+80, len(b))])
		}
	}
}

// TestBatchWidthMatrix is the batch kernel's contract: every experiment
// that routes trials through BatchTrials must produce identical metrics
// and a byte-identical report for any fleet width and any worker count —
// the scalar kernel (width 1) is the reference. A divergence means the
// lockstep scheduler or the arena recycling leaked into simulation state.
func TestBatchWidthMatrix(t *testing.T) {
	batched := []string{"fig8", "table2", "noise", "faults", "ablate-lanes"}
	type outcome struct {
		metrics map[string]map[string]float64
		report  string
	}
	runWith := func(width, jobs int) outcome {
		var buf bytes.Buffer
		ctx := NewContext(&buf)
		ctx.Quick = true
		ctx.Seed = 42
		ctx.Jobs = jobs
		ctx.BatchWidth = width
		out := outcome{metrics: map[string]map[string]float64{}}
		for _, id := range batched {
			r, err := RunOne(ctx, id)
			if err != nil {
				t.Fatalf("width=%d jobs=%d %s: %v", width, jobs, id, err)
			}
			out.metrics[id] = r.Metrics
		}
		out.report = buf.String()
		return out
	}
	ref := runWith(1, 1)
	if len(ref.report) == 0 {
		t.Fatal("scalar reference run produced no report")
	}
	for _, width := range []int{3, 8} {
		for _, jobs := range []int{1, 4} {
			got := runWith(width, jobs)
			if !reflect.DeepEqual(got.metrics, ref.metrics) {
				t.Fatalf("width=%d jobs=%d: metrics diverge from scalar kernel", width, jobs)
			}
			if got.report != ref.report {
				i := 0
				for i < len(ref.report) && i < len(got.report) && ref.report[i] == got.report[i] {
					i++
				}
				t.Fatalf("width=%d jobs=%d: report not byte-identical to scalar; first divergence at byte %d: %q",
					width, jobs, i, got.report[max(0, i-60):min(i+60, len(got.report))])
			}
		}
	}
}

// TestExperimentsDeterministic re-runs a representative sample of
// experiments with the same seed and asserts every metric is bit-identical —
// the reproducibility contract EXPERIMENTS.md makes.
func TestExperimentsDeterministic(t *testing.T) {
	sample := []string{"fig2", "fig5", "table2", "fnrate", "fig12", "counter", "defense"}
	runOnce := func() map[string]map[string]float64 {
		ctx := NewContext(io.Discard)
		ctx.Quick = true
		ctx.Seed = 1234
		out := map[string]map[string]float64{}
		for _, id := range sample {
			r, err := RunOne(ctx, id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out[id] = r.Metrics
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for id, am := range a {
		bm := b[id]
		if len(am) != len(bm) {
			t.Fatalf("%s: metric sets differ in size", id)
		}
		for k, v := range am {
			if bv, ok := bm[k]; !ok || bv != v {
				t.Errorf("%s/%s: %v vs %v — not deterministic", id, k, v, bv)
			}
		}
	}
}

// TestSeedActuallyMatters guards against accidentally ignoring the seed: a
// different seed must change at least one stochastic metric.
func TestSeedActuallyMatters(t *testing.T) {
	run := func(seed int64) float64 {
		ctx := NewContext(io.Discard)
		ctx.Quick = true
		ctx.Seed = seed
		r, err := RunOne(ctx, "fig5")
		if err != nil {
			t.Fatal(err)
		}
		return r.Metrics["dram_mean"]
	}
	if run(1) == run(99) {
		t.Error("different seeds produced identical DRAM-tier jitter; seeding is broken")
	}
}
