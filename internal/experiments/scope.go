package experiments

import (
	"fmt"

	"leakyway/internal/attack"
	"leakyway/internal/hier"
	"leakyway/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Figure 11 — preparation-step latency: Prime+Scope vs Prime+Prefetch+Scope",
		Paper: "mean preparation 1906/1762 cycles (SKL/KBL) for Prime+Scope vs 1043/1138 with PREFETCHNTA; 192 vs 33 references",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fnrate",
		Title: "Section V-A3 — false negatives against a victim accessing every 1.5K cycles",
		Paper: "≈50% of events missed by Prime+Scope; <2% by Prime+Prefetch+Scope",
		Run:   runFNRate,
	})
}

func runFig11(ctx *Context) (*Result, error) {
	res := &Result{}
	iters := ctx.Trials(2000)
	err := ctx.EachPlatform(func(sub *Context, cfg hier.Config) error {
		var ps, pps attack.ScopeResult
		sub.Parallel(2, func(i int) {
			switch i {
			case 0:
				ps = attack.RunScope(cfg, attack.PrimeScope, attack.ScopeConfig{Iterations: iters}, sub.SeedFor("primescope"))
			case 1:
				pps = attack.RunScope(cfg, attack.PrimePrefetchScope, attack.ScopeConfig{Iterations: iters}, sub.SeedFor("prefetchscope"))
			}
		})
		sub.Printf("\n%s\n", cfg.Name)
		rows := [][]string{}
		for _, r := range []attack.ScopeResult{ps, pps} {
			s := stats.Summarize(r.PrepLatencies)
			rows = append(rows, []string{
				r.Variant.String(),
				fmt.Sprintf("%d", r.PrepRefs),
				fmt.Sprintf("%.0f", s.Mean),
				fmt.Sprintf("%d", s.Median),
				fmt.Sprintf("%d", s.P95),
			})
		}
		renderTable(sub, []string{"variant", "cache refs", "prep mean (cyc)", "p50", "p95"}, rows)

		cdfPS := stats.NewCDF(ps.PrepLatencies)
		cdfPPS := stats.NewCDF(pps.PrepLatencies)
		lo, hi := cdfPPS.Quantile(0.02), cdfPS.Quantile(0.999)
		sub.Printf("%s", cdfPS.Render("  CDF Prime+Scope", lo, hi, 56))
		sub.Printf("%s", cdfPPS.Render("  CDF Prime+Prefetch+Scope", lo, hi, 56))

		mps, mpps := stats.Mean(ps.PrepLatencies), stats.Mean(pps.PrepLatencies)
		sub.Printf("speedup: %.2fx (paper: %.2fx)\n", mps/mpps, paperPrepRatio(cfg.Name))
		res.Metric(shortName(cfg)+"/primescope_prep_mean", mps)
		res.Metric(shortName(cfg)+"/prefetchscope_prep_mean", mpps)
		res.Metric(shortName(cfg)+"/prep_speedup", mps/mpps)
		return nil
	})
	return res, err
}

func paperPrepRatio(name string) float64 {
	if name == "Kaby Lake (i7-7700K)" {
		return 1762.0 / 1138.0
	}
	return 1906.0 / 1043.0
}

func runFNRate(ctx *Context) (*Result, error) {
	res := &Result{}
	iters := ctx.Trials(1500)
	rows := [][]string{}
	// The paper runs this experiment on its Skylake machine only; at a
	// 1.5K-cycle victim period the Kaby Lake clock leaves a much tighter
	// real-time window, which degrades both variants.
	cfg := ctx.Platforms[0]
	variants := []attack.ScopeVariant{attack.PrimeScope, attack.PrimePrefetchScope}
	main := make([]attack.ScopeResult, len(variants))
	ctx.Parallel(len(variants), func(i int) {
		key := scopeKey(variants[i])
		main[i] = attack.RunScope(cfg, variants[i],
			attack.ScopeConfig{Iterations: iters, VictimPeriod: 1500}, ctx.SeedFor(key))
	})
	for i, v := range variants {
		r := main[i]
		rows = append(rows, []string{
			cfg.Name,
			v.String(),
			fmt.Sprintf("%d", len(r.VictimAccesses)),
			fmt.Sprintf("%d", len(r.Detections)),
			fmt.Sprintf("%.1f%%", 100*r.FalseNegativeRate),
		})
		res.Metric(shortName(cfg)+"/"+scopeKey(v)+"_fn_rate", r.FalseNegativeRate)
	}
	renderTable(ctx, []string{"platform", "variant", "victim events", "detections", "false negatives"}, rows)
	ctx.Printf("paper: ≈50%% for Prime+Scope, <2%% for Prime+Prefetch+Scope; the direction and gap reproduce\n")
	ctx.Printf("(our literal tree-PLRU L1 pins the scope line less reliably than real Skylake, so Prime+Scope misses more)\n")

	// Operating envelope: how slow must the victim be before each variant
	// stops missing events? The prefetch variant's shorter preparation
	// moves the knee to much faster victims.
	ctx.Printf("\nfalse negatives vs victim access period:\n")
	sweepIters := ctx.Trials(600)
	periods := []int64{1000, 1500, 2500, 4000, 8000}
	// Flatten the period × variant grid into independent cells; every
	// cell owns its machine and seed, so the sweep shards freely.
	env := make([]attack.ScopeResult, len(periods)*len(variants))
	ctx.Parallel(len(env), func(i int) {
		period := periods[i/len(variants)]
		v := variants[i%len(variants)]
		env[i] = attack.RunScope(cfg, v,
			attack.ScopeConfig{Iterations: sweepIters, VictimPeriod: period},
			ctx.SeedFor("envelope", fmt.Sprint(period), scopeKey(v)))
	})
	envRows := [][]string{}
	for pi, period := range periods {
		ps, pps := env[pi*len(variants)], env[pi*len(variants)+1]
		envRows = append(envRows, []string{
			fmt.Sprintf("%d cycles", period),
			fmt.Sprintf("%.1f%%", 100*ps.FalseNegativeRate),
			fmt.Sprintf("%.1f%%", 100*pps.FalseNegativeRate),
		})
		res.Metric(fmt.Sprintf("envelope%d_primescope_fn", period), ps.FalseNegativeRate)
		res.Metric(fmt.Sprintf("envelope%d_prefetchscope_fn", period), pps.FalseNegativeRate)
	}
	renderTable(ctx, []string{"victim period", "Prime+Scope FN", "Prime+Prefetch+Scope FN"}, envRows)
	return res, nil
}

// scopeKey names a scope variant in metric and seed keys.
func scopeKey(v attack.ScopeVariant) string {
	if v == attack.PrimePrefetchScope {
		return "prefetchscope"
	}
	return "primescope"
}
