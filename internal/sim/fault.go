package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"leakyway/internal/trace"
)

// Scheduling-level fault hooks. The fault-injection framework (package
// fault) models hostile co-tenancy — OS preemption, core migration, clock
// drift, timer-jitter spikes — by scheduling disturbances here before the
// machine runs. Disturbances are keyed by agent name, so they can be
// registered before the target agent is even spawned (channel runners
// spawn their own agents); each is applied exactly once, at the first
// scheduling point at or after its trigger cycle, and reported through
// FaultNotify so injectors can assert their firing counts.

// Fault kinds reported through Machine.FaultNotify.
const (
	FaultPreempt    = "preempt"
	FaultMigrate    = "migrate"
	FaultTimerSpike = "timer-spike"
)

// disturbance is one scheduled fault against one agent.
type disturbance struct {
	at   int64
	dur  int64 // preempt: stall cycles
	core int   // migrate: destination core
	kind string
}

// spikeWindow is a window of degraded timer precision: timed measurements
// taken inside [from, to) gain extra uniform jitter from a private stream.
type spikeWindow struct {
	from, to int64
	extra    int64
	rng      *rand.Rand
	fired    bool
}

// agentFaults is the per-agent disturbance state, staged under the agent's
// name until Spawn attaches it.
type agentFaults struct {
	queue    []disturbance // sorted by trigger cycle
	spikes   []spikeWindow
	driftPPM int64
}

func (m *Machine) faultsFor(name string) *agentFaults {
	if m.faults == nil {
		m.faults = map[string]*agentFaults{}
	}
	f := m.faults[name]
	if f == nil {
		f = &agentFaults{}
		m.faults[name] = f
	}
	return f
}

// SchedulePreempt deschedules the named agent for dur cycles at the first
// scheduling point at or after cycle at — the OS stealing the core.
func (m *Machine) SchedulePreempt(agent string, at, dur int64) {
	if dur <= 0 {
		return
	}
	m.pushDisturbance(agent, disturbance{at: at, dur: dur, kind: FaultPreempt})
}

// ScheduleMigrate moves the named agent to core newCore at the first
// scheduling point at or after cycle at. The agent's subsequent accesses
// go through the new core's (cold) private caches, with a fixed
// rescheduling stall of cost cycles.
func (m *Machine) ScheduleMigrate(agent string, at int64, newCore int, cost int64) {
	if newCore < 0 || newCore >= m.H.Config().Cores {
		panic(fmt.Sprintf("sim: ScheduleMigrate(%q): core %d out of range", agent, newCore))
	}
	if cost < 0 {
		cost = 0
	}
	m.pushDisturbance(agent, disturbance{at: at, dur: cost, core: newCore, kind: FaultMigrate})
}

// ScheduleTimerSpike degrades the named agent's timer for dur cycles
// starting at cycle at: timed measurements inside the window gain uniform
// extra jitter in [0, extra], drawn from a stream private to this window
// (seeded by spikeSeed), so composed scenarios stay order-independent.
func (m *Machine) ScheduleTimerSpike(agent string, at, dur, extra, spikeSeed int64) {
	if dur <= 0 || extra <= 0 {
		return
	}
	f := m.faultsFor(agent)
	f.spikes = append(f.spikes, spikeWindow{
		from: at, to: at + dur, extra: extra,
		rng: rand.New(rand.NewSource(spikeSeed)),
	})
	sort.SliceStable(f.spikes, func(i, j int) bool { return f.spikes[i].from < f.spikes[j].from })
	m.syncAgentFaults(agent)
}

// SetClockDrift skews the named agent's perceived TSC by ppm parts per
// million of elapsed time: Now() and WaitUntil targets run fast (ppm > 0)
// or slow (ppm < 0) relative to the global clock, desynchronizing
// epoch-based protocols exactly as unsynced TSCs do across sockets.
func (m *Machine) SetClockDrift(agent string, ppm int64) {
	m.faultsFor(agent).driftPPM = ppm
	m.syncAgentFaults(agent)
}

func (m *Machine) pushDisturbance(agent string, d disturbance) {
	f := m.faultsFor(agent)
	f.queue = append(f.queue, d)
	sort.SliceStable(f.queue, func(i, j int) bool { return f.queue[i].at < f.queue[j].at })
	m.syncAgentFaults(agent)
}

// syncAgentFaults refreshes an already-spawned agent's view of its staged
// faults (Spawn wires the same pointer for agents spawned later).
func (m *Machine) syncAgentFaults(name string) {
	for _, a := range m.agents {
		if a.Name == name {
			a.faults = m.faults[name]
		}
	}
}

// notifyFault reports a fired disturbance to the registered observer and
// the tracer. detail is the kind-specific scalar (stall cycles, target
// core, extra jitter); dur is the disturbance window length in cycles.
func (m *Machine) notifyFault(agent, kind string, at, detail, dur int64) {
	if m.FaultNotify != nil {
		m.FaultNotify(agent, kind, at, detail, dur)
	}
	if m.tr.On(trace.PkgSim) {
		e := trace.E("sim", "fault:"+kind, at)
		e.Agent, e.Dur, e.Val = agent, dur, detail
		m.tr.Emit(e)
	}
}

// applyFaults consumes every disturbance due at or before the agent's
// current clock. A preemption advances the clock, which can make further
// disturbances due, so it loops to a fixed point.
func (c *Core) applyFaults() {
	f := c.agent.faults
	if f == nil {
		return
	}
	for len(f.queue) > 0 && f.queue[0].at <= c.now {
		d := f.queue[0]
		f.queue = f.queue[1:]
		switch d.kind {
		case FaultPreempt:
			c.now += d.dur
			c.m.notifyFault(c.agent.Name, FaultPreempt, d.at, d.dur, d.dur)
		case FaultMigrate:
			c.ID = d.core
			c.now += d.dur
			if c.m.tr != nil {
				// Re-stamp: subsequent hier events in this turn belong to
				// the destination core.
				c.m.H.SetTraceAgent(c.agent.Name, c.ID)
			}
			c.m.notifyFault(c.agent.Name, FaultMigrate, d.at, int64(d.core), d.dur)
		}
	}
}

// accrueDrift converts elapsed global cycles into perceived-clock skew,
// carrying the sub-cycle remainder so slow drifts still accumulate.
func (c *Core) accrueDrift(elapsed int64) {
	f := c.agent.faults
	if f == nil || f.driftPPM == 0 || elapsed <= 0 {
		return
	}
	c.agent.driftAcc += elapsed * f.driftPPM
	c.agent.skew += c.agent.driftAcc / 1_000_000
	c.agent.driftAcc %= 1_000_000
}

// spikeJitter returns the extra timer jitter for a measurement taken now,
// if a degraded-timer window covers it.
func (c *Core) spikeJitter() int64 {
	f := c.agent.faults
	if f == nil {
		return 0
	}
	for i := range f.spikes {
		w := &f.spikes[i]
		if c.now >= w.from && c.now < w.to {
			if !w.fired {
				w.fired = true
				c.m.notifyFault(c.agent.Name, FaultTimerSpike, w.from, w.extra, w.to-w.from)
			}
			return w.rng.Int63n(w.extra + 1)
		}
	}
	return 0
}
