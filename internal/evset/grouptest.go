package evset

import (
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

// BuildGroupTesting implements the threshold group-testing reduction of
// Vila et al. (the paper's reference [62]): start from a candidate pool
// large enough to evict the target, then repeatedly split it into w+1
// groups and drop any group whose removal still leaves an evicting set.
// On a true-LRU cache this reaches a minimal eviction set; on the quad-age
// policy the threshold test loses precision near w lines (stale set
// contents blur the eviction boundary — a known brittleness of group
// testing on modern Intel parts), so the reduction may stall on a small
// *superset* of the minimal set. The returned set always evicts the target;
// callers needing exactly-congruent lines can feed it to BuildPrefetch as a
// pool after flushing, or use BuildPrefetch directly.
//
// ErrIrreducible is returned only when the stall leaves more than
// 8×Desired lines — the pool was too entangled to be useful.
func BuildGroupTesting(c *sim.Core, target mem.VAddr, opt Options) (Result, error) {
	desired := opt.Desired
	if desired <= 0 {
		return Result{}, errDesired(desired)
	}
	var res Result
	start := c.Now()
	set := append([]mem.VAddr(nil), opt.Pool...)

	// The initial pool must evict the target at all.
	if !evicts(c, target, set, opt, &res) {
		res.Cycles = c.Now() - start
		return res, ErrPoolExhausted
	}

	for len(set) > desired {
		groups := desired + 1
		if groups > len(set) {
			groups = len(set)
		}
		chunk := (len(set) + groups - 1) / groups
		reduced := false
		for g := 0; g < groups && len(set) > desired; g++ {
			lo := g * chunk
			if lo >= len(set) {
				break
			}
			hi := lo + chunk
			if hi > len(set) {
				hi = len(set)
			}
			// Candidate reduction: set without group g. Leftover
			// lines from earlier tests still sit in the target's
			// LLC set and can make a too-small trial *appear* to
			// evict, so a reduction must pass the test twice.
			trial := make([]mem.VAddr, 0, len(set)-(hi-lo))
			trial = append(trial, set[:lo]...)
			trial = append(trial, set[hi:]...)
			if evicts(c, target, trial, opt, &res) && evicts(c, target, trial, opt, &res) {
				set = trial
				reduced = true
				break
			}
		}
		if !reduced {
			// No single group can be removed. On true LRU this
			// means the set is minimal; on the quad-age policy the
			// threshold test loses precision near w lines (stale
			// set contents blur the boundary), so the reduction
			// typically stalls on a small superset.
			break
		}
	}
	res.Cycles = c.Now() - start
	res.Set = set
	if len(set) > 8*desired {
		return res, ErrIrreducible
	}
	return res, nil
}

// evicts tests whether accessing all of lines displaces the target from the
// LLC, by timing a reload. Each test charges its references to res.
func evicts(c *sim.Core, target mem.VAddr, lines []mem.VAddr, opt Options, res *Result) bool {
	c.Load(target)
	res.MemRefs++
	// Three passes, alternating direction: on the quad-age policy a
	// fixed-order walk can chase its own evictions and spare the target;
	// reversing the middle pass breaks that alignment (the same reason
	// the priming patterns vary their order).
	for pass := 0; pass < 3; pass++ {
		if pass == 1 {
			for i := len(lines) - 1; i >= 0; i-- {
				c.Load(lines[i])
				res.MemRefs++
			}
			continue
		}
		for _, va := range lines {
			c.Load(va)
			res.MemRefs++
		}
	}
	t := c.TimedLoad(target)
	res.MemRefs++
	res.Tested += len(lines)
	return opt.Thresholds.IsMiss(t)
}
