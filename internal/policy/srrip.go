package policy

// SRRIP is static re-reference interval prediction (Jaleel et al.), included
// as an alternative-LLC baseline for countermeasure experiments. With M = 2
// bits it is structurally the same machine as QuadAge but inserts at
// "long re-reference" (MaxAge-1) and promotes hits straight to 0.
type SRRIP struct {
	// MaxRRPV is the distant re-reference value; 3 for 2-bit RRIP.
	MaxRRPV int
	// HitPriority, if true, resets a hit line's RRPV to 0 (SRRIP-HP);
	// otherwise hits decrement it (SRRIP-FP).
	HitPriority bool
}

// NewSRRIP returns 2-bit SRRIP-HP, the common configuration.
func NewSRRIP() *SRRIP { return &SRRIP{MaxRRPV: 3, HitPriority: true} }

// Name implements Policy.
func (p *SRRIP) Name() string {
	if p.HitPriority {
		return "srrip-hp"
	}
	return "srrip-fp"
}

// NewSet implements Policy.
func (p *SRRIP) NewSet(ways int) SetState {
	rrpv := make([]int, ways)
	for i := range rrpv {
		rrpv[i] = -1
	}
	return &srripSet{cfg: p, rrpv: rrpv}
}

type srripSet struct {
	cfg  *SRRIP
	rrpv []int
}

// Victim implements SetState with the standard RRIP search-and-age loop.
func (s *srripSet) Victim(evictable Mask) int {
	if evictable&AllWays(len(s.rrpv)) == 0 {
		return -1
	}
	for {
		for way, v := range s.rrpv {
			if v >= s.cfg.MaxRRPV && evictable.Has(way) {
				return way
			}
		}
		aged := false
		for way, v := range s.rrpv {
			if v >= 0 && v < s.cfg.MaxRRPV {
				s.rrpv[way] = v + 1
				aged = true
			}
		}
		if !aged {
			for way := range s.rrpv {
				if evictable.Has(way) {
					return way
				}
			}
		}
	}
}

// OnFill implements SetState: insert with a long re-reference interval.
func (s *srripSet) OnFill(way int, cls AccessClass) {
	v := s.cfg.MaxRRPV - 1
	if cls == ClassNTA {
		v = s.cfg.MaxRRPV // non-temporal data predicted distant
	}
	s.rrpv[way] = v
}

// OnHit implements SetState.
func (s *srripSet) OnHit(way int, _ AccessClass) {
	if s.cfg.HitPriority {
		s.rrpv[way] = 0
	} else if s.rrpv[way] > 0 {
		s.rrpv[way]--
	}
}

// OnInvalidate implements SetState.
func (s *srripSet) OnInvalidate(way int) { s.rrpv[way] = -1 }

// Reset implements SetState.
func (s *srripSet) Reset() {
	for i := range s.rrpv {
		s.rrpv[i] = -1
	}
}

// AgeAt implements SetState: the raw RRPV.
func (s *srripSet) AgeAt(way int) int { return s.rrpv[way] }

// Snapshot implements SetState: raw RRPVs.
func (s *srripSet) Snapshot() []int {
	out := make([]int, len(s.rrpv))
	copy(out, s.rrpv)
	return out
}
