package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]int64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Stdev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stdev = %f", s.Stdev)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatal("empty summary should be zero")
	}
	if Summarize([]int64{7}).String() == "" {
		t.Fatal("String() empty")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []int64{5, 1, 3}
	Summarize(in)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestPercentile(t *testing.T) {
	data := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := map[float64]int64{0: 10, 10: 10, 50: 50, 95: 100, 100: 100}
	for p, want := range cases {
		if got := Percentile(data, p); got != want {
			t.Errorf("P%.0f = %d, want %d", p, got, want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestMeanAndFractionAbove(t *testing.T) {
	if Mean([]int64{2, 4, 6}) != 4 {
		t.Error("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	if got := FractionAbove([]int64{1, 2, 3, 4}, 2); got != 0.5 {
		t.Errorf("FractionAbove = %f", got)
	}
	if FractionAbove(nil, 0) != 0 {
		t.Error("empty FractionAbove should be 0")
	}
}

func TestBinaryEntropy(t *testing.T) {
	if BinaryEntropy(0) != 0 || BinaryEntropy(1) != 0 {
		t.Error("H(0) and H(1) must be 0")
	}
	if math.Abs(BinaryEntropy(0.5)-1) > 1e-12 {
		t.Errorf("H(0.5) = %f", BinaryEntropy(0.5))
	}
	// Symmetry property.
	f := func(p float64) bool {
		p = math.Mod(math.Abs(p), 1)
		return math.Abs(BinaryEntropy(p)-BinaryEntropy(1-p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChannelCapacity(t *testing.T) {
	if got := ChannelCapacity(100, 0); got != 100 {
		t.Errorf("error-free capacity = %f", got)
	}
	if got := ChannelCapacity(100, 0.5); got != 0 {
		t.Errorf("50%%-error capacity = %f, want 0", got)
	}
	if got := ChannelCapacity(100, 0.6); got != 0 {
		t.Errorf("capacity beyond 0.5 error = %f, want 0", got)
	}
	if got := ChannelCapacity(100, -0.1); got != 100 {
		t.Errorf("negative error rate should clamp: %f", got)
	}
	mid := ChannelCapacity(100, 0.1)
	if mid <= 0 || mid >= 100 {
		t.Errorf("capacity at 10%% error = %f, want in (0,100)", mid)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if c.N() != 10 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.At(5); got != 0.5 {
		t.Errorf("At(5) = %f", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %f", got)
	}
	if got := c.At(100); got != 1 {
		t.Errorf("At(100) = %f", got)
	}
	if got := c.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %d", got)
	}
	pts := c.Points(5)
	if len(pts) != 5 || pts[4].P != 1 || pts[4].X != 10 {
		t.Fatalf("Points = %+v", pts)
	}
	if empty := NewCDF(nil); empty.At(1) != 0 || empty.Quantile(0.5) != 0 || len(empty.Points(3)) != 0 {
		t.Error("empty CDF misbehaves")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]int64, len(raw))
		for i, v := range raw {
			samples[i] = int64(v)
		}
		c := NewCDF(samples)
		prev := 0.0
		for x := int64(-40000); x <= 40000; x += 4000 {
			p := c.At(x)
			if p < prev {
				return false
			}
			prev = p
		}
		return prev <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFRender(t *testing.T) {
	c := NewCDF([]int64{100, 200, 300})
	out := c.Render("test", 0, 400, 40)
	if out == "" || len(out) < 20 {
		t.Fatal("render produced nothing")
	}
	// Degenerate range must not panic.
	_ = c.Render("degenerate", 5, 5, 10)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int64{1, 1, 2, 8, 9}, 0, 10, 5)
	if h.Total != 5 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Mode() > 3 {
		t.Fatalf("mode = %d, expected in the first bucket region", h.Mode())
	}
	// Out-of-range samples clamp to edge bins.
	h2 := NewHistogram([]int64{-5, 100}, 0, 10, 2)
	if h2.Counts[0] != 1 || h2.Counts[1] != 1 {
		t.Fatalf("clamping failed: %+v", h2.Counts)
	}
}
