package sim

import (
	"testing"

	"leakyway/internal/mem"
)

// BenchmarkMachineTimedOp measures a timed load through the scheduler —
// the receiver-side primitive every channel sweep issues millions of times.
// With a single agent the batched scheduler never yields, so this is the
// pure per-op cost: translate, hierarchy lookup, timing model.
func BenchmarkMachineTimedOp(b *testing.B) {
	m := newTestMachine(1)
	var sink int64
	m.Spawn("bench", 0, nil, func(c *Core) {
		buf := c.Alloc(mem.PageSize)
		c.Load(buf)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink += c.TimedLoad(buf)
		}
	})
	m.Run()
	if sink == 0 {
		b.Fatal("timed loads reported zero cycles")
	}
}

// BenchmarkMachineTwoAgentHandoff measures the worst case for the batched
// scheduler: two agents in lockstep (equal op costs), forcing a real
// goroutine handoff at almost every operation.
func BenchmarkMachineTwoAgentHandoff(b *testing.B) {
	m := newTestMachine(1)
	mk := func(name string) {
		m.Spawn(name, 0, nil, func(c *Core) {
			for i := 0; i < b.N; i++ {
				c.Spin(10)
			}
		})
	}
	mk("a")
	mk("b")
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
}
