package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"leakyway/internal/scenario"
	"leakyway/internal/telemetry"
)

// doJSON posts body to path on h and returns the recorder.
func doJSON(h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	var buf bytes.Buffer
	if body != nil {
		json.NewEncoder(&buf).Encode(body)
	}
	req := httptest.NewRequest(method, path, &buf)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHandlerSubmitValidation(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Drain()
	h := s.Handler()

	cases := []struct {
		name       string
		body       any
		raw        string
		wantStatus int
		wantSubstr string
	}{
		{
			name:       "empty template",
			body:       Submission{Template: ""},
			wantStatus: 400,
			wantSubstr: "template: must not be empty",
		},
		{
			name:       "malformed yaml",
			body:       Submission{Template: "id: [unclosed"},
			wantStatus: 400,
			wantSubstr: "template.yaml",
		},
		{
			// The strict loader's diagnostic must surface the exact field
			// path so the client can fix the template without guessing.
			name:       "missing required field",
			body:       Submission{Template: "id: x\ntitle: X\nkind: statewalk\n"},
			wantStatus: 400,
			wantSubstr: "statewalk",
		},
		{
			name:       "unknown template field",
			body:       Submission{Template: tmplFor("u") + "bogus: 1\n"},
			wantStatus: 400,
			wantSubstr: "bogus",
		},
		{
			name:       "unknown request field",
			raw:        `{"template": "id: x", "frobnicate": true}`,
			wantStatus: 400,
			wantSubstr: "frobnicate",
		},
		{
			name:       "jobs out of range",
			body:       Submission{Template: tmplFor("jr"), Jobs: 1000},
			wantStatus: 400,
			wantSubstr: "per-run limit",
		},
		{
			name:       "unknown platform",
			body:       Submission{Template: tmplFor("up"), Platform: "alderlake"},
			wantStatus: 400,
			wantSubstr: "platform",
		},
		{
			name:       "not json at all",
			raw:        "seed=42",
			wantStatus: 400,
			wantSubstr: "request body",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var w *httptest.ResponseRecorder
			if tc.raw != "" {
				req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(tc.raw))
				w = httptest.NewRecorder()
				h.ServeHTTP(w, req)
			} else {
				w = doJSON(h, "POST", "/v1/jobs", tc.body)
			}
			if w.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", w.Code, tc.wantStatus, w.Body.String())
			}
			if !strings.Contains(w.Body.String(), tc.wantSubstr) {
				t.Fatalf("body %q missing %q", w.Body.String(), tc.wantSubstr)
			}
		})
	}
}

func TestHandlerSubmitLifecycleAndCacheHeaders(t *testing.T) {
	s := newTestServer(t, nil)
	defer s.Drain()
	h := s.Handler()

	sub := Submission{Template: tmplFor("life"), Seed: 11}
	w := doJSON(h, "POST", "/v1/jobs", sub)
	if w.Code != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202 (body %s)", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first submit X-Cache %q, want miss", got)
	}
	var v jobView
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.Key == "" {
		t.Fatalf("submit response missing id/key: %+v", v)
	}

	// Poll to done via the API.
	deadline := time.Now().Add(10 * time.Second)
	for {
		w = doJSON(h, "GET", "/v1/jobs/"+v.ID, nil)
		if w.Code != 200 {
			t.Fatalf("get job: %d (%s)", w.Code, w.Body.String())
		}
		json.Unmarshal(w.Body.Bytes(), &v)
		if v.Status == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %q", v.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if len(v.Artifacts) == 0 {
		t.Fatalf("done job lists no artifacts")
	}

	// Artifacts are served with the right content type.
	w = doJSON(h, "GET", "/v1/jobs/"+v.ID+"/artifacts/metrics", nil)
	if w.Code != 200 {
		t.Fatalf("metrics artifact: %d (%s)", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("metrics content type %q", ct)
	}
	w = doJSON(h, "GET", "/v1/jobs/"+v.ID+"/artifacts/report", nil)
	if w.Code != 200 || !strings.Contains(w.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("report artifact: %d %q", w.Code, w.Header().Get("Content-Type"))
	}
	// No trace was requested, so the trace artifact does not exist.
	w = doJSON(h, "GET", "/v1/jobs/"+v.ID+"/artifacts/trace", nil)
	if w.Code != 404 {
		t.Fatalf("absent trace artifact: %d, want 404", w.Code)
	}
	w = doJSON(h, "GET", "/v1/jobs/"+v.ID+"/artifacts/nonsense", nil)
	if w.Code != 404 {
		t.Fatalf("unknown artifact name: %d, want 404", w.Code)
	}

	// Identical resubmission: 200 + X-Cache: hit, no re-simulation.
	w = doJSON(h, "POST", "/v1/jobs", sub)
	if w.Code != http.StatusOK {
		t.Fatalf("resubmit: status %d, want 200", w.Code)
	}
	if got := w.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("resubmit X-Cache %q, want hit", got)
	}

	w = doJSON(h, "GET", "/v1/jobs/nope", nil)
	if w.Code != 404 {
		t.Fatalf("unknown job: %d, want 404", w.Code)
	}
}

func TestHandlerCoalescedHeader(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s := newTestServer(t, func(c *Config) {
		c.Runner = func(ctx context.Context, sub Submission, spec *scenario.Spec, _ *telemetry.Progress) (*Result, error) {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &Result{Report: []byte("r"), Metrics: []byte("{}\n")}, nil
		}
	})
	defer func() {
		close(release)
		s.Drain()
	}()
	h := s.Handler()

	sub := Submission{Template: tmplFor("co"), Seed: 1}
	if w := doJSON(h, "POST", "/v1/jobs", sub); w.Code != 202 {
		t.Fatalf("submit: %d", w.Code)
	}
	<-started
	w := doJSON(h, "POST", "/v1/jobs", sub)
	if w.Code != 202 {
		t.Fatalf("duplicate submit: %d", w.Code)
	}
	if got := w.Header().Get("X-Cache"); got != "coalesced" {
		t.Fatalf("duplicate X-Cache %q, want coalesced", got)
	}
}

func TestHandlerBackpressure429(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueCap = 1
		c.Runner = func(ctx context.Context, sub Submission, spec *scenario.Spec, _ *telemetry.Progress) (*Result, error) {
			started <- struct{}{}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &Result{Report: []byte("r"), Metrics: []byte("{}\n")}, nil
		}
	})
	defer func() {
		close(release)
		s.Drain()
	}()
	h := s.Handler()

	if w := doJSON(h, "POST", "/v1/jobs", Submission{Template: tmplFor("q0"), Seed: 1}); w.Code != 202 {
		t.Fatalf("submit 0: %d", w.Code)
	}
	<-started
	if w := doJSON(h, "POST", "/v1/jobs", Submission{Template: tmplFor("q1"), Seed: 1}); w.Code != 202 {
		t.Fatalf("submit 1: %d", w.Code)
	}
	w := doJSON(h, "POST", "/v1/jobs", Submission{Template: tmplFor("q2"), Seed: 1})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429 (body %s)", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After header")
	}
}

func TestHandlerHealthzAndStatsz(t *testing.T) {
	s := newTestServer(t, nil)
	h := s.Handler()

	w := doJSON(h, "GET", "/v1/healthz", nil)
	if w.Code != 200 || !strings.Contains(w.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %s", w.Code, w.Body.String())
	}

	j, err := s.Submit(Submission{Template: tmplFor("st"), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, s, j.ID, StatusDone)

	w = doJSON(h, "GET", "/v1/statsz", nil)
	if w.Code != 200 {
		t.Fatalf("statsz: %d", w.Code)
	}
	var stats map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"accepted", "completed", "cache_hits", "queued", "workers", "jobs"} {
		if _, ok := stats[key]; !ok {
			t.Fatalf("statsz missing %q: %s", key, w.Body.String())
		}
	}

	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	w = doJSON(h, "GET", "/v1/healthz", nil)
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "draining") {
		t.Fatalf("draining healthz: %d %s", w.Code, w.Body.String())
	}
	// Submissions during drain are refused with 503.
	w = doJSON(h, "POST", "/v1/jobs", Submission{Template: tmplFor("late"), Seed: 1})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", w.Code)
	}
}

func TestHandlerCancel(t *testing.T) {
	started := make(chan struct{}, 1)
	s := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Runner = func(ctx context.Context, sub Submission, spec *scenario.Spec, _ *telemetry.Progress) (*Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
	})
	defer s.Drain()
	h := s.Handler()

	w := doJSON(h, "POST", "/v1/jobs", Submission{Template: tmplFor("hc"), Seed: 1})
	var v jobView
	json.Unmarshal(w.Body.Bytes(), &v)
	<-started

	w = doJSON(h, "DELETE", "/v1/jobs/"+v.ID, nil)
	if w.Code != 200 {
		t.Fatalf("cancel: %d (%s)", w.Code, w.Body.String())
	}
	json.Unmarshal(w.Body.Bytes(), &v)
	if v.Status != StatusCanceled {
		t.Fatalf("status %q after cancel", v.Status)
	}
	if w := doJSON(h, "DELETE", "/v1/jobs/nope", nil); w.Code != 404 {
		t.Fatalf("cancel unknown: %d", w.Code)
	}
}

// TestLoadDedup floods the server with concurrent duplicate submissions
// and checks that single-flight plus the store collapse them to one
// simulation per distinct key, with every accepted job reaching done.
func TestLoadDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("load test skipped with -short")
	}
	const (
		distinct = 20
		total    = 1000
	)
	var calls int64
	var cmu sync.Mutex
	s := newTestServer(t, func(c *Config) {
		c.Workers = 4
		c.QueueCap = total
		c.Runner = func(ctx context.Context, sub Submission, spec *scenario.Spec, _ *telemetry.Progress) (*Result, error) {
			cmu.Lock()
			calls++
			cmu.Unlock()
			select {
			case <-time.After(time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &Result{
				Report:  []byte("r " + spec.ID),
				Metrics: []byte(fmt.Sprintf("{\"%s\": 1}\n", spec.ID)),
			}, nil
		}
	})

	ids := make([]string, total)
	errs := make([]error, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := Submission{Template: tmplFor(fmt.Sprintf("ld%d", i%distinct)), Seed: 1}
			j, err := s.Submit(sub)
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = j.ID
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d rejected: %v", i, err)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}

	for i, id := range ids {
		snap, ok := s.snapshotJob(id)
		if !ok {
			t.Fatalf("job %s (submission %d) lost", id, i)
		}
		if snap.Status != StatusDone {
			t.Fatalf("job %s is %q (err %q), want done", id, snap.Status, snap.Error)
		}
	}

	cmu.Lock()
	ran := calls
	cmu.Unlock()
	// ≥98% of submissions must be deduplicated (coalesced or cache hits).
	if dedup := total - ran; dedup < total*98/100 {
		t.Fatalf("only %d/%d submissions deduplicated (%d simulations for %d keys)",
			dedup, total, ran, distinct)
	}
	if ran < distinct {
		t.Fatalf("%d simulations for %d distinct keys; some keys never ran", ran, distinct)
	}
}
