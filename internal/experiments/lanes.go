package experiments

import (
	"fmt"

	"leakyway/internal/channel"
	"leakyway/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "ablate-lanes",
		Title: "Extension — multi-lane NTP+NTP bandwidth scaling",
		Paper: "the paper uses one two-set lane; extra lanes multiply bits per iteration until receiver probing saturates the interval",
		Run:   runAblateLanes,
	})
}

func runAblateLanes(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	bits := ctx.Trials(2000)
	rows := [][]string{}
	for _, lanes := range []int{1, 2, 4, 8} {
		base := channel.DefaultConfig(cfg.Name, cfg.FreqGHz)
		base.NoisePeriod = 0
		// Each extra lane adds one timed prefetch (~300 cycles worst
		// case) of receiver work per iteration; sweep a few intervals
		// around the expected knee and keep the best.
		best := channel.Report{}
		for _, iv := range []int64{
			base.ProtocolOverhead + int64(lanes)*330 + 120,
			base.ProtocolOverhead + int64(lanes)*330 + 400,
			base.ProtocolOverhead + int64(lanes)*330 + 900,
		} {
			c := base
			c.Interval = iv
			m := sim.MustNewMachine(cfg, 1<<30, ctx.Seed)
			rep, _ := channel.RunNTPNTPLanes(m, c, lanes, channel.RandomMessage(bits, ctx.Seed))
			if rep.CapacityKBps > best.CapacityKBps {
				best = rep
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", lanes),
			fmt.Sprintf("%d", 2*lanes),
			fmt.Sprintf("%d", best.Interval),
			fmt.Sprintf("%.2f%%", 100*best.BER),
			fmt.Sprintf("%.1f KB/s", best.CapacityKBps),
		})
		res.Metric(fmt.Sprintf("lanes%d_capacity", lanes), best.CapacityKBps)
	}
	renderTable(ctx, []string{"lanes", "LLC sets", "best interval (cyc)", "BER", "capacity"}, rows)
	ctx.Printf("aggregate capacity grows sublinearly: the fixed per-iteration protocol cost amortizes\n")
	ctx.Printf("while per-lane probe work accumulates\n")
	return res, nil
}
