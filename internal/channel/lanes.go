package channel

import (
	"fmt"

	"leakyway/internal/core"
	"leakyway/internal/sim"
)

// RunNTPNTPLanes is the multi-lane extension of the NTP+NTP channel: L
// independent two-set pipelines (2L target sets in total) each carry one bit
// per iteration, so L bits move per interval. The paper stops at one lane
// (two sets); extra lanes trade per-iteration work for aggregate bandwidth
// until the receiver's probing saturates the interval.
func RunNTPNTPLanes(m *sim.Machine, cfg Config, lanes int, msg []bool) (Report, []bool) {
	mustValidRun(cfg, false, msg)
	if lanes <= 0 {
		lanes = 1
	}
	sets := 2 * lanes
	ep, err := Setup(m, sets, 0)
	if err != nil {
		panic(err)
	}
	interval := cfg.Interval
	n := len(msg)
	received := make([]bool, n)
	var th core.Thresholds

	// Lane l uses sets 2l and 2l+1, alternating per iteration; bit index
	// = iteration*lanes + lane.
	setFor := func(i, lane int) int { return 2*lane + i%2 }

	m.Spawn("sender", 0, ep.SenderAS, func(c *sim.Core) {
		iters := (n + lanes - 1) / lanes
		for i := 0; i < iters; i++ {
			c.WaitUntil(cfg.Start + int64(i)*interval + cfg.SenderOffset)
			for l := 0; l < lanes; l++ {
				bit := i*lanes + l
				if bit < n && msg[bit] {
					c.PrefetchNTA(ep.DS[setFor(i, l)])
				}
			}
			c.Spin(cfg.ProtocolOverhead)
		}
	})

	m.Spawn("receiver", 1, ep.ReceiverAS, func(c *sim.Core) {
		th = core.Calibrate(c, 48)
		for s := 0; s < sets; s++ {
			for _, va := range ep.Filler[s] {
				c.Load(va)
			}
		}
		for _, dr := range ep.DR {
			c.PrefetchNTA(dr)
		}
		iters := (n + lanes - 1) / lanes
		for i := 0; i < iters; i++ {
			// Read iteration i's bits one iteration later (Figure 7).
			c.WaitUntil(cfg.Start + int64(i+1)*interval + cfg.ReceiverOffset)
			for l := 0; l < lanes; l++ {
				bit := i*lanes + l
				if bit >= n {
					break
				}
				t := c.TimedPrefetchNTA(ep.DR[setFor(i, l)])
				received[bit] = th.IsMiss(t)
			}
			c.Spin(cfg.ProtocolOverhead)
		}
	})

	spawnNoise(m, cfg, ep, 2)
	m.Run()

	rep := Report{
		Channel:  fmt.Sprintf("NTP+NTP x%d", lanes),
		Platform: m.H.Config().Name,
		Bits:     n,
		Interval: interval,
	}
	for i := range msg {
		if received[i] != msg[i] {
			rep.Errors++
		}
	}
	finishReport(&rep, m.H.Config().FreqGHz, float64(lanes))
	return rep, received
}
