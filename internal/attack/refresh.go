package attack

import (
	"leakyway/internal/core"
	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

// RefreshVariant selects the replacement-state attack of Section V-B.
type RefreshVariant int

const (
	// ReloadRefresh is the original attack (Figure 9): demand loads fill
	// the set at age 2, and reverting the state costs 2 flushes, 2 DRAM
	// accesses and w-2 serialized LLC accesses per iteration.
	ReloadRefresh RefreshVariant = iota
	// PrefetchRefreshV1 (Figure 10) fills the set with PREFETCHNTA at
	// age 3: no aging pass ever fires, so the w-2 refresh accesses
	// disappear (2 flushes, 2 DRAM accesses).
	PrefetchRefreshV1
	// PrefetchRefreshV2 additionally swaps the roles of the two conflict
	// lines instead of restoring them (1 flush, 1 DRAM access).
	PrefetchRefreshV2
)

// String implements fmt.Stringer.
func (v RefreshVariant) String() string {
	switch v {
	case ReloadRefresh:
		return "Reload+Refresh"
	case PrefetchRefreshV1:
		return "Prefetch+Refresh v1"
	}
	return "Prefetch+Refresh v2"
}

// RevertOps counts the state-revert operations of one accessed-case
// iteration (Table III).
type RevertOps struct {
	Flushes      int
	DRAMAccesses int
	LLCAccesses  int
}

// RefreshConfig parameterizes a run.
type RefreshConfig struct {
	// Iterations is the number of monitored windows.
	Iterations int
	// Window is the cycle length of one monitoring window; the victim
	// access (if any) lands mid-window.
	Window int64
}

// RefreshResult reports a run.
type RefreshResult struct {
	Variant RefreshVariant
	// IterLatencies is the cost of the attacker's operations per
	// iteration, excluding the waiting window (Figure 12).
	IterLatencies []int64
	// Revert is the per-iteration revert cost in the victim-accessed
	// case (Table III).
	Revert RevertOps
	// Truth and Detected are the per-window ground truth and verdicts.
	Truth, Detected []bool
	// Accuracy is the fraction of windows classified correctly.
	Accuracy float64
}

// RunRefresh mounts the chosen attack on a fresh machine. The victim and
// attacker share the monitored line dt (a deduplicated/shared-library page),
// per the Reload+Refresh threat model.
func RunRefresh(platformCfg hier.Config, variant RefreshVariant, cfg RefreshConfig, seed int64) RefreshResult {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1000
	}
	if cfg.Window <= 0 {
		cfg.Window = 5000
	}
	m := sim.MustNewMachine(platformCfg, 1<<30, seed)
	attackerAS := m.NewSpace()
	victimAS := m.NewSpace()

	// dt lives on a shared page.
	dt, err := attackerAS.Alloc(mem.PageSize)
	if err != nil {
		panic(err)
	}
	if err := victimAS.MapShared(attackerAS, dt, mem.PageSize); err != nil {
		panic(err)
	}

	w := m.H.Config().LLCWays
	// l0..l(w-1): w congruent attacker lines; dt + l0..l(w-2) fill the
	// set, l(w-1) is the conflict line.
	ls := core.MustCongruentLines(m, attackerAS, dt, w)

	// The attacker calibrates and prepares before the epoch starts;
	// window i then begins at start+i*Window and the attacker reads it
	// out at its end.
	const start = int64(50_000)
	truth := make([]bool, cfg.Iterations)
	pattern := make([]bool, 64)
	rng := newXorshift(uint64(seed)*2 + 1)
	for i := range pattern {
		pattern[i] = rng.next()&1 == 1
	}
	SpawnWindowedVictim(m, 1, victimAS, WindowedVictim{Target: dt, Window: cfg.Window, Start: start, Pattern: pattern})
	for i := range truth {
		truth[i] = pattern[i%len(pattern)]
	}

	res := RefreshResult{Variant: variant, Truth: truth}
	res.Detected = make([]bool, cfg.Iterations)

	m.Spawn("attacker", 0, attackerAS, func(c *sim.Core) {
		th := core.Calibrate(c, 48)
		prepareCleanSet(c, m, dt, ls, variant != ReloadRefresh)

		conflict, spare := ls[w-1], ls[0]
		for it := 0; it < cfg.Iterations; it++ {
			// Step 2: wait out window it; the victim access (if
			// any) landed mid-window.
			c.WaitUntil(start + int64(it+1)*cfg.Window)
			t0 := c.Now()
			switch variant {
			case ReloadRefresh:
				// Step 3: force a conflict with a demand load.
				c.Load(ls[w-1])
				// Step 4: timed reload — fast means the victim's
				// access kept dt alive.
				accessed := !th.IsMiss(c.TimedLoad(dt))
				res.Detected[it] = accessed
				// Step 5: revert — flush the two moved lines,
				// reload dt and l0, refresh l1..l(w-2).
				c.Flush(dt)
				c.Flush(ls[w-1])
				c.Load(dt)
				c.Load(ls[0])
				for i := 1; i < w-1; i++ {
					c.Load(ls[i])
				}
			case PrefetchRefreshV1:
				c.PrefetchNTA(ls[w-1])
				accessed := !th.IsMiss(c.TimedPrefetchNTA(dt))
				res.Detected[it] = accessed
				c.Flush(dt)
				c.Flush(ls[w-1])
				c.PrefetchNTA(dt)
				c.PrefetchNTA(ls[0])
			case PrefetchRefreshV2:
				c.PrefetchNTA(conflict)
				accessed := !th.IsMiss(c.TimedPrefetchNTA(dt))
				res.Detected[it] = accessed
				c.Flush(dt)
				c.PrefetchNTA(dt)
				if accessed {
					// The conflict line displaced the spare;
					// they exchange roles (the paper's role
					// swap).
					conflict, spare = spare, conflict
				}
			}
			res.IterLatencies = append(res.IterLatencies, c.Now()-t0)
		}
	})
	m.Run()

	correct := 0
	for i := range truth {
		if truth[i] == res.Detected[i] {
			correct++
		}
	}
	res.Accuracy = float64(correct) / float64(len(truth))
	res.Revert = revertOps(variant, w)
	return res
}

// revertOps returns the Table III operation counts for the victim-accessed
// case.
func revertOps(variant RefreshVariant, w int) RevertOps {
	switch variant {
	case ReloadRefresh:
		return RevertOps{Flushes: 2, DRAMAccesses: 2, LLCAccesses: w - 2}
	case PrefetchRefreshV1:
		return RevertOps{Flushes: 2, DRAMAccesses: 2}
	}
	return RevertOps{Flushes: 1, DRAMAccesses: 1}
}

// prepareCleanSet takes ownership of the whole target set: load every line
// to claim all ways, flush them all (the set is then empty), and refill in
// order — dt first, then l0..l(w-2) — with loads (age 2, Figure 9) or
// non-temporal prefetches (age 3, Figure 10).
func prepareCleanSet(c *sim.Core, m *sim.Machine, dt mem.VAddr, ls []mem.VAddr, nta bool) {
	w := len(ls)
	all := append([]mem.VAddr{dt}, ls...)
	for round := 0; round < 3; round++ {
		for _, va := range all {
			c.Load(va)
		}
	}
	for _, va := range all {
		c.Flush(va)
	}
	c.Fence()
	fill := func(va mem.VAddr) {
		if nta {
			c.PrefetchNTA(va)
		} else {
			c.Load(va)
		}
	}
	fill(dt)
	for i := 0; i < w-1; i++ {
		fill(ls[i])
	}
}

// xorshift is a tiny deterministic PRNG for victim patterns (avoids pulling
// math/rand into the attacker loop).
type xorshift struct{ s uint64 }

func newXorshift(seed uint64) *xorshift {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &xorshift{s: seed}
}

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}
