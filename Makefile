# Build/verify entry points. `make verify` is the tier-1 gate: build,
# vet, formatting, tests, the race detector over the whole module (the
# parallel experiment engine must stay clean under -race), and a short
# fuzz smoke over the ARQ frame decoders.

GO ?= go

.PHONY: all build vet fmt-check test race fuzz-smoke verify bench bench-jobs clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if it prints anything.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz runs over the wire-format decoders (go test takes one -fuzz
# pattern per invocation, hence one command per target).
fuzz-smoke:
	$(GO) test ./internal/channel -run '^$$' -fuzz FuzzFrameDecode -fuzztime 5s
	$(GO) test ./internal/channel -run '^$$' -fuzz FuzzAckDecode -fuzztime 5s

verify: build vet fmt-check test race fuzz-smoke

# Full benchmark sweep (quick-mode trial counts).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Engine scaling curve: the full suite at 1/2/4/8 workers.
bench-jobs:
	$(GO) test -bench 'BenchmarkRunAllJobs' -benchtime 3x -run '^$$' .

clean:
	$(GO) clean ./...
