// Package mem models the physical and virtual memory substrate under the
// cache simulator: line and page arithmetic, a randomized physical frame
// allocator, per-process virtual address spaces, and the last-level-cache
// slice/set geometry (including an Intel-style slice hash).
//
// The point of modelling virtual memory at all is fidelity to the paper's
// threat model: an unprivileged attacker controls the low 12 bits of a
// physical address (the page offset) but not the high bits, so LLC set
// congruence beyond bit 11 must be discovered with an eviction-set
// construction algorithm rather than computed.
package mem

import "fmt"

// Fundamental geometry constants. These match the Intel parts in the paper
// (Table I): 64-byte cache lines and 4 KiB pages.
const (
	LineBits     = 6             // log2(LineSize)
	LineSize     = 1 << LineBits // bytes per cache line
	PageBits     = 12            // log2(PageSize)
	PageSize     = 1 << PageBits // bytes per page
	LinesPerPage = PageSize / LineSize
)

// PAddr is a physical byte address.
type PAddr uint64

// VAddr is a virtual byte address inside some AddressSpace.
type VAddr uint64

// LineAddr is a physical address shifted down by LineBits: it identifies one
// cache line in physical memory. All cache-internal bookkeeping uses
// LineAddr so that off-by-offset bugs cannot alias distinct lines.
type LineAddr uint64

// Line returns the cache line containing the physical address.
func (p PAddr) Line() LineAddr { return LineAddr(p >> LineBits) }

// Offset returns the byte offset of p within its cache line.
func (p PAddr) Offset() uint64 { return uint64(p) & (LineSize - 1) }

// PageOffset returns the byte offset of p within its page.
func (p PAddr) PageOffset() uint64 { return uint64(p) & (PageSize - 1) }

// Frame returns the physical frame number containing p.
func (p PAddr) Frame() uint64 { return uint64(p) >> PageBits }

// PAddr returns the physical byte address of the first byte of the line.
func (l LineAddr) PAddr() PAddr { return PAddr(l << LineBits) }

// Frame returns the physical frame number containing the line.
func (l LineAddr) Frame() uint64 { return uint64(l) >> (PageBits - LineBits) }

// String implements fmt.Stringer for diagnostics.
func (l LineAddr) String() string { return fmt.Sprintf("line:%#x", uint64(l)) }

// Page returns the page number of a virtual address.
func (v VAddr) Page() uint64 { return uint64(v) >> PageBits }

// PageOffset returns the byte offset of v within its page.
func (v VAddr) PageOffset() uint64 { return uint64(v) & (PageSize - 1) }

// LineIndex returns the index of v's cache line within its page (0..63).
func (v VAddr) LineIndex() uint64 { return (uint64(v) & (PageSize - 1)) >> LineBits }

// AlignLine rounds v down to the start of its cache line.
func (v VAddr) AlignLine() VAddr { return v &^ (LineSize - 1) }

// AlignPage rounds v down to the start of its page.
func (v VAddr) AlignPage() VAddr { return v &^ (PageSize - 1) }
