package mem

import "testing"

func TestPhysMemUniqueFrames(t *testing.T) {
	pm := NewPhysMem(1<<20, 1) // 256 frames
	seen := make(map[uint64]bool)
	for i := 0; i < pm.TotalFrames(); i++ {
		f, err := pm.AllocFrame()
		if err != nil {
			t.Fatalf("AllocFrame #%d: %v", i, err)
		}
		if seen[f] {
			t.Fatalf("frame %d handed out twice", f)
		}
		if f >= uint64(pm.TotalFrames()) {
			t.Fatalf("frame %d out of range", f)
		}
		seen[f] = true
	}
	if _, err := pm.AllocFrame(); err != ErrOutOfMemory {
		t.Fatalf("exhausted pool: err = %v, want ErrOutOfMemory", err)
	}
}

func TestPhysMemDeterministic(t *testing.T) {
	a := NewPhysMem(1<<20, 42)
	b := NewPhysMem(1<<20, 42)
	for i := 0; i < 100; i++ {
		fa, _ := a.AllocFrame()
		fb, _ := b.AllocFrame()
		if fa != fb {
			t.Fatalf("allocation %d diverged: %d vs %d", i, fa, fb)
		}
	}
}

func TestPhysMemShuffled(t *testing.T) {
	pm := NewPhysMem(1<<22, 7)
	ascending := true
	var prev uint64
	for i := 0; i < 64; i++ {
		f, _ := pm.AllocFrame()
		if i > 0 && f != prev+1 {
			ascending = false
		}
		prev = f
	}
	if ascending {
		t.Fatal("frame sequence is perfectly ascending; allocator is not randomized")
	}
}

func TestAllocContiguous(t *testing.T) {
	pm := NewPhysMem(1<<20, 3)
	base, err := pm.AllocContiguous(8)
	if err != nil {
		t.Fatal(err)
	}
	// Contiguous reservations must not collide with the randomized pool.
	if base < uint64(pm.TotalFrames()) {
		t.Fatalf("contiguous base %d overlaps randomized pool of %d frames", base, pm.TotalFrames())
	}
	next, err := pm.AllocContiguous(4)
	if err != nil {
		t.Fatal(err)
	}
	if next < base+8 {
		t.Fatalf("second reservation %d overlaps first [%d,%d)", next, base, base+8)
	}
	if _, err := pm.AllocContiguous(0); err == nil {
		t.Fatal("AllocContiguous(0) should fail")
	}
}
