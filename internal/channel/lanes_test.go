package channel

import (
	"testing"

	"leakyway/internal/platform"
	"leakyway/internal/sim"
)

func TestLanesNoiselessIsPerfect(t *testing.T) {
	cfgp := platform.Skylake()
	cfg := DefaultConfig(cfgp.Name, cfgp.FreqGHz)
	cfg.Interval = 3200
	cfg.NoisePeriod = 0
	msg := RandomMessage(600, 41)
	m := sim.MustNewMachine(cfgp, 1<<30, 4)
	rep, recv := RunNTPNTPLanes(m, cfg, 4, msg)
	if rep.Errors != 0 {
		t.Fatalf("4-lane channel had %d/%d errors", rep.Errors, rep.Bits)
	}
	for i := range msg {
		if recv[i] != msg[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
	// Raw rate must reflect 4 bits per interval.
	single := DefaultConfig(cfgp.Name, cfgp.FreqGHz)
	single.Interval = 3200
	single.NoisePeriod = 0
	m2 := sim.MustNewMachine(cfgp, 1<<30, 4)
	rep1, _ := RunNTPNTPLanes(m2, single, 1, msg)
	if rep.RawRateKBps < 3.9*rep1.RawRateKBps {
		t.Fatalf("4-lane raw rate %.1f not ≈4x single-lane %.1f", rep.RawRateKBps, rep1.RawRateKBps)
	}
}

func TestLanesDefaultsToOne(t *testing.T) {
	cfgp := platform.Skylake()
	cfg := DefaultConfig(cfgp.Name, cfgp.FreqGHz)
	cfg.Interval = 2000
	cfg.NoisePeriod = 0
	msg := RandomMessage(100, 42)
	m := sim.MustNewMachine(cfgp, 1<<30, 5)
	rep, _ := RunNTPNTPLanes(m, cfg, 0, msg)
	if rep.Errors != 0 {
		t.Fatalf("lanes=0 fallback had %d errors", rep.Errors)
	}
	if rep.Channel != "NTP+NTP x1" {
		t.Fatalf("channel name %q", rep.Channel)
	}
}

func TestLanesOverloadCollapses(t *testing.T) {
	cfgp := platform.Skylake()
	cfg := DefaultConfig(cfgp.Name, cfgp.FreqGHz)
	cfg.Interval = 1500 // far too short for 8 lanes of probing
	cfg.NoisePeriod = 0
	msg := RandomMessage(800, 43)
	m := sim.MustNewMachine(cfgp, 1<<30, 6)
	rep, _ := RunNTPNTPLanes(m, cfg, 8, msg)
	if rep.BER < 0.1 {
		t.Fatalf("8 lanes at 1500 cycles should overload: BER %.2f%%", 100*rep.BER)
	}
}
