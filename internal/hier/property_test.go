package hier

import (
	"math/rand"
	"testing"
	"testing/quick"

	"leakyway/internal/mem"
)

// TestInclusionInvariantUnderRandomOps drives the hierarchy with random
// operation sequences and checks, after every step, that every line present
// in any private cache is also present in the LLC — the inclusion property
// all the paper's cross-core attacks depend on.
func TestInclusionInvariantUnderRandomOps(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		cfg := testConfig()
		cfg.Seed = seed
		h := MustNew(cfg)
		rng := rand.New(rand.NewSource(seed))
		// A small physical region so sets conflict often.
		addrs := make([]mem.PAddr, 64)
		for i := range addrs {
			addrs[i] = mem.PAddr(rng.Intn(1<<14)) &^ (mem.LineSize - 1)
		}
		now := int64(0)
		for _, op := range ops {
			pa := addrs[int(op)%len(addrs)]
			corenum := int(op>>6) % cfg.Cores
			now += 500
			switch (op >> 8) % 5 {
			case 0, 1:
				h.Load(corenum, pa, now)
			case 2:
				h.PrefetchNTA(corenum, pa, now)
			case 3:
				h.Store(corenum, pa, now)
			case 4:
				h.Flush(pa, now)
			}
			// Inclusion check over the touched working set.
			for _, a := range addrs {
				private := false
				for c := 0; c < cfg.Cores; c++ {
					if h.PresentInCore(LevelL1, c, a) || h.PresentInCore(LevelL2, c, a) {
						private = true
						break
					}
				}
				if private && !h.Present(LevelLLC, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyMatchesLevel: for every random op, the reported latency must
// belong to the reported level's band.
func TestLatencyMatchesLevel(t *testing.T) {
	cfg := testConfig()
	lat := cfg.Lat
	h := MustNew(cfg)
	rng := rand.New(rand.NewSource(3))
	now := int64(0)
	for i := 0; i < 3000; i++ {
		pa := mem.PAddr(rng.Intn(1<<13)) &^ (mem.LineSize - 1)
		corenum := rng.Intn(cfg.Cores)
		now += 300
		res := h.Load(corenum, pa, now)
		var want int64
		switch res.Level {
		case LevelL1:
			want = lat.L1Hit
		case LevelL2:
			want = lat.L2Hit
		case LevelLLC:
			want = lat.LLCHit
		case LevelMem:
			want = lat.Mem
		}
		if res.Latency != want {
			t.Fatalf("op %d: level %v latency %d, want %d", i, res.Level, res.Latency, want)
		}
	}
}

// TestOccupancyNeverExceedsWays: no LLC set ever reports more valid lines
// than its associativity, under heavy random churn.
func TestOccupancyNeverExceedsWays(t *testing.T) {
	cfg := testConfig()
	h := MustNew(cfg)
	rng := rand.New(rand.NewSource(11))
	now := int64(0)
	for i := 0; i < 5000; i++ {
		pa := mem.PAddr(rng.Intn(1<<15)) &^ (mem.LineSize - 1)
		now += 300
		if rng.Intn(3) == 0 {
			h.PrefetchNTA(rng.Intn(cfg.Cores), pa, now)
		} else {
			h.Load(rng.Intn(cfg.Cores), pa, now)
		}
		if occ := h.LLCOccupancy(pa); occ > cfg.LLCWays {
			t.Fatalf("set occupancy %d exceeds %d ways", occ, cfg.LLCWays)
		}
	}
}
