package hier

import (
	"testing"

	"leakyway/internal/cache"
	"leakyway/internal/mem"
)

// multiSliceConfig is testConfig with a sliced LLC, so per-slice counters
// actually diverge.
func multiSliceConfig() Config {
	cfg := testConfig()
	cfg.LLCSlices = 4
	return cfg
}

func sumStats(a, b cache.Stats) cache.Stats {
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Evictions += b.Evictions
	a.Fills += b.Fills
	a.Flushes += b.Flushes
	return a
}

// TestLLCSliceStatsSumToTotal drives traffic across many slices and checks
// that the per-slice counters are a partition of the aggregate LLCStats:
// every event lands in exactly one slice.
func TestLLCSliceStatsSumToTotal(t *testing.T) {
	h := MustNew(multiSliceConfig())
	now := int64(0)
	// Loads spread over enough lines to hash across all slices and to
	// force LLC evictions, plus flushes so every counter is exercised.
	for i := 0; i < 4096; i++ {
		pa := mem.PAddr(uint64(i) * 64)
		h.Load(i%2, pa, now)
		now += 10
	}
	for i := 4096 - 256; i < 4096; i++ { // recent lines, so they are still cached
		h.Flush(mem.PAddr(uint64(i)*64), now)
		now += 10
	}
	for i := 0; i < 512; i++ { // re-touch to add hits
		h.Load(0, mem.PAddr(uint64(4096-1-i)*64), now)
		now += 10
	}

	var summed cache.Stats
	perSlice := make([]cache.Stats, h.LLCSlices())
	for s := 0; s < h.LLCSlices(); s++ {
		perSlice[s] = h.LLCSliceStats(s)
		summed = sumStats(summed, perSlice[s])
	}
	total := h.LLCStats()
	if summed != total {
		t.Fatalf("per-slice sum %+v != LLCStats %+v", summed, total)
	}
	if total.Fills == 0 || total.Evictions == 0 || total.Hits == 0 || total.Flushes == 0 {
		t.Fatalf("test traffic did not exercise all counters: %+v", total)
	}
	// The slice hash must actually spread the traffic.
	busy := 0
	for _, st := range perSlice {
		if st.Fills > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("traffic hit only %d of %d slices", busy, len(perSlice))
	}
}

func TestLLCSliceStatsOutOfRangePanics(t *testing.T) {
	h := MustNew(multiSliceConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slice index did not panic")
		}
	}()
	h.LLCSliceStats(h.LLCSlices())
}
