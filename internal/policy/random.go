package policy

import "math/rand"

// Random evicts a uniformly random evictable way. Deterministic for a given
// seed; used as the weakest baseline in policy-comparison experiments.
type Random struct {
	Seed int64
}

// NewRandom returns the policy with the given seed.
func NewRandom(seed int64) *Random { return &Random{Seed: seed} }

// Name implements Policy.
func (*Random) Name() string { return "random" }

// NewSet implements Policy.
func (p *Random) NewSet(ways int) SetState {
	return &randomSet{ways: ways, rng: rand.New(rand.NewSource(p.Seed))}
}

type randomSet struct {
	ways int
	rng  *rand.Rand
}

// Victim implements SetState.
func (s *randomSet) Victim(evictable func(way int) bool) int {
	candidates := make([]int, 0, s.ways)
	for way := 0; way < s.ways; way++ {
		if evictable(way) {
			candidates = append(candidates, way)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[s.rng.Intn(len(candidates))]
}

// OnFill implements SetState.
func (*randomSet) OnFill(int, AccessClass) {}

// OnHit implements SetState.
func (*randomSet) OnHit(int, AccessClass) {}

// OnInvalidate implements SetState.
func (*randomSet) OnInvalidate(int) {}

// Snapshot implements SetState.
func (s *randomSet) Snapshot() []int { return make([]int, s.ways) }
