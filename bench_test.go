// Benchmarks regenerating every table and figure of the paper (quick-mode
// trial counts; run `cmd/leakyway run all` for full-scale numbers), plus
// micro-benchmarks of the simulator substrate.
package leakyway

import (
	"io"
	"testing"

	"leakyway/internal/mem"
	"leakyway/internal/telemetry"
	"leakyway/internal/trace"
)

// benchExperiment runs one registered experiment per iteration and reports
// a chosen metric.
func benchExperiment(b *testing.B, id string, metric string) {
	b.Helper()
	ctx := NewExperimentContext(io.Discard)
	ctx.Quick = true
	b.ResetTimer()
	var last float64
	for i := 0; i < b.N; i++ {
		r, err := RunExperiment(ctx, id)
		if err != nil {
			b.Fatal(err)
		}
		if metric != "" {
			last = r.Metrics[metric]
		}
	}
	if metric != "" {
		b.ReportMetric(last, metric)
	}
}

// One benchmark per paper table/figure.

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1", "") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1", "") }
func BenchmarkFig2(b *testing.B) {
	benchExperiment(b, "fig2", "min_prefetched_reload_cycles")
}
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3", "order_match_fraction") }
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4", "stock_dram_fraction") }
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5", "llc_mean") }
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6", "state_walk_correct") }
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7", "pipeline_errors") }
func BenchmarkFig8(b *testing.B) {
	benchExperiment(b, "fig8", "skylake/ntpntp_peak_kbps")
}
func BenchmarkTable2(b *testing.B) {
	benchExperiment(b, "table2", "skylake/ntpntp_peak_kbps")
}
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9", "state_walk_correct") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10", "state_walk_correct") }
func BenchmarkFig11(b *testing.B) {
	benchExperiment(b, "fig11", "skylake/prep_speedup")
}
func BenchmarkFNRate(b *testing.B) {
	benchExperiment(b, "fnrate", "skylake/prefetchscope_fn_rate")
}
func BenchmarkFig12(b *testing.B) {
	benchExperiment(b, "fig12", "skylake/reload_refresh_mean")
}
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3", "variant2/flushes") }
func BenchmarkFig13(b *testing.B) {
	benchExperiment(b, "fig13", "skylake/time_speedup")
}
func BenchmarkCounter(b *testing.B) { benchExperiment(b, "counter", "intel_ratio") }
func BenchmarkClassic(b *testing.B) {
	benchExperiment(b, "classic", "flush_reload_mean")
}
func BenchmarkDefense(b *testing.B) {
	benchExperiment(b, "defense", "partition_capacity")
}
func BenchmarkNonInclusive(b *testing.B) {
	benchExperiment(b, "noninclusive", "noninclusive_capacity")
}
func BenchmarkSelfSync(b *testing.B) {
	benchExperiment(b, "selfsync", "quiet_ber")
}
func BenchmarkPollution(b *testing.B) {
	benchExperiment(b, "pollution", "countermeasure_worker_hitrate")
}
func BenchmarkNoise(b *testing.B) {
	benchExperiment(b, "noise", "noise0_raw_ber")
}
func BenchmarkResolution(b *testing.B) {
	benchExperiment(b, "resolution", "scope_median_delay")
}
func BenchmarkStealth(b *testing.B) {
	benchExperiment(b, "stealth", "flush_reload_victim_missfrac")
}
func BenchmarkEvsetAlgos(b *testing.B) {
	benchExperiment(b, "evset-algos", "hugepage_refs")
}
func BenchmarkAblateSets(b *testing.B) {
	benchExperiment(b, "ablate-sets", "two_set_peak")
}
func BenchmarkAblateLanes(b *testing.B) {
	benchExperiment(b, "ablate-lanes", "lanes4_capacity")
}
func BenchmarkAblateHWPF(b *testing.B) {
	benchExperiment(b, "ablate-hwpf", "hwpf_on_ber")
}
func BenchmarkAblatePolicy(b *testing.B) {
	benchExperiment(b, "ablate-policy", "countermeasure_capacity")
}

// Engine scaling: the quick-mode full suite at several worker counts.
// The jobs=N curves only separate on a multi-core host; on a single-CPU
// runner all four collapse to the serial time (see BENCH.json).

func benchRunAllJobs(b *testing.B, jobs int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ctx := NewExperimentContext(io.Discard)
		ctx.Quick = true
		ctx.Jobs = jobs
		if _, err := RunAllExperiments(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllJobs1(b *testing.B) { benchRunAllJobs(b, 1) }
func BenchmarkRunAllJobs2(b *testing.B) { benchRunAllJobs(b, 2) }
func BenchmarkRunAllJobs4(b *testing.B) { benchRunAllJobs(b, 4) }
func BenchmarkRunAllJobs8(b *testing.B) { benchRunAllJobs(b, 8) }

// Substrate micro-benchmarks: simulated memory operations per wall-clock
// second.

func benchOps(b *testing.B, f func(c *Core, buf VAddr, i int)) {
	b.Helper()
	m := MustNewMachine(Skylake(), 1<<26, 1)
	b.ResetTimer()
	m.Spawn("bench", 0, nil, func(c *Core) {
		buf := c.Alloc(64 * PageSize)
		for i := 0; i < b.N; i++ {
			f(c, buf, i)
		}
	})
	m.Run()
}

func BenchmarkSimL1Hit(b *testing.B) {
	benchOps(b, func(c *Core, buf VAddr, i int) {
		c.Load(buf)
	})
}

func BenchmarkSimLoadSpread(b *testing.B) {
	benchOps(b, func(c *Core, buf VAddr, i int) {
		c.Load(buf + VAddr((i%4096)*LineSize))
	})
}

func BenchmarkSimPrefetchNTA(b *testing.B) {
	benchOps(b, func(c *Core, buf VAddr, i int) {
		c.PrefetchNTA(buf + VAddr((i%4096)*LineSize))
	})
}

func BenchmarkSimFlushReload(b *testing.B) {
	benchOps(b, func(c *Core, buf VAddr, i int) {
		c.Flush(buf)
		c.Load(buf)
	})
}

func BenchmarkSimTimedLoad(b *testing.B) {
	benchOps(b, func(c *Core, buf VAddr, i int) {
		c.TimedLoad(buf)
	})
}

// BenchmarkChannelBit measures end-to-end simulated covert-channel
// throughput (simulated bits per wall-clock second).
func BenchmarkChannelBit(b *testing.B) {
	plat := Skylake()
	cfg := DefaultChannelConfig(plat)
	cfg.Interval = 1500
	cfg.NoisePeriod = 0
	bits := b.N
	if bits < 8 {
		bits = 8
	}
	msg := RandomMessage(bits, 1)
	m := MustNewMachine(plat, 1<<30, 1)
	b.ResetTimer()
	rep, _ := RunNTPNTP(m, cfg, msg)
	b.StopTimer()
	b.ReportMetric(rep.CapacityKBps, "sim_KB/s")
	b.ReportMetric(100*rep.BER, "BER_%")
	_ = mem.LineSize
}

// benchTraceOverhead runs a fixed NTP+NTP transmission per iteration,
// with the trace bus either disabled (nil sink — must cost nothing) or
// recording every subsystem.
func benchTraceOverhead(b *testing.B, traced bool) {
	plat := Skylake()
	cfg := DefaultChannelConfig(plat)
	cfg.Interval = 1500
	cfg.NoisePeriod = 0
	msg := RandomMessage(256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := MustNewMachine(plat, 1<<30, 1)
		if traced {
			col := NewTraceCollector()
			m.SetTracer(col.Tracer("bench", TraceAllPkgs))
		}
		RunNTPNTP(m, cfg, msg)
	}
}

// BenchmarkTraceOverheadOff is the acceptance baseline: tracing disabled
// must not measurably slow the simulator (compare against ...On).
func BenchmarkTraceOverheadOff(b *testing.B) { benchTraceOverhead(b, false) }

// BenchmarkTraceOverheadOn records hier+sim+channel events for the same
// workload, measuring the full cost of the event bus when enabled.
func BenchmarkTraceOverheadOn(b *testing.B) { benchTraceOverhead(b, true) }

// benchTelemetryOverhead runs one quick fig8 regeneration per iteration
// with the live-telemetry path either fully off (nil Progress — every
// checkpoint must be a nil-check and nothing else) or fully on as the
// daemon wires it: a Progress tracker receiving phase and shard ticks
// plus a count-only trace collector feeding its event counters.
func benchTelemetryOverhead(b *testing.B, on bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ctx := NewExperimentContext(io.Discard)
		ctx.Quick = true
		if on {
			counts := &trace.EventCounts{}
			ctx.Progress = telemetry.NewProgress()
			ctx.Progress.SetEventSource(counts.Counts)
			ctx.Trace = trace.NewCountingCollector(counts)
			ctx.TraceMask = trace.PkgAll
		}
		if _, err := RunExperiment(ctx, "fig8"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOverheadOff is the acceptance baseline pinned in
// BENCH.json: with no Progress attached the checkpoint calls must not
// measurably slow a run (compare against ...On).
func BenchmarkTelemetryOverheadOff(b *testing.B) { benchTelemetryOverhead(b, false) }

// BenchmarkTelemetryOverheadOn measures the full daemon-style telemetry
// wiring — progress checkpoints plus the aggregating event-count sink —
// for the same workload.
func BenchmarkTelemetryOverheadOn(b *testing.B) { benchTelemetryOverhead(b, true) }
