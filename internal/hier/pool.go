package hier

// Hierarchy recycling. Building a hierarchy is the dominant per-trial cost of
// a Monte-Carlo sweep (the line arrays and per-set policy states dwarf the
// stepping work of a short trial), so the batch kernel in package sim keeps a
// Pool of hierarchies keyed by configuration and re-seeds one per trial
// instead of rebuilding. Reset restores exactly the state New would produce —
// the sparse touched-set tracking inside package cache makes this cost
// proportional to the sets a trial actually used, not the geometry.

// reset restores the hierarchy to the state New(cfg with Seed=seed) would
// have produced: every cache's lines, policy state, and counters are
// re-zeroed, the jitter RNG is rewound to the new seed, the prefetcher
// stream tables are cleared, and any attached tracer is detached. The
// memoizing Locator is deliberately kept — its contents are a pure function
// of the geometry, so a recycled hierarchy starts with a warm mapping cache
// without observable effect on simulation results.
func (h *Hierarchy) reset(seed int64) {
	for _, c := range h.l1 {
		c.Reset()
	}
	for _, c := range h.l2 {
		c.Reset()
	}
	for _, c := range h.llc {
		c.Reset()
	}
	for _, c := range h.dir {
		c.Reset()
	}
	h.cfg.Seed = seed
	h.rng.Seed(seed ^ 0x1ea11e57)
	for _, p := range h.pf {
		p.streams = [4]streamEntry{}
		p.clock = 0
	}
	h.tr = nil
	h.trAgent = ""
	h.trCore = -1
}

// Pool recycles hierarchies across trials that share a platform geometry.
// It is not goroutine-safe; each worker owns its own Pool (see sim.Arena).
type Pool struct {
	// free holds idle hierarchies per caller configuration. The key is the
	// config as passed to Get with Seed zeroed — before withDefaults runs —
	// because defaulting materializes fresh policy pointers, which would
	// make post-default configs from identical requests compare unequal.
	free map[Config][]*Hierarchy
	// key remembers which free-list each checked-out hierarchy belongs to;
	// the hierarchy's own cfg is the defaulted one and cannot be used.
	key map[*Hierarchy]Config
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{free: map[Config][]*Hierarchy{}, key: map[*Hierarchy]Config{}}
}

// Get returns a hierarchy for cfg, recycling an idle one when the pool holds
// a hierarchy built from an identical configuration (ignoring Seed). The
// returned hierarchy is indistinguishable from New(cfg)'s result.
func (p *Pool) Get(cfg Config) (*Hierarchy, error) {
	k := cfg
	k.Seed = 0
	if list := p.free[k]; len(list) > 0 {
		h := list[len(list)-1]
		p.free[k] = list[:len(list)-1]
		h.reset(cfg.Seed)
		p.key[h] = k
		return h, nil
	}
	h, err := New(cfg)
	if err != nil {
		return nil, err
	}
	p.key[h] = k
	return h, nil
}

// Put returns a hierarchy obtained from Get to the pool. Hierarchies the
// pool did not hand out are ignored.
func (p *Pool) Put(h *Hierarchy) {
	if h == nil {
		return
	}
	k, ok := p.key[h]
	if !ok {
		return
	}
	delete(p.key, h)
	p.free[k] = append(p.free[k], h)
}
