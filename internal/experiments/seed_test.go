package experiments

import (
	"fmt"
	"testing"
)

// TestSplitSeedTable pins the algebraic properties the engine's
// determinism rests on.
func TestSplitSeedTable(t *testing.T) {
	tests := []struct {
		name string
		a, b int64
		want bool // a == b expected
	}{
		{
			name: "same master and key agree",
			a:    SplitSeed(42, "fig8"),
			b:    SplitSeed(42, "fig8"),
			want: true,
		},
		{
			name: "distinct keys diverge",
			a:    SplitSeed(42, "fig8"),
			b:    SplitSeed(42, "fig13"),
			want: false,
		},
		{
			name: "distinct masters diverge",
			a:    SplitSeed(42, "fig8"),
			b:    SplitSeed(43, "fig8"),
			want: false,
		},
		{
			name: "child differs from master",
			a:    SplitSeed(42, "fig8"),
			b:    42,
			want: false,
		},
		{
			name: "multi-part folds left (chain property)",
			a:    SplitSeed(42, "fig8", "platform/skylake"),
			b:    SplitSeed(SplitSeed(42, "fig8"), "platform/skylake"),
			want: true,
		},
		{
			name: "part boundaries matter",
			a:    SplitSeed(42, "fig8platform"),
			b:    SplitSeed(42, "fig8", "platform"),
			want: false,
		},
		{
			name: "empty part still advances the state",
			a:    SplitSeed(42, ""),
			b:    42,
			want: false,
		},
		{
			name: "indexed shards diverge",
			a:    splitSeedIndex(42, 0),
			b:    splitSeedIndex(42, 1),
			want: false,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a == tc.b; got != tc.want {
				t.Errorf("a=%d b=%d: equal=%v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

// TestSplitSeedNoRegistryCollisions derives every seed the engine will
// actually hand out for a full run — per-experiment, per-platform under
// each experiment, and a generous band of trial shards — and asserts they
// are pairwise distinct. A collision would silently correlate two tasks'
// randomness.
func TestSplitSeedNoRegistryCollisions(t *testing.T) {
	for _, master := range []int64{42, 0, -1, 1 << 40} {
		seen := map[int64]string{}
		record := func(seed int64, key string) {
			if prev, dup := seen[seed]; dup {
				t.Fatalf("master %d: %s and %s share seed %d", master, prev, key, seed)
			}
			seen[seed] = key
		}
		for _, e := range All() {
			es := SplitSeed(master, e.ID)
			record(es, e.ID)
			for _, plat := range []string{"skylake", "kabylake"} {
				record(SplitSeed(es, "platform/"+plat), e.ID+"/"+plat)
			}
			for i := 0; i < 64; i++ {
				record(splitSeedIndex(es, i), fmt.Sprintf("%s/shard%d", e.ID, i))
			}
		}
	}
}

// TestSplitSeedIndexBulkDistinct widens the shard check: 10k consecutive
// shard seeds from one master must not collide.
func TestSplitSeedIndexBulkDistinct(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := splitSeedIndex(42, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("shards %d and %d collide on seed %d", j, i, s)
		}
		seen[s] = i
	}
}
