// Package channel implements the paper's cross-core LLC covert channels:
// NTP+NTP (Section IV, Algorithm 1, Figures 6-8, Table II) and the
// Prime+Probe baseline it is compared against. Both run between two agents
// on different cores with no shared memory, synchronized on the cycle
// counter, with an optional background noise process.
package channel

import (
	"fmt"

	"leakyway/internal/core"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
	"leakyway/internal/stats"
)

// Config parameterizes one transmission run.
type Config struct {
	// Interval is the cycle budget per transmission iteration; one bit
	// per interval for NTP+NTP, two (one per set) for Prime+Probe.
	Interval int64
	// Sets is the number of LLC sets used (1 or 2 for NTP+NTP, Figure 7;
	// Prime+Probe always uses 2, one bit each).
	Sets int
	// SenderOffset and ReceiverOffset place each party's operation inside
	// its iteration window. For a single-set NTP+NTP channel the receiver
	// offset must exceed the DRAM fill time, or the sender's in-flight
	// line defeats the conflict (the effect that motivates two sets).
	SenderOffset, ReceiverOffset int64
	// ProtocolOverhead models the fixed per-iteration cost of the real
	// implementation: TSC synchronization spin, loop and encode/decode
	// work. It bounds the sustainable rate exactly as on real hardware.
	ProtocolOverhead int64
	// Start is the cycle at which the transmission epoch begins; both
	// parties calibrate and prepare before it (the real channel likewise
	// agrees on a TSC epoch in its pre-defined protocol).
	Start int64
	// NoisePeriod, when positive, runs a background process that loads a
	// line congruent with a target set on average every NoisePeriod
	// cycles — the "other processes" reliability threat of Section IV-B3.
	NoisePeriod int64
	// PrimeWalks is how many refresh walks the Prime+Probe receiver does
	// after probing (the paper's reliable priming uses 2).
	PrimeWalks int
}

// DefaultConfig returns the calibrated per-platform protocol parameters.
// The overhead corresponds to ~330 ns of synchronization + bookkeeping per
// iteration (calibrated slightly higher on Kaby Lake), converted to cycles
// at the platform clock.
func DefaultConfig(platformName string, freqGHz float64) Config {
	overheadNs := 330.0
	if freqGHz > 4.0 {
		overheadNs = 375.0
	}
	return Config{
		Interval:         2000,
		Sets:             2,
		SenderOffset:     0,
		ReceiverOffset:   450,
		ProtocolOverhead: int64(overheadNs * freqGHz),
		Start:            60_000,
		NoisePeriod:      450_000,
		PrimeWalks:       2,
	}
}

// Report summarizes a transmission.
type Report struct {
	Channel      string
	Platform     string
	Bits         int
	Errors       int
	BER          float64
	Interval     int64
	RawRateKBps  float64
	CapacityKBps float64
}

// String renders the report in one line.
func (r Report) String() string {
	return fmt.Sprintf("%-12s %-22s interval=%5d cyc raw=%7.1f KB/s BER=%6.3f%% capacity=%7.1f KB/s",
		r.Channel, r.Platform, r.Interval, r.RawRateKBps, 100*r.BER, r.CapacityKBps)
}

// finishReport fills the derived fields.
func finishReport(r *Report, freqGHz float64, bitsPerInterval float64) {
	freqHz := freqGHz * 1e9
	rawBits := freqHz / float64(r.Interval) * bitsPerInterval
	r.RawRateKBps = rawBits / 8 / 1024
	if r.Bits > 0 {
		r.BER = float64(r.Errors) / float64(r.Bits)
	}
	r.CapacityKBps = stats.ChannelCapacity(r.RawRateKBps, r.BER)
}

// Endpoints are the staged addresses of a channel: the sender's and
// receiver's congruent lines for each target set, in their own address
// spaces. The eviction-set machinery that discovers congruence is exercised
// separately (package evset); channel setup uses the oracle, as the paper's
// threat model assumes ("able to construct eviction sets").
type Endpoints struct {
	SenderAS   *mem.AddressSpace
	ReceiverAS *mem.AddressSpace
	NoiseAS    *mem.AddressSpace
	// DS and DR are the sender/receiver signalling lines per set.
	DS, DR []mem.VAddr
	// Filler are receiver lines that pre-fill each target set so it has
	// no empty ways before the channel starts (footnote 4 of the paper:
	// a fill into an empty way causes no conflict at all).
	Filler [][]mem.VAddr
	// REv are receiver eviction sets per target set (Prime+Probe only).
	REv [][]mem.VAddr
	// NoiseLines hold one line per target set for the noise process.
	NoiseLines []mem.VAddr
}

// Setup stages endpoints for a channel over the given number of LLC sets,
// including per-set filler lines that pre-fill the set. evWays > 0
// additionally builds receiver eviction sets of that size per target set
// (for Prime+Probe).
func Setup(m *sim.Machine, sets, evWays int) (*Endpoints, error) {
	if sets <= 0 {
		return nil, fmt.Errorf("channel: sets must be positive, got %d", sets)
	}
	ep := &Endpoints{
		SenderAS:   m.NewSpace(),
		ReceiverAS: m.NewSpace(),
		NoiseAS:    m.NewSpace(),
	}
	for s := 0; s < sets; s++ {
		// Anchor each target set with a fresh receiver line; force
		// distinct page offsets so the sets differ.
		anchor, err := ep.ReceiverAS.Alloc(mem.PageSize)
		if err != nil {
			return nil, err
		}
		dr := anchor + mem.VAddr(s*mem.LineSize)
		ep.DR = append(ep.DR, dr)
		tline := ep.ReceiverAS.MustTranslate(dr).Line()

		ds, err := core.CongruentWithLine(m, ep.SenderAS, tline, 1)
		if err != nil {
			return nil, err
		}
		ep.DS = append(ep.DS, ds[0])

		fill, err := core.CongruentLines(m, ep.ReceiverAS, dr, m.H.Config().LLCWays)
		if err != nil {
			return nil, err
		}
		ep.Filler = append(ep.Filler, fill)

		if evWays > 0 {
			ep.REv = append(ep.REv, append([]mem.VAddr{dr}, fill[:evWays-1]...))
		}

		// A rotating pool of noise lines per set, so each noise event
		// is a genuine fill that displaces the eviction candidate.
		nl, err := core.CongruentWithLine(m, ep.NoiseAS, tline, 24)
		if err != nil {
			return nil, err
		}
		ep.NoiseLines = append(ep.NoiseLines, nl...)
	}
	return ep, nil
}

// spawnNoise starts the background noise daemon when configured.
func spawnNoise(m *sim.Machine, cfg Config, ep *Endpoints, coreID int) {
	if cfg.NoisePeriod <= 0 {
		return
	}
	period := cfg.NoisePeriod
	lines := ep.NoiseLines
	m.SpawnDaemon("noise", coreID, ep.NoiseAS, func(c *sim.Core) {
		i := 0
		for {
			// Deterministic arrivals with irregular phase: vary the
			// gap ±25% with a fixed pattern.
			gap := period + period/4 - (int64(i%7) * period / 14)
			c.Spin(gap)
			c.Load(lines[i%len(lines)])
			i++
		}
	})
}
