package channel

// Hamming(7,4) forward error correction for the covert channel: each nibble
// becomes 7 bits and any single bit error per codeword is corrected. For
// the channel's independent, low-probability bit flips this beats the
// repetition code at a far lower rate cost (7/4 vs k).

// EncodeHamming74 encodes bits (padded with zeros to a multiple of 4) into
// 7-bit codewords. Bit layout per codeword: [p1 p2 d1 p4 d2 d3 d4].
func EncodeHamming74(bits []bool) []bool {
	padded := append([]bool(nil), bits...)
	for len(padded)%4 != 0 {
		padded = append(padded, false)
	}
	out := make([]bool, 0, len(padded)/4*7)
	for i := 0; i < len(padded); i += 4 {
		d1, d2, d3, d4 := padded[i], padded[i+1], padded[i+2], padded[i+3]
		p1 := d1 != d2 != d4 // parity over positions 3,5,7
		p2 := d1 != d3 != d4 // parity over positions 3,6,7
		p4 := d2 != d3 != d4 // parity over positions 5,6,7
		out = append(out, p1, p2, d1, p4, d2, d3, d4)
	}
	return out
}

// DecodeHamming74 decodes 7-bit codewords, correcting one flipped bit per
// codeword; trailing partial codewords are dropped.
func DecodeHamming74(bits []bool) []bool {
	out := make([]bool, 0, len(bits)/7*4)
	for i := 0; i+7 <= len(bits); i += 7 {
		w := [8]bool{} // 1-indexed positions
		copy(w[1:], bits[i:i+7])
		// Syndrome: each parity check covers positions with that bit
		// set in their index.
		s1 := w[1] != w[3] != w[5] != w[7]
		s2 := w[2] != w[3] != w[6] != w[7]
		s4 := w[4] != w[5] != w[6] != w[7]
		syndrome := 0
		if s1 {
			syndrome |= 1
		}
		if s2 {
			syndrome |= 2
		}
		if s4 {
			syndrome |= 4
		}
		if syndrome != 0 {
			w[syndrome] = !w[syndrome]
		}
		out = append(out, w[3], w[5], w[6], w[7])
	}
	return out
}

// Interleave spreads bits with a block interleaver of the given depth:
// position i goes to (i%depth)*rows + i/depth. Burst errors on the channel
// land in different codewords after deinterleaving — the standard companion
// to Hamming coding on channels whose noise steals several consecutive bits
// (e.g. a stuck sender line that silences a stretch of '1's).
// The input is padded with zeros to a multiple of depth.
func Interleave(bits []bool, depth int) []bool {
	if depth <= 1 {
		return append([]bool(nil), bits...)
	}
	padded := append([]bool(nil), bits...)
	for len(padded)%depth != 0 {
		padded = append(padded, false)
	}
	rows := len(padded) / depth
	out := make([]bool, len(padded))
	for i, b := range padded {
		out[(i%depth)*rows+i/depth] = b
	}
	return out
}

// Deinterleave inverts Interleave (the input length must be a multiple of
// depth, as Interleave produces).
func Deinterleave(bits []bool, depth int) []bool {
	if depth <= 1 {
		return append([]bool(nil), bits...)
	}
	n := len(bits) - len(bits)%depth
	rows := n / depth
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = bits[(i%depth)*rows+i/depth]
	}
	return out
}
