package experiments

import (
	"fmt"

	"leakyway/internal/core"
	"leakyway/internal/evset"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "evset-algos",
		Title: "Extension — four ways to build an eviction set",
		Paper: "Figure 13 compares two; this adds group testing [62] and the huge-page shortcut",
		Run:   runEvsetAlgos,
	})
}

func runEvsetAlgos(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	desired := 16
	if ctx.Quick {
		desired = 8
	}
	m := sim.MustNewMachine(cfg, 1<<31, ctx.Seed)
	as := m.NewSpace()
	freqHz := cfg.FreqGHz * 1e9

	type row struct {
		name    string
		key     string
		r       evset.Result
		err     error
		correct int
		total   int
	}
	rows := make([]row, 4)
	var targets [4]mem.VAddr

	m.Spawn("attacker", 0, as, func(c *sim.Core) {
		th := core.Calibrate(c, 48)

		targets[0] = c.Alloc(mem.PageSize)
		rows[0] = row{name: "Algorithm 2 (prefetch)", key: "prefetch"}
		rows[0].r, rows[0].err = evset.BuildPrefetch(c, targets[0], evset.Options{
			Desired: desired, Pool: evset.NewPool(c, targets[0], 512*desired), Thresholds: th,
		})

		targets[1] = c.Alloc(mem.PageSize)
		rows[1] = row{name: "access baseline [42]", key: "baseline"}
		rows[1].r, rows[1].err = evset.BuildBaseline(c, targets[1], evset.Options{
			Desired: desired, Pool: evset.NewPool(c, targets[1], 2600*desired), Thresholds: th,
		})

		// Group testing must target the full associativity: a smaller
		// set cannot evict the target at all on a 16-way LLC.
		gtWant := cfg.LLCWays
		targets[2] = c.Alloc(mem.PageSize)
		rows[2] = row{name: "group testing [62]", key: "grouptest"}
		rows[2].r, rows[2].err = evset.BuildGroupTesting(c, targets[2], evset.Options{
			Desired: gtWant, Pool: evset.NewPool(c, targets[2], 512*gtWant), Thresholds: th,
		})

		rows[3] = row{name: "Algorithm 2 + huge pages", key: "hugepage"}
		ht, hp, err := evset.NewHugePool(c, cfg.LLCSetsPerSlice, 24*desired)
		if err == nil {
			targets[3] = ht
			rows[3].r, rows[3].err = evset.BuildPrefetch(c, ht, evset.Options{
				Desired: desired, Pool: hp, Thresholds: th,
			})
		} else {
			rows[3].err = err
		}
	})
	m.Run()

	out := [][]string{}
	for i := range rows {
		rows[i].total = len(rows[i].r.Set)
		rows[i].correct = evset.Verify(m, as, targets[i], rows[i].r.Set)
		status := fmt.Sprintf("%d/%d congruent", rows[i].correct, rows[i].total)
		if rows[i].err != nil {
			status = rows[i].err.Error()
		}
		out = append(out, []string{
			rows[i].name,
			fmt.Sprintf("%d", rows[i].r.MemRefs),
			fmt.Sprintf("%d", rows[i].r.Tested),
			fmt.Sprintf("%.3f ms", float64(rows[i].r.Cycles)/freqHz*1e3),
			status,
		})
		res.Metric(rows[i].key+"_refs", float64(rows[i].r.MemRefs))
		res.Metric(rows[i].key+"_congruent", float64(rows[i].correct))
	}
	renderTable(ctx, []string{"algorithm", "mem refs", "candidates", "time", "result"}, out)
	ctx.Printf("group testing stalls on a small evicting superset under quad-age (see evset docs);\n")
	ctx.Printf("huge pages shrink the candidate space %dx by exposing the set bits\n",
		cfg.LLCSetsPerSlice*mem.LineSize/mem.PageSize)
	return res, nil
}
