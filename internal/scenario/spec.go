// Package scenario is the declarative experiment format: a YAML/JSON
// schema describing a complete covert-channel scenario — platform
// geometry, replacement policy, prefetcher configuration, victim program,
// channel and transport parameters, fault-scenario mix, and typed metric
// extractors with pass/fail assertions — plus a strict loader/validator
// and a deterministic marshaller.
//
// A template is one Spec. The experiment engine (internal/experiments)
// compiles a Spec into a registered-experiment-shaped task, so a template
// run is driven by exactly the code path a hand-coded experiment uses:
// the shipped templates under templates/ reproduce their hand-coded
// counterparts byte-identically for any -jobs value (the equivalence
// harness in internal/experiments proves it).
//
// The loader is strict on purpose: unknown fields are rejected, every
// error names the file and the field path that caused it, and a failed
// Parse returns no Spec at all — never a partially-applied one.
package scenario

import (
	"leakyway/internal/channel"
	"leakyway/internal/fault"
	"leakyway/internal/hier"
	"leakyway/internal/platform"
	"leakyway/internal/policy"
)

// Spec is one declarative scenario. ID, Title, Paper and Kind are
// required; exactly the section matching Kind must be present. The
// optional Platform/Channel/Transport sections override the per-platform
// calibrated defaults; Extract and Assert add post-run metric extraction
// and pass/fail checks (template mode only — they never change the run).
type Spec struct {
	// ID keys the scenario: it names the report section, prefixes every
	// trace stream, and — critically — feeds the SplitSeed derivation,
	// so a template with the same ID as a hand-coded experiment runs
	// with identical randomness.
	ID string
	// Title is the one-line banner ("Figure 8 — channel capacity ...").
	Title string
	// Paper summarizes what the source paper reports for this artifact.
	Paper string
	// Kind selects the interpreter: statewalk, pipeline, sweep, lanes,
	// noise, faults or victim.
	Kind string

	// Platform, when present, replaces the context platforms with one
	// custom configuration (base platform + geometry/policy/prefetcher
	// overrides). Absent, the scenario runs on the context's platforms
	// (both paper machines by default, or the CLI -platform selection).
	Platform *PlatformSpec
	// Channel overrides fields of the per-platform DefaultConfig.
	Channel *ChannelSpec
	// Transport overrides fields of the per-platform
	// DefaultTransportConfig (faults kind only).
	Transport *TransportSpec

	// Exactly one of the following sections is set, per Kind.
	StateWalk *StateWalkSpec
	Pipeline  *PipelineSpec
	Sweep     *SweepSpec
	Lanes     *LanesSpec
	Noise     *NoiseSpec
	Faults    *FaultsSpec
	Victim    *VictimSpec

	// Extract defines named typed extractors over the run's report text
	// and metrics; Assert defines pass/fail checks over metrics and
	// extracted values.
	Extract []Extractor
	Assert  []Assertion
}

// Kind names.
const (
	KindStateWalk = "statewalk"
	KindPipeline  = "pipeline"
	KindSweep     = "sweep"
	KindLanes     = "lanes"
	KindNoise     = "noise"
	KindFaults    = "faults"
	KindVictim    = "victim"
)

// Kinds lists the valid Kind values.
func Kinds() []string {
	return []string{KindStateWalk, KindPipeline, KindSweep, KindLanes, KindNoise, KindFaults, KindVictim}
}

// PlatformSpec derives a custom platform from a named base. Zero-valued
// geometry fields inherit the base; pointer fields distinguish "absent"
// from an explicit false/zero.
type PlatformSpec struct {
	// Base is "skylake" (default) or "kabylake".
	Base string
	// Name relabels the platform in output.
	Name string
	// Geometry overrides (0 = inherit base).
	Cores                               int
	FreqGHz                             float64
	L1Sets, L1Ways                      int
	L2Sets, L2Ways                      int
	LLCSlices, LLCSetsPerSlice, LLCWays int
	// LLCPolicy selects the last-level replacement policy: quadage
	// (stock), quadage-countermeasure, lru, bit-plru, tree-plru, srrip
	// or random. Empty inherits the base (stock QuadAge).
	LLCPolicy string
	// Prefetcher switches (absent = inherit base, which is off).
	AdjacentLine   *bool
	StreamPrefetch *bool
	// NonInclusive switches the LLC to the server-part organization.
	NonInclusive *bool
	// LLCPartitionWays enables the way-partitioning defense.
	LLCPartitionWays *int
}

// LLCPolicies lists the valid LLCPolicy values.
func LLCPolicies() []string {
	return []string{"quadage", "quadage-countermeasure", "lru", "bit-plru", "tree-plru", "srrip", "random"}
}

// Config resolves the spec into a concrete platform configuration.
// Validate has already checked Base and LLCPolicy, so Config panics on an
// unvalidated spec rather than failing silently.
func (p *PlatformSpec) Config() hier.Config {
	base := p.Base
	if base == "" {
		base = "skylake"
	}
	cfg, ok := platform.ByName(base)
	if !ok {
		panic("scenario: unvalidated platform base " + base)
	}
	if p.Name != "" {
		cfg.Name = p.Name
	}
	if p.Cores > 0 {
		cfg.Cores = p.Cores
	}
	if p.FreqGHz > 0 {
		cfg.FreqGHz = p.FreqGHz
	}
	setIf := func(dst *int, v int) {
		if v > 0 {
			*dst = v
		}
	}
	setIf(&cfg.L1Sets, p.L1Sets)
	setIf(&cfg.L1Ways, p.L1Ways)
	setIf(&cfg.L2Sets, p.L2Sets)
	setIf(&cfg.L2Ways, p.L2Ways)
	setIf(&cfg.LLCSlices, p.LLCSlices)
	setIf(&cfg.LLCSetsPerSlice, p.LLCSetsPerSlice)
	setIf(&cfg.LLCWays, p.LLCWays)
	if p.LLCPolicy != "" {
		cfg.LLCPolicy = llcPolicy(p.LLCPolicy)
	}
	if p.AdjacentLine != nil {
		cfg.HWPrefetch.AdjacentLine = *p.AdjacentLine
	}
	if p.StreamPrefetch != nil {
		cfg.HWPrefetch.Stream = *p.StreamPrefetch
	}
	if p.NonInclusive != nil {
		cfg.NonInclusive = *p.NonInclusive
	}
	if p.LLCPartitionWays != nil {
		cfg.LLCPartitionWays = *p.LLCPartitionWays
	}
	return cfg
}

func llcPolicy(name string) policy.Policy {
	switch name {
	case "quadage":
		return policy.NewQuadAge()
	case "quadage-countermeasure":
		return policy.NewQuadAgeCountermeasure()
	case "lru":
		return policy.NewLRU()
	case "bit-plru":
		return policy.NewBitPLRU()
	case "tree-plru":
		return policy.NewTreePLRU()
	case "srrip":
		return policy.NewSRRIP()
	case "random":
		return policy.NewRandom(0)
	}
	panic("scenario: unvalidated llc_policy " + name)
}

// ChannelSpec holds sparse overrides over the per-platform calibrated
// channel.DefaultConfig. Every field is a pointer so an explicit zero
// (e.g. noise_period: 0, meaning "no background noise daemon") is
// distinguishable from "inherit the default".
type ChannelSpec struct {
	Interval         *int64
	Sets             *int
	SenderOffset     *int64
	ReceiverOffset   *int64
	ProtocolOverhead *int64
	Start            *int64
	NoisePeriod      *int64
	PrimeWalks       *int
}

// Apply overlays the overrides on base. A nil spec returns base as-is.
func (c *ChannelSpec) Apply(base channel.Config) channel.Config {
	if c == nil {
		return base
	}
	if c.Interval != nil {
		base.Interval = *c.Interval
	}
	if c.Sets != nil {
		base.Sets = *c.Sets
	}
	if c.SenderOffset != nil {
		base.SenderOffset = *c.SenderOffset
	}
	if c.ReceiverOffset != nil {
		base.ReceiverOffset = *c.ReceiverOffset
	}
	if c.ProtocolOverhead != nil {
		base.ProtocolOverhead = *c.ProtocolOverhead
	}
	if c.Start != nil {
		base.Start = *c.Start
	}
	if c.NoisePeriod != nil {
		base.NoisePeriod = *c.NoisePeriod
	}
	if c.PrimeWalks != nil {
		base.PrimeWalks = *c.PrimeWalks
	}
	return base
}

// TransportSpec holds sparse overrides over the per-platform
// channel.DefaultTransportConfig.
type TransportSpec struct {
	Channel      *ChannelSpec
	MaxRetries   *int
	FERWindow    *int
	FERThreshold *float64
}

// Apply overlays the overrides on base. A nil spec returns base as-is.
func (t *TransportSpec) Apply(base channel.TransportConfig) channel.TransportConfig {
	if t == nil {
		return base
	}
	base.Channel = t.Channel.Apply(base.Channel)
	if t.MaxRetries != nil {
		base.MaxRetries = *t.MaxRetries
	}
	if t.FERWindow != nil {
		base.FERWindow = *t.FERWindow
	}
	if t.FERThreshold != nil {
		base.FERThreshold = *t.FERThreshold
	}
	return base
}

// StateWalkSpec renders a Figure 6-style LLC set state walk: the sender
// transmits Message one bit per phase pair, the receiver reads each bit
// with a timed prefetch, and every step snapshots the set.
type StateWalkSpec struct {
	// Message is the bit string to walk through ("10").
	Message string
	// CalibrateSamples sizes the receiver's threshold calibration.
	CalibrateSamples int
	// ReceiverReady is the cycle by which the receiver has prepared the
	// channel; PhaseStep is the spacing between send and read phases.
	ReceiverReady int64
	PhaseStep     int64
}

// PipelineSpec demonstrates the two-set pipelined NTP+NTP schedule
// (Figure 7) on Message.
type PipelineSpec struct {
	Message string
}

// SweepSpec measures capacity and BER across transmission intervals
// (Figure 8) for one or more channels on every platform.
type SweepSpec struct {
	// Bits per transmission (quick mode scales it down).
	Bits int
	// Channels are swept in order; with exactly two, the report adds the
	// peak-vs-peak comparison line.
	Channels []SweepChannel
}

// SweepChannel is one swept channel: a registry key plus its interval
// grid.
type SweepChannel struct {
	// Channel is "ntpntp" or "primeprobe"; it keys the seed derivation,
	// the trace-stream labels and the "<platform>/<channel>_peak_kbps"
	// metrics.
	Channel string
	// Intervals is the cycle grid to sweep.
	Intervals []int64
}

// SweepChannels lists the valid SweepChannel.Channel values.
func SweepChannels() []string { return []string{"ntpntp", "primeprobe"} }

// LanesSpec measures multi-lane NTP+NTP bandwidth scaling: each lane
// count runs at intervals LaneCost*lanes + overhead + offset and the best
// offset wins.
type LanesSpec struct {
	Bits int
	// LaneCounts are the lane widths to measure; each lane occupies two
	// LLC sets, so 2*max(LaneCounts) must fit the LLC sets per slice.
	LaneCounts []int
	// Offsets are interval paddings swept around the expected knee.
	Offsets []int64
	// LaneCost is the per-lane receiver probe budget in cycles.
	LaneCost int64
}

// NoiseSpec measures raw and interleaved-Hamming(7,4) reliability across
// co-tenant noise intensities.
type NoiseSpec struct {
	Bits int
	// Periods are noise-daemon fill periods in cycles (0 = quiet).
	Periods []int64
	// InterleaveDepth is the Hamming(7,4) block-interleave depth.
	InterleaveDepth int
}

// FaultsSpec runs every fault scenario against the raw channel, an
// interleaved-Hamming encoding and the ARQ transport.
type FaultsSpec struct {
	// RawBits per raw/Hamming transmission (quick mode scales it down);
	// ARQBits is the ARQ payload length (fixed, not scaled).
	RawBits int
	ARQBits int
	// InterleaveDepth is the Hamming(7,4) block-interleave depth.
	InterleaveDepth int
	// Scenarios is the injection menu; an empty Faults list means "no
	// injection" (the baseline row).
	Scenarios []FaultScenario
}

// FaultScenario is one line of the injection menu: a key (used for seed
// derivation, trace labels and metric names) plus the faults to compose.
type FaultScenario struct {
	Key    string
	Faults []FaultSpec
}

// Compile builds the composable fault scenario: nil for none, the bare
// scenario for one, a deterministic composite for several — exactly the
// shapes the hand-coded experiments build, so seed derivations match.
func (s FaultScenario) Compile() fault.Scenario {
	switch len(s.Faults) {
	case 0:
		return nil
	case 1:
		return s.Faults[0].Compile()
	}
	parts := make([]fault.Scenario, len(s.Faults))
	for i, f := range s.Faults {
		parts[i] = f.Compile()
	}
	return fault.Compose(parts...)
}

// FaultSpec is one composable fault. Type selects the scenario; only the
// fields that scenario uses may be set (the validator rejects the rest).
type FaultSpec struct {
	// Type is preemption, pollution, clock-drift, timer-spikes or
	// migration.
	Type string
	// Role targets "sender" or "receiver" (default receiver) for the
	// per-agent types.
	Role string
	// Preemption: Count windows of duration uniform in [MinDur, MaxDur].
	Count          int
	MinDur, MaxDur int64
	// Pollution: Bursts × Walks walks with Gap idle cycles per load.
	Bursts, Walks int
	Gap           int64
	// Clock-drift: PPM parts per million.
	PPM int64
	// Timer-spikes: Count windows of Dur cycles adding up to Extra.
	Dur, Extra int64
	// Migration: rescheduling stall in cycles.
	Cost int64
}

// FaultTypes lists the valid FaultSpec.Type values.
func FaultTypes() []string {
	return []string{"preemption", "pollution", "clock-drift", "timer-spikes", "migration"}
}

func faultRole(role string) string {
	if role == "sender" {
		return fault.RoleSender
	}
	return ""
}

// Compile builds the concrete fault scenario. Validate has already
// checked Type, so Compile panics on an unvalidated spec.
func (f FaultSpec) Compile() fault.Scenario {
	switch f.Type {
	case "preemption":
		return fault.Preemption{Role: faultRole(f.Role), Count: f.Count, MinDur: f.MinDur, MaxDur: f.MaxDur}
	case "pollution":
		return fault.Pollution{Bursts: f.Bursts, Walks: f.Walks, Gap: f.Gap}
	case "clock-drift":
		return fault.ClockDrift{Role: faultRole(f.Role), PPM: f.PPM}
	case "timer-spikes":
		return fault.TimerSpikes{Role: faultRole(f.Role), Count: f.Count, Dur: f.Dur, Extra: f.Extra}
	case "migration":
		return fault.Migration{Role: faultRole(f.Role), Cost: f.Cost}
	}
	panic("scenario: unvalidated fault type " + f.Type)
}

// VictimSpec runs a victim program under a spy — no Go code needed to
// express an end-to-end key-recovery scenario.
type VictimSpec struct {
	// Program selects the victim: "aes" (T-table AES under a
	// Flush+Reload T-table spy, first-round elimination analysis).
	Program string
	// Key is the victim's 16-byte AES key as 32 hex characters.
	Key string
	// Encryptions the spy observes.
	Encryptions int
	// Window is the victim's per-encryption cycle budget; Start the
	// cycle of the first encryption.
	Window int64
	Start  int64
}

// VictimPrograms lists the valid VictimSpec.Program values.
func VictimPrograms() []string { return []string{"aes"} }
