package hier

import (
	"fmt"
	"math/rand"

	"leakyway/internal/cache"
	"leakyway/internal/mem"
	"leakyway/internal/policy"
	"leakyway/internal/trace"
)

// Level identifies where in the hierarchy a request was serviced.
type Level int

// Hierarchy levels, nearest first.
const (
	LevelL1 Level = iota
	LevelL2
	LevelLLC
	LevelMem
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelMem:
		return "DRAM"
	}
	return "?"
}

// Result reports the outcome of one memory operation.
type Result struct {
	// Level is where the data was found.
	Level Level
	// Latency is the cycle cost of the operation (jittered).
	Latency int64
	// Dropped is true when an LLC fill could not displace any line
	// because every way was in flight; the data was consumed uncached.
	Dropped bool
}

// Hierarchy is one simulated processor's cache system. It is not
// goroutine-safe; the sim package serializes all access.
type Hierarchy struct {
	cfg Config
	geo *mem.Geometry
	loc *mem.Locator   // memoizing slice/set locator (not goroutine-safe)
	l1  []*cache.Cache // per core
	l2  []*cache.Cache // per core
	llc []*cache.Cache // per slice
	dir []*cache.Cache // coherence directory per slice (non-inclusive mode)
	rng *rand.Rand
	pf  []*corePrefetcher // per core, nil when disabled

	// l1SetMask/l2SetMask are Sets-1 when the set count is a power of two
	// (the common case), avoiding a hardware divide per lookup; -1 falls
	// back to the modulo path.
	l1SetMask, l2SetMask int

	// partMask holds the per-core allowed-way masks under way
	// partitioning; nil when the LLC is unpartitioned.
	partMask []policy.Mask
	// allWaysLLC is the unrestricted LLC fill mask.
	allWaysLLC policy.Mask

	// tr, when non-nil, receives hier events; trAgent/trCore stamp the
	// agent context (see trace.go).
	tr      *trace.Tracer
	trAgent string
	trCore  int
}

// setIndexMask returns sets-1 for power-of-two set counts, else -1.
func setIndexMask(sets int) int {
	if sets&(sets-1) == 0 {
		return sets - 1
	}
	return -1
}

// New builds a hierarchy from the config.
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	geo, err := mem.NewGeometry(cfg.LLCSlices, cfg.LLCSetsPerSlice)
	if err != nil {
		return nil, err
	}
	h := &Hierarchy{
		cfg:        cfg,
		geo:        geo,
		loc:        geo.NewLocator(),
		rng:        rand.New(rand.NewSource(cfg.Seed ^ 0x1ea11e57)),
		trCore:     -1,
		l1SetMask:  setIndexMask(cfg.L1Sets),
		l2SetMask:  setIndexMask(cfg.L2Sets),
		allWaysLLC: policy.AllWays(cfg.LLCWays),
	}
	if n := cfg.LLCPartitionWays; n > 0 {
		h.partMask = make([]policy.Mask, cfg.Cores)
		for c := range h.partMask {
			h.partMask[c] = policy.AllWays((c+1)*n) &^ policy.AllWays(c*n)
		}
	}
	for c := 0; c < cfg.Cores; c++ {
		h.l1 = append(h.l1, cache.New(cache.Config{
			Name: fmt.Sprintf("L1.%d", c), Sets: cfg.L1Sets, Ways: cfg.L1Ways, Pol: cfg.L1Policy,
		}))
		h.l2 = append(h.l2, cache.New(cache.Config{
			Name: fmt.Sprintf("L2.%d", c), Sets: cfg.L2Sets, Ways: cfg.L2Ways, Pol: cfg.L2Policy,
		}))
	}
	for s := 0; s < cfg.LLCSlices; s++ {
		h.llc = append(h.llc, cache.New(cache.Config{
			Name: fmt.Sprintf("LLC.%d", s), Sets: cfg.LLCSetsPerSlice, Ways: cfg.LLCWays, Pol: cfg.LLCPolicy,
		}))
	}
	if cfg.NonInclusive && cfg.DirectoryWays > 0 {
		for s := 0; s < cfg.LLCSlices; s++ {
			h.dir = append(h.dir, cache.New(cache.Config{
				Name: fmt.Sprintf("DIR.%d", s), Sets: cfg.LLCSetsPerSlice, Ways: cfg.DirectoryWays, Pol: policy.NewQuadAge(),
			}))
		}
	}
	if cfg.HWPrefetch.AdjacentLine || cfg.HWPrefetch.Stream {
		h.pf = make([]*corePrefetcher, cfg.Cores)
		for c := range h.pf {
			h.pf[c] = newCorePrefetcher(cfg.HWPrefetch)
		}
	}
	return h, nil
}

// MustNew is New for static configs; it panics on error.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the (defaulted) configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Geometry exposes the LLC mapping.
func (h *Hierarchy) Geometry() *mem.Geometry { return h.geo }

// set-index helpers
func (h *Hierarchy) l1Set(la mem.LineAddr) int {
	if h.l1SetMask >= 0 {
		return int(uint64(la) & uint64(h.l1SetMask))
	}
	return int(uint64(la) % uint64(h.cfg.L1Sets))
}

func (h *Hierarchy) l2Set(la mem.LineAddr) int {
	if h.l2SetMask >= 0 {
		return int(uint64(la) & uint64(h.l2SetMask))
	}
	return int(uint64(la) % uint64(h.cfg.L2Sets))
}

// Lat returns the latency model. The pointer is read-only shared state; it
// lets per-operation costs be read without copying the whole Config.
func (h *Hierarchy) Lat() *LatencyConfig { return &h.cfg.Lat }

func (h *Hierarchy) checkCore(core int) {
	if core < 0 || core >= h.cfg.Cores {
		panic(fmt.Sprintf("hier: core %d out of range [0,%d)", core, h.cfg.Cores))
	}
}

// Load performs a demand load by core at cycle now.
func (h *Hierarchy) Load(core int, pa mem.PAddr, now int64) Result {
	h.checkCore(core)
	la := pa.Line()
	lat := &h.cfg.Lat

	// L1 hit: private hit, no LLC state change (the property Prime+Scope
	// depends on: scoping the candidate from L1 leaves its LLC age alone).
	if h.lookupTraced(h.l1[core], LevelL1, -1, h.l1Set(la), la, policy.ClassLoad, now) {
		return Result{Level: LevelL1, Latency: sample(h.rng, lat.L1Hit, lat.L1Jit)}
	}
	h.hwPrefetch(core, la, now)

	// L2 hit: refill L1 (inheriting the L2 copy's coherence state),
	// still no LLC change.
	if w, ok := h.l2[core].Probe(h.l2Set(la), la); ok {
		st := h.l2[core].Coh(h.l2Set(la), w)
		h.lookupTraced(h.l2[core], LevelL2, -1, h.l2Set(la), la, policy.ClassLoad, now)
		l := sample(h.rng, lat.L2Hit, lat.L2Jit)
		h.fillL1(core, la, policy.ClassLoad, now, now+l)
		h.setPrivCoh(core, la, st)
		return Result{Level: LevelL2, Latency: l}
	}

	// Past the private caches: resolve coherence with the other cores
	// (a remote Modified copy forwards with a latency penalty; any remote
	// copy makes the requester's fill Shared rather than Exclusive).
	extra, sharedRem := h.snoopLoad(core, la)
	st := cache.CohExclusive
	if sharedRem {
		st = cache.CohShared
	}

	// LLC hit: demand hit updates the line's age (decrement), refills the
	// private levels.
	slice, set := h.loc.Locate(la)
	if h.lookupTraced(h.llc[slice], LevelLLC, slice, set, la, policy.ClassLoad, now) {
		l := sample(h.rng, lat.LLCHit, lat.LLCJit) + extra
		h.fillL2(core, la, policy.ClassLoad, now, now+l)
		h.fillL1(core, la, policy.ClassLoad, now, now+l)
		h.setPrivCoh(core, la, st)
		return Result{Level: LevelLLC, Latency: l}
	}

	// DRAM: fill the inclusive LLC first, then the private levels.
	l := sample(h.rng, lat.Mem, lat.MemJit) + extra
	if !h.fillLLC(core, la, policy.ClassLoad, now, now+l) {
		return Result{Level: LevelMem, Latency: l, Dropped: true}
	}
	h.fillL2(core, la, policy.ClassLoad, now, now+l)
	h.fillL1(core, la, policy.ClassLoad, now, now+l)
	h.setPrivCoh(core, la, st)
	return Result{Level: LevelMem, Latency: l}
}

// Store is a demand store: it obtains the line in Modified state. A hit on
// a Shared copy pays a remote-invalidation round; a miss performs a
// read-for-ownership (load + invalidate). The resulting timing differences
// are the coherence side channel of the paper's reference [67].
func (h *Hierarchy) Store(core int, pa mem.PAddr, now int64) Result {
	h.checkCore(core)
	la := pa.Line()
	if w, ok := h.l1[core].Probe(h.l1Set(la), la); ok {
		st := h.l1[core].Coh(h.l1Set(la), w)
		traced := h.tr.On(trace.PkgHier)
		ageBefore := -1
		if traced {
			ageBefore = h.l1[core].AgeOf(h.l1Set(la), w)
		}
		h.l1[core].Touch(h.l1Set(la), w, policy.ClassLoad)
		if traced {
			e := h.hierEvent("hit", LevelL1, -1, h.l1Set(la), now)
			e.Way, e.AgeBefore, e.AgeAfter = w, ageBefore, h.l1[core].AgeOf(h.l1Set(la), w)
			e.Addr, e.Note = uint64(la), "store"
			h.tr.Emit(e)
		}
		l := sample(h.rng, h.cfg.Lat.L1Hit, h.cfg.Lat.L1Jit)
		if st == cache.CohShared {
			l += h.invalidateRemote(core, la)
		}
		h.setPrivCoh(core, la, cache.CohModified)
		return Result{Level: LevelL1, Latency: l}
	}
	res := h.Load(core, pa, now)
	res.Latency += h.invalidateRemote(core, la)
	h.setPrivCoh(core, la, cache.CohModified)
	return res
}

// PrefetchNTA performs a non-temporal software prefetch, the instruction the
// paper reverse-engineers:
//
//   - miss everywhere → the line is installed in the LLC *as the eviction
//     candidate* (quad-age 3; Property #1) and in the requesting core's L1,
//     bypassing L2;
//   - LLC hit → the line's LLC age is NOT updated (Property #2), and the
//     line is pulled into L1;
//   - latency depends on where the line was found (Property #3).
func (h *Hierarchy) PrefetchNTA(core int, pa mem.PAddr, now int64) Result {
	h.checkCore(core)
	la := pa.Line()
	lat := &h.cfg.Lat

	if h.lookupTraced(h.l1[core], LevelL1, -1, h.l1Set(la), la, policy.ClassNTA, now) {
		return Result{Level: LevelL1, Latency: sample(h.rng, lat.L1Hit, lat.L1Jit)}
	}
	if h.lookupTraced(h.l2[core], LevelL2, -1, h.l2Set(la), la, policy.ClassNTA, now) {
		l := sample(h.rng, lat.L2Hit, lat.L2Jit)
		h.fillL1(core, la, policy.ClassNTA, now, now+l)
		return Result{Level: LevelL2, Latency: l}
	}
	slice, set := h.loc.Locate(la)
	if h.lookupTraced(h.llc[slice], LevelLLC, slice, set, la, policy.ClassNTA, now) {
		// ClassNTA hit: QuadAge leaves the age untouched (Property #2).
		l := sample(h.rng, lat.LLCHit, lat.LLCJit)
		h.fillL1(core, la, policy.ClassNTA, now, now+l)
		return Result{Level: LevelLLC, Latency: l}
	}
	l := sample(h.rng, lat.Mem, lat.MemJit)
	if h.cfg.NonInclusive {
		// On non-inclusive parts PREFETCHNTA brings the line only into
		// the requesting core's L1 (and the coherence directory) — the
		// LLC never sees it, which is why NTP+NTP does not transfer to
		// those platforms (Section VI-B).
		h.fillL1(core, la, policy.ClassNTA, now, now+l)
		return Result{Level: LevelMem, Latency: l}
	}
	if !h.fillLLC(core, la, policy.ClassNTA, now, now+l) {
		return Result{Level: LevelMem, Latency: l, Dropped: true}
	}
	h.fillL1(core, la, policy.ClassNTA, now, now+l)
	return Result{Level: LevelMem, Latency: l}
}

// PrefetchT0 performs a temporal software prefetch: identical routing to a
// demand load (fills all levels, normal insertion age), used as a contrast
// in the characterization experiments.
func (h *Hierarchy) PrefetchT0(core int, pa mem.PAddr, now int64) Result {
	h.checkCore(core)
	la := pa.Line()
	lat := &h.cfg.Lat
	if h.lookupTraced(h.l1[core], LevelL1, -1, h.l1Set(la), la, policy.ClassT0, now) {
		return Result{Level: LevelL1, Latency: sample(h.rng, lat.L1Hit, lat.L1Jit)}
	}
	if h.lookupTraced(h.l2[core], LevelL2, -1, h.l2Set(la), la, policy.ClassT0, now) {
		l := sample(h.rng, lat.L2Hit, lat.L2Jit)
		h.fillL1(core, la, policy.ClassT0, now, now+l)
		return Result{Level: LevelL2, Latency: l}
	}
	slice, set := h.loc.Locate(la)
	if h.lookupTraced(h.llc[slice], LevelLLC, slice, set, la, policy.ClassT0, now) {
		l := sample(h.rng, lat.LLCHit, lat.LLCJit)
		h.fillL2(core, la, policy.ClassT0, now, now+l)
		h.fillL1(core, la, policy.ClassT0, now, now+l)
		return Result{Level: LevelLLC, Latency: l}
	}
	l := sample(h.rng, lat.Mem, lat.MemJit)
	if !h.fillLLC(core, la, policy.ClassT0, now, now+l) {
		return Result{Level: LevelMem, Latency: l, Dropped: true}
	}
	h.fillL2(core, la, policy.ClassT0, now, now+l)
	h.fillL1(core, la, policy.ClassT0, now, now+l)
	return Result{Level: LevelMem, Latency: l}
}

// Flush is CLFLUSH: it removes the line from every cache in the system and
// reports a latency that depends on whether (and how) the line was cached,
// which is what Flush+Flush-style timing keys on.
func (h *Hierarchy) Flush(pa mem.PAddr, now int64) Result {
	la := pa.Line()
	lat := &h.cfg.Lat
	present, dirty := false, false
	for c := 0; c < h.cfg.Cores; c++ {
		if p, d := h.l1[c].Invalidate(h.l1Set(la), la); p {
			present, dirty = true, dirty || d
		}
		if p, d := h.l2[c].Invalidate(h.l2Set(la), la); p {
			present, dirty = true, dirty || d
		}
	}
	slice, set := h.loc.Locate(la)
	if p, d := h.llc[slice].Invalidate(set, la); p {
		present, dirty = true, dirty || d
	}
	h.dirDrop(la)
	base := lat.FlushAbsent
	level := LevelMem
	switch {
	case dirty:
		base = lat.FlushDirty
		level = LevelLLC
	case present:
		base = lat.FlushPresent
		level = LevelLLC
	}
	if h.tr.On(trace.PkgHier) {
		e := h.hierEvent("flush", LevelLLC, slice, set, now)
		e.Addr = uint64(la)
		switch {
		case dirty:
			e.Note = "dirty"
		case present:
			e.Note = "present"
		default:
			e.Note = "absent"
		}
		h.tr.Emit(e)
	}
	return Result{Level: level, Latency: sample(h.rng, base, lat.FlushJit)}
}

// FenceLatency returns the cost of an LFENCE.
func (h *Hierarchy) FenceLatency() int64 { return h.cfg.Lat.Fence }

// fillL1 installs la into core's L1 (evictions are silent; a dirty victim
// propagates its dirtiness to an L2/LLC copy when present). The coherence
// directory, when present, tracks the fill.
func (h *Hierarchy) fillL1(core int, la mem.LineAddr, cls policy.AccessClass, now, ready int64) {
	meta := h.fillMeta(h.l1[core], h.l1Set(la))
	ev, evicted, _ := h.l1[core].Fill(h.l1Set(la), la, cls, now, ready)
	h.traceFill(h.l1[core], LevelL1, -1, h.l1Set(la), la, ev, evicted, true, meta, now)
	if evicted && ev.Dirty {
		h.propagateDirty(core, ev.Addr)
	}
	h.dirTouch(la, cls, now, ready)
}

// fillL2 installs la into core's L2 (non-inclusive: evictions do not touch
// the L1).
func (h *Hierarchy) fillL2(core int, la mem.LineAddr, cls policy.AccessClass, now, ready int64) {
	meta := h.fillMeta(h.l2[core], h.l2Set(la))
	ev, evicted, _ := h.l2[core].Fill(h.l2Set(la), la, cls, now, ready)
	h.traceFill(h.l2[core], LevelL2, -1, h.l2Set(la), la, ev, evicted, true, meta, now)
	if evicted && ev.Dirty {
		h.propagateDirty(core, ev.Addr)
	}
}

// propagateDirty marks a written-back victim's outer copy dirty.
func (h *Hierarchy) propagateDirty(core int, la mem.LineAddr) {
	if w, ok := h.l2[core].Probe(h.l2Set(la), la); ok {
		h.l2[core].MarkDirty(h.l2Set(la), w)
		return
	}
	slice, set := h.loc.Locate(la)
	if w, ok := h.llc[slice].Probe(set, la); ok {
		h.llc[slice].MarkDirty(set, w)
	}
}

// fillLLC installs la into the LLC on behalf of core and enforces
// inclusion: the displaced line is back-invalidated from every private
// cache. Under way partitioning the fill is restricted to the core's own
// ways. Returns false when the fill was dropped because no permitted way
// could be replaced.
func (h *Hierarchy) fillLLC(core int, la mem.LineAddr, cls policy.AccessClass, now, ready int64) bool {
	slice, set := h.loc.Locate(la)
	allowed := h.allWaysLLC
	if h.partMask != nil {
		allowed = h.partMask[core]
	}
	meta := h.fillMeta(h.llc[slice], set)
	ev, evicted, ok := h.llc[slice].FillRestricted(set, la, cls, now, ready, allowed)
	h.traceFill(h.llc[slice], LevelLLC, slice, set, la, ev, evicted, ok, meta, now)
	if !ok {
		return false
	}
	if evicted {
		h.backInvalidate(ev.Addr, now)
	}
	return true
}

// backInvalidate removes a line evicted from the inclusive LLC from every
// core's private caches — the mechanism that makes cross-core LLC attacks
// observable at all. Non-inclusive LLCs skip it: private copies outlive the
// LLC line.
func (h *Hierarchy) backInvalidate(la mem.LineAddr, now int64) {
	if h.cfg.NonInclusive {
		return
	}
	traced := h.tr.On(trace.PkgHier)
	for c := 0; c < h.cfg.Cores; c++ {
		p1, _ := h.l1[c].Invalidate(h.l1Set(la), la)
		p2, _ := h.l2[c].Invalidate(h.l2Set(la), la)
		if !traced {
			continue
		}
		if p1 {
			e := h.hierEvent("back-inval", LevelL1, -1, h.l1Set(la), now)
			e.Core, e.Addr = c, uint64(la)
			h.tr.Emit(e)
		}
		if p2 {
			e := h.hierEvent("back-inval", LevelL2, -1, h.l2Set(la), now)
			e.Core, e.Addr = c, uint64(la)
			h.tr.Emit(e)
		}
	}
}
