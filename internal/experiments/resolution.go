package experiments

import (
	"fmt"

	"leakyway/internal/core"
	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
	"leakyway/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "resolution",
		Title: "Extension — temporal resolution: scope hammering vs set probing (Section V-A1)",
		Paper: "Prime+Scope locates a victim access within ≈70 cycles; Prime+Probe's resolution is over 2000 cycles",
		Run:   runResolution,
	})
}

// runResolution measures the delay between a victim access and the
// attacker's detection of it. The scope attacker hammers one L1-resident
// line (~70-cycle granularity); the probing attacker re-walks the whole
// 16-line set per poll (millisecond-class granularity in comparison).
func runResolution(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	trials := ctx.Trials(1000)

	measure := func(scope bool) []int64 {
		m := sim.MustNewMachine(cfg, 1<<30, ctx.Seed)
		attackerAS := m.NewSpace()
		victimAS := m.NewSpace()
		anchor, err := attackerAS.Alloc(mem.PageSize)
		if err != nil {
			failf("resolution", "alloc anchor page", err)
		}
		evset := append([]mem.VAddr{anchor},
			core.MustCongruentLines(m, attackerAS, anchor, cfg.LLCWays-1)...)
		dvs, err := core.CongruentWithLine(m, victimAS, attackerAS.MustTranslate(anchor).Line(), 1)
		if err != nil {
			failf("resolution", "find victim-congruent line", err)
		}
		dv := dvs[0]

		// The victim accesses at jittered times the harness records.
		accesses := make([]int64, 0, trials)
		m.SpawnDaemon("victim", 1, victimAS, func(c *sim.Core) {
			x := uint64(ctx.Seed)*2 + 1
			for {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				c.Spin(9000 + int64(x%5000))
				if res := c.Load(dv); res.Level == hier.LevelMem {
					accesses = append(accesses, c.Now())
				}
			}
		})

		var delays []int64
		m.Spawn("attacker", 0, attackerAS, func(c *sim.Core) {
			th := core.Calibrate(c, 48)
			view := make([]mem.VAddr, len(evset))
			view[0] = evset[0]
			for it := 0; it < trials; it++ {
				for i := 1; i < len(evset); i++ {
					view[i] = evset[1+(i-1+it)%(len(evset)-1)]
				}
				core.PrimePrefetchScopePrepare(c, view, 2)
				deadline := c.Now() + 40_000
				var detected int64
				for c.Now() < deadline {
					if scope {
						// Scope: hammer the candidate line.
						if t := c.TimedLoad(view[0]); t > th.L1Threshold {
							detected = c.Now()
							break
						}
					} else {
						// Probe: walk the whole set and time it.
						var sum int64
						for _, va := range view {
							sum += c.TimedLoad(va)
						}
						if sum > int64(len(view))*(th.L1Threshold+30) {
							detected = c.Now()
							break
						}
					}
				}
				if detected == 0 {
					continue
				}
				// Pair with the most recent victim access.
				var last int64 = -1
				for i := len(accesses) - 1; i >= 0; i-- {
					if accesses[i] <= detected {
						last = accesses[i]
						break
					}
				}
				if last > 0 && detected-last < 30_000 {
					delays = append(delays, detected-last)
				}
			}
		})
		m.Run()
		return delays
	}

	scopeDelays := measure(true)
	probeDelays := measure(false)
	sScope, sProbe := stats.Summarize(scopeDelays), stats.Summarize(probeDelays)
	rows := [][]string{
		{"scope hammering (Prime+Prefetch+Scope)", fmt.Sprintf("%d", sScope.N),
			fmt.Sprintf("%d", sScope.Median), fmt.Sprintf("%d", sScope.P95)},
		{"whole-set probing (Prime+Probe style)", fmt.Sprintf("%d", sProbe.N),
			fmt.Sprintf("%d", sProbe.Median), fmt.Sprintf("%d", sProbe.P95)},
	}
	renderTable(ctx, []string{"detection loop", "events", "median delay (cyc)", "p95 (cyc)"}, rows)
	ctx.Printf("the scope loop pins the victim access to within a couple of loads (paper: ≈70-cycle\n")
	ctx.Printf("granularity); a full-set probe can only bracket it to one whole probe pass\n")
	res.Metric("scope_median_delay", float64(sScope.Median))
	res.Metric("probe_median_delay", float64(sProbe.Median))
	return res, nil
}
