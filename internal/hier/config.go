// Package hier composes generic caches into the Intel client hierarchy the
// paper targets: per-core private L1 and non-inclusive L2, plus a shared,
// sliced, inclusive LLC running quad-age pseudo-LRU. It implements the
// memory operations the attacks are written in terms of — demand loads and
// stores, PREFETCHNTA, PREFETCHT0, and CLFLUSH — with per-level latencies,
// in-flight fill windows, back-invalidation, and optional hardware
// prefetchers.
package hier

import (
	"fmt"

	"leakyway/internal/policy"
)

// Config describes one simulated processor.
type Config struct {
	// Name labels the platform in output ("Skylake (i7-6700)").
	Name string
	// Cores is the number of physical cores (each with private L1/L2).
	Cores int
	// FreqGHz converts cycles to wall-clock time for bandwidth numbers.
	FreqGHz float64

	// L1 geometry (per core).
	L1Sets, L1Ways int
	// L2 geometry (per core).
	L2Sets, L2Ways int
	// LLC geometry: Slices × LLCSetsPerSlice sets, LLCWays ways.
	LLCSlices, LLCSetsPerSlice, LLCWays int

	// Replacement policies. Nil fields default to Tree-PLRU (L1),
	// Bit-PLRU (L2) and stock QuadAge (LLC).
	L1Policy, L2Policy, LLCPolicy policy.Policy

	// Lat is the latency model.
	Lat LatencyConfig

	// HWPrefetch enables the adjacent-line and stream prefetchers.
	HWPrefetch HWPrefetchConfig

	// NonInclusive switches the LLC to a non-inclusive organization, as
	// on Intel server parts (Section VI-B of the paper): PREFETCHNTA
	// brings data only into the requesting core's L1, and LLC evictions
	// no longer back-invalidate private caches. The paper's attacks
	// "cannot directly work" on such parts; the experiment suite
	// demonstrates exactly that.
	NonInclusive bool

	// DirectoryWays, when positive on a non-inclusive configuration, adds
	// a sliced coherence directory with that associativity (sets follow
	// the LLC geometry). Directory evictions back-invalidate private
	// copies.
	DirectoryWays int
	// DirectoryNTAIsVictim enables the paper's Section VI-B conjecture:
	// PREFETCHNTA entries are installed in the directory as the eviction
	// candidate, enabling a directory version of NTP+NTP.
	DirectoryNTAIsVictim bool

	// LLCPartitionWays, when positive, way-partitions the LLC as an
	// isolation defense: core c may only fill (and therefore evict) ways
	// [c*N, (c+1)*N). Cores can still *hit* any way, so shared read-only
	// data keeps working, but cross-core eviction — the primitive behind
	// every conflict-based attack in the paper — becomes impossible.
	LLCPartitionWays int

	// Seed drives latency jitter (and nothing else in this package).
	Seed int64
}

// HWPrefetchConfig controls the hardware prefetchers. Both default off,
// matching the paper's reverse-engineering methodology; attack experiments
// can switch them on since their access patterns avoid triggering them.
type HWPrefetchConfig struct {
	// AdjacentLine pairs each miss with a prefetch of its 128-byte buddy.
	AdjacentLine bool
	// Stream detects ascending unit-stride line streams within a page and
	// runs ahead of them.
	Stream bool
	// StreamDepth is how many lines ahead the stream prefetcher issues.
	StreamDepth int
}

// Validate checks structural invariants before building a hierarchy.
func (c *Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("hier: Cores must be positive, got %d", c.Cores)
	}
	for _, g := range []struct {
		name string
		v    int
	}{
		{"L1Sets", c.L1Sets}, {"L1Ways", c.L1Ways},
		{"L2Sets", c.L2Sets}, {"L2Ways", c.L2Ways},
		{"LLCSlices", c.LLCSlices}, {"LLCSetsPerSlice", c.LLCSetsPerSlice}, {"LLCWays", c.LLCWays},
	} {
		if g.v <= 0 {
			return fmt.Errorf("hier: %s must be positive, got %d", g.name, g.v)
		}
	}
	if c.FreqGHz <= 0 {
		return fmt.Errorf("hier: FreqGHz must be positive, got %g", c.FreqGHz)
	}
	if c.DirectoryWays < 0 {
		return fmt.Errorf("hier: DirectoryWays must be non-negative, got %d", c.DirectoryWays)
	}
	if c.DirectoryWays > 0 && !c.NonInclusive {
		return fmt.Errorf("hier: a coherence directory requires NonInclusive mode")
	}
	if c.LLCPartitionWays < 0 {
		return fmt.Errorf("hier: LLCPartitionWays must be non-negative, got %d", c.LLCPartitionWays)
	}
	if c.LLCPartitionWays > 0 && c.LLCPartitionWays*c.Cores > c.LLCWays {
		return fmt.Errorf("hier: partition of %d ways x %d cores exceeds %d LLC ways",
			c.LLCPartitionWays, c.Cores, c.LLCWays)
	}
	return nil
}

// withDefaults fills in the default policies.
func (c Config) withDefaults() Config {
	if c.L1Policy == nil {
		c.L1Policy = policy.NewTreePLRU()
	}
	if c.L2Policy == nil {
		c.L2Policy = policy.NewBitPLRU()
	}
	if c.LLCPolicy == nil {
		c.LLCPolicy = policy.NewQuadAge()
	}
	if c.HWPrefetch.StreamDepth == 0 {
		c.HWPrefetch.StreamDepth = 2
	}
	return c
}
