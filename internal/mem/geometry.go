package mem

import (
	"fmt"
	"math/bits"
)

// Geometry describes how a physical line address maps onto a sliced,
// set-associative last-level cache. Client Intel parts distribute lines over
// one slice per core using an undocumented hash of the high address bits;
// within a slice, the set index is the low bits of the line address.
//
// The simulator uses an XOR-tree hash of the same shape as the
// reverse-engineered Intel functions: each slice-select bit is the parity of
// the line address ANDed with a per-bit mask. The exact masks are not the
// published Intel ones (they differ per SKU anyway); what matters for every
// experiment in the paper is that the hash is a fixed, attacker-opaque
// function that spreads adjacent lines across slices.
type Geometry struct {
	Slices       int // number of LLC slices (power of two)
	SetsPerSlice int // sets in each slice (power of two)
	sliceMasks   []uint64
}

// NewGeometry builds the geometry and its slice hash. Both arguments must be
// powers of two; Slices may be 1, in which case the hash is unused.
func NewGeometry(slices, setsPerSlice int) (*Geometry, error) {
	if slices <= 0 || bits.OnesCount(uint(slices)) != 1 {
		return nil, fmt.Errorf("mem: slices must be a positive power of two, got %d", slices)
	}
	if setsPerSlice <= 0 || bits.OnesCount(uint(setsPerSlice)) != 1 {
		return nil, fmt.Errorf("mem: setsPerSlice must be a positive power of two, got %d", setsPerSlice)
	}
	g := &Geometry{Slices: slices, SetsPerSlice: setsPerSlice}
	// Fixed masks in the spirit of the reverse-engineered Skylake hash
	// (Maurice et al.): parities over spread-out high bits of the line
	// address. Up to 3 slice bits supported (8 slices), enough for any
	// client part in the paper.
	allMasks := []uint64{
		0x1b5f575440, // slice bit 0
		0x2eb5faa880, // slice bit 1
		0x3cccc93100, // slice bit 2
	}
	nbits := bits.TrailingZeros(uint(slices))
	if nbits > len(allMasks) {
		return nil, fmt.Errorf("mem: at most %d slice bits supported, got %d", len(allMasks), nbits)
	}
	g.sliceMasks = allMasks[:nbits]
	return g, nil
}

// MustGeometry is NewGeometry for static configurations; it panics on error.
func MustGeometry(slices, setsPerSlice int) *Geometry {
	g, err := NewGeometry(slices, setsPerSlice)
	if err != nil {
		panic(err)
	}
	return g
}

// Slice returns the LLC slice the line maps to.
func (g *Geometry) Slice(la LineAddr) int {
	s := 0
	for i, m := range g.sliceMasks {
		s |= int(bits.OnesCount64(uint64(la<<LineBits)&m)&1) << i
	}
	return s
}

// Set returns the set index within the line's slice.
func (g *Geometry) Set(la LineAddr) int {
	return int(uint64(la) & uint64(g.SetsPerSlice-1))
}

// Locate returns both coordinates at once.
func (g *Geometry) Locate(la LineAddr) (slice, set int) {
	return g.Slice(la), g.Set(la)
}

// Congruent reports whether two lines map to the same slice and set, i.e.
// whether they can conflict in the LLC.
func (g *Geometry) Congruent(a, b LineAddr) bool {
	return g.Set(a) == g.Set(b) && g.Slice(a) == g.Slice(b)
}

// SetIndexBits returns how many of a line address's low bits select the set.
func (g *Geometry) SetIndexBits() int {
	return bits.TrailingZeros(uint(g.SetsPerSlice))
}

// PageKnownSetBits reports how many set-index bits are controlled by the
// page offset (known to an unprivileged attacker). With 4 KiB pages and
// 64-byte lines the page offset fixes 6 line-address bits.
func (g *Geometry) PageKnownSetBits() int {
	known := PageBits - LineBits
	if idx := g.SetIndexBits(); idx < known {
		return idx
	}
	return known
}
