package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"leakyway/internal/telemetry"
)

// The journal is the daemon's write-ahead log: every accepted job is
// appended and fsynced BEFORE the client sees its 202, and every terminal
// transition is appended when it happens. After a crash, replaying the
// journal reconstructs the job table; accepted jobs without a terminal
// record are re-enqueued, so an acknowledged submission is never lost.
//
// Format: JSONL, one entry per line. A torn final line (the write the
// crash interrupted) is skipped on replay — it can only be an entry whose
// effect was never acknowledged.

// Journal ops.
const (
	opAccept = "accept" // job accepted: ID, Key, Sub
	opDone   = "done"   // result stored under Key
	opFail   = "fail"   // retries exhausted: Err
	opCancel = "cancel" // canceled by the client
	opClean  = "clean"  // clean shutdown marker (drain completed)
)

type journalEntry struct {
	Op  string      `json:"op"`
	ID  string      `json:"id,omitempty"`
	Key string      `json:"key,omitempty"`
	Err string      `json:"err,omitempty"`
	Sub *Submission `json:"sub,omitempty"`
}

// Journal appends entries to a file, fsyncing each append. Methods are
// not goroutine-safe; the server serializes access under its own lock.
type Journal struct {
	f    *os.File
	path string
	// fsyncHist, when set, observes each Append's write+fsync latency —
	// the daemon wires it to leakywayd_wal_fsync_seconds. Fsync stalls
	// are the journal's dominant cost, so this is the histogram to watch
	// when admission latency climbs.
	fsyncHist *telemetry.Histogram
}

// replayJournal reads every parseable entry. Unparseable lines are
// tolerated only at the tail (a torn final write); garbage earlier in the
// file is corruption and fails the replay.
func replayJournal(path string) ([]journalEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	var entries []journalEntry
	torn := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			torn = true
			continue
		}
		if torn {
			return nil, fmt.Errorf("journal: corrupt entry before end of %s", path)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return entries, nil
}

// rewriteJournal writes a compacted journal (temp file + fsync + rename)
// and opens it for appending. Compaction happens at startup, after
// replay: the new journal carries exactly the live state, so the file
// cannot grow without bound across restarts.
func rewriteJournal(path string, entries []journalEntry) (*Journal, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, e := range entries {
		b, err := json.Marshal(&e)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: %w", err)
		}
		w.Write(b)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	syncDir(filepath.Dir(path))
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: af, path: path}, nil
}

// Append writes one entry and fsyncs. The caller must not consider the
// entry's effect durable (and must not ack a client) until Append
// returns nil.
func (j *Journal) Append(e journalEntry) error {
	b, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	b = append(b, '\n')
	start := time.Now()
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.fsyncHist != nil {
		j.fsyncHist.ObserveSince(start)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// syncDir fsyncs a directory so a rename within it is durable;
// best-effort, as not every filesystem supports it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
