package mem

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrOutOfMemory is returned when the physical frame pool is exhausted.
var ErrOutOfMemory = errors.New("mem: out of physical frames")

// PhysMem is a pool of physical page frames handed out in a randomized
// order, modelling an OS page allocator as seen by an unprivileged process:
// consecutive virtual pages land on effectively random physical frames, so
// the LLC set index bits above the page offset are unpredictable.
//
// PhysMem is deterministic for a given seed.
type PhysMem struct {
	// frames is the shuffled free list. Frame numbers are stored narrow
	// (machine construction is shuffle-bandwidth bound in experiment
	// sweeps); uint32 covers pools up to 16 TiB.
	frames []uint32
	next   int    // next index into frames to hand out
	synth  uint64 // next synthetic frame for contiguous reservations
}

// NewPhysMem creates a pool with the given total size in bytes (rounded down
// to whole pages), shuffled with the given seed.
func NewPhysMem(totalBytes uint64, seed int64) *PhysMem {
	n := totalBytes / PageSize
	if n > 1<<32 {
		panic(fmt.Sprintf("mem: NewPhysMem(%d): pool exceeds 16 TiB frame limit", totalBytes))
	}
	frames := make([]uint32, n)
	for i := range frames {
		frames[i] = uint32(i)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(frames), func(i, j int) {
		frames[i], frames[j] = frames[j], frames[i]
	})
	return &PhysMem{frames: frames, synth: n}
}

// TotalFrames reports the pool capacity in frames.
func (pm *PhysMem) TotalFrames() int { return len(pm.frames) }

// FreeFrames reports how many frames remain allocatable.
func (pm *PhysMem) FreeFrames() int { return len(pm.frames) - pm.next }

// AllocFrame hands out the next randomized frame number.
func (pm *PhysMem) AllocFrame() (uint64, error) {
	if pm.next >= len(pm.frames) {
		return 0, ErrOutOfMemory
	}
	f := uint64(pm.frames[pm.next])
	pm.next++
	return f, nil
}

// AllocContiguous reserves n physically contiguous frames and returns the
// first frame number. Real attackers can sometimes obtain these via huge
// pages; a few experiments use it to bypass eviction-set construction when
// congruence discovery itself is not the thing under test.
//
// The reservation is synthesized past the end of the randomized pool, which
// models a huge-page region: only the set-index bits of the resulting
// addresses matter, and they remain well-formed.
func (pm *PhysMem) AllocContiguous(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mem: AllocContiguous(%d): n must be positive", n)
	}
	base := pm.synth
	pm.synth += uint64(n)
	return base, nil
}
