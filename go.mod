module leakyway

go 1.23
