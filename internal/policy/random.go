package policy

import "math/rand"

// Random evicts a uniformly random evictable way. Deterministic for a given
// seed; used as the weakest baseline in policy-comparison experiments.
type Random struct {
	Seed int64
}

// NewRandom returns the policy with the given seed.
func NewRandom(seed int64) *Random { return &Random{Seed: seed} }

// Name implements Policy.
func (*Random) Name() string { return "random" }

// NewSet implements Policy.
func (p *Random) NewSet(ways int) SetState {
	return &randomSet{ways: ways, seed: p.Seed, rng: rand.New(rand.NewSource(p.Seed))}
}

type randomSet struct {
	ways int
	seed int64
	rng  *rand.Rand
}

// Victim implements SetState. The draw is Intn over the candidate count —
// the same RNG consumption as the historical slice-building version, so
// seeded runs stay byte-identical — followed by a second scan selecting
// the k-th evictable way without allocating.
func (s *randomSet) Victim(evictable Mask) int {
	count := 0
	for way := 0; way < s.ways; way++ {
		if evictable.Has(way) {
			count++
		}
	}
	if count == 0 {
		return -1
	}
	k := s.rng.Intn(count)
	for way := 0; way < s.ways; way++ {
		if evictable.Has(way) {
			if k == 0 {
				return way
			}
			k--
		}
	}
	return -1
}

// OnFill implements SetState.
func (*randomSet) OnFill(int, AccessClass) {}

// OnHit implements SetState.
func (*randomSet) OnHit(int, AccessClass) {}

// OnInvalidate implements SetState.
func (*randomSet) OnInvalidate(int) {}

// AgeAt implements SetState.
func (*randomSet) AgeAt(int) int { return 0 }

// Reset implements SetState: rewind the victim stream to its seed so a
// recycled set draws the same eviction sequence as a fresh one.
func (s *randomSet) Reset() { s.rng.Seed(s.seed) }

// Snapshot implements SetState.
func (s *randomSet) Snapshot() []int { return make([]int, s.ways) }
