package scenario

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestMarshalRoundTrip is the marshaller's contract: for any valid Spec,
// Parse(Marshal(s)) is deeply equal to s, and Marshal is stable (a second
// marshal of the reparsed spec is byte-identical). The generator below
// draws random valid specs across every kind, every optional section and
// the string edge cases the emitter has to quote.
func TestMarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		s := genSpec(r)
		if err := s.Validate("gen.yaml"); err != nil {
			t.Fatalf("spec %d: generator produced an invalid spec: %v\n%#v", i, err, s)
		}
		m1 := Marshal(s)
		parsed, err := Parse(m1, "gen.yaml")
		if err != nil {
			t.Fatalf("spec %d: marshalled spec does not reparse: %v\n%s", i, err, m1)
		}
		if !reflect.DeepEqual(parsed, s) {
			t.Fatalf("spec %d: round-trip mismatch\nmarshalled:\n%s\nwant: %#v\ngot:  %#v",
				i, m1, s, parsed)
		}
		if m2 := Marshal(parsed); !bytes.Equal(m1, m2) {
			t.Fatalf("spec %d: Marshal is not stable\nfirst:\n%s\nsecond:\n%s", i, m1, m2)
		}
	}
}

// titlePool holds strings that exercise every quoting decision in
// renderString: plain, numeric-looking, bool-looking, flow-marker-led,
// comment-bearing, whitespace-edged, multi-line and non-ASCII.
var titlePool = []string{
	"Plain title",
	"Figure 8 — capacity sweep ✓",
	"colon: inside a value",
	"-leading dash",
	"123",
	"2.5",
	"true",
	"null",
	"  padded  ",
	"tab\tand\nnewline",
	"[flow-looking]",
	"has # a comment marker",
	"value#nospace",
	"'single quoted'",
	`"double quoted"`,
}

func pick(r *rand.Rand, pool []string) string { return pool[r.Intn(len(pool))] }

func genID(r *rand.Rand, prefix string) string {
	return fmt.Sprintf("%s%d", prefix, r.Intn(1000))
}

func genBits(r *rand.Rand) string {
	n := 1 + r.Intn(8)
	b := make([]byte, n)
	for i := range b {
		b[i] = '0' + byte(r.Intn(2))
	}
	return string(b)
}

func i64ptr(v int64) *int64     { return &v }
func intptr(v int) *int         { return &v }
func f64ptr(v float64) *float64 { return &v }
func boolptr(v bool) *bool      { return &v }

func genSpec(r *rand.Rand) *Spec {
	kinds := Kinds()
	s := &Spec{
		ID:    genID(r, "gen-"),
		Title: pick(r, titlePool),
		Kind:  kinds[r.Intn(len(kinds))],
	}
	if r.Intn(2) == 0 {
		s.Paper = pick(r, titlePool)
	}
	if r.Intn(3) == 0 {
		s.Platform = genPlatform(r)
	}
	if r.Intn(3) == 0 {
		s.Channel = genChannel(r, 8000)
	}
	switch s.Kind {
	case KindStateWalk:
		s.StateWalk = &StateWalkSpec{
			Message:          genBits(r),
			CalibrateSamples: 1 + r.Intn(64),
			ReceiverReady:    1 + int64(r.Intn(100000)),
			PhaseStep:        1 + int64(r.Intn(10000)),
		}
	case KindPipeline:
		s.Pipeline = &PipelineSpec{Message: genBits(r)}
	case KindSweep:
		s.Sweep = genSweep(r)
	case KindLanes:
		s.Lanes = genLanes(r)
	case KindNoise:
		s.Noise = genNoise(r)
	case KindFaults:
		s.Faults = genFaults(r)
		if r.Intn(2) == 0 {
			s.Transport = genTransport(r)
		}
	case KindVictim:
		s.Victim = genVictim(r)
	}
	genExtractAssert(r, s)
	return s
}

func genPlatform(r *rand.Rand) *PlatformSpec {
	p := &PlatformSpec{}
	p.Base = []string{"", "skylake", "kabylake"}[r.Intn(3)]
	if r.Intn(3) == 0 {
		p.Name = pick(r, titlePool)
	}
	if r.Intn(3) == 0 {
		p.Cores = 1 + r.Intn(8)
	}
	if r.Intn(3) == 0 {
		p.FreqGHz = []float64{2.5, 3.4, 4.2}[r.Intn(3)]
	}
	if r.Intn(3) == 0 {
		p.L1Sets = 64
	}
	if r.Intn(3) == 0 {
		p.LLCWays = []int{12, 16}[r.Intn(2)]
	}
	if r.Intn(3) == 0 {
		p.LLCSetsPerSlice = 1024
	}
	if r.Intn(3) == 0 {
		p.LLCPolicy = LLCPolicies()[r.Intn(len(LLCPolicies()))]
	}
	if r.Intn(3) == 0 {
		p.AdjacentLine = boolptr(r.Intn(2) == 0)
	}
	if r.Intn(3) == 0 {
		p.StreamPrefetch = boolptr(r.Intn(2) == 0)
	}
	if r.Intn(3) == 0 {
		p.NonInclusive = boolptr(r.Intn(2) == 0)
	}
	if r.Intn(3) == 0 {
		p.LLCPartitionWays = intptr(r.Intn(5))
	}
	if reflect.DeepEqual(p, &PlatformSpec{}) {
		// An all-default override marshals to a bare "platform:" key,
		// which the strict parser rejects; always override something.
		p.Base = "kabylake"
	}
	return p
}

// genChannel draws a sparse override set that stays valid on both paper
// platforms (offsets below every default interval, intervals above
// minInterval so the same generator serves transport channels too).
func genChannel(r *rand.Rand, minInterval int64) *ChannelSpec {
	c := &ChannelSpec{}
	if r.Intn(2) == 0 {
		c.Interval = i64ptr(minInterval + int64(r.Intn(30000)))
	}
	if r.Intn(3) == 0 {
		c.Sets = intptr(1 + r.Intn(2))
	}
	if r.Intn(3) == 0 {
		c.SenderOffset = i64ptr(int64(r.Intn(400)))
	}
	if r.Intn(3) == 0 {
		c.ReceiverOffset = i64ptr(int64(r.Intn(400)))
	}
	if r.Intn(3) == 0 {
		c.ProtocolOverhead = i64ptr(int64(r.Intn(500)))
	}
	if r.Intn(3) == 0 {
		c.Start = i64ptr(int64(r.Intn(100000)))
	}
	if r.Intn(2) == 0 {
		// Explicit zero must survive the round trip (pointer semantics).
		c.NoisePeriod = i64ptr([]int64{0, 15000, 40000}[r.Intn(3)])
	}
	if r.Intn(3) == 0 {
		c.PrimeWalks = intptr(1 + r.Intn(3))
	}
	if reflect.DeepEqual(c, &ChannelSpec{}) {
		c.NoisePeriod = i64ptr(0)
	}
	return c
}

func genTransport(r *rand.Rand) *TransportSpec {
	t := &TransportSpec{}
	if r.Intn(2) == 0 {
		// Transport intervals must clear the calibrated re-prime minimum.
		t.Channel = genChannel(r, 20000)
	}
	if r.Intn(2) == 0 {
		t.MaxRetries = intptr(r.Intn(6))
	}
	if r.Intn(2) == 0 {
		t.FERWindow = intptr(1 + r.Intn(20))
	}
	if r.Intn(2) == 0 {
		t.FERThreshold = f64ptr([]float64{0.25, 0.5, 1}[r.Intn(3)])
	}
	if reflect.DeepEqual(t, &TransportSpec{}) {
		t.MaxRetries = intptr(3)
	}
	return t
}

func genSweep(r *rand.Rand) *SweepSpec {
	names := SweepChannels()
	n := 1 + r.Intn(len(names))
	chans := make([]SweepChannel, n)
	for i := 0; i < n; i++ {
		iv := make([]int64, 1+r.Intn(4))
		for j := range iv {
			iv[j] = 900 + int64(r.Intn(20000))
		}
		chans[i] = SweepChannel{Channel: names[i], Intervals: iv}
	}
	return &SweepSpec{Bits: 1 + r.Intn(500), Channels: chans}
}

func genLanes(r *rand.Rand) *LanesSpec {
	counts := []int{1, 2, 4, 8}[:1+r.Intn(4)]
	offsets := make([]int64, 1+r.Intn(3))
	for i := range offsets {
		offsets[i] = int64(r.Intn(1000))
	}
	return &LanesSpec{
		Bits:       1 + r.Intn(500),
		LaneCounts: counts,
		Offsets:    offsets,
		LaneCost:   1 + int64(r.Intn(500)),
	}
}

func genNoise(r *rand.Rand) *NoiseSpec {
	periods := []int64{0, 400000, 100000, 40000, 15000}[:1+r.Intn(5)]
	return &NoiseSpec{
		Bits:            1 + r.Intn(500),
		Periods:         periods,
		InterleaveDepth: 1 + r.Intn(56),
	}
}

func genFaults(r *rand.Rand) *FaultsSpec {
	f := &FaultsSpec{
		RawBits:         1 + r.Intn(200),
		ARQBits:         1 + r.Intn(64),
		InterleaveDepth: 1 + r.Intn(56),
	}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		sc := FaultScenario{Key: fmt.Sprintf("s%d", i)}
		// Distinct types per scenario keep composed fault names unique.
		types := append([]string(nil), FaultTypes()...)
		r.Shuffle(len(types), func(a, b int) { types[a], types[b] = types[b], types[a] })
		for _, typ := range types[:r.Intn(3)] {
			sc.Faults = append(sc.Faults, genFault(r, typ))
		}
		f.Scenarios = append(f.Scenarios, sc)
	}
	return f
}

func genFault(r *rand.Rand, typ string) FaultSpec {
	f := FaultSpec{Type: typ}
	role := func() string { return []string{"", "sender", "receiver"}[r.Intn(3)] }
	switch typ {
	case "preemption":
		f.Role = role()
		f.Count = 1 + r.Intn(4)
		f.MinDur = int64(10 + r.Intn(50))
		f.MaxDur = f.MinDur + int64(r.Intn(100))
	case "pollution":
		f.Bursts = 1 + r.Intn(4)
		f.Walks = 1 + r.Intn(4)
		f.Gap = int64(r.Intn(100))
	case "clock-drift":
		f.Role = role()
		f.PPM = int64(100+r.Intn(8000)) * int64(1-2*r.Intn(2))
	case "timer-spikes":
		f.Role = role()
		f.Count = 1 + r.Intn(4)
		f.Dur = 1 + int64(r.Intn(1000))
		f.Extra = int64(r.Intn(500))
	case "migration":
		f.Role = role()
		f.Cost = 1 + int64(r.Intn(100000))
	}
	return f
}

func genVictim(r *rand.Rand) *VictimSpec {
	key := make([]byte, 16)
	r.Read(key)
	return &VictimSpec{
		Program:     "aes",
		Key:         fmt.Sprintf("%x", key),
		Encryptions: 1 + r.Intn(50),
		Window:      1 + int64(r.Intn(10000)),
		Start:       1 + int64(r.Intn(10000)),
	}
}

func genExtractAssert(r *rand.Rand, s *Spec) {
	n := r.Intn(3)
	for i := 0; i < n; i++ {
		x := Extractor{Name: fmt.Sprintf("x%d", i)}
		if r.Intn(2) == 0 {
			x.Type = "regex"
			x.Pattern = `peak \((\d+\.\d)x\)`
			if r.Intn(2) == 0 {
				x.Group = 1
			}
		} else {
			x.Type = "metric"
			x.Metric = "m/" + x.Name
		}
		s.Extract = append(s.Extract, x)
	}
	m := r.Intn(3)
	for i := 0; i < m; i++ {
		a := Assertion{Op: AssertionOps()[r.Intn(len(AssertionOps()))]}
		if len(s.Extract) > 0 && r.Intn(2) == 0 {
			a.Extract = s.Extract[r.Intn(len(s.Extract))].Name
		} else {
			a.Metric = fmt.Sprintf("metric_%d", i)
		}
		a.Value = float64(r.Intn(1000)) * r.Float64()
		switch a.Op {
		case "between":
			a.Max = a.Value + r.Float64()*10
		case "approx":
			a.Tol = 0.001 + r.Float64()
		}
		s.Assert = append(s.Assert, a)
	}
}
