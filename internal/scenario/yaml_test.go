package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseYAMLScalars pins the scalar typing rules the schema relies on.
func TestParseYAMLScalars(t *testing.T) {
	cases := []struct {
		in   string
		want any
	}{
		{"key: null", nil},
		{"key: ~", nil},
		{"key:", nil},
		{"key: true", true},
		{"key: false", false},
		{"key: 42", int64(42)},
		{"key: -8000", int64(-8000)},
		{"key: 2.5", 2.5},
		{"key: 3e4", 3e4},
		{"key: hello", "hello"},
		{"key: 3fa", "3fa"},      // digit-led but not numeric
		{"key: \"10\"", "10"},    // quoting defeats numeric typing
		{"key: 'it''s'", "it's"}, // single-quote escaping
		{"key: a: b", "a: b"},    // colon inside a value
		{"key: value # trailing comment", "value"},
		{"key: [1, 2, 3]", []any{int64(1), int64(2), int64(3)}},
		{"key: []", []any{}},
		{"key: [a, \"2\"]", []any{"a", "2"}},
	}
	for _, tc := range cases {
		root, err := parseYAML([]byte(tc.in), "t.yaml")
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		got := root.(map[string]any)["key"]
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%q: got %#v (%T), want %#v (%T)", tc.in, got, got, tc.want, tc.want)
		}
	}
}

// TestParseYAMLStructure covers nesting: block mappings, block sequences,
// inline "- key: value" items, and comment/blank-line handling.
func TestParseYAMLStructure(t *testing.T) {
	doc := `# leading comment
top: 1

nested:
  a: x
  b:
    - item1
    - item2
items:
  - key: k1
    val: 1
  - key: k2
    val: 2
`
	root, err := parseYAML([]byte(doc), "t.yaml")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"top": int64(1),
		"nested": map[string]any{
			"a": "x",
			"b": []any{"item1", "item2"},
		},
		"items": []any{
			map[string]any{"key": "k1", "val": int64(1)},
			map[string]any{"key": "k2", "val": int64(2)},
		},
	}
	if !reflect.DeepEqual(root, want) {
		t.Fatalf("got %#v\nwant %#v", root, want)
	}
}

// TestParseYAMLErrors: every rejected construct must carry file:line
// context so template authors can find the offending line.
func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantLine, wantMsg string
	}{
		{"empty document", "# only a comment\n", "t.yaml", "empty document"},
		{"tab indent", "a: 1\n\tb: 2\n", "t.yaml:2", "tab in indentation"},
		{"multi-document", "a: 1\n---\nb: 2\n", "t.yaml:2", "multi-document"},
		{"duplicate key", "a: 1\na: 2\n", "t.yaml:2", "duplicate key"},
		{"missing space after colon", "a:1\n", "t.yaml:1", "missing space"},
		{"invalid key", "a b: 1\n", "t.yaml:1", "invalid key"},
		{"bare text", "just words\n", "t.yaml:1", `expected "key: value"`},
		{"sequence in mapping", "a: 1\n- b\n", "t.yaml:2", "sequence item in a mapping"},
		{"over-indent", "a: 1\n    b: 2\n", "t.yaml:2", "unexpected indentation"},
		{"under-indent tail", "a:\n  b: 1\n c: 2\n", "t.yaml:3", "unexpected indentation"},
		{"unterminated flow", "a: [1, 2\n", "t.yaml:1", "unterminated flow"},
		{"nested flow", "a: [[1], 2]\n", "t.yaml:1", "nested flow collections"},
		{"bad quoted string", "a: \"oops\n", "t.yaml:1", "bad quoted string"},
		{"unterminated single quote", "a: 'oops\n", "t.yaml:1", "unterminated single-quoted"},
		{"unsupported construct", "a: {b: 1}\n", "t.yaml:1", "unsupported YAML construct"},
		{"unsupported anchor", "a: &anchor\n", "t.yaml:1", "unsupported YAML construct"},
		{"malformed number", "a: 1.2.3\n", "t.yaml:1", "malformed number"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.doc), "t.yaml")
			if err == nil {
				t.Fatalf("accepted %q", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Errorf("error lacks location %q: %v", tc.wantLine, err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error lacks %q: %v", tc.wantMsg, err)
			}
		})
	}
}

// TestStripComment pins the quote-awareness of comment stripping.
func TestStripComment(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{"value # comment", "value"},
		{"value#nospace", "value#nospace"},
		{`"a # b"`, `"a # b"`},
		{"'a # b'", "'a # b'"},
		{`"quoted" # comment`, `"quoted"`},
	}
	for _, tc := range cases {
		if got := stripComment(tc.in); got != tc.want {
			t.Errorf("stripComment(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
