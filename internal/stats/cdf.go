package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over int64 samples, the form
// in which the paper presents its latency comparisons (Figures 11 and 12).
type CDF struct {
	sorted []int64
}

// NewCDF builds the CDF from a sample (copied).
func NewCDF(samples []int64) *CDF {
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x int64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the value at cumulative probability q in [0,1].
func (c *CDF) Quantile(q float64) int64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return percentileSorted(c.sorted, q*100)
}

// Points samples the CDF at n evenly spaced cumulative probabilities,
// returning (value, probability) pairs suitable for plotting or tabulating.
func (c *CDF) Points(n int) [](struct {
	X int64
	P float64
}) {
	out := make([]struct {
		X int64
		P float64
	}, 0, n)
	if len(c.sorted) == 0 || n <= 0 {
		return out
	}
	for i := 1; i <= n; i++ {
		p := float64(i) / float64(n)
		out = append(out, struct {
			X int64
			P float64
		}{X: c.Quantile(p), P: p})
	}
	return out
}

// Render draws an ASCII CDF curve over the given x-range with the given
// width, one row per probability decile — a terminal stand-in for the
// paper's CDF figures.
func (c *CDF) Render(label string, xmin, xmax int64, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", label, c.N())
	if xmax <= xmin || width <= 0 {
		return b.String()
	}
	for decile := 10; decile >= 1; decile-- {
		p := float64(decile) / 10
		x := c.Quantile(p)
		pos := int(float64(x-xmin) / float64(xmax-xmin) * float64(width))
		if pos < 0 {
			pos = 0
		}
		if pos > width {
			pos = width
		}
		fmt.Fprintf(&b, "  %3.0f%% |%s* %d\n", p*100, strings.Repeat(" ", pos), x)
	}
	return b.String()
}

// Histogram buckets samples into fixed-width bins, for Figure 2/5-style
// latency clouds.
type Histogram struct {
	Min, Width int64
	Counts     []int
	Total      int
}

// NewHistogram builds a histogram with nbins bins spanning [min, max].
func NewHistogram(samples []int64, min, max int64, nbins int) *Histogram {
	if nbins <= 0 {
		nbins = 1
	}
	width := (max - min + int64(nbins) - 1) / int64(nbins)
	if width <= 0 {
		width = 1
	}
	h := &Histogram{Min: min, Width: width, Counts: make([]int, nbins)}
	for _, v := range samples {
		idx := int((v - min) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= nbins {
			idx = nbins - 1
		}
		h.Counts[idx]++
		h.Total++
	}
	return h
}

// Mode returns the midpoint of the most populated bin.
func (h *Histogram) Mode() int64 {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return h.Min + int64(best)*h.Width + h.Width/2
}
