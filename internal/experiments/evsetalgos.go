package experiments

import (
	"fmt"

	"leakyway/internal/core"
	"leakyway/internal/evset"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "evset-algos",
		Title: "Extension — four ways to build an eviction set",
		Paper: "Figure 13 compares two; this adds group testing [62] and the huge-page shortcut",
		Run:   runEvsetAlgos,
	})
}

func runEvsetAlgos(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	desired := 16
	if ctx.Quick {
		desired = 8
	}
	freqHz := cfg.FreqGHz * 1e9

	type row struct {
		name    string
		key     string
		r       evset.Result
		err     error
		correct int
		total   int
	}
	// Each algorithm builds against its own machine (seeded per
	// algorithm), so the four constructions shard across free workers —
	// the group-testing build alone used to dominate this experiment's
	// serial runtime.
	algos := []struct {
		name  string
		key   string
		build func(c *sim.Core, th core.Thresholds) (mem.VAddr, evset.Result, error)
	}{
		{"Algorithm 2 (prefetch)", "prefetch", func(c *sim.Core, th core.Thresholds) (mem.VAddr, evset.Result, error) {
			t := c.Alloc(mem.PageSize)
			r, err := evset.BuildPrefetch(c, t, evset.Options{
				Desired: desired, Pool: evset.NewPool(c, t, 512*desired), Thresholds: th,
			})
			return t, r, err
		}},
		{"access baseline [42]", "baseline", func(c *sim.Core, th core.Thresholds) (mem.VAddr, evset.Result, error) {
			t := c.Alloc(mem.PageSize)
			r, err := evset.BuildBaseline(c, t, evset.Options{
				Desired: desired, Pool: evset.NewPool(c, t, 2600*desired), Thresholds: th,
			})
			return t, r, err
		}},
		// Group testing must target the full associativity: a smaller
		// set cannot evict the target at all on a 16-way LLC.
		{"group testing [62]", "grouptest", func(c *sim.Core, th core.Thresholds) (mem.VAddr, evset.Result, error) {
			gtWant := cfg.LLCWays
			t := c.Alloc(mem.PageSize)
			r, err := evset.BuildGroupTesting(c, t, evset.Options{
				Desired: gtWant, Pool: evset.NewPool(c, t, 512*gtWant), Thresholds: th,
			})
			return t, r, err
		}},
		{"Algorithm 2 + huge pages", "hugepage", func(c *sim.Core, th core.Thresholds) (mem.VAddr, evset.Result, error) {
			ht, hp, err := evset.NewHugePool(c, cfg.LLCSetsPerSlice, 24*desired)
			if err != nil {
				return 0, evset.Result{}, err
			}
			r, err := evset.BuildPrefetch(c, ht, evset.Options{
				Desired: desired, Pool: hp, Thresholds: th,
			})
			return ht, r, err
		}},
	}

	rows := make([]row, len(algos))
	ctx.Parallel(len(algos), func(i int) {
		m := sim.MustNewMachine(cfg, 1<<31, ctx.SeedFor(algos[i].key))
		as := m.NewSpace()
		rows[i] = row{name: algos[i].name, key: algos[i].key}
		var target mem.VAddr
		m.Spawn("attacker", 0, as, func(c *sim.Core) {
			th := core.Calibrate(c, 48)
			target, rows[i].r, rows[i].err = algos[i].build(c, th)
		})
		m.Run()
		rows[i].total = len(rows[i].r.Set)
		rows[i].correct = evset.Verify(m, as, target, rows[i].r.Set)
	})

	out := [][]string{}
	for i := range rows {
		status := fmt.Sprintf("%d/%d congruent", rows[i].correct, rows[i].total)
		if rows[i].err != nil {
			status = rows[i].err.Error()
		}
		out = append(out, []string{
			rows[i].name,
			fmt.Sprintf("%d", rows[i].r.MemRefs),
			fmt.Sprintf("%d", rows[i].r.Tested),
			fmt.Sprintf("%.3f ms", float64(rows[i].r.Cycles)/freqHz*1e3),
			status,
		})
		res.Metric(rows[i].key+"_refs", float64(rows[i].r.MemRefs))
		res.Metric(rows[i].key+"_congruent", float64(rows[i].correct))
	}
	renderTable(ctx, []string{"algorithm", "mem refs", "candidates", "time", "result"}, out)
	ctx.Printf("group testing stalls on a small evicting superset under quad-age (see evset docs);\n")
	ctx.Printf("huge pages shrink the candidate space %dx by exposing the set bits\n",
		cfg.LLCSetsPerSlice*mem.LineSize/mem.PageSize)
	return res, nil
}
