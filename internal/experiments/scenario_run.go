package experiments

import (
	"encoding/hex"
	"fmt"

	"leakyway/internal/channel"
	"leakyway/internal/core"
	"leakyway/internal/fault"
	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/scenario"
	"leakyway/internal/sim"
	"leakyway/internal/trace"
	"leakyway/internal/victim"
)

// The scenario interpreters: one generic Run per scenario kind. A
// validated Spec compiles (FromSpec) into an Experiment-shaped task that
// the standard engine schedules, seeds and renders exactly like a
// hand-coded experiment — the builtin experiments in builtin.go are
// themselves FromSpec over Spec literals, which is what makes template
// runs byte-identical to registered runs.

// FromSpec compiles a declarative scenario into a runnable Experiment.
// The Spec must have passed Validate; the interpreters treat it as
// read-only, so one Spec may back many runs.
func FromSpec(s *scenario.Spec) Experiment {
	return Experiment{
		ID:    s.ID,
		Title: s.Title,
		Paper: s.Paper,
		Run: func(ctx *Context) (*Result, error) {
			return runSpec(ctx, s)
		},
	}
}

// RunSpecs executes compiled scenarios through the standard engine: same
// worker pool, same per-task seed derivation (SplitSeed by scenario ID),
// same private-buffer flush order — so a template pack's report is
// byte-identical for any ctx.Jobs, and a template sharing an ID with a
// registered experiment reproduces its section of the full report exactly.
func RunSpecs(ctx *Context, specs []*scenario.Spec) (map[string]*Result, error) {
	list := make([]Experiment, len(specs))
	for i, s := range specs {
		list[i] = FromSpec(s)
	}
	return runExperiments(ctx, list)
}

func runSpec(ctx *Context, s *scenario.Spec) (*Result, error) {
	if s.Platform != nil {
		sub := ctx.child(ctx.Seed, ctx.Out, "")
		sub.Platforms = []hier.Config{s.Platform.Config()}
		ctx = sub
	}
	switch {
	case s.StateWalk != nil:
		return runStateWalkSpec(ctx, s)
	case s.Pipeline != nil:
		return runPipelineSpec(ctx, s)
	case s.Sweep != nil:
		return runSweepSpec(ctx, s)
	case s.Lanes != nil:
		return runLanesSpec(ctx, s)
	case s.Noise != nil:
		return runNoiseSpec(ctx, s)
	case s.Faults != nil:
		return runFaultsSpec(ctx, s)
	case s.Victim != nil:
		return runVictimSpec(ctx, s)
	}
	return nil, fmt.Errorf("scenario %s: no runnable section", s.ID)
}

// bitsOf expands a validated "10110" message into bits.
func bitsOf(msg string) []bool {
	out := make([]bool, len(msg))
	for i := range msg {
		out[i] = msg[i] == '1'
	}
	return out
}

// channelFor overlays the spec's sparse channel overrides on the
// platform's calibrated defaults.
func channelFor(s *scenario.Spec, cfg hier.Config) channel.Config {
	return s.Channel.Apply(channel.DefaultConfig(cfg.Name, cfg.FreqGHz))
}

// runStateWalkSpec walks the LLC set state machine (Figure 6): per
// message bit, one send phase and one timed-prefetch read phase, each
// snapshotting the set.
func runStateWalkSpec(ctx *Context, s *scenario.Spec) (*Result, error) {
	sw := s.StateWalk
	res := &Result{}
	cfg := ctx.Platforms[0]
	m := sim.MustNewMachine(cfg, 1<<30, ctx.Seed)
	m.SetTracer(ctx.Tracer(shortName(cfg)))
	ep, err := channel.Setup(m, 1, 0)
	if err != nil {
		return nil, err
	}
	tr := core.NewTrace()
	msg := bitsOf(sw.Message)
	got := make([]bool, len(msg))

	// Bit i's send phase ends at readAt(i), when the receiver's timed
	// prefetch reads the set and resets it for the next bit.
	sendAt := func(i int) int64 { return sw.ReceiverReady + int64(2*i+1)*sw.PhaseStep }
	readAt := func(i int) int64 { return sw.ReceiverReady + int64(2*i+2)*sw.PhaseStep }

	m.Spawn("sender", 0, ep.SenderAS, func(c *sim.Core) {
		tr.Label(c, ep.DS[0], "ds")
		for i, b := range msg {
			c.WaitUntil(sendAt(i))
			if b {
				c.PrefetchNTA(ep.DS[0])
				tr.Snap(m, c, ep.DS[0], "sender prefetches ds to send '1'")
			} else {
				tr.Snap(m, c, ep.DS[0], "sender stays idle to send '0'")
			}
		}
	})
	m.Spawn("receiver", 1, ep.ReceiverAS, func(c *sim.Core) {
		th := core.Calibrate(c, sw.CalibrateSamples)
		tr.Label(c, ep.DR[0], "dr")
		for _, va := range ep.Filler[0] {
			c.Load(va)
		}
		c.PrefetchNTA(ep.DR[0])
		tr.Snap(m, c, ep.DR[0], "receiver prefetches dr to prepare the channel")
		for i, b := range msg {
			c.WaitUntil(readAt(i))
			t := c.TimedPrefetchNTA(ep.DR[0])
			got[i] = th.IsMiss(t)
			tr.Snap(m, c, ep.DR[0], fmt.Sprintf("receiver prefetches dr: %d cycles -> reads '%s'", t, bit(b)))
		}
	})
	m.Run()

	ctx.Printf("%s", tr.Render())
	ok := 1.0
	decoded := make([]byte, len(msg))
	for i := range msg {
		decoded[i] = '0'
		if got[i] {
			decoded[i] = '1'
		}
		if got[i] != msg[i] {
			ok = 0
		}
	}
	ctx.Printf("decoded: %s (want %s)\n", decoded, sw.Message)
	res.Metric("state_walk_correct", ok)
	return res, nil
}

// runPipelineSpec demonstrates the two-set pipelined schedule (Figure 7).
func runPipelineSpec(ctx *Context, s *scenario.Spec) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	ccfg := channelFor(s, cfg)
	msg := bitsOf(s.Pipeline.Message)
	m := sim.MustNewMachine(cfg, 1<<30, ctx.Seed)
	m.SetTracer(ctx.Tracer(shortName(cfg)))
	rep, recv := channel.RunNTPNTP(m, ccfg, msg)

	ctx.Printf("two-set schedule: sender transmits bit i on set i%%2 at iteration i;\n")
	ctx.Printf("the receiver reads bit i from set i%%2 one iteration later.\n\n")
	rows := [][]string{}
	for i, b := range msg {
		rows = append(rows, []string{
			fmt.Sprintf("T=%d", i),
			fmt.Sprintf("set %d", i%2),
			fmt.Sprintf("sends %v", bit(b)),
			fmt.Sprintf("reads %v (bit %d)", bit(recv[i]), i),
		})
	}
	renderTable(ctx, []string{"iteration", "LLC set", "sender", "receiver (next iteration)"}, rows)
	ctx.Printf("errors: %d/%d\n", rep.Errors, rep.Bits)
	res.Metric("pipeline_errors", float64(rep.Errors))
	return res, nil
}

// sweepRunner resolves a validated sweep channel key.
func sweepRunner(key string) channel.Runner {
	switch key {
	case "ntpntp":
		return channel.RunNTPNTP
	case "primeprobe":
		return channel.RunPrimeProbe
	}
	panic("scenario: unvalidated sweep channel " + key)
}

// runSweepSpec measures capacity and BER across transmission intervals
// (Figure 8) for every configured channel on every platform.
func runSweepSpec(ctx *Context, s *scenario.Spec) (*Result, error) {
	res := &Result{}
	bits := ctx.Trials(s.Sweep.Bits)
	err := ctx.EachPlatform(func(sub *Context, cfg hier.Config) error {
		base := channelFor(s, cfg)
		// Per-sweep-point trace labels: interval values are part of the
		// label so streams sort (and export) independently of scheduling.
		tf := func(name string, ivs []int64) func(i int) *trace.Tracer {
			if sub.Trace == nil {
				return nil
			}
			return func(i int) *trace.Tracer {
				return sub.Tracer(name, fmt.Sprintf("interval-%05d", ivs[i]))
			}
		}
		sws := make([]channel.SweepResult, len(s.Sweep.Channels))
		for i, ch := range s.Sweep.Channels {
			sws[i] = channel.SweepBatch(cfg, sweepRunner(ch.Channel), base, ch.Intervals,
				bits, sub.SeedFor(ch.Channel), sub.BatchTrials, tf(ch.Channel, ch.Intervals))
		}
		for _, sw := range sws {
			sub.Printf("\n%s — %s\n", sw.Channel, sw.Platform)
			rows := [][]string{}
			for _, p := range sw.Points {
				rows = append(rows, []string{
					fmt.Sprintf("%d", p.Interval),
					fmt.Sprintf("%.1f", p.RawRateKBps),
					fmt.Sprintf("%.2f%%", 100*p.BER),
					fmt.Sprintf("%.1f", p.CapacityKBps),
				})
			}
			renderTable(sub, []string{"interval (cyc)", "raw rate (KB/s)", "BER", "capacity (KB/s)"}, rows)
		}
		// With exactly two channels the sweep is a comparison; render the
		// peak-vs-peak line the way Figure 8's caption does.
		if len(sws) == 2 {
			a, b := sws[0].Peak(), sws[1].Peak()
			sub.Printf("\npeaks on %s: %s %.1f KB/s vs %s %.1f KB/s (%.1fx)\n",
				cfg.Name, sws[0].Channel, a.CapacityKBps, sws[1].Channel, b.CapacityKBps,
				a.CapacityKBps/b.CapacityKBps)
		}
		for i, ch := range s.Sweep.Channels {
			res.Metric(shortName(cfg)+"/"+ch.Channel+"_peak_kbps", sws[i].Peak().CapacityKBps)
		}
		return nil
	})
	return res, err
}

// runLanesSpec measures multi-lane NTP+NTP bandwidth scaling: the lanes ×
// offsets grid flattens into independent cells sharded across free
// workers, and the best offset per lane count wins.
func runLanesSpec(ctx *Context, s *scenario.Spec) (*Result, error) {
	sp := s.Lanes
	res := &Result{}
	cfg := ctx.Platforms[0]
	bits := ctx.Trials(sp.Bits)
	rows := [][]string{}
	reps := make([]channel.Report, len(sp.LaneCounts)*len(sp.Offsets))
	ctx.BatchTrials(len(reps), func(cell int, src sim.MachineSource) {
		lanes := sp.LaneCounts[cell/len(sp.Offsets)]
		base := channelFor(s, cfg)
		c := base
		c.Interval = base.ProtocolOverhead + int64(lanes)*sp.LaneCost + sp.Offsets[cell%len(sp.Offsets)]
		seed := ctx.SeedFor(fmt.Sprintf("lanes%d", lanes))
		m := src.NewMachine(cfg, 1<<30, seed)
		reps[cell], _ = channel.RunNTPNTPLanes(m, c, lanes, channel.RandomMessage(bits, seed))
	})
	for li, lanes := range sp.LaneCounts {
		best := channel.Report{}
		for oi := range sp.Offsets {
			if rep := reps[li*len(sp.Offsets)+oi]; rep.CapacityKBps > best.CapacityKBps {
				best = rep
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", lanes),
			fmt.Sprintf("%d", 2*lanes),
			fmt.Sprintf("%d", best.Interval),
			fmt.Sprintf("%.2f%%", 100*best.BER),
			fmt.Sprintf("%.1f KB/s", best.CapacityKBps),
		})
		res.Metric(fmt.Sprintf("lanes%d_capacity", lanes), best.CapacityKBps)
	}
	renderTable(ctx, []string{"lanes", "LLC sets", "best interval (cyc)", "BER", "capacity"}, rows)
	ctx.Printf("aggregate capacity grows sublinearly: the fixed per-iteration protocol cost amortizes\n")
	ctx.Printf("while per-lane probe work accumulates\n")
	return res, nil
}

// runNoiseSpec measures raw and interleaved-Hamming(7,4) reliability
// across co-tenant noise intensities. Every level runs its raw and
// protected transmissions on private machines with a level-derived seed,
// so the levels shard across free workers.
func runNoiseSpec(ctx *Context, s *scenario.Spec) (*Result, error) {
	sp := s.Noise
	res := &Result{}
	cfg := ctx.Platforms[0]
	bits := ctx.Trials(sp.Bits)
	base := channelFor(s, cfg)

	rows := [][]string{}
	type levelOut struct {
		raw      channel.Report
		residual float64
	}
	outs := make([]levelOut, len(sp.Periods))
	ctx.BatchTrials(len(sp.Periods), func(pi int, src sim.MachineSource) {
		c := base
		c.NoisePeriod = sp.Periods[pi]
		seed := ctx.SeedFor(fmt.Sprintf("noise%d", sp.Periods[pi]))

		msg := channel.RandomMessage(bits, seed)

		// Raw transmission.
		m := src.NewMachine(cfg, 1<<30, seed)
		outs[pi].raw, _ = channel.RunNTPNTP(m, c, msg)

		// Hamming(7,4)-protected transmission of the same payload,
		// block-interleaved so that burst errors (a stuck sender line
		// silences a stretch of '1's until the next noise event) land
		// in distinct codewords.
		enc := channel.Interleave(channel.EncodeHamming74(msg), sp.InterleaveDepth)
		m2 := src.NewMachine(cfg, 1<<30, seed)
		_, encBits := channel.RunNTPNTP(m2, c, enc)
		dec := channel.DecodeHamming74(channel.Deinterleave(encBits, sp.InterleaveDepth))
		decErr := 0
		for i := range msg {
			if i >= len(dec) || dec[i] != msg[i] {
				decErr++
			}
		}
		outs[pi].residual = float64(decErr) / float64(len(msg))
	})
	for pi, period := range sp.Periods {
		label := "quiet"
		if period > 0 {
			label = fmt.Sprintf("1 fill / %dK cycles", period/1000)
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%.2f%%", 100*outs[pi].raw.BER),
			fmt.Sprintf("%.1f KB/s", outs[pi].raw.CapacityKBps),
			fmt.Sprintf("%.2f%%", 100*outs[pi].residual),
		})
		key := fmt.Sprintf("noise%d", period)
		res.Metric(key+"_raw_ber", outs[pi].raw.BER)
		res.Metric(key+"_hamming_residual", outs[pi].residual)
	}
	renderTable(ctx, []string{"co-tenant noise", "raw BER", "raw capacity", "interleaved Hamming(7,4) residual"}, rows)
	ctx.Printf("noise produces both isolated flips and bursts (a stuck sender line silences '1's\n")
	ctx.Printf("until the next eviction); interleaved Hamming(7,4) absorbs both — the reliable\n")
	ctx.Printf("encoding the paper prescribes for noisy conditions\n")
	return res, nil
}

// runFaultsSpec runs every configured fault scenario against the raw
// channel, an interleaved-Hamming encoding and the ARQ transport.
// Injection strengths are proportional to the run horizon, so raw
// transmissions of different lengths see a comparable fault density.
func runFaultsSpec(ctx *Context, s *scenario.Spec) (*Result, error) {
	sp := s.Faults
	res := &Result{}
	cfg := ctx.Platforms[0]
	rawBits := ctx.Trials(sp.RawBits)
	arqBits := sp.ARQBits

	base := channelFor(s, cfg)
	tcfg := s.Transport.Apply(channel.DefaultTransportConfig(cfg.Name, cfg.FreqGHz))

	scenarios := sp.Scenarios
	type out struct {
		raw      channel.Report
		residual float64
		arq      channel.TransportReport
		fired    int
	}
	outs := make([]out, len(scenarios))

	// inject stages a scenario against a machine whose channel agents are
	// about to be spawned; the target sets' noise pools double as the
	// pollution working set.
	inject := func(m *sim.Machine, sc fault.Scenario, seedv, horizon int64, pollAS fault.Target, log *fault.Log) {
		if sc == nil {
			return
		}
		tgt := pollAS
		tgt.Sender, tgt.Receiver = "sender", "receiver"
		tgt.SpareCore = 3
		tgt.Horizon = horizon
		log.Attach(m)
		sc.Inject(m, tgt, seedv, log)
	}

	// Every scenario cell runs its three variants on private machines with
	// a scenario-derived seed, so cells shard across free workers and the
	// result is schedule-independent. The seed key is "faults"+key
	// regardless of the spec's ID (the ID already differentiates ctx.Seed).
	ctx.BatchTrials(len(scenarios), func(si int, src sim.MachineSource) {
		sc := scenarios[si]
		seedv := ctx.SeedFor("faults", sc.Key)
		msg := channel.RandomMessage(rawBits, seedv)
		log := &fault.Log{}

		// Raw channel under the scenario.
		{
			m := src.NewMachine(cfg, 1<<30, seedv)
			m.SetTracer(ctx.Tracer(sc.Key, "raw"))
			ep, err := channel.Setup(m, 2, 0)
			if err != nil {
				failf(s.ID, "faults/"+sc.Key+": raw channel setup", err)
			}
			horizon := base.Start + int64(rawBits)*base.Interval
			inject(m, sc.Compile(), seedv, horizon,
				fault.Target{PolluteAS: ep.NoiseAS, Pollute: ep.NoiseLines}, log)
			outs[si].raw, _ = channel.RunNTPNTPOn(m, base, ep, msg)
			outs[si].fired = len(log.Fired())
		}

		// Interleaved Hamming(7,4) over the same raw channel.
		{
			enc := channel.Interleave(channel.EncodeHamming74(msg), sp.InterleaveDepth)
			m := src.NewMachine(cfg, 1<<30, seedv)
			m.SetTracer(ctx.Tracer(sc.Key, "hamming"))
			ep, err := channel.Setup(m, 2, 0)
			if err != nil {
				failf(s.ID, "faults/"+sc.Key+": hamming channel setup", err)
			}
			horizon := base.Start + int64(len(enc))*base.Interval
			inject(m, sc.Compile(), seedv, horizon,
				fault.Target{PolluteAS: ep.NoiseAS, Pollute: ep.NoiseLines}, &fault.Log{})
			_, encBits := channel.RunNTPNTPOn(m, base, ep, enc)
			dec := channel.DecodeHamming74(channel.Deinterleave(encBits, sp.InterleaveDepth))
			decErr := 0
			for i := range msg {
				if i >= len(dec) || dec[i] != msg[i] {
					decErr++
				}
			}
			outs[si].residual = float64(decErr) / float64(len(msg))
		}

		// ARQ transport under the same scenario.
		{
			payload := channel.RandomMessage(arqBits, seedv+1)
			m := src.NewMachine(cfg, 1<<30, seedv)
			m.SetTracer(ctx.Tracer(sc.Key, "arq"))
			dx, err := channel.SetupDuplex(m)
			if err != nil {
				failf(s.ID, "faults/"+sc.Key+": duplex ARQ setup", err)
			}
			frames := (arqBits + channel.FramePayloadBits - 1) / channel.FramePayloadBits
			horizon := tcfg.Channel.Start + int64(frames)*170*tcfg.Channel.Interval
			inject(m, sc.Compile(), seedv, horizon,
				fault.Target{PolluteAS: dx.NoiseAS, Pollute: dx.NoiseLines}, &fault.Log{})
			rep, _, err := channel.RunARQOn(m, tcfg, dx, payload)
			if err != nil {
				failf(s.ID, "faults/"+sc.Key+": ARQ transfer", err)
			}
			outs[si].arq = rep
		}
	})

	rows := [][]string{}
	for si, sc := range scenarios {
		o := outs[si]
		arqCell := fmt.Sprintf("0 errors, %d retx, %.2f KB/s", o.arq.Retransmits, o.arq.GoodputKBps)
		if !o.arq.Delivered || o.arq.ResidualErrors > 0 {
			arqCell = fmt.Sprintf("FAILED (%d residual)", o.arq.ResidualErrors)
		}
		rows = append(rows, []string{
			sc.Key,
			fmt.Sprintf("%d", o.fired),
			fmt.Sprintf("%.2f%%", 100*o.raw.BER),
			fmt.Sprintf("%.2f%%", 100*o.residual),
			arqCell,
		})
		key := "faults_" + sc.Key
		res.Metric(key+"_raw_ber", o.raw.BER)
		res.Metric(key+"_hamming_residual", o.residual)
		res.Metric(key+"_arq_residual", float64(o.arq.ResidualErrors)/float64(o.arq.PayloadBits))
		res.Metric(key+"_arq_delivered", b2f(o.arq.Delivered))
		res.Metric(key+"_arq_goodput_kbps", o.arq.GoodputKBps)
	}
	renderTable(ctx, []string{"fault scenario", "fired", "raw BER", "interleaved Hamming residual", "ARQ transport"}, rows)
	ctx.Printf("every injected fault corrupts the raw channel; forward error correction absorbs\n")
	ctx.Printf("some of it, but only the ARQ transport (CRC-8 frames, retransmission, adaptive\n")
	ctx.Printf("recalibration) delivers a byte-exact message under all of them\n")
	return res, nil
}

// runVictimSpec runs a victim program under its spy: the T-table AES
// victim encrypts on one core while a Flush+Reload monitor on another
// recovers the high nibble of every key byte by first-round elimination.
func runVictimSpec(ctx *Context, s *scenario.Spec) (*Result, error) {
	sp := s.Victim
	res := &Result{}
	cfg := ctx.Platforms[0]
	var key [16]byte
	raw, err := hex.DecodeString(sp.Key)
	if err != nil || len(raw) != 16 {
		return nil, fmt.Errorf("scenario %s: bad victim key %q", s.ID, sp.Key)
	}
	copy(key[:], raw)

	m := sim.MustNewMachine(cfg, 1<<28, ctx.Seed)
	m.SetTracer(ctx.Tracer(shortName(cfg)))
	victimAS := m.NewSpace()
	spyAS := m.NewSpace()
	av, err := victim.NewAESVictim(victimAS, key, sp.Window, sp.Start)
	if err != nil {
		return nil, err
	}
	if err := spyAS.MapShared(victimAS, av.Table, mem.PageSize); err != nil {
		return nil, err
	}
	av.Spawn(m, 1, victimAS, ctx.SeedFor("victim"))
	obs := victim.SpyTTable(m, 0, spyAS, av, sp.Encryptions)
	m.Run()

	ctx.Printf("observed %d encryptions on %s\n", len(*obs), cfg.Name)
	recovered, err := victim.RecoverHighNibbles(*obs)
	if err != nil {
		return nil, err
	}
	actual := make([]string, 16)
	got := make([]string, 16)
	okNib := 0
	for i := range key {
		actual[i] = fmt.Sprintf("%x_", key[i]>>4)
		got[i] = fmt.Sprintf("%x_", recovered[i]>>4)
		if recovered[i] == key[i]&0xF0 {
			okNib++
		}
	}
	renderTable(ctx, []string{"", "key bytes (high nibble | low nibble unknown)"}, [][]string{
		{"actual:", fmt.Sprint(actual)},
		{"recovered:", fmt.Sprint(got)},
	})
	if okNib == 16 {
		ctx.Printf("all 16 high nibbles recovered — 64 bits of AES key leaked through the cache\n")
	} else {
		ctx.Printf("%d/16 high nibbles recovered; increase encryptions for full recovery\n", okNib)
	}
	res.Metric("victim_observations", float64(len(*obs)))
	res.Metric("victim_nibbles_recovered", float64(okNib))
	res.Metric("victim_key_recovered", b2f(okNib == 16))
	return res, nil
}
