package mem

import (
	"math/rand"
	"testing"
)

// TestLocatorMatchesGeometry proves the memoizing Locator is exactly
// equivalent to Geometry.Locate, including under frame-slot collisions.
func TestLocatorMatchesGeometry(t *testing.T) {
	for _, slices := range []int{1, 2, 4, 8} {
		g := MustGeometry(slices, 1024)
		l := g.NewLocator()
		rng := rand.New(rand.NewSource(int64(slices)))
		for i := 0; i < 200000; i++ {
			var la LineAddr
			switch i % 3 {
			case 0: // dense low addresses
				la = LineAddr(rng.Int63n(1 << 16))
			case 1: // realistic pool range
				la = LineAddr(rng.Int63n(1 << 26))
			case 2: // frames colliding in the direct-mapped table
				la = LineAddr(uint64(i%4)*locatorFrameSlots<<6 + uint64(rng.Int63n(1<<12)))
			}
			ws, wset := g.Locate(la)
			gs, gset := l.Locate(la)
			if ws != gs || wset != gset {
				t.Fatalf("slices=%d la=%#x: Locator=(%d,%d) Geometry=(%d,%d)",
					slices, uint64(la), gs, gset, ws, wset)
			}
		}
	}
}

// BenchmarkLocatorLocate measures the memoized slice/set lookup on a small
// hot working set, the common access pattern of channel sweeps.
func BenchmarkLocatorLocate(b *testing.B) {
	g := MustGeometry(8, 2048)
	l := g.NewLocator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Locate(LineAddr(i & 0xffff))
	}
}

// BenchmarkGeometryLocate is the unmemoized baseline for comparison.
func BenchmarkGeometryLocate(b *testing.B) {
	g := MustGeometry(8, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Locate(LineAddr(i & 0xffff))
	}
}
