package victim

import (
	"math/rand"
	"testing"

	"leakyway/internal/mem"
	"leakyway/internal/platform"
	"leakyway/internal/sim"
)

func TestRecoverHighNibblesAnalysis(t *testing.T) {
	// Pure analysis check with synthetic perfect observations.
	key := [16]byte{0x3C, 0xA1, 0x55, 0x00, 0xF0, 0x12, 0x77, 0x89,
		0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x23, 0x45, 0x67}
	rng := rand.New(rand.NewSource(99))
	rngPts := [][16]byte{}
	for i := 0; i < 64; i++ {
		var pt [16]byte
		rng.Read(pt[:])
		rngPts = append(rngPts, pt)
	}
	var obs []Observation
	for _, pt := range rngPts {
		o := Observation{Plaintext: pt}
		for b := 0; b < 16; b++ {
			o.Lines[int(pt[b]^key[b])>>4] = true
		}
		obs = append(obs, o)
	}
	got, err := RecoverHighNibbles(obs)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 16; b++ {
		if got[b] != key[b]&0xF0 {
			t.Errorf("byte %d: recovered %#02x, want %#02x", b, got[b], key[b]&0xF0)
		}
	}
}

func TestRecoverNeedsEnoughObservations(t *testing.T) {
	obs := []Observation{{}} // one empty observation kills all candidates? No: all lines false -> every candidate eliminated
	if _, err := RecoverHighNibbles(obs); err == nil {
		t.Fatal("expected ambiguity/elimination error with a single empty observation")
	}
}

func TestEndToEndKeyRecovery(t *testing.T) {
	// Full pipeline: shared T-table, victim encrypting, Flush+Reload spy,
	// elimination analysis.
	m := sim.MustNewMachine(platform.Skylake(), 1<<28, 77)
	victimAS := m.NewSpace()
	attackerAS := m.NewSpace()

	key := [16]byte{0x9f, 0x42, 0x00, 0xee, 0x31, 0xc8, 0x5a, 0x7d,
		0x60, 0x1b, 0xa4, 0xf3, 0x2e, 0xd9, 0x85, 0x76}
	v, err := NewAESVictim(victimAS, key, 9000, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := attackerAS.MapShared(victimAS, v.Table, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	v.Spawn(m, 1, victimAS, 5)
	obs := SpyTTable(m, 0, attackerAS, v, 120)
	m.Run()

	if len(*obs) < 100 {
		t.Fatalf("only %d observations captured", len(*obs))
	}
	got, err := RecoverHighNibbles(*obs)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 16; b++ {
		if got[b] != key[b]&0xF0 {
			t.Errorf("key byte %d: recovered high nibble %#02x, want %#02x", b, got[b], key[b]&0xF0)
		}
	}
}

func TestObservationsHaveSignal(t *testing.T) {
	// Each observation should contain roughly 10-11 distinct lines out of
	// 16 (the collision statistics of 16 uniform lookups), never 0 or 16
	// on average.
	m := sim.MustNewMachine(platform.Skylake(), 1<<28, 13)
	victimAS := m.NewSpace()
	attackerAS := m.NewSpace()
	v, err := NewAESVictim(victimAS, [16]byte{1, 2, 3}, 9000, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := attackerAS.MapShared(victimAS, v.Table, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	v.Spawn(m, 1, victimAS, 5)
	obs := SpyTTable(m, 0, attackerAS, v, 40)
	m.Run()
	total := 0
	for _, o := range *obs {
		for _, l := range o.Lines {
			if l {
				total++
			}
		}
	}
	avg := float64(total) / float64(len(*obs))
	if avg < 8 || avg > 13 {
		t.Fatalf("average %.1f lines observed per encryption; expected ≈10.3", avg)
	}
}

func TestExponentRecovery(t *testing.T) {
	m := sim.MustNewMachine(platform.Skylake(), 1<<29, 23)
	vicAS := m.NewSpace()
	atkAS := m.NewSpace()
	exponent := make([]bool, 96)
	rng := rand.New(rand.NewSource(5))
	for i := range exponent {
		exponent[i] = rng.Intn(2) == 1
	}
	v, err := NewExponentVictim(vicAS, exponent, 6000, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	v.Spawn(m, 1, vicAS)
	got := SpyExponent(m, 0, atkAS, v, vicAS)
	m.Run()
	if len(*got) != len(exponent) {
		t.Fatalf("recovered %d bits, want %d", len(*got), len(exponent))
	}
	wrong := 0
	for i := range exponent {
		if (*got)[i] != exponent[i] {
			wrong++
		}
	}
	if wrong > 2 {
		t.Fatalf("%d/%d exponent bits wrong", wrong, len(exponent))
	}
}
