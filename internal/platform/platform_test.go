package platform

import (
	"testing"

	"leakyway/internal/hier"
)

func TestTable1Geometry(t *testing.T) {
	for _, cfg := range All() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
		// Table I parameters.
		if cfg.Cores != 4 {
			t.Errorf("%s: cores = %d, want 4", cfg.Name, cfg.Cores)
		}
		if cfg.L1Ways != 8 {
			t.Errorf("%s: L1 ways = %d, want 8", cfg.Name, cfg.L1Ways)
		}
		if cfg.L2Ways != 4 {
			t.Errorf("%s: L2 ways = %d, want 4", cfg.Name, cfg.L2Ways)
		}
		if cfg.LLCWays != 16 {
			t.Errorf("%s: LLC ways = %d, want 16", cfg.Name, cfg.LLCWays)
		}
		// Capacities: 32 KiB L1, 256 KiB L2, 8 MiB LLC.
		if got := cfg.L1Sets * cfg.L1Ways * 64; got != 32<<10 {
			t.Errorf("%s: L1 capacity = %d", cfg.Name, got)
		}
		if got := cfg.L2Sets * cfg.L2Ways * 64; got != 256<<10 {
			t.Errorf("%s: L2 capacity = %d", cfg.Name, got)
		}
		if got := cfg.LLCSlices * cfg.LLCSetsPerSlice * cfg.LLCWays * 64; got != 8<<20 {
			t.Errorf("%s: LLC capacity = %d", cfg.Name, got)
		}
	}
}

func TestFrequencies(t *testing.T) {
	if Skylake().FreqGHz != 3.4 {
		t.Error("Skylake frequency wrong")
	}
	if KabyLake().FreqGHz != 4.2 {
		t.Error("Kaby Lake frequency wrong")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"skylake", "Skylake", SkylakeName} {
		if p, ok := ByName(name); !ok || p.Name != SkylakeName {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	for _, name := range []string{"kabylake", "kaby-lake", KabyLakeName} {
		if p, ok := ByName(name); !ok || p.Name != KabyLakeName {
			t.Errorf("ByName(%q) failed", name)
		}
	}
	if _, ok := ByName("486"); ok {
		t.Error("unknown platform resolved")
	}
}

func TestTimedTiersLandInPaperRanges(t *testing.T) {
	// The calibration contract: timed L1 ≈ 70, timed LLC 90-100, timed
	// DRAM > 200 on both platforms.
	for _, cfg := range All() {
		l1 := cfg.Lat.L1Hit + cfg.Lat.TimerOverhead
		llc := cfg.Lat.LLCHit + cfg.Lat.TimerOverhead
		mem := cfg.Lat.Mem + cfg.Lat.TimerOverhead
		if l1 < 60 || l1 > 85 {
			t.Errorf("%s: timed L1 = %d, want ≈70", cfg.Name, l1)
		}
		if llc < 88 || llc > 112 {
			t.Errorf("%s: timed LLC = %d, want 90-100", cfg.Name, llc)
		}
		if mem < 200 {
			t.Errorf("%s: timed DRAM = %d, want >200", cfg.Name, mem)
		}
	}
}

func TestConfigsAreIndependent(t *testing.T) {
	a := Skylake()
	a.LLCWays = 1
	if Skylake().LLCWays != 16 {
		t.Fatal("mutating a returned config leaks into the factory")
	}
	var _ hier.Config = a
}
