package scenario

import (
	"strings"
	"testing"
)

const canonYAML = `id: canon
title: canonical fingerprint probe
kind: pipeline
pipeline:
  message: "1011"
`

// Reordered fields, extra whitespace, and the JSON form must all
// fingerprint identically: the digest is over the canonical marshalling,
// not the submitted bytes.
const canonYAMLReordered = `title: canonical fingerprint probe
kind: pipeline
id: canon
pipeline:
  message: "1011"
`

const canonJSON = `{
  "kind": "pipeline",
  "pipeline": {"message": "1011"},
  "id": "canon",
  "title": "canonical fingerprint probe"
}`

func TestFingerprintIgnoresSurfaceForm(t *testing.T) {
	specs := map[string]*Spec{}
	for name, src := range map[string]string{
		"yaml":      canonYAML,
		"reordered": canonYAMLReordered,
	} {
		s, err := Parse([]byte(src), name+".yaml")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		specs[name] = s
	}
	js, err := Parse([]byte(canonJSON), "canon.json")
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	specs["json"] = js

	want := Fingerprint(specs["yaml"])
	if !strings.HasPrefix(want, "sha256:") || len(want) != len("sha256:")+64 {
		t.Fatalf("malformed fingerprint %q", want)
	}
	for name, s := range specs {
		if got := Fingerprint(s); got != want {
			t.Fatalf("%s fingerprints %s, yaml fingerprints %s — canonical form is not shared", name, got, want)
		}
	}
}

func TestFingerprintSeparatesSpecs(t *testing.T) {
	a, err := Parse([]byte(canonYAML), "a.yaml")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(strings.Replace(canonYAML, `"1011"`, `"1010"`, 1)), "b.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("different specs share a fingerprint")
	}
}

// TestCanonicalBytesRoundTrip pins CanonicalBytes to the marshal/parse
// fixed point: parsing the canonical bytes reproduces the same canonical
// bytes, so the cache key of a resubmitted canonical template is stable.
func TestCanonicalBytesRoundTrip(t *testing.T) {
	s, err := Parse([]byte(canonYAML), "canon.yaml")
	if err != nil {
		t.Fatal(err)
	}
	canon := CanonicalBytes(s)
	s2, err := Parse(canon, "canon2.yaml")
	if err != nil {
		t.Fatalf("canonical bytes do not re-parse: %v", err)
	}
	if string(CanonicalBytes(s2)) != string(canon) {
		t.Fatal("CanonicalBytes is not a fixed point under Parse")
	}
}
