// Spy: recover a victim's secret-dependent access pattern with
// Prefetch+Refresh (Section V-B). The victim shares one line with the
// attacker (a shared library page); in every monitoring window it touches
// the line iff the current secret bit is 1 — the access shape of a
// square-and-multiply loop. The attacker watches the line's replacement age
// without ever letting the victim observe a miss.
package main

import (
	"fmt"

	"leakyway"
)

func main() {
	plat := leakyway.Skylake()

	fmt.Println("running Prefetch+Refresh v2 against a windowed victim on", plat.Name)
	res := leakyway.RunRefresh(plat, leakyway.PrefetchRefreshV2, leakyway.RefreshConfig{
		Iterations: 256,
		Window:     5000,
	}, 99)

	recovered := make([]byte, 0, len(res.Detected))
	truth := make([]byte, 0, len(res.Truth))
	for i := range res.Detected {
		recovered = append(recovered, bitc(res.Detected[i]))
		truth = append(truth, bitc(res.Truth[i]))
	}

	fmt.Printf("\nvictim pattern (first 64 windows): %s\n", truth[:64])
	fmt.Printf("recovered bits (first 64 windows): %s\n", recovered[:64])
	fmt.Printf("\naccuracy over %d windows: %.2f%%\n", len(res.Truth), 100*res.Accuracy)
	fmt.Printf("attacker cost per window: %d ops (%d flush, %d DRAM, %d LLC to revert)\n",
		len(res.IterLatencies), res.Revert.Flushes, res.Revert.DRAMAccesses, res.Revert.LLCAccesses)

	// Contrast with the original Reload+Refresh cost.
	rr := leakyway.RunRefresh(plat, leakyway.ReloadRefresh, leakyway.RefreshConfig{
		Iterations: 256,
		Window:     5000,
	}, 99)
	fmt.Printf("\nmean attacker latency per window:\n")
	fmt.Printf("  Reload+Refresh      : %.0f cycles\n", mean(rr.IterLatencies))
	fmt.Printf("  Prefetch+Refresh v2 : %.0f cycles  (the PREFETCHNTA advantage)\n", mean(res.IterLatencies))
}

func bitc(b bool) byte {
	if b {
		return '1'
	}
	return '0'
}

func mean(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}
