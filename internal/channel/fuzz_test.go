package channel

import (
	"bytes"
	"testing"
)

// Native fuzz targets; their seed corpora run as ordinary unit tests under
// `go test` and can be expanded with `go test -fuzz`.

func FuzzBitsBytesRoundTrip(f *testing.F) {
	f.Add([]byte("leaky way"))
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xFF, 0xA5})
	f.Fuzz(func(t *testing.T, data []byte) {
		got := BitsToBytes(BytesToBits(data))
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip: %x -> %x", data, got)
		}
	})
}

func FuzzHammingRoundTrip(f *testing.F) {
	f.Add([]byte("payload"), uint8(0))
	f.Add([]byte{0xFF}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, flip uint8) {
		bits := BytesToBits(data)
		enc := EncodeHamming74(bits)
		// Flip at most one bit per codeword, position flip%7.
		for i := 0; i+7 <= len(enc); i += 7 {
			enc[i+int(flip)%7] = !enc[i+int(flip)%7]
		}
		dec := DecodeHamming74(enc)
		if len(dec) < len(bits) {
			t.Fatalf("decoded %d bits, want >= %d", len(dec), len(bits))
		}
		for i := range bits {
			if dec[i] != bits[i] {
				t.Fatalf("bit %d not corrected", i)
			}
		}
	})
}

func FuzzRepetitionMajority(f *testing.F) {
	f.Add([]byte{0xAA}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, k uint8) {
		rep := int(k%7) + 1
		bits := BytesToBits(data)
		enc := EncodeRepetition(bits, rep)
		dec := DecodeRepetition(enc, rep)
		if len(dec) != len(bits) {
			t.Fatalf("length %d, want %d", len(dec), len(bits))
		}
		for i := range bits {
			if dec[i] != bits[i] {
				t.Fatalf("bit %d corrupted without noise", i)
			}
		}
	})
}

// FuzzFrameDecode hammers the ARQ data-frame decoder: arbitrary bit soup,
// truncations, duplications and bounded bit flips must never panic, and a
// corrupted frame must never be accepted with contents that differ from
// the original (CRC-8/AUTOSAR guarantees detection of ≤3 raw-body flips;
// in Hamming mode ≤2 channel flips are corrected or detected).
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte("covert"), uint8(0), uint8(0), uint16(3))
	f.Add([]byte{0xFF, 0x00, 0xA5, 0x5A}, uint8(1), uint8(2), uint16(40))
	f.Add([]byte{}, uint8(1), uint8(1), uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, modeSel, flips uint8, pos uint16) {
		// 1. Arbitrary input: must not panic, any error is fine.
		raw := BytesToBits(data)
		if fr, _, err := DecodeFrame(raw); err == nil && len(fr.Payload) != FramePayloadBits {
			t.Fatalf("accepted frame with %d payload bits", len(fr.Payload))
		}
		if _, _, err := DecodeAck(raw); err == nil && len(raw) != AckWireBits() {
			t.Fatal("DecodeAck accepted wrong-length input")
		}

		// 2. A valid frame survives the round trip.
		mode := Coding(modeSel % 2)
		payload := BytesToBits(data)
		if len(payload) > FramePayloadBits {
			payload = payload[:FramePayloadBits]
		}
		orig := Frame{Seq: uint8(len(data) % SeqModulus), Last: modeSel&2 != 0, Payload: payload}
		enc := EncodeFrame(orig, mode)
		dec, gotMode, err := DecodeFrame(enc)
		if err != nil || gotMode != mode {
			t.Fatalf("clean frame rejected: %v (mode %v vs %v)", err, gotMode, mode)
		}
		checkSame := func(dec Frame) {
			t.Helper()
			if dec.Seq != orig.Seq || dec.Last != orig.Last {
				t.Fatalf("header corrupted: got %d/%v want %d/%v", dec.Seq, dec.Last, orig.Seq, orig.Last)
			}
			for i := range orig.Payload {
				if dec.Payload[i] != orig.Payload[i] {
					t.Fatalf("payload bit %d corrupted", i)
				}
			}
			for i := len(orig.Payload); i < FramePayloadBits; i++ {
				if dec.Payload[i] {
					t.Fatalf("padding bit %d non-zero", i)
				}
			}
		}
		checkSame(dec)

		// 3. Truncation and duplication must be rejected.
		if cut := int(pos) % len(enc); cut != 0 {
			if _, _, err := DecodeFrame(enc[:cut]); err == nil && cut != len(enc) {
				t.Fatalf("accepted truncated frame of %d/%d bits", cut, len(enc))
			}
		}
		if _, _, err := DecodeFrame(append(append([]bool(nil), enc...), enc...)); err == nil {
			t.Fatal("accepted duplicated frame")
		}

		// 4. Up to 2 bit flips: either detected, corrected, or — never —
		// accepted with different contents.
		flipped := append([]bool(nil), enc...)
		n := int(flips % 3)
		for i := 0; i < n; i++ {
			p := (int(pos) + i*7919) % len(flipped)
			flipped[p] = !flipped[p]
		}
		if dec, _, err := DecodeFrame(flipped); err == nil {
			checkSame(dec) // accepting is fine only if the content survived
		}
	})
}

// FuzzAckDecode is the same contract for the reverse-lane ACK decoder.
func FuzzAckDecode(f *testing.F) {
	f.Add(uint8(3), true, uint16(5), uint8(1))
	f.Add(uint8(15), false, uint16(0), uint8(2))
	f.Fuzz(func(t *testing.T, seq uint8, ok bool, pos uint16, flips uint8) {
		enc := EncodeAck(seq, ok)
		gotSeq, gotOK, err := DecodeAck(enc)
		if err != nil || gotSeq != seq%SeqModulus || gotOK != ok {
			t.Fatalf("clean ack rejected: %d/%v/%v", gotSeq, gotOK, err)
		}
		if cut := int(pos) % len(enc); cut != len(enc) {
			if _, _, err := DecodeAck(enc[:cut]); err == nil {
				t.Fatalf("accepted truncated ack of %d/%d bits", cut, len(enc))
			}
		}
		flipped := append([]bool(nil), enc...)
		n := int(flips % 3)
		for i := 0; i < n; i++ {
			p := (int(pos) + i*5471) % len(flipped)
			flipped[p] = !flipped[p]
		}
		if s, o, err := DecodeAck(flipped); err == nil {
			if s != seq%SeqModulus || o != ok {
				t.Fatalf("corrupted ack accepted with wrong contents: %d/%v", s, o)
			}
		}
	})
}

func FuzzMedianGap(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, deltas []byte) {
		ts := make([]int64, 0, len(deltas)+1)
		cur := int64(0)
		ts = append(ts, cur)
		for _, d := range deltas {
			cur += int64(d) + 1
			ts = append(ts, cur)
		}
		got := medianGap(ts)
		if len(ts) < 2 {
			if got != 0 {
				t.Fatalf("medianGap of short input = %d", got)
			}
			return
		}
		// The median gap is bounded by the min and max gap.
		minG, maxG := int64(1<<62), int64(0)
		for i := 1; i < len(ts); i++ {
			g := ts[i] - ts[i-1]
			if g < minG {
				minG = g
			}
			if g > maxG {
				maxG = g
			}
		}
		if got < minG || got > maxG {
			t.Fatalf("median %d outside [%d,%d]", got, minG, maxG)
		}
	})
}
