package attack

import (
	"testing"

	"leakyway/internal/platform"
	"leakyway/internal/stats"
)

func TestScopeVariantStrings(t *testing.T) {
	if PrimeScope.String() != "Prime+Scope" || PrimePrefetchScope.String() != "Prime+Prefetch+Scope" {
		t.Fatal("bad variant names")
	}
}

func TestPrimePrefetchScopeLowFalseNegatives(t *testing.T) {
	r := RunScope(platform.Skylake(), PrimePrefetchScope, ScopeConfig{Iterations: 300}, 7)
	if r.FalseNegativeRate > 0.05 {
		t.Fatalf("Prime+Prefetch+Scope FN = %.1f%%, paper reports <2%%", 100*r.FalseNegativeRate)
	}
	if r.PrepRefs >= 192 {
		t.Fatalf("prefetch-variant prep uses %d refs; must be far below Listing 1's 192", r.PrepRefs)
	}
	mean := stats.Mean(r.PrepLatencies)
	if mean < 700 || mean > 1600 {
		t.Fatalf("prep latency mean = %.0f, want ≈1000 (paper: 1043)", mean)
	}
}

func TestPrimeScopeMissesFrequentEvents(t *testing.T) {
	r := RunScope(platform.Skylake(), PrimeScope, ScopeConfig{Iterations: 300}, 7)
	if r.FalseNegativeRate < 0.3 {
		t.Fatalf("Prime+Scope FN = %.1f%%; with a 1.5K-cycle victim it must miss a large fraction", 100*r.FalseNegativeRate)
	}
	if r.PrepRefs != 192 {
		t.Fatalf("Prime+Scope prep refs = %d, want 192 (Listing 1)", r.PrepRefs)
	}
	if len(r.Detections) == 0 {
		t.Fatal("Prime+Scope detected nothing at all")
	}
}

func TestScopePrepComparison(t *testing.T) {
	// Figure 11 headline: the prefetch variant's preparation is much
	// faster, on both platforms.
	for _, p := range platform.All() {
		ps := RunScope(p, PrimeScope, ScopeConfig{Iterations: 200}, 11)
		pps := RunScope(p, PrimePrefetchScope, ScopeConfig{Iterations: 200}, 11)
		mps, mpps := stats.Mean(ps.PrepLatencies), stats.Mean(pps.PrepLatencies)
		if mpps >= mps {
			t.Fatalf("%s: prefetch prep (%.0f) not faster than Prime+Scope prep (%.0f)", p.Name, mpps, mps)
		}
		if ratio := mps / mpps; ratio < 1.5 {
			t.Fatalf("%s: prep speedup %.2fx, want >1.5x (paper ≈1.8x)", p.Name, ratio)
		}
	}
}

func TestFalseNegativeRateMatching(t *testing.T) {
	period := int64(100)
	cases := []struct {
		name       string
		accesses   []int64
		detections []int64
		horizon    int64
		want       float64
	}{
		{"all detected", []int64{100, 200, 300}, []int64{150, 250, 350}, 1000, 0},
		{"none detected", []int64{100, 200}, []int64{}, 1000, 1},
		{"half detected", []int64{100, 200}, []int64{150}, 1000, 0.5},
		{"late detection not matched", []int64{100}, []int64{450}, 1000, 1},
		{"detection cannot match two", []int64{100, 110}, []int64{150}, 1000, 0.5},
		{"post-horizon access ignored", []int64{100, 2000}, []int64{150}, 1000, 0},
		{"empty accesses", nil, []int64{100}, 1000, 0},
	}
	for _, c := range cases {
		got := falseNegativeRate(c.accesses, c.detections, period, c.horizon)
		if got != c.want {
			t.Errorf("%s: FN = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRefreshVariantsAccurate(t *testing.T) {
	for _, v := range []RefreshVariant{ReloadRefresh, PrefetchRefreshV1, PrefetchRefreshV2} {
		r := RunRefresh(platform.Skylake(), v, RefreshConfig{Iterations: 400}, 7)
		if r.Accuracy < 0.97 {
			t.Errorf("%v accuracy = %.1f%%, want ≈100%%", v, 100*r.Accuracy)
		}
	}
}

func TestRefreshLatencyOrdering(t *testing.T) {
	// Figure 12: Reload+Refresh > Prefetch+Refresh v1 > v2 on both
	// platforms.
	for _, p := range platform.All() {
		rr := stats.Mean(RunRefresh(p, ReloadRefresh, RefreshConfig{Iterations: 300}, 5).IterLatencies)
		v1 := stats.Mean(RunRefresh(p, PrefetchRefreshV1, RefreshConfig{Iterations: 300}, 5).IterLatencies)
		v2 := stats.Mean(RunRefresh(p, PrefetchRefreshV2, RefreshConfig{Iterations: 300}, 5).IterLatencies)
		if !(rr > v1 && v1 > v2) {
			t.Fatalf("%s: latency ordering broken: R+R=%.0f v1=%.0f v2=%.0f", p.Name, rr, v1, v2)
		}
	}
}

func TestRevertOpsTable3(t *testing.T) {
	w := 16
	if got := revertOps(ReloadRefresh, w); got != (RevertOps{2, 2, 14}) {
		t.Errorf("R+R revert = %+v", got)
	}
	if got := revertOps(PrefetchRefreshV1, w); got != (RevertOps{2, 2, 0}) {
		t.Errorf("v1 revert = %+v", got)
	}
	if got := revertOps(PrefetchRefreshV2, w); got != (RevertOps{1, 1, 0}) {
		t.Errorf("v2 revert = %+v", got)
	}
}

func TestRefreshVariantStrings(t *testing.T) {
	want := map[RefreshVariant]string{
		ReloadRefresh:     "Reload+Refresh",
		PrefetchRefreshV1: "Prefetch+Refresh v1",
		PrefetchRefreshV2: "Prefetch+Refresh v2",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
}

func TestXorshiftDeterministic(t *testing.T) {
	a, b := newXorshift(42), newXorshift(42)
	for i := 0; i < 10; i++ {
		if a.next() != b.next() {
			t.Fatal("xorshift not deterministic")
		}
	}
	if newXorshift(0).next() == 0 {
		t.Fatal("zero seed not remapped")
	}
}

func TestScopeDeterministic(t *testing.T) {
	a := RunScope(platform.Skylake(), PrimePrefetchScope, ScopeConfig{Iterations: 50}, 3)
	b := RunScope(platform.Skylake(), PrimePrefetchScope, ScopeConfig{Iterations: 50}, 3)
	if len(a.Detections) != len(b.Detections) || a.FalseNegativeRate != b.FalseNegativeRate {
		t.Fatal("RunScope not deterministic for equal seeds")
	}
	for i := range a.Detections {
		if a.Detections[i] != b.Detections[i] {
			t.Fatal("detection times diverge")
		}
	}
}
