// Command leakyway runs the paper-reproduction experiments: every table and
// figure of "Leaky Way" (MICRO 2022), plus the ablations and the
// robustness extensions (fault injection and the reliable ARQ transport —
// see the "faults" experiment).
//
// Usage:
//
//	leakyway list                            # show available experiments
//	leakyway run fig8 table2                 # run specific experiments
//	leakyway run all                         # run the full suite
//	leakyway -template templates/ run        # run declarative scenario templates
//	leakyway -template templates/ validate   # check templates without running
//
// Exit codes: 0 success, 1 error, 2 usage, 3 template assertions failed.
//
// Flags:
//
//	-platform skylake|kabylake|both   platforms to simulate (default both)
//	-template FILE|DIR                scenario template(s) for run/validate
//	-seed N                           master seed (default 42)
//	-quick                            reduced trial counts
//	-jobs N                           worker goroutines (default NumCPU);
//	                                  output is identical for every N
//	-batch K                          lockstep fleet width for trial-sharded
//	                                  experiments (default 8; 1 = scalar
//	                                  kernel); output is identical for every K
//	-json FILE                        also write all metrics as JSON
//	-trace FILE                       record a cycle-level event trace;
//	                                  .jsonl writes compact JSONL, anything
//	                                  else Chrome trace-event JSON that
//	                                  Perfetto (ui.perfetto.dev) loads
//	-trace-filter pkg1,pkg2           restrict tracing to subsystems
//	                                  (hier,sim,fault,channel)
//	-cpuprofile FILE                  write a pprof CPU profile of the run
//	-memprofile FILE                  write a pprof heap profile at exit
//	-pprof ADDR                       serve net/http/pprof on ADDR
//	                                  (e.g. localhost:6060) for live profiling
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"leakyway"
)

// Exit codes: 0 success, 1 infrastructure error, 2 usage error, 3 template
// assertion failure. Code 3 lets CI distinguish "the harness broke" from
// "the experiment ran but its declared expectations did not hold".
const exitAssertFailed = 3

// errAssertionsFailed marks a run whose template assertions failed; the
// run itself completed and all exports were written.
var errAssertionsFailed = errors.New("template assertions failed")

func main() { os.Exit(mainRun()) }

// mainRun is main with an exit code, so profile-flushing defers run even on
// failure paths (os.Exit would skip them).
func mainRun() int {
	var opt options
	showVersion := flag.Bool("version", false, "print the engine version and exit")
	flag.StringVar(&opt.platform, "platform", "both", "platform: skylake, kabylake or both")
	flag.Int64Var(&opt.seed, "seed", 42, "master seed for all stochastic elements")
	flag.BoolVar(&opt.quick, "quick", false, "run with reduced trial counts")
	flag.IntVar(&opt.jobs, "jobs", runtime.NumCPU(), "worker goroutines; results do not depend on this")
	flag.IntVar(&opt.batch, "batch", 0, "lockstep fleet width for trial-sharded experiments (0 = default 8, 1 = scalar kernel); results do not depend on this")
	flag.StringVar(&opt.template, "template", "", "scenario template file or directory (run/validate)")
	flag.StringVar(&opt.jsonPath, "json", "", "write metrics of every run experiment to this file as JSON")
	flag.StringVar(&opt.tracePath, "trace", "", "write a cycle-level event trace to this file (.jsonl = JSONL, else Chrome trace-event JSON)")
	flag.StringVar(&opt.traceFilter, "trace-filter", "", "comma-separated trace subsystems: hier,sim,fault,channel (default all)")
	flag.StringVar(&opt.cpuProfile, "cpuprofile", "", "write a pprof CPU profile of the run to this file")
	flag.StringVar(&opt.memProfile, "memprofile", "", "write a pprof heap profile at exit to this file")
	flag.StringVar(&opt.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Usage = usage
	flag.Parse()

	if *showVersion {
		fmt.Println("leakyway", leakyway.EngineVersion)
		return 0
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		return 2
	}

	if opt.pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(opt.pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof server:", err)
			}
		}()
	}
	if opt.cpuProfile != "" {
		f, err := os.Create(opt.cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if opt.memProfile != "" {
		defer func() {
			f, err := os.Create(opt.memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	switch args[0] {
	case "list":
		list()
	case "run":
		if opt.template != "" && len(args) > 1 {
			fmt.Fprintln(os.Stderr, "run: pass experiment IDs or -template, not both")
			return 2
		}
		if opt.template == "" && len(args) < 2 {
			fmt.Fprintln(os.Stderr, "run: need experiment IDs, 'all', or -template <file|dir>")
			return 2
		}
		if err := run(args[1:], opt, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			if errors.Is(err, errAssertionsFailed) {
				return exitAssertFailed
			}
			return 1
		}
	case "validate":
		if opt.template == "" {
			fmt.Fprintln(os.Stderr, "validate: need -template <file|dir>")
			return 2
		}
		if err := validate(opt.template, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return 1
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", args[0])
		usage()
		return 2
	}
	return 0
}

// validate loads every template under path, reporting each scenario it
// accepts along with its canonical fingerprint — the digest leakywayd
// folds into its result-cache key, printed here through the same
// canonical-marshal path so CLI and daemon can never drift. Any malformed
// template fails the whole pass with its file and field context.
func validate(path string, out io.Writer) error {
	specs, err := leakyway.LoadScenarios(path)
	if err != nil {
		return err
	}
	for _, s := range specs {
		fmt.Fprintf(out, "  ok  %-14s %s  %s\n", s.ID, leakyway.ScenarioFingerprint(s), s.Title)
	}
	fmt.Fprintf(out, "%d template(s) valid\n", len(specs))
	return nil
}

// options carries the flag values that shape a run.
type options struct {
	platform    string
	seed        int64
	quick       bool
	jobs        int
	batch       int
	template    string
	jsonPath    string
	tracePath   string
	traceFilter string
	cpuProfile  string
	memProfile  string
	pprofAddr   string
}

func usage() {
	fmt.Fprintf(os.Stderr, `leakyway — reproduction of "Leaky Way" (MICRO 2022)

usage (flags come before the command):
  leakyway [flags] list
  leakyway [flags] run <experiment>...
  leakyway [flags] run all
  leakyway -template <file|dir> [flags] run
  leakyway -template <file|dir> validate

exit codes: 0 success, 1 error, 2 usage, 3 template assertions failed

flags:
`)
	flag.PrintDefaults()
}

func list() {
	fmt.Println("available experiments:")
	for _, e := range leakyway.Experiments() {
		fmt.Printf("  %-14s %s\n", e.ID, e.Title)
	}
}

func run(ids []string, opt options, out io.Writer) (err error) {
	// Output files are created up front (fail fast on a bad path) but a
	// failed run must not leave stale exports behind. An assertion failure
	// is not an infrastructure failure: the run completed, so its exports
	// stay.
	defer func() {
		if err != nil && !errors.Is(err, errAssertionsFailed) {
			if opt.jsonPath != "" {
				os.Remove(opt.jsonPath)
			}
			if opt.tracePath != "" {
				os.Remove(opt.tracePath)
			}
		}
	}()
	var specs []*leakyway.Scenario
	if opt.template != "" {
		specs, err = leakyway.LoadScenarios(opt.template)
		if err != nil {
			return err
		}
	}
	ctx := leakyway.NewExperimentContext(out)
	ctx.Seed = opt.seed
	ctx.Quick = opt.quick
	if opt.jobs > 0 {
		ctx.Jobs = opt.jobs
	}
	ctx.BatchWidth = opt.batch
	switch opt.platform {
	case "both", "":
		// default platforms
	default:
		p, ok := leakyway.PlatformByName(opt.platform)
		if !ok {
			return fmt.Errorf("unknown platform %q (want skylake, kabylake or both)", opt.platform)
		}
		ctx.Platforms = []leakyway.Platform{p}
	}

	// Output files are created (and truncated) before any experiment runs,
	// so a bad path fails in milliseconds instead of after the whole suite.
	var jsonFile, traceFile *os.File
	if opt.jsonPath != "" {
		f, err := os.Create(opt.jsonPath)
		if err != nil {
			return fmt.Errorf("json export: %w", err)
		}
		defer f.Close()
		jsonFile = f
	}
	if opt.tracePath != "" {
		f, err := os.Create(opt.tracePath)
		if err != nil {
			return fmt.Errorf("trace export: %w", err)
		}
		defer f.Close()
		traceFile = f
		mask, err := leakyway.ParseTraceMask(opt.traceFilter)
		if err != nil {
			return err
		}
		ctx.Trace = leakyway.NewTraceCollector()
		ctx.TraceMask = mask
	} else if opt.traceFilter != "" {
		return fmt.Errorf("-trace-filter requires -trace")
	}

	results := map[string]*leakyway.ExperimentResult{}
	switch {
	case specs != nil:
		all, err := leakyway.RunScenarios(ctx, specs)
		if err != nil {
			return err
		}
		results = all
	case len(ids) == 1 && ids[0] == "all":
		all, err := leakyway.RunAllExperiments(ctx)
		if err != nil {
			return err
		}
		results = all
	default:
		for _, id := range ids {
			res, err := leakyway.RunExperiment(ctx, id)
			if err != nil {
				return err
			}
			results[id] = res
		}
	}

	if jsonFile != nil {
		if err := leakyway.WriteExperimentMetricsJSON(jsonFile, results); err != nil {
			return fmt.Errorf("json export: %w", err)
		}
	}
	if traceFile != nil {
		if err := exportTrace(traceFile, opt.tracePath, ctx.Trace, out); err != nil {
			return fmt.Errorf("trace export: %w", err)
		}
	}
	return checkAssertions(specs, results, out)
}

// checkAssertions evaluates every template's extractors and assertions
// against its completed run, after the report and all exports. A failing
// assertion maps to the dedicated exit code, not to a generic error.
func checkAssertions(specs []*leakyway.Scenario, results map[string]*leakyway.ExperimentResult, out io.Writer) error {
	failed := 0
	printed := false
	for _, s := range specs {
		if len(s.Extract) == 0 && len(s.Assert) == 0 {
			continue
		}
		res := results[s.ID]
		if res == nil {
			continue
		}
		if !printed {
			fmt.Fprintf(out, "\ntemplate checks:\n")
			printed = true
		}
		ev := s.Evaluate(res.Report, res.Metrics)
		status := "PASS"
		if ev.Failed > 0 {
			status = "FAIL"
		}
		fmt.Fprintf(out, "%s %s\n%s", status, s.ID, ev.Render())
		failed += ev.Failed
	}
	if failed > 0 {
		return fmt.Errorf("%w: %d assertion(s) did not hold", errAssertionsFailed, failed)
	}
	return nil
}

// exportTrace writes the collected trace in the format the file extension
// selects and prints one summary line per traced experiment.
func exportTrace(f *os.File, path string, col *leakyway.TraceCollector, out io.Writer) error {
	bufs := col.Buffers()
	var err error
	if strings.HasSuffix(path, ".jsonl") {
		err = leakyway.WriteTraceJSONL(f, bufs)
	} else {
		err = leakyway.WriteChromeTrace(f, bufs)
	}
	if err != nil {
		return err
	}
	keys, counts := col.CountByPrefix()
	total := 0
	for _, k := range keys {
		fmt.Fprintf(out, "trace: %-12s %d events\n", k, counts[k])
		total += counts[k]
	}
	fmt.Fprintf(out, "trace: %d events in %d streams -> %s\n", total, len(bufs), path)
	return nil
}
