package service

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"leakyway/internal/iofault"
)

// storeKey fabricates a well-formed cache key from a small integer.
func storeKey(i int) string {
	return fmt.Sprintf("sha256:%064x", i)
}

// putPayload stores an entry for key whose metrics artifact is n bytes,
// so entry sizes are controllable to within the small meta.json overhead.
func putPayload(t *testing.T, s *Store, key string, n int) {
	t.Helper()
	res := &Result{
		Report:  []byte("report\n"),
		Metrics: bytes.Repeat([]byte("x"), n),
	}
	if err := s.Put(key, "test-engine", res); err != nil {
		t.Fatalf("Put %s: %v", key, err)
	}
}

// openTestStore opens a store over the real filesystem.
func openTestStore(t *testing.T, dir string, opt StoreOptions) (*Store, []SweepRemoval) {
	t.Helper()
	if opt.Logger == nil {
		opt.Logger = testLogger(t)
	}
	s, removed, err := OpenStore(iofault.OS(), dir, opt)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s, removed
}

func TestStoreQuotaEvictsLeastRecentlyAccessed(t *testing.T) {
	// Payloads dominate entry size, so ~4400-byte entries against a
	// 10000-byte quota means two fit and a third forces one eviction.
	s, _ := openTestStore(t, t.TempDir(), StoreOptions{QuotaBytes: 10000})
	putPayload(t, s, storeKey(1), 4096)
	putPayload(t, s, storeKey(2), 4096)
	if s.Len() != 2 {
		t.Fatalf("two entries under quota, got %d", s.Len())
	}

	// Touch 1 so 2 is the LRU victim.
	if !s.Has(storeKey(1)) {
		t.Fatalf("entry 1 missing")
	}
	putPayload(t, s, storeKey(3), 4096)

	if s.Has(storeKey(2)) {
		t.Fatalf("LRU entry 2 survived eviction")
	}
	if !s.Has(storeKey(1)) || !s.Has(storeKey(3)) {
		t.Fatalf("recently-used entries evicted")
	}
	if got := s.SizeBytes(); got > 10000 {
		t.Fatalf("store %d bytes, quota 10000", got)
	}
}

func TestStoreMaxEntriesCap(t *testing.T) {
	s, _ := openTestStore(t, t.TempDir(), StoreOptions{MaxEntries: 3})
	for i := 1; i <= 5; i++ {
		putPayload(t, s, storeKey(i), 64)
	}
	if s.Len() != 3 {
		t.Fatalf("entry count %d, cap 3", s.Len())
	}
	// Insertion order doubles as access order here: 1 and 2 are gone.
	for _, i := range []int{3, 4, 5} {
		if !s.Has(storeKey(i)) {
			t.Fatalf("entry %d evicted out of LRU order", i)
		}
	}
}

func TestStorePinBlocksEviction(t *testing.T) {
	s, _ := openTestStore(t, t.TempDir(), StoreOptions{MaxEntries: 2})
	putPayload(t, s, storeKey(1), 64)
	s.Pin(storeKey(1))
	putPayload(t, s, storeKey(2), 64)
	putPayload(t, s, storeKey(3), 64)

	// 1 is the oldest but pinned; 2 must be the victim.
	if !s.Has(storeKey(1)) {
		t.Fatalf("pinned entry evicted")
	}
	if s.Has(storeKey(2)) {
		t.Fatalf("unpinned LRU entry survived")
	}

	// After unpinning, 1 is evictable again. Re-age it below 3.
	s.Unpin(storeKey(1))
	s.Has(storeKey(3))
	putPayload(t, s, storeKey(4), 64)
	if s.Has(storeKey(1)) {
		t.Fatalf("unpinned entry not evicted")
	}
}

func TestStoreAllPinnedDefersEviction(t *testing.T) {
	s, _ := openTestStore(t, t.TempDir(), StoreOptions{MaxEntries: 1})
	putPayload(t, s, storeKey(1), 64)
	s.Pin(storeKey(1))
	s.Pin(storeKey(2))
	putPayload(t, s, storeKey(2), 64)
	// Over cap but both pinned: nothing may be removed.
	if s.Len() != 2 {
		t.Fatalf("pinned entries evicted: %d live", s.Len())
	}
}

func TestStoreLRUOrderSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTestStore(t, dir, StoreOptions{})
	for i := 1; i <= 3; i++ {
		putPayload(t, s, storeKey(i), 64)
	}
	// Recency: 2, 3, 1 from oldest to newest.
	s.Has(storeKey(3))
	s.Has(storeKey(1))
	s.Close() // persists lru-index.json

	// Reopen with a cap of 2: the persisted order must make 2 the victim.
	s2, removed := openTestStore(t, dir, StoreOptions{MaxEntries: 2})
	if len(removed) != 0 {
		t.Fatalf("sweep removed intact entries: %v", removed)
	}
	if s2.Has(storeKey(2)) {
		t.Fatalf("persisted LRU order lost: entry 2 survived")
	}
	if !s2.Has(storeKey(1)) || !s2.Has(storeKey(3)) {
		t.Fatalf("recently-used entries evicted on reopen")
	}
}

func TestStoreSweepRepairsTornEviction(t *testing.T) {
	dir := t.TempDir()
	// An eviction interrupted by an I/O failure (or SIGKILL) leaves a
	// half-deleted entry directory.
	inj := iofault.NewInjector(iofault.OS(), 1, iofault.BrokenRemove(hexOf(storeKey(1)), iofault.ErrIO))
	s, _, err := OpenStore(inj, dir, StoreOptions{MaxEntries: 1, Logger: testLogger(t)})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	putPayload(t, s, storeKey(1), 64)
	putPayload(t, s, storeKey(2), 64) // evicts 1; RemoveAll tears

	if s.Has(storeKey(1)) {
		t.Fatalf("torn-evicted entry still indexed")
	}
	// The wreckage is on disk: reopening must sweep it away.
	s2, removed := openTestStore(t, dir, StoreOptions{})
	found := false
	for _, r := range removed {
		if r.Entry == hexOf(storeKey(1)) {
			found = true
		}
	}
	if !found {
		t.Fatalf("sweep did not remove torn eviction wreckage (removed %v)", removed)
	}
	if s2.Has(storeKey(1)) {
		t.Fatalf("swept entry reported live")
	}
	if !s2.Has(storeKey(2)) {
		t.Fatalf("intact entry lost in sweep")
	}
}

func TestStoreEvictedArtifactUnreadable(t *testing.T) {
	s, _ := openTestStore(t, t.TempDir(), StoreOptions{MaxEntries: 1})
	putPayload(t, s, storeKey(1), 64)
	putPayload(t, s, storeKey(2), 64)
	if _, err := s.Artifact(storeKey(1), "metrics"); err == nil {
		t.Fatalf("evicted entry's artifact still readable")
	}
	if _, err := s.Artifact(storeKey(2), "metrics"); err != nil {
		t.Fatalf("live artifact unreadable: %v", err)
	}
	if fi := filepath.Join(s.dir, hexOf(storeKey(1))); dirExists(t, fi) {
		t.Fatalf("evicted entry directory still on disk")
	}
}

func dirExists(t *testing.T, path string) bool {
	t.Helper()
	_, err := iofault.OS().ReadDir(path)
	return err == nil
}
