package policy

// BitPLRU (MRU-bit pseudo-LRU, Malamy et al.) keeps one bit per way. A hit
// sets the way's bit; when the last zero bit is consumed, all other bits are
// cleared. The victim is the first way with a zero bit. Intel client L2s
// behave like this to a first approximation.
type BitPLRU struct{}

// NewBitPLRU returns the policy.
func NewBitPLRU() *BitPLRU { return &BitPLRU{} }

// Name implements Policy.
func (*BitPLRU) Name() string { return "bit-plru" }

// NewSet implements Policy.
func (*BitPLRU) NewSet(ways int) SetState {
	return &bitPLRUSet{mru: make([]bool, ways)}
}

type bitPLRUSet struct {
	mru []bool
}

func (s *bitPLRUSet) touch(way int) {
	s.mru[way] = true
	for _, b := range s.mru {
		if !b {
			return
		}
	}
	// All bits set: clear everything except the most recent access.
	for i := range s.mru {
		s.mru[i] = i == way
	}
}

// Victim implements SetState: first zero-bit evictable way, else first
// evictable way.
func (s *bitPLRUSet) Victim(evictable Mask) int {
	for way, b := range s.mru {
		if !b && evictable.Has(way) {
			return way
		}
	}
	for way := range s.mru {
		if evictable.Has(way) {
			return way
		}
	}
	return -1
}

// OnFill implements SetState.
func (s *bitPLRUSet) OnFill(way int, _ AccessClass) { s.touch(way) }

// OnHit implements SetState.
func (s *bitPLRUSet) OnHit(way int, _ AccessClass) { s.touch(way) }

// OnInvalidate implements SetState.
func (s *bitPLRUSet) OnInvalidate(way int) { s.mru[way] = false }

// Reset implements SetState.
func (s *bitPLRUSet) Reset() {
	for i := range s.mru {
		s.mru[i] = false
	}
}

// AgeAt implements SetState: 1 for MRU bits.
func (s *bitPLRUSet) AgeAt(way int) int {
	if s.mru[way] {
		return 1
	}
	return 0
}

// Snapshot implements SetState: 1 for MRU bits.
func (s *bitPLRUSet) Snapshot() []int {
	out := make([]int, len(s.mru))
	for i, b := range s.mru {
		if b {
			out[i] = 1
		}
	}
	return out
}
