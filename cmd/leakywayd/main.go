// Command leakywayd serves the experiment engine over HTTP: scenario
// templates come in as jobs, results come out as content-addressed
// artifacts. SIGTERM drains — in-flight and queued jobs finish, then the
// process exits 0; an unclean kill is recovered from the journal on the
// next start from the same -data directory.
//
// Logs are structured (log/slog text format) on stderr; -log-level
// selects the floor (debug, info, warn, error). GET /metricsz exposes
// live daemon metrics in Prometheus text format, and
// GET /v1/jobs/{id}/events streams per-job progress as server-sent
// events.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"leakyway"
	"leakyway/internal/iofault"
	"leakyway/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "leakywayd:", err)
		os.Exit(1)
	}
}

// parseLevel maps the -log-level flag to a slog level.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -log-level %q (want debug, info, warn or error)", s)
}

func run() error {
	var (
		addr       = flag.String("addr", "127.0.0.1:8099", "listen address (use :0 for an ephemeral port)")
		dataDir    = flag.String("data", "", "data directory for the result store and journal (required)")
		workers    = flag.Int("workers", 2, "worker pool size")
		queueCap   = flag.Int("queue", 64, "max queued jobs before submissions get 429")
		jobTimeout = flag.Duration("job-timeout", 10*time.Minute, "per-attempt deadline")
		retries    = flag.Int("retries", 2, "retry budget per job after a failed attempt")
		stall      = flag.Duration("stall", 0, "delay each attempt before simulating (crash-recovery testing)")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		version    = flag.Bool("version", false, "print the engine version and exit")

		storeQuota   = flag.Int64("store-quota-bytes", 0, "result-store byte quota; old results are evicted LRU past it (0 = unlimited)")
		storeEntries = flag.Int("store-max-entries", 0, "result-store entry cap, evicted LRU (0 = unlimited)")
		walRotate    = flag.Int64("wal-rotate-bytes", 0, "journal size that triggers online compaction (0 = default 4MiB, negative disables)")
		probeEvery   = flag.Duration("probe-interval", 0, "disk-probe cadence while degraded (0 = default 1s)")
		chaosFsync   = flag.Int("chaos-fsync-fail", 0, "FAULT INJECTION (testing): fail this many journal fsyncs after startup, then heal")
	)
	flag.Parse()
	if *version {
		fmt.Println("leakywayd", leakyway.EngineVersion)
		return nil
	}
	if *dataDir == "" {
		return fmt.Errorf("-data is required")
	}
	lvl, err := parseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	maxRetries := *retries
	if maxRetries == 0 {
		maxRetries = -1 // Config: negative disables retries, 0 means default
	}
	cfg := service.Config{
		DataDir:         *dataDir,
		Workers:         *workers,
		QueueCap:        *queueCap,
		JobTimeout:      *jobTimeout,
		MaxRetries:      maxRetries,
		Stall:           *stall,
		Logger:          logger,
		StoreQuotaBytes: *storeQuota,
		StoreMaxEntries: *storeEntries,
		WALRotateBytes:  *walRotate,
		ProbeInterval:   *probeEvery,
	}
	// The chaos hook arms only after startup, so New builds its journal
	// and store cleanly and the injected outage hits live traffic — the
	// window the degraded-mode machinery exists for.
	var chaosInj *iofault.Injector
	if *chaosFsync > 0 {
		chaosInj = iofault.NewInjector(iofault.OS(), 1,
			iofault.FailFirst("journal.jsonl", iofault.OpSync, *chaosFsync, iofault.ErrIO))
		chaosInj.SetActive(false)
		cfg.FS = chaosInj
	}
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	if chaosInj != nil {
		chaosInj.SetActive(true)
		logger.Warn("chaos fault injection armed", "fsync_failures", *chaosFsync)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Logged before serving so drivers using :0 can scrape the port from
	// the addr=... attribute.
	logger.Info("listening", "addr", ln.Addr(), "engine", leakyway.EngineVersion)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-serveErr:
		return err
	case got := <-sig:
		logger.Info("draining (second signal forces exit)", "signal", got.String())
	}

	// A second signal during the drain aborts immediately.
	forced := make(chan struct{})
	go func() {
		<-sig
		close(forced)
	}()
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain() }()

	select {
	case err := <-drained:
		if err != nil {
			return fmt.Errorf("drain: %w", err)
		}
	case <-forced:
		return fmt.Errorf("forced shutdown before drain completed")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("drained cleanly")
	return nil
}
