package trace

import (
	"sync"
	"testing"
)

func TestEventCountsPerSubsystem(t *testing.T) {
	var counts EventCounts
	col := NewCollector()
	col.SetCounts(&counts)
	tr := col.Tracer("m", PkgAll)

	tr.Emit(E("hier", "fill", 1))
	tr.Emit(E("hier", "evict", 2))
	tr.Emit(E("sim", "spawn", 3))
	tr.Emit(E("channel", "tx-bit", 4))

	got := counts.Counts()
	want := map[string]int64{"hier": 2, "sim": 1, "fault": 0, "channel": 1}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("counts[%s] = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}
	if counts.Total() != 4 {
		t.Fatalf("total = %d, want 4", counts.Total())
	}
	// Buffering still happened alongside counting.
	if n := col.TotalEvents(); n != 4 {
		t.Fatalf("buffered events = %d, want 4", n)
	}
}

// TestCountingCollectorStoresNothing checks the counting-only mode: the
// sink sees every event, the buffers stay empty, and masks still filter.
func TestCountingCollectorStoresNothing(t *testing.T) {
	var counts EventCounts
	col := NewCountingCollector(&counts)
	tr := col.Tracer("m", PkgHier|PkgSim)

	if !tr.On(PkgHier) || tr.On(PkgChannel) {
		t.Fatalf("mask gating broken: On(hier)=%v On(channel)=%v", tr.On(PkgHier), tr.On(PkgChannel))
	}
	tr.Emit(E("hier", "fill", 1))
	tr.Emit(E("channel", "tx-bit", 2)) // masked out: neither counted nor stored
	tr.Emit(E("sim", "wait", 3))

	if counts.Total() != 2 {
		t.Fatalf("total = %d, want 2 (masked event must not count)", counts.Total())
	}
	if n := col.TotalEvents(); n != 0 {
		t.Fatalf("counting collector buffered %d events, want 0", n)
	}
	// Labels are still registered (and still deduplicated).
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate label did not panic in counting mode")
		}
	}()
	col.Tracer("m", PkgAll)
}

func TestNilEventCountsSafe(t *testing.T) {
	var c *EventCounts
	if c.Counts() != nil {
		t.Fatalf("nil Counts() should be nil")
	}
	if c.Total() != 0 {
		t.Fatalf("nil Total() should be 0")
	}
}

// TestEventCountsConcurrent exercises the sink from parallel emitters —
// the -race gate for the sampling path observers use mid-run.
func TestEventCountsConcurrent(t *testing.T) {
	var counts EventCounts
	col := NewCountingCollector(&counts)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := col.Tracer(string(rune('a'+w)), PkgAll)
			for i := 0; i < 500; i++ {
				tr.Emit(E("hier", "fill", int64(i)))
				if i%50 == 0 {
					_ = counts.Counts()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := counts.Counts()["hier"]; got != 2000 {
		t.Fatalf("hier = %d, want 2000", got)
	}
}
