// Quickstart: transmit a string between two unrelated processes over the
// NTP+NTP covert channel (no shared memory — only PREFETCHNTA conflicts in
// one LLC way).
package main

import (
	"fmt"
	"log"

	"leakyway"
)

func main() {
	// A simulated Core i7-6700 with 1 GiB of physical memory.
	plat := leakyway.Skylake()
	m, err := leakyway.NewMachine(plat, 1<<30, 1)
	if err != nil {
		log.Fatal(err)
	}

	secret := "Hello from the leaky way!"
	msg := leakyway.BytesToBits([]byte(secret))

	cfg := leakyway.DefaultChannelConfig(plat)
	cfg.Interval = 1500 // cycles per bit: ~276 KB/s raw on this platform
	cfg.NoisePeriod = 0 // quiet machine

	report, received := leakyway.RunNTPNTP(m, cfg, msg)

	fmt.Printf("sent     : %q\n", secret)
	fmt.Printf("received : %q\n", string(leakyway.BitsToBytes(received)))
	fmt.Printf("channel  : %s\n", report)
	if report.Errors != 0 {
		log.Fatalf("transmission had %d bit errors", report.Errors)
	}
	fmt.Println("transmitted perfectly — the sender and receiver shared nothing but an LLC set")
}
