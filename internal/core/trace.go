package core

import (
	"strings"

	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

// Trace records a sequence of labelled LLC set snapshots, rendering them in
// the style of the paper's state-walk figures (Figures 1, 6, 9, 10): one row
// per step, each way shown as "name:age".
type Trace struct {
	names map[mem.LineAddr]string
	steps []traceStep
}

type traceStep struct {
	label string
	view  hier.SetView
}

// NewTrace creates an empty trace.
func NewTrace() *Trace {
	return &Trace{names: make(map[mem.LineAddr]string)}
}

// Label registers a display name for the line at va in the agent's address
// space.
func (tr *Trace) Label(c *sim.Core, va mem.VAddr, name string) {
	tr.names[c.AS.MustTranslate(va).Line()] = name
}

// Snap records the LLC set containing va under the given step label.
func (tr *Trace) Snap(m *sim.Machine, c *sim.Core, va mem.VAddr, label string) {
	tr.steps = append(tr.steps, traceStep{
		label: label,
		view:  m.H.LLCSet(c.AS.MustTranslate(va)),
	})
}

// Render produces the full state walk as text.
func (tr *Trace) Render() string {
	var b strings.Builder
	for _, s := range tr.steps {
		b.WriteString(s.label)
		b.WriteString("\n  ")
		b.WriteString(s.view.Format(tr.names))
		b.WriteString("\n")
	}
	return b.String()
}

// Steps returns the number of recorded snapshots.
func (tr *Trace) Steps() int { return len(tr.steps) }
