package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"leakyway/internal/telemetry"
	"leakyway/internal/trace"
)

// progressContext builds a quick single-experiment context with telemetry
// attached: a Progress tracker plus a counting-only trace collector, the
// exact shape the daemon runs jobs with.
func progressContext(out *bytes.Buffer, jobs int) (*Context, *telemetry.Progress, *trace.EventCounts) {
	ctx := NewContext(out)
	ctx.Quick = true
	ctx.Jobs = jobs
	prog := telemetry.NewProgress()
	counts := &trace.EventCounts{}
	ctx.Trace = trace.NewCountingCollector(counts)
	prog.SetEventSource(counts.Counts)
	ctx.Progress = prog
	return ctx, prog, counts
}

// TestProgressCheckpointsPopulate runs one experiment with telemetry on
// and checks every checkpoint dimension advanced: phases, shards, and the
// per-subsystem event counts folded out of the trace bus. fig8 is the
// pick because its platform sweep goes through Parallel, so the shard
// counters must move.
func TestProgressCheckpointsPopulate(t *testing.T) {
	var out bytes.Buffer
	ctx, prog, counts := progressContext(&out, 2)

	if _, err := RunOne(ctx, "fig8"); err != nil {
		t.Fatal(err)
	}

	s := prog.Snapshot()
	if s.PhasesTotal != 1 || s.PhasesDone != 1 {
		t.Fatalf("phases %d/%d, want 1/1", s.PhasesDone, s.PhasesTotal)
	}
	if s.Phase != "fig8" {
		t.Fatalf("phase %q, want fig8", s.Phase)
	}
	if s.ShardsDone == 0 || s.ShardsDone != s.ShardsTotal {
		t.Fatalf("shards %d/%d: want nonzero and settled", s.ShardsDone, s.ShardsTotal)
	}
	if counts.Total() == 0 {
		t.Fatalf("counting trace sink saw no events")
	}
	if s.Events["sim"] == 0 {
		t.Fatalf("snapshot events missing sim activity: %v", s.Events)
	}
}

// TestTelemetryNeverPerturbsOutput is the determinism acceptance gate:
// report bytes and metrics must be identical with telemetry on or off,
// at any -jobs.
func TestTelemetryNeverPerturbsOutput(t *testing.T) {
	var baseline bytes.Buffer
	base := NewContext(&baseline)
	base.Quick = true
	base.Jobs = 1
	baseRes, err := RunOne(base, "fig6")
	if err != nil {
		t.Fatal(err)
	}

	for _, jobs := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("jobs%d", jobs), func(t *testing.T) {
			var out bytes.Buffer
			ctx, _, _ := progressContext(&out, jobs)
			res, err := RunOne(ctx, "fig6")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out.Bytes(), baseline.Bytes()) {
				t.Fatalf("telemetry-on report differs from telemetry-off baseline at jobs=%d", jobs)
			}
			for k, v := range baseRes.Metrics {
				if res.Metrics[k] != v {
					t.Fatalf("metric %s: %v (telemetry on) != %v (off)", k, res.Metrics[k], v)
				}
			}
		})
	}
}

// TestProgressSnapshotMidRun samples the tracker while the run is in
// flight and checks monotonicity — the property the SSE stream leans on.
func TestProgressSnapshotMidRun(t *testing.T) {
	var out bytes.Buffer
	ctx, prog, _ := progressContext(&out, 2)

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := RunOne(ctx, "fig6"); err != nil {
			t.Error(err)
		}
	}()

	var prev telemetry.ProgressSnapshot
	for {
		select {
		case <-done:
			final := prog.Snapshot()
			if final.ShardsDone < prev.ShardsDone {
				t.Fatalf("shards went backwards: %d then %d", prev.ShardsDone, final.ShardsDone)
			}
			return
		default:
		}
		s := prog.Snapshot()
		if s.ShardsDone < prev.ShardsDone || s.PhasesDone < prev.PhasesDone {
			t.Fatalf("progress regressed: %+v after %+v", s, prev)
		}
		prev = s
	}
}
