// Package platform provides the two processor configurations of Table I in
// the paper: the Core i7-6700 (Skylake) and Core i7-7700K (Kaby Lake), both
// 4 cores with 8-way private L1s, 4-way private non-inclusive L2s, and a
// 16-way shared inclusive LLC.
package platform

import "leakyway/internal/hier"

// Names for the two paper platforms.
const (
	SkylakeName  = "Skylake (i7-6700)"
	KabyLakeName = "Kaby Lake (i7-7700K)"
)

// Skylake returns the Core i7-6700 configuration: 4 cores at 3.4 GHz,
// 32 KiB/8-way L1, 256 KiB/4-way L2, 8 MiB/16-way LLC in 4 slices.
func Skylake() hier.Config {
	return hier.Config{
		Name:    SkylakeName,
		Cores:   4,
		FreqGHz: 3.4,
		L1Sets:  64, L1Ways: 8,
		L2Sets: 1024, L2Ways: 4,
		LLCSlices: 4, LLCSetsPerSlice: 2048, LLCWays: 16,
		Lat: hier.DefaultLatency(),
	}
}

// KabyLake returns the Core i7-7700K configuration: 4 cores at 4.2 GHz with
// the same cache geometry as Skylake. The higher clock makes fixed-time DRAM
// and flush operations cost more cycles, which is why the paper's Kaby Lake
// capacities are slightly lower and its flush-heavy loops slightly slower.
func KabyLake() hier.Config {
	cfg := Skylake()
	cfg.Name = KabyLakeName
	cfg.FreqGHz = 4.2
	cfg.Lat.L2Hit = 14
	cfg.Lat.LLCHit = 38
	cfg.Lat.Mem = 196
	cfg.Lat.MemJit = 18
	cfg.Lat.FlushPresent = 136
	cfg.Lat.FlushDirty = 172
	cfg.Lat.FlushAbsent = 98
	cfg.Lat.TimerOverhead = 70
	return cfg
}

// All returns both platforms in paper order.
func All() []hier.Config {
	return []hier.Config{Skylake(), KabyLake()}
}

// ByName resolves a platform by its short flag name ("skylake", "kabylake").
func ByName(name string) (hier.Config, bool) {
	switch name {
	case "skylake", "Skylake", SkylakeName:
		return Skylake(), true
	case "kabylake", "KabyLake", "kaby-lake", KabyLakeName:
		return KabyLake(), true
	}
	return hier.Config{}, false
}
