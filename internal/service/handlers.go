package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"leakyway/internal/experiments"
	"leakyway/internal/telemetry"
)

// jobView is the GET /v1/jobs/{id} response body.
type jobView struct {
	ID        string   `json:"id"`
	Key       string   `json:"key"`
	Status    string   `json:"status"`
	Error     string   `json:"error,omitempty"`
	Attempts  int      `json:"attempts,omitempty"`
	CacheHit  bool     `json:"cache_hit"`
	Artifacts []string `json:"artifacts,omitempty"`
	// Assertion summary from the stored result (done jobs only).
	AssertFailed int `json:"assert_failed,omitempty"`
	AssertTotal  int `json:"assert_total,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP API. Routes use Go 1.22 method
// patterns, so an unknown method on a known path is 405 for free.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{name}", s.handleArtifact)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statsz", s.handleStatsz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// maxSubmitBytes bounds the request body; templates are a few KB, so
// 4 MiB is generous without letting a client balloon daemon memory.
const maxSubmitBytes = 4 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	var sub Submission
	if err := dec.Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, "request body: %v", err)
		return
	}
	if sub.Template == "" {
		writeError(w, http.StatusBadRequest, "template: must not be empty")
		return
	}
	j, err := s.Submit(sub)
	if err != nil {
		var se *submitError
		if errors.As(err, &se) {
			if se.retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(se.retryAfter))
			}
			writeError(w, se.status, "%s", se.msg)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	switch {
	case j.CacheHit:
		w.Header().Set("X-Cache", "hit")
	case j.Coalesced:
		w.Header().Set("X-Cache", "coalesced")
	default:
		w.Header().Set("X-Cache", "miss")
	}
	status := http.StatusAccepted
	if j.CacheHit {
		status = http.StatusOK
	}
	writeJSON(w, status, s.viewOf(j.ID))
}

// viewOf renders a job's client-visible state, folding in the stored
// result's artifact list when the job is done.
func (s *Server) viewOf(id string) jobView {
	snap, ok := s.snapshotJob(id)
	if !ok {
		return jobView{}
	}
	v := jobView{
		ID:       snap.ID,
		Key:      snap.Key,
		Status:   snap.Status,
		Error:    snap.Error,
		Attempts: snap.Attempts,
		CacheHit: snap.CacheHit,
	}
	if snap.Status == StatusDone {
		if meta, err := s.store.Meta(snap.Key); err == nil {
			names := make([]string, 0, len(meta.Artifacts))
			for name := range meta.Artifacts {
				names = append(names, name)
			}
			sortStrings(names)
			v.Artifacts = names
			v.AssertFailed = meta.AssertFailed
			v.AssertTotal = meta.AssertTotal
		}
	}
	return v
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.snapshotJob(id); !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, s.viewOf(id))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	found, err := s.Cancel(id)
	if !found {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.viewOf(id))
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	name := r.PathValue("name")
	snap, ok := s.snapshotJob(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	af, ok := artifactFiles[name]
	if !ok {
		writeError(w, http.StatusNotFound, "no such artifact %q (want metrics, report, trace or progress)", name)
		return
	}
	if snap.Status != StatusDone {
		writeError(w, http.StatusConflict, "job %s is %s; artifacts exist only for done jobs", id, snap.Status)
		return
	}
	data, err := s.store.Artifact(snap.Key, name)
	if err != nil {
		// Distinguish "this run never recorded that artifact" from "the
		// whole entry was evicted under the store quota" — the latter is
		// recomputable by resubmitting the same template.
		if !s.store.Has(snap.Key) {
			writeError(w, http.StatusGone, "result for job %s was evicted under the store quota; resubmit to recompute", id)
			return
		}
		writeError(w, http.StatusNotFound, "artifact %q not recorded for job %s", name, id)
		return
	}
	w.Header().Set("Content-Type", af.contentType)
	w.Write(data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	deg, reason := s.DegradedState()
	s.mu.Lock()
	queued, jobs, draining := s.queued, len(s.jobs), s.draining
	s.mu.Unlock()
	body := map[string]any{
		"status":       "ok",
		"engine":       experiments.EngineVersion,
		"queue_depth":  queued,
		"workers":      s.cfg.Workers,
		"workers_busy": int(s.met.workersBusy.Value()),
		"jobs":         jobs,
	}
	status := http.StatusOK
	switch {
	case draining:
		body["status"] = "draining"
		status = http.StatusServiceUnavailable
	case deg:
		body["status"] = "degraded"
		body["reason"] = reason
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// handleMetricsz renders the telemetry registry as Prometheus text
// exposition (version 0.0.4) — the scrape endpoint.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	telemetry.WritePrometheus(w, s.met.reg.Snapshot())
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	stats := s.Stats()
	s.mu.Lock()
	out := map[string]any{
		"queued":   s.queued,
		"workers":  s.cfg.Workers,
		"draining": s.draining,
		"jobs":     len(s.jobs),
	}
	s.mu.Unlock()
	for k, v := range stats {
		out[k] = v
	}
	writeJSON(w, http.StatusOK, out)
}
