package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"leakyway/internal/iofault"
)

// The chaos suite runs real jobs through the production durability paths
// with an iofault.Injector underneath, asserting the daemon's contract
// under a hostile disk: admissions degrade to 503 + Retry-After instead
// of lying, reads and running jobs keep working, recovery is automatic
// once the fault clears, and no corrupt store entry survives a restart.

// waitDegraded polls until the server's degraded state matches want.
func waitDegraded(t *testing.T, s *Server, want bool) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		deg, reason := s.DegradedState()
		if deg == want {
			return reason
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("server never reached degraded=%v", want)
	return ""
}

// submitUnique submits a fresh-keyed job (distinct seed) and returns it.
func submitUnique(t *testing.T, s *Server, seed int64) *Job {
	t.Helper()
	j, err := s.Submit(Submission{Template: tmplFor("chaos"), Seed: seed})
	if err != nil {
		t.Fatalf("submit seed %d: %v", seed, err)
	}
	return j
}

func TestChaosJournalFsyncFailureDegradesAndRecovers(t *testing.T) {
	inj := iofault.NewInjector(iofault.OS(), 1,
		iofault.FailSync("journal.jsonl", 1, iofault.ErrIO))
	inj.SetActive(false) // let New build a clean journal
	s := newTestServer(t, func(c *Config) {
		c.FS = inj
		c.FsyncRetries = 1
		c.FsyncRetryBase = time.Millisecond
		c.ProbeInterval = 10 * time.Millisecond
	})
	defer s.Drain()

	// A healthy admission first, so reads have something to serve.
	j0 := submitUnique(t, s, 1)
	waitStatus(t, s, j0.ID, StatusDone)

	// The disk turns hostile: the WAL fsync dies, so the admission must
	// fail 503 with a Retry-After hint — never a silent accept.
	inj.SetActive(true)
	_, err := s.Submit(Submission{Template: tmplFor("chaos"), Seed: 2})
	se, ok := err.(*submitError)
	if !ok || se.status != http.StatusServiceUnavailable {
		t.Fatalf("submit under dead fsync: %v, want 503", err)
	}
	if se.retryAfter <= 0 {
		t.Fatalf("degraded 503 missing Retry-After hint")
	}
	waitDegraded(t, s, true)

	// Reads keep working while degraded: healthz reports the state, the
	// finished job's artifacts stay servable.
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz status %d, want 503", rec.Code)
	}
	var hb map[string]any
	json.Unmarshal(rec.Body.Bytes(), &hb)
	if hb["status"] != "degraded" || hb["reason"] == "" {
		t.Fatalf("degraded healthz body %v", hb)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/v1/jobs/%s/artifacts/report", j0.ID), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("artifact read while degraded: %d", rec.Code)
	}

	// Repeated submissions stay rejected and counted while the fault
	// holds — the probe keeps failing through the same WAL path.
	if _, err := s.Submit(Submission{Template: tmplFor("chaos"), Seed: 3}); err == nil {
		t.Fatalf("still-degraded server accepted a job")
	}
	if got := s.met.rejectedDegraded.Value(); got < 2 {
		t.Fatalf("rejected_degraded count %d, want >= 2", got)
	}

	// The fault clears; the probe must notice and resume admissions.
	inj.SetActive(false)
	waitDegraded(t, s, false)
	j2 := submitUnique(t, s, 2)
	waitStatus(t, s, j2.ID, StatusDone)
	if got := s.met.degradedEntered.Value(); got != 1 {
		t.Fatalf("degraded episodes %d, want exactly 1", got)
	}
}

func TestChaosDiskFullMidArtifactWriteRetriesToCompletion(t *testing.T) {
	// The store's disk fills mid-artifact-write (torn at the budget
	// boundary), then space frees up. The job's publish fails, the server
	// degrades, and the bounded retry finishes the job once the probe
	// clears the fault.
	rule := iofault.DiskFull("store", 64)
	inj := iofault.NewInjector(iofault.OS(), 1, rule)
	inj.SetActive(false)
	s := newTestServer(t, func(c *Config) {
		c.FS = inj
		c.MaxRetries = 8
		c.RetryBase = 2 * time.Millisecond
		c.ProbeInterval = 5 * time.Millisecond
	})
	defer s.Drain()

	inj.SetActive(true)
	j := submitUnique(t, s, 7)
	waitDegraded(t, s, true)
	if inj.Injected("disk-full") == 0 {
		t.Fatalf("disk-full rule never fired")
	}

	// Space frees up: probe exits degraded mode, the retry publishes.
	rule.Reset()
	inj.SetActive(false)
	waitDegraded(t, s, false)
	waitStatus(t, s, j.ID, StatusDone)

	// The published entry is intact: artifacts read back and survive a
	// fresh integrity sweep.
	if _, err := s.store.Artifact(j.Key, "metrics"); err != nil {
		t.Fatalf("artifact after recovery: %v", err)
	}
	if _, err := s.store.verifyEntry(s.store.entryDir(j.Key)); err != nil {
		t.Fatalf("recovered entry fails verification: %v", err)
	}
}

func TestChaosKillDuringEvictionSweptOnRestart(t *testing.T) {
	dir := t.TempDir()
	// Evictions tear (half the entry deleted, then EIO) — the on-disk
	// picture a SIGKILL mid-eviction leaves.
	inj := iofault.NewInjector(iofault.OS(), 1,
		iofault.BrokenRemove("store/", iofault.ErrIO))
	s := newTestServer(t, func(c *Config) {
		c.DataDir = dir
		c.FS = inj
		c.StoreMaxEntries = 2
		c.Stall = 50 * time.Millisecond
	})

	var jobs []*Job
	for i := 0; i < 3; i++ {
		j := submitUnique(t, s, int64(100+i))
		waitStatus(t, s, j.ID, StatusDone)
		jobs = append(jobs, j)
	}
	// Third publish evicted the first entry — torn, because removes fail.
	if s.store.Len() != 2 {
		t.Fatalf("store holds %d entries, cap 2", s.store.Len())
	}

	// One more job goes in-flight; the process dies mid-attempt (the
	// stall keeps the attempt inside its pre-engine window).
	inflight := submitUnique(t, s, 999)
	time.Sleep(10 * time.Millisecond)
	s.Kill()

	// Restart over a healthy disk: the sweep must repair the torn
	// eviction, replay must finish the interrupted job.
	s2 := newTestServer(t, func(c *Config) { c.DataDir = dir })
	defer s2.Drain()
	if got := s2.met.sweepRemoved.Value(); got < 1 {
		t.Fatalf("sweep removed %d entries, want the torn eviction", got)
	}
	if deg, reason := s2.DegradedState(); deg {
		t.Fatalf("restarted server degraded: %s", reason)
	}
	// The surviving entries are intact.
	for _, j := range jobs[1:] {
		if !s2.store.Has(j.Key) {
			continue // may have been legally evicted during recovery
		}
		if _, err := s2.store.verifyEntry(s2.store.entryDir(j.Key)); err != nil {
			t.Fatalf("surviving entry %s corrupt after restart: %v", shortKey(j.Key), err)
		}
	}
	done := waitStatus(t, s2, inflight.ID, StatusDone)
	if _, err := s2.store.Artifact(done.Key, "metrics"); err != nil {
		t.Fatalf("replayed job's artifact unreadable: %v", err)
	}
}

func TestChaosChurnStaysUnderQuota(t *testing.T) {
	// Sustained unique-key churn against a byte quota: the store must
	// stay under quota after every publish, evictions must fire, and
	// every job must still complete correctly.
	const quota = 4096
	s := newTestServer(t, func(c *Config) { c.StoreQuotaBytes = quota })
	defer s.Drain()

	for i := 0; i < 30; i++ {
		j := submitUnique(t, s, int64(1000+i))
		waitStatus(t, s, j.ID, StatusDone)
		if got := s.store.SizeBytes(); got > quota {
			t.Fatalf("after job %d the store is %d bytes, quota %d", i, got, quota)
		}
		// The just-finished job's artifacts are readable: the newest
		// entry is by definition not the LRU victim.
		if _, err := s.store.Artifact(j.Key, "report"); err != nil {
			t.Fatalf("fresh result evicted or unreadable: %v", err)
		}
	}
	if got := s.met.storeEvictions.Value(); got == 0 {
		t.Fatalf("30 unique jobs under a %d-byte quota evicted nothing", quota)
	}
	if got := s.met.storeEvictedBytes.Value(); got == 0 {
		t.Fatalf("evicted-bytes counter never moved")
	}

	// An evicted job's artifact answers 410 Gone with resubmit guidance.
	first, ok := s.snapshotJob("j-000001")
	if !ok {
		t.Fatalf("first job record missing")
	}
	if !s.store.Has(first.Key) {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/j-000001/artifacts/report", nil))
		if rec.Code != http.StatusGone {
			t.Fatalf("evicted artifact status %d, want 410", rec.Code)
		}
	}
}
