// Command loadgen is the daemon throughput benchmark. It drives
// leakywayd's admission path over real HTTP at a ramp of concurrency
// levels and reports, per level, the admission throughput (accepted
// jobs/s), the submit-latency distribution, and the 429 rejection rate;
// it then names the saturation point — the first level where the queue
// pushed back or where extra concurrency stopped buying throughput.
//
// By default it self-hosts an in-process daemon with a synthetic runner
// (-fake, default 5ms per job) so the benchmark measures the daemon —
// queue, single-flight, journal, store — rather than the simulation
// kernel. -fake=0 swaps in the real engine; -addr targets an already
// running external daemon instead (its -data fills with results).
//
// After the ramp it scrapes /metricsz and summarizes the server-side
// queue-wait histogram, closing the loop between the client-observed
// and daemon-observed views of the same run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"leakyway/internal/scenario"
	"leakyway/internal/service"
	"leakyway/internal/telemetry"
)

var (
	addr     = flag.String("addr", "", "benchmark an external daemon at this base URL (default: self-host in-process)")
	template = flag.String("template", "templates/fig6.yaml", "scenario template to submit")
	levels   = flag.String("levels", "1,2,4,8,16", "comma-separated concurrency ramp")
	duration = flag.Duration("duration", 2*time.Second, "time spent at each concurrency level")
	workers  = flag.Int("workers", 2, "worker pool size (self-hosted only)")
	queueCap = flag.Int("queue", 64, "queue capacity (self-hosted only)")
	fake     = flag.Duration("fake", 5*time.Millisecond, "synthetic per-job runtime (self-hosted only; 0 runs the real engine)")

	churn      = flag.Int64("store-churn", 0, "churn mode: complete this many unique-seed jobs against a quota-bound store and report eviction throughput (replaces the ramp)")
	storeQuota = flag.Int64("store-quota", 64<<10, "result-store byte quota (self-hosted churn mode)")
)

func main() {
	flag.Parse()
	tmpl, err := os.ReadFile(*template)
	if err != nil {
		fatalf("template: %v", err)
	}
	ramp, err := parseLevels(*levels)
	if err != nil {
		fatalf("%v", err)
	}

	base := *addr
	if base == "" {
		var stop func()
		base, stop = selfHost()
		defer stop()
	}

	if *churn > 0 {
		runChurn(base, string(tmpl), ramp[0], *churn)
		return
	}

	fmt.Printf("loadgen: target %s, template %s, %v per level\n\n", base, *template, *duration)
	fmt.Printf("%7s %12s %10s %10s %10s %10s %8s\n",
		"conc", "accepted/s", "p50", "p90", "p99", "max", "429s")

	var results []levelResult
	for _, c := range ramp {
		r := runLevel(base, string(tmpl), c, *duration)
		results = append(results, r)
		fmt.Printf("%7d %12.1f %10s %10s %10s %10s %7.1f%%\n",
			c, r.acceptedPerSec(),
			fmtDur(r.pct(0.50)), fmtDur(r.pct(0.90)), fmtDur(r.pct(0.99)), fmtDur(r.max()),
			r.rejectRate()*100)
	}

	fmt.Println()
	reportSaturation(results)
	reportQueueWait(base)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-levels: bad level %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// selfHost spins up an in-process daemon on an ephemeral port and
// returns its base URL plus a teardown func. The synthetic runner keeps
// per-job cost flat and publishes progress like the real engine would.
func selfHost() (string, func()) {
	dir, err := os.MkdirTemp("", "loadgen-")
	if err != nil {
		fatalf("tempdir: %v", err)
	}
	cfg := service.Config{
		DataDir:  dir,
		Workers:  *workers,
		QueueCap: *queueCap,
		// Benchmark runs don't want operational chatter on stderr.
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	if *churn > 0 {
		cfg.StoreQuotaBytes = *storeQuota
	}
	if *fake > 0 {
		d := *fake
		cfg.Runner = func(ctx context.Context, sub service.Submission, spec *scenario.Spec, prog *telemetry.Progress) (*service.Result, error) {
			prog.SetPhasesTotal(1)
			prog.StartPhase("synthetic")
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			prog.EndPhase()
			return &service.Result{Report: []byte("synthetic\n"), Metrics: []byte("{}\n")}, nil
		}
	}
	srv, err := service.New(cfg)
	if err != nil {
		fatalf("self-host: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() {
		hs.Close()
		os.RemoveAll(dir)
	}
	return "http://" + ln.Addr().String(), stop
}

// levelResult collects one concurrency level's client-side observations.
type levelResult struct {
	conc      int
	elapsed   time.Duration
	accepted  int64
	rejected  int64
	errors    int64
	latencies []time.Duration // submit round-trips, accepted only
}

func (r *levelResult) acceptedPerSec() float64 {
	return float64(r.accepted) / r.elapsed.Seconds()
}

func (r *levelResult) rejectRate() float64 {
	total := r.accepted + r.rejected
	if total == 0 {
		return 0
	}
	return float64(r.rejected) / float64(total)
}

func (r *levelResult) pct(p float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	i := int(p * float64(len(r.latencies)-1))
	return r.latencies[i]
}

func (r *levelResult) max() time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	return r.latencies[len(r.latencies)-1]
}

// seedCounter makes every submission unique across the whole run, so
// neither the result cache nor single-flight short-circuits admission.
var seedCounter atomic.Int64

// runLevel hammers POST /v1/jobs from conc goroutines for d.
func runLevel(base, tmpl string, conc int, d time.Duration) levelResult {
	r := levelResult{conc: conc}
	var mu sync.Mutex
	deadline := time.Now().Add(d)
	start := time.Now()

	var wg sync.WaitGroup
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []time.Duration
			var acc, rej, errs int64
			for time.Now().Before(deadline) {
				seed := seedCounter.Add(1)
				body, _ := json.Marshal(map[string]any{
					"template": tmpl,
					"filename": "loadgen.yaml",
					"seed":     seed,
					"quick":    true,
				})
				t0 := time.Now()
				resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
				rt := time.Since(t0)
				if err != nil {
					errs++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted, http.StatusOK:
					acc++
					local = append(local, rt)
				case http.StatusTooManyRequests:
					rej++
				default:
					errs++
				}
			}
			mu.Lock()
			r.accepted += acc
			r.rejected += rej
			r.errors += errs
			r.latencies = append(r.latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	r.elapsed = time.Since(start)
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	return r
}

// runChurn is the store-governance benchmark: conc goroutines submit
// unique-seed jobs (every one a store miss) until total completions
// reach the target, against a daemon whose store quota forces steady
// eviction. It then reports eviction throughput and the final store
// occupancy from the daemon's own /metricsz, plus a hard check that the
// quota actually held.
func runChurn(base, tmpl string, conc int, total int64) {
	fmt.Printf("loadgen: store-churn %d unique jobs at concurrency %d, quota %d bytes\n",
		total, conc, *storeQuota)
	start := time.Now()
	var accepted atomic.Int64

	var wg sync.WaitGroup
	for g := 0; g < conc; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for accepted.Load() < total {
				seed := seedCounter.Add(1)
				body, _ := json.Marshal(map[string]any{
					"template": tmpl,
					"filename": "loadgen.yaml",
					"seed":     seed,
					"quick":    true,
				})
				resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					fatalf("churn submit: %v", err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted, http.StatusOK:
					accepted.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					time.Sleep(5 * time.Millisecond) // backpressure: let workers drain
				default:
					fatalf("churn submit: unexpected status %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()

	// Admissions done; wait for the queue to drain so evictions settle.
	for {
		if metricValue(base, "leakywayd_queue_depth") == 0 &&
			metricValue(base, "leakywayd_workers_busy") == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	elapsed := time.Since(start)

	evictions := metricValue(base, "leakywayd_store_evictions_total")
	evictedBytes := metricValue(base, "leakywayd_store_evicted_bytes_total")
	storeBytes := metricValue(base, "leakywayd_store_bytes")
	entries := metricValue(base, "leakywayd_store_entries")
	fmt.Printf("churn: %d jobs in %s (%.1f jobs/s)\n",
		accepted.Load(), elapsed.Round(time.Millisecond), float64(accepted.Load())/elapsed.Seconds())
	fmt.Printf("churn: %.0f evictions (%.1f/s), %.0f bytes reclaimed\n",
		evictions, evictions/elapsed.Seconds(), evictedBytes)
	fmt.Printf("churn: store settled at %.0f bytes across %.0f entries (quota %d)\n",
		storeBytes, entries, *storeQuota)
	if int64(storeBytes) > *storeQuota {
		fatalf("store ended at %.0f bytes, over the %d-byte quota", storeBytes, *storeQuota)
	}
	if evictions == 0 {
		fmt.Println("churn: warning — no evictions; raise -store-churn or shrink -store-quota")
	}
}

// metricValue scrapes one unlabeled sample's value from /metricsz.
func metricValue(base, name string) float64 {
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		fatalf("metricsz: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(data), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			f, _ := strconv.ParseFloat(strings.TrimSpace(v), 64)
			return f
		}
	}
	return 0
}

// reportSaturation names the first level where the daemon pushed back
// (any 429s) or where doubling concurrency bought <10% more throughput.
func reportSaturation(results []levelResult) {
	for i, r := range results {
		if r.rejected > 0 {
			fmt.Printf("saturation: queue pushback first seen at concurrency %d (%.1f%% of submissions got 429)\n",
				r.conc, r.rejectRate()*100)
			return
		}
		if i > 0 && r.acceptedPerSec() < results[i-1].acceptedPerSec()*1.10 {
			fmt.Printf("saturation: throughput plateaued at concurrency %d (%.1f/s vs %.1f/s at %d)\n",
				r.conc, r.acceptedPerSec(), results[i-1].acceptedPerSec(), results[i-1].conc)
			return
		}
	}
	fmt.Println("saturation: not reached — raise -levels or shrink -queue to find the knee")
}

// reportQueueWait scrapes /metricsz and prints percentile estimates
// interpolated from the server-side leakywayd_queue_wait_seconds
// histogram — the daemon's own view of admission-to-start delay.
func reportQueueWait(base string) {
	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		fmt.Printf("queue-wait: /metricsz scrape failed: %v\n", err)
		return
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		fmt.Printf("queue-wait: /metricsz status %d\n", resp.StatusCode)
		return
	}
	bounds, counts, total := parseHistogram(string(data), "leakywayd_queue_wait_seconds")
	if total == 0 {
		fmt.Println("queue-wait: no samples in leakywayd_queue_wait_seconds")
		return
	}
	fmt.Printf("queue-wait (server-side, %d samples): p50<=%s p90<=%s p99<=%s\n",
		total,
		fmtDur(histPct(bounds, counts, total, 0.50)),
		fmtDur(histPct(bounds, counts, total, 0.90)),
		fmtDur(histPct(bounds, counts, total, 0.99)))
}

// parseHistogram pulls one family's cumulative buckets out of a
// Prometheus text scrape. Returns upper bounds (seconds; +Inf last),
// cumulative counts, and the total sample count.
func parseHistogram(body, family string) (bounds []float64, counts []uint64, total uint64) {
	prefix := family + `_bucket{le="`
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, family+"_count "); ok {
			total, _ = strconv.ParseUint(strings.TrimSpace(v), 10, 64)
			continue
		}
		rest, ok := strings.CutPrefix(line, prefix)
		if !ok {
			continue
		}
		le, val, ok := strings.Cut(rest, `"} `)
		if !ok {
			continue
		}
		var b float64
		if le == "+Inf" {
			b = math.Inf(1)
		} else if b, _ = strconv.ParseFloat(le, 64); b == 0 && le != "0" {
			continue
		}
		n, _ := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		bounds = append(bounds, b)
		counts = append(counts, n)
	}
	return bounds, counts, total
}

// histPct returns the upper bound of the first bucket covering the
// requested quantile — the classic exposition-side estimate. A quantile
// that lands only in the +Inf bucket reports the last finite bound.
func histPct(bounds []float64, counts []uint64, total uint64, p float64) time.Duration {
	want := uint64(p * float64(total))
	var lastFinite float64
	for i, c := range counts {
		if !math.IsInf(bounds[i], 1) {
			lastFinite = bounds[i]
		}
		if c >= want && c > 0 {
			b := bounds[i]
			if math.IsInf(b, 1) {
				b = lastFinite
			}
			return time.Duration(b * float64(time.Second))
		}
	}
	return 0
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}
