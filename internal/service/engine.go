package service

import (
	"bytes"
	"context"
	"fmt"

	"leakyway/internal/experiments"
	"leakyway/internal/hier"
	"leakyway/internal/platform"
	"leakyway/internal/scenario"
	"leakyway/internal/telemetry"
	"leakyway/internal/trace"
)

// EngineRunner is the production Runner: it drives the experiment engine
// exactly the way the CLI does, so a daemon-produced metrics artifact is
// byte-identical to `leakyway -template <t> -seed <s> -json` output for
// the same parameters. When prog is non-nil the engine publishes phase
// and shard checkpoints into it, and the trace event bus is folded into
// running per-subsystem counters — through the buffering collector for
// traced jobs, or a counting-only collector (no event storage, flat
// memory) for untraced ones. Checkpoints and counts are one-way atomic
// ticks: they observe the run without steering it, so the artifacts stay
// byte-identical with telemetry on or off.
func EngineRunner(ctx context.Context, sub Submission, spec *scenario.Spec, prog *telemetry.Progress) (*Result, error) {
	var report bytes.Buffer
	ectx := experiments.NewContext(&report)
	ectx.Ctx = ctx
	ectx.Seed = sub.Seed
	ectx.Quick = sub.Quick
	ectx.Jobs = sub.Jobs
	ectx.Progress = prog
	if sub.Platform != "both" {
		p, ok := platform.ByName(sub.Platform)
		if !ok {
			// normalize() validated this; reaching here is a programming error.
			return nil, fmt.Errorf("unknown platform %q", sub.Platform)
		}
		ectx.Platforms = []hier.Config{p}
	}
	switch {
	case sub.Trace:
		ectx.Trace = trace.NewCollector()
		if prog != nil {
			counts := &trace.EventCounts{}
			ectx.Trace.SetCounts(counts)
			prog.SetEventSource(counts.Counts)
		}
	case prog != nil:
		counts := &trace.EventCounts{}
		ectx.Trace = trace.NewCountingCollector(counts)
		prog.SetEventSource(counts.Counts)
	}

	results, err := experiments.RunSpecs(ectx, []*scenario.Spec{spec})
	if err != nil {
		return nil, err
	}

	var metrics bytes.Buffer
	if err := experiments.WriteMetricsJSON(&metrics, results); err != nil {
		return nil, fmt.Errorf("metrics export: %w", err)
	}
	res := &Result{
		Report:  append([]byte(nil), report.Bytes()...),
		Metrics: metrics.Bytes(),
	}
	if sub.Trace {
		var tb bytes.Buffer
		if err := trace.WriteChromeTrace(&tb, ectx.Trace.Buffers()); err != nil {
			return nil, fmt.Errorf("trace export: %w", err)
		}
		res.Trace = tb.Bytes()
	}
	if r := results[spec.ID]; r != nil {
		ev := spec.Evaluate(r.Report, r.Metrics)
		res.AssertFailed = ev.Failed
		res.AssertTotal = len(ev.Assertions)
	}
	return res, nil
}
