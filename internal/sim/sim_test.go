package sim

import (
	"testing"

	"leakyway/internal/hier"
	"leakyway/internal/mem"
)

func testConfig() hier.Config {
	lat := hier.DefaultLatency()
	return hier.Config{
		Name: "test", Cores: 2, FreqGHz: 1,
		L1Sets: 8, L1Ways: 4,
		L2Sets: 16, L2Ways: 4,
		LLCSlices: 1, LLCSetsPerSlice: 32, LLCWays: 8,
		Lat: lat,
	}
}

func newTestMachine(seed int64) *Machine {
	return MustNewMachine(testConfig(), 1<<24, seed)
}

func TestSingleAgentClock(t *testing.T) {
	m := newTestMachine(1)
	var first, second int64
	var lvl1, lvl2 hier.Level
	m.Spawn("a", 0, nil, func(c *Core) {
		buf := c.Alloc(mem.PageSize)
		r1 := c.Load(buf)
		lvl1 = r1.Level
		first = c.Now()
		r2 := c.Load(buf)
		lvl2 = r2.Level
		second = c.Now()
	})
	m.Run()
	if lvl1 != hier.LevelMem || lvl2 != hier.LevelL1 {
		t.Fatalf("levels = %v,%v; want DRAM then L1", lvl1, lvl2)
	}
	if first <= 0 || second <= first {
		t.Fatalf("clock not advancing: %d, %d", first, second)
	}
}

func TestInterleavingIsClockOrdered(t *testing.T) {
	m := newTestMachine(2)
	var order []string
	mk := func(name string, spins int64) func(*Core) {
		return func(c *Core) {
			for i := 0; i < 3; i++ {
				c.Spin(spins)
				order = append(order, name)
			}
		}
	}
	m.Spawn("fast", 0, nil, mk("fast", 10))
	m.Spawn("slow", 1, nil, mk("slow", 100))
	m.Run()
	// fast at t=10,20,30; slow at t=100,200,300 → all fast first.
	want := []string{"fast", "fast", "fast", "slow", "slow", "slow"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		m := newTestMachine(42)
		var trace []int64
		for id := 0; id < 2; id++ {
			id := id
			m.Spawn("agent", id, nil, func(c *Core) {
				buf := c.Alloc(4 * mem.PageSize)
				for i := 0; i < 20; i++ {
					lat := c.TimedLoad(buf + mem.VAddr((i*7%64)*64))
					trace = append(trace, int64(id)*1e9+c.Now()+lat)
				}
			})
		}
		m.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestWaitUntil(t *testing.T) {
	m := newTestMachine(3)
	m.SyncSlack = 0
	m.Spawn("a", 0, nil, func(c *Core) {
		c.WaitUntil(5000)
		if c.Now() != 5000 {
			t.Errorf("Now = %d after WaitUntil(5000)", c.Now())
		}
		c.WaitUntil(1000) // already past: no-op
		if c.Now() != 5000 {
			t.Errorf("WaitUntil went backwards: %d", c.Now())
		}
	})
	m.Run()
}

func TestCrossCoreVisibility(t *testing.T) {
	m := newTestMachine(4)
	shared := m.NewSpace()
	base, err := shared.Alloc(mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	var senderLevel, receiverLevel hier.Level
	m.Spawn("sender", 0, shared, func(c *Core) {
		senderLevel = c.Load(base).Level
	})
	m.Spawn("receiver", 1, shared, func(c *Core) {
		c.WaitUntil(10000)
		receiverLevel = c.Load(base).Level
	})
	m.Run()
	if senderLevel != hier.LevelMem {
		t.Fatalf("sender level = %v, want DRAM", senderLevel)
	}
	if receiverLevel != hier.LevelLLC {
		t.Fatalf("receiver level = %v, want LLC (cross-core shared hit)", receiverLevel)
	}
}

func TestDaemonsKilledAfterWork(t *testing.T) {
	m := newTestMachine(5)
	iterations := 0
	m.SpawnDaemon("victim", 1, nil, func(c *Core) {
		buf := c.Alloc(mem.PageSize)
		for {
			c.Load(buf)
			c.Spin(100)
			iterations++
		}
	})
	m.Spawn("attacker", 0, nil, func(c *Core) {
		c.Spin(5000)
	})
	m.Run() // must terminate
	if iterations == 0 {
		t.Fatal("daemon never ran")
	}
}

func TestAgentPanicPropagates(t *testing.T) {
	m := newTestMachine(6)
	m.Spawn("boom", 0, nil, func(c *Core) {
		c.Spin(10)
		panic("kaboom")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("machine swallowed the agent panic")
		}
	}()
	m.Run()
}

func TestTimedOpsIncludeOverhead(t *testing.T) {
	cfg := testConfig()
	cfg.Lat.L1Jit, cfg.Lat.TimerJit = 0, 0
	cfg.Lat.MemJit, cfg.Lat.LLCJit, cfg.Lat.L2Jit = 0, 0, 0
	m := MustNewMachine(cfg, 1<<24, 7)
	var warm int64
	m.Spawn("a", 0, nil, func(c *Core) {
		buf := c.Alloc(mem.PageSize)
		c.Load(buf)
		warm = c.TimedLoad(buf)
	})
	m.Run()
	want := cfg.Lat.L1Hit + cfg.Lat.TimerOverhead
	if warm != want {
		t.Fatalf("timed L1 load = %d, want %d", warm, want)
	}
}

func TestSpawnBadCore(t *testing.T) {
	m := newTestMachine(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range core")
		}
	}()
	m.Spawn("bad", 99, nil, func(*Core) {})
}

func TestFenceAndFlush(t *testing.T) {
	m := newTestMachine(9)
	m.Spawn("a", 0, nil, func(c *Core) {
		buf := c.Alloc(mem.PageSize)
		c.Load(buf)
		c.Fence()
		res := c.Flush(buf)
		if res.Latency <= 0 {
			t.Error("flush latency not positive")
		}
		if got := c.Load(buf); got.Level != hier.LevelMem {
			t.Errorf("post-flush load level = %v, want DRAM", got.Level)
		}
	})
	m.Run()
}

func TestKernelSpaceLazyAndShared(t *testing.T) {
	m := newTestMachine(21)
	if m.Kernel != nil {
		t.Fatal("kernel space should not exist before first use")
	}
	k1 := m.KernelSpace()
	k2 := m.KernelSpace()
	if k1 != k2 {
		t.Fatal("KernelSpace must return the same space")
	}
	if m.Kernel == nil {
		t.Fatal("kernel space not retained")
	}
}

func TestTimedPrefetchProbeDepthOrdering(t *testing.T) {
	m := newTestMachine(22)
	kernel := m.KernelSpace()
	base := mem.VAddr(0x6000_0000_0000)
	if err := kernel.AllocAt(base, mem.PageSize); err != nil {
		t.Fatal(err)
	}
	m.Spawn("prober", 0, nil, func(c *Core) {
		deep := c.TimedPrefetchProbe(base)                       // fully mapped
		mid := c.TimedPrefetchProbe(base + 8*mem.PageSize)       // same 2M region
		far := c.TimedPrefetchProbe(mem.VAddr(0x1111_0000_0000)) // unmapped region
		if !(deep > mid && mid > far) {
			t.Errorf("probe times not ordered by translation depth: %d %d %d", deep, mid, far)
		}
	})
	m.Run()
}

func TestAgentNamesSorted(t *testing.T) {
	m := newTestMachine(23)
	m.Spawn("zeta", 0, nil, func(c *Core) { c.Spin(1) })
	m.Spawn("alpha", 1, nil, func(c *Core) { c.Spin(1) })
	names := m.AgentNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("names = %v", names)
	}
	m.Run()
}
