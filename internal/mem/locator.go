package mem

import "math/bits"

// locatorFrameSlots sizes the Locator's direct-mapped frame cache. 4096
// entries cover every frame an experiment's working set touches; collisions
// only cost a recompute, never a wrong answer.
const locatorFrameSlots = 1 << 12

// Locator answers the same slice/set queries as Geometry.Locate but
// memoizes the expensive part of the slice hash. The hash masks include
// both page-offset bits (6..11) and frame bits, so the parity splits into
//
//	slice(la) = parity(frame part) XOR parity(line-in-page part)
//
// The line-in-page contribution has only 64 possible inputs and is fully
// precomputed; the frame contribution is cached in a direct-mapped table
// keyed by frame number. A Locator is not goroutine-safe — each Hierarchy
// owns one, which the sim package serializes access to.
type Locator struct {
	setMask uint64
	masks   []uint64
	lowTab  [LinesPerPage]uint8
	tags    []uint64 // frame+1 per slot; 0 = empty; nil when Slices == 1
	vals    []uint8
}

// NewLocator builds a memoizing locator for the geometry. The result is
// exactly equivalent to calling g.Locate for every line address.
func (g *Geometry) NewLocator() *Locator {
	l := &Locator{setMask: uint64(g.SetsPerSlice - 1), masks: g.sliceMasks}
	if len(g.sliceMasks) == 0 {
		return l
	}
	for v := range l.lowTab {
		l.lowTab[v] = sliceHash(uint64(v)<<LineBits, g.sliceMasks)
	}
	l.tags = make([]uint64, locatorFrameSlots)
	l.vals = make([]uint8, locatorFrameSlots)
	return l
}

// sliceHash evaluates the XOR-tree slice hash over a physical address.
func sliceHash(pa uint64, masks []uint64) uint8 {
	var s uint8
	for i, m := range masks {
		s |= uint8(bits.OnesCount64(pa&m)&1) << uint(i)
	}
	return s
}

// Locate returns the line's slice and set, matching Geometry.Locate.
func (l *Locator) Locate(la LineAddr) (slice, set int) {
	set = int(uint64(la) & l.setMask)
	if l.tags == nil {
		return 0, set
	}
	frame := uint64(la) >> (PageBits - LineBits)
	idx := frame & (locatorFrameSlots - 1)
	if l.tags[idx] != frame+1 {
		l.tags[idx] = frame + 1
		l.vals[idx] = sliceHash(frame<<PageBits, l.masks)
	}
	return int(l.vals[idx] ^ l.lowTab[uint64(la)&(LinesPerPage-1)]), set
}
