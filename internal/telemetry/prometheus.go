package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per family, series lines
// sorted deterministically, histograms expanded into cumulative _bucket
// lines plus _sum and _count. The output for a quiesced registry is
// byte-stable, which is what the exposition golden test pins.
func WritePrometheus(w io.Writer, snap []FamilySnapshot) error {
	for _, f := range snap {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			var err error
			if s.Buckets != nil {
				err = writeHistogram(w, f, s)
			} else {
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.Name, labelString(s.Labels, "", ""), formatValue(s.Value))
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// ContentType is the exposition format's content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func writeHistogram(w io.Writer, f FamilySnapshot, s SeriesSnapshot) error {
	for i, cum := range s.Buckets {
		le := "+Inf"
		if i < len(f.Bounds) {
			le = formatValue(f.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, labelString(s.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, labelString(s.Labels, "", ""), formatValue(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, labelString(s.Labels, "", ""), s.Count)
	return err
}

// labelString renders {k="v",...}, appending an extra label (histogram
// "le") when extraKey is non-empty; empty label sets render as nothing.
func labelString(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus clients expect: shortest
// round-trip representation, integers without an exponent or decimal.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
