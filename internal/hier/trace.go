package hier

import (
	"leakyway/internal/cache"
	"leakyway/internal/mem"
	"leakyway/internal/policy"
	"leakyway/internal/trace"
)

// Tracing hooks. The hierarchy itself has no notion of agents; the sim
// layer stamps the current agent/core context before resuming an agent so
// hier events land on the right Perfetto track. All hooks are nil-safe:
// with no tracer attached every helper degenerates to the plain cache
// call, and no Event is ever constructed.

// SetTracer attaches an event sink to the hierarchy. A nil tracer
// disables hier tracing entirely.
func (h *Hierarchy) SetTracer(t *trace.Tracer) { h.tr = t }

// SetTraceAgent records the agent on whose behalf subsequent operations
// run. The scheduler calls it at every resume; standalone hierarchy users
// can leave it unset (events then carry no agent and core -1).
func (h *Hierarchy) SetTraceAgent(name string, core int) {
	h.trAgent, h.trCore = name, core
}

// hierEvent starts a hier event stamped with the current agent context.
func (h *Hierarchy) hierEvent(kind string, lvl Level, slice, set int, now int64) trace.Event {
	e := trace.E("hier", kind, now)
	e.Agent, e.Core = h.trAgent, h.trCore
	e.Level, e.Slice, e.Set = lvl.String(), slice, set
	return e
}

// lookupTraced is cache.Lookup plus hit/miss events carrying the way and
// the replacement age before/after the touch. The untraced path is
// exactly c.Lookup — same stats, same policy updates.
func (h *Hierarchy) lookupTraced(c *cache.Cache, lvl Level, slice, set int, la mem.LineAddr, cls policy.AccessClass, now int64) bool {
	if !h.tr.On(trace.PkgHier) {
		return c.Lookup(set, la, cls)
	}
	way, present := c.Probe(set, la)
	ageBefore := -1
	if present {
		ageBefore = c.AgeOf(set, way)
	}
	hit := c.Lookup(set, la, cls)
	var e trace.Event
	if hit {
		e = h.hierEvent("hit", lvl, slice, set, now)
		e.Way, e.AgeBefore, e.AgeAfter = way, ageBefore, c.AgeOf(set, way)
	} else {
		e = h.hierEvent("miss", lvl, slice, set, now)
	}
	e.Addr = uint64(la)
	h.tr.Emit(e)
	return hit
}

// fillMeta snapshots a set's replacement ages before a fill. It returns
// nil when hier tracing is off, which is the signal traceFill keys on.
func (h *Hierarchy) fillMeta(c *cache.Cache, set int) []int {
	if !h.tr.On(trace.PkgHier) {
		return nil
	}
	return c.ViewSet(set).Meta
}

// traceFill emits the evict/fill (or fill-drop) events for one completed
// Fill, given the pre-fill age snapshot from fillMeta.
func (h *Hierarchy) traceFill(c *cache.Cache, lvl Level, slice, set int, la mem.LineAddr, ev cache.Evicted, evicted, ok bool, meta []int, now int64) {
	if meta == nil {
		return
	}
	if !ok {
		e := h.hierEvent("fill-drop", lvl, slice, set, now)
		e.Addr = uint64(la)
		h.tr.Emit(e)
		return
	}
	way, present := c.Probe(set, la)
	if !present {
		return
	}
	if evicted {
		e := h.hierEvent("evict", lvl, slice, set, now)
		e.Way, e.AgeBefore, e.Addr = way, meta[way], uint64(ev.Addr)
		h.tr.Emit(e)
	}
	e := h.hierEvent("fill", lvl, slice, set, now)
	e.Way, e.AgeBefore, e.AgeAfter, e.Addr = way, meta[way], c.AgeOf(set, way), uint64(la)
	h.tr.Emit(e)
}
