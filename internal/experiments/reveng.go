package experiments

import (
	"fmt"

	"leakyway/internal/core"
	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/policy"
	"leakyway/internal/sim"
	"leakyway/internal/stats"
)

// revLab is the shared setup of the Section III reverse-engineering
// experiments: one machine, one agent, an LLC eviction set l0..lw (w+1
// congruent lines) and a private-cache eviction set.
type revLab struct {
	m  *sim.Machine
	as *mem.AddressSpace
	// ev holds l0..lw (w+1 lines, all LLC-congruent).
	ev []mem.VAddr
	// evAlt holds l'1..l'w mapped to the same LLC set (Figure 3 needs a
	// second eviction set).
	evAlt []mem.VAddr
	// priv holds lines sharing L1/L2 sets with ev[0] but not its LLC set.
	priv []mem.VAddr
}

// newRevLab builds the lab for the named experiment; id contextualizes
// any setup failure so an engine job-failure record names the experiment
// and phase instead of an opaque panic.
func newRevLab(id string, cfg hier.Config, seed int64) *revLab {
	m := sim.MustNewMachine(cfg, 1<<30, seed)
	as := m.NewSpace()
	anchor, err := as.Alloc(mem.PageSize)
	if err != nil {
		failf(id, "revlab: alloc anchor page", err)
	}
	w := cfg.LLCWays
	cong := core.MustCongruentLines(m, as, anchor, 2*w+1)
	lab := &revLab{
		m:     m,
		as:    as,
		ev:    append([]mem.VAddr{anchor}, cong[:w]...),
		evAlt: cong[w : 2*w+1],
		priv:  core.MustPrivateCongruentLines(m, as, anchor, cfg.L1Ways+cfg.L2Ways+1),
	}
	return lab
}

// emptyTargetSet takes ownership of every way in the target LLC set and
// flushes it empty (Step 1 of the Figure 2 experiment: "load the eviction
// set and flush all of them with CLFLUSH").
func (lab *revLab) emptyTargetSet(c *sim.Core) {
	for round := 0; round < 3; round++ {
		for _, va := range lab.ev {
			c.Load(va)
		}
	}
	for _, va := range lab.ev {
		c.Flush(va)
	}
	for _, va := range lab.evAlt {
		c.Flush(va)
	}
	c.Fence()
}

func init() {
	register(Experiment{
		ID:    "fig2",
		Title: "Figure 2 — a PREFETCHNTA'd line is evicted before loaded lines, at any position",
		Paper: "reloading the prefetched line always takes >200 cycles (it was evicted), for every position a=0..15",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Figure 3 — insertion policy: the prefetched line behaves exactly like an age-3 line",
		Paper: "loading l'1..l'15 evicts l1..l15 in order, regardless of where the prefetched line sits",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Figure 4 — an LLC hit by PREFETCHNTA does not update the line's age",
		Paper: "the prefetched-then-conflicted line is always reloaded from DRAM (>200 cycles)",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Figure 5 — PREFETCHNTA execution time depends on where the line is cached",
		Paper: "≈70 cycles from L1, 90-100 from LLC, >200 from DRAM",
		Run:   runFig5,
	})
}

// runFig2: for each position a, prepare an empty set, load l0..l(a-1),
// prefetch la, load the rest, force one eviction with lw, and time the
// reload of la.
func runFig2(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	w := cfg.LLCWays
	trials := ctx.Trials(1000)
	means := make([]float64, w)
	controls := make([]float64, w)

	// The positions are independent measurements, so each gets its own
	// lab (machine + eviction sets) on a position-derived seed and the w
	// position loops shard across free workers.
	ctx.Parallel(w, func(a int) {
		lab := newRevLab("fig2", cfg, ctx.ShardSeed(a))
		lab.m.Spawn("experimenter", 0, lab.as, func(c *sim.Core) {
			var samples, control []int64
			for trial := 0; trial < trials; trial++ {
				// Prefetched case: la installed with PREFETCHNTA.
				lab.emptyTargetSet(c)
				for i := 0; i < w; i++ {
					if i == a {
						c.PrefetchNTA(lab.ev[i])
					} else {
						c.Load(lab.ev[i])
					}
					c.Fence()
				}
				c.Load(lab.ev[w]) // forces one eviction
				samples = append(samples, c.TimedLoad(lab.ev[a]))

				// Control: la loaded like the others — it must
				// survive the eviction.
				lab.emptyTargetSet(c)
				for i := 0; i < w; i++ {
					c.Load(lab.ev[i])
					c.Fence()
				}
				c.Load(lab.ev[w])
				control = append(control, c.TimedLoad(lab.ev[a]))
			}
			means[a] = stats.Mean(samples)
			controls[a] = stats.Mean(control)
		})
		lab.m.Run()
	})

	rows := [][]string{}
	minPref := means[0]
	ctrlFast := 0
	for a := 0; a < w; a++ {
		rows = append(rows, []string{
			fmt.Sprintf("%d", a),
			fmt.Sprintf("%.0f cycles", means[a]),
			fmt.Sprintf("%.0f cycles", controls[a]),
		})
		if means[a] < minPref {
			minPref = means[a]
		}
		if controls[a] < 150 {
			ctrlFast++
		}
	}
	renderTable(ctx, []string{"position a", "reload after PREFETCHNTA", "reload after load (control)"}, rows)
	ctx.Printf("prefetched line always evicted: reload ≥ %.0f cycles at every position;\n", minPref)
	ctx.Printf("loaded control survives at %d/%d positions (only the scan-first line is evicted)\n", ctrlFast, w)
	res.Metric("min_prefetched_reload_cycles", minPref)
	res.Metric("control_fast_positions", float64(ctrlFast))
	return res, nil
}

// runFig3 replays the insertion-policy experiment with full-state
// introspection standing in for the paper's restart-and-probe protocol.
func runFig3(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	lab := newRevLab("fig3", cfg, ctx.Seed+1)
	w := cfg.LLCWays
	matches, total := 0, 0
	var firstOrder []int

	lab.m.Spawn("experimenter", 0, lab.as, func(c *sim.Core) {
		for a := 1; a < w; a++ {
			// Step 1: prepare [l0:2, l1:3, ..., l(w-1):3] — fill with
			// lw, l1..l(w-1) in order, then load l0 which ages the
			// set and evicts lw.
			lab.emptyTargetSet(c)
			c.Load(lab.ev[w])
			for i := 1; i < w; i++ {
				c.Load(lab.ev[i])
			}
			c.Load(lab.ev[0])
			// Step 2: flush then prefetch la.
			c.Flush(lab.ev[a])
			c.Fence()
			c.PrefetchNTA(lab.ev[a])
			// Step 3: load l'1..l'(w-1); record which line each load
			// evicts (simulator introspection instead of the paper's
			// timing-probe-and-restart).
			var order []int
			for k := 1; k < w; k++ {
				before := presentLines(lab, c)
				c.Load(lab.evAlt[k-1])
				after := presentLines(lab, c)
				order = append(order, evictedIndex(before, after))
			}
			if a == 1 {
				firstOrder = order
			}
			ok := true
			for k := 1; k < w; k++ {
				if order[k-1] != k {
					ok = false
				}
			}
			total++
			if ok {
				matches++
			}
		}
	})
	lab.m.Run()

	rows := [][]string{}
	for k, idx := range firstOrder {
		name := "?"
		if idx >= 0 {
			name = fmt.Sprintf("l%d", idx)
		}
		rows = append(rows, []string{fmt.Sprintf("l'%d", k+1), name})
	}
	renderTable(ctx, []string{"loaded line", "evicted line"}, rows)
	frac := float64(matches) / float64(total)
	ctx.Printf("eviction order matched l1..l%d in %d/%d runs (%.0f%%): the prefetched line is treated exactly like an age-3 line\n",
		w-1, matches, total, 100*frac)
	res.Metric("order_match_fraction", frac)
	return res, nil
}

// presentLines returns which of lab.ev[0..w-1] are currently in the LLC.
func presentLines(lab *revLab, c *sim.Core) []bool {
	out := make([]bool, len(lab.ev))
	for i, va := range lab.ev {
		out[i] = lab.m.H.Present(hier.LevelLLC, lab.as.MustTranslate(va))
	}
	return out
}

// evictedIndex returns the index that flipped from present to absent.
func evictedIndex(before, after []bool) int {
	for i := range before {
		if before[i] && !after[i] {
			return i
		}
	}
	return -1
}

// runFig4: the updating-policy experiment, plus the ablation where NTA hits
// do update ages (which flips the outcome, proving the probe works).
func runFig4(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	trials := ctx.Trials(1000)

	run := func(cfg hier.Config, seed int64) (fracDRAM float64, mean float64) {
		lab := newRevLab("fig4", cfg, seed)
		w := cfg.LLCWays
		var samples []int64
		misses := 0
		lab.m.Spawn("experimenter", 0, lab.as, func(c *sim.Core) {
			th := core.Calibrate(c, 48)
			for trial := 0; trial < trials; trial++ {
				// Initial state: l0..l(w-2) at age 2, l(w-1) at
				// age 3 (installed with PREFETCHNTA), so l(w-1)
				// is the eviction candidate.
				lab.emptyTargetSet(c)
				for i := 0; i < w-1; i++ {
					c.Load(lab.ev[i])
					c.Fence()
				}
				c.PrefetchNTA(lab.ev[w-1])
				c.Fence()
				// Step 1: evict l(w-1) from L1 and L2 so the
				// prefetch in Step 2 reaches the LLC.
				core.EvictPrivate(c, lab.priv, 2)
				// Step 2: PREFETCHNTA hits the LLC.
				c.PrefetchNTA(lab.ev[w-1])
				c.Fence()
				// Step 3: a new line forces an eviction.
				c.Load(lab.ev[w])
				// Step 4: timed reload tells whether l(w-1)
				// was chosen (no age update) or survived.
				t := c.TimedLoad(lab.ev[w-1])
				samples = append(samples, t)
				if th.IsMiss(t) {
					misses++
				}
			}
		})
		lab.m.Run()
		return float64(misses) / float64(trials), stats.Mean(samples)
	}

	frac, mean := run(cfg, ctx.Seed+2)
	ctx.Printf("stock policy: step-4 reload mean %.0f cycles, DRAM in %.1f%% of %d trials\n", mean, 100*frac, trials)
	ctx.Printf("  -> the NTA hit left the age at 3 and the line was evicted (Property #2)\n")

	// Ablation: if NTA hits refreshed ages, the line would survive.
	abl := cfg
	abl.LLCPolicy = &policy.QuadAge{LoadAge: 2, NTAAge: 3, HWAge: 2, MaxAge: 3, NTAHitUpdates: true}
	fracAbl, meanAbl := run(abl, ctx.Seed+2)
	ctx.Printf("ablation (NTA hit updates age): reload mean %.0f cycles, DRAM in %.1f%% of trials\n", meanAbl, 100*fracAbl)

	res.Metric("stock_dram_fraction", frac)
	res.Metric("stock_reload_mean", mean)
	res.Metric("ablation_dram_fraction", fracAbl)
	return res, nil
}

// runFig5 measures PREFETCHNTA timing with the target in L1, LLC-only, and
// DRAM.
func runFig5(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	lab := newRevLab("fig5", cfg, ctx.Seed+3)
	trials := ctx.Trials(1000)
	var l1s, llcs, mems []int64

	lab.m.Spawn("experimenter", 0, lab.as, func(c *sim.Core) {
		lt := lab.ev[0]
		for trial := 0; trial < trials; trial++ {
			// Scenario 1: lt in L1.
			c.Load(lt)
			l1s = append(l1s, c.TimedPrefetchNTA(lt))
			// Scenario 2: lt only in the LLC.
			c.Load(lt)
			core.EvictPrivate(c, lab.priv, 2)
			llcs = append(llcs, c.TimedPrefetchNTA(lt))
			// Scenario 3: lt nowhere — evict it from the whole
			// hierarchy with LLC set conflicts.
			for lab.m.H.Present(hier.LevelLLC, lab.as.MustTranslate(lt)) {
				for _, va := range lab.ev[1:] {
					c.Load(va)
				}
			}
			mems = append(mems, c.TimedPrefetchNTA(lt))
		}
	})
	lab.m.Run()

	rows := [][]string{
		{"L1 hit", stats.Summarize(l1s).String()},
		{"LLC hit", stats.Summarize(llcs).String()},
		{"DRAM access", stats.Summarize(mems).String()},
	}
	renderTable(ctx, []string{"scenario", "PREFETCHNTA execution time (cycles)"}, rows)
	mL1, mLLC, mMem := stats.Mean(l1s), stats.Mean(llcs), stats.Mean(mems)
	ctx.Printf("tiers: %.0f < %.0f < %.0f cycles (paper: ≈70, 90-100, >200)\n", mL1, mLLC, mMem)
	res.Metric("l1_mean", mL1)
	res.Metric("llc_mean", mLLC)
	res.Metric("dram_mean", mMem)
	return res, nil
}
