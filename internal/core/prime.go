package core

import (
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

// ListingOneIndices reproduces the Prime+Scope preparation pattern of
// Listing 1 in the paper (the Skylake variant): 192 cache references over a
// 16-line eviction set whose entry 0 is the scope line. The interleaved
// double-touches of evset[0] keep the scope line resident in the private
// cache while the set is primed; the repeated rounds give every other line
// an LLC touch so its age is refreshed.
func ListingOneIndices() []int {
	var seq []int
	for i := 0; i < 3; i++ {
		for j := 0; j < 13; j += 4 {
			seq = append(seq,
				j+0, j+1, 0, 0, j+2, 0, 0, j+3,
				j+0, j+1, j+2, j+3,
				j+0, j+1, j+2, j+3,
			)
		}
	}
	return seq
}

// PrimeScopePrepare executes the Listing 1 pattern: evset must hold 16
// LLC-congruent lines with the scope line at index 0. It returns the number
// of cache references issued (192).
func PrimeScopePrepare(c *sim.Core, evset []mem.VAddr) int {
	seq := ListingOneIndices()
	for _, idx := range seq {
		c.Load(evset[idx])
	}
	return len(seq)
}

// PrimePrefetchScopePrepare executes the Listing 2 pattern: prime the
// non-scope lines (evset[1:]) rounds times with demand loads, then install
// the scope line (evset[0]) with PREFETCHNTA — simultaneously placing it in
// L1 and making it the LLC eviction candidate. The paper uses rounds=2. It
// returns the number of cache references issued.
func PrimePrefetchScopePrepare(c *sim.Core, evset []mem.VAddr, rounds int) int {
	if rounds <= 0 {
		rounds = 2
	}
	refs := 0
	for r := 0; r < rounds; r++ {
		for _, va := range evset[1:] {
			c.Load(va)
			refs++
		}
	}
	c.PrefetchNTA(evset[0])
	refs++
	return refs
}

// PrimeSet walks the whole eviction set once with demand loads — the basic
// Prime step of Prime+Probe.
func PrimeSet(c *sim.Core, evset []mem.VAddr) {
	for _, va := range evset {
		c.Load(va)
	}
}

// ProbeSet re-walks the eviction set, timing every load, and returns the
// total probe time — the Probe step of Prime+Probe.
func ProbeSet(c *sim.Core, evset []mem.VAddr) int64 {
	var total int64
	for _, va := range evset {
		total += c.TimedLoad(va)
	}
	return total
}
