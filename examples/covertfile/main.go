// Covert file transfer on a noisy machine: other processes keep touching
// the target LLC sets, so the raw channel flips bits. A repetition code (the
// reliability measure Section IV-B3 of the paper suggests) recovers the
// payload, trading bandwidth for integrity.
package main

import (
	"bytes"
	"fmt"
	"log"

	"leakyway"
)

func main() {
	plat := leakyway.Skylake()
	payload := []byte("TOP-SECRET: the quick brown fox jumps over the lazy dog 0123456789")
	bits := leakyway.BytesToBits(payload)

	cfg := leakyway.DefaultChannelConfig(plat)
	cfg.Interval = 1600
	cfg.NoisePeriod = 60_000 // a busy co-tenant hammering the target sets

	// Raw transmission first.
	m, err := leakyway.NewMachine(plat, 1<<30, 7)
	if err != nil {
		log.Fatal(err)
	}
	rawReport, rawBits := leakyway.RunNTPNTP(m, cfg, bits)
	rawErrors := countErrors(bits, rawBits)

	// Now with a 5x repetition code.
	const k = 5
	encoded := leakyway.EncodeRepetition(bits, k)
	m2, err := leakyway.NewMachine(plat, 1<<30, 7)
	if err != nil {
		log.Fatal(err)
	}
	encReport, encBits := leakyway.RunNTPNTP(m2, cfg, encoded)
	decoded := leakyway.DecodeRepetition(encBits, k)
	decErrors := countErrors(bits, decoded)

	fmt.Printf("payload: %d bytes, noise period: %d cycles\n\n", len(payload), cfg.NoisePeriod)
	fmt.Printf("raw channel   : %s\n", rawReport)
	fmt.Printf("                payload errors: %d bits -> %q\n\n",
		rawErrors, preview(leakyway.BitsToBytes(rawBits)))
	fmt.Printf("5x repetition : %s\n", encReport)
	fmt.Printf("                payload errors after majority vote: %d bits -> %q\n",
		decErrors, preview(leakyway.BitsToBytes(decoded)))

	if decErrors == 0 && bytes.Equal(leakyway.BitsToBytes(decoded), payload) {
		fmt.Println("\npayload recovered exactly despite the noise")
	} else {
		fmt.Println("\npayload still corrupted — increase the repetition factor")
	}
}

func countErrors(want, got []bool) int {
	n := 0
	for i := range want {
		if i < len(got) && want[i] != got[i] {
			n++
		}
	}
	return n
}

func preview(b []byte) string {
	if len(b) > 40 {
		b = b[:40]
	}
	return string(b)
}
