// KASLR break: the "kernel" is mapped at one of 512 possible 2 MiB slots,
// chosen at random. An unprivileged attacker prefetches one address per
// candidate slot and times it — prefetches don't fault, but their
// page-table walk runs deeper (and slower) at the slot where the kernel
// actually lives. This is the prefetch side channel of Gruss et al. that
// the paper's related-work section surveys.
package main

import (
	"fmt"

	"leakyway"
)

func main() {
	plat := leakyway.Skylake()
	cfg := leakyway.KASLRConfig{
		Slots:      512,
		SlotBytes:  2 << 20,
		ImageBytes: 1 << 20,
		Probes:     8,
	}
	res := leakyway.RunKASLR(plat, cfg, 2026)

	fmt.Printf("kernel randomized over %d slots (%d bits of entropy)\n", cfg.Slots, bits(cfg.Slots))
	fmt.Printf("attacker spent %d timed prefetches\n\n", res.Probes)

	// Show the timing landscape around the recovered slot.
	lo := res.RecoveredSlot - 3
	if lo < 0 {
		lo = 0
	}
	fmt.Println("slot   mean prefetch time")
	for s := lo; s < lo+7 && s < cfg.Slots; s++ {
		marker := ""
		if s == res.RecoveredSlot {
			marker = "  <-- recovered"
		}
		fmt.Printf("%4d   %7.1f cycles%s\n", s, res.SlotMeans[s], marker)
	}

	fmt.Printf("\ntrue slot: %d, recovered: %d\n", res.TrueSlot, res.RecoveredSlot)
	if res.TrueSlot == res.RecoveredSlot {
		fmt.Println("KASLR defeated: the kernel base leaked through prefetch timing alone")
	} else {
		fmt.Println("recovery failed — increase Probes")
	}
}

func bits(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
