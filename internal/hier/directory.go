package hier

import (
	"leakyway/internal/mem"
	"leakyway/internal/policy"
)

// Coherence directory for the non-inclusive (server) configuration. Intel's
// non-inclusive parts track private-cache residency in a sliced,
// set-associative snoop-filter directory; evicting a directory entry
// back-invalidates the tracked line from every private cache — the lever
// behind Yan et al.'s directory attacks.
//
// Section VI-B of the paper conjectures: "if prefetched data are easier to
// be evicted from a set-associative coherence directory than loaded data,
// it may be possible to build fast set conflicts in the directory, resulting
// in a directory version of NTP+NTP", and leaves verification as future
// work. Setting DirectoryWays > 0 with DirectoryNTAIsVictim true implements
// exactly that hypothesis (quad-age directory entries, PREFETCHNTA inserted
// as the eviction candidate) so the conjecture can be tested end to end.

// dirFill records la as resident in some private cache; an evicted
// directory entry back-invalidates its line everywhere.
func (h *Hierarchy) dirFill(la mem.LineAddr, cls policy.AccessClass, now, ready int64) {
	if h.dir == nil {
		return
	}
	if !h.cfg.DirectoryNTAIsVictim && cls == policy.ClassNTA {
		// Without the conjectured behaviour the directory treats NTA
		// entries like demand entries.
		cls = policy.ClassLoad
	}
	slice, set := h.loc.Locate(la)
	ev, evicted, _ := h.dir[slice].Fill(set, la, cls, now, ready)
	if evicted {
		for c := 0; c < h.cfg.Cores; c++ {
			h.l1[c].Invalidate(h.l1Set(ev.Addr), ev.Addr)
			h.l2[c].Invalidate(h.l2Set(ev.Addr), ev.Addr)
		}
	}
}

// dirTouch refreshes la's directory entry on a private fill when it already
// exists (same semantics as the LLC: demand touches rejuvenate, NTA touches
// do not).
func (h *Hierarchy) dirTouch(la mem.LineAddr, cls policy.AccessClass, now, ready int64) {
	if h.dir == nil {
		return
	}
	slice, set := h.loc.Locate(la)
	if w, ok := h.dir[slice].Probe(set, la); ok {
		h.dir[slice].Touch(set, w, cls)
		return
	}
	h.dirFill(la, cls, now, ready)
}

// dirDrop removes la's directory entry (flush path).
func (h *Hierarchy) dirDrop(la mem.LineAddr) {
	if h.dir == nil {
		return
	}
	slice, set := h.loc.Locate(la)
	h.dir[slice].Invalidate(set, la)
}

// DirPresent reports whether la is tracked by the directory (introspection).
func (h *Hierarchy) DirPresent(pa mem.PAddr) bool {
	if h.dir == nil {
		return false
	}
	la := pa.Line()
	slice, set := h.loc.Locate(la)
	_, ok := h.dir[slice].Probe(set, la)
	return ok
}
