package core

import (
	"strings"
	"testing"

	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/platform"
	"leakyway/internal/sim"
)

func newMachine(t *testing.T, seed int64) *sim.Machine {
	t.Helper()
	return sim.MustNewMachine(platform.Skylake(), 1<<30, seed)
}

func TestCalibrateThresholds(t *testing.T) {
	m := newMachine(t, 1)
	var th Thresholds
	m.Spawn("cal", 0, nil, func(c *sim.Core) {
		th = Calibrate(c, 64)
	})
	m.Run()
	lat := platform.Skylake().Lat
	// The miss threshold must sit between the LLC-hit tier and the DRAM
	// tier of timed operations.
	llcTimed := lat.LLCHit + lat.TimerOverhead + lat.LLCJit + lat.TimerJit
	memTimed := lat.Mem + lat.TimerOverhead - lat.MemJit - lat.TimerJit
	if th.MissThreshold <= llcTimed || th.MissThreshold >= memTimed {
		t.Fatalf("MissThreshold = %d, want in (%d, %d)", th.MissThreshold, llcTimed, memTimed)
	}
	if !th.IsMiss(memTimed + 10) {
		t.Error("DRAM-tier sample not classified as miss")
	}
	if th.IsMiss(llcTimed - 10) {
		t.Error("LLC-tier sample classified as miss")
	}
}

func TestCongruentLinesOracle(t *testing.T) {
	m := newMachine(t, 2)
	as := m.NewSpace()
	target, err := as.Alloc(mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	lines := MustCongruentLines(m, as, target, 16)
	if len(lines) != 16 {
		t.Fatalf("got %d lines, want 16", len(lines))
	}
	geo := m.H.Geometry()
	tline := as.MustTranslate(target).Line()
	seen := map[mem.LineAddr]bool{tline: true}
	for _, va := range lines {
		la := as.MustTranslate(va).Line()
		if seen[la] {
			t.Fatalf("duplicate line %v", la)
		}
		seen[la] = true
		if !geo.Congruent(la, tline) {
			t.Fatalf("line %v is not congruent with target", la)
		}
	}
}

func TestPrivateCongruentLinesOracle(t *testing.T) {
	m := newMachine(t, 3)
	as := m.NewSpace()
	target, _ := as.Alloc(mem.PageSize)
	lines := MustPrivateCongruentLines(m, as, target, 13)
	cfg := m.H.Config()
	geo := m.H.Geometry()
	tline := as.MustTranslate(target).Line()
	for _, va := range lines {
		la := as.MustTranslate(va).Line()
		if geo.Congruent(la, tline) {
			t.Fatal("private-congruent line collides in the LLC")
		}
		if uint64(la)%uint64(cfg.L1Sets) != uint64(tline)%uint64(cfg.L1Sets) {
			t.Fatal("L1 set mismatch")
		}
		if uint64(la)%uint64(cfg.L2Sets) != uint64(tline)%uint64(cfg.L2Sets) {
			t.Fatal("L2 set mismatch")
		}
	}
}

func TestEvictPrivateKeepsLLCCopy(t *testing.T) {
	m := newMachine(t, 4)
	as := m.NewSpace()
	target, _ := as.Alloc(mem.PageSize)
	cfg := m.H.Config()
	evset := MustPrivateCongruentLines(m, as, target, cfg.L1Ways+cfg.L2Ways+1)
	m.Spawn("a", 0, as, func(c *sim.Core) {
		c.Load(target)
		EvictPrivate(c, evset, 3)
		pa := as.MustTranslate(target)
		if m.H.PresentInCore(hier.LevelL1, 0, pa) || m.H.PresentInCore(hier.LevelL2, 0, pa) {
			t.Error("target still in private caches after EvictPrivate")
		}
		if !m.H.Present(hier.LevelLLC, pa) {
			t.Error("target lost its LLC copy — the private eviction set is not LLC-disjoint")
		}
	})
	m.Run()
}

func TestListingOneShape(t *testing.T) {
	seq := ListingOneIndices()
	if len(seq) != 192 {
		t.Fatalf("Listing 1 has %d references, want 192", len(seq))
	}
	for _, idx := range seq {
		if idx < 0 || idx > 15 {
			t.Fatalf("index %d out of the 16-line eviction set", idx)
		}
	}
	// The scope line (index 0) is touched repeatedly: 4 extra times per
	// block beyond its own turn.
	zeros := 0
	for _, idx := range seq {
		if idx == 0 {
			zeros++
		}
	}
	if zeros <= 12 {
		t.Fatalf("scope line touched %d times; pattern should re-touch it heavily", zeros)
	}
}

func TestPrimeScopePreparations(t *testing.T) {
	m := newMachine(t, 5)
	as := m.NewSpace()
	anchor, _ := as.Alloc(mem.PageSize)
	cfg := m.H.Config()
	evset := append([]mem.VAddr{anchor}, MustCongruentLines(m, as, anchor, cfg.LLCWays-1)...)
	m.Spawn("a", 0, as, func(c *sim.Core) {
		refs := PrimeScopePrepare(c, evset)
		if refs != 192 {
			t.Errorf("Prime+Scope prep refs = %d, want 192", refs)
		}
		scope := as.MustTranslate(evset[0])
		if !m.H.PresentInCore(hier.LevelL1, 0, scope) {
			t.Error("scope line not in L1 after Listing 1 prep")
		}
		if !m.H.Present(hier.LevelLLC, scope) {
			t.Error("scope line not in LLC after Listing 1 prep")
		}
	})
	m.Run()
}

func TestPrimePrefetchScopePrepare(t *testing.T) {
	m := newMachine(t, 6)
	as := m.NewSpace()
	anchor, _ := as.Alloc(mem.PageSize)
	cfg := m.H.Config()
	evset := append([]mem.VAddr{anchor}, MustCongruentLines(m, as, anchor, cfg.LLCWays)...)
	m.Spawn("a", 0, as, func(c *sim.Core) {
		refs := PrimePrefetchScopePrepare(c, evset, 2)
		if refs != 33 {
			t.Errorf("Listing 2 refs = %d, want 33", refs)
		}
		scope := as.MustTranslate(evset[0])
		if !m.H.PresentInCore(hier.LevelL1, 0, scope) {
			t.Error("scope line not in L1")
		}
		if cand, ok := m.H.LLCCandidate(scope); !ok || cand != scope.Line() {
			t.Error("scope line is not the LLC eviction candidate after NTA prep")
		}
	})
	m.Run()
}

func TestTraceRendering(t *testing.T) {
	m := newMachine(t, 7)
	as := m.NewSpace()
	target, _ := as.Alloc(mem.PageSize)
	tr := NewTrace()
	m.Spawn("a", 0, as, func(c *sim.Core) {
		tr.Label(c, target, "dt")
		c.Load(target)
		tr.Snap(m, c, target, "after load dt")
		c.PrefetchNTA(target)
		tr.Snap(m, c, target, "after prefetch dt")
	})
	m.Run()
	out := tr.Render()
	if !strings.Contains(out, "after load dt") || !strings.Contains(out, "dt:2") {
		t.Fatalf("trace missing load snapshot:\n%s", out)
	}
	if tr.Steps() != 2 {
		t.Fatalf("steps = %d, want 2", tr.Steps())
	}
}
