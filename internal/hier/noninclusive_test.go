package hier

import (
	"testing"

	"leakyway/internal/mem"
)

func nonInclusiveConfig() Config {
	cfg := testConfig()
	cfg.NonInclusive = true
	return cfg
}

func TestNonInclusiveNTASkipsLLC(t *testing.T) {
	h := MustNew(nonInclusiveConfig())
	pa := mem.PAddr(0x4040)
	res := h.PrefetchNTA(0, pa, 0)
	if res.Level != LevelMem {
		t.Fatalf("cold NTA level = %v", res.Level)
	}
	if !h.PresentInCore(LevelL1, 0, pa) {
		t.Error("NTA should still fill the local L1")
	}
	if h.Present(LevelLLC, pa) {
		t.Error("non-inclusive LLC must not receive PREFETCHNTA fills (Section VI-B)")
	}
}

func TestNonInclusiveNoBackInvalidation(t *testing.T) {
	h := MustNew(nonInclusiveConfig())
	victim := mem.PAddr(0x4040)
	h.Load(0, victim, 0)
	// Thrash the LLC set from another core.
	evset := congruentLines(h, victim, h.Config().LLCWays+1)
	now := int64(1000)
	for round := 0; round < 4; round++ {
		for _, pa := range evset {
			h.Load(1, pa, now)
			now += 1000
		}
	}
	if h.Present(LevelLLC, victim) {
		t.Fatal("victim line survived LLC thrashing")
	}
	if !h.PresentInCore(LevelL1, 0, victim) {
		t.Fatal("non-inclusive eviction must leave the private copy alive")
	}
	// The owner still hits locally — the eviction is invisible to it,
	// which is exactly why inclusive-LLC attacks do not transfer.
	if res := h.Load(0, victim, now); res.Level != LevelL1 {
		t.Fatalf("owner's reload level = %v, want L1", res.Level)
	}
}

func TestNonInclusiveConflictPrimitiveDead(t *testing.T) {
	// The NTP+NTP primitive: a second NTA cannot evict the first agent's
	// prefetched line via the LLC, because neither line is ever in it.
	h := MustNew(nonInclusiveConfig())
	dr := mem.PAddr(0x4040)
	h.PrefetchNTA(1, dr, 0)
	lines := congruentLines(h, dr, 8)
	now := int64(1000)
	for _, pa := range lines {
		h.PrefetchNTA(0, pa, now)
		now += 1000
	}
	// dr still answers from the receiver's L1: the receiver can never
	// observe the sender.
	if res := h.PrefetchNTA(1, dr, now); res.Level != LevelL1 {
		t.Fatalf("receiver's probe level = %v, want L1 (no observable conflict)", res.Level)
	}
}
