package attack

import (
	"testing"

	"leakyway/internal/platform"
	"leakyway/internal/stats"
)

func TestClassicVariantStrings(t *testing.T) {
	want := map[ClassicVariant]string{
		FlushReload: "Flush+Reload",
		FlushFlush:  "Flush+Flush",
		EvictReload: "Evict+Reload",
	}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
}

func TestClassicAttacksAccurate(t *testing.T) {
	for _, v := range []ClassicVariant{FlushReload, FlushFlush, EvictReload} {
		r := RunClassic(platform.Skylake(), v, ClassicConfig{Iterations: 300}, 7)
		if r.Accuracy < 0.98 {
			t.Errorf("%v accuracy = %.1f%%, want ≈100%%", v, 100*r.Accuracy)
		}
	}
}

func TestFlushFlushIsStealthy(t *testing.T) {
	ff := RunClassic(platform.Skylake(), FlushFlush, ClassicConfig{Iterations: 200}, 3)
	fr := RunClassic(platform.Skylake(), FlushReload, ClassicConfig{Iterations: 200}, 3)
	if ff.TargetAccesses != 0 {
		t.Fatalf("Flush+Flush issued %d demand accesses to the shared line; its whole point is zero", ff.TargetAccesses)
	}
	if fr.TargetAccesses == 0 {
		t.Fatal("Flush+Reload must access the shared line")
	}
}

func TestEvictReloadSlowerThanFlushReload(t *testing.T) {
	fr := stats.Mean(RunClassic(platform.Skylake(), FlushReload, ClassicConfig{Iterations: 200}, 3).IterLatencies)
	er := stats.Mean(RunClassic(platform.Skylake(), EvictReload, ClassicConfig{Iterations: 200}, 3).IterLatencies)
	if er < 3*fr {
		t.Fatalf("conflict-based reset should dwarf CLFLUSH: F+R %.0f vs E+R %.0f cycles", fr, er)
	}
}

func TestClassicOnBothPlatforms(t *testing.T) {
	for _, p := range platform.All() {
		r := RunClassic(p, FlushReload, ClassicConfig{Iterations: 150}, 11)
		if r.Accuracy < 0.98 {
			t.Errorf("%s: Flush+Reload accuracy %.1f%%", p.Name, 100*r.Accuracy)
		}
	}
}

func TestCoherenceAttackAccurate(t *testing.T) {
	r := RunCoherence(platform.Skylake(), ClassicConfig{Iterations: 400}, 7)
	if r.Accuracy < 0.98 {
		t.Fatalf("coherence attack accuracy = %.1f%%, want ≈100%%", 100*r.Accuracy)
	}
}

func TestCoherenceAttackIsCheap(t *testing.T) {
	// One timed load per window: far cheaper than any flush/evict reset.
	r := RunCoherence(platform.Skylake(), ClassicConfig{Iterations: 200}, 3)
	if m := stats.Mean(r.IterLatencies); m > 300 {
		t.Fatalf("coherence iteration mean %.0f cycles; expected a lone timed load", m)
	}
}

func TestKASLRRecovery(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		r := RunKASLR(platform.Skylake(), KASLRConfig{Slots: 128, Probes: 6}, seed)
		if r.RecoveredSlot != r.TrueSlot {
			t.Fatalf("seed %d: recovered slot %d, true %d", seed, r.RecoveredSlot, r.TrueSlot)
		}
	}
}

func TestKASLRTimingSeparation(t *testing.T) {
	r := RunKASLR(platform.Skylake(), KASLRConfig{Slots: 64, Probes: 8}, 3)
	winner := r.SlotMeans[r.RecoveredSlot]
	for slot, v := range r.SlotMeans {
		if slot == r.RecoveredSlot {
			continue
		}
		if winner-v < 10 {
			t.Fatalf("slot %d mean %.1f too close to winner %.1f — no timing margin", slot, v, winner)
		}
	}
}
