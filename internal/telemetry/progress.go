package telemetry

import (
	"sync/atomic"
)

// ProgressSnapshot is a point-in-time view of one job's progress. It is
// the payload of the daemon's SSE progress stream and the lines of the
// stored progress artifact.
type ProgressSnapshot struct {
	// Phase is the most recently started phase (the engine labels phases
	// with experiment IDs).
	Phase string `json:"phase,omitempty"`
	// PhasesDone / PhasesTotal count completed vs scheduled phases.
	PhasesDone  int64 `json:"phases_done"`
	PhasesTotal int64 `json:"phases_total"`
	// ShardsDone / ShardsTotal count trial shards — the engine's unit of
	// parallel work — completed vs handed out so far. ShardsTotal grows
	// as the run discovers work; it is not known up front.
	ShardsDone  int64 `json:"shards_done"`
	ShardsTotal int64 `json:"shards_total"`
	// Events are running per-subsystem trace event counts (hier, sim,
	// fault, channel), present when the job runs with the aggregating
	// trace sink attached.
	Events map[string]int64 `json:"events,omitempty"`
}

// Equal reports whether two snapshots are identical — the recorder uses
// it to drop no-change samples from the progress artifact.
func (s ProgressSnapshot) Equal(o ProgressSnapshot) bool {
	if s.Phase != o.Phase ||
		s.PhasesDone != o.PhasesDone || s.PhasesTotal != o.PhasesTotal ||
		s.ShardsDone != o.ShardsDone || s.ShardsTotal != o.ShardsTotal ||
		len(s.Events) != len(o.Events) {
		return false
	}
	for k, v := range s.Events {
		if o.Events[k] != v {
			return false
		}
	}
	return true
}

// Progress is one job's live progress state. The engine publishes
// checkpoints into it (StartPhase / EndPhase / AddShards / ShardDone)
// while any number of observers Snapshot it concurrently; every update is
// a single atomic operation, so checkpoints cost nanoseconds and can
// never perturb experiment output. A nil *Progress is the disabled state:
// all methods are no-ops, so emit sites need no guards.
type Progress struct {
	phasesDone, phasesTotal atomic.Int64
	shardsDone, shardsTotal atomic.Int64
	phase                   atomic.Pointer[string]
	// events samples per-subsystem trace event counts; set once before
	// the run starts (SetEventSource), read by snapshotters.
	events atomic.Pointer[func() map[string]int64]
}

// NewProgress returns an empty progress tracker.
func NewProgress() *Progress { return &Progress{} }

// SetPhasesTotal declares how many phases the run will execute.
func (p *Progress) SetPhasesTotal(n int) {
	if p != nil {
		p.phasesTotal.Store(int64(n))
	}
}

// StartPhase marks a phase as the currently running one. With phases
// running concurrently, the most recently started wins — the stream is a
// coarse operator view, not a schedule.
func (p *Progress) StartPhase(name string) {
	if p != nil {
		p.phase.Store(&name)
	}
}

// EndPhase counts one phase as completed.
func (p *Progress) EndPhase() {
	if p != nil {
		p.phasesDone.Add(1)
	}
}

// AddShards grows the scheduled-work counter by n trial shards.
func (p *Progress) AddShards(n int) {
	if p != nil {
		p.shardsTotal.Add(int64(n))
	}
}

// ShardDone counts one completed trial shard.
func (p *Progress) ShardDone() {
	if p != nil {
		p.shardsDone.Add(1)
	}
}

// SetEventSource installs the sampler for per-subsystem trace event
// counts (typically trace.EventCounts.Counts). Call before the run
// starts publishing.
func (p *Progress) SetEventSource(fn func() map[string]int64) {
	if p != nil && fn != nil {
		p.events.Store(&fn)
	}
}

// Reset zeroes every counter — the daemon calls it between retry
// attempts so a re-run's progress starts from scratch. Observers holding
// the same Progress simply see the counters restart.
func (p *Progress) Reset() {
	if p == nil {
		return
	}
	p.phasesDone.Store(0)
	p.phasesTotal.Store(0)
	p.shardsDone.Store(0)
	p.shardsTotal.Store(0)
	p.phase.Store(nil)
	p.events.Store(nil)
}

// Snapshot captures the current state. Safe to call at any time from any
// goroutine, including on a nil Progress (zero snapshot).
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	s := ProgressSnapshot{
		PhasesDone:  p.phasesDone.Load(),
		PhasesTotal: p.phasesTotal.Load(),
		ShardsDone:  p.shardsDone.Load(),
		ShardsTotal: p.shardsTotal.Load(),
	}
	if ph := p.phase.Load(); ph != nil {
		s.Phase = *ph
	}
	if fn := p.events.Load(); fn != nil {
		s.Events = (*fn)()
	}
	return s
}
