package hier

import (
	"testing"

	"leakyway/internal/mem"
)

// BenchmarkHierAccess measures the steady-state demand-load hit path through
// the full hierarchy (translate-free: the caller holds a physical address).
// The CI perf gate requires this to stay at 0 allocs/op.
func BenchmarkHierAccess(b *testing.B) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0x4040)
	now := h.Load(0, pa, 0).Latency
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := h.Load(0, pa, now)
		now += res.Latency
	}
}

// BenchmarkHierMissSweep measures the miss/fill/evict path: a pointer-chase
// over more congruent lines than the LLC set holds, so every access misses
// somewhere and exercises victim selection.
func BenchmarkHierMissSweep(b *testing.B) {
	h := MustNew(testConfig())
	lines := congruentLines(h, mem.PAddr(0x4040), h.Config().LLCWays+4)
	var now int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := h.Load(0, lines[i%len(lines)], now)
		now += res.Latency
	}
}

// BenchmarkHierPrefetchNTA measures the PREFETCHNTA path, the paper's core
// primitive (issued millions of times per channel sweep).
func BenchmarkHierPrefetchNTA(b *testing.B) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0x4040)
	now := h.PrefetchNTA(0, pa, 0).Latency
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := h.PrefetchNTA(0, pa, now)
		now += res.Latency
	}
}
