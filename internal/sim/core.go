package sim

import (
	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/trace"
)

// Core is an agent's handle onto its pinned physical core. Every method
// that touches memory or time is a scheduling point: the machine interleaves
// agents between operations, in global clock order.
//
// Methods translate virtual addresses through the agent's address space and
// panic on page faults, which always indicate harness bugs.
type Core struct {
	m     *Machine
	agent *Agent
	// ID is the physical core index.
	ID int
	// AS is the agent's address space.
	AS  *mem.AddressSpace
	now int64
	// runLimit is the batching bound set by the machine at resume: the
	// agent keeps executing without yielding until its clock exceeds it
	// (see Machine.batchLimit).
	runLimit int64
}

// Now returns the core's current cycle as the agent perceives it: the
// global clock plus any accrued drift skew (zero unless a clock-drift
// fault is active — see fault.go).
func (c *Core) Now() int64 { return c.now + c.agent.skew }

// AgentName returns the owning agent's name (for emit sites above sim).
func (c *Core) AgentName() string { return c.agent.Name }

// Tracer returns the machine's event sink (nil when untraced).
func (c *Core) Tracer() *trace.Tracer { return c.m.tr }

// emitTimed records a timed measurement as a span starting at the cycle
// the measured operation began.
func (c *Core) emitTimed(kind string, start, t int64) {
	if !c.m.tr.On(trace.PkgSim) {
		return
	}
	e := trace.E("sim", kind, start)
	e.Agent, e.Core = c.agent.Name, c.ID
	e.Lat, e.Dur = t, t
	c.m.tr.Emit(e)
}

// step advances the local clock, applies any scheduled disturbances that
// have come due, and hands control back to the machine only once the clock
// passes the batching bound — every op remains a scheduling point
// semantically, but the handshake is skipped while this agent would be
// re-picked anyway.
func (c *Core) step(cost int64) {
	c.now += cost
	if c.agent.faults != nil {
		c.accrueDrift(cost)
		c.applyFaults()
	}
	if c.now > c.runLimit {
		c.agent.yield()
	}
}

// Load performs a demand load and returns the hierarchy result.
func (c *Core) Load(va mem.VAddr) hier.Result {
	res := c.m.H.Load(c.ID, c.AS.MustTranslate(va), c.now)
	c.step(res.Latency)
	return res
}

// Store performs a demand store.
func (c *Core) Store(va mem.VAddr) hier.Result {
	res := c.m.H.Store(c.ID, c.AS.MustTranslate(va), c.now)
	c.step(res.Latency)
	return res
}

// PrefetchNTA executes PREFETCHNTA on the line holding va.
func (c *Core) PrefetchNTA(va mem.VAddr) hier.Result {
	res := c.m.H.PrefetchNTA(c.ID, c.AS.MustTranslate(va), c.now)
	c.step(res.Latency)
	return res
}

// PrefetchT0 executes PREFETCHT0 on the line holding va.
func (c *Core) PrefetchT0(va mem.VAddr) hier.Result {
	res := c.m.H.PrefetchT0(c.ID, c.AS.MustTranslate(va), c.now)
	c.step(res.Latency)
	return res
}

// Flush executes CLFLUSH on the line holding va.
func (c *Core) Flush(va mem.VAddr) hier.Result {
	res := c.m.H.Flush(c.AS.MustTranslate(va), c.now)
	c.step(res.Latency)
	return res
}

// Fence executes an LFENCE, serializing at a small cost.
func (c *Core) Fence() {
	c.step(c.m.H.FenceLatency())
}

// timed wraps an operation latency in the RDTSC measurement model: the
// returned (and charged) cycles are latency + timer overhead + jitter,
// matching how the paper's numbers include measurement cost.
func (c *Core) timed(lat int64) int64 {
	cfg := c.m.H.Lat()
	t := lat + cfg.TimerOverhead
	if cfg.TimerJit > 0 {
		t += c.m.rng.Int63n(2*cfg.TimerJit+1) - cfg.TimerJit
	}
	t += c.spikeJitter()
	return t
}

// TimedLoad loads va and returns the measured cycles (RDTSC-bracketed).
func (c *Core) TimedLoad(va mem.VAddr) int64 {
	res := c.m.H.Load(c.ID, c.AS.MustTranslate(va), c.now)
	t := c.timed(res.Latency)
	c.emitTimed("timed-load", c.now, t)
	c.step(t)
	return t
}

// TimedPrefetchNTA prefetches va and returns the measured cycles — the
// receiver primitive of NTP+NTP (Property #3 makes the timing meaningful).
func (c *Core) TimedPrefetchNTA(va mem.VAddr) int64 {
	res := c.m.H.PrefetchNTA(c.ID, c.AS.MustTranslate(va), c.now)
	t := c.timed(res.Latency)
	c.emitTimed("timed-nta", c.now, t)
	c.step(t)
	return t
}

// TimedFlush flushes va and returns the measured cycles (Flush+Flush-style).
func (c *Core) TimedFlush(va mem.VAddr) int64 {
	res := c.m.H.Flush(c.AS.MustTranslate(va), c.now)
	t := c.timed(res.Latency)
	c.emitTimed("timed-flush", c.now, t)
	c.step(t)
	return t
}

// TimedPrefetchProbe issues a software prefetch at an arbitrary virtual
// address — mapped or not — and returns the measured cycles. Prefetches
// never fault; for an address without a full translation the hardware walks
// the page tables until an absent entry and gives up, so the measured time
// reveals how deep the translation resolves (in the agent's own space or
// the shared kernel space). This is the primitive behind the
// prefetch-timing KASLR breaks the paper's Section VI-C surveys. The probe
// itself leaves no cache state behind in this model.
func (c *Core) TimedPrefetchProbe(va mem.VAddr) int64 {
	depth := c.AS.TranslationLevels(va)
	if c.m.Kernel != nil {
		if d := c.m.Kernel.TranslationLevels(va); d > depth {
			depth = d
		}
	}
	lat := c.m.H.Lat()
	t := c.timed(lat.PTWalkBase + int64(depth)*lat.PTWalkStep)
	c.emitTimed("timed-probe", c.now, t)
	c.step(t)
	return t
}

// Spin burns the given number of cycles without touching memory.
func (c *Core) Spin(cycles int64) {
	if cycles < 0 {
		cycles = 0
	}
	c.step(cycles)
}

// WaitUntil spins until the core's TSC reaches t (plus sync slack jitter),
// the synchronization primitive the channel protocols use. The target is
// in the agent's perceived clock: under a drift fault a fast clock wakes
// early in global time, exactly as a real skewed TSC would. If t is
// already past, it is a small-cost no-op.
func (c *Core) WaitUntil(t int64) {
	target := t - c.agent.skew
	if c.m.SyncSlack > 0 {
		target += c.m.rng.Int63n(c.m.SyncSlack + 1)
	}
	if target < c.now {
		target = c.now
	}
	if waited := target - c.now; waited > 0 && c.m.tr.On(trace.PkgSim) {
		e := trace.E("sim", "wait", c.now)
		e.Agent, e.Core, e.Dur = c.agent.Name, c.ID, waited
		c.m.tr.Emit(e)
	}
	elapsed := target - c.now
	c.now = target
	if c.agent.faults != nil {
		c.accrueDrift(elapsed)
		c.applyFaults()
	}
	if c.now > c.runLimit {
		c.agent.yield()
	}
}

// Alloc reserves size bytes in the agent's address space.
func (c *Core) Alloc(size uint64) mem.VAddr {
	va, err := c.AS.Alloc(size)
	if err != nil {
		panic(err)
	}
	return va
}
