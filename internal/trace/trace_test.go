package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.On(PkgAll) {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(E("hier", "fill", 1)) // must not panic
	if tr.Buffer() != nil {
		t.Fatal("nil tracer has a buffer")
	}
}

func TestNilTracerEmitAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		if tr.On(PkgHier) {
			tr.Emit(E("hier", "fill", 1))
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled emit path allocates %v per op, want 0", allocs)
	}
}

func TestMaskFiltering(t *testing.T) {
	tr := New("m", PkgChannel)
	tr.Emit(E("hier", "fill", 1))
	tr.Emit(E("channel", "tx-bit", 2))
	tr.Emit(E("sim", "spawn", 3))
	evs := tr.Buffer().Events()
	if len(evs) != 1 || evs[0].Kind != "tx-bit" {
		t.Fatalf("mask filtering failed: %+v", evs)
	}
	if !tr.On(PkgChannel) || tr.On(PkgHier) {
		t.Fatal("On does not reflect the mask")
	}
}

func TestParseMask(t *testing.T) {
	m, err := ParseMask("hier,channel")
	if err != nil || m != PkgHier|PkgChannel {
		t.Fatalf("ParseMask: %v %v", m, err)
	}
	if m, err := ParseMask(""); err != nil || m != PkgAll {
		t.Fatalf("empty mask: %v %v", m, err)
	}
	if _, err := ParseMask("hier,bogus"); err == nil {
		t.Fatal("unknown subsystem accepted")
	}
}

func TestCollectorSortsAndRejectsDuplicates(t *testing.T) {
	c := NewCollector()
	c.Tracer("b/2", PkgAll).Emit(E("sim", "spawn", 1))
	c.Tracer("a/1", PkgAll)
	bufs := c.Buffers()
	if len(bufs) != 2 || bufs[0].Label() != "a/1" || bufs[1].Label() != "b/2" {
		t.Fatalf("buffers not label-sorted: %v, %v", bufs[0].Label(), bufs[1].Label())
	}
	if c.TotalEvents() != 1 {
		t.Fatalf("TotalEvents = %d, want 1", c.TotalEvents())
	}
	keys, counts := c.CountByPrefix()
	if len(keys) != 2 || counts["b"] != 1 || counts["a"] != 0 {
		t.Fatalf("CountByPrefix: %v %v", keys, counts)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label did not panic")
		}
	}()
	c.Tracer("a/1", PkgAll)
}

// sampleBuffers builds a small but representative event set.
func sampleBuffers() []*Buffer {
	tr := New("fig8/skylake/ntpntp/00600", PkgAll)
	e := E("sim", "spawn", 0)
	e.Agent, e.Core = "sender", 0
	tr.Emit(e)
	e = E("hier", "fill", 120)
	e.Agent, e.Core, e.Level, e.Slice, e.Set, e.Way, e.AgeAfter, e.Addr = "sender", 0, "LLC", 3, 117, 5, 3, 0xdeadbeef
	tr.Emit(e)
	e = E("hier", "evict", 120)
	e.Level, e.Slice, e.Set, e.Way, e.AgeBefore, e.Addr = "LLC", 3, 117, 5, 3, 0x1234
	tr.Emit(e)
	e = E("channel", "calibrate", 500)
	e.Agent, e.Lat, e.Val = "receiver", 150, 75
	tr.Emit(e)
	e = E("channel", "rx-bit", 2450)
	e.Agent, e.Slot, e.Bit, e.Lat, e.Dur, e.Note = "receiver", 0, 1, 231, 2000, `quote"test`
	tr.Emit(e)
	return []*Buffer{tr.Buffer()}
}

// TestChromeTraceSchema is the acceptance check: the exported trace must
// be valid Chrome trace-event JSON — an object with a traceEvents array
// whose entries all carry name/ph/ts/pid and a known phase.
func TestChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleBuffers()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	phases := map[string]bool{"M": true, "i": true, "X": true, "C": true}
	var sawMeta, sawCounter, sawInstant bool
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		ph := ev["ph"].(string)
		if !phases[ph] {
			t.Fatalf("event %d has unknown phase %q", i, ph)
		}
		if ph != "M" {
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("event %d missing ts: %v", i, ev)
			}
		}
		switch ph {
		case "M":
			sawMeta = true
			args := ev["args"].(map[string]interface{})
			if _, ok := args["name"].(string); !ok {
				t.Fatalf("metadata event %d has no args.name", i)
			}
		case "C":
			sawCounter = true
		case "i":
			sawInstant = true
		}
	}
	if !sawMeta || !sawCounter || !sawInstant {
		t.Fatalf("missing event classes: meta=%v counter=%v instant=%v", sawMeta, sawCounter, sawInstant)
	}
}

func TestJSONLExport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, sampleBuffers()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
		var obj map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines, err, sc.Text())
		}
		if _, isHeader := obj["stream"]; !isHeader {
			if _, ok := obj["kind"]; !ok {
				t.Fatalf("line %d has no kind: %s", lines, sc.Text())
			}
		}
	}
	if lines != 6 { // 1 header + 5 events
		t.Fatalf("got %d lines, want 6", lines)
	}
}

func TestDiagnoseAttributesErrors(t *testing.T) {
	tr := New("lane", PkgAll)
	cal := E("channel", "calibrate", 100)
	cal.Lat = 150
	tr.Emit(cal)
	// Fault window covering slots 2 and 3.
	fw := E("fault", "preempt", 4000)
	fw.Dur, fw.Agent, fw.Note = 4500, "receiver", "preempt-receiver"
	tr.Emit(fw)
	for i := 0; i < 5; i++ {
		bitv := i % 2
		tx := E("channel", "tx-bit", int64(2000*i))
		tx.Slot, tx.Bit = i, bitv
		tr.Emit(tx)
		got := bitv
		lat := int64(80) // hit
		if bitv == 1 {
			lat = 230 // miss
		}
		if i == 2 || i == 3 { // corrupted inside the fault window
			got = 1 - bitv
			lat = 80 + int64(150*got)
		}
		rx := E("channel", "rx-bit", int64(2000*i+450))
		rx.Slot, rx.Bit, rx.Lat, rx.Dur = i, got, lat, 2000
		tr.Emit(rx)
	}
	diags := Diagnose([]*Buffer{tr.Buffer()})
	if len(diags) != 1 {
		t.Fatalf("got %d lanes, want 1", len(diags))
	}
	d := diags[0]
	if d.Threshold != 150 || d.TxBits != 5 || d.RxBits != 5 {
		t.Fatalf("lane header wrong: %+v", d)
	}
	if len(d.Errors) != 2 || d.Attributed != 2 {
		t.Fatalf("errors=%d attributed=%d, want 2/2: %+v", len(d.Errors), d.Attributed, d.Errors)
	}
	for _, e := range d.Errors {
		if !strings.Contains(e.Cause, "preempt") {
			t.Fatalf("error not attributed to the preempt window: %+v", e)
		}
	}
	if d.Zero.Count == 0 || d.One.Count == 0 || d.One.Min <= d.Zero.Max {
		t.Fatalf("eye stats wrong: %+v %+v", d.Zero, d.One)
	}
	if out := Render(diags, 1); !strings.Contains(out, "and 1 more corrupted bits") {
		t.Fatalf("Render cap missing:\n%s", out)
	}
}
