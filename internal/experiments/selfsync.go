package experiments

import (
	"fmt"

	"leakyway/internal/channel"
	"leakyway/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "selfsync",
		Title: "Extension — self-synchronizing NTP+NTP (no shared epoch)",
		Paper: "the paper assumes a pre-agreed synchronization protocol; this implements one: preamble lock, START pulse, framed payload",
		Run:   runSelfSync,
	})
}

func runSelfSync(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	bits := ctx.Trials(1500)
	rows := [][]string{}
	for _, tc := range []struct {
		name  string
		start int64
		noise int64
	}{
		{"quiet, sender starts at 80K cycles", 80_000, 0},
		{"quiet, sender starts at an odd epoch (137,213)", 137_213, 0},
		{"noisy co-tenant (1 fill / 400K cycles)", 80_000, 400_000},
	} {
		ccfg := channel.DefaultConfig(cfg.Name, cfg.FreqGHz)
		ccfg.Interval = 2500
		ccfg.Start = tc.start
		ccfg.NoisePeriod = tc.noise
		m := sim.MustNewMachine(cfg, 1<<30, ctx.Seed)
		rep, _ := channel.RunNTPNTPSelfSync(m, ccfg, channel.RandomMessage(bits, ctx.Seed))
		rows = append(rows, []string{
			tc.name,
			fmt.Sprintf("%.2f%%", 100*rep.BER),
			fmt.Sprintf("%.1f KB/s", rep.CapacityKBps),
		})
	}
	// Metrics from the last (noisy) case plus the first.
	mQuiet := sim.MustNewMachine(cfg, 1<<30, ctx.Seed)
	ccfg := channel.DefaultConfig(cfg.Name, cfg.FreqGHz)
	ccfg.Interval = 2500
	repQ, _ := channel.RunNTPNTPSelfSync(mQuiet, ccfg, channel.RandomMessage(bits, ctx.Seed))
	res.Metric("quiet_ber", repQ.BER)
	res.Metric("quiet_capacity", repQ.CapacityKBps)
	renderTable(ctx, []string{"scenario", "BER", "capacity"}, rows)
	ctx.Printf("the receiver never reads the sender's clock: it locks on the preamble, anchors on the\n")
	ctx.Printf("START pulse, and refines its slot-length estimate across frames (48/62 slot efficiency)\n")
	return res, nil
}
