package hier

import (
	"leakyway/internal/mem"
	"leakyway/internal/policy"
)

// corePrefetcher models the per-core hardware prefetchers the paper
// mentions: the adjacent-line (spatial) prefetcher and a stream prefetcher.
// Both stay within a 4 KiB page, as on real Intel parts — which is exactly
// why the paper's attack loops (whose working sets stride across pages)
// can run with the prefetchers enabled without being disturbed.
type corePrefetcher struct {
	cfg HWPrefetchConfig
	// stream detector: a small table of recent streams.
	streams [4]streamEntry
	clock   uint64
}

type streamEntry struct {
	page     uint64 // page number of the stream
	lastLine uint64 // last line index observed within the page
	hits     int    // consecutive ascending accesses
	lastUsed uint64
	valid    bool
}

func newCorePrefetcher(cfg HWPrefetchConfig) *corePrefetcher {
	return &corePrefetcher{cfg: cfg}
}

// observeMiss returns the lines the prefetchers want to pull in after a
// demand miss on la.
func (p *corePrefetcher) observeMiss(la mem.LineAddr) []mem.LineAddr {
	var out []mem.LineAddr
	if p.cfg.AdjacentLine {
		// Pair the line with its 128-byte buddy (flip line-address bit 0).
		out = append(out, la^1)
	}
	if p.cfg.Stream {
		out = append(out, p.observeStream(la)...)
	}
	return out
}

// observeStream updates the stream table and returns run-ahead prefetches.
func (p *corePrefetcher) observeStream(la mem.LineAddr) []mem.LineAddr {
	p.clock++
	page := la.Frame()
	lineInPage := uint64(la) & (mem.LinesPerPage - 1)

	// Find the stream for this page.
	idx := -1
	for i := range p.streams {
		if p.streams[i].valid && p.streams[i].page == page {
			idx = i
			break
		}
	}
	if idx < 0 {
		// Allocate the least recently used entry.
		lru := 0
		for i := range p.streams {
			if !p.streams[i].valid {
				lru = i
				break
			}
			if p.streams[i].lastUsed < p.streams[lru].lastUsed {
				lru = i
			}
		}
		p.streams[lru] = streamEntry{page: page, lastLine: lineInPage, lastUsed: p.clock, valid: true}
		return nil
	}
	s := &p.streams[idx]
	s.lastUsed = p.clock
	if lineInPage == s.lastLine+1 {
		s.hits++
	} else {
		s.hits = 0
	}
	s.lastLine = lineInPage
	if s.hits < 2 {
		return nil
	}
	// Confirmed ascending stream: run ahead, staying inside the page.
	var out []mem.LineAddr
	for d := 1; d <= p.cfg.StreamDepth; d++ {
		next := lineInPage + uint64(d)
		if next >= mem.LinesPerPage {
			break
		}
		out = append(out, la+mem.LineAddr(d))
	}
	return out
}

// hwPrefetch is called from the demand-miss path; it installs prefetcher
// suggestions into the L2 and LLC with ClassHW.
func (h *Hierarchy) hwPrefetch(core int, la mem.LineAddr, now int64) {
	if h.pf == nil {
		return
	}
	for _, target := range h.pf[core].observeMiss(la) {
		// Skip lines already in the private hierarchy.
		if _, ok := h.l2[core].Probe(h.l2Set(target), target); ok {
			continue
		}
		slice, set := h.loc.Locate(target)
		if _, ok := h.llc[slice].Probe(set, target); ok {
			// Already in LLC: just pull into L2.
			h.fillL2(core, target, policy.ClassHW, now, now+h.cfg.Lat.LLCHit)
			continue
		}
		ready := now + h.cfg.Lat.Mem
		if h.fillLLC(core, target, policy.ClassHW, now, ready) {
			h.fillL2(core, target, policy.ClassHW, now, ready)
		}
	}
}
