package channel

import (
	"errors"
	"testing"
)

func TestFrameRoundTripBothModes(t *testing.T) {
	payload := BytesToBits([]byte{0xDE, 0xAD, 0xBE, 0xEF})
	for _, mode := range []Coding{CodingRaw, CodingHamming} {
		f := Frame{Seq: 11, Last: true, Payload: payload}
		enc := EncodeFrame(f, mode)
		if len(enc) != FrameWireBits(mode) {
			t.Fatalf("%v: wire bits = %d, want %d", mode, len(enc), FrameWireBits(mode))
		}
		dec, gotMode, err := DecodeFrame(enc)
		if err != nil || gotMode != mode || dec.Seq != 11 || !dec.Last {
			t.Fatalf("%v: round trip failed: %+v mode=%v err=%v", mode, dec, gotMode, err)
		}
		for i := range payload {
			if dec.Payload[i] != payload[i] {
				t.Fatalf("%v: payload bit %d flipped", mode, i)
			}
		}
	}
}

func TestFrameHammingCorrectsSingleFlip(t *testing.T) {
	f := Frame{Seq: 7, Payload: BytesToBits([]byte{0x5A, 0xC3, 0x00, 0xFF})}
	enc := EncodeFrame(f, CodingHamming)
	// Flip one body bit (past the mode header): the Hamming layer must
	// absorb it and the CRC must still pass.
	enc[20] = !enc[20]
	dec, _, err := DecodeFrame(enc)
	if err != nil {
		t.Fatalf("single flip not corrected: %v", err)
	}
	if dec.Seq != 7 {
		t.Fatalf("seq corrupted to %d", dec.Seq)
	}
}

func TestFrameRawDetectsFlips(t *testing.T) {
	f := Frame{Seq: 3, Payload: BytesToBits([]byte{1, 2, 3, 4})}
	enc := EncodeFrame(f, CodingRaw)
	for _, positions := range [][]int{{9}, {10, 30}, {8, 21, 40}} {
		bad := append([]bool(nil), enc...)
		for _, p := range positions {
			bad[p] = !bad[p]
		}
		if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrFrameCRC) {
			t.Fatalf("flips at %v: err = %v, want CRC mismatch", positions, err)
		}
	}
}

func TestFrameRejectsReservedMode(t *testing.T) {
	enc := EncodeFrame(Frame{Seq: 1}, CodingRaw)
	// Force the mode header to the reserved pattern 11.
	for i := 0; i < 6; i++ {
		enc[i] = true
	}
	if _, _, err := DecodeFrame(enc); !errors.Is(err, ErrFrameMode) {
		t.Fatalf("err = %v, want reserved-mode rejection", err)
	}
}

func TestAckRoundTripAndNack(t *testing.T) {
	for _, ok := range []bool{true, false} {
		enc := EncodeAck(9, ok)
		if len(enc) != AckWireBits() {
			t.Fatalf("ack wire bits = %d, want %d", len(enc), AckWireBits())
		}
		seq, gotOK, err := DecodeAck(enc)
		if err != nil || seq != 9 || gotOK != ok {
			t.Fatalf("ack round trip: %d/%v/%v", seq, gotOK, err)
		}
	}
}

func TestCRC8KnownVector(t *testing.T) {
	// CRC-8/AUTOSAR of "123456789" (as bits) is 0xDF.
	if got := crc8Bits(BytesToBits([]byte("123456789"))); got != 0xDF {
		t.Fatalf("crc8 check value = %#x, want 0xdf", got)
	}
}
