// Package evset implements LLC eviction-set construction from timing alone:
// the access-based state-of-the-art baseline (Prime+Scope's approach) and
// the paper's prefetch-based Algorithm 2, which exploits PREFETCHNTA's
// install-as-eviction-candidate property to detect each congruent line with
// a single conflict instead of ~w of them. The evset/model subpackage holds
// the policy-level simulation behind the Section VI-D countermeasure study.
package evset

import (
	"errors"
	"fmt"

	"leakyway/internal/core"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

// ErrPoolExhausted is returned when the candidate pool runs out before the
// desired eviction set is complete (or, for group testing, does not evict
// the target at all).
var ErrPoolExhausted = errors.New("evset: candidate pool exhausted")

// ErrIrreducible is returned by BuildGroupTesting when no group can be
// removed but the set is still larger than desired.
var ErrIrreducible = errors.New("evset: candidate set cannot be reduced further")

// errDesired builds the shared validation error.
func errDesired(d int) error {
	return fmt.Errorf("evset: Desired must be positive, got %d", d)
}

// Options configures a construction run.
type Options struct {
	// Desired is the eviction-set size wanted (defaults to the LLC
	// associativity of the machine the core runs on).
	Desired int
	// Pool is the stream of candidate lines to test (typically one line
	// per page, all sharing the target's page offset).
	Pool []mem.VAddr
	// Thresholds classifies timed operations; calibrate with
	// core.Calibrate.
	Thresholds core.Thresholds
}

// Result reports a constructed eviction set and the cost of finding it.
type Result struct {
	// Set holds the congruent lines found.
	Set []mem.VAddr
	// MemRefs counts every load/prefetch/flush issued.
	MemRefs int
	// Cycles is the simulated time the construction took.
	Cycles int64
	// Tested counts candidates consumed from the pool.
	Tested int
}

// NewPool allocates a candidate pool of one line per fresh page, each
// sharing the target's page offset — the standard shape for eviction-set
// search, since the page offset pins the set-index bits an unprivileged
// attacker controls.
func NewPool(c *sim.Core, target mem.VAddr, pages int) []mem.VAddr {
	base := c.Alloc(uint64(pages) * mem.PageSize)
	off := mem.VAddr(target.PageOffset() &^ (mem.LineSize - 1))
	pool := make([]mem.VAddr, pages)
	for i := range pool {
		pool[i] = base + mem.VAddr(i)*mem.PageSize + off
	}
	return pool
}

// BuildPrefetch is Algorithm 2 of the paper. It repeatedly re-installs the
// target as the LLC eviction candidate with PREFETCHNTA and prefetches
// candidates; the first candidate whose prefetch evicts the target (making
// the next timed prefetch of the target slow) is congruent.
func BuildPrefetch(c *sim.Core, target mem.VAddr, opt Options) (Result, error) {
	desired := opt.Desired
	if desired <= 0 {
		return Result{}, fmt.Errorf("evset: Desired must be positive, got %d", desired)
	}
	var res Result
	start := c.Now()
	next := 0
	for len(res.Set) < desired {
		// Line 4: (re-)install the target as the eviction candidate.
		c.PrefetchNTA(target)
		res.MemRefs++
		found := false
		for !found {
			if next >= len(opt.Pool) {
				res.Cycles = c.Now() - start
				return res, ErrPoolExhausted
			}
			lc := opt.Pool[next]
			next++
			res.Tested++
			// Line 7: prefetch the candidate.
			c.PrefetchNTA(lc)
			res.MemRefs++
			// Line 8: timed prefetch of the target. Slow (DRAM)
			// means the candidate evicted it — congruent. This
			// prefetch also re-installs the target as candidate,
			// so the loop can continue immediately.
			t := c.TimedPrefetchNTA(target)
			res.MemRefs++
			if opt.Thresholds.IsMiss(t) {
				res.Set = append(res.Set, lc)
				found = true
			}
		}
	}
	res.Cycles = c.Now() - start
	return res, nil
}

// BuildBaseline is the access-based state-of-the-art the paper compares
// against: identical control flow, but the target and candidates are
// accessed with demand loads. A congruent candidate is only observable once
// roughly w congruent lines have been accessed since the target was last
// (re)loaded, because the target is inserted young and private-cache hits on
// it never refresh its LLC age.
func BuildBaseline(c *sim.Core, target mem.VAddr, opt Options) (Result, error) {
	desired := opt.Desired
	if desired <= 0 {
		return Result{}, fmt.Errorf("evset: Desired must be positive, got %d", desired)
	}
	var res Result
	start := c.Now()
	next := 0
	for len(res.Set) < desired {
		c.Load(target)
		res.MemRefs++
		// Re-access the lines found so far to refresh their ages and
		// keep pressure on the set — the optimization the paper notes
		// ("accessing EV between line 4 and line 5 can slightly reduce
		// this number").
		for _, va := range res.Set {
			c.Load(va)
			res.MemRefs++
		}
		found := false
		for !found {
			if next >= len(opt.Pool) {
				res.Cycles = c.Now() - start
				return res, ErrPoolExhausted
			}
			lc := opt.Pool[next]
			next++
			res.Tested++
			c.Load(lc)
			res.MemRefs++
			t := c.TimedLoad(target)
			res.MemRefs++
			if opt.Thresholds.IsMiss(t) {
				res.Set = append(res.Set, lc)
				found = true
			}
		}
	}
	res.Cycles = c.Now() - start
	return res, nil
}

// Verify checks, via the machine's geometry, how many of the found lines are
// truly congruent with the target (test/diagnostic helper — a real attacker
// cannot do this).
func Verify(m *sim.Machine, as *mem.AddressSpace, target mem.VAddr, set []mem.VAddr) int {
	geo := m.H.Geometry()
	tl := as.MustTranslate(target).Line()
	ok := 0
	for _, va := range set {
		if geo.Congruent(as.MustTranslate(va).Line(), tl) {
			ok++
		}
	}
	return ok
}

// NewHugePool allocates a physically contiguous (huge-page) region and
// returns a target line inside it plus candidates that share the target's
// full set-index bits by construction — contiguity makes every set bit
// computable from the offset, leaving only the slice hash unknown. The
// congruent fraction rises from 1/(slices·2^hiddenSetBits) to 1/slices,
// cutting construction work by the same factor.
func NewHugePool(c *sim.Core, setsPerSlice int, lines int) (target mem.VAddr, pool []mem.VAddr, err error) {
	stride := uint64(setsPerSlice) * mem.LineSize
	base, err := c.AS.AllocContiguous(uint64(lines+1) * stride)
	if err != nil {
		return 0, nil, err
	}
	target = base
	pool = make([]mem.VAddr, lines)
	for i := range pool {
		pool[i] = base + mem.VAddr(uint64(i+1)*stride)
	}
	return target, pool, nil
}
