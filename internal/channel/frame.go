package channel

import (
	"errors"
	"fmt"
)

// ARQ frame wire format. A data frame is carried as one self-sync burst:
//
//	mode header (6 bits)  body (45 raw / 84 Hamming bits)
//
// The mode header is the 2-bit coding mode, each bit repeated ×3 and
// majority-decoded — a fixed-rate PHY header, so the receiver can decode
// the body length before the body arrives even while the parties shift
// coding mid-stream. The body is
//
//	seq (4)  last (1)  payload (32)  crc8 (8)
//
// with the CRC-8/AUTOSAR checksum (poly 0x2F, init/xorout 0xFF) over the
// 37 preceding bits. That polynomial has Hamming distance 4 out to 119
// data bits, so any corruption of up to 3 body bits is detected with
// certainty; in Hamming mode, any 2 channel flips are either corrected or
// detected. ACK/NACK frames ride the reverse lane as an always-Hamming
// 16-bit body: seq (4), ok (1), 3 zero pad bits, crc8 over the 8 preceding
// bits.

// Coding selects the frame body encoding.
type Coding uint8

const (
	// CodingRaw sends body bits as-is: fastest, no correction.
	CodingRaw Coding = 0
	// CodingHamming sends the body Hamming(7,4)-encoded: one corrected
	// flip per codeword at 7/4 the cost.
	CodingHamming Coding = 1
)

func (c Coding) String() string {
	switch c {
	case CodingRaw:
		return "raw"
	case CodingHamming:
		return "hamming"
	}
	return fmt.Sprintf("coding(%d)", uint8(c))
}

// Frame geometry.
const (
	FrameSeqBits     = 4
	FramePayloadBits = 32
	frameModeBits    = 6                                       // 2 mode bits ×3 repetition
	frameBodyRawBits = FrameSeqBits + 1 + FramePayloadBits + 8 // seq+last+payload+crc
	ackBodyRawBits   = FrameSeqBits + 1 + 3 + 8                // seq+ok+pad+crc

	// SeqModulus is the sequence-number space.
	SeqModulus = 1 << FrameSeqBits
)

// Frame is one ARQ data frame.
type Frame struct {
	Seq     uint8 // 0..SeqModulus-1
	Last    bool  // final frame of the message
	Payload []bool
}

// Frame decode errors. Fuzzers and the receiver distinguish "wire noise"
// (ErrFrameCRC and friends — ask for a retransmit) from caller bugs.
var (
	ErrFrameLength = errors.New("channel: frame bit count does not match any coding mode")
	ErrFrameMode   = errors.New("channel: reserved coding mode")
	ErrFrameCRC    = errors.New("channel: frame CRC mismatch")
)

// crc8Bits computes CRC-8/AUTOSAR over a bit string, MSB-first.
func crc8Bits(bits []bool) uint8 {
	crc := uint8(0xFF)
	for _, b := range bits {
		fb := crc >> 7
		if b {
			fb ^= 1
		}
		crc <<= 1
		if fb == 1 {
			crc ^= 0x2F
		}
	}
	return crc ^ 0xFF
}

func appendUint(bits []bool, v uint64, n int) []bool {
	for i := n - 1; i >= 0; i-- {
		bits = append(bits, v>>uint(i)&1 == 1)
	}
	return bits
}

func takeUint(bits []bool, n int) (uint64, []bool) {
	var v uint64
	for i := 0; i < n; i++ {
		v <<= 1
		if bits[i] {
			v |= 1
		}
	}
	return v, bits[n:]
}

// bodyBits returns the body length on the wire for a coding mode.
func bodyBits(mode Coding, raw int) int {
	if mode == CodingHamming {
		padded := (raw + 3) / 4 * 4
		return padded / 4 * 7
	}
	return raw
}

// FrameWireBits returns the total bits of a data-frame burst in the given
// mode — what the burst receiver must collect.
func FrameWireBits(mode Coding) int { return frameModeBits + bodyBits(mode, frameBodyRawBits) }

// AckWireBits is the total bits of an ACK burst (always Hamming-coded).
func AckWireBits() int { return bodyBits(CodingHamming, ackBodyRawBits) }

// encodeBody applies the coding mode to raw body bits.
func encodeBody(body []bool, mode Coding) []bool {
	if mode == CodingHamming {
		return EncodeHamming74(body)
	}
	return body
}

// decodeBody inverts encodeBody; the result is truncated to raw bits.
func decodeBody(bits []bool, mode Coding, raw int) ([]bool, error) {
	if mode == CodingHamming {
		dec := DecodeHamming74(bits)
		if len(dec) < raw {
			return nil, ErrFrameLength
		}
		return dec[:raw], nil
	}
	if len(bits) != raw {
		return nil, ErrFrameLength
	}
	return bits, nil
}

// EncodeFrame renders a data frame for the wire in the given coding mode.
// Payloads shorter than FramePayloadBits are zero-padded; longer ones are
// a caller bug.
func EncodeFrame(f Frame, mode Coding) []bool {
	if len(f.Payload) > FramePayloadBits {
		panic(fmt.Sprintf("channel: frame payload %d bits exceeds %d", len(f.Payload), FramePayloadBits))
	}
	body := make([]bool, 0, frameBodyRawBits)
	body = appendUint(body, uint64(f.Seq%SeqModulus), FrameSeqBits)
	body = append(body, f.Last)
	body = append(body, f.Payload...)
	for len(body) < FrameSeqBits+1+FramePayloadBits {
		body = append(body, false)
	}
	body = appendUint(body, uint64(crc8Bits(body)), 8)

	out := make([]bool, 0, FrameWireBits(mode))
	for _, mb := range []bool{mode&2 != 0, mode&1 != 0} {
		out = append(out, mb, mb, mb)
	}
	return append(out, encodeBody(body, mode)...)
}

// DecodeFrameMode majority-decodes the 6-bit mode header.
func DecodeFrameMode(header []bool) (Coding, error) {
	if len(header) < frameModeBits {
		return 0, ErrFrameLength
	}
	vote := func(a, b, c bool) bool {
		n := 0
		for _, v := range []bool{a, b, c} {
			if v {
				n++
			}
		}
		return n >= 2
	}
	var mode Coding
	if vote(header[0], header[1], header[2]) {
		mode |= 2
	}
	if vote(header[3], header[4], header[5]) {
		mode |= 1
	}
	if mode != CodingRaw && mode != CodingHamming {
		return 0, ErrFrameMode
	}
	return mode, nil
}

// DecodeFrame parses a complete data-frame burst: mode header, coded body,
// CRC. It never panics on hostile input; any truncation, reserved mode,
// length mismatch, or checksum failure is an error.
func DecodeFrame(bits []bool) (Frame, Coding, error) {
	mode, err := DecodeFrameMode(bits)
	if err != nil {
		return Frame{}, 0, err
	}
	wire := bits[frameModeBits:]
	if len(wire) != bodyBits(mode, frameBodyRawBits) {
		return Frame{}, mode, ErrFrameLength
	}
	body, err := decodeBody(wire, mode, frameBodyRawBits)
	if err != nil {
		return Frame{}, mode, err
	}
	sum, _ := takeUint(body[frameBodyRawBits-8:], 8)
	if uint8(sum) != crc8Bits(body[:frameBodyRawBits-8]) {
		return Frame{}, mode, ErrFrameCRC
	}
	seq, rest := takeUint(body, FrameSeqBits)
	f := Frame{Seq: uint8(seq), Last: rest[0]}
	f.Payload = append([]bool(nil), rest[1:1+FramePayloadBits]...)
	return f, mode, nil
}

// EncodeAck renders an ACK (ok) or NACK (!ok) burst for seq.
func EncodeAck(seq uint8, ok bool) []bool {
	body := make([]bool, 0, ackBodyRawBits)
	body = appendUint(body, uint64(seq%SeqModulus), FrameSeqBits)
	body = append(body, ok, false, false, false)
	body = appendUint(body, uint64(crc8Bits(body)), 8)
	return encodeBody(body, CodingHamming)
}

// DecodeAck parses an ACK/NACK burst. Like DecodeFrame it never panics;
// corrupted bursts error out and count as a lost ACK.
func DecodeAck(bits []bool) (seq uint8, ok bool, err error) {
	if len(bits) != AckWireBits() {
		return 0, false, ErrFrameLength
	}
	body, err := decodeBody(bits, CodingHamming, ackBodyRawBits)
	if err != nil {
		return 0, false, err
	}
	sum, _ := takeUint(body[ackBodyRawBits-8:], 8)
	if uint8(sum) != crc8Bits(body[:ackBodyRawBits-8]) {
		return 0, false, ErrFrameCRC
	}
	s, rest := takeUint(body, FrameSeqBits)
	return uint8(s), rest[0], nil
}
