// AES key spy: a victim encrypts with a T-table AES implementation whose
// table lives on a shared library page; a Flush+Reload spy on another core
// watches which table lines each encryption touches and recovers the high
// nibble of every key byte by first-round elimination — the classic attack
// the paper's Section II-C surveys, end to end on the simulator.
package main

import (
	"fmt"
	"log"

	"leakyway"
)

func main() {
	plat := leakyway.Skylake()
	m := leakyway.MustNewMachine(plat, 1<<28, 2027)
	victimAS := m.NewSpace()
	attackerAS := m.NewSpace()

	key := [16]byte{
		0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c, // the FIPS-197 example key
	}

	v, err := leakyway.NewAESVictim(victimAS, key, 9000, 60_000)
	if err != nil {
		log.Fatal(err)
	}
	if err := attackerAS.MapShared(victimAS, v.Table, leakyway.PageSize); err != nil {
		log.Fatal(err)
	}

	const encryptions = 150
	v.Spawn(m, 1, victimAS, 5)
	obs := leakyway.SpyTTable(m, 0, attackerAS, v, encryptions)
	m.Run()

	fmt.Printf("observed %d encryptions on %s\n", len(*obs), plat.Name)
	recovered, err := leakyway.RecoverHighNibbles(*obs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-12s %-50s\n", "", "key bytes (high nibble | low nibble unknown)")
	fmt.Printf("%-12s ", "actual:")
	for _, b := range key {
		fmt.Printf("%x_ ", b>>4)
	}
	fmt.Printf("\n%-12s ", "recovered:")
	ok := true
	for i, b := range recovered {
		fmt.Printf("%x_ ", b>>4)
		if b != key[i]&0xF0 {
			ok = false
		}
	}
	fmt.Println()
	if ok {
		fmt.Println("\nall 16 high nibbles recovered — 64 bits of AES key leaked through the cache")
	} else {
		fmt.Println("\nrecovery incomplete; increase the number of observed encryptions")
	}
}
