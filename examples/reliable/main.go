// Reliable delivery on a hostile machine: the OS preempts the receiver,
// the TSCs drift apart and SMI windows blur the timing threshold — every
// disturbance Section IV-B3 of the paper warns about, injected here with
// the fault framework. The raw channel flips a large fraction of the bits;
// the ARQ transport (CRC-8 frames, a reverse ACK lane, retransmission and
// adaptive recalibration) delivers the payload byte-exactly through the
// same faults.
package main

import (
	"bytes"
	"fmt"
	"log"

	"leakyway"
)

func main() {
	plat := leakyway.Skylake()
	payload := []byte("wire transfer auth code: 8741-9928")
	bits := leakyway.BytesToBits(payload)

	// A hostile scheduler, unsynced clocks and timer noise, composed into
	// one deterministic scenario.
	hostile := func() leakyway.FaultScenario {
		return leakyway.ComposeFaults(
			leakyway.Preemption{Count: 4, MinDur: 15_000, MaxDur: 40_000},
			leakyway.ClockDrift{PPM: -6000},
			leakyway.TimerSpikes{Count: 3, Dur: 40_000, Extra: 400},
		)
	}
	const seed = 9

	// Raw self-sync transmission under the scenario.
	cfg := leakyway.DefaultChannelConfig(plat)
	cfg.Interval = 2500
	cfg.NoisePeriod = 0
	m, err := leakyway.NewMachine(plat, 1<<30, seed)
	if err != nil {
		log.Fatal(err)
	}
	log1 := &leakyway.FaultLog{}
	log1.Attach(m)
	hostile().Inject(m, leakyway.FaultTarget{
		Sender: "sender", Receiver: "receiver", SpareCore: 3,
		Horizon: cfg.Start + int64(len(bits))*cfg.Interval,
	}, seed, log1)
	rawReport, rawBits := leakyway.RunNTPNTPSelfSync(m, cfg, bits)

	// The same payload, same faults, over the ARQ transport.
	tcfg := leakyway.DefaultTransportConfig(plat)
	tcfg.Channel.NoisePeriod = 0
	m2, err := leakyway.NewMachine(plat, 1<<30, seed)
	if err != nil {
		log.Fatal(err)
	}
	log2 := &leakyway.FaultLog{}
	log2.Attach(m2)
	hostile().Inject(m2, leakyway.FaultTarget{
		Sender: "sender", Receiver: "receiver", SpareCore: 3,
		Horizon: tcfg.Channel.Start + 100*int64(len(bits))*tcfg.Channel.Interval/32,
	}, seed, log2)
	arqReport, arqBits, err := leakyway.RunARQ(m2, tcfg, bits)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("payload: %d bytes; injected faults: %d (raw run), %d (ARQ run)\n\n",
		len(payload), len(log1.Fired()), len(log2.Fired()))
	fmt.Printf("raw self-sync : %s\n", rawReport)
	fmt.Printf("                -> %q\n\n", preview(leakyway.BitsToBytes(rawBits)))
	fmt.Printf("ARQ transport : %s\n", arqReport)
	fmt.Printf("                -> %q\n\n", preview(leakyway.BitsToBytes(arqBits)))

	if arqReport.Delivered && bytes.Equal(leakyway.BitsToBytes(arqBits), payload) {
		fmt.Println("payload recovered exactly under preemption, clock drift and timer noise")
	} else {
		fmt.Println("transfer failed — raise MaxRetries or lengthen the slot")
	}
}

func preview(b []byte) string {
	clean := make([]byte, len(b))
	for i, c := range b {
		if c >= 32 && c < 127 {
			clean[i] = c
		} else {
			clean[i] = '.'
		}
	}
	return string(clean)
}
