package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"leakyway/internal/iofault"
	"leakyway/internal/telemetry"
)

// The journal is the daemon's write-ahead log: every accepted job is
// appended and fsynced BEFORE the client sees its 202, and every terminal
// transition is appended when it happens. After a crash, replaying the
// journal reconstructs the job table; accepted jobs without a terminal
// record are re-enqueued, so an acknowledged submission is never lost.
//
// Format: JSONL, one entry per line. A torn final line (the write the
// crash interrupted) is skipped on replay — it can only be an entry whose
// effect was never acknowledged.
//
// The journal is hardened against a sick disk: fsync failures are
// retried a bounded number of times with exponential backoff (transient
// stalls are absorbed; persistent failure surfaces so the server can
// degrade), a torn append is repaired by truncating back to the last
// known-good size so later entries never land mid-line, and the file is
// size-capped — when it outgrows its rotation threshold the server
// rewrites it online to exactly the live state, the same compaction a
// restart performs.

// Journal ops.
const (
	opAccept = "accept" // job accepted: ID, Key, Sub
	opDone   = "done"   // result stored under Key
	opFail   = "fail"   // retries exhausted: Err
	opCancel = "cancel" // canceled by the client
	opClean  = "clean"  // clean shutdown marker (drain completed)
	opProbe  = "probe"  // degraded-mode disk probe no-op; ignored on replay
)

type journalEntry struct {
	Op  string      `json:"op"`
	ID  string      `json:"id,omitempty"`
	Key string      `json:"key,omitempty"`
	Err string      `json:"err,omitempty"`
	Sub *Submission `json:"sub,omitempty"`
}

// journalConfig parameterizes durability hardening.
type journalConfig struct {
	// rotateBytes is the size past which the server should compact the
	// journal online (see NeedsRotation).
	rotateBytes int64
	// syncRetries bounds fsync retry attempts per append; retryBase is
	// the backoff base between them.
	syncRetries int
	retryBase   time.Duration
}

// Journal appends entries to a file, fsyncing each append. Methods are
// not goroutine-safe; the server serializes access under its own lock.
type Journal struct {
	fs   iofault.FS
	f    iofault.File
	path string
	cfg  journalConfig
	// size is the known-good byte length of the file: every byte below
	// it is a complete entry line. A failed write leaves bytes above it
	// that repairTornTail truncates away before the next append.
	size int64
	// wedged is set when a torn append could not be truncated away; the
	// next Append retries the repair before writing.
	wedged bool
	// detached is set when a rotation replaced the file on disk but the
	// fresh handle could not be opened: the old handle no longer backs
	// path, so appending through it would silently lose entries. Every
	// append fails until restart reopens the journal.
	detached bool
	// compactedSize is the file size right after the last compaction;
	// rotation only fires once the live state has meaningfully grown
	// past it, so a live state bigger than rotateBytes cannot thrash.
	compactedSize int64

	// fsyncHist, when set, observes each Append's write+fsync latency —
	// the daemon wires it to leakywayd_wal_fsync_seconds. Fsync stalls
	// are the journal's dominant cost, so this is the histogram to watch
	// when admission latency climbs.
	fsyncHist *telemetry.Histogram
	// syncRetriesCount and rotations, when set, count absorbed fsync
	// retries and online compactions.
	syncRetriesCount *telemetry.Counter
	rotations        *telemetry.Counter
}

// replayJournal reads every parseable entry. Unparseable lines are
// tolerated only at the tail (a torn final write); garbage earlier in the
// file is corruption and fails the replay.
func replayJournal(fsys iofault.FS, path string) ([]journalEntry, error) {
	f, err := fsys.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	var entries []journalEntry
	torn := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			torn = true
			continue
		}
		if torn {
			return nil, fmt.Errorf("journal: corrupt entry before end of %s", path)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return entries, nil
}

// marshalEntries renders entries as JSONL bytes.
func marshalEntries(entries []journalEntry) ([]byte, error) {
	var buf bytes.Buffer
	for _, e := range entries {
		b, err := json.Marshal(&e)
		if err != nil {
			return nil, err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// writeCompacted writes a compacted journal (temp file + fsync + rename)
// and reopens it for appending, returning the open handle and its size.
func writeCompacted(fsys iofault.FS, path string, entries []journalEntry) (iofault.File, int64, error) {
	data, err := marshalEntries(entries)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	tmp := path + ".tmp"
	if err := writeSynced(fsys, tmp, data); err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	syncDir(fsys, filepath.Dir(path))
	af, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	return af, int64(len(data)), nil
}

// rewriteJournal writes a compacted journal and opens it for appending.
// Compaction happens at startup, after replay: the new journal carries
// exactly the live state, so the file cannot grow without bound across
// restarts.
func rewriteJournal(fsys iofault.FS, path string, entries []journalEntry, cfg journalConfig) (*Journal, error) {
	f, size, err := writeCompacted(fsys, path, entries)
	if err != nil {
		return nil, err
	}
	return &Journal{fs: fsys, f: f, path: path, cfg: cfg, size: size, compactedSize: size}, nil
}

// repairTornTail truncates the file back to the last known-good size
// after a failed append left a partial line. Until the repair succeeds
// the journal refuses appends — writing after a torn line would corrupt
// the middle of the file, which replay correctly refuses to trust.
func (j *Journal) repairTornTail() error {
	if err := j.f.Truncate(j.size); err != nil {
		j.wedged = true
		return fmt.Errorf("journal: torn append not repairable: %w", err)
	}
	j.wedged = false
	return nil
}

// Append writes one entry and fsyncs, absorbing up to cfg.syncRetries
// transient fsync failures with exponential backoff. The caller must not
// consider the entry's effect durable (and must not ack a client) until
// Append returns nil.
func (j *Journal) Append(e journalEntry) error {
	if j.detached {
		return fmt.Errorf("journal: detached after failed rotation; restart required")
	}
	if j.wedged {
		if err := j.repairTornTail(); err != nil {
			return err
		}
	}
	b, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	b = append(b, '\n')
	start := time.Now()
	if _, err := j.f.Write(b); err != nil {
		// The write may have landed partially; truncate the torn bytes
		// so the next append starts on a clean line boundary.
		if rerr := j.repairTornTail(); rerr != nil {
			return fmt.Errorf("journal: %w (and %v)", err, rerr)
		}
		return fmt.Errorf("journal: %w", err)
	}
	j.size += int64(len(b))
	backoff := j.cfg.retryBase
	for attempt := 0; ; attempt++ {
		err = j.f.Sync()
		if err == nil {
			break
		}
		if attempt >= j.cfg.syncRetries {
			// The entry is written but not durably synced. It is a valid
			// line, so the journal stays consistent; the caller escalates.
			return fmt.Errorf("journal: %w", err)
		}
		if j.syncRetriesCount != nil {
			j.syncRetriesCount.Inc()
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	if j.fsyncHist != nil {
		j.fsyncHist.ObserveSince(start)
	}
	return nil
}

// NeedsRotation reports whether the journal has outgrown its rotation
// threshold. The double-size guard keeps a live state that is itself
// larger than rotateBytes from forcing a full rewrite on every append.
func (j *Journal) NeedsRotation() bool {
	if j.cfg.rotateBytes <= 0 {
		return false
	}
	return j.size >= j.cfg.rotateBytes && j.size >= 2*j.compactedSize
}

// Rotate compacts the journal online: the live entries are written as a
// fresh segment (temp + fsync + rename) that atomically replaces the
// grown one, and appending continues on the new segment. Failure before
// the rename leaves the old segment and handle fully valid; failure
// after it (reopen failed) detaches the journal, which refuses further
// appends rather than losing them to an unlinked inode.
func (j *Journal) Rotate(entries []journalEntry) error {
	data, err := marshalEntries(entries)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	tmp := j.path + ".tmp"
	if err := writeSynced(j.fs, tmp, data); err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	if err := j.fs.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	syncDir(j.fs, filepath.Dir(j.path))
	nf, err := j.fs.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.detached = true
		return fmt.Errorf("journal: rotate reopen: %w", err)
	}
	j.f.Close()
	j.f = nf
	j.size = int64(len(data))
	j.compactedSize = j.size
	j.wedged = false
	if j.rotations != nil {
		j.rotations.Inc()
	}
	return nil
}

// Size returns the journal file's current byte length (tests).
func (j *Journal) Size() int64 { return j.size }

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// syncDir fsyncs a directory so a rename within it is durable;
// best-effort, as not every filesystem supports it.
func syncDir(fsys iofault.FS, dir string) {
	if d, err := fsys.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
