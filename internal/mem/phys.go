package mem

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrOutOfMemory is returned when the physical frame pool is exhausted.
var ErrOutOfMemory = errors.New("mem: out of physical frames")

// PhysMem is a pool of physical page frames handed out in a randomized
// order, modelling an OS page allocator as seen by an unprivileged process:
// consecutive virtual pages land on effectively random physical frames, so
// the LLC set index bits above the page offset are unpredictable.
//
// PhysMem is deterministic for a given seed.
type PhysMem struct {
	// frames is the shuffled free list. Frame numbers are stored narrow
	// (machine construction is shuffle-bandwidth bound in experiment
	// sweeps); uint32 covers pools up to 16 TiB.
	frames []uint32
	next   int    // next index into frames to hand out
	synth  uint64 // next synthetic frame for contiguous reservations
}

// FrameShuffle is the immutable shuffled free list for one (totalBytes,
// seed) pair. Building it is the single most expensive step of machine
// construction (a quarter-million-entry Fisher–Yates for a 1 GiB pool), yet
// every machine with the same pool size and seed computes the identical
// permutation — so sweeps that run many same-seed trials can compute it once
// and share it. PhysMem only ever reads the frame list (allocation state
// lives in the PhysMem, not here), which makes sharing safe even across
// goroutines.
type FrameShuffle struct {
	frames []uint32
}

// NewFrameShuffle computes the shuffled frame list for a pool of totalBytes
// (rounded down to whole pages) with the given seed. The permutation is
// identical to the one NewPhysMem has always produced.
func NewFrameShuffle(totalBytes uint64, seed int64) *FrameShuffle {
	n := totalBytes / PageSize
	if n > 1<<32 {
		panic(fmt.Sprintf("mem: NewFrameShuffle(%d): pool exceeds 16 TiB frame limit", totalBytes))
	}
	frames := make([]uint32, n)
	for i := range frames {
		frames[i] = uint32(i)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(frames), func(i, j int) {
		frames[i], frames[j] = frames[j], frames[i]
	})
	return &FrameShuffle{frames: frames}
}

// Frames reports the pool capacity in frames.
func (sh *FrameShuffle) Frames() int { return len(sh.frames) }

// NewPhysMemFrom creates a fresh pool over a precomputed shuffle. The
// returned PhysMem behaves exactly like NewPhysMem(totalBytes, seed) for the
// shuffle's parameters: allocation order is the shuffle order, and the
// shared frame list is never written.
func NewPhysMemFrom(sh *FrameShuffle) *PhysMem {
	return &PhysMem{frames: sh.frames, synth: uint64(len(sh.frames))}
}

// NewPhysMem creates a pool with the given total size in bytes (rounded down
// to whole pages), shuffled with the given seed.
func NewPhysMem(totalBytes uint64, seed int64) *PhysMem {
	return NewPhysMemFrom(NewFrameShuffle(totalBytes, seed))
}

// TotalFrames reports the pool capacity in frames.
func (pm *PhysMem) TotalFrames() int { return len(pm.frames) }

// FreeFrames reports how many frames remain allocatable.
func (pm *PhysMem) FreeFrames() int { return len(pm.frames) - pm.next }

// AllocFrame hands out the next randomized frame number.
func (pm *PhysMem) AllocFrame() (uint64, error) {
	if pm.next >= len(pm.frames) {
		return 0, ErrOutOfMemory
	}
	f := uint64(pm.frames[pm.next])
	pm.next++
	return f, nil
}

// AllocContiguous reserves n physically contiguous frames and returns the
// first frame number. Real attackers can sometimes obtain these via huge
// pages; a few experiments use it to bypass eviction-set construction when
// congruence discovery itself is not the thing under test.
//
// The reservation is synthesized past the end of the randomized pool, which
// models a huge-page region: only the set-index bits of the resulting
// addresses matter, and they remain well-formed.
func (pm *PhysMem) AllocContiguous(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mem: AllocContiguous(%d): n must be positive", n)
	}
	base := pm.synth
	pm.synth += uint64(n)
	return base, nil
}
