package cache

import (
	"testing"
	"testing/quick"

	"leakyway/internal/mem"
	"leakyway/internal/policy"
)

func newTestCache(sets, ways int) *Cache {
	return New(Config{Name: "test", Sets: sets, Ways: ways, Pol: policy.NewQuadAge()})
}

func TestFillAndProbe(t *testing.T) {
	c := newTestCache(4, 2)
	la := mem.LineAddr(0x100)
	if _, ok := c.Probe(0, la); ok {
		t.Fatal("empty cache reports hit")
	}
	_, evicted, ok := c.Fill(0, la, policy.ClassLoad, 0, 0)
	if !ok || evicted {
		t.Fatalf("first fill: evicted=%v ok=%v", evicted, ok)
	}
	if w, ok := c.Probe(0, la); !ok || w < 0 {
		t.Fatal("line not found after fill")
	}
	// The same line in a different set is independent.
	if _, ok := c.Probe(1, la); ok {
		t.Fatal("line leaked into another set")
	}
}

func TestFillEvictsWhenFull(t *testing.T) {
	c := newTestCache(1, 4)
	for i := 0; i < 4; i++ {
		c.Fill(0, mem.LineAddr(i), policy.ClassLoad, 0, 0)
	}
	ev, evicted, ok := c.Fill(0, mem.LineAddr(100), policy.ClassLoad, 0, 0)
	if !ok || !evicted {
		t.Fatalf("full-set fill: evicted=%v ok=%v", evicted, ok)
	}
	if _, ok := c.Probe(0, ev.Addr); ok {
		t.Fatal("evicted line still present")
	}
	if _, ok := c.Probe(0, mem.LineAddr(100)); !ok {
		t.Fatal("new line absent after fill")
	}
	if c.Occupancy(0) != 4 {
		t.Fatalf("occupancy = %d, want 4", c.Occupancy(0))
	}
}

func TestFillDuplicateIsHit(t *testing.T) {
	c := newTestCache(1, 2)
	la := mem.LineAddr(7)
	c.Fill(0, la, policy.ClassLoad, 0, 0)
	_, evicted, ok := c.Fill(0, la, policy.ClassLoad, 0, 0)
	if !ok || evicted {
		t.Fatal("re-filling a present line must be a silent hit")
	}
	if c.Occupancy(0) != 1 {
		t.Fatalf("occupancy = %d, want 1 (no duplicate ways)", c.Occupancy(0))
	}
}

func TestInFlightBlocksEviction(t *testing.T) {
	c := newTestCache(1, 2)
	// Both lines in flight until cycle 100.
	c.Fill(0, 1, policy.ClassLoad, 0, 100)
	c.Fill(0, 2, policy.ClassLoad, 0, 100)
	// At cycle 50 nothing is evictable: the fill is dropped.
	if _, _, ok := c.Fill(0, 3, policy.ClassLoad, 50, 150); ok {
		t.Fatal("fill succeeded although every way is in flight")
	}
	// At cycle 100 the fills have completed.
	if _, evicted, ok := c.Fill(0, 3, policy.ClassLoad, 100, 200); !ok || !evicted {
		t.Fatal("fill should succeed once in-flight windows close")
	}
}

func TestInFlightVictimSkipped(t *testing.T) {
	c := newTestCache(1, 4)
	for i := 0; i < 4; i++ {
		c.Fill(0, mem.LineAddr(i), policy.ClassLoad, 0, 0)
	}
	// Install an NTA line (the eviction candidate) that is in flight.
	c.Fill(0, 50, policy.ClassNTA, 0, 1000)
	// While line 50 is in flight, a new fill must evict something else.
	ev, evicted, ok := c.Fill(0, 60, policy.ClassLoad, 10, 20)
	if !ok || !evicted {
		t.Fatal("fill should displace a non-in-flight way")
	}
	if ev.Addr == 50 {
		t.Fatal("evicted the in-flight line")
	}
	if _, ok := c.Probe(0, 50); !ok {
		t.Fatal("in-flight line vanished")
	}
}

func TestInvalidate(t *testing.T) {
	c := newTestCache(2, 2)
	c.Fill(1, 9, policy.ClassLoad, 0, 0)
	if w, ok := c.Probe(1, 9); !ok {
		t.Fatal("line missing")
	} else {
		c.MarkDirty(1, w)
	}
	present, dirty := c.Invalidate(1, 9)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if present, _ := c.Invalidate(1, 9); present {
		t.Fatal("double invalidate reports present")
	}
}

func TestEvictionCandidateMatchesVictim(t *testing.T) {
	c := newTestCache(1, 8)
	for i := 0; i < 8; i++ {
		c.Fill(0, mem.LineAddr(i), policy.ClassLoad, 0, 0)
	}
	c.Fill(0, 100, policy.ClassNTA, 0, 0) // evicts one, installs candidate
	cand, ok := c.EvictionCandidate(0)
	if !ok || cand != 100 {
		t.Fatalf("candidate = %v,%v; want line 100", cand, ok)
	}
	ev, _, _ := c.Fill(0, 200, policy.ClassLoad, 0, 0)
	if ev.Addr != cand {
		t.Fatalf("actual eviction %v != predicted candidate %v", ev.Addr, cand)
	}
}

func TestStatsCounting(t *testing.T) {
	c := newTestCache(1, 2)
	c.Lookup(0, 1, policy.ClassLoad) // miss
	c.Fill(0, 1, policy.ClassLoad, 0, 0)
	c.Lookup(0, 1, policy.ClassLoad) // hit
	c.Fill(0, 2, policy.ClassLoad, 0, 0)
	c.Fill(0, 3, policy.ClassLoad, 0, 0) // eviction
	c.Invalidate(0, 3)
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Fills != 3 || st.Evictions != 1 || st.Flushes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestViewSetIsolation(t *testing.T) {
	c := newTestCache(1, 2)
	c.Fill(0, 5, policy.ClassLoad, 0, 0)
	v := c.ViewSet(0)
	v.Lines[0].Addr = 999
	v.Meta[0] = 999
	if c.ViewSet(0).Lines[0].Addr == 999 {
		t.Fatal("ViewSet aliases internal lines")
	}
}

// TestCacheNeverDuplicates is a property test: a random operation sequence
// never produces two ways holding the same line in one set.
func TestCacheNeverDuplicates(t *testing.T) {
	f := func(ops []uint16) bool {
		c := newTestCache(2, 4)
		for i, op := range ops {
			la := mem.LineAddr(op % 16)
			set := int(op>>4) % 2
			switch (op >> 5) % 3 {
			case 0:
				c.Fill(set, la, policy.ClassLoad, int64(i), int64(i))
			case 1:
				c.Fill(set, la, policy.ClassNTA, int64(i), int64(i))
			case 2:
				c.Invalidate(set, la)
			}
			for s := 0; s < 2; s++ {
				seen := map[mem.LineAddr]int{}
				for _, ln := range c.ViewSet(s).Lines {
					if ln.Valid {
						seen[ln.Addr]++
						if seen[ln.Addr] > 1 {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero sets")
		}
	}()
	New(Config{Name: "bad", Sets: 0, Ways: 1, Pol: policy.NewQuadAge()})
}

// TestEvictionCandidatePredictsFillVictim is a property test: over random
// completed-fill histories (no in-flight windows), the candidate reported by
// EvictionCandidate is exactly the line the next full-set fill displaces.
func TestEvictionCandidatePredictsFillVictim(t *testing.T) {
	f := func(ops []uint8) bool {
		c := newTestCache(1, 8)
		// Fill the set completely first.
		for i := 0; i < 8; i++ {
			c.Fill(0, mem.LineAddr(1000+i), policy.ClassLoad, 0, 0)
		}
		next := mem.LineAddr(2000)
		for _, op := range ops {
			switch op % 3 {
			case 0: // demand hit on a present line
				v := c.ViewSet(0)
				w := int(op/3) % len(v.Lines)
				if v.Lines[w].Valid {
					c.Touch(0, w, policy.ClassLoad)
				}
			case 1: // NTA fill of a fresh line
				pred, okPred := c.EvictionCandidate(0)
				ev, evicted, ok := c.Fill(0, next, policy.ClassNTA, 0, 0)
				if ok && evicted && okPred && ev.Addr != pred {
					return false
				}
				next++
			case 2: // demand fill of a fresh line
				pred, okPred := c.EvictionCandidate(0)
				ev, evicted, ok := c.Fill(0, next, policy.ClassLoad, 0, 0)
				if ok && evicted && okPred && ev.Addr != pred {
					return false
				}
				next++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
