package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"leakyway/internal/iofault"
	"leakyway/internal/telemetry"
)

// Store is the content-addressed result store. Each entry is a directory
// named by the cache key's hex digest holding the artifacts plus a
// meta.json that records their individual content hashes — so integrity
// is checkable by re-hashing, which startup does after a crash. Writes go
// through a temp directory and a rename, so a torn write can never
// produce an entry that passes verification.
//
// The store is governed, not append-forever: when a byte quota or entry
// cap is configured, publishing a new entry evicts the least-recently-
// accessed unpinned entries until the store fits again. Access recency
// is a logical clock persisted to lru-index.json, so eviction order
// survives restarts; pinned keys (in-flight executions) are never
// evicted, so governance cannot race a running job. All filesystem
// access goes through an iofault.FS, so chaos tests drive the same code
// paths production runs.
type Store struct {
	dir string
	fs  iofault.FS
	opt StoreOptions

	mu      sync.Mutex
	entries map[string]*entryInfo // hex key → live entry
	pins    map[string]int        // hex key → pin count
	clock   int64                 // logical LRU clock; ticks on every access

	// Optional eviction counters, wired by the daemon after New.
	evictions    *telemetry.Counter
	evictedBytes *telemetry.Counter
}

// StoreOptions governs store growth. Zero values mean unlimited.
type StoreOptions struct {
	// QuotaBytes caps the total size of stored artifacts; exceeding it
	// evicts least-recently-accessed unpinned entries.
	QuotaBytes int64
	// MaxEntries caps the entry count the same way.
	MaxEntries int
	// Logger receives eviction and index-persistence logs (default
	// slog.Default()).
	Logger *slog.Logger
	// Evictions and EvictedBytes, when set, count every eviction —
	// including the ones the startup quota enforcement performs.
	Evictions    *telemetry.Counter
	EvictedBytes *telemetry.Counter
}

type entryInfo struct {
	size   int64
	access int64 // clock value of the most recent touch
}

// SweepRemoval records one entry the startup integrity sweep dropped.
type SweepRemoval struct {
	Entry  string
	Reason string
}

// storeMeta is the per-entry manifest.
type storeMeta struct {
	// Key is the full cache key ("sha256:<hex>").
	Key string `json:"key"`
	// Engine records the engine version the entry was simulated with.
	Engine string `json:"engine"`
	// Artifacts maps artifact name → file name and sha256 of its bytes.
	Artifacts map[string]artifactMeta `json:"artifacts"`
	// Assertion summary of the template evaluation.
	AssertFailed int `json:"assert_failed"`
	AssertTotal  int `json:"assert_total"`
}

type artifactMeta struct {
	File   string `json:"file"`
	SHA256 string `json:"sha256"`
}

// artifactFiles maps API artifact names to entry file names and content
// types.
var artifactFiles = map[string]struct{ file, contentType string }{
	"metrics":  {"metrics.json", "application/json"},
	"report":   {"report.txt", "text/plain; charset=utf-8"},
	"trace":    {"trace.json", "application/json"},
	"progress": {"progress.jsonl", "application/x-ndjson"},
}

// indexFile persists the LRU clock. It lives beside the entry
// directories; the sweep skips plain files.
const indexFile = "lru-index.json"

// lruIndex is the on-disk shape of the access-recency index.
type lruIndex struct {
	Clock  int64            `json:"clock"`
	Access map[string]int64 `json:"access"`
}

// OpenStore opens (creating if needed) the store at dir and sweeps it for
// integrity: every entry's artifacts are re-hashed against its manifest,
// and entries that fail — torn writes, torn evictions, bit rot, manual
// tampering — are removed. It returns what it removed so the caller can
// log and count each repair, then rebuilds the in-memory size/LRU index,
// merging persisted access times where present, and immediately enforces
// the quota on whatever survived.
func OpenStore(fsys iofault.FS, dir string, opt StoreOptions) (*Store, []SweepRemoval, error) {
	if opt.Logger == nil {
		opt.Logger = slog.Default()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:          dir,
		fs:           fsys,
		opt:          opt,
		entries:      map[string]*entryInfo{},
		pins:         map[string]int{},
		evictions:    opt.Evictions,
		evictedBytes: opt.EvictedBytes,
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}

	idx := s.loadIndex()
	var removed []SweepRemoval
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		// Leftover temp dirs from a crash mid-Put are never valid entries.
		if strings.HasPrefix(e.Name(), "tmp-") {
			s.fs.RemoveAll(path)
			removed = append(removed, SweepRemoval{Entry: e.Name(), Reason: "leftover temp dir from interrupted write"})
			continue
		}
		size, err := s.verifyEntry(path)
		if err != nil {
			s.fs.RemoveAll(path)
			removed = append(removed, SweepRemoval{Entry: e.Name(), Reason: err.Error()})
			continue
		}
		info := &entryInfo{size: size, access: idx.Access[e.Name()]}
		s.entries[e.Name()] = info
		if info.access > s.clock {
			s.clock = info.access
		}
	}
	if idx.Clock > s.clock {
		s.clock = idx.Clock
	}

	// A quota lowered across restarts (or a sweep that removed the index)
	// must be enforced before the daemon starts admitting work.
	s.mu.Lock()
	s.evictUntilFitsLocked()
	s.saveIndexLocked()
	s.mu.Unlock()
	return s, removed, nil
}

// loadIndex reads the persisted access index; a missing or unparseable
// index degrades to empty (access order restarts from zero).
func (s *Store) loadIndex() lruIndex {
	idx := lruIndex{Access: map[string]int64{}}
	data, err := s.fs.ReadFile(filepath.Join(s.dir, indexFile))
	if err != nil {
		return idx
	}
	if err := json.Unmarshal(data, &idx); err != nil || idx.Access == nil {
		idx = lruIndex{Access: map[string]int64{}}
	}
	return idx
}

// saveIndexLocked persists the access index. Best-effort by design: a
// lost index costs only approximate LRU order after the next restart,
// so failures are logged, never escalated. Caller holds s.mu.
func (s *Store) saveIndexLocked() {
	idx := lruIndex{Clock: s.clock, Access: make(map[string]int64, len(s.entries))}
	for k, info := range s.entries {
		idx.Access[k] = info.access
	}
	data, err := json.Marshal(&idx)
	if err != nil {
		return
	}
	path := filepath.Join(s.dir, indexFile)
	f, err := s.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		s.opt.Logger.Debug("store: LRU index not persisted", "err", err)
		return
	}
	if _, err := f.Write(data); err != nil {
		s.opt.Logger.Debug("store: LRU index not persisted", "err", err)
	}
	f.Close()
}

// verifyEntry re-hashes every artifact in the manifest and returns the
// entry's size (manifest plus artifacts).
func (s *Store) verifyEntry(path string) (int64, error) {
	data, err := s.fs.ReadFile(filepath.Join(path, "meta.json"))
	if err != nil {
		return 0, fmt.Errorf("meta: %w", err)
	}
	var meta storeMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return 0, fmt.Errorf("meta: %w", err)
	}
	if hexOf(meta.Key) != filepath.Base(path) {
		return 0, fmt.Errorf("entry %s claims key %s", filepath.Base(path), meta.Key)
	}
	size := int64(len(data))
	for name, am := range meta.Artifacts {
		b, err := s.fs.ReadFile(filepath.Join(path, am.File))
		if err != nil {
			return 0, fmt.Errorf("artifact %s: %w", name, err)
		}
		sum := sha256.Sum256(b)
		if hex.EncodeToString(sum[:]) != am.SHA256 {
			return 0, fmt.Errorf("artifact %s: digest mismatch", name)
		}
		size += int64(len(b))
	}
	return size, nil
}

// hexOf strips the algorithm prefix from a cache key.
func hexOf(key string) string { return strings.TrimPrefix(key, "sha256:") }

func (s *Store) entryDir(key string) string { return filepath.Join(s.dir, hexOf(key)) }

// Pin protects key from eviction (in-flight executions). Pins are
// counted, so concurrent pinners compose; Unpin releases one.
func (s *Store) Pin(key string) {
	s.mu.Lock()
	s.pins[hexOf(key)]++
	s.mu.Unlock()
}

// Unpin releases one pin on key.
func (s *Store) Unpin(key string) {
	s.mu.Lock()
	h := hexOf(key)
	if s.pins[h]--; s.pins[h] <= 0 {
		delete(s.pins, h)
	}
	s.mu.Unlock()
}

// Has reports whether an intact entry exists for key, and counts as an
// access for LRU purposes. It trusts the in-memory index, which the
// startup sweep built and Put/evict maintain; no per-call disk I/O.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := s.entries[hexOf(key)]
	if info == nil {
		return false
	}
	s.clock++
	info.access = s.clock
	return true
}

// touch marks key accessed without reporting existence.
func (s *Store) touch(key string) {
	s.mu.Lock()
	if info := s.entries[hexOf(key)]; info != nil {
		s.clock++
		info.access = s.clock
	}
	s.mu.Unlock()
}

// SizeBytes returns the total bytes of live entries.
func (s *Store) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, info := range s.entries {
		n += info.size
	}
	return n
}

// Len returns the live entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Meta reads an entry's manifest.
func (s *Store) Meta(key string) (*storeMeta, error) {
	s.touch(key)
	data, err := s.fs.ReadFile(filepath.Join(s.entryDir(key), "meta.json"))
	if err != nil {
		return nil, err
	}
	var meta storeMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, err
	}
	return &meta, nil
}

// Artifact reads one artifact's bytes by API name ("metrics", "report",
// "trace", "progress").
func (s *Store) Artifact(key, name string) ([]byte, error) {
	af, ok := artifactFiles[name]
	if !ok {
		return nil, fmt.Errorf("store: unknown artifact %q", name)
	}
	s.touch(key)
	return s.fs.ReadFile(filepath.Join(s.entryDir(key), af.file))
}

// Put writes a completed result as the entry for key: artifacts and
// manifest land in a temp directory, every file is fsynced, and a final
// rename publishes the entry atomically. A concurrent Put of the same key
// (or an existing entry) wins harmlessly — results are deterministic, so
// both sides wrote the same bytes. Publishing then evicts as needed to
// bring the store back under its quota.
func (s *Store) Put(key, engine string, res *Result) error {
	artifacts := map[string][]byte{
		"metrics": res.Metrics,
		"report":  res.Report,
	}
	if res.Trace != nil {
		artifacts["trace"] = res.Trace
	}
	if len(res.Progress) > 0 {
		artifacts["progress"] = res.Progress
	}
	meta := storeMeta{
		Key:          key,
		Engine:       engine,
		Artifacts:    map[string]artifactMeta{},
		AssertFailed: res.AssertFailed,
		AssertTotal:  res.AssertTotal,
	}
	tmp, err := s.fs.MkdirTemp(s.dir, "tmp-")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer s.fs.RemoveAll(tmp)
	var size int64
	for name, data := range artifacts {
		af := artifactFiles[name]
		if err := writeSynced(s.fs, filepath.Join(tmp, af.file), data); err != nil {
			return fmt.Errorf("store: %s: %w", name, err)
		}
		sum := sha256.Sum256(data)
		meta.Artifacts[name] = artifactMeta{File: af.file, SHA256: hex.EncodeToString(sum[:])}
		size += int64(len(data))
	}
	mb, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeSynced(s.fs, filepath.Join(tmp, "meta.json"), mb); err != nil {
		return fmt.Errorf("store: meta: %w", err)
	}
	size += int64(len(mb))
	dst := s.entryDir(key)
	if err := s.fs.Rename(tmp, dst); err != nil {
		if s.Has(key) {
			return nil // lost a benign race to an identical entry
		}
		return fmt.Errorf("store: publish: %w", err)
	}

	s.mu.Lock()
	s.clock++
	s.entries[hexOf(key)] = &entryInfo{size: size, access: s.clock}
	s.evictUntilFitsLocked()
	s.saveIndexLocked()
	s.mu.Unlock()
	return nil
}

// overLocked reports whether the store exceeds either cap.
func (s *Store) overLocked() bool {
	if s.opt.MaxEntries > 0 && len(s.entries) > s.opt.MaxEntries {
		return true
	}
	if s.opt.QuotaBytes > 0 {
		var n int64
		for _, info := range s.entries {
			n += info.size
		}
		return n > s.opt.QuotaBytes
	}
	return false
}

// evictUntilFitsLocked removes least-recently-accessed unpinned entries
// until the store fits its caps. A removal error still retires the
// entry from the index — a half-deleted directory is unusable either
// way, and the next startup sweep clears the wreckage. Caller holds
// s.mu.
func (s *Store) evictUntilFitsLocked() {
	for s.overLocked() {
		victim := ""
		var oldest int64
		for k, info := range s.entries {
			if s.pins[k] > 0 {
				continue
			}
			if victim == "" || info.access < oldest {
				victim, oldest = k, info.access
			}
		}
		if victim == "" {
			s.opt.Logger.Warn("store over quota but every entry is pinned; eviction deferred",
				"entries", len(s.entries))
			return
		}
		info := s.entries[victim]
		delete(s.entries, victim)
		err := s.fs.RemoveAll(filepath.Join(s.dir, victim))
		if s.evictions != nil {
			s.evictions.Inc()
			s.evictedBytes.Add(info.size)
		}
		if err != nil {
			s.opt.Logger.Warn("store eviction left a partial entry; startup sweep will finish it",
				"entry", victim, "err", err)
		} else {
			s.opt.Logger.Info("store evicted least-recently-used entry",
				"entry", shortKey(victim), "bytes", info.size)
		}
	}
}

// Close persists the LRU index so access recency survives a clean
// shutdown.
func (s *Store) Close() {
	s.mu.Lock()
	s.saveIndexLocked()
	s.mu.Unlock()
}

// writeSynced writes data and fsyncs before closing, so a rename cannot
// publish a file the kernel has not persisted.
func writeSynced(fsys iofault.FS, path string, data []byte) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
