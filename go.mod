module leakyway

go 1.22
