package seed

import "testing"

// TestSplitFoldsLeft pins the property the whole module's determinism
// leans on: a task can derive sub-task seeds from its own seed without
// knowing its full path.
func TestSplitFoldsLeft(t *testing.T) {
	if got, want := Split(42, "a", "b"), Split(Split(42, "a"), "b"); got != want {
		t.Fatalf("Split(42, a, b) = %d, Split(Split(42, a), b) = %d", got, want)
	}
	if got, want := Split(7, "x", "y", "z"), Split(Split(Split(7, "x"), "y"), "z"); got != want {
		t.Fatalf("three-part fold: %d != %d", got, want)
	}
}

func TestSplitDistinguishesKeys(t *testing.T) {
	seen := map[int64][]string{}
	keys := []string{"a", "b", "ab", "ba", "shard/1", "shard/10", ""}
	for _, k := range keys {
		v := Split(42, k)
		if prev, dup := seen[v]; dup {
			t.Fatalf("keys %v and %q collide at %d", prev, k, v)
		}
		seen[v] = []string{k}
	}
	if Split(1, "a") == Split(2, "a") {
		t.Fatal("different masters, same key, same seed")
	}
}

func TestSplitIsStable(t *testing.T) {
	// The derivation is part of the reproducibility contract: changing it
	// moves every seed-sensitive metric (the golden test would flag the
	// drift, this pins the root cause).
	if a, b := Split(42, "faults"), Split(42, "faults"); a != b {
		t.Fatalf("not deterministic: %d vs %d", a, b)
	}
	if a, b := Index(42, 3), Split(42, "shard/3"); a != b {
		t.Fatalf("Index(42, 3) = %d, want Split(42, shard/3) = %d", a, b)
	}
}
