package scenario

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Extractor is a typed post-run value extractor, modeled on Nuclei's
// capture-group extractors: a regex extractor pulls one capture group out
// of the rendered report, a metric extractor reads one named metric.
// Extracted values are named so assertions can reference them.
type Extractor struct {
	// Name keys the extracted value for assertions and output.
	Name string
	// Type is "regex" or "metric".
	Type string
	// Pattern and Group configure a regex extractor: the pattern runs
	// over the experiment's rendered report and Group (default 1)
	// selects the capture group.
	Pattern string
	Group   int
	// Metric names the metric a metric extractor reads.
	Metric string
}

// ExtractorTypes lists the valid Extractor.Type values.
func ExtractorTypes() []string { return []string{"regex", "metric"} }

// Assertion is one pass/fail check over a metric or an extracted value.
type Assertion struct {
	// Exactly one of Metric (a metric key) or Extract (an extractor
	// name) selects the checked value.
	Metric  string
	Extract string
	// Op compares the value against Value: eq, ne, lt, le, gt, ge,
	// between (Value ≤ v ≤ Max) or approx (|v-Value| ≤ Tol).
	Op    string
	Value float64
	Max   float64
	Tol   float64
}

// AssertionOps lists the valid Assertion.Op values.
func AssertionOps() []string {
	return []string{"eq", "ne", "lt", "le", "gt", "ge", "between", "approx"}
}

func (a Assertion) source() string {
	if a.Metric != "" {
		return "metric " + a.Metric
	}
	return "extract " + a.Extract
}

// Describe renders the assertion as one line ("metric x ge 10").
func (a Assertion) Describe() string {
	switch a.Op {
	case "between":
		return fmt.Sprintf("%s between [%v, %v]", a.source(), a.Value, a.Max)
	case "approx":
		return fmt.Sprintf("%s approx %v ± %v", a.source(), a.Value, a.Tol)
	}
	return fmt.Sprintf("%s %s %v", a.source(), a.Op, a.Value)
}

func (a Assertion) holds(v float64) bool {
	switch a.Op {
	case "eq":
		return v == a.Value
	case "ne":
		return v != a.Value
	case "lt":
		return v < a.Value
	case "le":
		return v <= a.Value
	case "gt":
		return v > a.Value
	case "ge":
		return v >= a.Value
	case "between":
		return v >= a.Value && v <= a.Max
	case "approx":
		d := v - a.Value
		if d < 0 {
			d = -d
		}
		return d <= a.Tol
	}
	panic("scenario: unvalidated assertion op " + a.Op)
}

// ExtractedValue is one extractor's outcome.
type ExtractedValue struct {
	Name string
	// Matched reports whether the extractor found anything.
	Matched bool
	// Text is the raw extracted text; Value its numeric parse when
	// Numeric is true.
	Text    string
	Value   float64
	Numeric bool
}

// AssertionResult is one assertion's outcome.
type AssertionResult struct {
	Desc string
	// Found reports whether the checked value existed at all; Pass
	// whether the comparison held (false when not Found).
	Found bool
	Pass  bool
	Got   float64
}

// Evaluation is the combined post-run outcome for one template.
type Evaluation struct {
	Extracted  []ExtractedValue
	Assertions []AssertionResult
	// Failed counts assertions that did not pass.
	Failed int
}

// Render formats the evaluation as an indented text block.
func (ev Evaluation) Render() string {
	var b strings.Builder
	for _, x := range ev.Extracted {
		if !x.Matched {
			fmt.Fprintf(&b, "  extract %-20s (no match)\n", x.Name)
		} else {
			fmt.Fprintf(&b, "  extract %-20s = %s\n", x.Name, x.Text)
		}
	}
	for _, a := range ev.Assertions {
		verdict := "PASS"
		if !a.Pass {
			verdict = "FAIL"
		}
		if !a.Found {
			fmt.Fprintf(&b, "  %s %s (value not found)\n", verdict, a.Desc)
		} else {
			fmt.Fprintf(&b, "  %s %s (got %v)\n", verdict, a.Desc, a.Got)
		}
	}
	return b.String()
}

// Evaluate runs the spec's extractors and assertions against a run's
// rendered report and metrics. The spec must have passed Validate (which
// compiles every regex); Evaluate is read-only and never affects the run.
func (s *Spec) Evaluate(report string, metrics map[string]float64) Evaluation {
	ev := Evaluation{}
	extracted := map[string]ExtractedValue{}
	for _, x := range s.Extract {
		val := ExtractedValue{Name: x.Name}
		switch x.Type {
		case "regex":
			re := regexp.MustCompile(x.Pattern)
			group := x.Group
			if group == 0 {
				group = 1
			}
			if m := re.FindStringSubmatch(report); m != nil && group < len(m) {
				val.Matched = true
				val.Text = m[group]
				if f, err := strconv.ParseFloat(strings.TrimSpace(m[group]), 64); err == nil {
					val.Value, val.Numeric = f, true
				}
			}
		case "metric":
			if v, ok := metrics[x.Metric]; ok {
				val.Matched = true
				val.Text = strconv.FormatFloat(v, 'g', -1, 64)
				val.Value, val.Numeric = v, true
			}
		default:
			panic("scenario: unvalidated extractor type " + x.Type)
		}
		extracted[x.Name] = val
		ev.Extracted = append(ev.Extracted, val)
	}
	for _, a := range s.Assert {
		res := AssertionResult{Desc: a.Describe()}
		if a.Metric != "" {
			if v, ok := metrics[a.Metric]; ok {
				res.Found = true
				res.Got = v
			}
		} else if x, ok := extracted[a.Extract]; ok && x.Matched && x.Numeric {
			res.Found = true
			res.Got = x.Value
		}
		if res.Found {
			res.Pass = a.holds(res.Got)
		}
		if !res.Pass {
			ev.Failed++
		}
		ev.Assertions = append(ev.Assertions, res)
	}
	return ev
}

// MetricNames returns the sorted metric keys (a rendering helper).
func MetricNames(metrics map[string]float64) []string {
	names := make([]string, 0, len(metrics))
	for k := range metrics {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
