package experiments

import (
	"fmt"

	"leakyway/internal/core"
	"leakyway/internal/evset"
	"leakyway/internal/evset/model"
	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "fig13",
		Title: "Figure 13 — eviction-set construction time: access-based baseline vs Algorithm 2",
		Paper: "the prefetch-based algorithm is several times faster on both platforms (≈0.5 ms vs ≈0.15 ms)",
		Run:   runFig13,
	})
	register(Experiment{
		ID:    "counter",
		Title: "Section VI-D — countermeasure: modified insertion ages kill the construction advantage",
		Paper: "7.25x fewer memory references under the Intel policy, only 1.26x under the countermeasure (load age 1, NTA age 2)",
		Run:   runCounter,
	})
}

func runFig13(ctx *Context) (*Result, error) {
	res := &Result{}
	desired := 16
	trials := 3
	if ctx.Quick {
		desired = 8
		trials = 1
	}
	err := ctx.EachPlatform(func(sub *Context, cfg hier.Config) error {
		// Every trial builds both sets on its own machine with a
		// trial-derived seed, so the trials shard across free workers.
		type trialOut struct {
			pr, br evset.Result
			err    error
		}
		outs := make([]trialOut, trials)
		sub.Parallel(trials, func(trial int) {
			m := sim.MustNewMachine(cfg, 1<<31, sub.ShardSeed(trial))
			as := m.NewSpace()
			o := &outs[trial]
			m.Spawn("attacker", 0, as, func(c *sim.Core) {
				th := core.Calibrate(c, 48)
				t1 := c.Alloc(mem.PageSize)
				var perr, berr error
				o.pr, perr = evset.BuildPrefetch(c, t1, evset.Options{
					Desired: desired, Pool: evset.NewPool(c, t1, 512*desired), Thresholds: th,
				})
				t2 := c.Alloc(mem.PageSize)
				o.br, berr = evset.BuildBaseline(c, t2, evset.Options{
					Desired: desired, Pool: evset.NewPool(c, t2, 4000*desired), Thresholds: th,
				})
				if perr != nil {
					o.err = fmt.Errorf("prefetch build: %w", perr)
				} else if berr != nil {
					o.err = fmt.Errorf("baseline build: %w", berr)
				}
			})
			m.Run()
		})
		var prefMs, baseMs float64
		var prefRefs, baseRefs float64
		freqHz := cfg.FreqGHz * 1e9
		for _, o := range outs {
			if o.err != nil {
				return o.err
			}
			prefMs += float64(o.pr.Cycles) / freqHz * 1e3
			baseMs += float64(o.br.Cycles) / freqHz * 1e3
			prefRefs += float64(o.pr.MemRefs)
			baseRefs += float64(o.br.MemRefs)
		}
		n := float64(trials)
		prefMs, baseMs, prefRefs, baseRefs = prefMs/n, baseMs/n, prefRefs/n, baseRefs/n
		rows := [][]string{
			{"baseline (access-based)", fmt.Sprintf("%.3f ms", baseMs), fmt.Sprintf("%.0f", baseRefs)},
			{"ours (Algorithm 2)", fmt.Sprintf("%.3f ms", prefMs), fmt.Sprintf("%.0f", prefRefs)},
		}
		sub.Printf("\n%s (eviction set of %d lines)\n", cfg.Name, desired)
		renderTable(sub, []string{"algorithm", "execution time", "memory references"}, rows)
		sub.Printf("speedup: %.1fx in time, %.1fx in references\n", baseMs/prefMs, baseRefs/prefRefs)
		res.Metric(shortName(cfg)+"/baseline_ms", baseMs)
		res.Metric(shortName(cfg)+"/prefetch_ms", prefMs)
		res.Metric(shortName(cfg)+"/time_speedup", baseMs/prefMs)
		return nil
	})
	return res, err
}

func runCounter(ctx *Context) (*Result, error) {
	res := &Result{}
	comparisons := model.PaperComparison(16, 16)
	rows := [][]string{}
	paper := []float64{7.25, 1.26}
	for i, c := range comparisons {
		rows = append(rows, []string{
			c.Policy,
			fmt.Sprintf("%d", c.BaselineRefs),
			fmt.Sprintf("%d", c.PrefetchRefs),
			fmt.Sprintf("%.2fx", c.ImprovementRatio),
			fmt.Sprintf("%.2fx", paper[i]),
		})
	}
	renderTable(ctx, []string{"LLC insertion policy", "baseline refs", "Algorithm 2 refs", "improvement", "paper"}, rows)
	ctx.Printf("the countermeasure (load age 1, NTA age 2) collapses the advantage, as Section VI-D reports\n")
	res.Metric("intel_ratio", comparisons[0].ImprovementRatio)
	res.Metric("countermeasure_ratio", comparisons[1].ImprovementRatio)
	return res, nil
}
