package experiments

import (
	"fmt"

	"leakyway/internal/channel"
	"leakyway/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "noise",
		Title: "Extension — channel reliability vs co-tenant noise (Section IV-B3)",
		Paper: "other processes touching the target sets flip bits; the paper prescribes more reliable encodings",
		Run:   runNoise,
	})
}

func runNoise(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	bits := ctx.Trials(2000)
	base := channel.DefaultConfig(cfg.Name, cfg.FreqGHz)
	base.Interval = 1600

	rows := [][]string{}
	periods := []int64{0, 400_000, 100_000, 40_000, 15_000}
	// Every noise level runs its raw and Hamming-protected transmissions
	// on private machines with a level-derived seed, so the levels shard
	// across free workers.
	type levelOut struct {
		raw      channel.Report
		residual float64
	}
	outs := make([]levelOut, len(periods))
	ctx.Parallel(len(periods), func(pi int) {
		c := base
		c.NoisePeriod = periods[pi]
		seed := ctx.SeedFor(fmt.Sprintf("noise%d", periods[pi]))

		msg := channel.RandomMessage(bits, seed)

		// Raw transmission.
		m := sim.MustNewMachine(cfg, 1<<30, seed)
		outs[pi].raw, _ = channel.RunNTPNTP(m, c, msg)

		// Hamming(7,4)-protected transmission of the same payload,
		// block-interleaved so that burst errors (a stuck sender line
		// silences a stretch of '1's until the next noise event) land
		// in distinct codewords.
		const depth = 56
		enc := channel.Interleave(channel.EncodeHamming74(msg), depth)
		m2 := sim.MustNewMachine(cfg, 1<<30, seed)
		_, encBits := channel.RunNTPNTP(m2, c, enc)
		dec := channel.DecodeHamming74(channel.Deinterleave(encBits, depth))
		decErr := 0
		for i := range msg {
			if i >= len(dec) || dec[i] != msg[i] {
				decErr++
			}
		}
		outs[pi].residual = float64(decErr) / float64(len(msg))
	})
	for pi, period := range periods {
		label := "quiet"
		if period > 0 {
			label = fmt.Sprintf("1 fill / %dK cycles", period/1000)
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%.2f%%", 100*outs[pi].raw.BER),
			fmt.Sprintf("%.1f KB/s", outs[pi].raw.CapacityKBps),
			fmt.Sprintf("%.2f%%", 100*outs[pi].residual),
		})
		key := fmt.Sprintf("noise%d", period)
		res.Metric(key+"_raw_ber", outs[pi].raw.BER)
		res.Metric(key+"_hamming_residual", outs[pi].residual)
	}
	renderTable(ctx, []string{"co-tenant noise", "raw BER", "raw capacity", "interleaved Hamming(7,4) residual"}, rows)
	ctx.Printf("noise produces both isolated flips and bursts (a stuck sender line silences '1's\n")
	ctx.Printf("until the next eviction); interleaved Hamming(7,4) absorbs both — the reliable\n")
	ctx.Printf("encoding the paper prescribes for noisy conditions\n")
	return res, nil
}
