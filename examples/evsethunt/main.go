// Eviction-set hunt: construct an LLC eviction set for a target address
// from timing alone, with the access-based state of the art and with the
// paper's prefetch-based Algorithm 2, and verify both against the
// simulator's ground-truth geometry.
package main

import (
	"fmt"
	"log"

	"leakyway"
)

func main() {
	plat := leakyway.Skylake()
	m := leakyway.MustNewMachine(plat, 1<<31, 2024)
	as := m.NewSpace()

	const want = 16
	var prefetch, baseline, grouped leakyway.EvsetResult
	var target1, target2, target3 leakyway.VAddr
	var errP, errB, errG error

	m.Spawn("attacker", 0, as, func(c *leakyway.Core) {
		th := leakyway.Calibrate(c, 48)

		target1 = c.Alloc(leakyway.PageSize)
		pool1 := leakyway.NewEvsetPool(c, target1, 512*want)
		prefetch, errP = leakyway.BuildPrefetchEvset(c, target1, leakyway.EvsetOptions{
			Desired: want, Pool: pool1, Thresholds: th,
		})

		target2 = c.Alloc(leakyway.PageSize)
		pool2 := leakyway.NewEvsetPool(c, target2, 2600*want)
		baseline, errB = leakyway.BuildBaselineEvset(c, target2, leakyway.EvsetOptions{
			Desired: want, Pool: pool2, Thresholds: th,
		})

		target3 = c.Alloc(leakyway.PageSize)
		pool3 := leakyway.NewEvsetPool(c, target3, 512*want)
		grouped, errG = leakyway.BuildGroupTestingEvset(c, target3, leakyway.EvsetOptions{
			Desired: want, Pool: pool3, Thresholds: th,
		})
	})
	m.Run()
	if errP != nil || errB != nil || errG != nil {
		log.Fatal(errP, errB, errG)
	}

	freq := plat.FreqGHz * 1e9
	fmt.Printf("building a %d-line eviction set on %s\n\n", want, plat.Name)
	fmt.Printf("%-24s %10s %12s %10s %s\n", "algorithm", "mem refs", "candidates", "time", "verified congruent")
	fmt.Printf("%-24s %10d %12d %7.3f ms %d/%d\n",
		"Algorithm 2 (prefetch)", prefetch.MemRefs, prefetch.Tested,
		float64(prefetch.Cycles)/freq*1e3,
		leakyway.VerifyEvset(m, as, target1, prefetch.Set), len(prefetch.Set))
	fmt.Printf("%-24s %10d %12d %7.3f ms %d/%d\n",
		"baseline (access)", baseline.MemRefs, baseline.Tested,
		float64(baseline.Cycles)/freq*1e3,
		leakyway.VerifyEvset(m, as, target2, baseline.Set), len(baseline.Set))
	fmt.Printf("%-24s %10d %12d %7.3f ms %d/%d\n",
		"group testing [62]*", grouped.MemRefs, grouped.Tested,
		float64(grouped.Cycles)/freq*1e3,
		leakyway.VerifyEvset(m, as, target3, grouped.Set), len(grouped.Set))
	fmt.Printf("\nspeedup over access baseline: %.1fx fewer references, %.1fx faster\n",
		float64(baseline.MemRefs)/float64(prefetch.MemRefs),
		float64(baseline.Cycles)/float64(prefetch.Cycles))
	fmt.Println("* group testing returns a small evicting superset on quad-age parts (see evset docs)")
}
