// Package model is the Go port of the paper's "Python models" (Section
// VI-D): a policy-level simulation of one LLC set used to compare the
// eviction-set construction algorithms under the original Intel insertion
// policy and under the proposed countermeasure policy (loads insert at age
// 1, PREFETCHNTA at age 2). The paper reports that the prefetch-based
// algorithm needs 7.25× fewer memory references than the baseline under the
// Intel policy, but only 1.26× fewer under the countermeasure.
package model

import (
	"fmt"

	"leakyway/internal/policy"
)

// setModel is a single w-way LLC set with quad-age metadata; tags are small
// integers. Tag conventions: negative tags are background lines, tag 0 is
// the target, positive tags are candidates.
type setModel struct {
	ways  int
	tags  []int
	valid []bool
	state policy.SetState
}

func newSetModel(pol policy.Policy, ways int) *setModel {
	s := &setModel{
		ways:  ways,
		tags:  make([]int, ways),
		valid: make([]bool, ways),
		state: pol.NewSet(ways),
	}
	// Background: the set starts full of other processes' lines at load
	// insertion age, as on a warm machine.
	for w := 0; w < ways; w++ {
		s.tags[w] = -(w + 1)
		s.valid[w] = true
		s.state.OnFill(w, policy.ClassLoad)
	}
	return s
}

func (s *setModel) find(tag int) int {
	for w := 0; w < s.ways; w++ {
		if s.valid[w] && s.tags[w] == tag {
			return w
		}
	}
	return -1
}

// touch is an access of class cls: hit updates policy state; miss evicts the
// policy victim and fills.
func (s *setModel) touch(tag int, cls policy.AccessClass) {
	if w := s.find(tag); w >= 0 {
		s.state.OnHit(w, cls)
		return
	}
	w := s.state.Victim(policy.AllWays(s.ways))
	s.state.OnInvalidate(w)
	s.tags[w] = tag
	s.valid[w] = true
	s.state.OnFill(w, cls)
}

// present reports whether tag is cached.
func (s *setModel) present(tag int) bool { return s.find(tag) >= 0 }

// Result reports the cost of constructing an eviction set in the model.
type Result struct {
	MemRefs    int
	Candidates int
}

// RunPrefetch simulates Algorithm 2 on the set model: every reference is a
// PREFETCHNTA. MemRefs counts references that reach the target's LLC set:
// candidate prefetches and target (re-)installs. A timed check of a
// still-present target is a private-cache hit (and even at the LLC an NTA
// hit would leave the age untouched, Property #2), so it neither mutates the
// set nor counts.
func RunPrefetch(pol policy.Policy, ways, desired int) Result {
	s := newSetModel(pol, ways)
	var res Result
	nextCand := 1
	for found := 0; found < desired; found++ {
		// Install the target as the eviction candidate; after a
		// detection the detecting prefetch already re-installed it,
		// so this only costs a reference when the target is absent.
		if !s.present(0) {
			s.touch(0, policy.ClassNTA)
			res.MemRefs++
		}
		for {
			cand := nextCand
			nextCand++
			res.Candidates++
			s.touch(cand, policy.ClassNTA)
			res.MemRefs++
			// Timed prefetch of the target: if evicted, the last
			// candidate is congruent, and the detecting prefetch
			// misses to DRAM and re-installs the target.
			if !s.present(0) {
				s.touch(0, policy.ClassNTA)
				res.MemRefs++
				break
			}
		}
	}
	return res
}

// RunBaseline simulates the access-based construction: demand loads
// everywhere. Checks of a present target are private-cache hits and do not
// touch the LLC set (they still count as references); a check of an evicted
// target misses and refills it.
func RunBaseline(pol policy.Policy, ways, desired int) Result {
	s := newSetModel(pol, ways)
	var res Result
	nextCand := 1
	found := []int{}
	for len(found) < desired {
		// (Re-)load the target; skip when it is already private-cache
		// resident from the detecting check. (The paper notes the
		// baseline *could* also re-access the partial eviction set
		// here to slightly reduce the count; like the paper's model,
		// we compare against the plain algorithm.)
		if !s.present(0) {
			s.touch(0, policy.ClassLoad)
			res.MemRefs++
		}
		for {
			cand := nextCand
			nextCand++
			res.Candidates++
			s.touch(cand, policy.ClassLoad)
			res.MemRefs++
			// The timed check load of a present target is a
			// private-cache hit: no LLC effect, not counted (the
			// same convention as RunPrefetch). A check of an
			// evicted target misses, refills it, and ends the
			// inner loop.
			if !s.present(0) {
				found = append(found, cand)
				s.touch(0, policy.ClassLoad)
				res.MemRefs++
				break
			}
		}
	}
	return res
}

// Comparison holds the paper's headline countermeasure numbers.
type Comparison struct {
	Policy           string
	BaselineRefs     int
	PrefetchRefs     int
	ImprovementRatio float64
}

// Compare runs both algorithms under the given policy and returns the
// reference counts and the baseline/prefetch improvement ratio.
func Compare(pol policy.Policy, name string, ways, desired int) Comparison {
	b := RunBaseline(pol, ways, desired)
	p := RunPrefetch(pol, ways, desired)
	ratio := 0.0
	if p.MemRefs > 0 {
		ratio = float64(b.MemRefs) / float64(p.MemRefs)
	}
	return Comparison{
		Policy:           name,
		BaselineRefs:     b.MemRefs,
		PrefetchRefs:     p.MemRefs,
		ImprovementRatio: ratio,
	}
}

// PaperComparison reproduces the Section VI-D experiment: both algorithms
// under the stock Intel policy and under the countermeasure policy.
func PaperComparison(ways, desired int) []Comparison {
	return []Comparison{
		Compare(policy.NewQuadAge(), "intel qlru (load=2, nta=3)", ways, desired),
		Compare(policy.NewQuadAgeCountermeasure(), "countermeasure (load=1, nta=2)", ways, desired),
	}
}

// String renders a comparison row.
func (c Comparison) String() string {
	return fmt.Sprintf("%-32s baseline=%5d refs  prefetch=%5d refs  improvement=%.2fx",
		c.Policy, c.BaselineRefs, c.PrefetchRefs, c.ImprovementRatio)
}
