package scenario

import (
	"fmt"
	"math"
)

// The strict tree→Spec decoder. Every getter records the first failure
// (with the file and dotted field path) and turns subsequent calls into
// no-ops, so decode functions read straight through without per-field
// error plumbing. Unknown fields are rejected at every level.

type dec struct {
	file string
	err  error
}

func (d *dec) fail(path, format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%s: %s: %s", d.file, path, fmt.Sprintf(format, args...))
	}
}

// mapping asserts v is a mapping and returns it.
func (d *dec) mapping(v any, path string) map[string]any {
	if d.err != nil {
		return nil
	}
	m, ok := v.(map[string]any)
	if !ok {
		d.fail(path, "expected a mapping, got %s", typeName(v))
		return nil
	}
	return m
}

// checkUnknown rejects keys outside the known set.
func (d *dec) checkUnknown(m map[string]any, path string, known ...string) {
	if d.err != nil {
		return
	}
	for k := range m {
		found := false
		for _, ok := range known {
			if k == ok {
				found = true
				break
			}
		}
		if !found {
			// Deterministic choice irrelevant: fail on any one.
			d.fail(joinPath(path, k), "unknown field (valid fields: %v)", known)
			return
		}
	}
}

func joinPath(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case map[string]any:
		return "mapping"
	case []any:
		return "sequence"
	case string:
		return "string"
	case bool:
		return "bool"
	case int64:
		return "integer"
	case float64:
		return "float"
	}
	return fmt.Sprintf("%T", v)
}

func (d *dec) str(m map[string]any, path, key string) string {
	v, ok := m[key]
	if d.err != nil || !ok || v == nil {
		return ""
	}
	s, isStr := v.(string)
	if !isStr {
		d.fail(joinPath(path, key), "expected a string, got %s", typeName(v))
		return ""
	}
	return s
}

func (d *dec) integer(m map[string]any, path, key string) int64 {
	v, ok := m[key]
	if d.err != nil || !ok || v == nil {
		return 0
	}
	switch n := v.(type) {
	case int64:
		return n
	case float64:
		if n == math.Trunc(n) && math.Abs(n) < 1<<53 {
			return int64(n)
		}
	}
	d.fail(joinPath(path, key), "expected an integer, got %s", typeName(v))
	return 0
}

func (d *dec) intVal(m map[string]any, path, key string) int {
	n := d.integer(m, path, key)
	if d.err == nil && (n > math.MaxInt32 || n < math.MinInt32) {
		d.fail(joinPath(path, key), "integer %d out of range", n)
		return 0
	}
	return int(n)
}

func (d *dec) float(m map[string]any, path, key string) float64 {
	v, ok := m[key]
	if d.err != nil || !ok || v == nil {
		return 0
	}
	switch n := v.(type) {
	case int64:
		return float64(n)
	case float64:
		return n
	}
	d.fail(joinPath(path, key), "expected a number, got %s", typeName(v))
	return 0
}

// Pointer getters: nil when the key is absent, so explicit zeros survive.

func (d *dec) i64p(m map[string]any, path, key string) *int64 {
	if _, ok := m[key]; !ok || d.err != nil {
		return nil
	}
	v := d.integer(m, path, key)
	if d.err != nil {
		return nil
	}
	return &v
}

func (d *dec) intp(m map[string]any, path, key string) *int {
	if _, ok := m[key]; !ok || d.err != nil {
		return nil
	}
	v := d.intVal(m, path, key)
	if d.err != nil {
		return nil
	}
	return &v
}

func (d *dec) f64p(m map[string]any, path, key string) *float64 {
	if _, ok := m[key]; !ok || d.err != nil {
		return nil
	}
	v := d.float(m, path, key)
	if d.err != nil {
		return nil
	}
	return &v
}

func (d *dec) boolp(m map[string]any, path, key string) *bool {
	v, ok := m[key]
	if !ok || d.err != nil {
		return nil
	}
	b, isBool := v.(bool)
	if !isBool {
		d.fail(joinPath(path, key), "expected a bool, got %s", typeName(v))
		return nil
	}
	return &b
}

func (d *dec) list(m map[string]any, path, key string) []any {
	v, ok := m[key]
	if d.err != nil || !ok || v == nil {
		return nil
	}
	l, isList := v.([]any)
	if !isList {
		d.fail(joinPath(path, key), "expected a sequence, got %s", typeName(v))
		return nil
	}
	return l
}

func (d *dec) i64s(m map[string]any, path, key string) []int64 {
	l := d.list(m, path, key)
	if l == nil {
		return nil
	}
	out := make([]int64, 0, len(l))
	for i, v := range l {
		n, ok := v.(int64)
		if !ok {
			d.fail(fmt.Sprintf("%s[%d]", joinPath(path, key), i), "expected an integer, got %s", typeName(v))
			return nil
		}
		out = append(out, n)
	}
	return out
}

func (d *dec) ints(m map[string]any, path, key string) []int {
	l := d.i64s(m, path, key)
	if l == nil {
		return nil
	}
	out := make([]int, len(l))
	for i, v := range l {
		out[i] = int(v)
	}
	return out
}

// decodeSpec decodes a parsed document into a Spec.
func decodeSpec(d *dec, root any) *Spec {
	m := d.mapping(root, "")
	if d.err != nil {
		return nil
	}
	d.checkUnknown(m, "",
		"id", "title", "paper", "kind",
		"platform", "channel", "transport",
		"statewalk", "pipeline", "sweep", "lanes", "noise", "faults", "victim",
		"extract", "assert")
	s := &Spec{
		ID:    d.str(m, "", "id"),
		Title: d.str(m, "", "title"),
		Paper: d.str(m, "", "paper"),
		Kind:  d.str(m, "", "kind"),
	}
	if v, ok := m["platform"]; ok {
		s.Platform = decodePlatform(d, v, "platform")
	}
	if v, ok := m["channel"]; ok {
		s.Channel = decodeChannel(d, v, "channel")
	}
	if v, ok := m["transport"]; ok {
		s.Transport = decodeTransport(d, v, "transport")
	}
	if v, ok := m["statewalk"]; ok {
		s.StateWalk = decodeStateWalk(d, v, "statewalk")
	}
	if v, ok := m["pipeline"]; ok {
		s.Pipeline = decodePipeline(d, v, "pipeline")
	}
	if v, ok := m["sweep"]; ok {
		s.Sweep = decodeSweep(d, v, "sweep")
	}
	if v, ok := m["lanes"]; ok {
		s.Lanes = decodeLanes(d, v, "lanes")
	}
	if v, ok := m["noise"]; ok {
		s.Noise = decodeNoise(d, v, "noise")
	}
	if v, ok := m["faults"]; ok {
		s.Faults = decodeFaults(d, v, "faults")
	}
	if v, ok := m["victim"]; ok {
		s.Victim = decodeVictim(d, v, "victim")
	}
	if v, ok := m["extract"]; ok {
		s.Extract = decodeExtract(d, v, "extract")
	}
	if v, ok := m["assert"]; ok {
		s.Assert = decodeAssert(d, v, "assert")
	}
	if d.err != nil {
		return nil
	}
	return s
}

func decodePlatform(d *dec, v any, path string) *PlatformSpec {
	m := d.mapping(v, path)
	if d.err != nil {
		return nil
	}
	d.checkUnknown(m, path, "base", "name", "cores", "freq_ghz",
		"l1_sets", "l1_ways", "l2_sets", "l2_ways",
		"llc_slices", "llc_sets_per_slice", "llc_ways", "llc_policy",
		"adjacent_line", "stream_prefetch", "non_inclusive", "llc_partition_ways")
	return &PlatformSpec{
		Base:             d.str(m, path, "base"),
		Name:             d.str(m, path, "name"),
		Cores:            d.intVal(m, path, "cores"),
		FreqGHz:          d.float(m, path, "freq_ghz"),
		L1Sets:           d.intVal(m, path, "l1_sets"),
		L1Ways:           d.intVal(m, path, "l1_ways"),
		L2Sets:           d.intVal(m, path, "l2_sets"),
		L2Ways:           d.intVal(m, path, "l2_ways"),
		LLCSlices:        d.intVal(m, path, "llc_slices"),
		LLCSetsPerSlice:  d.intVal(m, path, "llc_sets_per_slice"),
		LLCWays:          d.intVal(m, path, "llc_ways"),
		LLCPolicy:        d.str(m, path, "llc_policy"),
		AdjacentLine:     d.boolp(m, path, "adjacent_line"),
		StreamPrefetch:   d.boolp(m, path, "stream_prefetch"),
		NonInclusive:     d.boolp(m, path, "non_inclusive"),
		LLCPartitionWays: d.intp(m, path, "llc_partition_ways"),
	}
}

func decodeChannel(d *dec, v any, path string) *ChannelSpec {
	m := d.mapping(v, path)
	if d.err != nil {
		return nil
	}
	d.checkUnknown(m, path, "interval", "sets", "sender_offset", "receiver_offset",
		"protocol_overhead", "start", "noise_period", "prime_walks")
	return &ChannelSpec{
		Interval:         d.i64p(m, path, "interval"),
		Sets:             d.intp(m, path, "sets"),
		SenderOffset:     d.i64p(m, path, "sender_offset"),
		ReceiverOffset:   d.i64p(m, path, "receiver_offset"),
		ProtocolOverhead: d.i64p(m, path, "protocol_overhead"),
		Start:            d.i64p(m, path, "start"),
		NoisePeriod:      d.i64p(m, path, "noise_period"),
		PrimeWalks:       d.intp(m, path, "prime_walks"),
	}
}

func decodeTransport(d *dec, v any, path string) *TransportSpec {
	m := d.mapping(v, path)
	if d.err != nil {
		return nil
	}
	d.checkUnknown(m, path, "channel", "max_retries", "fer_window", "fer_threshold")
	t := &TransportSpec{
		MaxRetries:   d.intp(m, path, "max_retries"),
		FERWindow:    d.intp(m, path, "fer_window"),
		FERThreshold: d.f64p(m, path, "fer_threshold"),
	}
	if cv, ok := m["channel"]; ok {
		t.Channel = decodeChannel(d, cv, joinPath(path, "channel"))
	}
	if d.err != nil {
		return nil
	}
	return t
}

func decodeStateWalk(d *dec, v any, path string) *StateWalkSpec {
	m := d.mapping(v, path)
	if d.err != nil {
		return nil
	}
	d.checkUnknown(m, path, "message", "calibrate_samples", "receiver_ready", "phase_step")
	return &StateWalkSpec{
		Message:          d.str(m, path, "message"),
		CalibrateSamples: d.intVal(m, path, "calibrate_samples"),
		ReceiverReady:    d.integer(m, path, "receiver_ready"),
		PhaseStep:        d.integer(m, path, "phase_step"),
	}
}

func decodePipeline(d *dec, v any, path string) *PipelineSpec {
	m := d.mapping(v, path)
	if d.err != nil {
		return nil
	}
	d.checkUnknown(m, path, "message")
	return &PipelineSpec{Message: d.str(m, path, "message")}
}

func decodeSweep(d *dec, v any, path string) *SweepSpec {
	m := d.mapping(v, path)
	if d.err != nil {
		return nil
	}
	d.checkUnknown(m, path, "bits", "channels")
	s := &SweepSpec{Bits: d.intVal(m, path, "bits")}
	for i, cv := range d.list(m, path, "channels") {
		cpath := fmt.Sprintf("%s.channels[%d]", path, i)
		cm := d.mapping(cv, cpath)
		if d.err != nil {
			return nil
		}
		d.checkUnknown(cm, cpath, "channel", "intervals")
		s.Channels = append(s.Channels, SweepChannel{
			Channel:   d.str(cm, cpath, "channel"),
			Intervals: d.i64s(cm, cpath, "intervals"),
		})
	}
	if d.err != nil {
		return nil
	}
	return s
}

func decodeLanes(d *dec, v any, path string) *LanesSpec {
	m := d.mapping(v, path)
	if d.err != nil {
		return nil
	}
	d.checkUnknown(m, path, "bits", "lane_counts", "offsets", "lane_cost")
	return &LanesSpec{
		Bits:       d.intVal(m, path, "bits"),
		LaneCounts: d.ints(m, path, "lane_counts"),
		Offsets:    d.i64s(m, path, "offsets"),
		LaneCost:   d.integer(m, path, "lane_cost"),
	}
}

func decodeNoise(d *dec, v any, path string) *NoiseSpec {
	m := d.mapping(v, path)
	if d.err != nil {
		return nil
	}
	d.checkUnknown(m, path, "bits", "periods", "interleave_depth")
	return &NoiseSpec{
		Bits:            d.intVal(m, path, "bits"),
		Periods:         d.i64s(m, path, "periods"),
		InterleaveDepth: d.intVal(m, path, "interleave_depth"),
	}
}

func decodeFaults(d *dec, v any, path string) *FaultsSpec {
	m := d.mapping(v, path)
	if d.err != nil {
		return nil
	}
	d.checkUnknown(m, path, "raw_bits", "arq_bits", "interleave_depth", "scenarios")
	f := &FaultsSpec{
		RawBits:         d.intVal(m, path, "raw_bits"),
		ARQBits:         d.intVal(m, path, "arq_bits"),
		InterleaveDepth: d.intVal(m, path, "interleave_depth"),
	}
	for i, sv := range d.list(m, path, "scenarios") {
		spath := fmt.Sprintf("%s.scenarios[%d]", path, i)
		sm := d.mapping(sv, spath)
		if d.err != nil {
			return nil
		}
		d.checkUnknown(sm, spath, "key", "faults")
		sc := FaultScenario{Key: d.str(sm, spath, "key")}
		for j, fv := range d.list(sm, spath, "faults") {
			fpath := fmt.Sprintf("%s.faults[%d]", spath, j)
			fm := d.mapping(fv, fpath)
			if d.err != nil {
				return nil
			}
			d.checkUnknown(fm, fpath, "type", "role", "count", "min_dur", "max_dur",
				"bursts", "walks", "gap", "ppm", "dur", "extra", "cost")
			sc.Faults = append(sc.Faults, FaultSpec{
				Type:   d.str(fm, fpath, "type"),
				Role:   d.str(fm, fpath, "role"),
				Count:  d.intVal(fm, fpath, "count"),
				MinDur: d.integer(fm, fpath, "min_dur"),
				MaxDur: d.integer(fm, fpath, "max_dur"),
				Bursts: d.intVal(fm, fpath, "bursts"),
				Walks:  d.intVal(fm, fpath, "walks"),
				Gap:    d.integer(fm, fpath, "gap"),
				PPM:    d.integer(fm, fpath, "ppm"),
				Dur:    d.integer(fm, fpath, "dur"),
				Extra:  d.integer(fm, fpath, "extra"),
				Cost:   d.integer(fm, fpath, "cost"),
			})
		}
		f.Scenarios = append(f.Scenarios, sc)
	}
	if d.err != nil {
		return nil
	}
	return f
}

func decodeVictim(d *dec, v any, path string) *VictimSpec {
	m := d.mapping(v, path)
	if d.err != nil {
		return nil
	}
	d.checkUnknown(m, path, "program", "key", "encryptions", "window", "start")
	return &VictimSpec{
		Program:     d.str(m, path, "program"),
		Key:         d.str(m, path, "key"),
		Encryptions: d.intVal(m, path, "encryptions"),
		Window:      d.integer(m, path, "window"),
		Start:       d.integer(m, path, "start"),
	}
}

func decodeExtract(d *dec, v any, path string) []Extractor {
	var out []Extractor
	l, isList := v.([]any)
	if !isList {
		d.fail(path, "expected a sequence, got %s", typeName(v))
		return nil
	}
	for i, ev := range l {
		epath := fmt.Sprintf("%s[%d]", path, i)
		em := d.mapping(ev, epath)
		if d.err != nil {
			return nil
		}
		d.checkUnknown(em, epath, "name", "type", "pattern", "group", "metric")
		out = append(out, Extractor{
			Name:    d.str(em, epath, "name"),
			Type:    d.str(em, epath, "type"),
			Pattern: d.str(em, epath, "pattern"),
			Group:   d.intVal(em, epath, "group"),
			Metric:  d.str(em, epath, "metric"),
		})
	}
	if d.err != nil {
		return nil
	}
	return out
}

func decodeAssert(d *dec, v any, path string) []Assertion {
	var out []Assertion
	l, isList := v.([]any)
	if !isList {
		d.fail(path, "expected a sequence, got %s", typeName(v))
		return nil
	}
	for i, av := range l {
		apath := fmt.Sprintf("%s[%d]", path, i)
		am := d.mapping(av, apath)
		if d.err != nil {
			return nil
		}
		d.checkUnknown(am, apath, "metric", "extract", "op", "value", "max", "tol")
		out = append(out, Assertion{
			Metric:  d.str(am, apath, "metric"),
			Extract: d.str(am, apath, "extract"),
			Op:      d.str(am, apath, "op"),
			Value:   d.float(am, apath, "value"),
			Max:     d.float(am, apath, "max"),
			Tol:     d.float(am, apath, "tol"),
		})
	}
	if d.err != nil {
		return nil
	}
	return out
}
