package policy

import "fmt"

// QuadAge is the quad-age pseudo-LRU used by Intel client LLCs, as
// reverse-engineered by Briongos et al. and re-verified in Section II-B /
// Figure 1 of the Leaky Way paper:
//
//   - every line carries a 2-bit age, 0 (youngest) .. 3 (oldest);
//   - insertion: a demand load is installed with age 2 (3 on some
//     pre-Skylake parts); the paper establishes that PREFETCHNTA installs
//     with age 3 (Property #1);
//   - replacement: scan the ways in order and evict the first one with age
//     3; if none exists, increment every age by one and rescan;
//   - update: a demand hit decrements the age (floor 0); a PREFETCHNTA hit
//     does not change the age at all (Property #2).
//
// The insertion ages are configurable so the same type also expresses the
// Section VI-D countermeasure policy (load age 1, NTA age 2), the
// pre-Skylake variant, and anything an ablation needs.
type QuadAge struct {
	// LoadAge is the insertion age for demand loads and T0 prefetches.
	LoadAge int
	// NTAAge is the insertion age for non-temporal prefetches.
	NTAAge int
	// HWAge is the insertion age for hardware-prefetcher fills.
	HWAge int
	// NTAHitUpdates, if true, makes an NTA hit decrement the age like a
	// demand hit (used to ablate Property #2).
	NTAHitUpdates bool
	// MaxAge is the oldest age; 3 for the 2-bit Intel scheme.
	MaxAge int
}

// NewQuadAge returns the policy with the stock Intel client parameters the
// paper reverse-engineers: load age 2, NTA age 3, NTA hits leave ages alone.
func NewQuadAge() *QuadAge {
	return &QuadAge{LoadAge: 2, NTAAge: 3, HWAge: 2, MaxAge: 3}
}

// NewQuadAgeCountermeasure returns the Section VI-D mitigation: loads insert
// at age 1 and NTA prefetches at age 2, so a prefetched line still dies
// sooner than a loaded line but is no longer guaranteed to be the eviction
// candidate.
func NewQuadAgeCountermeasure() *QuadAge {
	return &QuadAge{LoadAge: 1, NTAAge: 2, HWAge: 1, MaxAge: 3}
}

// Name implements Policy.
func (q *QuadAge) Name() string {
	return fmt.Sprintf("qlru(load=%d,nta=%d)", q.LoadAge, q.NTAAge)
}

// NewSet implements Policy.
func (q *QuadAge) NewSet(ways int) SetState {
	ages := make([]int8, ways)
	for i := range ages {
		ages[i] = -1
	}
	return &quadAgeSet{
		maxAge:        int8(q.MaxAge),
		loadAge:       int8(q.LoadAge),
		ntaAge:        int8(q.NTAAge),
		hwAge:         int8(q.HWAge),
		ntaHitUpdates: q.NTAHitUpdates,
		ages:          ages,
	}
}

// quadAgeSet keeps the insertion parameters denormalized into small fields
// and the ages as a flat int8 array so the victim scan stays in one or two
// cache lines even for wide LLC sets.
type quadAgeSet struct {
	maxAge, loadAge, ntaAge, hwAge int8
	ntaHitUpdates                  bool
	ages                           []int8 // -1 for invalid ways
}

// insertAge maps an access class to its insertion age.
func (s *quadAgeSet) insertAge(cls AccessClass) int8 {
	switch cls {
	case ClassNTA:
		return s.ntaAge
	case ClassHW:
		return s.hwAge
	default:
		return s.loadAge
	}
}

// Victim implements the scan-then-age loop. In-flight lines (reported
// non-evictable by the cache) are skipped exactly as hardware skips lines
// with outstanding fills — the effect the paper leans on when it spaces out
// sender and receiver prefetches.
func (s *quadAgeSet) Victim(evictable Mask) int {
	if evictable&AllWays(len(s.ages)) == 0 {
		return -1
	}
	// The aging loop terminates: each round either finds a max-age
	// evictable way or raises every age toward MaxAge; after at most
	// MaxAge rounds some evictable way has age MaxAge.
	for round := 0; ; round++ {
		for way, age := range s.ages {
			if age >= s.maxAge && evictable.Has(way) {
				return way
			}
		}
		for way, age := range s.ages {
			if age >= 0 && age < s.maxAge {
				s.ages[way] = age + 1
			}
		}
		if round > int(s.maxAge) {
			// All evictable ways are pinned below MaxAge only if
			// MaxAge saturation already happened; fall back to the
			// first evictable way to stay total.
			for way := range s.ages {
				if evictable.Has(way) {
					return way
				}
			}
		}
	}
}

// OnFill implements SetState.
func (s *quadAgeSet) OnFill(way int, cls AccessClass) {
	s.ages[way] = s.insertAge(cls)
}

// OnHit implements SetState.
func (s *quadAgeSet) OnHit(way int, cls AccessClass) {
	if cls == ClassNTA && !s.ntaHitUpdates {
		return // Property #2: an NTA hit leaves the age untouched.
	}
	if s.ages[way] > 0 {
		s.ages[way]--
	}
}

// OnInvalidate implements SetState.
func (s *quadAgeSet) OnInvalidate(way int) {
	s.ages[way] = -1
}

// AgeAt implements SetState.
func (s *quadAgeSet) AgeAt(way int) int { return int(s.ages[way]) }

// Reset implements SetState.
func (s *quadAgeSet) Reset() {
	for i := range s.ages {
		s.ages[i] = -1
	}
}

// Snapshot implements SetState; it returns the raw ages.
func (s *quadAgeSet) Snapshot() []int {
	out := make([]int, len(s.ages))
	for i, a := range s.ages {
		out[i] = int(a)
	}
	return out
}
