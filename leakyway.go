// Package leakyway is a full reproduction, in pure Go, of "Leaky Way: A
// Conflict-Based Cache Covert Channel Bypassing Set Associativity"
// (MICRO 2022). Because the paper's experiments require Intel silicon and
// the PREFETCHNTA instruction, the library substitutes a cycle-level
// simulator of the paper's two platforms (Skylake i7-6700 and Kaby Lake
// i7-7700K): private L1/L2, a shared sliced inclusive LLC running the
// reverse-engineered quad-age LRU, the three PREFETCHNTA properties, cache
// line in-flight windows, back-invalidation, and per-level latencies.
//
// On top of the simulator it implements everything the paper evaluates:
//
//   - the NTP+NTP covert channel and its Prime+Probe baseline (Section IV);
//   - Prime+Scope and Prime+Prefetch+Scope (Section V-A);
//   - Reload+Refresh and Prefetch+Refresh v1/v2 (Section V-B);
//   - eviction-set construction, access-based and prefetch-based
//     (Algorithm 2, Section VI-A), plus the Section VI-D countermeasure
//     model;
//   - a registry of experiments regenerating every table and figure.
//
// This facade re-exports the stable API; the implementation lives under
// internal/.
package leakyway

import (
	"io"

	"leakyway/internal/attack"
	"leakyway/internal/channel"
	"leakyway/internal/core"
	"leakyway/internal/evset"
	"leakyway/internal/experiments"
	"leakyway/internal/fault"
	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/platform"
	"leakyway/internal/scenario"
	"leakyway/internal/sim"
	"leakyway/internal/trace"
	"leakyway/internal/victim"
)

// Platform describes one simulated processor (Table I entries plus the
// latency model). Use Skylake or KabyLake, or modify a copy for what-if
// studies.
type Platform = hier.Config

// Skylake returns the Core i7-6700 configuration.
func Skylake() Platform { return platform.Skylake() }

// KabyLake returns the Core i7-7700K configuration.
func KabyLake() Platform { return platform.KabyLake() }

// Platforms returns both paper platforms in order.
func Platforms() []Platform { return platform.All() }

// PlatformByName resolves "skylake" or "kabylake".
func PlatformByName(name string) (Platform, bool) { return platform.ByName(name) }

// Machine is a simulated processor plus physical memory and the agents
// running on it. Spawn agents, then Run.
type Machine = sim.Machine

// Core is an agent's handle onto its pinned core: Load, PrefetchNTA, Flush,
// timed variants, and clock synchronization.
type Core = sim.Core

// AddressSpace is a per-process virtual address space.
type AddressSpace = mem.AddressSpace

// VAddr is a virtual address within an AddressSpace.
type VAddr = mem.VAddr

// Memory geometry constants.
const (
	// LineSize is the cache line size in bytes.
	LineSize = mem.LineSize
	// PageSize is the virtual memory page size in bytes.
	PageSize = mem.PageSize
)

// Thresholds are calibrated timing cut-offs (the paper's Th0).
type Thresholds = core.Thresholds

// Calibrate measures an agent's timing tiers and derives thresholds, as an
// attacker does before mounting an attack.
func Calibrate(c *Core, samples int) Thresholds { return core.Calibrate(c, samples) }

// NewMachine builds a machine for the platform with memBytes of physical
// memory; every stochastic element derives from seed.
func NewMachine(p Platform, memBytes uint64, seed int64) (*Machine, error) {
	return sim.NewMachine(p, memBytes, seed)
}

// MustNewMachine is NewMachine for static configurations.
func MustNewMachine(p Platform, memBytes uint64, seed int64) *Machine {
	return sim.MustNewMachine(p, memBytes, seed)
}

//
// Covert channels (Section IV).
//

// ChannelConfig parameterizes a covert-channel run.
type ChannelConfig = channel.Config

// ChannelReport summarizes a transmission (BER, raw rate, capacity).
type ChannelReport = channel.Report

// ChannelSweep is a Figure 8 curve.
type ChannelSweep = channel.SweepResult

// DefaultChannelConfig returns the calibrated protocol parameters for a
// platform.
func DefaultChannelConfig(p Platform) ChannelConfig {
	return channel.DefaultConfig(p.Name, p.FreqGHz)
}

// RunNTPNTP transmits msg over the NTP+NTP channel on m.
func RunNTPNTP(m *Machine, cfg ChannelConfig, msg []bool) (ChannelReport, []bool) {
	return channel.RunNTPNTP(m, cfg, msg)
}

// RunPrimeProbe transmits msg over the Prime+Probe baseline channel.
func RunPrimeProbe(m *Machine, cfg ChannelConfig, msg []bool) (ChannelReport, []bool) {
	return channel.RunPrimeProbe(m, cfg, msg)
}

// RunNTPNTPLanes transmits msg over the multi-lane NTP+NTP extension:
// lanes two-set pipelines carry lanes bits per iteration.
func RunNTPNTPLanes(m *Machine, cfg ChannelConfig, lanes int, msg []bool) (ChannelReport, []bool) {
	return channel.RunNTPNTPLanes(m, cfg, lanes, msg)
}

// RunNTPNTPSelfSync transmits msg without a shared epoch: the receiver
// locks onto the sender's preamble and framing (cfg.Start is known only to
// the sender).
func RunNTPNTPSelfSync(m *Machine, cfg ChannelConfig, msg []bool) (ChannelReport, []bool) {
	return channel.RunNTPNTPSelfSync(m, cfg, msg)
}

// SweepNTPNTP measures NTP+NTP across transmission intervals.
func SweepNTPNTP(p Platform, cfg ChannelConfig, intervals []int64, bits int, seed int64) ChannelSweep {
	return channel.Sweep(p, channel.RunNTPNTP, cfg, intervals, bits, seed)
}

// SweepPrimeProbe measures Prime+Probe across transmission intervals.
func SweepPrimeProbe(p Platform, cfg ChannelConfig, intervals []int64, bits int, seed int64) ChannelSweep {
	return channel.Sweep(p, channel.RunPrimeProbe, cfg, intervals, bits, seed)
}

// Message helpers.
var (
	// BytesToBits expands bytes MSB-first.
	BytesToBits = channel.BytesToBits
	// BitsToBytes packs bits MSB-first.
	BitsToBytes = channel.BitsToBytes
	// EncodeRepetition repeats each bit k times.
	EncodeRepetition = channel.EncodeRepetition
	// DecodeRepetition majority-votes k-bit groups.
	DecodeRepetition = channel.DecodeRepetition
	// RandomMessage generates a deterministic pseudo-random bit string.
	RandomMessage = channel.RandomMessage
	// EncodeHamming74 and DecodeHamming74 are a single-error-correcting
	// code; Interleave/Deinterleave spread burst errors across codewords.
	EncodeHamming74 = channel.EncodeHamming74
	DecodeHamming74 = channel.DecodeHamming74
	Interleave      = channel.Interleave
	Deinterleave    = channel.Deinterleave
)

//
// Reliable transport (robustness extension).
//

// TransportConfig parameterizes one ARQ transfer over the self-sync
// channel: physical-layer parameters plus retransmission and adaptive
// recalibration policy.
type TransportConfig = channel.TransportConfig

// TransportReport summarizes one ARQ transfer (attempts, retransmissions,
// recalibrations, final coding/slot, goodput, residual errors).
type TransportReport = channel.TransportReport

// DefaultTransportConfig returns calibrated ARQ parameters for a platform.
func DefaultTransportConfig(p Platform) TransportConfig {
	return channel.DefaultTransportConfig(p.Name, p.FreqGHz)
}

// RunARQ transfers payload over the reliable ARQ transport: CRC-8-framed
// data bursts on a forward lane, ACK/NACK bursts on a set-disjoint reverse
// lane, bounded retransmission and raw → Hamming → slot-stretch
// degradation. It returns an error for invalid configurations; a completed
// transfer with rep.Delivered false means retries were exhausted.
func RunARQ(m *Machine, cfg TransportConfig, payload []bool) (TransportReport, []bool, error) {
	return channel.RunARQ(m, cfg, payload)
}

//
// Fault injection (robustness extension).
//

// FaultScenario is a composable disturbance injected into a machine before
// a run: see Preemption, Pollution, ClockDrift, TimerSpikes, Migration.
type FaultScenario = fault.Scenario

// FaultTarget names the victim agents and supplies the injection horizon
// and pollution working set.
type FaultTarget = fault.Target

// FaultLog records scheduled and fired injection events for assertions.
type FaultLog = fault.Log

// FaultEvent is one injection occurrence.
type FaultEvent = fault.Event

// Fault scenarios (each implements FaultScenario).
type (
	// Preemption deschedules an agent for random windows.
	Preemption = fault.Preemption
	// Pollution bursts walk a congruent working set, evicting the lane.
	Pollution = fault.Pollution
	// ClockDrift skews one party's TSC by PPM parts per million.
	ClockDrift = fault.ClockDrift
	// TimerSpikes inflates an agent's timer readings in windows.
	TimerSpikes = fault.TimerSpikes
	// Migration moves an agent to a different core mid-run.
	Migration = fault.Migration
)

// ComposeFaults combines scenarios into one deterministic composite: parts
// inject in a fixed order with independent derived seeds, so a composite is
// reproducible regardless of how it was assembled.
func ComposeFaults(parts ...FaultScenario) FaultScenario { return fault.Compose(parts...) }

//
// Side-channel attacks (Section V).
//

// ScopeVariant selects Prime+Scope or Prime+Prefetch+Scope.
type ScopeVariant = attack.ScopeVariant

// Scope variants.
const (
	PrimeScope         = attack.PrimeScope
	PrimePrefetchScope = attack.PrimePrefetchScope
)

// ScopeConfig parameterizes a scope attack run.
type ScopeConfig = attack.ScopeConfig

// ScopeResult reports preparation latencies and event coverage.
type ScopeResult = attack.ScopeResult

// RunScope mounts a scope attack against a periodic victim.
func RunScope(p Platform, v ScopeVariant, cfg ScopeConfig, seed int64) ScopeResult {
	return attack.RunScope(p, v, cfg, seed)
}

// RefreshVariant selects Reload+Refresh or one of the Prefetch+Refresh
// versions.
type RefreshVariant = attack.RefreshVariant

// Refresh variants.
const (
	ReloadRefresh     = attack.ReloadRefresh
	PrefetchRefreshV1 = attack.PrefetchRefreshV1
	PrefetchRefreshV2 = attack.PrefetchRefreshV2
)

// RefreshConfig parameterizes a refresh attack run.
type RefreshConfig = attack.RefreshConfig

// RefreshResult reports iteration latencies, revert costs and accuracy.
type RefreshResult = attack.RefreshResult

// RunRefresh mounts a refresh attack against a shared-memory victim.
func RunRefresh(p Platform, v RefreshVariant, cfg RefreshConfig, seed int64) RefreshResult {
	return attack.RunRefresh(p, v, cfg, seed)
}

// ClassicVariant selects Flush+Reload, Flush+Flush or Evict+Reload.
type ClassicVariant = attack.ClassicVariant

// Classic attack variants.
const (
	FlushReload = attack.FlushReload
	FlushFlush  = attack.FlushFlush
	EvictReload = attack.EvictReload
)

// ClassicConfig parameterizes the classic and coherence attacks.
type ClassicConfig = attack.ClassicConfig

// ClassicResult reports a classic attack run.
type ClassicResult = attack.ClassicResult

// CoherenceResult reports a coherence-state attack run.
type CoherenceResult = attack.CoherenceResult

// RunClassic mounts a classic shared-memory attack.
func RunClassic(p Platform, v ClassicVariant, cfg ClassicConfig, seed int64) ClassicResult {
	return attack.RunClassic(p, v, cfg, seed)
}

// RunCoherence mounts the coherence-state write-detection attack.
func RunCoherence(p Platform, cfg ClassicConfig, seed int64) CoherenceResult {
	return attack.RunCoherence(p, cfg, seed)
}

// KASLRConfig parameterizes the prefetch-timing KASLR break.
type KASLRConfig = attack.KASLRConfig

// KASLRResult reports the prefetch-timing KASLR break.
type KASLRResult = attack.KASLRResult

// RunKASLR maps a kernel image at a secret random slot and recovers the
// slot by timing prefetches of unmapped addresses (Section VI-C related
// work: the page-table walk depth leaks through prefetch latency).
func RunKASLR(p Platform, cfg KASLRConfig, seed int64) KASLRResult {
	return attack.RunKASLR(p, cfg, seed)
}

//
// Victim programs and end-to-end demonstrations.
//

// AESVictim is a T-table AES encryptor leaking its key through first-round
// lookups.
type AESVictim = victim.AESVictim

// AESObservation is one encryption's observed T-table line set.
type AESObservation = victim.Observation

// NewAESVictim allocates the shared T-table and returns the victim.
func NewAESVictim(as *AddressSpace, key [16]byte, window, start int64) (*AESVictim, error) {
	return victim.NewAESVictim(as, key, window, start)
}

// SpyTTable mounts a Flush+Reload monitor over the victim's T-table.
func SpyTTable(m *Machine, coreID int, as *AddressSpace, v *AESVictim, encryptions int) *[]AESObservation {
	return victim.SpyTTable(m, coreID, as, v, encryptions)
}

// RecoverHighNibbles runs the first-round elimination analysis on the
// observations, recovering the high nibble of every key byte.
func RecoverHighNibbles(obs []AESObservation) ([16]byte, error) {
	return victim.RecoverHighNibbles(obs)
}

// ExponentVictim is a square-and-multiply exponentiation leaking its secret
// exponent through its multiply routine's cache line.
type ExponentVictim = victim.ExponentVictim

// NewExponentVictim allocates the victim's multiply line.
func NewExponentVictim(as *AddressSpace, exponent []bool, window, start int64) (*ExponentVictim, error) {
	return victim.NewExponentVictim(as, exponent, window, start)
}

// SpyExponent recovers the exponent with Prime+Prefetch+Scope, one bit per
// square-and-multiply window.
func SpyExponent(m *Machine, coreID int, as *AddressSpace, v *ExponentVictim, vicAS *AddressSpace) *[]bool {
	return victim.SpyExponent(m, coreID, as, v, vicAS)
}

//
// Eviction-set construction (Section VI-A).
//

// EvsetOptions configures a construction run.
type EvsetOptions = evset.Options

// EvsetResult reports the found set and its cost.
type EvsetResult = evset.Result

// Eviction-set construction functions and helpers.
var (
	// BuildPrefetchEvset is the paper's Algorithm 2.
	BuildPrefetchEvset = evset.BuildPrefetch
	// BuildBaselineEvset is the access-based state of the art.
	BuildBaselineEvset = evset.BuildBaseline
	// BuildGroupTestingEvset is the threshold group-testing reduction of
	// Vila et al. (the paper's reference [62]).
	BuildGroupTestingEvset = evset.BuildGroupTesting
	// NewEvsetPool allocates a candidate pool for a target.
	NewEvsetPool = evset.NewPool
	// NewHugeEvsetPool allocates a physically contiguous pool whose
	// candidates share the target's set bits by construction.
	NewHugeEvsetPool = evset.NewHugePool
	// VerifyEvset counts truly congruent lines (diagnostic oracle).
	VerifyEvset = evset.Verify
)

//
// Experiments (every paper table and figure).
//

// EngineVersion identifies the simulation engine build. It is part of
// the daemon's result-cache key (bumping it invalidates every cached
// result) and is what the CLI -version flags and /v1/healthz report.
const EngineVersion = experiments.EngineVersion

// Experiment is one registered table/figure reproduction.
type Experiment = experiments.Experiment

// ExperimentResult carries an experiment's metrics.
type ExperimentResult = experiments.Result

// ExperimentContext carries run parameters for experiments.
type ExperimentContext = experiments.Context

// Experiments returns the registry in paper order.
func Experiments() []Experiment { return experiments.All() }

// NewExperimentContext returns a default context writing to out.
func NewExperimentContext(out io.Writer) *ExperimentContext {
	return experiments.NewContext(out)
}

// RunExperiment runs one experiment by ID ("fig8", "table2", ...).
func RunExperiment(ctx *ExperimentContext, id string) (*ExperimentResult, error) {
	return experiments.RunOne(ctx, id)
}

// RunAllExperiments runs the full suite.
func RunAllExperiments(ctx *ExperimentContext) (map[string]*ExperimentResult, error) {
	return experiments.RunAll(ctx)
}

//
// Declarative scenario templates (YAML/JSON experiment DSL).
//

// Scenario is one declarative scenario specification: platform geometry,
// channel/transport overrides, the experiment section matching its kind,
// and optional extractors with pass/fail assertions.
type Scenario = scenario.Spec

// ScenarioEvaluation is the post-run extractor/assertion outcome of a
// template; produce one with (*Scenario).Evaluate.
type ScenarioEvaluation = scenario.Evaluation

// LoadScenario parses and validates one template file. On any error no
// Scenario is returned — a template loads completely or not at all.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// LoadScenarios loads a template file, or every template in a directory
// (sorted by name).
func LoadScenarios(path string) ([]*Scenario, error) { return scenario.LoadPath(path) }

// ParseScenario parses and validates template bytes; filename selects the
// format (.json = JSON, else YAML) and prefixes every error.
func ParseScenario(data []byte, filename string) (*Scenario, error) {
	return scenario.Parse(data, filename)
}

// MarshalScenario renders a Scenario in the canonical template form —
// byte-stable, and Parse(Marshal(s)) reproduces s exactly. It is an alias
// of ScenarioCanonicalBytes; both the CLI and leakywayd marshal through
// this one path, so cache keys computed anywhere agree.
func MarshalScenario(s *Scenario) []byte { return scenario.CanonicalBytes(s) }

// ScenarioCanonicalBytes returns the canonical byte encoding of a
// validated Scenario — the bytes every cache-key digest is computed over.
func ScenarioCanonicalBytes(s *Scenario) []byte { return scenario.CanonicalBytes(s) }

// ScenarioFingerprint returns the scenario's content digest
// ("sha256:<hex>" over the canonical bytes): equal exactly when two
// templates parse to the same Scenario. leakywayd folds it, with seed,
// jobs and engine version, into its result-cache key.
func ScenarioFingerprint(s *Scenario) string { return scenario.Fingerprint(s) }

// RunScenarios executes scenarios through the standard experiment engine:
// same worker pool, seed derivation and report flush order, so a template
// sharing an ID with a registered experiment reproduces its output
// byte-identically for any job count.
func RunScenarios(ctx *ExperimentContext, specs []*Scenario) (map[string]*ExperimentResult, error) {
	return experiments.RunSpecs(ctx, specs)
}

// BuiltinScenarios returns the Spec literals behind the shipped templates/
// pack (fig6, fig7, fig8, faults, ablate-lanes, noise).
func BuiltinScenarios() []*Scenario { return experiments.BuiltinSpecs() }

//
// Cycle-level tracing (observability).
//

// TraceEvent is one structured simulator event: the virtual timestamp, the
// emitting subsystem and event kind, plus whichever dimensions apply
// (agent, core, cache coordinates, latency, duration).
type TraceEvent = trace.Event

// TraceMask selects which subsystems a tracer records.
type TraceMask = trace.Mask

// Trace subsystem masks.
const (
	// TraceHier records cache-hierarchy events (hit/miss/fill/evict/…).
	TraceHier = trace.PkgHier
	// TraceSim records scheduler events (spawn/wait/timed ops/faults).
	TraceSim = trace.PkgSim
	// TraceFault records fault-injection firings.
	TraceFault = trace.PkgFault
	// TraceChannel records channel protocol events (tx/rx bits, frames).
	TraceChannel = trace.PkgChannel
	// TraceAllPkgs records everything.
	TraceAllPkgs = trace.PkgAll
)

// ParseTraceMask parses a comma-separated subsystem list ("channel,sim");
// the empty string means all subsystems.
func ParseTraceMask(s string) (TraceMask, error) { return trace.ParseMask(s) }

// TraceBuffer is one machine's ordered event stream.
type TraceBuffer = trace.Buffer

// TraceCollector gathers the streams of every traced machine in a run.
// Set ExperimentContext.Trace to one before running; stream labels derive
// from experiment/platform/point names, so exports are byte-identical for
// any job count.
type TraceCollector = trace.Collector

// NewTraceCollector returns an empty collector.
func NewTraceCollector() *TraceCollector { return trace.NewCollector() }

// WriteChromeTrace exports buffers as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing: one track per agent and
// per-level counter tracks per stream.
func WriteChromeTrace(w io.Writer, bufs []*TraceBuffer) error {
	return trace.WriteChromeTrace(w, bufs)
}

// WriteTraceJSONL exports buffers as compact JSONL: a stream-header line
// followed by one object per event.
func WriteTraceJSONL(w io.Writer, bufs []*TraceBuffer) error {
	return trace.WriteJSONL(w, bufs)
}

// TraceLaneDiag is a channel-diagnostics report for one traced stream:
// per-slot latency populations, the eye margin between them, and each bit
// error attributed to the fault window overlapping it.
type TraceLaneDiag = trace.LaneDiag

// DiagnoseTrace builds channel diagnostics from collected trace buffers
// (streams without received bits are skipped).
func DiagnoseTrace(bufs []*TraceBuffer) []TraceLaneDiag { return trace.Diagnose(bufs) }

// RenderTraceDiagnostics renders diagnostics as text, listing at most
// maxErrs bit errors per lane.
func RenderTraceDiagnostics(diags []TraceLaneDiag, maxErrs int) string {
	return trace.Render(diags, maxErrs)
}

// SplitSeed derives an independent child seed from a master seed and a key
// path. Every parallel unit of work (experiment, platform, trial shard)
// seeds its RNG this way, which is what makes results independent of
// scheduling order and worker count.
func SplitSeed(master int64, parts ...string) int64 {
	return experiments.SplitSeed(master, parts...)
}

// ExperimentMetrics flattens results into experiment → metric → value.
func ExperimentMetrics(results map[string]*ExperimentResult) map[string]map[string]float64 {
	return experiments.MetricsMap(results)
}

// WriteExperimentMetricsJSON writes results as indented JSON with sorted,
// stable keys — the machine-readable companion to the rendered report.
func WriteExperimentMetricsJSON(w io.Writer, results map[string]*ExperimentResult) error {
	return experiments.WriteMetricsJSON(w, results)
}
