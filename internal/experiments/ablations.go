package experiments

import (
	"fmt"

	"leakyway/internal/channel"
	"leakyway/internal/policy"
	"leakyway/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "ablate-sets",
		Title: "Ablation — one-set vs two-set NTP+NTP (Section IV-B2)",
		Paper: "a single set must space out the prefetches around the in-flight window; two sets pipeline it away",
		Run:   runAblateSets,
	})
	register(Experiment{
		ID:    "ablate-hwpf",
		Title: "Ablation — hardware prefetchers enabled during the attack",
		Paper: "the attack strides whole LLC periods, so the page-local prefetchers never engage (Section III methodology note)",
		Run:   runAblateHWPF,
	})
	register(Experiment{
		ID:    "ablate-policy",
		Title: "Ablation — NTP+NTP against hardened LLC insertion policies (Section VI-D)",
		Paper: "inserting loads at age 1 and NTA at age 2 removes the guaranteed candidate; the channel stops working reliably",
		Run:   runAblatePolicy,
	})
}

func runAblateSets(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	bits := ctx.Trials(1500)
	base := channel.DefaultConfig(cfg.Name, cfg.FreqGHz)
	base.NoisePeriod = 0

	rows := [][]string{}
	type variant struct {
		name    string
		sets    int
		recvOff int64
	}
	variants := []variant{
		{"two sets, pipelined (Figure 7)", 2, 450},
		{"one set, spaced receiver (offset 600)", 1, 600},
		{"one set, receiver inside the in-flight window (offset 60)", 1, 60},
	}
	// Flatten the variant × interval grid: every cell is an independent
	// transmission on its own machine, sharded across free workers.
	intervals := []int64{1200, 1300, 1500, 1800, 2200}
	reps := make([]channel.Report, len(variants)*len(intervals))
	ctx.Parallel(len(reps), func(cell int) {
		v := variants[cell/len(intervals)]
		seed := ctx.ShardSeed(cell)
		m := sim.MustNewMachine(cfg, 1<<30, seed)
		c := base
		c.Sets = v.sets
		c.ReceiverOffset = v.recvOff
		c.Interval = intervals[cell%len(intervals)]
		reps[cell], _ = channel.RunNTPNTP(m, c, channel.RandomMessage(bits, seed))
	})
	var caps []float64
	for vi, v := range variants {
		best := -1.0
		var bestRep channel.Report
		for ii := range intervals {
			rep := reps[vi*len(intervals)+ii]
			if rep.CapacityKBps > best {
				best = rep.CapacityKBps
				bestRep = rep
			}
		}
		caps = append(caps, best)
		rows = append(rows, []string{v.name,
			fmt.Sprintf("%.1f KB/s", best),
			fmt.Sprintf("%.2f%% at %d cyc", 100*bestRep.BER, bestRep.Interval)})
	}
	renderTable(ctx, []string{"configuration", "peak capacity", "BER at peak"}, rows)
	res.Metric("two_set_peak", caps[0])
	res.Metric("one_set_spaced_peak", caps[1])
	res.Metric("one_set_inflight_peak", caps[2])
	return res, nil
}

func runAblateHWPF(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	bits := ctx.Trials(1500)
	rows := [][]string{}
	modes := []bool{false, true}
	reps := make([]channel.Report, len(modes))
	ctx.Parallel(len(modes), func(i int) {
		p := cfg
		p.HWPrefetch.AdjacentLine = modes[i]
		p.HWPrefetch.Stream = modes[i]
		base := channel.DefaultConfig(p.Name, p.FreqGHz)
		base.NoisePeriod = 0
		base.Interval = 1500
		seed := ctx.ShardSeed(i)
		m := sim.MustNewMachine(p, 1<<30, seed)
		reps[i], _ = channel.RunNTPNTP(m, base, channel.RandomMessage(bits, seed))
	})
	for i, hw := range modes {
		rep := reps[i]
		label := "disabled"
		key := "off"
		if hw {
			label = "adjacent-line + stream enabled"
			key = "on"
		}
		rows = append(rows, []string{label, fmt.Sprintf("%.2f%%", 100*rep.BER), fmt.Sprintf("%.1f KB/s", rep.CapacityKBps)})
		res.Metric("hwpf_"+key+"_ber", rep.BER)
		res.Metric("hwpf_"+key+"_capacity", rep.CapacityKBps)
	}
	renderTable(ctx, []string{"hardware prefetchers", "BER", "capacity"}, rows)
	return res, nil
}

func runAblatePolicy(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	bits := ctx.Trials(1500)
	rows := [][]string{}
	policies := []struct {
		name string
		pol  policy.Policy
		key  string
	}{
		{"stock Intel quad-age (load=2, NTA=3)", policy.NewQuadAge(), "stock"},
		{"countermeasure (load=1, NTA=2)", policy.NewQuadAgeCountermeasure(), "countermeasure"},
		{"SRRIP-HP", policy.NewSRRIP(), "srrip"},
	}
	reps := make([]channel.Report, len(policies))
	ctx.Parallel(len(policies), func(i int) {
		p := cfg
		p.LLCPolicy = policies[i].pol
		base := channel.DefaultConfig(p.Name, p.FreqGHz)
		base.NoisePeriod = 0
		base.Interval = 1500
		seed := ctx.SeedFor(policies[i].key)
		m := sim.MustNewMachine(p, 1<<30, seed)
		reps[i], _ = channel.RunNTPNTP(m, base, channel.RandomMessage(bits, seed))
	})
	for i, pc := range policies {
		rep := reps[i]
		rows = append(rows, []string{pc.name, fmt.Sprintf("%.2f%%", 100*rep.BER), fmt.Sprintf("%.1f KB/s", rep.CapacityKBps)})
		res.Metric(pc.key+"_ber", rep.BER)
		res.Metric(pc.key+"_capacity", rep.CapacityKBps)
	}
	renderTable(ctx, []string{"LLC policy", "BER", "capacity"}, rows)
	ctx.Printf("the hardened insertion ages break the one-way-competition primitive, as Section VI-D predicts\n")
	return res, nil
}
