package policy

import "math/bits"

// TreePLRU is the classic binary-tree pseudo-LRU used by Intel L1 data
// caches: a complete binary tree of direction bits over the ways; a hit
// points every node on the way's root path away from it, and the victim is
// found by following the direction bits from the root.
//
// The way count must be a power of two.
type TreePLRU struct{}

// NewTreePLRU returns the policy.
func NewTreePLRU() *TreePLRU { return &TreePLRU{} }

// Name implements Policy.
func (*TreePLRU) Name() string { return "tree-plru" }

// NewSet implements Policy.
func (*TreePLRU) NewSet(ways int) SetState {
	if ways <= 0 || bits.OnesCount(uint(ways)) != 1 {
		panic("policy: TreePLRU requires a power-of-two way count")
	}
	return &treePLRUSet{
		ways: ways,
		node: make([]bool, ways-1), // false = left subtree is colder
	}
}

type treePLRUSet struct {
	ways int
	node []bool // heap-ordered internal nodes; node[0] is the root
}

// touch points the root path of way away from it, marking it most recent.
func (s *treePLRUSet) touch(way int) {
	// Walk from the root: at each node, descend toward the way and set
	// the node to point to the *other* side.
	idx := 0
	lo, hi := 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		goRight := way >= mid
		s.node[idx] = !goRight // point away from the accessed side
		if goRight {
			idx = 2*idx + 2
			lo = mid
		} else {
			idx = 2*idx + 1
			hi = mid
		}
	}
}

// victimLeaf follows the direction bits to the PLRU leaf without mutating
// any state.
func (s *treePLRUSet) victimLeaf() int {
	idx := 0
	lo, hi := 0, s.ways
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s.node[idx] { // true = right subtree is colder
			idx = 2*idx + 2
			lo = mid
		} else {
			idx = 2*idx + 1
			hi = mid
		}
	}
	return lo
}

// Victim follows the direction bits to the PLRU leaf. If that leaf is not
// evictable it falls back to the first evictable way — hardware stalls
// instead, but the distinction never matters at the private levels where
// this policy is used.
func (s *treePLRUSet) Victim(evictable Mask) int {
	if leaf := s.victimLeaf(); evictable.Has(leaf) {
		return leaf
	}
	for way := 0; way < s.ways; way++ {
		if evictable.Has(way) {
			return way
		}
	}
	return -1
}

// OnFill implements SetState.
func (s *treePLRUSet) OnFill(way int, _ AccessClass) { s.touch(way) }

// OnHit implements SetState.
func (s *treePLRUSet) OnHit(way int, _ AccessClass) { s.touch(way) }

// OnInvalidate implements SetState. Tree-PLRU keeps no per-way validity, so
// nothing to clear; the cache prefers invalid ways before asking for a
// victim.
func (s *treePLRUSet) OnInvalidate(int) {}

// Reset implements SetState.
func (s *treePLRUSet) Reset() {
	for i := range s.node {
		s.node[i] = false
	}
}

// AgeAt implements SetState: 1 for the victim-path leaf, 0 elsewhere.
func (s *treePLRUSet) AgeAt(way int) int {
	if s.victimLeaf() == way {
		return 1
	}
	return 0
}

// Snapshot implements SetState. Tree-PLRU has no per-way rank; report the
// victim-path leaf as 1 and everything else as 0 so traces show the
// candidate.
func (s *treePLRUSet) Snapshot() []int {
	out := make([]int, s.ways)
	out[s.victimLeaf()] = 1
	return out
}
