package experiments

import (
	"fmt"

	"leakyway/internal/attack"
	"leakyway/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "classic",
		Title: "Extension — the classic shared-memory attacks as baselines",
		Paper: "Section II-C background: Flush+Reload, Flush+Flush (stealthy), Evict+Reload (no CLFLUSH, much slower reset)",
		Run:   runClassic,
	})
}

func runClassic(ctx *Context) (*Result, error) {
	res := &Result{}
	iters := ctx.Trials(1000)
	cfg := ctx.Platforms[0]
	rows := [][]string{}
	for _, v := range []attack.ClassicVariant{attack.FlushReload, attack.FlushFlush, attack.EvictReload} {
		r := attack.RunClassic(cfg, v, attack.ClassicConfig{Iterations: iters}, ctx.Seed)
		mean := stats.Mean(r.IterLatencies)
		rows = append(rows, []string{
			v.String(),
			fmt.Sprintf("%.0f", mean),
			fmt.Sprintf("%.1f%%", 100*r.Accuracy),
			fmt.Sprintf("%d", r.TargetAccesses),
		})
		key := map[attack.ClassicVariant]string{
			attack.FlushReload: "flush_reload", attack.FlushFlush: "flush_flush", attack.EvictReload: "evict_reload",
		}[v]
		res.Metric(key+"_mean", mean)
		res.Metric(key+"_accuracy", r.Accuracy)
		res.Metric(key+"_target_accesses", float64(r.TargetAccesses))
	}
	// The coherence-state channel (reference [67]) detects *writes* from
	// pure load timing: no flushes, no evictions.
	coh := attack.RunCoherence(cfg, attack.ClassicConfig{Iterations: iters}, ctx.Seed)
	rows = append(rows, []string{
		"Coherence (write detect)",
		fmt.Sprintf("%.0f", stats.Mean(coh.IterLatencies)),
		fmt.Sprintf("%.1f%%", 100*coh.Accuracy),
		fmt.Sprintf("%d", iters),
	})
	res.Metric("coherence_mean", stats.Mean(coh.IterLatencies))
	res.Metric("coherence_accuracy", coh.Accuracy)
	renderTable(ctx, []string{"attack", "iteration mean (cyc)", "accuracy", "demand accesses to shared line"}, rows)
	ctx.Printf("Flush+Flush never touches the shared line (stealth); Evict+Reload pays the conflict-based\n")
	ctx.Printf("reset the paper's prefetch tricks avoid; the coherence channel sees writes without a single flush\n")
	return res, nil
}
