package hier

import (
	"testing"

	"leakyway/internal/mem"
)

func TestAdjacentLinePrefetcher(t *testing.T) {
	cfg := testConfig()
	cfg.HWPrefetch.AdjacentLine = true
	h := MustNew(cfg)
	pa := mem.PAddr(0x4000) // even line: buddy is +64
	h.Load(0, pa, 0)
	buddy := mem.PAddr(0x4040)
	if !h.Present(LevelLLC, buddy) {
		t.Fatal("adjacent-line prefetcher did not pull the buddy line")
	}
	if !h.PresentInCore(LevelL2, 0, buddy) {
		t.Fatal("buddy line should be staged in L2")
	}
	if h.PresentInCore(LevelL1, 0, buddy) {
		t.Fatal("hardware prefetches must not fill L1")
	}
}

func TestStreamPrefetcher(t *testing.T) {
	cfg := testConfig()
	cfg.HWPrefetch.Stream = true
	cfg.HWPrefetch.StreamDepth = 2
	h := MustNew(cfg)
	base := mem.PAddr(0x10000)
	// Three ascending accesses confirm a stream.
	for i := 0; i < 3; i++ {
		h.Load(0, base+mem.PAddr(i*64), int64(i*1000))
	}
	ahead := base + mem.PAddr(4*64)
	if !h.Present(LevelLLC, ahead) {
		t.Fatal("stream prefetcher did not run ahead")
	}
}

func TestStreamPrefetcherStaysInPage(t *testing.T) {
	cfg := testConfig()
	cfg.HWPrefetch.Stream = true
	cfg.HWPrefetch.StreamDepth = 4
	h := MustNew(cfg)
	// Approach the end of a page.
	base := mem.PAddr(0x10000 + mem.PageSize - 3*64)
	for i := 0; i < 3; i++ {
		h.Load(0, base+mem.PAddr(i*64), int64(i*1000))
	}
	nextPage := mem.PAddr(0x10000 + mem.PageSize)
	if h.Present(LevelLLC, nextPage) {
		t.Fatal("stream prefetcher crossed a page boundary")
	}
}

func TestEvictionSetStrideDoesNotTriggerStream(t *testing.T) {
	// Attack loops stride by whole LLC periods; the page-local stream
	// detector must stay quiet — this is why the paper can leave the
	// prefetchers on during attacks.
	cfg := testConfig()
	cfg.HWPrefetch.Stream = true
	cfg.HWPrefetch.AdjacentLine = false
	h := MustNew(cfg)
	stride := mem.PAddr(cfg.LLCSetsPerSlice * 64)
	base := mem.PAddr(0x4040)
	for i := 0; i < 8; i++ {
		h.Load(0, base+mem.PAddr(i)*stride, int64(i*1000))
	}
	st := h.LLCStats()
	if got := int(st.Fills); got != 8 {
		t.Fatalf("LLC fills = %d, want exactly the 8 demand fills (no prefetches)", got)
	}
}

func TestPrefetchersDisabledByDefault(t *testing.T) {
	h := MustNew(testConfig())
	h.Load(0, 0x4000, 0)
	if h.Present(LevelLLC, 0x4040) {
		t.Fatal("buddy line cached although prefetchers are disabled")
	}
}
