package evset

import (
	"testing"

	"leakyway/internal/core"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

func TestGroupTestingReducesToCongruentSet(t *testing.T) {
	m := smallMachine(21)
	as := m.NewSpace()
	var res Result
	var err error
	var target mem.VAddr
	m.Spawn("attacker", 0, as, func(c *sim.Core) {
		target = c.Alloc(mem.PageSize)
		th := core.Calibrate(c, 32)
		pool := NewPool(c, target, 768)
		res, err = BuildGroupTesting(c, target, Options{Desired: 8, Pool: pool, Thresholds: th})
	})
	m.Run()
	if err != nil {
		t.Fatalf("group testing failed: %v (set size %d)", err, len(res.Set))
	}
	if len(res.Set) > 8 {
		t.Fatalf("reduced set has %d lines, want <=8 on this all-congruent geometry", len(res.Set))
	}
	// Every surviving line should be truly congruent.
	ok := Verify(m, as, target, res.Set)
	if ok < len(res.Set)-1 {
		t.Fatalf("only %d/%d survivors are congruent", ok, len(res.Set))
	}
	if res.MemRefs <= 0 || res.Cycles <= 0 {
		t.Fatalf("bogus accounting: %+v", res)
	}
}

func TestGroupTestingSupersetOnSparseGeometry(t *testing.T) {
	// With unknown set bits the quad-age reduction stalls on a small
	// superset that must still contain the whole minimal set.
	m := mediumMachine(25)
	as := m.NewSpace()
	var res Result
	var err error
	var target mem.VAddr
	m.Spawn("attacker", 0, as, func(c *sim.Core) {
		target = c.Alloc(mem.PageSize)
		th := core.Calibrate(c, 32)
		pool := NewPool(c, target, 512) // ~32 congruent at 1/16 density
		res, err = BuildGroupTesting(c, target, Options{Desired: 8, Pool: pool, Thresholds: th})
	})
	m.Run()
	if err != nil {
		t.Fatalf("group testing failed: %v (size %d)", err, len(res.Set))
	}
	if len(res.Set) >= 512 {
		t.Fatalf("no reduction happened: %d lines", len(res.Set))
	}
	if cong := Verify(m, as, target, res.Set); cong < 8 {
		t.Fatalf("superset holds only %d congruent lines; an 8-way eviction set needs 8", cong)
	}
}

func TestGroupTestingPoolTooSmall(t *testing.T) {
	// A machine whose LLC set index extends beyond the page offset, so
	// same-offset candidates are congruent only 1/16 of the time: a
	// 32-page pool holds ~2 congruent lines and cannot evict the target.
	m := mediumMachine(22)
	as := m.NewSpace()
	var err error
	m.Spawn("attacker", 0, as, func(c *sim.Core) {
		target := c.Alloc(mem.PageSize)
		th := core.Calibrate(c, 32)
		pool := NewPool(c, target, 32)
		_, err = BuildGroupTesting(c, target, Options{Desired: 8, Pool: pool, Thresholds: th})
	})
	m.Run()
	if err == nil {
		t.Fatal("expected failure with an undersized pool")
	}
}

// mediumMachine has a 1-slice, 1024-set, 8-way LLC: 4 set-index bits above
// the page offset.
func mediumMachine(seed int64) *sim.Machine {
	cfg := platformConfigForTests()
	cfg.LLCSlices = 1
	cfg.LLCSetsPerSlice = 1024
	cfg.LLCWays = 8
	return sim.MustNewMachine(cfg, 1<<28, seed)
}

func TestGroupTestingValidation(t *testing.T) {
	m := smallMachine(23)
	var err error
	m.Spawn("attacker", 0, nil, func(c *sim.Core) {
		target := c.Alloc(mem.PageSize)
		_, err = BuildGroupTesting(c, target, Options{Desired: 0})
	})
	m.Run()
	if err == nil {
		t.Fatal("Desired=0 accepted")
	}
}
