package scenario

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestParseJSON: the same schema loads from JSON, producing a Spec deeply
// equal to its YAML rendering.
func TestParseJSON(t *testing.T) {
	jsonDoc := `{
  "id": "demo",
  "title": "Demo scenario",
  "kind": "sweep",
  "channel": {"noise_period": 0},
  "sweep": {
    "bits": 10,
    "channels": [{"channel": "ntpntp", "intervals": [2000, 4000]}]
  },
  "assert": [{"metric": "skylake/ntpntp_peak_kbps", "op": "gt", "value": 0}]
}`
	fromJSON, err := Parse([]byte(jsonDoc), "demo.json")
	if err != nil {
		t.Fatal(err)
	}
	fromYAML, err := Parse(Marshal(fromJSON), "demo.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSON, fromYAML) {
		t.Fatalf("JSON and YAML loads differ:\njson: %#v\nyaml: %#v", fromJSON, fromYAML)
	}
	if fromJSON.Channel == nil || fromJSON.Channel.NoisePeriod == nil || *fromJSON.Channel.NoisePeriod != 0 {
		t.Fatalf("explicit noise_period: 0 lost: %#v", fromJSON.Channel)
	}
}

func TestParseJSONErrors(t *testing.T) {
	for _, tc := range []struct{ name, doc, want string }{
		{"syntax", `{"id":`, "demo.json"},
		{"trailing data", `{"id": "x"} {"id": "y"}`, "trailing data"},
		{"unknown field", `{"id": "x", "title": "T", "kind": "pipeline", "pipeline": {"message": "1"}, "bogus": 1}`, "bogus: unknown field"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := Parse([]byte(tc.doc), "demo.json")
			if err == nil {
				t.Fatalf("accepted %q", tc.doc)
			}
			if spec != nil {
				t.Fatal("error with non-nil spec")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error lacks %q: %v", tc.want, err)
			}
		})
	}
}

// TestLoadPath covers the directory pack loader: sorted order, extension
// filtering, duplicate-ID rejection and the empty-directory error.
func TestLoadPath(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "b.yaml", "id: bb\ntitle: B\nkind: pipeline\npipeline:\n  message: \"1\"\n")
	write(t, dir, "a.yml", "id: aa\ntitle: A\nkind: pipeline\npipeline:\n  message: \"0\"\n")
	write(t, dir, "c.json", `{"id": "cc", "title": "C", "kind": "pipeline", "pipeline": {"message": "1"}}`)
	write(t, dir, "ignored.txt", "not a template")
	write(t, dir, "README.md", "# docs")

	specs, err := LoadPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, s := range specs {
		ids = append(ids, s.ID)
	}
	if want := []string{"aa", "bb", "cc"}; !reflect.DeepEqual(ids, want) {
		t.Fatalf("loaded %v, want %v (sorted by file name)", ids, want)
	}

	// A single file loads directly.
	one, err := LoadPath(filepath.Join(dir, "b.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].ID != "bb" {
		t.Fatalf("single-file load: %v", one)
	}
}

func TestLoadPathDuplicateID(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "one.yaml", "id: same\ntitle: A\nkind: pipeline\npipeline:\n  message: \"1\"\n")
	write(t, dir, "two.yaml", "id: same\ntitle: B\nkind: pipeline\npipeline:\n  message: \"0\"\n")
	_, err := LoadPath(dir)
	if err == nil {
		t.Fatal("duplicate scenario id accepted")
	}
	for _, want := range []string{"duplicate scenario id", "one.yaml", "two.yaml"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error lacks %q: %v", want, err)
		}
	}
}

func TestLoadPathEmptyDir(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "notes.txt", "no templates here")
	if _, err := LoadPath(dir); err == nil || !strings.Contains(err.Error(), "no templates") {
		t.Fatalf("empty directory: %v", err)
	}
}

func TestLoadPathMissing(t *testing.T) {
	if _, err := LoadPath(filepath.Join(t.TempDir(), "nope.yaml")); err == nil {
		t.Fatal("missing path accepted")
	}
}

// TestLoadErrorNamesFile: a malformed template loaded from disk reports
// its own path, not a generic message.
func TestLoadErrorNamesFile(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "broken.yaml", "id: x\ntitle: T\nkind: warp\n")
	_, err := Load(path)
	if err == nil {
		t.Fatal("malformed template accepted")
	}
	if !strings.Contains(err.Error(), path) {
		t.Errorf("error does not name %s: %v", path, err)
	}
}
