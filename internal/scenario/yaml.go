package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// A hand-rolled parser for the YAML subset templates use: block mappings
// and sequences nested by two-space indentation, flow lists of scalars,
// quoted and plain scalars, comments. No anchors, no multi-document
// streams, no multi-line scalars — the point is a dependency-free,
// strict, line-diagnosable format, not full YAML. Every error carries
// file:line context.
//
// Scalars type as: null/~ → nil, true/false → bool, integers → int64,
// floats → float64, everything else → string (quote strings that would
// otherwise parse as another type).

type yamlLine struct {
	indent int
	no     int
	text   string
}

type yamlParser struct {
	file  string
	lines []yamlLine
	pos   int
}

func parseYAML(data []byte, file string) (v any, err error) {
	p := &yamlParser{file: file}
	if err := p.split(string(data)); err != nil {
		return nil, err
	}
	if len(p.lines) == 0 {
		return nil, fmt.Errorf("%s: empty document", file)
	}
	root, err := p.parseBlock(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("%s:%d: unexpected indentation (indent %d after a block at indent %d)",
			file, l.no, l.indent, p.lines[0].indent)
	}
	return root, nil
}

// split breaks the document into significant lines, dropping blanks and
// comment-only lines and rejecting constructs outside the subset.
func (p *yamlParser) split(s string) error {
	for no, raw := range strings.Split(s, "\n") {
		line := strings.TrimRight(raw, " \r")
		trimmed := strings.TrimLeft(line, " ")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indent := len(line) - len(trimmed)
		if strings.HasPrefix(trimmed, "\t") {
			return fmt.Errorf("%s:%d: tab in indentation (use spaces)", p.file, no+1)
		}
		if trimmed == "---" || strings.HasPrefix(trimmed, "--- ") {
			return fmt.Errorf("%s:%d: multi-document streams are not supported", p.file, no+1)
		}
		p.lines = append(p.lines, yamlLine{indent: indent, no: no + 1, text: trimmed})
	}
	return nil
}

// parseBlock parses the mapping or sequence whose entries sit at exactly
// the given indent, consuming lines until the indentation drops.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	l := p.lines[p.pos]
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("%s:%d: unexpected indentation (expected a key at indent %d)", p.file, l.no, indent)
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("%s:%d: sequence item in a mapping block", p.file, l.no)
		}
		key, rest, err := p.splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("%s:%d: duplicate key %q", p.file, l.no, key)
		}
		p.pos++
		if rest != "" {
			v, err := p.parseScalar(rest, l.no)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// Empty value: a nested block if the next line is deeper, null
		// otherwise.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
		} else {
			m[key] = nil
		}
	}
	return m, nil
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	seq := []any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("%s:%d: unexpected indentation (expected a \"- \" item at indent %d)", p.file, l.no, indent)
		}
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			break
		}
		if l.text == "-" {
			// Item body is the nested block on the following lines.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				seq = append(seq, nil)
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		item := strings.TrimLeft(l.text[2:], " ")
		pad := len(l.text) - len(item)
		if isInlineMapStart(item) {
			// "- key: value": rewrite the line as the mapping's first
			// entry (at the key's real column) and parse the mapping.
			p.lines[p.pos] = yamlLine{indent: l.indent + pad, no: l.no, text: item}
			v, err := p.parseMapping(l.indent + pad)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		p.pos++
		v, err := p.parseScalar(item, l.no)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
	return seq, nil
}

// keyRe matches the simple keys the schema uses.
func isSimpleKey(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !(r == '_' || r == '-' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
			return false
		}
	}
	return true
}

func isInlineMapStart(item string) bool {
	i := strings.IndexByte(item, ':')
	if i <= 0 {
		return false
	}
	if i+1 < len(item) && item[i+1] != ' ' {
		return false
	}
	return isSimpleKey(item[:i])
}

func (p *yamlParser) splitKey(l yamlLine) (key, rest string, err error) {
	i := strings.IndexByte(l.text, ':')
	if i <= 0 {
		return "", "", fmt.Errorf("%s:%d: expected \"key: value\", got %q", p.file, l.no, l.text)
	}
	key = l.text[:i]
	if !isSimpleKey(key) {
		return "", "", fmt.Errorf("%s:%d: invalid key %q (keys are [A-Za-z0-9_-]+)", p.file, l.no, key)
	}
	rest = strings.TrimLeft(l.text[i+1:], " ")
	if rest != "" && l.text[i+1] != ' ' {
		return "", "", fmt.Errorf("%s:%d: missing space after %q:", p.file, l.no, key)
	}
	return key, stripComment(rest), nil
}

// stripComment removes a trailing " #..." comment outside quotes.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\'' && !inDouble:
			inSingle = !inSingle
		case s[i] == '"' && !inSingle:
			if i == 0 || s[i-1] != '\\' || !inDouble {
				inDouble = !inDouble
			}
		case s[i] == '#' && !inSingle && !inDouble && i > 0 && s[i-1] == ' ':
			return strings.TrimRight(s[:i], " ")
		}
	}
	return s
}

func (p *yamlParser) parseScalar(s string, no int) (any, error) {
	s = stripComment(s)
	if s == "" {
		return nil, nil
	}
	// Flow sequence of scalars.
	if s[0] == '[' {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("%s:%d: unterminated flow sequence %q", p.file, no, s)
		}
		body := strings.TrimSpace(s[1 : len(s)-1])
		if body == "" {
			return []any{}, nil
		}
		if strings.ContainsAny(body, "[]{}") {
			return nil, fmt.Errorf("%s:%d: nested flow collections are not supported", p.file, no)
		}
		var out []any
		for _, part := range strings.Split(body, ",") {
			v, err := p.parseScalar(strings.TrimSpace(part), no)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	switch s[0] {
	case '{', '&', '*', '|', '>', '%', '@', '`', ',', ']', '}':
		return nil, fmt.Errorf("%s:%d: unsupported YAML construct %q", p.file, no, s)
	case '"':
		u, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad quoted string %s: %v", p.file, no, s, err)
		}
		return u, nil
	case '\'':
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, fmt.Errorf("%s:%d: unterminated single-quoted string %s", p.file, no, s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	switch s {
	case "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if looksNumeric(s) {
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return i, nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f, nil
		}
		return nil, fmt.Errorf("%s:%d: malformed number %q", p.file, no, s)
	}
	return s, nil
}

// looksNumeric reports whether a plain scalar should be parsed as a
// number (so "3fa" stays a string but "3e4" is a float).
func looksNumeric(s string) bool {
	t := strings.TrimLeft(s, "+-")
	if t == "" {
		return false
	}
	if t[0] < '0' || t[0] > '9' {
		if t[0] != '.' || len(t) < 2 || t[1] < '0' || t[1] > '9' {
			return false
		}
	}
	for _, r := range t {
		switch {
		case r >= '0' && r <= '9', r == '.', r == 'e', r == 'E', r == '+', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}
