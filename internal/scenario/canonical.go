package scenario

import (
	"crypto/sha256"
	"encoding/hex"
)

// CanonicalBytes returns THE canonical byte encoding of a validated Spec:
// the deterministic template marshalling (fields in schema order, absent
// sections omitted, byte-stable across runs and Go versions). It is the
// single marshal path shared by the CLI (`leakyway -template`) and the
// daemon (`leakywayd`), so a cache key computed on either side of the
// wire is computed over identical bytes — any format the template arrived
// in (YAML or JSON, any field order, any whitespace) canonicalizes to the
// same encoding after Parse.
func CanonicalBytes(s *Spec) []byte { return Marshal(s) }

// Fingerprint returns the scenario's content digest, "sha256:<hex>" over
// CanonicalBytes. Two templates have equal fingerprints exactly when they
// parse to the same Spec; the daemon folds this digest (with seed, jobs
// and engine version) into its result-cache key, and `leakyway -template
// validate` prints it so submissions can be correlated with cache entries.
func Fingerprint(s *Spec) string {
	sum := sha256.Sum256(CanonicalBytes(s))
	return "sha256:" + hex.EncodeToString(sum[:])
}
