package fault

import (
	"reflect"
	"testing"

	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

func testConfig() hier.Config {
	return hier.Config{
		Name: "fault-test", Cores: 4, FreqGHz: 1,
		L1Sets: 8, L1Ways: 4,
		L2Sets: 16, L2Ways: 4,
		LLCSlices: 1, LLCSetsPerSlice: 32, LLCWays: 8,
		Lat: hier.DefaultLatency(),
	}
}

const testHorizon = 400_000

// harness builds a machine with a sender/receiver pair that spin and
// measure until the horizon, so every kind of disturbance has scheduling
// and measurement points to land on. It returns the receiver's timing
// trace (a behavioural fingerprint of the run).
func harness(t *testing.T, seedv int64, inject func(m *sim.Machine, tgt Target, log *Log)) []int64 {
	t.Helper()
	m := sim.MustNewMachine(testConfig(), 1<<24, seedv)
	pollAS := m.NewSpace()
	base, err := pollAS.Alloc(16 * mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	var pollute []mem.VAddr
	for i := 0; i < 16; i++ {
		pollute = append(pollute, base+mem.VAddr(i*mem.PageSize))
	}
	tgt := Target{
		Sender: "sender", Receiver: "receiver",
		SpareCore: 3,
		PolluteAS: pollAS, Pollute: pollute,
		Horizon: testHorizon,
	}
	log := &Log{}
	log.Attach(m)
	inject(m, tgt, log)

	var trace []int64
	m.Spawn("sender", 0, nil, func(c *sim.Core) {
		buf := c.Alloc(mem.PageSize)
		for c.Now() < testHorizon {
			c.Load(buf)
			c.Spin(150)
		}
	})
	m.Spawn("receiver", 1, nil, func(c *sim.Core) {
		buf := c.Alloc(mem.PageSize)
		c.Load(buf)
		for c.Now() < testHorizon {
			trace = append(trace, c.TimedLoad(buf))
			c.Spin(40)
		}
	})
	m.Run()
	return trace
}

// TestInjectorCountsFixedSeed asserts each injector fires exactly the
// number of times it logged as scheduled, for a fixed seed.
func TestInjectorCountsFixedSeed(t *testing.T) {
	cases := []struct {
		scenario Scenario
		kind     string
		want     int
	}{
		{Preemption{Count: 5, MinDur: 2_000, MaxDur: 10_000}, sim.FaultPreempt, 5},
		{TimerSpikes{Count: 3, Dur: 30_000, Extra: 400}, sim.FaultTimerSpike, 3},
		{Migration{Cost: 3_000}, sim.FaultMigrate, 1},
		{Pollution{Bursts: 4, Walks: 2, Gap: 50}, "pollute-burst", 4},
		{ClockDrift{PPM: 800}, "drift", 1},
	}
	for _, tc := range cases {
		t.Run(tc.scenario.Name(), func(t *testing.T) {
			var log *Log
			harness(t, 7, func(m *sim.Machine, tgt Target, l *Log) {
				log = l
				tc.scenario.Inject(m, tgt, 99, l)
			})
			if got := log.CountScheduled(tc.kind); got != tc.want {
				t.Errorf("scheduled %d %s events, want %d", got, tc.kind, tc.want)
			}
			if got := log.CountFired(tc.kind); got != tc.want {
				t.Errorf("fired %d %s events, want %d (scheduled %d)",
					got, tc.kind, tc.want, log.CountScheduled(tc.kind))
			}
		})
	}
}

// TestScheduleDeterministicPerSeed: the same scenario and seed schedule
// identical events across runs; a different seed moves them.
func TestScheduleDeterministicPerSeed(t *testing.T) {
	sched := func(seedv int64) []Event {
		var log *Log
		harness(t, 7, func(m *sim.Machine, tgt Target, l *Log) {
			log = l
			Preemption{Count: 4, MinDur: 1000, MaxDur: 5000}.Inject(m, tgt, seedv, l)
		})
		return log.Scheduled()
	}
	a, b := sched(5), sched(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed scheduled different events:\n%v\n%v", a, b)
	}
	if reflect.DeepEqual(a, sched(6)) {
		t.Fatal("different seeds scheduled identical events")
	}
}

func composedParts() []Scenario {
	return []Scenario{
		Preemption{Count: 3, MinDur: 2_000, MaxDur: 8_000},
		TimerSpikes{Count: 2, Dur: 20_000, Extra: 300},
		ClockDrift{PPM: 500},
		Migration{Cost: 2_000},
		Pollution{Bursts: 3, Walks: 1, Gap: 40},
	}
}

// TestComposeOrderIndependent: composing the same scenarios in any order
// schedules identical events AND produces an identical simulation.
func TestComposeOrderIndependent(t *testing.T) {
	run := func(reversed bool) ([]Event, []int64) {
		parts := composedParts()
		if reversed {
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
		}
		var log *Log
		trace := harness(t, 7, func(m *sim.Machine, tgt Target, l *Log) {
			log = l
			Compose(parts...).Inject(m, tgt, 1234, l)
		})
		return log.Scheduled(), trace
	}
	evA, trA := run(false)
	evB, trB := run(true)
	if !reflect.DeepEqual(evA, evB) {
		t.Fatalf("composition order changed the schedule:\n%v\n%v", evA, evB)
	}
	if !reflect.DeepEqual(trA, trB) {
		t.Fatal("composition order changed the simulated timing trace")
	}
	if len(evA) == 0 {
		t.Fatal("composite scheduled nothing")
	}
}

func TestComposeRejectsDuplicateNames(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compose accepted two scenarios with the same name")
		}
	}()
	Compose(Preemption{Count: 1}, Preemption{Count: 2})
}
