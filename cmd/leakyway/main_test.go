package main

import (
	"io"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"not-an-experiment"}, "both", 1, true, io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunUnknownPlatform(t *testing.T) {
	if err := run([]string{"fig1"}, "pentium", 1, true, io.Discard); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"fig1"}, "skylake", 1, true, io.Discard); err != nil {
		t.Fatalf("fig1 failed: %v", err)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	if err := run([]string{"table1", "fig1"}, "both", 42, true, io.Discard); err != nil {
		t.Fatal(err)
	}
}
