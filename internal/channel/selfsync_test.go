package channel

import (
	"testing"

	"leakyway/internal/platform"
	"leakyway/internal/sim"
)

func TestSelfSyncDecodesWithoutSharedEpoch(t *testing.T) {
	cfgp := platform.Skylake()
	cfg := DefaultConfig(cfgp.Name, cfgp.FreqGHz)
	cfg.Interval = 2500
	cfg.NoisePeriod = 0
	msg := RandomMessage(300, 61)
	for _, start := range []int64{80_000, 137_213, 260_001} {
		c := cfg
		c.Start = start // known only to the sender
		m := sim.MustNewMachine(cfgp, 1<<30, 9)
		rep, _ := RunNTPNTPSelfSync(m, c, msg)
		if rep.BER > 0.02 {
			t.Fatalf("start=%d: BER %.2f%%, want ≈0 after preamble lock", start, 100*rep.BER)
		}
	}
}

func TestSelfSyncFramingOverheadInRate(t *testing.T) {
	// The reported raw rate must account for the framing overhead
	// (48 payload slots out of 62).
	cfgp := platform.Skylake()
	cfg := DefaultConfig(cfgp.Name, cfgp.FreqGHz)
	cfg.Interval = 2500
	cfg.NoisePeriod = 0
	m := sim.MustNewMachine(cfgp, 1<<30, 9)
	rep, _ := RunNTPNTPSelfSync(m, cfg, RandomMessage(96, 3))
	full := cfgp.FreqGHz * 1e9 / float64(cfg.Interval) / 8 / 1024
	if rep.RawRateKBps >= full {
		t.Fatalf("raw rate %.1f should be below the unframed rate %.1f", rep.RawRateKBps, full)
	}
	if rep.RawRateKBps < full*0.6 {
		t.Fatalf("raw rate %.1f too low for 48/62 framing of %.1f", rep.RawRateKBps, full)
	}
}

func TestSelfSyncToleratesNoise(t *testing.T) {
	cfgp := platform.Skylake()
	cfg := DefaultConfig(cfgp.Name, cfgp.FreqGHz)
	cfg.Interval = 2500
	cfg.NoisePeriod = 400_000
	msg := RandomMessage(400, 62)
	m := sim.MustNewMachine(cfgp, 1<<30, 10)
	rep, _ := RunNTPNTPSelfSync(m, cfg, msg)
	if rep.BER > 0.10 {
		t.Fatalf("noisy self-sync BER %.2f%%; lock should survive sparse noise", 100*rep.BER)
	}
}

func TestSelfSyncLongNoisyTransfer(t *testing.T) {
	// Regression: a stolen frame lock must not cascade a one-frame shift
	// through the rest of the message (the frame index is re-derived from
	// each START timestamp).
	cfgp := platform.Skylake()
	cfg := DefaultConfig(cfgp.Name, cfgp.FreqGHz)
	cfg.Interval = 2500
	cfg.NoisePeriod = 400_000
	msg := RandomMessage(1500, 42)
	m := sim.MustNewMachine(cfgp, 1<<30, 42)
	rep, _ := RunNTPNTPSelfSync(m, cfg, msg)
	if rep.BER > 0.05 {
		t.Fatalf("long noisy transfer BER %.2f%%; isolated frame damage only, no cascades", 100*rep.BER)
	}
}
