// Package attack implements the paper's replacement-state side channels and
// their PREFETCHNTA-accelerated variants: Prime+Scope vs
// Prime+Prefetch+Scope (Section V-A, Listings 1-2, Figure 11, and the
// false-negative experiment), and Reload+Refresh vs Prefetch+Refresh v1/v2
// (Section V-B, Figures 9, 10, 12, Table III).
package attack

import (
	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

// PeriodicVictim is the ground-truth generator of the Section V-A3
// experiment: like the paper's thread T1, it accesses a predetermined
// address every Period cycles and records when. Accesses that hit the
// victim's own private cache neither reach the LLC nor disturb it; an
// access becomes an observable LLC event exactly when the attacker's
// priming has previously evicted the line (back-invalidation), which is
// what the scope attacks detect.
type PeriodicVictim struct {
	// Target is the victim's line (victim address space).
	Target mem.VAddr
	// Period is the access period in cycles (1.5K in the paper).
	Period int64
	// Accesses records the completion time of every access that reached
	// the LLC (an LLC fill — the observable events).
	Accesses []int64
	// Total counts all accesses including private-cache hits.
	Total int
}

// SpawnPeriodicVictim stages and starts the victim daemon on the given core.
// The returned struct's fields are populated as the machine runs.
func SpawnPeriodicVictim(m *sim.Machine, coreID int, as *mem.AddressSpace, target mem.VAddr, period int64) *PeriodicVictim {
	v := &PeriodicVictim{Target: target, Period: period}
	m.SpawnDaemon("victim", coreID, as, func(c *sim.Core) {
		for i := int64(1); ; i++ {
			c.WaitUntil(i * period)
			res := c.Load(target)
			v.Total++
			if res.Level == hier.LevelMem { // an LLC fill: the observable event
				v.Accesses = append(v.Accesses, c.Now())
			}
		}
	})
	return v
}

// WindowedVictim drives the Reload+Refresh experiments: in window i it
// accesses the shared line iff Pattern[i%len] is true. The pattern itself is
// the ground truth; the attacker's per-iteration flush+reload of the shared
// line keeps it out of the victim's private cache, so every access is an
// LLC hit that updates the line's replacement age.
type WindowedVictim struct {
	Target  mem.VAddr
	Window  int64
	Start   int64
	Pattern []bool
}

// SpawnWindowedVictim starts the victim daemon. Window i begins at
// Start+i*Window and the access (if any) lands mid-window.
func SpawnWindowedVictim(m *sim.Machine, coreID int, as *mem.AddressSpace, v WindowedVictim) {
	m.SpawnDaemon("victim", coreID, as, func(c *sim.Core) {
		for i := 0; ; i++ {
			c.WaitUntil(v.Start + int64(i)*v.Window + v.Window/2)
			if v.Pattern[i%len(v.Pattern)] {
				c.Load(v.Target)
			}
		}
	})
}
