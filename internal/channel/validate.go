package channel

import "fmt"

// MinSelfSyncInterval is the smallest slot length the self-synchronizing
// receiver accepts: the post-miss re-prime (a full filler walk plus the
// reinstating PREFETCHNTA) must finish inside a slot, which on the default
// calibration needs ~2200 cycles.
const MinSelfSyncInterval = MinTransportInterval

// Validate rejects configurations no channel can run: a non-positive
// interval, offsets outside the iteration window, or negative noise and
// overhead parameters. Run entry points call it before spawning agents, so
// misuse fails with a descriptive error instead of a hung or garbage run.
func (cfg Config) Validate() error {
	if cfg.Interval <= 0 {
		return fmt.Errorf("channel: interval must be positive, got %d", cfg.Interval)
	}
	if cfg.SenderOffset < 0 || cfg.SenderOffset >= cfg.Interval {
		return fmt.Errorf("channel: sender offset %d outside iteration window [0, %d)",
			cfg.SenderOffset, cfg.Interval)
	}
	if cfg.ReceiverOffset < 0 || cfg.ReceiverOffset >= cfg.Interval {
		return fmt.Errorf("channel: receiver offset %d outside iteration window [0, %d)",
			cfg.ReceiverOffset, cfg.Interval)
	}
	if cfg.ProtocolOverhead < 0 {
		return fmt.Errorf("channel: protocol overhead must be non-negative, got %d", cfg.ProtocolOverhead)
	}
	if cfg.NoisePeriod < 0 {
		return fmt.Errorf("channel: noise period must be non-negative, got %d", cfg.NoisePeriod)
	}
	if cfg.Start < 0 {
		return fmt.Errorf("channel: start epoch must be non-negative, got %d", cfg.Start)
	}
	return nil
}

// ValidateSelfSync additionally enforces the self-sync slot-length floor:
// below MinSelfSyncInterval the receiver's re-prime no longer fits inside
// a slot and the channel wedges rather than degrades.
func (cfg Config) ValidateSelfSync() error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Interval < MinSelfSyncInterval {
		return fmt.Errorf("channel: self-sync interval %d is below the calibrated re-prime minimum %d",
			cfg.Interval, MinSelfSyncInterval)
	}
	return nil
}

// mustValidRun guards the Run* entry points, whose signatures predate
// error returns: validation failures panic with the descriptive error.
func mustValidRun(cfg Config, selfSync bool, msg []bool) {
	var err error
	if selfSync {
		err = cfg.ValidateSelfSync()
	} else {
		err = cfg.Validate()
	}
	if err != nil {
		panic(err)
	}
	if len(msg) == 0 {
		panic(fmt.Errorf("channel: message must be non-empty"))
	}
}
