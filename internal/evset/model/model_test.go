package model

import (
	"testing"

	"leakyway/internal/policy"
)

func TestIntelPolicyAdvantage(t *testing.T) {
	c := Compare(policy.NewQuadAge(), "intel", 16, 16)
	if c.ImprovementRatio < 4 {
		t.Fatalf("improvement = %.2fx, want large (paper: 7.25x)", c.ImprovementRatio)
	}
	if c.PrefetchRefs >= c.BaselineRefs {
		t.Fatal("Algorithm 2 should need fewer references")
	}
}

func TestCountermeasureCollapsesAdvantage(t *testing.T) {
	c := Compare(policy.NewQuadAgeCountermeasure(), "cm", 16, 16)
	if c.ImprovementRatio > 1.6 || c.ImprovementRatio < 0.6 {
		t.Fatalf("countermeasure improvement = %.2fx, want ≈1x (paper: 1.26x)", c.ImprovementRatio)
	}
}

func TestPaperComparisonShape(t *testing.T) {
	cs := PaperComparison(16, 16)
	if len(cs) != 2 {
		t.Fatalf("got %d comparisons", len(cs))
	}
	if cs[0].ImprovementRatio <= cs[1].ImprovementRatio {
		t.Fatalf("Intel ratio (%.2f) must exceed countermeasure ratio (%.2f)",
			cs[0].ImprovementRatio, cs[1].ImprovementRatio)
	}
	for _, c := range cs {
		if c.String() == "" {
			t.Error("empty rendering")
		}
	}
}

func TestPrefetchAlgorithmIsOneShotUnderIntel(t *testing.T) {
	// With the stock policy, every candidate prefetch evicts the target:
	// exactly `desired` candidates are consumed.
	r := RunPrefetch(policy.NewQuadAge(), 16, 16)
	if r.Candidates != 16 {
		t.Fatalf("consumed %d candidates, want 16 (one per discovery)", r.Candidates)
	}
}

func TestBaselineNeedsManyCandidates(t *testing.T) {
	r := RunBaseline(policy.NewQuadAge(), 16, 16)
	if r.Candidates < 8*16 {
		t.Fatalf("baseline consumed only %d candidates; ~w per discovery expected", r.Candidates)
	}
}

func TestModelScalesWithWays(t *testing.T) {
	for _, ways := range []int{4, 8, 16} {
		p := RunPrefetch(policy.NewQuadAge(), ways, ways)
		b := RunBaseline(policy.NewQuadAge(), ways, ways)
		if p.MemRefs <= 0 || b.MemRefs <= p.MemRefs {
			t.Fatalf("ways=%d: prefetch %d refs, baseline %d refs", ways, p.MemRefs, b.MemRefs)
		}
	}
}

func TestSetModelBasics(t *testing.T) {
	s := newSetModel(policy.NewQuadAge(), 4)
	// Starts full of background lines.
	for w := 0; w < 4; w++ {
		if !s.valid[w] {
			t.Fatal("set should start full")
		}
	}
	s.touch(1, policy.ClassLoad) // miss: evicts a background line
	if !s.present(1) {
		t.Fatal("line absent after fill")
	}
	s.touch(1, policy.ClassLoad) // hit
	if !s.present(1) {
		t.Fatal("line vanished on hit")
	}
}
