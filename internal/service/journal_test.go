package service

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"leakyway/internal/iofault"
)

// testJournalConfig is a fast-retry config for journal tests.
func testJournalConfig() journalConfig {
	return journalConfig{rotateBytes: 4 << 20, syncRetries: 3, retryBase: time.Millisecond}
}

// openTestJournal builds a journal at path over fsys with no prior state.
func openTestJournal(t *testing.T, fsys iofault.FS, path string, cfg journalConfig) *Journal {
	t.Helper()
	j, err := rewriteJournal(fsys, path, nil, cfg)
	if err != nil {
		t.Fatalf("rewriteJournal: %v", err)
	}
	return j
}

func acceptEntry(id int) journalEntry {
	sub := Submission{Template: tmplFor("jt"), Seed: int64(id)}
	return journalEntry{Op: opAccept, ID: idOf(id), Key: storeKey(id), Sub: &sub}
}

func idOf(id int) string { return "j-" + strings.Repeat("0", 5) + string(rune('0'+id%10)) }

// TestJournalReplayTornFinalRecord is the torn-write-tail recovery case:
// the process died mid-append, leaving a truncated final line. Replay
// must return every complete entry and drop only the torn tail.
func TestJournalReplayTornFinalRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j := openTestJournal(t, iofault.OS(), path, testJournalConfig())
	for i := 1; i <= 3; i++ {
		if err := j.Append(acceptEntry(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	j.Close()

	// Tear the tail: append half of a fourth record, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"accept","id":"j-0000`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	entries, err := replayJournal(iofault.OS(), path)
	if err != nil {
		t.Fatalf("replay of torn tail must succeed: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("replayed %d entries, want the 3 complete ones", len(entries))
	}
	for i, e := range entries {
		if e.Key != storeKey(i+1) {
			t.Fatalf("entry %d key %s, want %s", i, e.Key, storeKey(i+1))
		}
	}
}

func TestJournalReplayRejectsMidFileGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	data := `{"op":"accept","id":"j-000001","key":"k"}` + "\n" +
		"@@@ not json @@@\n" +
		`{"op":"done","key":"k"}` + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replayJournal(iofault.OS(), path); err == nil {
		t.Fatalf("garbage before the end of the file must fail replay")
	}
}

func TestJournalAppendAbsorbsTransientFsyncFailure(t *testing.T) {
	// Every 2nd fsync fails; a 3-retry budget must absorb that without
	// surfacing an error.
	inj := iofault.NewInjector(iofault.OS(), 1, iofault.FailSync("journal", 2, iofault.ErrIO))
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j := openTestJournal(t, inj, path, testJournalConfig())
	for i := 1; i <= 4; i++ {
		if err := j.Append(acceptEntry(i)); err != nil {
			t.Fatalf("append %d not absorbed: %v", i, err)
		}
	}
	j.Close()
	entries, err := replayJournal(iofault.OS(), path)
	if err != nil || len(entries) != 4 {
		t.Fatalf("replay after retried fsyncs: %d entries, %v", len(entries), err)
	}
}

func TestJournalAppendFailsWhenFsyncStaysDown(t *testing.T) {
	inj := iofault.NewInjector(iofault.OS(), 1, iofault.FailSync("journal", 1, iofault.ErrIO))
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	// rewriteJournal itself fsyncs through writeSynced on a tmp path that
	// contains "journal", so build the journal before arming the fault.
	inj.SetActive(false)
	j := openTestJournal(t, inj, path, testJournalConfig())
	inj.SetActive(true)

	if err := j.Append(acceptEntry(1)); err == nil {
		t.Fatalf("append with a dead fsync must fail")
	}
	// The disk heals: the journal keeps working on the same handle.
	inj.SetActive(false)
	if err := j.Append(acceptEntry(2)); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	j.Close()
	entries, err := replayJournal(iofault.OS(), path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	// Entry 1 was written but not durably synced; both lines are intact
	// on a disk that never actually lost the bytes.
	if len(entries) != 2 {
		t.Fatalf("replayed %d entries, want 2", len(entries))
	}
}

func TestJournalTornAppendRepaired(t *testing.T) {
	inj := iofault.NewInjector(iofault.OS(), 3, iofault.TornWrite("journal.jsonl", 1, iofault.ErrIO))
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	inj.SetActive(false)
	j := openTestJournal(t, inj, path, testJournalConfig())
	if err := j.Append(acceptEntry(1)); err != nil {
		t.Fatalf("clean append: %v", err)
	}
	inj.SetActive(true)
	if err := j.Append(acceptEntry(2)); err == nil {
		t.Fatalf("torn append must fail")
	}
	inj.SetActive(false)
	// The torn bytes were truncated away, so this lands on a clean line.
	if err := j.Append(acceptEntry(3)); err != nil {
		t.Fatalf("append after torn-tail repair: %v", err)
	}
	j.Close()
	entries, err := replayJournal(iofault.OS(), path)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(entries) != 2 || entries[0].Key != storeKey(1) || entries[1].Key != storeKey(3) {
		t.Fatalf("repaired journal replays %+v, want entries 1 and 3", entries)
	}
}

func TestJournalRotationCompactsOnline(t *testing.T) {
	cfg := testJournalConfig()
	cfg.rotateBytes = 2048
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j := openTestJournal(t, iofault.OS(), path, cfg)

	for i := 0; !j.NeedsRotation(); i++ {
		if err := j.Append(acceptEntry(i)); err != nil {
			t.Fatalf("append: %v", err)
		}
		if i > 1000 {
			t.Fatalf("journal never hit rotation threshold")
		}
	}
	grown := j.Size()

	// Compact down to two live entries.
	live := []journalEntry{acceptEntry(1), {Op: opDone, Key: storeKey(1)}}
	if err := j.Rotate(live); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	if j.Size() >= grown {
		t.Fatalf("rotation did not shrink the journal: %d -> %d", grown, j.Size())
	}
	if j.NeedsRotation() {
		t.Fatalf("fresh segment immediately wants rotation again")
	}
	// Appends continue on the new segment.
	if err := j.Append(acceptEntry(9)); err != nil {
		t.Fatalf("append after rotation: %v", err)
	}
	j.Close()
	entries, err := replayJournal(iofault.OS(), path)
	if err != nil || len(entries) != 3 {
		t.Fatalf("replay after rotation: %d entries, %v", len(entries), err)
	}
}

func TestJournalRotationThrashGuard(t *testing.T) {
	// Live state bigger than rotateBytes: after one compaction the
	// journal is still over the byte threshold, but the 2x-growth guard
	// must keep NeedsRotation false.
	cfg := testJournalConfig()
	cfg.rotateBytes = 64
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	live := []journalEntry{acceptEntry(1), acceptEntry(2), acceptEntry(3)}
	j, err := rewriteJournal(iofault.OS(), path, live, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Size() <= cfg.rotateBytes {
		t.Fatalf("test premise broken: live state %d fits rotateBytes %d", j.Size(), cfg.rotateBytes)
	}
	if j.NeedsRotation() {
		t.Fatalf("rotation requested right after compaction — would thrash")
	}
}

// failOpen fails OpenFile for paths ending in suffix while armed. Suffix
// matching spares the ".tmp" staging file, so the rotation's rename goes
// through and only the reopen of the final path fails.
type failOpen struct {
	suffix string
	armed  bool
}

func (r *failOpen) Name() string { return "fail-open" }

func (r *failOpen) Check(op iofault.Op, _ *rand.Rand) iofault.Fault {
	if r.armed && op.Kind == iofault.OpOpen && strings.HasSuffix(op.Path, r.suffix) {
		return iofault.Fault{Err: iofault.ErrIO}
	}
	return iofault.Fault{}
}

func TestJournalDetachesWhenRotateReopenFails(t *testing.T) {
	rule := &failOpen{suffix: "journal.jsonl"}
	inj := iofault.NewInjector(iofault.OS(), 1, rule)
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j := openTestJournal(t, inj, path, testJournalConfig())
	if err := j.Append(acceptEntry(1)); err != nil {
		t.Fatalf("append: %v", err)
	}

	// The rename succeeds but reopening the fresh segment fails: the old
	// handle now points at an unlinked inode, so the journal must refuse
	// to append through it rather than silently lose entries.
	rule.armed = true
	if err := j.Rotate([]journalEntry{acceptEntry(1)}); err == nil {
		t.Fatalf("rotate with failing reopen must error")
	}
	rule.armed = false
	if err := j.Append(acceptEntry(2)); err == nil {
		t.Fatalf("detached journal accepted an append")
	}

	// The on-disk segment (the rotated one) replays clean.
	entries, err := replayJournal(iofault.OS(), path)
	if err != nil || len(entries) != 1 {
		t.Fatalf("rotated segment replays %d entries, %v; want 1", len(entries), err)
	}
}
