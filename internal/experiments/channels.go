package experiments

import (
	"fmt"

	"leakyway/internal/channel"
	"leakyway/internal/hier"
)

// fig6, fig7 and fig8 are declarative scenarios now — see builtin.go for
// their Spec literals and scenario_run.go for the interpreters. Table II
// stays hand-coded: its paper-comparison column renders reference numbers
// that are data, not scenario structure.

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Table II — maximum channel capacities",
		Paper: "NTP+NTP 302 (SKL) / 275 (KBL) KB/s; Prime+Probe 86 / 81 KB/s",
		Run:   runTable2,
	})
}

func bit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func runTable2(ctx *Context) (*Result, error) {
	res := &Result{}
	bits := ctx.Trials(2000)
	paper := map[string][2]float64{
		"skylake":  {302, 86},
		"kabylake": {275, 81},
	}
	// The sweeps render nothing, so the per-platform rows can be computed
	// concurrently and assembled into one table afterwards.
	type peaks struct{ ntp, pp float64 }
	byPlatform := make([]peaks, len(ctx.Platforms))
	err := ctx.EachPlatform(func(sub *Context, cfg hier.Config) error {
		base := channel.DefaultConfig(cfg.Name, cfg.FreqGHz)
		ntp := channel.SweepBatch(cfg, channel.RunNTPNTP, base, []int64{1200, 1300, 1500, 1800, 2000}, bits, sub.SeedFor("ntpntp"), sub.BatchTrials, nil).Peak()
		pp := channel.SweepBatch(cfg, channel.RunPrimeProbe, base, []int64{6500, 7000, 8000, 9000}, bits, sub.SeedFor("primeprobe"), sub.BatchTrials, nil).Peak()
		for i := range ctx.Platforms {
			if ctx.Platforms[i].Name == cfg.Name {
				byPlatform[i] = peaks{ntp.CapacityKBps, pp.CapacityKBps}
			}
		}
		res.Metric(shortName(cfg)+"/ntpntp_peak_kbps", ntp.CapacityKBps)
		res.Metric(shortName(cfg)+"/primeprobe_peak_kbps", pp.CapacityKBps)
		return nil
	})
	if err != nil {
		return res, err
	}
	rows := [][]string{}
	for i, cfg := range ctx.Platforms {
		p := paper[shortName(cfg)]
		rows = append(rows,
			[]string{cfg.Name, "NTP+NTP", fmt.Sprintf("%.0f KB/s", byPlatform[i].ntp), fmt.Sprintf("%.0f KB/s", p[0])},
			[]string{cfg.Name, "Prime+Probe", fmt.Sprintf("%.0f KB/s", byPlatform[i].pp), fmt.Sprintf("%.0f KB/s", p[1])},
		)
	}
	renderTable(ctx, []string{"platform", "channel", "measured capacity", "paper"}, rows)
	return res, nil
}

// quietPlatform strips latency jitter (useful for deterministic traces).
func quietPlatform(cfg hier.Config) hier.Config {
	cfg.Lat.L1Jit, cfg.Lat.L2Jit, cfg.Lat.LLCJit, cfg.Lat.MemJit = 0, 0, 0, 0
	cfg.Lat.FlushJit, cfg.Lat.TimerJit = 0, 0
	return cfg
}
