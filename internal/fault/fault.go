// Package fault is a composable fault-injection framework for sim.Machine.
// A Scenario models one hostile condition a deployed covert channel faces —
// OS preemption of the receiver, bursty LLC pollution of the target sets,
// TSC drift between the parties, timer-jitter spikes, core migration — and
// schedules the corresponding disturbances on a machine before it runs.
//
// Scenarios compose (Compose) and are fully seed-deterministic: every
// stochastic choice derives from seed.Split over the scenario's name, so a
// composite injects exactly the same disturbances regardless of the order
// its parts were listed in. Each scenario records what it scheduled — and
// the simulator reports back what actually fired — in a Log, so tests can
// assert injection counts for a fixed seed.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"leakyway/internal/mem"
	"leakyway/internal/seed"
	"leakyway/internal/sim"
	"leakyway/internal/trace"
)

// Agent roles a scenario can target.
const (
	RoleSender   = "sender"
	RoleReceiver = "receiver"
)

// Target names the parties and resources scenarios may disturb. The
// channel runners spawn their agents under the conventional names
// ("sender", "receiver"), so faults staged before the run attach when the
// agents appear.
type Target struct {
	// Sender and Receiver are the agent names of the two parties.
	Sender, Receiver string
	// SpareCore is a core free for pollution walkers and as the
	// destination of migrations (the channel convention leaves core 3
	// free: sender 0, receiver 1, noise 2).
	SpareCore int
	// PolluteAS and Pollute are an address space plus lines congruent
	// with the channel's target sets — what a hostile co-tenant would
	// thrash. channel.Endpoints' noise pool serves directly.
	PolluteAS *mem.AddressSpace
	Pollute   []mem.VAddr
	// Horizon is the expected cycle length of the transmission; random
	// injection points are drawn from it.
	Horizon int64
}

// agent resolves a role to the target's agent name.
func (t Target) agent(role string) string {
	if role == RoleSender {
		return t.Sender
	}
	return t.Receiver
}

// Scenario is one composable hostile condition.
type Scenario interface {
	// Name identifies the scenario; it keys the seed derivation, so two
	// scenarios composed together must have distinct names.
	Name() string
	// Inject schedules the scenario's disturbances on m against tgt.
	// All randomness derives from seedv; scheduled events are recorded
	// in log.
	Inject(m *sim.Machine, tgt Target, seedv int64, log *Log)
}

// Event is one injection, scheduled or fired.
type Event struct {
	Scenario string
	Agent    string
	Kind     string
	At       int64
	Detail   int64
	// Dur is the disturbance window length in cycles (fired events only;
	// 0 when the disturbance is instantaneous or unknown).
	Dur int64
}

func (e Event) String() string {
	return fmt.Sprintf("%s: %s on %s @%d (%d)", e.Scenario, e.Kind, e.Agent, e.At, e.Detail)
}

// Log collects scheduled and fired injection events. The simulator runs
// agents one at a time, so no locking is needed.
type Log struct {
	scheduled []Event
	fired     []Event
	tr        *trace.Tracer
}

// Attach routes the machine's fault notifications into the log (and, when
// the machine is traced, into its event stream — with the firing resolved
// back to the scenario that scheduled it). Call it once per machine,
// before Run.
func (l *Log) Attach(m *sim.Machine) {
	l.tr = m.Tracer()
	m.FaultNotify = func(agent, kind string, at, detail, dur int64) {
		e := Event{Agent: agent, Kind: kind, At: at, Detail: detail, Dur: dur}
		e.Scenario = l.scenarioFor(agent, kind, at)
		l.fired = append(l.fired, e)
		l.emit(e)
	}
}

// scenarioFor resolves a firing to its scheduling scenario. The simulator
// reports the *scheduled* trigger cycle, so (agent, kind, at) matches the
// schedule exactly.
func (l *Log) scenarioFor(agent, kind string, at int64) string {
	for _, s := range l.scheduled {
		if s.Agent == agent && s.Kind == kind && s.At == at {
			return s.Scenario
		}
	}
	return ""
}

// emit records a fired event in the machine's trace stream.
func (l *Log) emit(e Event) {
	if !l.tr.On(trace.PkgFault) {
		return
	}
	te := trace.E("fault", e.Kind, e.At)
	te.Agent, te.Note = e.Agent, e.Scenario
	te.Dur, te.Val = e.Dur, e.Detail
	l.tr.Emit(te)
}

func (l *Log) schedule(e Event) { l.scheduled = append(l.scheduled, e) }

func (l *Log) fire(e Event) {
	l.fired = append(l.fired, e)
	l.emit(e)
}

// Scheduled returns the scheduled events, sorted by (At, Scenario, Kind)
// so the view is independent of composition order.
func (l *Log) Scheduled() []Event { return sortedEvents(l.scheduled) }

// Fired returns the events the simulator reported firing, in firing order.
func (l *Log) Fired() []Event { return append([]Event(nil), l.fired...) }

// CountScheduled counts scheduled events of the given kind ("" for all).
func (l *Log) CountScheduled(kind string) int { return countKind(l.scheduled, kind) }

// CountFired counts fired events of the given kind ("" for all).
func (l *Log) CountFired(kind string) int { return countKind(l.fired, kind) }

func countKind(evs []Event, kind string) int {
	n := 0
	for _, e := range evs {
		if kind == "" || e.Kind == kind {
			n++
		}
	}
	return n
}

func sortedEvents(evs []Event) []Event {
	out := append([]Event(nil), evs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		return a.Kind < b.Kind
	})
	return out
}

// Compose combines scenarios into one. Parts are injected in canonical
// (name) order with seeds derived per part name, so composing A+B and B+A
// schedules identical disturbances. Duplicate names are rejected: they
// would silently share one random stream.
func Compose(parts ...Scenario) Scenario {
	byName := map[string]bool{}
	for _, p := range parts {
		if byName[p.Name()] {
			panic(fmt.Sprintf("fault: Compose: duplicate scenario name %q", p.Name()))
		}
		byName[p.Name()] = true
	}
	return composite{parts: parts}
}

type composite struct{ parts []Scenario }

func (c composite) Name() string {
	names := make([]string, len(c.parts))
	for i, p := range c.parts {
		names[i] = p.Name()
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}

func (c composite) Inject(m *sim.Machine, tgt Target, seedv int64, log *Log) {
	ordered := append([]Scenario(nil), c.parts...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Name() < ordered[j].Name() })
	for _, p := range ordered {
		p.Inject(m, tgt, seed.Split(seedv, p.Name()), log)
	}
}

// points draws n injection cycles from the middle of the horizon (first
// tenth excluded so calibration and priming are undisturbed), sorted.
func points(rng *rand.Rand, n int, horizon int64) []int64 {
	lo := horizon / 10
	span := horizon - lo
	if span <= 0 {
		span = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = lo + rng.Int63n(span)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
