package channel

import (
	"testing"

	"leakyway/internal/platform"
	"leakyway/internal/sim"
)

// run builds a fresh Skylake machine and transmits msg.
func run(t *testing.T, runner Runner, mod func(*Config), msg []bool, seed int64) (Report, []bool) {
	t.Helper()
	cfgp := platform.Skylake()
	cfg := DefaultConfig(cfgp.Name, cfgp.FreqGHz)
	if mod != nil {
		mod(&cfg)
	}
	m := sim.MustNewMachine(cfgp, 1<<30, seed)
	return runner(m, cfg, msg)
}

func TestNTPNTPNoiselessIsPerfect(t *testing.T) {
	msg := RandomMessage(600, 11)
	rep, recv := run(t, RunNTPNTP, func(c *Config) {
		c.Interval = 2000
		c.NoisePeriod = 0
	}, msg, 1)
	if rep.Errors != 0 {
		t.Fatalf("noiseless channel had %d/%d errors", rep.Errors, rep.Bits)
	}
	for i := range msg {
		if recv[i] != msg[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
	if rep.CapacityKBps <= 0 || rep.RawRateKBps <= 0 {
		t.Fatalf("bogus rates: %+v", rep)
	}
}

func TestNTPNTPSingleSetNeedsSpacing(t *testing.T) {
	msg := RandomMessage(400, 12)
	// Generous spacing: works.
	repGood, _ := run(t, RunNTPNTP, func(c *Config) {
		c.Sets = 1
		c.Interval = 2500
		c.ReceiverOffset = 800
		c.NoisePeriod = 0
	}, msg, 2)
	if repGood.BER > 0.01 {
		t.Fatalf("spaced single-set channel BER = %.3f, want ~0", repGood.BER)
	}
	// Receiver probing inside the sender's DRAM fill window: the
	// in-flight line cannot be evicted and errors explode (the effect
	// that motivates the two-set schedule of Figure 7).
	repBad, _ := run(t, RunNTPNTP, func(c *Config) {
		c.Sets = 1
		c.Interval = 2500
		c.ReceiverOffset = 60
		c.NoisePeriod = 0
	}, msg, 2)
	if repBad.BER < 0.10 {
		t.Fatalf("in-flight-window probing BER = %.3f, expected large", repBad.BER)
	}
}

func TestNTPNTPOverloadCollapses(t *testing.T) {
	msg := RandomMessage(400, 13)
	rep, _ := run(t, RunNTPNTP, func(c *Config) {
		c.Interval = 700 // below the per-iteration work: overrun
		c.NoisePeriod = 0
	}, msg, 3)
	if rep.BER < 0.2 {
		t.Fatalf("over-rate channel BER = %.3f, expected collapse", rep.BER)
	}
	if rep.CapacityKBps > 30 {
		t.Fatalf("over-rate capacity = %.1f KB/s, should be near zero", rep.CapacityKBps)
	}
}

func TestNTPNTPNoiseRaisesBER(t *testing.T) {
	msg := RandomMessage(1500, 14)
	clean, _ := run(t, RunNTPNTP, func(c *Config) {
		c.Interval = 2000
		c.NoisePeriod = 0
	}, msg, 4)
	noisy, _ := run(t, RunNTPNTP, func(c *Config) {
		c.Interval = 2000
		c.NoisePeriod = 100_000 // heavy noise
	}, msg, 4)
	if noisy.Errors <= clean.Errors {
		t.Fatalf("noise did not raise errors: clean=%d noisy=%d", clean.Errors, noisy.Errors)
	}
	if noisy.BER > 0.2 {
		t.Fatalf("noise BER = %.3f; channel should degrade gracefully, not collapse", noisy.BER)
	}
}

func TestPrimeProbeNoiselessWorks(t *testing.T) {
	msg := RandomMessage(600, 15)
	rep, _ := run(t, RunPrimeProbe, func(c *Config) {
		c.Interval = 9000
		c.NoisePeriod = 0
	}, msg, 5)
	if rep.BER > 0.01 {
		t.Fatalf("Prime+Probe BER = %.3f at a comfortable interval", rep.BER)
	}
}

func TestNTPNTPBeatsPrimeProbe(t *testing.T) {
	// The Table II headline at reduced scale: peak capacities across a
	// small sweep, NTP+NTP should win by well over 2x.
	cfgp := platform.Skylake()
	base := DefaultConfig(cfgp.Name, cfgp.FreqGHz)
	ntp := Sweep(cfgp, RunNTPNTP, base, []int64{1300, 1600, 2000}, 1200, 21)
	pp := Sweep(cfgp, RunPrimeProbe, base, []int64{6500, 8000, 10000}, 1200, 21)
	np, pp2 := ntp.Peak(), pp.Peak()
	if np.CapacityKBps < 2*pp2.CapacityKBps {
		t.Fatalf("NTP+NTP peak %.1f KB/s vs Prime+Probe %.1f KB/s; want >2x",
			np.CapacityKBps, pp2.CapacityKBps)
	}
}

func TestSweepShape(t *testing.T) {
	cfgp := platform.Skylake()
	base := DefaultConfig(cfgp.Name, cfgp.FreqGHz)
	res := Sweep(cfgp, RunNTPNTP, base, []int64{900, 1300, 2600}, 800, 22)
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// Beyond the knee (900) capacity collapses; at the knee (1300) it
	// peaks; at low rate (2600) it is positive but lower than the peak.
	knee, low, over := res.Points[1], res.Points[2], res.Points[0]
	if knee.CapacityKBps <= low.CapacityKBps {
		t.Fatalf("knee capacity %.1f <= low-rate capacity %.1f", knee.CapacityKBps, low.CapacityKBps)
	}
	if over.CapacityKBps > low.CapacityKBps {
		t.Fatalf("over-rate capacity %.1f should collapse below %.1f", over.CapacityKBps, low.CapacityKBps)
	}
	if res.Peak().Interval != 1300 {
		t.Fatalf("peak at interval %d, want 1300", res.Peak().Interval)
	}
}

func TestMessageCodecs(t *testing.T) {
	data := []byte("Leaky Way!")
	bits := BytesToBits(data)
	if len(bits) != len(data)*8 {
		t.Fatalf("bit length %d", len(bits))
	}
	back := BitsToBytes(bits)
	if string(back) != string(data) {
		t.Fatalf("round trip = %q", back)
	}
	enc := EncodeRepetition(bits, 3)
	if len(enc) != 3*len(bits) {
		t.Fatalf("encoded length %d", len(enc))
	}
	// Flip every 5th bit; majority vote must still recover everything.
	for i := 0; i < len(enc); i += 5 {
		enc[i] = !enc[i]
	}
	dec := DecodeRepetition(enc, 3)
	for i := range bits {
		if dec[i] != bits[i] {
			t.Fatalf("repetition decode failed at bit %d", i)
		}
	}
}

func TestRandomMessageDeterministic(t *testing.T) {
	a := RandomMessage(100, 9)
	b := RandomMessage(100, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomMessage not deterministic")
		}
	}
	ones := 0
	for _, v := range a {
		if v {
			ones++
		}
	}
	if ones < 30 || ones > 70 {
		t.Fatalf("message heavily biased: %d ones", ones)
	}
}

func TestSetupValidation(t *testing.T) {
	m := sim.MustNewMachine(platform.Skylake(), 1<<28, 1)
	if _, err := Setup(m, 0, 0); err == nil {
		t.Fatal("sets=0 accepted")
	}
	ep, err := Setup(m, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(ep.DS) != 2 || len(ep.DR) != 2 || len(ep.REv) != 2 || len(ep.Filler) != 2 {
		t.Fatalf("endpoint shapes wrong: %+v", ep)
	}
	if len(ep.REv[0]) != 16 {
		t.Fatalf("eviction set size = %d, want 16", len(ep.REv[0]))
	}
	// ds and dr must be congruent per set.
	geo := m.H.Geometry()
	for s := 0; s < 2; s++ {
		dl := ep.SenderAS.MustTranslate(ep.DS[s]).Line()
		rl := ep.ReceiverAS.MustTranslate(ep.DR[s]).Line()
		if !geo.Congruent(dl, rl) {
			t.Fatalf("set %d: ds and dr not congruent", s)
		}
	}
	// The two sets must be distinct.
	r0 := ep.ReceiverAS.MustTranslate(ep.DR[0]).Line()
	r1 := ep.ReceiverAS.MustTranslate(ep.DR[1]).Line()
	if geo.Congruent(r0, r1) {
		t.Fatal("the two target sets collide")
	}
}

func TestReportRateMath(t *testing.T) {
	// The Table II unit conversions: 1 bit per interval at f GHz gives
	// f*1e9/interval bits/s = that/8192 KB/s.
	r := Report{Channel: "x", Platform: "y", Bits: 100, Errors: 0, Interval: 1700}
	finishReport(&r, 3.4, 1)
	wantRaw := 3.4e9 / 1700 / 8 / 1024
	if diff := r.RawRateKBps - wantRaw; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("raw rate %.6f, want %.6f", r.RawRateKBps, wantRaw)
	}
	if r.CapacityKBps != r.RawRateKBps {
		t.Fatalf("error-free capacity %.3f != raw %.3f", r.CapacityKBps, r.RawRateKBps)
	}
	// Two bits per interval doubles it; errors shrink capacity.
	r2 := Report{Bits: 100, Errors: 10, Interval: 1700}
	finishReport(&r2, 3.4, 2)
	if r2.RawRateKBps < 1.99*wantRaw || r2.RawRateKBps > 2.01*wantRaw {
		t.Fatalf("2-bit raw rate %.3f, want ≈%.3f", r2.RawRateKBps, 2*wantRaw)
	}
	if r2.BER != 0.1 {
		t.Fatalf("BER %.3f, want 0.1", r2.BER)
	}
	if r2.CapacityKBps >= r2.RawRateKBps {
		t.Fatal("errors must shrink capacity below the raw rate")
	}
	if r.String() == "" {
		t.Fatal("empty report string")
	}
}
