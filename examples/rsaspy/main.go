// RSA exponent spy: a victim runs a square-and-multiply modular
// exponentiation whose multiply routine occupies one cache line; the
// attacker, on another core and sharing nothing, monitors the line's LLC
// set with Prime+Prefetch+Scope (Section V-A) and reads the secret exponent
// off the detection timeline — one bit per iteration window.
package main

import (
	"fmt"
	"math/rand"

	"leakyway"
)

func main() {
	plat := leakyway.Skylake()
	m := leakyway.MustNewMachine(plat, 1<<29, 404)
	victimAS := m.NewSpace()
	attackerAS := m.NewSpace()

	// A 128-bit secret exponent.
	exponent := make([]bool, 128)
	rng := rand.New(rand.NewSource(77))
	for i := range exponent {
		exponent[i] = rng.Intn(2) == 1
	}

	v, err := leakyway.NewExponentVictim(victimAS, exponent, 6000, 60_000)
	if err != nil {
		panic(err)
	}
	v.Spawn(m, 1, victimAS)
	recovered := leakyway.SpyExponent(m, 0, attackerAS, v, victimAS)
	m.Run()

	fmt.Printf("secret   : %s\n", bitstring(exponent))
	fmt.Printf("recovered: %s\n", bitstring(*recovered))
	wrong := 0
	for i := range exponent {
		if i >= len(*recovered) || (*recovered)[i] != exponent[i] {
			wrong++
		}
	}
	fmt.Printf("\n%d/%d bits correct — the exponent leaked through one LLC set,\n",
		len(exponent)-wrong, len(exponent))
	fmt.Println("re-armed between windows by the paper's 31-reference NTA preparation")
}

func bitstring(bits []bool) string {
	out := make([]byte, len(bits))
	for i, b := range bits {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
