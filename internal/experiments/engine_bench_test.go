package experiments

import (
	"fmt"
	"io"
	"testing"
	"time"
)

// Latency-bound engine scaling. Each synthetic experiment blocks for a
// fixed wall-time, so the pool's overlap is visible even on a single-CPU
// host (where the CPU-bound BenchmarkRunAllJobs* curves in the root
// package collapse): jobs=4 over 8 such experiments should run ~4× faster
// than jobs=1.

func benchEngineLatencyBound(b *testing.B, jobs int) {
	b.Helper()
	const n, wait = 8, 20 * time.Millisecond
	list := make([]Experiment, n)
	for i := range list {
		id := fmt.Sprintf("sleep%02d", i)
		list[i] = Experiment{ID: id, Title: id, Run: func(ctx *Context) (*Result, error) {
			time.Sleep(wait)
			return &Result{}, nil
		}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := NewContext(io.Discard)
		ctx.Jobs = jobs
		if _, err := runExperiments(ctx, list); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineLatencyBoundJobs1(b *testing.B) { benchEngineLatencyBound(b, 1) }
func BenchmarkEngineLatencyBoundJobs4(b *testing.B) { benchEngineLatencyBound(b, 4) }
func BenchmarkEngineLatencyBoundJobs8(b *testing.B) { benchEngineLatencyBound(b, 8) }
