package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"leakyway/internal/experiments"
	"leakyway/internal/platform"
	"leakyway/internal/scenario"
	"leakyway/internal/telemetry"
)

// Submission is the POST /v1/jobs request body: one scenario template plus
// the run parameters that shape its output. Every field below participates
// in the result-cache key, because every field can change the bytes an
// identical resubmission should be served from cache.
type Submission struct {
	// Template is the scenario-DSL document (YAML, or JSON when Filename
	// ends in .json). It is validated by the strict loader before the job
	// is accepted; a malformed template is rejected with the field path.
	Template string `json:"template"`
	// Filename labels parse errors and selects the format (default
	// "template.yaml").
	Filename string `json:"filename,omitempty"`
	// Seed is the master seed (the CLI's -seed).
	Seed int64 `json:"seed"`
	// Jobs caps the engine worker count for this run (the CLI's -jobs);
	// 0 means 1. Output is byte-identical for any value, but it is part
	// of the cache key by definition (see jobKey).
	Jobs int `json:"jobs,omitempty"`
	// Quick runs reduced trial counts (the CLI's -quick).
	Quick bool `json:"quick,omitempty"`
	// Trace additionally records a cycle-level trace and stores it as the
	// "trace" artifact (Chrome trace-event JSON).
	Trace bool `json:"trace,omitempty"`
	// Platform is "skylake", "kabylake" or "both" (default both); ignored
	// when the template pins its own platform section.
	Platform string `json:"platform,omitempty"`
}

// maxEngineJobs bounds the per-run worker count a submission may request.
const maxEngineJobs = 64

// normalize canonicalizes defaulted fields (they feed the cache key, so
// "jobs omitted" and "jobs: 1" must digest identically) and validates the
// ranges the engine cannot.
func (sub *Submission) normalize() error {
	if sub.Jobs <= 0 {
		sub.Jobs = 1
	}
	if sub.Jobs > maxEngineJobs {
		return fmt.Errorf("jobs: %d exceeds the per-run limit of %d", sub.Jobs, maxEngineJobs)
	}
	if sub.Filename == "" {
		sub.Filename = "template.yaml"
	}
	switch sub.Platform {
	case "":
		sub.Platform = "both"
	case "both":
	default:
		if _, ok := platform.ByName(sub.Platform); !ok {
			return fmt.Errorf("platform: unknown platform %q (want skylake, kabylake or both)", sub.Platform)
		}
	}
	return nil
}

// jobKey computes the content-addressed result-cache key:
//
//	sha256(canonical-template ‖ seed ‖ jobs ‖ quick ‖ trace ‖ platform ‖ engine-version)
//
// The template contribution is scenario.CanonicalBytes — the same
// canonical-marshal path `leakyway -template validate` fingerprints — so
// any surface form of the same scenario (YAML or JSON, any field order)
// keys identically, and a CLI-printed fingerprint corresponds to exactly
// one template contribution here. EngineVersion pins the code: bumping it
// invalidates every cached result.
func jobKey(spec *scenario.Spec, sub Submission) string {
	h := sha256.New()
	h.Write(scenario.CanonicalBytes(spec))
	fmt.Fprintf(h, "\x00seed=%d\x00jobs=%d\x00quick=%t\x00trace=%t\x00platform=%s\x00engine=%s",
		sub.Seed, sub.Jobs, sub.Quick, sub.Trace, sub.Platform, experiments.EngineVersion)
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// Job statuses.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

// Job is one accepted submission's record. Several jobs may share one
// execution (single-flight dedup); each keeps its own identity so every
// submitter can poll, fetch artifacts and cancel independently.
type Job struct {
	ID       string
	Key      string
	Status   string
	Error    string
	Attempts int
	// CacheHit marks a job answered from the store without simulation.
	CacheHit bool
	// Coalesced marks a job attached to an already-in-flight execution.
	Coalesced bool
	// canceled is the job's own cancellation mark; the shared execution
	// is cancelled only when every attached job is.
	canceled bool
	exec     *execution
	sub      Submission
}

// terminal reports whether the job has reached a final state.
func (j *Job) terminal() bool {
	switch j.Status {
	case StatusDone, StatusFailed, StatusCanceled:
		return true
	}
	return false
}

// execution is one scheduled simulation: the single-flight unit all jobs
// with the same key attach to.
type execution struct {
	key  string
	sub  Submission
	spec *scenario.Spec
	jobs []*Job
	// cancel aborts the running attempt; set while an attempt is active.
	cancel context.CancelFunc
	// done closes when the execution reaches a terminal state.
	done chan struct{}
	// enqueuedAt stamps admission; queue-wait and job-latency histograms
	// measure from it.
	enqueuedAt time.Time
	// prog is the live progress tracker the engine publishes checkpoints
	// into; progLog is its sampled history. Both are assigned once at
	// construction and never reassigned, so SSE handlers read them
	// without a lock.
	prog    *telemetry.Progress
	progLog *progressLog
}

// newExecution builds the single-flight unit with its progress plumbing
// attached (spec may be nil during journal replay; recovery fills it in).
func newExecution(key string, sub Submission, spec *scenario.Spec) *execution {
	return &execution{
		key:     key,
		sub:     sub,
		spec:    spec,
		done:    make(chan struct{}),
		prog:    telemetry.NewProgress(),
		progLog: &progressLog{},
	}
}

// Result is one completed simulation's artifact set.
type Result struct {
	// Report is the rendered experiment report (banner included).
	Report []byte
	// Metrics is the canonical JSON metrics export — byte-identical to
	// `leakyway -json` for the same template, seed and platform.
	Metrics []byte
	// Trace is the Chrome trace-event export; nil unless requested.
	Trace []byte
	// Progress is the sampled progress history (JSONL of progressEvent
	// lines); the daemon fills it from the execution's recorder, stores
	// it as the "progress" artifact, and replays it over SSE after the
	// job completes. Nil when no samples were taken.
	Progress []byte
	// AssertFailed / AssertTotal summarize the template's assertions.
	AssertFailed int
	AssertTotal  int
}

// Runner executes one accepted submission. The daemon uses EngineRunner;
// tests substitute stubs. The context carries the per-job deadline and is
// cancelled on job cancellation and forced shutdown; implementations must
// return promptly once it is done. prog, when non-nil, should receive
// live progress checkpoints (EngineRunner threads it into the engine
// context); a stub may ignore it.
type Runner func(ctx context.Context, sub Submission, spec *scenario.Spec, prog *telemetry.Progress) (*Result, error)
