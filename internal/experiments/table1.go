package experiments

import (
	"fmt"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table I — specifications of the simulated processors",
		Paper: "Core i7-6700 (Skylake) and i7-7700K (Kaby Lake): 4 cores, 8-way L1, 4-way non-inclusive L2, 16-way shared inclusive LLC",
		Run:   runTable1,
	})
}

func runTable1(ctx *Context) (*Result, error) {
	res := &Result{}
	rows := [][]string{}
	for _, cfg := range ctx.Platforms {
		rows = append(rows,
			[]string{"Platform", cfg.Name},
			[]string{"Num of cores", fmt.Sprintf("%d", cfg.Cores)},
			[]string{"Frequency", fmt.Sprintf("%.1f GHz", cfg.FreqGHz)},
			[]string{"L1", fmt.Sprintf("%d sets x %d ways, private", cfg.L1Sets, cfg.L1Ways)},
			[]string{"L2", fmt.Sprintf("%d sets x %d ways, private, non-inclusive", cfg.L2Sets, cfg.L2Ways)},
			[]string{"LLC", fmt.Sprintf("%d slices x %d sets x %d ways, shared, inclusive", cfg.LLCSlices, cfg.LLCSetsPerSlice, cfg.LLCWays)},
			[]string{"Latency model", fmt.Sprintf("L1 %d / L2 %d / LLC %d / DRAM %d cycles (+timer %d)",
				cfg.Lat.L1Hit, cfg.Lat.L2Hit, cfg.Lat.LLCHit, cfg.Lat.Mem, cfg.Lat.TimerOverhead)},
			[]string{"", ""},
		)
		res.Metric(shortName(cfg)+"/llc_ways", float64(cfg.LLCWays))
		res.Metric(shortName(cfg)+"/cores", float64(cfg.Cores))
	}
	renderTable(ctx, []string{"Parameter", "Value"}, rows)
	return res, nil
}
