package policy

import (
	"testing"
	"testing/quick"
)

func TestTreePLRUBasics(t *testing.T) {
	p := NewTreePLRU()
	s := p.NewSet(4)
	// Touch 0,1,2,3 in order: the victim should be 0 (least recent).
	for w := 0; w < 4; w++ {
		s.OnFill(w, ClassLoad)
	}
	if v := s.Victim(allEvictable); v != 0 {
		t.Fatalf("victim = %d, want 0", v)
	}
	// Re-touch 0: victim moves to the other subtree.
	s.OnHit(0, ClassLoad)
	if v := s.Victim(allEvictable); v == 0 {
		t.Fatal("victim should no longer be way 0 after touching it")
	}
}

func TestTreePLRUMRUNeverVictim(t *testing.T) {
	// Property: the most recently touched way is never the PLRU victim.
	p := NewTreePLRU()
	f := func(ops []uint8) bool {
		s := p.NewSet(8)
		last := -1
		for _, op := range ops {
			w := int(op) % 8
			s.OnHit(w, ClassLoad)
			last = w
		}
		if last < 0 {
			return true
		}
		return s.Victim(allEvictable) != last
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTreePLRURequiresPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ways=6")
		}
	}()
	NewTreePLRU().NewSet(6)
}

func TestTreePLRUFallbackWhenVictimPinned(t *testing.T) {
	p := NewTreePLRU()
	s := p.NewSet(4)
	for w := 0; w < 4; w++ {
		s.OnFill(w, ClassLoad)
	}
	v := s.Victim(allEvictable.Without(0))
	if v == 0 || v == -1 {
		t.Fatalf("victim = %d, want an evictable way != 0", v)
	}
	if v := s.Victim(Mask(0)); v != -1 {
		t.Fatalf("victim with nothing evictable = %d, want -1", v)
	}
}

func TestBitPLRUBasics(t *testing.T) {
	p := NewBitPLRU()
	s := p.NewSet(4)
	s.OnFill(0, ClassLoad)
	s.OnFill(1, ClassLoad)
	// Ways 2,3 have zero bits; first zero-bit way is the victim.
	if v := s.Victim(allEvictable); v != 2 {
		t.Fatalf("victim = %d, want 2", v)
	}
	// Saturation: setting the last bit clears the others.
	s.OnFill(2, ClassLoad)
	s.OnFill(3, ClassLoad)
	snap := s.Snapshot()
	want := []int{0, 0, 0, 1}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("after saturation, bits = %v, want %v", snap, want)
		}
	}
	if v := s.Victim(allEvictable); v != 0 {
		t.Fatalf("victim after saturation = %d, want 0", v)
	}
}

func TestBitPLRUInvalidateClearsBit(t *testing.T) {
	p := NewBitPLRU()
	s := p.NewSet(2)
	s.OnFill(0, ClassLoad)
	s.OnInvalidate(0)
	if s.Snapshot()[0] != 0 {
		t.Fatal("invalidate should clear the MRU bit")
	}
}

func TestLRUExactOrder(t *testing.T) {
	p := NewLRU()
	s := p.NewSet(4)
	for w := 0; w < 4; w++ {
		s.OnFill(w, ClassLoad)
	}
	s.OnHit(0, ClassLoad) // order now 1,2,3,0 (oldest first)
	for _, want := range []int{1, 2, 3} {
		v := s.Victim(allEvictable)
		if v != want {
			t.Fatalf("victim = %d, want %d", v, want)
		}
		s.OnInvalidate(v)
		s.OnFill(v, ClassLoad)
	}
}

func TestLRUVictimIsOldest(t *testing.T) {
	p := NewLRU()
	f := func(ops []uint8) bool {
		const ways = 4
		s := p.NewSet(ways)
		order := []int{} // recency list, oldest first
		for w := 0; w < ways; w++ {
			s.OnFill(w, ClassLoad)
			order = append(order, w)
		}
		for _, op := range ops {
			w := int(op) % ways
			s.OnHit(w, ClassLoad)
			for i, x := range order {
				if x == w {
					order = append(append(order[:i:i], order[i+1:]...), w)
					break
				}
			}
		}
		return s.Victim(allEvictable) == order[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSRRIPBasics(t *testing.T) {
	p := NewSRRIP()
	s := p.NewSet(4)
	for w := 0; w < 4; w++ {
		s.OnFill(w, ClassLoad) // rrpv 2
	}
	s.OnHit(1, ClassLoad) // rrpv 0
	v := s.Victim(allEvictable)
	if v == 1 {
		t.Fatal("hit-promoted way chosen as victim")
	}
	// NTA inserts at distant rrpv: immediately the next victim.
	s2 := p.NewSet(2)
	s2.OnFill(0, ClassLoad)
	s2.OnFill(1, ClassNTA)
	if v := s2.Victim(allEvictable); v != 1 {
		t.Fatalf("victim = %d, want the NTA way 1", v)
	}
}

func TestRandomVictimEvictableOnly(t *testing.T) {
	p := NewRandom(1)
	s := p.NewSet(8)
	counts := make([]int, 8)
	for i := 0; i < 400; i++ {
		v := s.Victim(evenWays)
		if v%2 != 0 {
			t.Fatalf("victim %d is not evictable", v)
		}
		counts[v]++
	}
	// All four evictable ways should be chosen at least once.
	for w := 0; w < 8; w += 2 {
		if counts[w] == 0 {
			t.Errorf("way %d never chosen in 400 draws", w)
		}
	}
	if v := s.Victim(Mask(0)); v != -1 {
		t.Fatalf("victim = %d, want -1", v)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{
		NewQuadAge(), NewQuadAgeCountermeasure(), NewTreePLRU(),
		NewBitPLRU(), NewLRU(), NewSRRIP(), NewRandom(0),
	} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func TestAccessClassString(t *testing.T) {
	want := map[AccessClass]string{
		ClassLoad: "load", ClassNTA: "nta", ClassT0: "t0", ClassHW: "hw",
		AccessClass(99): "unknown",
	}
	for cls, s := range want {
		if cls.String() != s {
			t.Errorf("%d.String() = %q, want %q", cls, cls.String(), s)
		}
	}
}
