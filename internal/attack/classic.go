package attack

import (
	"leakyway/internal/core"
	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
	"leakyway/internal/stats"
)

// ClassicVariant selects one of the classic shared-memory cache attacks the
// paper builds on (Section II-C). They serve as baselines for the
// replacement-state attacks and as regression anchors for the simulator's
// flush timing and inclusion machinery.
type ClassicVariant int

const (
	// FlushReload flushes the shared line each iteration and times a
	// reload to see whether the victim brought it back.
	FlushReload ClassicVariant = iota
	// FlushFlush times the CLFLUSH itself: flushing a cached line is
	// slower than flushing an absent one, so the attacker never issues
	// a demand access to the shared line at all.
	FlushFlush
	// EvictReload replaces the flush with LLC set conflicts, for
	// environments without CLFLUSH.
	EvictReload
)

// String implements fmt.Stringer.
func (v ClassicVariant) String() string {
	switch v {
	case FlushReload:
		return "Flush+Reload"
	case FlushFlush:
		return "Flush+Flush"
	}
	return "Evict+Reload"
}

// ClassicConfig parameterizes a run.
type ClassicConfig struct {
	// Iterations is the number of monitored windows.
	Iterations int
	// Window is the cycle length of a monitoring window.
	Window int64
}

// ClassicResult reports a run.
type ClassicResult struct {
	Variant ClassicVariant
	// IterLatencies is the attacker's per-iteration cost.
	IterLatencies []int64
	// Truth and Detected are per-window ground truth and verdicts.
	Truth, Detected []bool
	// Accuracy is the fraction of windows classified correctly.
	Accuracy float64
	// TargetAccesses counts the attacker's demand accesses to the shared
	// line per run — the Flush+Flush stealth argument is that it needs
	// none.
	TargetAccesses int
}

// RunClassic mounts the chosen classic attack against a windowed victim
// sharing one line with the attacker.
func RunClassic(platformCfg hier.Config, variant ClassicVariant, cfg ClassicConfig, seed int64) ClassicResult {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1000
	}
	if cfg.Window <= 0 {
		// Evict+Reload's conflict-based reset is an order of magnitude
		// slower than CLFLUSH, so its minimum usable window is longer —
		// the very cost asymmetry that motivates the paper's
		// prefetch-based resets.
		if variant == EvictReload {
			cfg.Window = 10_000
		} else {
			cfg.Window = 5000
		}
	}
	m := sim.MustNewMachine(platformCfg, 1<<30, seed)
	attackerAS := m.NewSpace()
	victimAS := m.NewSpace()

	dt, err := attackerAS.Alloc(mem.PageSize)
	if err != nil {
		panic(err)
	}
	if err := victimAS.MapShared(attackerAS, dt, mem.PageSize); err != nil {
		panic(err)
	}
	var ev []mem.VAddr
	if variant == EvictReload {
		ev = core.MustCongruentLines(m, attackerAS, dt, platformCfg.LLCWays)
	}

	const start = int64(50_000)
	pattern := make([]bool, 64)
	rng := newXorshift(uint64(seed)*3 + 5)
	for i := range pattern {
		pattern[i] = rng.next()&1 == 1
	}
	SpawnWindowedVictim(m, 1, victimAS, WindowedVictim{Target: dt, Window: cfg.Window, Start: start, Pattern: pattern})

	res := ClassicResult{Variant: variant}
	res.Truth = make([]bool, cfg.Iterations)
	res.Detected = make([]bool, cfg.Iterations)
	for i := range res.Truth {
		res.Truth[i] = pattern[i%len(pattern)]
	}

	m.Spawn("attacker", 0, attackerAS, func(c *sim.Core) {
		th := core.Calibrate(c, 48)
		// Flush+Flush threshold: between flush-absent and flush-present
		// timings, calibrated empirically.
		var flushTh int64
		if variant == FlushFlush {
			var absent, present []int64
			for i := 0; i < 32; i++ {
				c.Flush(dt)
				c.Fence()
				absent = append(absent, c.TimedFlush(dt))
				c.Load(dt)
				c.Fence()
				present = append(present, c.TimedFlush(dt))
			}
			flushTh = int64((stats.Mean(absent) + stats.Mean(present)) / 2)
		}
		// Reset the line out of every cache before the epoch.
		c.Flush(dt)
		if variant == EvictReload {
			// Pre-own the set so evictions work from iteration one.
			for round := 0; round < 2; round++ {
				for _, va := range ev {
					c.Load(va)
				}
			}
		}
		for it := 0; it < cfg.Iterations; it++ {
			c.WaitUntil(start + int64(it+1)*cfg.Window)
			t0 := c.Now()
			switch variant {
			case FlushReload:
				t := c.TimedLoad(dt)
				res.TargetAccesses++
				res.Detected[it] = !th.IsMiss(t)
				c.Flush(dt)
			case FlushFlush:
				t := c.TimedFlush(dt)
				res.Detected[it] = t > flushTh
			case EvictReload:
				t := c.TimedLoad(dt)
				res.TargetAccesses++
				res.Detected[it] = !th.IsMiss(t)
				// Evict via set conflicts instead of CLFLUSH.
				// The walk order rotates per iteration so every
				// eviction-set line gets its LLC age refreshed
				// over time; the shared line is then the only
				// never-refreshed line in the set and the aging
				// pass reliably selects it.
				for round := 0; round < 2; round++ {
					for k := range ev {
						c.Load(ev[(k+it)%len(ev)])
					}
				}
			}
			res.IterLatencies = append(res.IterLatencies, c.Now()-t0)
		}
	})
	m.Run()

	correct := 0
	for i := range res.Truth {
		if res.Truth[i] == res.Detected[i] {
			correct++
		}
	}
	res.Accuracy = float64(correct) / float64(len(res.Truth))
	return res
}
