package experiments

import (
	"encoding/json"
	"flag"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden metrics snapshot")

const goldenPath = "testdata/golden_metrics_seed42.json"

// Golden tolerances, as documented in EXPERIMENTS.md: a metric passes if
// it is within 35% relative or 0.05 absolute of the snapshot, whichever
// is looser. The suite is bit-deterministic for a fixed seed, so drift
// only appears when an algorithm or its seed derivation changes — the
// tolerance is there to let deliberate, small changes through while
// catching a broken simulator or channel.
const (
	goldenRelTol = 0.35
	goldenAbsTol = 0.05
)

// TestGoldenMetrics regression-checks the quick-mode full suite at seed
// 42 against the committed snapshot. Regenerate with:
//
//	go test ./internal/experiments/ -run TestGoldenMetrics -update
func TestGoldenMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is not short")
	}
	ctx := NewContext(io.Discard)
	ctx.Quick = true
	ctx.Seed = 42
	results, err := RunAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := MetricsMap(results)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(goldenPath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := WriteMetricsJSON(f, results); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden snapshot (run with -update to create): %v", err)
	}
	var want map[string]map[string]float64
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	for _, id := range sortedKeys(want) {
		gm, ok := got[id]
		if !ok {
			t.Errorf("%s: experiment present in golden but did not run", id)
			continue
		}
		for _, k := range sortedKeys(want[id]) {
			w := want[id][k]
			g, ok := gm[k]
			if !ok {
				t.Errorf("%s/%s: metric disappeared", id, k)
				continue
			}
			if diff := math.Abs(g - w); diff > goldenRelTol*math.Abs(w) && diff > goldenAbsTol {
				t.Errorf("%s/%s = %v, golden %v (Δ=%.4g exceeds %d%% rel and %g abs)",
					id, k, g, w, diff, int(100*goldenRelTol), goldenAbsTol)
			}
		}
	}
	for _, id := range sortedKeys(got) {
		if _, ok := want[id]; !ok {
			t.Logf("note: experiment %s has no golden entry (run -update to include it)", id)
		}
	}
}
