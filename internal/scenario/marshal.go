package scenario

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Marshal renders a Spec as the canonical YAML template: fields in schema
// order, absent sections omitted, scalar lists in flow style. The output
// is a pure function of the Spec — byte-stable across runs and Go
// versions — so shipped templates diff cleanly, and Parse(Marshal(s))
// reproduces s exactly (the round-trip property test pins both).
func Marshal(s *Spec) []byte {
	e := &emitter{}
	e.scalar(0, "id", s.ID)
	e.scalar(0, "title", s.Title)
	if s.Paper != "" {
		e.scalar(0, "paper", s.Paper)
	}
	e.scalar(0, "kind", s.Kind)
	if s.Platform != nil {
		e.key(0, "platform")
		e.platform(1, s.Platform)
	}
	if s.Channel != nil {
		e.key(0, "channel")
		e.channel(1, s.Channel)
	}
	if s.Transport != nil {
		e.key(0, "transport")
		t := s.Transport
		if t.Channel != nil {
			e.key(1, "channel")
			e.channel(2, t.Channel)
		}
		e.intp(1, "max_retries", t.MaxRetries)
		e.intp(1, "fer_window", t.FERWindow)
		e.f64p(1, "fer_threshold", t.FERThreshold)
	}
	switch {
	case s.StateWalk != nil:
		e.key(0, "statewalk")
		e.scalar(1, "message", s.StateWalk.Message)
		e.scalar(1, "calibrate_samples", int64(s.StateWalk.CalibrateSamples))
		e.scalar(1, "receiver_ready", s.StateWalk.ReceiverReady)
		e.scalar(1, "phase_step", s.StateWalk.PhaseStep)
	case s.Pipeline != nil:
		e.key(0, "pipeline")
		e.scalar(1, "message", s.Pipeline.Message)
	case s.Sweep != nil:
		e.key(0, "sweep")
		e.scalar(1, "bits", int64(s.Sweep.Bits))
		e.key(1, "channels")
		for _, c := range s.Sweep.Channels {
			e.item(2, "channel", c.Channel)
			e.i64s(3, "intervals", c.Intervals)
		}
	case s.Lanes != nil:
		e.key(0, "lanes")
		e.scalar(1, "bits", int64(s.Lanes.Bits))
		e.intList(1, "lane_counts", s.Lanes.LaneCounts)
		e.i64s(1, "offsets", s.Lanes.Offsets)
		e.scalar(1, "lane_cost", s.Lanes.LaneCost)
	case s.Noise != nil:
		e.key(0, "noise")
		e.scalar(1, "bits", int64(s.Noise.Bits))
		e.i64s(1, "periods", s.Noise.Periods)
		e.scalar(1, "interleave_depth", int64(s.Noise.InterleaveDepth))
	case s.Faults != nil:
		e.key(0, "faults")
		e.scalar(1, "raw_bits", int64(s.Faults.RawBits))
		e.scalar(1, "arq_bits", int64(s.Faults.ARQBits))
		e.scalar(1, "interleave_depth", int64(s.Faults.InterleaveDepth))
		e.key(1, "scenarios")
		for _, sc := range s.Faults.Scenarios {
			e.item(2, "key", sc.Key)
			if len(sc.Faults) > 0 {
				e.key(3, "faults")
				for _, f := range sc.Faults {
					e.item(4, "type", f.Type)
					if f.Role != "" {
						e.scalar(5, "role", f.Role)
					}
					e.nonZero(5, "count", int64(f.Count))
					e.nonZero(5, "min_dur", f.MinDur)
					e.nonZero(5, "max_dur", f.MaxDur)
					e.nonZero(5, "bursts", int64(f.Bursts))
					e.nonZero(5, "walks", int64(f.Walks))
					e.nonZero(5, "gap", f.Gap)
					e.nonZero(5, "ppm", f.PPM)
					e.nonZero(5, "dur", f.Dur)
					e.nonZero(5, "extra", f.Extra)
					e.nonZero(5, "cost", f.Cost)
				}
			}
		}
	case s.Victim != nil:
		e.key(0, "victim")
		e.scalar(1, "program", s.Victim.Program)
		e.scalar(1, "key", s.Victim.Key)
		e.scalar(1, "encryptions", int64(s.Victim.Encryptions))
		e.scalar(1, "window", s.Victim.Window)
		e.scalar(1, "start", s.Victim.Start)
	}
	if len(s.Extract) > 0 {
		e.key(0, "extract")
		for _, x := range s.Extract {
			e.item(1, "name", x.Name)
			e.scalar(2, "type", x.Type)
			if x.Type == "regex" {
				e.scalar(2, "pattern", x.Pattern)
				e.nonZero(2, "group", int64(x.Group))
			} else {
				e.scalar(2, "metric", x.Metric)
			}
		}
	}
	if len(s.Assert) > 0 {
		e.key(0, "assert")
		for _, a := range s.Assert {
			if a.Metric != "" {
				e.item(1, "metric", a.Metric)
			} else {
				e.item(1, "extract", a.Extract)
			}
			e.scalar(2, "op", a.Op)
			e.scalar(2, "value", a.Value)
			if a.Op == "between" {
				e.scalar(2, "max", a.Max)
			}
			if a.Op == "approx" {
				e.scalar(2, "tol", a.Tol)
			}
		}
	}
	return e.b.Bytes()
}

func (e *emitter) platform(ind int, p *PlatformSpec) {
	if p.Base != "" {
		e.scalar(ind, "base", p.Base)
	}
	if p.Name != "" {
		e.scalar(ind, "name", p.Name)
	}
	e.nonZero(ind, "cores", int64(p.Cores))
	if p.FreqGHz != 0 {
		e.scalar(ind, "freq_ghz", p.FreqGHz)
	}
	e.nonZero(ind, "l1_sets", int64(p.L1Sets))
	e.nonZero(ind, "l1_ways", int64(p.L1Ways))
	e.nonZero(ind, "l2_sets", int64(p.L2Sets))
	e.nonZero(ind, "l2_ways", int64(p.L2Ways))
	e.nonZero(ind, "llc_slices", int64(p.LLCSlices))
	e.nonZero(ind, "llc_sets_per_slice", int64(p.LLCSetsPerSlice))
	e.nonZero(ind, "llc_ways", int64(p.LLCWays))
	if p.LLCPolicy != "" {
		e.scalar(ind, "llc_policy", p.LLCPolicy)
	}
	e.boolp(ind, "adjacent_line", p.AdjacentLine)
	e.boolp(ind, "stream_prefetch", p.StreamPrefetch)
	e.boolp(ind, "non_inclusive", p.NonInclusive)
	e.intp(ind, "llc_partition_ways", p.LLCPartitionWays)
}

func (e *emitter) channel(ind int, c *ChannelSpec) {
	e.i64p(ind, "interval", c.Interval)
	e.intp(ind, "sets", c.Sets)
	e.i64p(ind, "sender_offset", c.SenderOffset)
	e.i64p(ind, "receiver_offset", c.ReceiverOffset)
	e.i64p(ind, "protocol_overhead", c.ProtocolOverhead)
	e.i64p(ind, "start", c.Start)
	e.i64p(ind, "noise_period", c.NoisePeriod)
	e.intp(ind, "prime_walks", c.PrimeWalks)
}

type emitter struct {
	b bytes.Buffer
}

const indentStep = "  "

func (e *emitter) indent(n int) {
	for i := 0; i < n; i++ {
		e.b.WriteString(indentStep)
	}
}

// key emits "key:" opening a nested block.
func (e *emitter) key(ind int, key string) {
	e.indent(ind)
	e.b.WriteString(key)
	e.b.WriteString(":\n")
}

// scalar emits "key: value".
func (e *emitter) scalar(ind int, key string, v any) {
	e.indent(ind)
	e.b.WriteString(key)
	e.b.WriteString(": ")
	e.b.WriteString(renderScalar(v))
	e.b.WriteByte('\n')
}

// item emits "- key: value" with the dash at level ind, starting a
// sequence item whose further fields follow at level ind+1 (the column
// of the first key).
func (e *emitter) item(ind int, key string, v any) {
	e.indent(ind)
	e.b.WriteString("- ")
	e.b.WriteString(key)
	e.b.WriteString(": ")
	e.b.WriteString(renderScalar(v))
	e.b.WriteByte('\n')
}

func (e *emitter) nonZero(ind int, key string, v int64) {
	if v != 0 {
		e.scalar(ind, key, v)
	}
}

func (e *emitter) intp(ind int, key string, v *int) {
	if v != nil {
		e.scalar(ind, key, int64(*v))
	}
}

func (e *emitter) i64p(ind int, key string, v *int64) {
	if v != nil {
		e.scalar(ind, key, *v)
	}
}

func (e *emitter) f64p(ind int, key string, v *float64) {
	if v != nil {
		e.scalar(ind, key, *v)
	}
}

func (e *emitter) boolp(ind int, key string, v *bool) {
	if v != nil {
		e.scalar(ind, key, *v)
	}
}

func (e *emitter) i64s(ind int, key string, vs []int64) {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatInt(v, 10)
	}
	e.scalar(ind, key, flow(parts))
}

func (e *emitter) intList(ind int, key string, vs []int) {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(v)
	}
	e.scalar(ind, key, flow(parts))
}

// flow wraps pre-rendered scalars in a flow sequence; the marker type
// tells renderScalar to emit it verbatim.
type flowSeq string

func flow(parts []string) flowSeq {
	return flowSeq("[" + strings.Join(parts, ", ") + "]")
}

func renderScalar(v any) string {
	switch t := v.(type) {
	case flowSeq:
		return string(t)
	case string:
		return renderString(t)
	case bool:
		if t {
			return "true"
		}
		return "false"
	case int64:
		return strconv.FormatInt(t, 10)
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	}
	panic(fmt.Sprintf("scenario: cannot marshal %T", v))
}

// renderString emits a plain scalar when the parser would read it back as
// exactly this string, a double-quoted one otherwise.
func renderString(s string) string {
	if plainSafe(s) {
		return s
	}
	return strconv.Quote(s)
}

func plainSafe(s string) bool {
	if s == "" || s != strings.TrimSpace(s) {
		return false
	}
	// Reparse ambiguity: null/bool/number-looking strings must quote.
	switch s {
	case "null", "~", "true", "false":
		return false
	}
	if looksNumeric(s) {
		return false
	}
	first := s[0]
	switch first {
	case '[', '{', '&', '*', '|', '>', '%', '@', '`', ',', ']', '}', '"', '\'', '-', '?', '!':
		return false
	}
	if strings.Contains(s, " #") || strings.ContainsAny(s, "\n\t") {
		return false
	}
	// A ":" followed by space (or at end) would parse as a key split on
	// the first such line — values are taken verbatim after the key
	// split, so a colon inside a value is fine, but keep flow markers
	// out.
	return true
}
