package policy

// LRU is true least-recently-used replacement, kept as a baseline for
// policy-comparison experiments; real LLCs avoid it for its metadata cost
// (w·log w bits per set, as Section II-B of the paper recounts).
type LRU struct{}

// NewLRU returns the policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements Policy.
func (*LRU) Name() string { return "lru" }

// NewSet implements Policy.
func (*LRU) NewSet(ways int) SetState {
	stamp := make([]int64, ways)
	for i := range stamp {
		stamp[i] = -1
	}
	return &lruSet{stamp: stamp}
}

type lruSet struct {
	clock int64
	stamp []int64 // last-use time per way; -1 = never used
}

func (s *lruSet) touch(way int) {
	s.clock++
	s.stamp[way] = s.clock
}

// Victim implements SetState: oldest evictable way.
func (s *lruSet) Victim(evictable Mask) int {
	best, bestStamp := -1, int64(0)
	for way, st := range s.stamp {
		if !evictable.Has(way) {
			continue
		}
		if best == -1 || st < bestStamp {
			best, bestStamp = way, st
		}
	}
	return best
}

// OnFill implements SetState.
func (s *lruSet) OnFill(way int, _ AccessClass) { s.touch(way) }

// OnHit implements SetState.
func (s *lruSet) OnHit(way int, _ AccessClass) { s.touch(way) }

// OnInvalidate implements SetState.
func (s *lruSet) OnInvalidate(way int) { s.stamp[way] = -1 }

// Reset implements SetState.
func (s *lruSet) Reset() {
	s.clock = 0
	for i := range s.stamp {
		s.stamp[i] = -1
	}
}

// AgeAt implements SetState: recency rank, 0 = most recent.
func (s *lruSet) AgeAt(way int) int {
	rank := 0
	for j := range s.stamp {
		if s.stamp[j] > s.stamp[way] {
			rank++
		}
	}
	return rank
}

// Snapshot implements SetState: recency rank, 0 = most recent.
func (s *lruSet) Snapshot() []int {
	out := make([]int, len(s.stamp))
	for i := range out {
		rank := 0
		for j := range s.stamp {
			if s.stamp[j] > s.stamp[i] {
				rank++
			}
		}
		out[i] = rank
	}
	return out
}
