package channel

import (
	"testing"
	"testing/quick"

	"leakyway/internal/platform"
	"leakyway/internal/sim"
)

func TestHammingRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		bits := BytesToBits(data)
		enc := EncodeHamming74(bits)
		dec := DecodeHamming74(enc)
		for i := range bits {
			if dec[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingCorrectsSingleErrors(t *testing.T) {
	bits := BytesToBits([]byte("hamming test payload"))
	enc := EncodeHamming74(bits)
	// Flip exactly one bit in every codeword, each at a rotating position.
	for i := 0; i+7 <= len(enc); i += 7 {
		enc[i+(i/7)%7] = !enc[i+(i/7)%7]
	}
	dec := DecodeHamming74(enc)
	for i := range bits {
		if dec[i] != bits[i] {
			t.Fatalf("bit %d not corrected", i)
		}
	}
}

func TestHammingRateIs74(t *testing.T) {
	enc := EncodeHamming74(make([]bool, 40))
	if len(enc) != 70 {
		t.Fatalf("encoded 40 bits into %d, want 70", len(enc))
	}
	// Padding: 5 bits pad to 8 -> 14 encoded.
	if got := len(EncodeHamming74(make([]bool, 5))); got != 14 {
		t.Fatalf("5 bits encoded into %d, want 14", got)
	}
}

func TestHammingOverNoisyChannel(t *testing.T) {
	// End to end: a noisy NTP+NTP transmission protected by Hamming(7,4)
	// delivers the payload with far fewer residual errors than raw.
	cfgp := platform.Skylake()
	cfg := DefaultConfig(cfgp.Name, cfgp.FreqGHz)
	cfg.Interval = 1600
	cfg.NoisePeriod = 70_000

	payload := RandomMessage(800, 31)

	mRaw := sim.MustNewMachine(cfgp, 1<<30, 8)
	_, rawBits := RunNTPNTP(mRaw, cfg, payload)
	rawErr := 0
	for i := range payload {
		if rawBits[i] != payload[i] {
			rawErr++
		}
	}

	enc := EncodeHamming74(payload)
	mEnc := sim.MustNewMachine(cfgp, 1<<30, 8)
	_, encBits := RunNTPNTP(mEnc, cfg, enc)
	dec := DecodeHamming74(encBits)
	decErr := 0
	for i := range payload {
		if dec[i] != payload[i] {
			decErr++
		}
	}
	if rawErr == 0 {
		t.Skip("no raw errors at this seed; nothing to correct")
	}
	if decErr >= rawErr {
		t.Fatalf("Hamming did not help: raw %d errors, decoded %d", rawErr, decErr)
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	for _, depth := range []int{1, 2, 7, 49} {
		bits := BytesToBits([]byte("interleaver round trip payload"))
		inter := Interleave(bits, depth)
		deinter := Deinterleave(inter, depth)
		for i := range bits {
			if deinter[i] != bits[i] {
				t.Fatalf("depth %d: bit %d corrupted", depth, i)
			}
		}
	}
}

func TestInterleaveSpreadsBursts(t *testing.T) {
	// A burst of 8 consecutive channel errors must land in 8 distinct
	// Hamming codewords after deinterleaving, so all are corrected.
	msg := RandomMessage(400, 17)
	enc := EncodeHamming74(msg)
	depth := 56 // 8 codewords worth of spread
	inter := Interleave(enc, depth)
	for i := 100; i < 108; i++ {
		inter[i] = !inter[i] // the burst
	}
	dec := DecodeHamming74(Deinterleave(inter, depth))
	for i := range msg {
		if dec[i] != msg[i] {
			t.Fatalf("bit %d not corrected after interleaving", i)
		}
	}
	// Control: without interleaving the same burst defeats the code.
	enc2 := EncodeHamming74(msg)
	for i := 100; i < 108; i++ {
		enc2[i] = !enc2[i]
	}
	dec2 := DecodeHamming74(enc2)
	broken := 0
	for i := range msg {
		if dec2[i] != msg[i] {
			broken++
		}
	}
	if broken == 0 {
		t.Fatal("control: the burst should defeat un-interleaved Hamming")
	}
}
