package channel

import (
	"fmt"

	"leakyway/internal/core"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
	"leakyway/internal/trace"
)

// Reliable ARQ transport over the self-synchronizing NTP+NTP channel.
//
// The raw channel (Section IV) is fast but lossy: preemption, pollution
// bursts, clock drift and timer noise all corrupt bits. This transport
// layers a stop-and-wait ARQ on top of two set-disjoint self-sync lanes —
// a forward lane carrying CRC-8-checksummed data frames and a reverse lane
// carrying ACK/NACK bursts — and recovers a byte-exact message:
//
//   - every frame carries a 4-bit sequence number and a CRC-8/AUTOSAR
//     checksum (HD=4: any ≤3-bit body corruption is detected);
//   - the sender retransmits unacknowledged frames with bounded exponential
//     backoff, so a preempted receiver re-locks on a later copy;
//   - both parties adapt: on a frame-error-rate spike the sender degrades
//     raw → Hamming(7,4) coding and then stretches the slot length, while
//     the receiver re-runs threshold calibration and hard re-primes its
//     lane; the slot estimate itself is re-derived per burst from the
//     preamble, so unilateral slot changes need no side channel;
//   - duplicate frames (a delivered frame whose ACK was lost) are re-ACKed
//     and discarded by sequence number, never delivered twice.

// MinTransportInterval is the smallest slot length the ARQ transport (and
// the underlying self-sync receiver) accepts: below ~2200 cycles on the
// default calibration the post-miss re-prime walk no longer fits inside a
// slot, and the channel wedges rather than degrades.
const MinTransportInterval = 2200

// TransportConfig parameterizes one ARQ transfer.
type TransportConfig struct {
	// Channel supplies the physical-layer parameters: Interval is the
	// initial slot length (the transport may stretch it), Start the
	// sender's private epoch, ProtocolOverhead and NoisePeriod as in the
	// raw channel.
	Channel Config
	// MaxRetries bounds retransmissions per frame; the transfer aborts
	// (Delivered=false) when a frame exhausts them.
	MaxRetries int
	// FERWindow is the number of recent transmission attempts over which
	// the sender estimates the frame error rate.
	FERWindow int
	// FERThreshold is the frame-error rate that triggers a sender
	// recalibration step (coding degrade, then slot stretch).
	FERThreshold float64
}

// DefaultTransportConfig returns calibrated ARQ parameters for a platform.
func DefaultTransportConfig(platformName string, freqGHz float64) TransportConfig {
	cfg := DefaultConfig(platformName, freqGHz)
	cfg.Interval = 2500
	cfg.Sets = 1
	cfg.Start = 100_000
	return TransportConfig{
		Channel:      cfg,
		MaxRetries:   12,
		FERWindow:    6,
		FERThreshold: 0.34,
	}
}

// Validate rejects configurations the transport cannot run reliably.
func (t TransportConfig) Validate() error {
	if err := t.Channel.Validate(); err != nil {
		return err
	}
	if t.Channel.Interval < MinTransportInterval {
		return fmt.Errorf("channel: transport interval %d is below the calibrated re-prime minimum %d",
			t.Channel.Interval, MinTransportInterval)
	}
	if t.MaxRetries < 0 {
		return fmt.Errorf("channel: MaxRetries must be non-negative, got %d", t.MaxRetries)
	}
	if t.FERWindow < 1 {
		return fmt.Errorf("channel: FERWindow must be positive, got %d", t.FERWindow)
	}
	if t.FERThreshold <= 0 || t.FERThreshold > 1 {
		return fmt.Errorf("channel: FERThreshold must be in (0, 1], got %g", t.FERThreshold)
	}
	return nil
}

// TransportReport summarizes one ARQ transfer.
type TransportReport struct {
	Platform    string
	PayloadBits int
	Frames      int
	// Attempts counts data-burst transmissions; Retransmits the attempts
	// beyond the first per frame.
	Attempts    int
	Retransmits int
	AckTimeouts int
	NacksSeen   int
	// SenderRecals counts sender-side degradation steps (coding switch or
	// slot stretch); ReceiverRecals counts receiver threshold/lane
	// recalibrations.
	SenderRecals   int
	ReceiverRecals int
	FinalCoding    Coding
	FinalInterval  int64
	// Delivered is true when the receiver assembled the complete message.
	Delivered bool
	// ResidualErrors counts payload bits that differ after reassembly —
	// zero whenever Delivered, unless a CRC collision slipped through.
	ResidualErrors int
	Cycles         int64
	GoodputKBps    float64
}

// String renders the report in one line.
func (r TransportReport) String() string {
	status := "FAILED"
	if r.Delivered {
		status = "ok"
	}
	return fmt.Sprintf("ARQ %-22s %4d bits %3d frames %3d retx %2d recal coding=%s goodput=%6.2f KB/s residual=%d %s",
		r.Platform, r.PayloadBits, r.Frames, r.Retransmits, r.SenderRecals+r.ReceiverRecals,
		r.FinalCoding, r.GoodputKBps, r.ResidualErrors, status)
}

// LaneEndpoints is one direction of a duplex link: the transmitter's
// signalling line DS, the listener's congruent line DR, and the listener's
// filler lines that keep the set full.
type LaneEndpoints struct {
	DS, DR mem.VAddr
	Filler []mem.VAddr
}

// DuplexEndpoints stages two set-disjoint lanes between an initiator (the
// data sender) and a responder (the data receiver, who acknowledges on the
// reverse lane).
type DuplexEndpoints struct {
	InitAS, RespAS *mem.AddressSpace
	NoiseAS        *mem.AddressSpace
	// Fwd carries data initiator→responder; Rev carries ACKs back.
	Fwd, Rev LaneEndpoints
	// NoiseLines are congruent with both lanes' target sets, for noise
	// daemons and fault pollution.
	NoiseLines []mem.VAddr
}

// SetupDuplex stages a duplex link. The two lanes use distinct line
// offsets within their anchor pages, so they map to different LLC sets and
// never collide with each other.
func SetupDuplex(m *sim.Machine) (*DuplexEndpoints, error) {
	dx := &DuplexEndpoints{
		InitAS:  m.NewSpace(),
		RespAS:  m.NewSpace(),
		NoiseAS: m.NewSpace(),
	}
	ways := m.H.Config().LLCWays
	lane := func(listenAS, sendAS *mem.AddressSpace, lineOff int) (LaneEndpoints, error) {
		var ln LaneEndpoints
		anchor, err := listenAS.Alloc(mem.PageSize)
		if err != nil {
			return ln, err
		}
		ln.DR = anchor + mem.VAddr(lineOff*mem.LineSize)
		tline := listenAS.MustTranslate(ln.DR).Line()
		ds, err := core.CongruentWithLine(m, sendAS, tline, 1)
		if err != nil {
			return ln, err
		}
		ln.DS = ds[0]
		if ln.Filler, err = core.CongruentLines(m, listenAS, ln.DR, ways); err != nil {
			return ln, err
		}
		noise, err := core.CongruentWithLine(m, dx.NoiseAS, tline, 24)
		if err != nil {
			return ln, err
		}
		dx.NoiseLines = append(dx.NoiseLines, noise...)
		return ln, nil
	}
	var err error
	if dx.Fwd, err = lane(dx.RespAS, dx.InitAS, 0); err != nil {
		return nil, err
	}
	if dx.Rev, err = lane(dx.InitAS, dx.RespAS, 1); err != nil {
		return nil, err
	}
	return dx, nil
}

// emitFrame records an ARQ protocol event on the emitting agent's channel
// track; slot carries the frame sequence index (-1 when n/a), val and note
// are kind-specific.
func emitFrame(c *sim.Core, kind string, slot int, val int64, note string) {
	tr := c.Tracer()
	if !tr.On(trace.PkgChannel) {
		return
	}
	e := trace.E("channel", kind, c.Now())
	e.Agent, e.Core = c.AgentName(), c.ID
	e.Slot, e.Val, e.Note = slot, val, note
	tr.Emit(e)
}

var arqDebug = false

func dbg(c *sim.Core, format string, args ...any) {
	if arqDebug {
		fmt.Printf("[%12d] "+format+"\n", append([]any{c.Now()}, args...)...)
	}
}

// burstSlots is the slot count of a burst carrying n payload bits:
// preamble, 2 silence, START, guard, payload, 2 trailing silence.
func burstSlots(n int) int64 { return int64(ssPreamble + 4 + n + 2) }

// txBurst transmits one self-sync burst on ds, starting at the given cycle
// on the transmitter's own slot grid, and returns after the trailing
// silence.
func txBurst(c *sim.Core, ds mem.VAddr, start, interval, overhead int64, bits []bool) {
	slotAt := func(s int64) int64 { return start + s*interval }
	for p := int64(0); p < ssPreamble; p++ {
		c.WaitUntil(slotAt(p))
		c.PrefetchNTA(ds)
		c.Spin(overhead)
	}
	// Slots 8,9: silence. Slot 10: START. Slot 11: guard.
	c.WaitUntil(slotAt(ssPreamble + 2))
	c.PrefetchNTA(ds)
	c.Spin(overhead)
	for i, b := range bits {
		c.WaitUntil(slotAt(int64(ssPreamble + 4 + i)))
		if b {
			c.PrefetchNTA(ds)
		}
		c.Spin(overhead)
	}
	c.WaitUntil(slotAt(burstSlots(len(bits))))
}

// listener tracks the receive side of one lane: threshold, slot estimate,
// and the re-prime machinery of the self-sync receiver.
type listener struct {
	ln       LaneEndpoints
	th       core.Thresholds
	est      int64 // current slot-length estimate
	overhead int64
	// minEst/maxEst bound plausible slot estimates: a "preamble" whose
	// pulse spacing falls outside them is ambient noise masquerading as a
	// burst (e.g. a periodic co-runner), and the lock is rejected.
	minEst, maxEst int64
}

func (r *listener) reprime(c *sim.Core) {
	for _, va := range r.ln.Filler {
		c.Load(va)
	}
	c.PrefetchNTA(r.ln.DR)
}

// hardReprime recovers a wedged lane (a sender line left resident by an
// in-flight collision) by flushing and rebuilding the whole set.
func (r *listener) hardReprime(c *sim.Core) {
	c.Flush(r.ln.DR)
	for _, va := range r.ln.Filler {
		c.Flush(va)
	}
	c.Fence()
	for _, va := range r.ln.Filler {
		c.Load(va)
	}
	c.PrefetchNTA(r.ln.DR)
}

func (r *listener) probe(c *sim.Core) (int64, bool) {
	t := c.TimedPrefetchNTA(r.ln.DR)
	at := c.Now()
	if r.th.IsMiss(t) {
		r.reprime(c)
		return at, true
	}
	return at, false
}

// listen locks onto one burst and reads its bits. lenFor maps the first
// frameModeBits received bits to the burst's total bit count (a fixed
// count for ACK bursts, mode-header-derived for data bursts). It returns
// ok=false when the deadline expires before a lock.
func (r *listener) listen(c *sim.Core, deadline int64, lenFor func(head []bool) int) ([]bool, bool) {
	r.reprime(c)
	probePeriod := max(r.est/8, 150)

	quietRecovers := 0
	for c.Now() < deadline {
		// Phase 1: the preamble — at least 4 consistently spaced pulses
		// followed by the inter-pulse silence. A long quiet spell means a
		// wedged lane: recover with a hard re-prime. If even repeated
		// hard re-primes surface no misses, the decode threshold itself
		// is suspect (e.g. it was calibrated while a timer-noise spike
		// inflated every reading, so real misses now classify as hits):
		// re-derive it from scratch.
		var misses []int64
		med := int64(0)
		lastEvent := c.Now()
		for c.Now() < deadline {
			if at, miss := r.probe(c); miss {
				misses = append(misses, at)
				lastEvent = at
				quietRecovers = 0
			}
			c.Spin(probePeriod)
			if c.Now()-lastEvent > (ssFrame/2)*r.est {
				r.hardReprime(c)
				// Pulses that old belong to no live burst; holding them
				// would skew the next preamble's median.
				misses = nil
				lastEvent = c.Now()
				// Six quiet spells (~half a megacycle at the default
				// slot) is far beyond any protocol turnaround gap, so
				// the threshold itself is implicated.
				if quietRecovers++; quietRecovers >= 6 {
					r.th = core.Calibrate(c, 16)
					r.hardReprime(c)
					quietRecovers = 0
					dbg(c, "L: dead-silence threshold recalibration")
				}
			}
			if len(misses) < 4 {
				continue
			}
			med = medianGap(misses)
			if med > 0 && c.Now()-misses[len(misses)-1] > med*17/10 {
				// Keep only the trailing run of consistently spaced
				// pulses: stragglers from a previous burst are separated
				// from the real preamble by a multi-slot gap.
				run := misses
				for i := len(misses) - 1; i > 0; i-- {
					if misses[i]-misses[i-1] > med*13/10 {
						run = misses[i:]
						break
					}
				}
				if len(run) >= 4 {
					misses = run
					med = medianGap(misses)
					break
				}
				misses = run
			}
		}
		if len(misses) < 4 || med <= 0 {
			return nil, false // deadline expired hunting a preamble
		}
		// Plausibility: pulse spacing far from the negotiated slot length
		// is ambient noise, not a burst. Reject and keep hunting.
		if med < r.minEst || med > r.maxEst {
			misses = nil
			continue
		}

		// Phase 2: the START pulse, due ~3 slots after the last preamble
		// pulse. One arriving much later belongs to something else.
		lastPulse := misses[len(misses)-1]
		var start int64
		for c.Now() < deadline {
			if at, miss := r.probe(c); miss {
				start = at
				break
			}
			c.Spin(probePeriod)
		}
		if start == 0 {
			return nil, false
		}
		if gap := start - lastPulse; gap > 12*med {
			continue // stale lock: restart the hunt from this pulse
		}

		// Slot re-estimation: the span from the first observed pulse to
		// START covers a whole number of slots, recovered by rounding
		// with the median gap. This is how the receiver tracks a sender
		// that stretched its slot length — no side channel needed.
		est := med
		if span := start - misses[0]; span > 0 {
			if slots := (span + med/2) / med; slots > 0 {
				est = span / slots
			}
		}
		if est < r.minEst || est > r.maxEst {
			continue
		}
		r.est = est

		// Phase 3: payload slots, read mid-slot so a post-miss re-prime
		// finishes before the next slot begins. The burst length is
		// learned from the first frameModeBits bits.
		phase := start - probePeriod/2
		readBit := func(i int) bool {
			c.WaitUntil(phase + (2+int64(i))*est + est*2/5)
			_, miss := r.probe(c)
			c.Spin(r.overhead)
			return miss
		}
		bits := make([]bool, 0, frameModeBits)
		for i := 0; i < frameModeBits; i++ {
			bits = append(bits, readBit(i))
		}
		total := lenFor(bits)
		for i := frameModeBits; i < total; i++ {
			bits = append(bits, readBit(i))
		}
		return bits, true
	}
	return nil, false
}

// dataLenFor derives a data burst's length from its mode header; on a
// garbled header it assumes raw (the CRC rejects the burst anyway).
func dataLenFor(head []bool) int {
	mode, err := DecodeFrameMode(head)
	if err != nil {
		mode = CodingRaw
	}
	return FrameWireBits(mode)
}

// RunARQ transfers payload over a duplex link with the ARQ transport.
// Cores: sender 0, receiver 1, noise daemon (if configured) 2. It returns
// the report and the reassembled bits (truncated/padded to the payload
// length for comparison).
func RunARQ(m *sim.Machine, tcfg TransportConfig, payload []bool) (TransportReport, []bool, error) {
	if err := tcfg.Validate(); err != nil {
		return TransportReport{}, nil, err
	}
	if len(payload) == 0 {
		return TransportReport{}, nil, fmt.Errorf("channel: transport payload must be non-empty")
	}
	dx, err := SetupDuplex(m)
	if err != nil {
		return TransportReport{}, nil, err
	}
	return RunARQOn(m, tcfg, dx, payload)
}

// RunARQOn is RunARQ over a pre-staged duplex link, for callers that
// interpose fault injection between setup and transfer.
func RunARQOn(m *sim.Machine, tcfg TransportConfig, dx *DuplexEndpoints, payload []bool) (TransportReport, []bool, error) {
	if err := tcfg.Validate(); err != nil {
		return TransportReport{}, nil, err
	}
	if len(payload) == 0 {
		return TransportReport{}, nil, fmt.Errorf("channel: transport payload must be non-empty")
	}
	cfg := tcfg.Channel
	nFrames := (len(payload) + FramePayloadBits - 1) / FramePayloadBits
	rep := TransportReport{
		Platform:    m.H.Config().Name,
		PayloadBits: len(payload),
		Frames:      nFrames,
	}
	chunk := func(fi int) []bool {
		lo := fi * FramePayloadBits
		return payload[lo:min(lo+FramePayloadBits, len(payload))]
	}

	start := cfg.Start
	if start <= 0 {
		start = 100_000
	}
	// Worst-case attempt: a Hamming data burst, the ACK turnaround, and
	// the maximum backoff, all at the fully stretched slot length.
	attemptSlots := burstSlots(FrameWireBits(CodingHamming)) + burstSlots(AckWireBits()) + 28 + 8*4
	deadline := start + int64(nFrames)*int64(tcfg.MaxRetries+1)*attemptSlots*2*cfg.Interval + 500_000

	var (
		recvBits []bool
		recvDone bool
		doneAt   int64
	)

	m.Spawn("sender", 0, dx.InitAS, func(c *sim.Core) {
		th := core.Calibrate(c, 48)
		ackRx := &listener{ln: dx.Rev, th: th, est: cfg.Interval, overhead: cfg.ProtocolOverhead}
		mode := CodingRaw
		interval := cfg.Interval
		recent, recentFail := 0, 0
		t := start
		for fi := 0; fi < nFrames; fi++ {
			fr := Frame{Seq: uint8(fi % SeqModulus), Last: fi == nFrames-1, Payload: chunk(fi)}
			acked := false
			for attempt := 0; attempt <= tcfg.MaxRetries; attempt++ {
				rep.Attempts++
				if attempt > 0 {
					rep.Retransmits++
				}
				wire := EncodeFrame(fr, mode)
				t = max(t, c.Now()+2*interval)
				dbg(c, "S: tx frame %d attempt %d mode=%v interval=%d at %d", fi, attempt, mode, interval, t)
				emitFrame(c, "frame-tx", fi, int64(attempt), fmt.Sprintf("%v", mode))
				txBurst(c, dx.Fwd.DS, t, interval, cfg.ProtocolOverhead, wire)
				// Listen for the ACK: the receiver turns around within a
				// few slots of the burst's end. The receiver acks at the
				// slot length it measured from this burst, so the
				// plausibility window tracks the current interval.
				ackRx.est = interval
				ackRx.minEst, ackRx.maxEst = interval*3/5, interval*8/5
				ackDeadline := min(c.Now()+(burstSlots(AckWireBits())+28)*interval, deadline)
				good := false
				nacked := false
				if bits, ok := ackRx.listen(c, ackDeadline, func([]bool) int { return AckWireBits() }); ok {
					seqD, okD, errD := DecodeAck(bits)
					dbg(c, "S: ack rx seq=%d ok=%v err=%v (want %d)", seqD, okD, errD, fr.Seq)
					// Any reverse-lane burst — a NACK, a stale ACK, even a
					// garbled one — proves the receiver has finished its
					// transmission and is listening again: retransmit
					// promptly. Only the awaited ACK advances.
					nacked = true
					if seq, ackOK, err := DecodeAck(bits); err == nil {
						if ackOK && seq == fr.Seq {
							good = true
							nacked = false
						} else if !ackOK {
							rep.NacksSeen++
						}
					}
				} else {
					dbg(c, "S: ack timeout frame %d", fi)
					rep.AckTimeouts++
					emitFrame(c, "ack-timeout", fi, 0, "")
				}
				switch {
				case good:
					emitFrame(c, "ack-ok", fi, 0, "")
				case nacked:
					emitFrame(c, "ack-nack", fi, 0, "")
				}
				// Adaptive recalibration: on an FER spike, degrade raw →
				// Hamming first, then stretch the slot length (the
				// receiver re-derives it from the next preamble).
				recent++
				if !good {
					recentFail++
				}
				if recent >= tcfg.FERWindow {
					if float64(recentFail)/float64(recent) >= tcfg.FERThreshold {
						rep.SenderRecals++
						if mode == CodingRaw {
							mode = CodingHamming
							emitFrame(c, "degrade-coding", fi, 0, fmt.Sprintf("%v", mode))
						} else if interval < cfg.Interval*2 {
							interval = min(interval*5/4, cfg.Interval*2)
							emitFrame(c, "degrade-slot", fi, interval, "")
						}
					}
					recent, recentFail = 0, 0
				}
				if good {
					acked = true
					break
				}
				if nacked {
					// A NACK means the receiver is already listening
					// again: retransmit promptly.
					t = c.Now() + 4*interval
				} else {
					// Timeout or garble: an ACK may still be in flight
					// and the receiver mid-transmission. Wait it out, plus
					// exponential backoff, before claiming the lane.
					backoff := int64(1) << min(attempt, 3)
					t = c.Now() + (burstSlots(AckWireBits())+6)*interval + backoff*4*interval
				}
				if c.Now() >= deadline {
					break
				}
			}
			rep.FinalCoding = mode
			rep.FinalInterval = interval
			if !acked || c.Now() >= deadline {
				return
			}
			t = c.Now() + 4*interval
		}
	})

	m.Spawn("receiver", 1, dx.RespAS, func(c *sim.Core) {
		th := core.Calibrate(c, 48)
		dataRx := &listener{
			ln: dx.Fwd, th: th, est: cfg.Interval, overhead: cfg.ProtocolOverhead,
			// The sender may stretch its slot up to 2x the negotiated
			// interval; anything beyond that spacing is noise.
			minEst: cfg.Interval * 3 / 5, maxEst: cfg.Interval * 11 / 4,
		}
		sendAck := func(seq uint8, ok bool) {
			txBurst(c, dx.Rev.DS, c.Now()+2*dataRx.est, dataRx.est, cfg.ProtocolOverhead, EncodeAck(seq, ok))
		}
		expected := 0
		consecFail := 0
		for c.Now() < deadline && !recvDone {
			bits, ok := dataRx.listen(c, deadline, dataLenFor)
			if !ok {
				return // global deadline: transfer failed
			}
			fr, _, err := DecodeFrame(bits)
			dbg(c, "R: frame rx len=%d seq=%d err=%v est=%d (expect %d)", len(bits), fr.Seq, err, dataRx.est, expected%SeqModulus)
			if err != nil {
				emitFrame(c, "frame-rx", -1, 0, "crc-error")
				// Receiver-side recalibration: repeated garble means the
				// threshold or the lane state has gone stale.
				consecFail++
				if consecFail >= 2 {
					dataRx.th = core.Calibrate(c, 32)
					dataRx.hardReprime(c)
					dataRx.est = cfg.Interval
					rep.ReceiverRecals++
					emitFrame(c, "recalibrate", -1, dataRx.th.MissThreshold, "")
					consecFail = 0
				}
				sendAck(uint8(expected%SeqModulus), false)
				continue
			}
			consecFail = 0
			if int(fr.Seq) == expected%SeqModulus {
				emitFrame(c, "frame-rx", int(fr.Seq), 0, "crc-ok")
				recvBits = append(recvBits, fr.Payload...)
				sendAck(fr.Seq, true)
				expected++
				if fr.Last {
					recvDone = true
					doneAt = c.Now()
				}
			} else {
				// A duplicate: its ACK was lost. Re-ACK, don't deliver.
				emitFrame(c, "frame-rx", int(fr.Seq), 0, "duplicate")
				sendAck(fr.Seq, true)
			}
		}
		// Linger briefly re-ACKing duplicates of the final frame, in case
		// the last ACK was lost and the sender is still retrying.
		for recvDone {
			tailDeadline := min(c.Now()+(burstSlots(FrameWireBits(CodingHamming))+40)*dataRx.est, deadline)
			bits, ok := dataRx.listen(c, tailDeadline, dataLenFor)
			if !ok {
				return
			}
			if fr, _, err := DecodeFrame(bits); err == nil {
				sendAck(fr.Seq, true)
			}
		}
	})

	if cfg.NoisePeriod > 0 {
		period := cfg.NoisePeriod
		lines := dx.NoiseLines
		m.SpawnDaemon("noise", 2, dx.NoiseAS, func(c *sim.Core) {
			i := 0
			for {
				gap := period + period/4 - (int64(i%7) * period / 14)
				c.Spin(gap)
				c.Load(lines[i%len(lines)])
				i++
			}
		})
	}
	m.Run()

	// Reassemble: pad losses, truncate the final frame's padding.
	out := make([]bool, len(payload))
	for i := range out {
		if i < len(recvBits) {
			out[i] = recvBits[i]
		}
	}
	for i := range payload {
		if out[i] != payload[i] {
			rep.ResidualErrors++
		}
	}
	rep.Delivered = recvDone
	rep.Cycles = doneAt
	if !recvDone {
		rep.Cycles = deadline
	}
	if rep.Cycles > 0 {
		freqHz := m.H.Config().FreqGHz * 1e9
		seconds := float64(rep.Cycles) / freqHz
		rep.GoodputKBps = float64(len(payload)) / 8 / 1024 / seconds
	}
	return rep, out, nil
}

// SetARQDebug toggles protocol tracing (tests only).
func SetARQDebug(v bool) { arqDebug = v }
