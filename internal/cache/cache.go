// Package cache implements a generic set-associative cache with pluggable
// replacement policy and per-line in-flight (MSHR) windows. It knows nothing
// about levels or inclusion; package hier composes caches into the Intel
// hierarchy the paper targets.
package cache

import (
	"fmt"

	"leakyway/internal/mem"
	"leakyway/internal/policy"
)

// CohState is a private-cache line's coherence state (MESI without the
// I — invalid lines are simply not Valid).
type CohState uint8

// Coherence states.
const (
	CohShared CohState = iota
	CohExclusive
	CohModified
)

// String implements fmt.Stringer.
func (s CohState) String() string {
	switch s {
	case CohShared:
		return "S"
	case CohExclusive:
		return "E"
	case CohModified:
		return "M"
	}
	return "?"
}

// Line is one cache way's contents.
type Line struct {
	Addr  mem.LineAddr
	Valid bool
	Dirty bool
	// Coh is the coherence state; meaningful only in private caches.
	Coh CohState
	// InFlightUntil is the cycle at which the fill that installed this
	// line completes. Until then the line cannot be evicted — the paper
	// relies on this to explain why a single-set NTP+NTP channel must
	// space out its prefetches (Section IV-B2).
	InFlightUntil int64
}

// set pairs the data array with the policy state.
type set struct {
	lines []Line
	state policy.SetState
}

// Config describes one cache.
type Config struct {
	Name string
	Sets int
	Ways int
	Pol  policy.Policy
}

// Stats counts cache events for diagnostics and experiments.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Fills     uint64
	Flushes   uint64
}

// Cache is a single set-associative cache array.
type Cache struct {
	cfg   Config
	sets  []set
	stats Stats
}

// New builds the cache. All sets share one flat preallocated line array
// (each set views its own ways-sized window), so a set scan touches
// contiguous memory and construction costs two allocations, not O(sets).
func New(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache %q: sets=%d ways=%d must be positive", cfg.Name, cfg.Sets, cfg.Ways))
	}
	if cfg.Ways > 64 {
		panic(fmt.Sprintf("cache %q: ways=%d exceeds the 64-way mask limit", cfg.Name, cfg.Ways))
	}
	c := &Cache{cfg: cfg, sets: make([]set, cfg.Sets)}
	backing := make([]Line, cfg.Sets*cfg.Ways)
	for i := range c.sets {
		lo, hi := i*cfg.Ways, (i+1)*cfg.Ways
		c.sets[i] = set{
			lines: backing[lo:hi:hi],
			state: cfg.Pol.NewSet(cfg.Ways),
		}
	}
	return c
}

// Name returns the configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.cfg.Sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Probe looks a line up without touching replacement state. It returns the
// way index and whether the line is present.
func (c *Cache) Probe(setIdx int, la mem.LineAddr) (way int, ok bool) {
	s := &c.sets[setIdx]
	for w := range s.lines {
		if s.lines[w].Valid && s.lines[w].Addr == la {
			return w, true
		}
	}
	return -1, false
}

// Touch records a hit of the given class on a line previously found with
// Probe, updating replacement state.
func (c *Cache) Touch(setIdx, way int, cls policy.AccessClass) {
	c.stats.Hits++
	c.sets[setIdx].state.OnHit(way, cls)
}

// MarkDirty flags the line as modified.
func (c *Cache) MarkDirty(setIdx, way int) { c.sets[setIdx].lines[way].Dirty = true }

// Coh returns the line's coherence state.
func (c *Cache) Coh(setIdx, way int) CohState { return c.sets[setIdx].lines[way].Coh }

// SetCoh updates the line's coherence state.
func (c *Cache) SetCoh(setIdx, way int, s CohState) { c.sets[setIdx].lines[way].Coh = s }

// Evicted describes a line displaced by Fill.
type Evicted struct {
	Addr  mem.LineAddr
	Dirty bool
}

// Fill installs la into the given set with the given access class at time
// now; the fill completes (and the line becomes evictable) at readyAt.
//
// It prefers an invalid way; otherwise it asks the policy for a victim,
// skipping ways whose fills are still in flight at time now. The displaced
// line, if any, is returned. ok is false when every way is in flight and
// nothing can be replaced — the caller treats the fill as dropped, which is
// how the paper describes conflicting in-flight prefetches behaving.
func (c *Cache) Fill(setIdx int, la mem.LineAddr, cls policy.AccessClass, now, readyAt int64) (ev Evicted, evicted, ok bool) {
	return c.FillRestricted(setIdx, la, cls, now, readyAt, policy.AllWays(c.cfg.Ways))
}

// FillRestricted is Fill with a way restriction: only ways in the allowed
// mask may receive the line or be evicted. This is the mechanism behind
// way-partitioned (isolation) LLC defenses: a security domain's fills can
// never displace another domain's lines. The mask form keeps the eviction
// decision allocation-free — no closure is built per fill.
func (c *Cache) FillRestricted(setIdx int, la mem.LineAddr, cls policy.AccessClass, now, readyAt int64, allowed policy.Mask) (ev Evicted, evicted, ok bool) {
	s := &c.sets[setIdx]
	if w, present := c.Probe(setIdx, la); present {
		// Already present (racing fills): treat as a hit refresh.
		s.state.OnHit(w, cls)
		return Evicted{}, false, true
	}
	way := -1
	for w := range s.lines {
		if !s.lines[w].Valid && allowed.Has(w) {
			way = w
			break
		}
	}
	if way < 0 {
		var evictable policy.Mask
		for w := range s.lines {
			if s.lines[w].InFlightUntil <= now {
				evictable |= 1 << uint(w)
			}
		}
		way = s.state.Victim(evictable & allowed)
		if way < 0 {
			return Evicted{}, false, false
		}
		ev = Evicted{Addr: s.lines[way].Addr, Dirty: s.lines[way].Dirty}
		evicted = true
		c.stats.Evictions++
		s.state.OnInvalidate(way)
	}
	s.lines[way] = Line{Addr: la, Valid: true, InFlightUntil: readyAt}
	s.state.OnFill(way, cls)
	c.stats.Fills++
	return ev, evicted, true
}

// Invalidate removes la from the set if present (flush or back-invalidation)
// and reports whether it was present and dirty.
func (c *Cache) Invalidate(setIdx int, la mem.LineAddr) (present, dirty bool) {
	s := &c.sets[setIdx]
	w, ok := c.Probe(setIdx, la)
	if !ok {
		return false, false
	}
	dirty = s.lines[w].Dirty
	s.lines[w] = Line{}
	s.state.OnInvalidate(w)
	c.stats.Flushes++
	return true, dirty
}

// AgeOf returns the replacement-policy metadata value (age/rank) of one
// way, for tracing. It does not mutate policy state and does not allocate.
func (c *Cache) AgeOf(setIdx, way int) int {
	return c.sets[setIdx].state.AgeAt(way)
}

// View returns a copy of the set's lines plus the policy snapshot, for
// tracing and assertions. The two slices are index-aligned.
type View struct {
	Lines []Line
	Meta  []int
}

// ViewSet captures the current contents of one set.
func (c *Cache) ViewSet(setIdx int) View {
	s := &c.sets[setIdx]
	v := View{Lines: make([]Line, len(s.lines)), Meta: s.state.Snapshot()}
	copy(v.Lines, s.lines)
	return v
}

// Occupancy returns how many valid lines the set holds.
func (c *Cache) Occupancy(setIdx int) int {
	n := 0
	for _, l := range c.sets[setIdx].lines {
		if l.Valid {
			n++
		}
	}
	return n
}

// EvictionCandidate reports which line the policy would evict right now
// (ignoring in-flight restrictions) without mutating any policy state: it
// reads the metadata snapshot and applies the age-based scan rule directly
// (first valid way holding the maximum age/rank), which matches the
// quad-age and RRIP policies' behaviour after their aging passes.
func (c *Cache) EvictionCandidate(setIdx int) (mem.LineAddr, bool) {
	s := &c.sets[setIdx]
	maxAge := -1
	for w := range s.lines {
		if m := s.state.AgeAt(w); m > maxAge {
			maxAge = m
		}
	}
	if maxAge < 0 {
		return 0, false
	}
	for w := range s.lines {
		if s.state.AgeAt(w) == maxAge && s.lines[w].Valid {
			return s.lines[w].Addr, true
		}
	}
	return 0, false
}

// Lookup is Probe + Touch for the common hit path; it reports whether the
// access hit.
func (c *Cache) Lookup(setIdx int, la mem.LineAddr, cls policy.AccessClass) bool {
	if w, ok := c.Probe(setIdx, la); ok {
		c.Touch(setIdx, w, cls)
		return true
	}
	c.stats.Misses++
	return false
}
