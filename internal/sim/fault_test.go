package sim

import (
	"strings"
	"testing"

	"leakyway/internal/hier"
	"leakyway/internal/mem"
)

// TestDaemonTeardownPanicSurfaces is the regression test for silent daemon
// deaths: a panic raised inside a daemon *during teardown* (a deferred
// function blowing up while the kill signal unwinds) must surface through
// Run as an AgentError naming the agent, not vanish behind the internal
// killedError.
func TestDaemonTeardownPanicSurfaces(t *testing.T) {
	m := newTestMachine(31)
	m.SpawnDaemon("rotten", 1, nil, func(c *Core) {
		defer func() { panic("teardown bomb") }()
		for {
			c.Spin(50)
		}
	})
	m.Spawn("work", 0, nil, func(c *Core) { c.Spin(500) })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("daemon teardown panic was swallowed")
		}
		ae, ok := r.(*AgentError)
		if !ok {
			t.Fatalf("panic value is %T, want *AgentError", r)
		}
		if ae.Agent != "rotten" {
			t.Errorf("AgentError.Agent = %q, want \"rotten\"", ae.Agent)
		}
		if ae.Value != "teardown bomb" {
			t.Errorf("AgentError.Value = %v, want the original panic value", ae.Value)
		}
		if !strings.Contains(ae.Error(), "rotten") || len(ae.Stack) == 0 {
			t.Errorf("AgentError must carry the agent name and a stack; got %q", ae.Error())
		}
	}()
	m.Run()
}

// TestAgentPanicCarriesName checks the mid-run panic path reports the
// structured error too.
func TestAgentPanicCarriesName(t *testing.T) {
	m := newTestMachine(32)
	m.Spawn("boomer", 0, nil, func(c *Core) {
		c.Spin(10)
		panic("mid-run")
	})
	defer func() {
		ae, ok := recover().(*AgentError)
		if !ok || ae.Agent != "boomer" || ae.Value != "mid-run" {
			t.Fatalf("got %#v, want AgentError{Agent: boomer, Value: mid-run}", ae)
		}
	}()
	m.Run()
}

func TestSchedulePreemptStallsAgent(t *testing.T) {
	m := newTestMachine(33)
	m.SyncSlack = 0
	var fired []string
	m.FaultNotify = func(agent, kind string, at, detail, dur int64) {
		fired = append(fired, agent+"/"+kind)
	}
	m.SchedulePreempt("victim", 1000, 5000) // staged before spawn
	var end int64
	m.Spawn("victim", 0, nil, func(c *Core) {
		for i := 0; i < 20; i++ {
			c.Spin(100)
		}
		end = c.Now()
	})
	m.Run()
	// 20×100 cycles of work plus the 5000-cycle stall.
	if end != 2000+5000 {
		t.Fatalf("victim finished at %d, want %d", end, 2000+5000)
	}
	if len(fired) != 1 || fired[0] != "victim/"+FaultPreempt {
		t.Fatalf("fired = %v, want one victim preempt", fired)
	}
}

func TestScheduleMigrateChangesCore(t *testing.T) {
	m := newTestMachine(34)
	var before, after hier.Level
	m.ScheduleMigrate("mover", 500, 1, 0)
	m.Spawn("mover", 0, nil, func(c *Core) {
		buf := c.Alloc(mem.PageSize)
		c.Load(buf)                // DRAM fill on core 0
		before = c.Load(buf).Level // L1 hit on core 0
		c.Spin(1000)               // crosses the migration point
		after = c.Load(buf).Level  // core 1's private caches are cold
	})
	m.Run()
	if before != hier.LevelL1 {
		t.Fatalf("pre-migration reload level = %v, want L1", before)
	}
	if after == hier.LevelL1 {
		t.Fatalf("post-migration reload still hit L1; migration did not switch cores")
	}
}

func TestClockDriftSkewsPerceivedTime(t *testing.T) {
	m := newTestMachine(35)
	m.SyncSlack = 0
	m.SetClockDrift("fast", 1000) // +1000 ppm: 1 extra cycle per 1000
	var perceived, wake int64
	m.Spawn("fast", 0, nil, func(c *Core) {
		c.Spin(100_000)
		perceived = c.Now()
		c.WaitUntil(300_000)
		wake = c.Now()
	})
	var global int64
	m.Spawn("ref", 1, nil, func(c *Core) {
		c.WaitUntil(600_000) // outlives the drifting agent
		global = c.Now()
	})
	m.Run()
	if perceived != 100_100 {
		t.Fatalf("perceived clock after 100k cycles at +1000ppm = %d, want 100100", perceived)
	}
	if wake < 300_000 {
		t.Fatalf("WaitUntil woke at perceived %d, before its target", wake)
	}
	if global != 600_000 {
		t.Fatalf("undrifted agent clock = %d, want 600000", global)
	}
}

func TestTimerSpikeAddsJitterInWindow(t *testing.T) {
	cfg := testConfig()
	cfg.Lat.L1Jit, cfg.Lat.TimerJit = 0, 0
	cfg.Lat.MemJit, cfg.Lat.LLCJit, cfg.Lat.L2Jit = 0, 0, 0
	m := MustNewMachine(cfg, 1<<24, 36)
	m.ScheduleTimerSpike("meas", 1000, 100_000, 500, 777)
	spikes := 0
	m.FaultNotify = func(agent, kind string, at, detail, dur int64) {
		if kind == FaultTimerSpike {
			spikes++
		}
	}
	clean := cfg.Lat.L1Hit + cfg.Lat.TimerOverhead
	var inWindow []int64
	m.Spawn("meas", 0, nil, func(c *Core) {
		buf := c.Alloc(mem.PageSize)
		c.Load(buf)
		if t0 := c.TimedLoad(buf); t0 != clean { // before the window
			t.Errorf("pre-window timed load = %d, want %d", t0, clean)
		}
		c.Spin(2000)
		for i := 0; i < 16; i++ {
			inWindow = append(inWindow, c.TimedLoad(buf))
		}
	})
	m.Run()
	saw := false
	for _, v := range inWindow {
		if v < clean || v > clean+500 {
			t.Fatalf("in-window timed load = %d outside [%d, %d]", v, clean, clean+500)
		}
		if v != clean {
			saw = true
		}
	}
	if !saw {
		t.Error("timer spike never perturbed a measurement")
	}
	if spikes != 1 {
		t.Errorf("spike windows fired = %d, want 1 notification per window", spikes)
	}
}
