package mem

import (
	"testing"
	"testing/quick"
)

func TestLineArithmetic(t *testing.T) {
	cases := []struct {
		pa   PAddr
		line LineAddr
		off  uint64
	}{
		{0, 0, 0},
		{63, 0, 63},
		{64, 1, 0},
		{4096, 64, 0},
		{0xdeadbeef, 0xdeadbeef >> 6, 0xdeadbeef & 63},
	}
	for _, c := range cases {
		if got := c.pa.Line(); got != c.line {
			t.Errorf("PAddr(%#x).Line() = %#x, want %#x", uint64(c.pa), uint64(got), uint64(c.line))
		}
		if got := c.pa.Offset(); got != c.off {
			t.Errorf("PAddr(%#x).Offset() = %d, want %d", uint64(c.pa), got, c.off)
		}
	}
}

func TestLineRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		la := LineAddr(raw >> LineBits) // keep in range
		return la.PAddr().Line() == la
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameConsistency(t *testing.T) {
	f := func(raw uint64) bool {
		pa := PAddr(raw)
		return pa.Frame() == pa.Line().Frame()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVAddrHelpers(t *testing.T) {
	v := VAddr(0x12345)
	if v.Page() != 0x12 {
		t.Errorf("Page() = %#x, want 0x12", v.Page())
	}
	if v.PageOffset() != 0x345 {
		t.Errorf("PageOffset() = %#x, want 0x345", v.PageOffset())
	}
	if v.LineIndex() != 0x345>>6 {
		t.Errorf("LineIndex() = %d, want %d", v.LineIndex(), 0x345>>6)
	}
	if v.AlignLine() != 0x12340 {
		t.Errorf("AlignLine() = %#x, want 0x12340", uint64(v.AlignLine()))
	}
	if v.AlignPage() != 0x12000 {
		t.Errorf("AlignPage() = %#x, want 0x12000", uint64(v.AlignPage()))
	}
}

func TestLines(t *testing.T) {
	ls := Lines(VAddr(0x1000), 4*LineSize)
	if len(ls) != 4 {
		t.Fatalf("len = %d, want 4", len(ls))
	}
	for i, l := range ls {
		want := VAddr(0x1000 + i*LineSize)
		if l != want {
			t.Errorf("Lines[%d] = %#x, want %#x", i, uint64(l), uint64(want))
		}
	}
}
