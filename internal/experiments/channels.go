package experiments

import (
	"fmt"

	"leakyway/internal/channel"
	"leakyway/internal/core"
	"leakyway/internal/hier"
	"leakyway/internal/sim"
	"leakyway/internal/trace"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Figure 6 — LLC set states during NTP+NTP transmission",
		Paper: "dr is installed as the eviction candidate; a sent '1' replaces it with ds; the receiver's timed prefetch reads the bit and resets the set",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Figure 7 — two-set pipelined NTP+NTP schedule",
		Paper: "sender and receiver alternate sets; the receiver always detects the bit sent one iteration earlier",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8 — channel capacity and bit error rate vs raw transmission rate",
		Paper: "BER stays low until a knee, then capacity collapses; NTP+NTP peaks ≈302/275 KB/s (SKL/KBL), Prime+Probe ≈86/81 KB/s",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Table II — maximum channel capacities",
		Paper: "NTP+NTP 302 (SKL) / 275 (KBL) KB/s; Prime+Probe 86 / 81 KB/s",
		Run:   runTable2,
	})
}

func runFig6(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	m := sim.MustNewMachine(cfg, 1<<30, ctx.Seed)
	m.SetTracer(ctx.Tracer(shortName(cfg)))
	ep, err := channel.Setup(m, 1, 0)
	if err != nil {
		return nil, err
	}
	tr := core.NewTrace()
	var got1, got0 bool

	recvReady := int64(30_000)
	sent1 := recvReady + 5_000
	read1 := sent1 + 5_000
	idle0 := read1 + 5_000
	read0 := idle0 + 5_000

	m.Spawn("sender", 0, ep.SenderAS, func(c *sim.Core) {
		tr.Label(c, ep.DS[0], "ds")
		c.WaitUntil(sent1)
		c.PrefetchNTA(ep.DS[0])
		tr.Snap(m, c, ep.DS[0], "sender prefetches ds to send '1'")
		c.WaitUntil(idle0)
		tr.Snap(m, c, ep.DS[0], "sender stays idle to send '0'")
	})
	m.Spawn("receiver", 1, ep.ReceiverAS, func(c *sim.Core) {
		th := core.Calibrate(c, 48)
		tr.Label(c, ep.DR[0], "dr")
		for _, va := range ep.Filler[0] {
			c.Load(va)
		}
		c.PrefetchNTA(ep.DR[0])
		tr.Snap(m, c, ep.DR[0], "receiver prefetches dr to prepare the channel")
		c.WaitUntil(read1)
		t := c.TimedPrefetchNTA(ep.DR[0])
		got1 = th.IsMiss(t)
		tr.Snap(m, c, ep.DR[0], fmt.Sprintf("receiver prefetches dr: %d cycles -> reads '1'", t))
		c.WaitUntil(read0)
		t = c.TimedPrefetchNTA(ep.DR[0])
		got0 = th.IsMiss(t)
		tr.Snap(m, c, ep.DR[0], fmt.Sprintf("receiver prefetches dr: %d cycles -> reads '0'", t))
	})
	m.Run()

	ctx.Printf("%s", tr.Render())
	ok := 0.0
	if got1 && !got0 {
		ok = 1
	}
	ctx.Printf("decoded: first bit=%v second bit=%v (want true,false)\n", got1, got0)
	res.Metric("state_walk_correct", ok)
	return res, nil
}

func runFig7(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	ccfg := channel.DefaultConfig(cfg.Name, cfg.FreqGHz)
	ccfg.NoisePeriod = 0
	msg := []bool{true, false, true, true, false, true, false, false}
	m := sim.MustNewMachine(cfg, 1<<30, ctx.Seed)
	m.SetTracer(ctx.Tracer(shortName(cfg)))
	rep, recv := channel.RunNTPNTP(m, ccfg, msg)

	ctx.Printf("two-set schedule: sender transmits bit i on set i%%2 at iteration i;\n")
	ctx.Printf("the receiver reads bit i from set i%%2 one iteration later.\n\n")
	rows := [][]string{}
	for i, b := range msg {
		rows = append(rows, []string{
			fmt.Sprintf("T=%d", i),
			fmt.Sprintf("set %d", i%2),
			fmt.Sprintf("sends %v", bit(b)),
			fmt.Sprintf("reads %v (bit %d)", bit(recv[i]), i),
		})
	}
	renderTable(ctx, []string{"iteration", "LLC set", "sender", "receiver (next iteration)"}, rows)
	ctx.Printf("errors: %d/%d\n", rep.Errors, rep.Bits)
	res.Metric("pipeline_errors", float64(rep.Errors))
	return res, nil
}

func bit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// channelGrids returns the sweep intervals per channel, scaled around the
// knees.
func ntpIntervals() []int64 {
	return []int64{900, 1100, 1300, 1500, 1800, 2200, 2800, 3600, 5000, 8000}
}

func ppIntervals() []int64 {
	return []int64{4000, 5000, 6000, 6500, 7000, 8000, 9000, 11000, 14000, 20000}
}

func runFig8(ctx *Context) (*Result, error) {
	res := &Result{}
	bits := ctx.Trials(2000)
	err := ctx.EachPlatform(func(sub *Context, cfg hier.Config) error {
		base := channel.DefaultConfig(cfg.Name, cfg.FreqGHz)
		// Per-sweep-point trace labels: interval values are part of the
		// label so streams sort (and export) independently of scheduling.
		tf := func(name string, ivs []int64) func(i int) *trace.Tracer {
			if sub.Trace == nil {
				return nil
			}
			return func(i int) *trace.Tracer {
				return sub.Tracer(name, fmt.Sprintf("interval-%05d", ivs[i]))
			}
		}
		ntpIvs, ppIvs := ntpIntervals(), ppIntervals()
		ntp := channel.SweepTraced(cfg, channel.RunNTPNTP, base, ntpIvs, bits, sub.SeedFor("ntpntp"), sub.Parallel, tf("ntpntp", ntpIvs))
		pp := channel.SweepTraced(cfg, channel.RunPrimeProbe, base, ppIvs, bits, sub.SeedFor("primeprobe"), sub.Parallel, tf("primeprobe", ppIvs))
		for _, sw := range []channel.SweepResult{ntp, pp} {
			sub.Printf("\n%s — %s\n", sw.Channel, sw.Platform)
			rows := [][]string{}
			for _, p := range sw.Points {
				rows = append(rows, []string{
					fmt.Sprintf("%d", p.Interval),
					fmt.Sprintf("%.1f", p.RawRateKBps),
					fmt.Sprintf("%.2f%%", 100*p.BER),
					fmt.Sprintf("%.1f", p.CapacityKBps),
				})
			}
			renderTable(sub, []string{"interval (cyc)", "raw rate (KB/s)", "BER", "capacity (KB/s)"}, rows)
		}
		np, pp2 := ntp.Peak(), pp.Peak()
		sub.Printf("\npeaks on %s: NTP+NTP %.1f KB/s vs Prime+Probe %.1f KB/s (%.1fx)\n",
			cfg.Name, np.CapacityKBps, pp2.CapacityKBps, np.CapacityKBps/pp2.CapacityKBps)
		res.Metric(shortName(cfg)+"/ntpntp_peak_kbps", np.CapacityKBps)
		res.Metric(shortName(cfg)+"/primeprobe_peak_kbps", pp2.CapacityKBps)
		return nil
	})
	return res, err
}

func runTable2(ctx *Context) (*Result, error) {
	res := &Result{}
	bits := ctx.Trials(2000)
	paper := map[string][2]float64{
		"skylake":  {302, 86},
		"kabylake": {275, 81},
	}
	// The sweeps render nothing, so the per-platform rows can be computed
	// concurrently and assembled into one table afterwards.
	type peaks struct{ ntp, pp float64 }
	byPlatform := make([]peaks, len(ctx.Platforms))
	err := ctx.EachPlatform(func(sub *Context, cfg hier.Config) error {
		base := channel.DefaultConfig(cfg.Name, cfg.FreqGHz)
		ntp := channel.SweepPar(cfg, channel.RunNTPNTP, base, []int64{1200, 1300, 1500, 1800, 2000}, bits, sub.SeedFor("ntpntp"), sub.Parallel).Peak()
		pp := channel.SweepPar(cfg, channel.RunPrimeProbe, base, []int64{6500, 7000, 8000, 9000}, bits, sub.SeedFor("primeprobe"), sub.Parallel).Peak()
		for i := range ctx.Platforms {
			if ctx.Platforms[i].Name == cfg.Name {
				byPlatform[i] = peaks{ntp.CapacityKBps, pp.CapacityKBps}
			}
		}
		res.Metric(shortName(cfg)+"/ntpntp_peak_kbps", ntp.CapacityKBps)
		res.Metric(shortName(cfg)+"/primeprobe_peak_kbps", pp.CapacityKBps)
		return nil
	})
	if err != nil {
		return res, err
	}
	rows := [][]string{}
	for i, cfg := range ctx.Platforms {
		p := paper[shortName(cfg)]
		rows = append(rows,
			[]string{cfg.Name, "NTP+NTP", fmt.Sprintf("%.0f KB/s", byPlatform[i].ntp), fmt.Sprintf("%.0f KB/s", p[0])},
			[]string{cfg.Name, "Prime+Probe", fmt.Sprintf("%.0f KB/s", byPlatform[i].pp), fmt.Sprintf("%.0f KB/s", p[1])},
		)
	}
	renderTable(ctx, []string{"platform", "channel", "measured capacity", "paper"}, rows)
	return res, nil
}

// quietPlatform strips latency jitter (useful for deterministic traces).
func quietPlatform(cfg hier.Config) hier.Config {
	cfg.Lat.L1Jit, cfg.Lat.L2Jit, cfg.Lat.LLCJit, cfg.Lat.MemJit = 0, 0, 0, 0
	cfg.Lat.FlushJit, cfg.Lat.TimerJit = 0, 0
	return cfg
}
