// Command daemonsmoke is the end-to-end robustness gate for leakywayd.
// It drives the real daemon binary over real HTTP and real signals and
// proves the three properties the service exists for:
//
//  1. an identical resubmission is a cache hit (no re-simulation);
//  2. SIGTERM drains — every accepted job completes and the process
//     exits 0;
//  3. SIGKILL loses nothing — a restart from the same data directory
//     recovers the journalled job and produces byte-identical metrics.
//
// It also exercises the observability surface: /metricsz must scrape as
// Prometheus text and the per-job SSE stream must deliver at least one
// progress frame before the done frame.
//
// Run via `make daemon-smoke`, which builds the binary and passes -bin.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"
)

var (
	bin      = flag.String("bin", "", "path to the leakywayd binary (required)")
	template = flag.String("template", "templates/fig6.yaml", "scenario template to submit")
	chaos    = flag.Bool("chaos", false, "run the disk-chaos phase instead: degraded-mode entry/exit under injected fsync failure plus quota-driven eviction")
)

func main() {
	flag.Parse()
	if *bin == "" {
		fatalf("-bin is required")
	}
	tmpl, err := os.ReadFile(*template)
	if err != nil {
		fatalf("template: %v", err)
	}

	if *chaos {
		phaseChaos(string(tmpl))
		fmt.Println("chaos-smoke: degraded-mode entry/exit, quota eviction and post-outage drain all verified")
		return
	}

	m1 := phaseDrain(string(tmpl))
	m2 := phaseCrashRecovery(string(tmpl))
	if !bytes.Equal(m1, m2) {
		fatalf("metrics diverge: drained run vs crash-recovered run\n--- drained ---\n%s\n--- recovered ---\n%s", m1, m2)
	}
	fmt.Println("daemon-smoke: cache-hit, drain and crash-recovery all verified; metrics byte-identical")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "daemonsmoke: "+format+"\n", args...)
	os.Exit(1)
}

// daemon wraps one running leakywayd process.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// The daemon logs via slog's text handler; the listen line carries the
// bound address as an addr=... attribute.
var listenRe = regexp.MustCompile(`msg=listening addr=(\S+)`)

// startDaemon launches the binary on an ephemeral port and scrapes the
// bound address from its log output.
func startDaemon(dataDir string, extra ...string) *daemon {
	args := append([]string{"-addr", "127.0.0.1:0", "-data", dataDir}, extra...)
	cmd := exec.Command(*bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		fatalf("start %s: %v", *bin, err)
	}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(os.Stderr, "  [daemon]", line)
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()

	select {
	case addr := <-addrCh:
		return &daemon{cmd: cmd, base: "http://" + addr}
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		fatalf("daemon never reported its listen address")
		return nil
	}
}

// wait returns the daemon's exit code.
func (d *daemon) wait() int {
	err := d.cmd.Wait()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	fatalf("wait: %v", err)
	return -1
}

type jobView struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Status string `json:"status"`
	Error  string `json:"error"`
}

// submit posts one job and returns the parsed view plus the X-Cache
// header; wantStatus guards the HTTP status.
func (d *daemon) submit(tmpl string, seed int64, wantStatus int) (jobView, string) {
	body, _ := json.Marshal(map[string]any{
		"template": tmpl,
		"filename": "fig6.yaml",
		"seed":     seed,
		"quick":    true,
	})
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		fatalf("submit: status %d, want %d: %s", resp.StatusCode, wantStatus, data)
	}
	var v jobView
	if err := json.Unmarshal(data, &v); err != nil {
		fatalf("submit response: %v (%s)", err, data)
	}
	return v, resp.Header.Get("X-Cache")
}

// awaitDone polls a job until it reaches done.
func (d *daemon) awaitDone(id string) {
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(d.base + "/v1/jobs/" + id)
		if err != nil {
			fatalf("poll %s: %v", id, err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var v jobView
		json.Unmarshal(data, &v)
		switch v.Status {
		case "done":
			return
		case "failed", "canceled":
			fatalf("job %s reached %q: %s", id, v.Status, v.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fatalf("job %s never completed", id)
}

// artifact fetches one artifact's bytes.
func (d *daemon) artifact(id, name string) []byte {
	resp, err := http.Get(d.base + "/v1/jobs/" + id + "/artifacts/" + name)
	if err != nil {
		fatalf("artifact %s/%s: %v", id, name, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		fatalf("artifact %s/%s: status %d: %s", id, name, resp.StatusCode, data)
	}
	return data
}

// watchEvents subscribes to a job's SSE stream and returns the number of
// progress frames delivered before the done frame.
func (d *daemon) watchEvents(id string) int {
	resp, err := http.Get(d.base + "/v1/jobs/" + id + "/events")
	if err != nil {
		fatalf("events %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		fatalf("events %s: status %d", id, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		fatalf("events %s: content type %q", id, ct)
	}
	progress := 0
	var event string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			event = v
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		switch event {
		case "progress":
			progress++
		case "done":
			return progress
		}
	}
	fatalf("events %s: stream ended without a done frame: %v", id, sc.Err())
	return 0
}

// scrapeMetrics asserts /metricsz serves valid-looking Prometheus text
// exposition and contains the named sample family.
func (d *daemon) scrapeMetrics(wantFamily string) {
	resp, err := http.Get(d.base + "/metricsz")
	if err != nil {
		fatalf("metricsz: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		fatalf("metricsz: status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		fatalf("metricsz: content type %q, want Prometheus text 0.0.4", ct)
	}
	if !strings.Contains(string(data), wantFamily) {
		fatalf("metricsz: no %s family in scrape:\n%s", wantFamily, data)
	}
}

// submitRaw posts one job and returns the HTTP status, the Retry-After
// header and the body, without fataling on any status.
func (d *daemon) submitRaw(tmpl string, seed int64) (int, string, string) {
	body, _ := json.Marshal(map[string]any{
		"template": tmpl,
		"filename": "fig6.yaml",
		"seed":     seed,
		"quick":    true,
	})
	resp, err := http.Post(d.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Retry-After"), string(data)
}

// healthz returns the endpoint's HTTP status and decoded body.
func (d *daemon) healthz() (int, map[string]any) {
	resp, err := http.Get(d.base + "/v1/healthz")
	if err != nil {
		fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var body map[string]any
	json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body
}

// metricValue scrapes /metricsz and returns one unlabeled sample's value.
func (d *daemon) metricValue(name string) float64 {
	resp, err := http.Get(d.base + "/metricsz")
	if err != nil {
		fatalf("metricsz: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(data), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			var f float64
			fmt.Sscanf(v, "%g", &f)
			return f
		}
	}
	fatalf("metricsz: no %s sample in scrape", name)
	return 0
}

// phaseChaos drives the daemon through a disk outage and a store-quota
// squeeze: the injected journal-fsync failure must flip it into degraded
// mode (503 + Retry-After on admissions, healthz reporting the reason)
// while artifact reads keep working; once the fault burns out, the probe
// must restore admissions; unique-seed churn against a tiny quota must
// evict old entries while every job still completes; and the daemon must
// still drain cleanly on SIGTERM.
func phaseChaos(tmpl string) {
	dir, err := os.MkdirTemp("", "leakywayd-chaos-")
	if err != nil {
		fatalf("tempdir: %v", err)
	}
	defer os.RemoveAll(dir)

	d := startDaemon(filepath.Join(dir, "data"),
		"-chaos-fsync-fail", "40",
		"-store-quota-bytes", "16384",
		"-probe-interval", "100ms",
	)
	defer d.cmd.Process.Kill()

	// The first admission hits the dead fsync: the accept cannot be made
	// durable, so the daemon must refuse it and enter degraded mode.
	status, retryAfter, body := d.submitRaw(tmpl, 1)
	if status != http.StatusServiceUnavailable {
		fatalf("submit during fsync outage: status %d, want 503: %s", status, body)
	}
	if retryAfter == "" {
		fatalf("degraded 503 carries no Retry-After header")
	}
	hs, hb := d.healthz()
	if hs != http.StatusServiceUnavailable || hb["status"] != "degraded" {
		fatalf("healthz during outage: %d %v, want 503/degraded", hs, hb)
	}
	if r, _ := hb["reason"].(string); r == "" {
		fatalf("degraded healthz reports no reason: %v", hb)
	}
	fmt.Println("chaos-smoke: fsync outage refused admission with 503 + Retry-After, healthz degraded(reason)")

	// The fault burns out after a fixed number of fsyncs; the probe loop
	// must notice and resume admissions.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if hs, hb := d.healthz(); hs == http.StatusOK && hb["status"] == "ok" {
			break
		}
		if time.Now().After(deadline) {
			fatalf("daemon never exited degraded mode after the fault cleared")
		}
		time.Sleep(100 * time.Millisecond)
	}
	if got := d.metricValue("leakywayd_degraded_entered_total"); got < 1 {
		fatalf("degraded_entered_total %.0f after an outage, want >= 1", got)
	}
	fmt.Println("chaos-smoke: probe cleared degraded mode once the fault burned out")

	// Unique-seed churn against the 16KiB quota: every job completes and
	// serves its artifacts, while older entries are evicted to hold the
	// quota.
	for i := int64(0); i < 12; i++ {
		v, _ := d.submit(tmpl, 100+i, http.StatusAccepted)
		d.awaitDone(v.ID)
		d.artifact(v.ID, "metrics")
	}
	if got := d.metricValue("leakywayd_store_evictions_total"); got < 1 {
		fatalf("12 unique jobs under a 16KiB quota evicted nothing")
	}
	if got := d.metricValue("leakywayd_store_bytes"); got > 16384 {
		fatalf("store at %.0f bytes, quota 16384", got)
	}
	fmt.Println("chaos-smoke: quota-driven eviction kept the store under budget with all jobs completing")

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fatalf("SIGTERM: %v", err)
	}
	if code := d.wait(); code != 0 {
		fatalf("daemon exited %d after SIGTERM, want 0", code)
	}
}

// phaseDrain proves cache-hit resubmission and SIGTERM drain, returning
// the metrics bytes of the seed-42 run for cross-phase comparison.
func phaseDrain(tmpl string) []byte {
	dir, err := os.MkdirTemp("", "leakywayd-smoke-a-")
	if err != nil {
		fatalf("tempdir: %v", err)
	}
	defer os.RemoveAll(dir)

	d := startDaemon(filepath.Join(dir, "data"))
	defer d.cmd.Process.Kill()

	// First submission simulates. Ride its SSE stream while it runs: the
	// stream must deliver at least one progress frame before done.
	j1, cache := d.submit(tmpl, 42, http.StatusAccepted)
	if cache != "miss" {
		fatalf("first submission X-Cache %q, want miss", cache)
	}
	if n := d.watchEvents(j1.ID); n < 1 {
		fatalf("SSE stream for %s delivered %d progress frames before done, want >= 1", j1.ID, n)
	}
	fmt.Println("daemon-smoke: SSE stream delivered progress before completion")
	d.awaitDone(j1.ID)
	metrics := d.artifact(j1.ID, "metrics")
	if !json.Valid(metrics) {
		fatalf("metrics artifact is not valid JSON")
	}
	d.scrapeMetrics("leakywayd_jobs_total")
	fmt.Println("daemon-smoke: first run completed, metrics fetched, /metricsz scraped")

	// Identical resubmission must be served from the store.
	j2, cache := d.submit(tmpl, 42, http.StatusOK)
	if cache != "hit" {
		fatalf("resubmission X-Cache %q, want hit", cache)
	}
	if j2.Key != j1.Key {
		fatalf("resubmission key %s differs from %s", j2.Key, j1.Key)
	}
	fmt.Println("daemon-smoke: resubmission served from cache")

	// Queue one more job, then SIGTERM: the drain must complete it and
	// the process must exit 0.
	j3, _ := d.submit(tmpl, 43, http.StatusAccepted)
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fatalf("SIGTERM: %v", err)
	}
	if code := d.wait(); code != 0 {
		fatalf("daemon exited %d after SIGTERM, want 0", code)
	}
	// The drained job's result must be on disk (entry dir named by key).
	entry := filepath.Join(dir, "data", "store", strings.TrimPrefix(j3.Key, "sha256:"))
	if _, err := os.Stat(filepath.Join(entry, "metrics.json")); err != nil {
		fatalf("drained job %s has no stored result: %v", j3.ID, err)
	}
	fmt.Println("daemon-smoke: SIGTERM drained cleanly, accepted job completed")
	return metrics
}

// phaseCrashRecovery proves SIGKILL recovery: an accepted job interrupted
// by a hard kill completes after restart with byte-identical metrics.
func phaseCrashRecovery(tmpl string) []byte {
	dir, err := os.MkdirTemp("", "leakywayd-smoke-b-")
	if err != nil {
		fatalf("tempdir: %v", err)
	}
	defer os.RemoveAll(dir)
	dataDir := filepath.Join(dir, "data")

	// -stall holds the attempt so the SIGKILL reliably lands while the
	// accepted job is incomplete.
	d := startDaemon(dataDir, "-stall", "1h")
	j, cache := d.submit(tmpl, 42, http.StatusAccepted)
	if cache != "miss" {
		fatalf("phase B first submission X-Cache %q, want miss", cache)
	}
	if err := d.cmd.Process.Kill(); err != nil {
		fatalf("SIGKILL: %v", err)
	}
	d.wait() // reaps the process; exit code is nonzero by design
	fmt.Println("daemon-smoke: daemon SIGKILLed with an accepted job in flight")

	// Restart from the same data dir without the stall: the journal must
	// resurrect the job under the same ID and run it to completion.
	d2 := startDaemon(dataDir)
	defer d2.cmd.Process.Kill()
	d2.awaitDone(j.ID)
	metrics := d2.artifact(j.ID, "metrics")
	fmt.Println("daemon-smoke: restart recovered the journalled job to done")

	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fatalf("SIGTERM: %v", err)
	}
	if code := d2.wait(); code != 0 {
		fatalf("recovered daemon exited %d after SIGTERM, want 0", code)
	}
	return metrics
}
