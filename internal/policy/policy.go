// Package policy implements cache replacement policies as pluggable per-set
// state machines. The load-bearing one is QuadAge, the quad-age pseudo-LRU
// that prior work reverse-engineered on Intel client LLCs and that the Leaky
// Way paper's PREFETCHNTA properties are defined against. Tree-PLRU and
// Bit-PLRU cover the private levels, and the remaining policies exist as
// baselines and for countermeasure studies.
package policy

// AccessClass tells a policy what kind of request caused a fill or hit, so
// that it can treat demand loads and non-temporal prefetches differently —
// the asymmetry the entire paper exploits.
type AccessClass int

const (
	// ClassLoad is a demand load (or store) from the core.
	ClassLoad AccessClass = iota
	// ClassNTA is a PREFETCHNTA software prefetch.
	ClassNTA
	// ClassT0 is a PREFETCHT0-style temporal software prefetch.
	ClassT0
	// ClassHW is a hardware prefetcher fill.
	ClassHW
)

// String implements fmt.Stringer.
func (c AccessClass) String() string {
	switch c {
	case ClassLoad:
		return "load"
	case ClassNTA:
		return "nta"
	case ClassT0:
		return "t0"
	case ClassHW:
		return "hw"
	}
	return "unknown"
}

// Mask is a bitset of way indices: bit w set means way w is evictable.
// Masks keep the per-fill victim selection allocation-free — the cache
// builds one word instead of a closure for every eviction decision.
// Way counts are therefore capped at 64, far above any real associativity.
type Mask uint64

// AllWays returns the mask with the low `ways` bits set.
func AllWays(ways int) Mask {
	if ways >= 64 {
		return ^Mask(0)
	}
	return Mask(1)<<uint(ways) - 1
}

// Has reports whether way is in the mask.
func (m Mask) Has(way int) bool { return m>>uint(way)&1 != 0 }

// Without returns the mask with way removed.
func (m Mask) Without(way int) Mask { return m &^ (1 << uint(way)) }

// Policy is a factory for per-set replacement state.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// NewSet creates replacement state for one set with the given number
	// of ways.
	NewSet(ways int) SetState
}

// SetState is the replacement bookkeeping for a single cache set. The cache
// guarantees way indices are in range and that OnFill follows a Victim (or
// targets an invalid way).
type SetState interface {
	// Victim selects the way to evict, consulting the evictable mask to
	// skip ways that cannot currently be replaced (invalid ways are never
	// masked in here for their own sake — the cache fills those directly).
	// It returns -1 if no way is evictable. Victim may mutate state
	// (e.g. quad-age aging).
	Victim(evictable Mask) int
	// OnFill records that a line of the given class was installed in way.
	OnFill(way int, cls AccessClass)
	// OnHit records a hit of the given class on way.
	OnHit(way int, cls AccessClass)
	// OnInvalidate clears any per-way state when a line is removed
	// without replacement (flush or back-invalidation).
	OnInvalidate(way int)
	// AgeAt returns one way's metadata value (age/rank) without
	// allocating; -1 marks "no meaningful value".
	AgeAt(way int) int
	// Snapshot exposes per-way metadata (ages/ranks) for tracing. The
	// meaning is policy-specific; -1 marks "no meaningful value".
	Snapshot() []int
	// Reset restores the state to exactly what NewSet returned, without
	// allocating — the cache-arena recycling path (sim.BatchMachine) calls
	// it instead of rebuilding per-set state for every Monte-Carlo trial.
	// Stateful policies must also rewind any internal randomness to its
	// initial stream so a recycled set is indistinguishable from a fresh
	// one.
	Reset()
}
