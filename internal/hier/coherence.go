package hier

import (
	"leakyway/internal/cache"
	"leakyway/internal/mem"
)

// Coherence: the private caches keep MESI-style states so that cross-core
// sharing behaves (and times) like real silicon. A demand load that finds
// the line Modified in another core's private cache pays a cache-to-cache
// forwarding penalty and downgrades the owner to Shared; a store to a
// Shared line pays an invalidation round. These timing differences are
// themselves a side channel (Yao et al., the paper's reference [67]) and
// the attack package demonstrates it.

// snoopLoad resolves a demand read that missed the requester's private
// caches: remote Modified copies are downgraded to Shared (their dirtiness
// propagating to the LLC copy), remote Exclusive copies degrade to Shared.
// It returns the extra forwarding latency and whether any remote copy
// exists (which decides Shared vs Exclusive fill for the requester).
func (h *Hierarchy) snoopLoad(core int, la mem.LineAddr) (extra int64, shared bool) {
	l1Set, l2Set := h.l1Set(la), h.l2Set(la)
	for c := 0; c < h.cfg.Cores; c++ {
		if c == core {
			continue
		}
		found, modified := h.snoopPrivate(h.l1[c], l1Set, la)
		if found {
			shared = true
			if modified {
				extra = h.cfg.Lat.CohTransfer
			}
		}
		found, modified = h.snoopPrivate(h.l2[c], l2Set, la)
		if found {
			shared = true
			if modified {
				extra = h.cfg.Lat.CohTransfer
			}
		}
	}
	return extra, shared
}

// snoopPrivate downgrades one private cache's copy of la for a remote load.
// It reports whether a copy existed and whether it was Modified (in which
// case the dirty data was forwarded into the LLC copy).
func (h *Hierarchy) snoopPrivate(pc *cache.Cache, set int, la mem.LineAddr) (found, modified bool) {
	w, ok := pc.Probe(set, la)
	if !ok {
		return false, false
	}
	switch pc.Coh(set, w) {
	case cache.CohModified:
		// Forward dirty data; the LLC copy absorbs the dirtiness and
		// the owner keeps a Shared copy.
		h.markLLCDirty(la)
		pc.SetCoh(set, w, cache.CohShared)
		return true, true
	case cache.CohExclusive:
		pc.SetCoh(set, w, cache.CohShared)
	}
	return true, false
}

// invalidateRemote removes every other core's private copy of la (the RFO /
// upgrade step of a store). It returns the invalidation latency if any copy
// existed. A remote Modified copy first forwards its data.
func (h *Hierarchy) invalidateRemote(core int, la mem.LineAddr) (extra int64) {
	for c := 0; c < h.cfg.Cores; c++ {
		if c == core {
			continue
		}
		if w, ok := h.l1[c].Probe(h.l1Set(la), la); ok {
			if h.l1[c].Coh(h.l1Set(la), w) == cache.CohModified {
				h.markLLCDirty(la)
				extra = h.cfg.Lat.CohTransfer
			}
			h.l1[c].Invalidate(h.l1Set(la), la)
			if extra == 0 {
				extra = h.cfg.Lat.CohInval
			}
		}
		if w, ok := h.l2[c].Probe(h.l2Set(la), la); ok {
			if h.l2[c].Coh(h.l2Set(la), w) == cache.CohModified {
				h.markLLCDirty(la)
				extra = h.cfg.Lat.CohTransfer
			}
			h.l2[c].Invalidate(h.l2Set(la), la)
			if extra == 0 {
				extra = h.cfg.Lat.CohInval
			}
		}
	}
	return extra
}

// setPrivCoh sets the coherence state on the requester's private copies.
func (h *Hierarchy) setPrivCoh(core int, la mem.LineAddr, st cache.CohState) {
	if w, ok := h.l1[core].Probe(h.l1Set(la), la); ok {
		h.l1[core].SetCoh(h.l1Set(la), w, st)
		if st == cache.CohModified {
			h.l1[core].MarkDirty(h.l1Set(la), w)
		}
	}
	if w, ok := h.l2[core].Probe(h.l2Set(la), la); ok {
		h.l2[core].SetCoh(h.l2Set(la), w, st)
	}
}

// markLLCDirty flags la's LLC copy as holding forwarded dirty data.
func (h *Hierarchy) markLLCDirty(la mem.LineAddr) {
	slice, set := h.loc.Locate(la)
	if w, ok := h.llc[slice].Probe(set, la); ok {
		h.llc[slice].MarkDirty(set, w)
	}
}

// PrivCoh reports core's coherence state for the line (introspection; the
// bool is false when the core holds no copy).
func (h *Hierarchy) PrivCoh(core int, pa mem.PAddr) (cache.CohState, bool) {
	h.checkCore(core)
	la := pa.Line()
	if w, ok := h.l1[core].Probe(h.l1Set(la), la); ok {
		return h.l1[core].Coh(h.l1Set(la), w), true
	}
	if w, ok := h.l2[core].Probe(h.l2Set(la), la); ok {
		return h.l2[core].Coh(h.l2Set(la), w), true
	}
	return 0, false
}
