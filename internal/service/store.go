package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store is the content-addressed result store. Each entry is a directory
// named by the cache key's hex digest holding the artifacts plus a
// meta.json that records their individual content hashes — so integrity
// is checkable by re-hashing, which startup does after a crash. Writes go
// through a temp directory and a rename, so a torn write can never
// produce an entry that passes verification.
type Store struct {
	dir string
}

// storeMeta is the per-entry manifest.
type storeMeta struct {
	// Key is the full cache key ("sha256:<hex>").
	Key string `json:"key"`
	// Engine records the engine version the entry was simulated with.
	Engine string `json:"engine"`
	// Artifacts maps artifact name → file name and sha256 of its bytes.
	Artifacts map[string]artifactMeta `json:"artifacts"`
	// Assertion summary of the template evaluation.
	AssertFailed int `json:"assert_failed"`
	AssertTotal  int `json:"assert_total"`
}

type artifactMeta struct {
	File   string `json:"file"`
	SHA256 string `json:"sha256"`
}

// artifactFiles maps API artifact names to entry file names and content
// types.
var artifactFiles = map[string]struct{ file, contentType string }{
	"metrics":  {"metrics.json", "application/json"},
	"report":   {"report.txt", "text/plain; charset=utf-8"},
	"trace":    {"trace.json", "application/json"},
	"progress": {"progress.jsonl", "application/x-ndjson"},
}

// OpenStore opens (creating if needed) the store at dir and sweeps it for
// integrity: every entry's artifacts are re-hashed against its manifest,
// and entries that fail — torn writes, bit rot, manual tampering — are
// removed. It returns the number of entries dropped.
func OpenStore(dir string) (*Store, int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("store: %w", err)
	}
	dropped := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		// Leftover temp dirs from a crash mid-Put are never valid entries.
		if strings.HasPrefix(e.Name(), "tmp-") {
			os.RemoveAll(path)
			dropped++
			continue
		}
		if err := verifyEntry(path); err != nil {
			os.RemoveAll(path)
			dropped++
		}
	}
	return s, dropped, nil
}

// verifyEntry re-hashes every artifact in the manifest.
func verifyEntry(path string) error {
	data, err := os.ReadFile(filepath.Join(path, "meta.json"))
	if err != nil {
		return fmt.Errorf("meta: %w", err)
	}
	var meta storeMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return fmt.Errorf("meta: %w", err)
	}
	if hexOf(meta.Key) != filepath.Base(path) {
		return fmt.Errorf("entry %s claims key %s", filepath.Base(path), meta.Key)
	}
	for name, am := range meta.Artifacts {
		b, err := os.ReadFile(filepath.Join(path, am.File))
		if err != nil {
			return fmt.Errorf("artifact %s: %w", name, err)
		}
		sum := sha256.Sum256(b)
		if hex.EncodeToString(sum[:]) != am.SHA256 {
			return fmt.Errorf("artifact %s: digest mismatch", name)
		}
	}
	return nil
}

// hexOf strips the algorithm prefix from a cache key.
func hexOf(key string) string { return strings.TrimPrefix(key, "sha256:") }

func (s *Store) entryDir(key string) string { return filepath.Join(s.dir, hexOf(key)) }

// Has reports whether an intact entry exists for key. It trusts the
// startup sweep and the atomic-rename Put; it does not re-hash per call.
func (s *Store) Has(key string) bool {
	_, err := os.Stat(filepath.Join(s.entryDir(key), "meta.json"))
	return err == nil
}

// Meta reads an entry's manifest.
func (s *Store) Meta(key string) (*storeMeta, error) {
	data, err := os.ReadFile(filepath.Join(s.entryDir(key), "meta.json"))
	if err != nil {
		return nil, err
	}
	var meta storeMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, err
	}
	return &meta, nil
}

// Artifact reads one artifact's bytes by API name ("metrics", "report",
// "trace").
func (s *Store) Artifact(key, name string) ([]byte, error) {
	af, ok := artifactFiles[name]
	if !ok {
		return nil, fmt.Errorf("store: unknown artifact %q", name)
	}
	return os.ReadFile(filepath.Join(s.entryDir(key), af.file))
}

// Put writes a completed result as the entry for key: artifacts and
// manifest land in a temp directory, every file is fsynced, and a final
// rename publishes the entry atomically. A concurrent Put of the same key
// (or an existing entry) wins harmlessly — results are deterministic, so
// both sides wrote the same bytes.
func (s *Store) Put(key, engine string, res *Result) error {
	artifacts := map[string][]byte{
		"metrics": res.Metrics,
		"report":  res.Report,
	}
	if res.Trace != nil {
		artifacts["trace"] = res.Trace
	}
	if len(res.Progress) > 0 {
		artifacts["progress"] = res.Progress
	}
	meta := storeMeta{
		Key:          key,
		Engine:       engine,
		Artifacts:    map[string]artifactMeta{},
		AssertFailed: res.AssertFailed,
		AssertTotal:  res.AssertTotal,
	}
	tmp, err := os.MkdirTemp(s.dir, "tmp-")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.RemoveAll(tmp)
	for name, data := range artifacts {
		af := artifactFiles[name]
		if err := writeSynced(filepath.Join(tmp, af.file), data); err != nil {
			return fmt.Errorf("store: %s: %w", name, err)
		}
		sum := sha256.Sum256(data)
		meta.Artifacts[name] = artifactMeta{File: af.file, SHA256: hex.EncodeToString(sum[:])}
	}
	mb, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeSynced(filepath.Join(tmp, "meta.json"), mb); err != nil {
		return fmt.Errorf("store: meta: %w", err)
	}
	dst := s.entryDir(key)
	if err := os.Rename(tmp, dst); err != nil {
		if s.Has(key) {
			return nil // lost a benign race to an identical entry
		}
		return fmt.Errorf("store: publish: %w", err)
	}
	return nil
}

// writeSynced writes data and fsyncs before closing, so a rename cannot
// publish a file the kernel has not persisted.
func writeSynced(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
