package experiments

import (
	"fmt"

	"leakyway/internal/core"
	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
	"leakyway/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "stealth",
		Title: "Extension — victim-side stealth: what the victim can notice (Section V-B1)",
		Paper: "Reload+Refresh is 'much stealthier (on the victim's side) compared to prior LLC attacks such as Flush+Reload'",
		Run:   runStealth,
	})
}

// runStealth runs each attack against a victim that accesses the shared
// line once per window and records its *own* latencies — the signal a
// self-monitoring victim (or a performance-counter-based detector) sees.
// Flush+Reload forces the victim to take a DRAM miss on every access;
// the refresh attacks leave the victim hitting the LLC.
func runStealth(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	iters := ctx.Trials(800)
	const window = int64(6000)
	const start = int64(50_000)

	type outcome struct {
		name      string
		key       string
		mean      float64
		missFrac  float64
		collected int
	}
	var outcomes []outcome

	run := func(name, key string, attacker func(c *sim.Core, th core.Thresholds, dt mem.VAddr, ls []mem.VAddr, w int)) {
		m := sim.MustNewMachine(cfg, 1<<30, ctx.Seed)
		attackerAS := m.NewSpace()
		victimAS := m.NewSpace()
		dt, err := attackerAS.Alloc(mem.PageSize)
		if err != nil {
			failf("stealth", name+": alloc probe line", err)
		}
		if err := victimAS.MapShared(attackerAS, dt, mem.PageSize); err != nil {
			failf("stealth", name+": map shared probe line", err)
		}
		w := cfg.LLCWays
		ls := core.MustCongruentLines(m, attackerAS, dt, w)

		var vlat []int64
		misses := 0
		m.SpawnDaemon("victim", 1, victimAS, func(c *sim.Core) {
			for i := 0; ; i++ {
				c.WaitUntil(start + int64(i)*window + window/2)
				r := c.Load(dt)
				vlat = append(vlat, r.Latency)
				if r.Level == hier.LevelMem {
					misses++
				}
			}
		})
		m.Spawn("attacker", 0, attackerAS, func(c *sim.Core) {
			th := core.Calibrate(c, 48)
			attacker(c, th, dt, ls, w)
		})
		m.Run()
		frac := 0.0
		if len(vlat) > 0 {
			frac = float64(misses) / float64(len(vlat))
		}
		outcomes = append(outcomes, outcome{name, key, stats.Mean(vlat), frac, len(vlat)})
		res.Metric(key+"_victim_mean", stats.Mean(vlat))
		res.Metric(key+"_victim_missfrac", frac)
	}

	// Flush+Reload: flush, wait, reload.
	run("Flush+Reload", "flush_reload", func(c *sim.Core, th core.Thresholds, dt mem.VAddr, ls []mem.VAddr, w int) {
		c.Flush(dt)
		for it := 0; it < iters; it++ {
			c.WaitUntil(start + int64(it+1)*window)
			c.TimedLoad(dt)
			c.Flush(dt)
		}
	})

	// Reload+Refresh: the Figure 9 loop (age observation, no flush seen
	// by the victim between its accesses — its hits stay hits).
	run("Reload+Refresh", "reload_refresh", func(c *sim.Core, th core.Thresholds, dt mem.VAddr, ls []mem.VAddr, w int) {
		prepareRR := func() {
			all := append([]mem.VAddr{dt}, ls...)
			for round := 0; round < 3; round++ {
				for _, va := range all {
					c.Load(va)
				}
			}
			for _, va := range all {
				c.Flush(va)
			}
			c.Fence()
			c.Load(dt)
			for i := 0; i < w-1; i++ {
				c.Load(ls[i])
			}
		}
		prepareRR()
		for it := 0; it < iters; it++ {
			c.WaitUntil(start + int64(it+1)*window)
			c.Load(ls[w-1])
			c.TimedLoad(dt)
			c.Flush(dt)
			c.Flush(ls[w-1])
			c.Load(dt)
			c.Load(ls[0])
			for i := 1; i < w-1; i++ {
				c.Load(ls[i])
			}
		}
	})

	// Prefetch+Refresh v2: the cheapest reset.
	run("Prefetch+Refresh v2", "prefetch_refresh", func(c *sim.Core, th core.Thresholds, dt mem.VAddr, ls []mem.VAddr, w int) {
		all := append([]mem.VAddr{dt}, ls...)
		for round := 0; round < 3; round++ {
			for _, va := range all {
				c.Load(va)
			}
		}
		for _, va := range all {
			c.Flush(va)
		}
		c.Fence()
		c.PrefetchNTA(dt)
		for i := 0; i < w-1; i++ {
			c.PrefetchNTA(ls[i])
		}
		conflict, spare := ls[w-1], ls[0]
		for it := 0; it < iters; it++ {
			c.WaitUntil(start + int64(it+1)*window)
			c.PrefetchNTA(conflict)
			accessed := !th.IsMiss(c.TimedPrefetchNTA(dt))
			c.Flush(dt)
			c.PrefetchNTA(dt)
			if accessed {
				conflict, spare = spare, conflict
			}
		}
	})

	rows := [][]string{}
	for _, o := range outcomes {
		rows = append(rows, []string{
			o.name,
			fmt.Sprintf("%.1f cycles", o.mean),
			fmt.Sprintf("%.1f%%", 100*o.missFrac),
		})
	}
	renderTable(ctx, []string{"attack", "victim mean access latency", "victim DRAM-miss fraction"}, rows)
	ctx.Printf("under Flush+Reload every victim access is a DRAM miss a detector can count;\n")
	ctx.Printf("the refresh attacks keep the victim hitting the cache — the paper's stealth claim\n")
	return res, nil
}
