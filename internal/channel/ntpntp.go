package channel

import (
	"leakyway/internal/core"
	"leakyway/internal/sim"
	"leakyway/internal/trace"
)

// bit01 renders a decoded bit for trace events.
func bit01(b bool) int {
	if b {
		return 1
	}
	return 0
}

// emitTxBit and emitRxBit are the channel-layer slot events the
// diagnostics report keys on: tx-bit marks what the sender encoded in a
// slot; rx-bit carries the receiver's measured latency, the slot length
// and the decision threshold.
func emitTxBit(c *sim.Core, slot int, bit bool) {
	tr := c.Tracer()
	if !tr.On(trace.PkgChannel) {
		return
	}
	e := trace.E("channel", "tx-bit", c.Now())
	e.Agent, e.Core = c.AgentName(), c.ID
	e.Slot, e.Bit = slot, bit01(bit)
	tr.Emit(e)
}

func emitRxBit(c *sim.Core, at int64, slot int, bit bool, lat, slotLen, threshold int64) {
	tr := c.Tracer()
	if !tr.On(trace.PkgChannel) {
		return
	}
	e := trace.E("channel", "rx-bit", at)
	e.Agent, e.Core = c.AgentName(), c.ID
	e.Slot, e.Bit = slot, bit01(bit)
	e.Lat, e.Dur, e.Val = lat, slotLen, threshold
	tr.Emit(e)
}

// RunNTPNTP transmits msg over the NTP+NTP channel (Algorithm 1) and
// returns the report plus the bits the receiver decoded.
//
// Schedule (Figure 7): with S sets, the sender transmits bit i on set i%S at
// iteration i; the receiver decodes bit i one iteration later (same
// iteration for S=1, with an in-iteration spacing that must cover the
// sender's DRAM fill — the in-flight limitation of Section IV-B2).
//
// Cores: sender on 0, receiver on 1, noise (if any) on 2.
func RunNTPNTP(m *sim.Machine, cfg Config, msg []bool) (Report, []bool) {
	mustValidRun(cfg, false, msg)
	sets := cfg.Sets
	if sets <= 0 {
		sets = 1
	}
	ep, err := Setup(m, sets, 0)
	if err != nil {
		panic(err)
	}
	return RunNTPNTPOn(m, cfg, ep, msg)
}

// RunNTPNTPOn is RunNTPNTP over pre-staged endpoints: callers that need to
// interpose between setup and transmission (fault injection, custom noise)
// stage the endpoints themselves and hand them in. The set count is taken
// from the endpoints.
func RunNTPNTPOn(m *sim.Machine, cfg Config, ep *Endpoints, msg []bool) (Report, []bool) {
	mustValidRun(cfg, false, msg)
	sets := len(ep.DS)
	interval := cfg.Interval
	n := len(msg)
	received := make([]bool, n)

	// The receiver's decode threshold is calibrated before the run.
	var th core.Thresholds

	m.Spawn("sender", 0, ep.SenderAS, func(c *sim.Core) {
		for i := 0; i < n; i++ {
			c.WaitUntil(cfg.Start + int64(i)*interval + cfg.SenderOffset)
			emitTxBit(c, i, msg[i])
			if msg[i] {
				c.PrefetchNTA(ep.DS[i%sets])
			}
			c.Spin(cfg.ProtocolOverhead)
		}
	})

	m.Spawn("receiver", 1, ep.ReceiverAS, func(c *sim.Core) {
		th = core.Calibrate(c, 48)
		// Prepare the channel before the epoch: fill each target set so
		// it has no empty ways (footnote 4), then install every dr as
		// its set's eviction candidate (which also leaves dr in the
		// receiver's L1).
		for s := 0; s < sets; s++ {
			for _, va := range ep.Filler[s] {
				c.Load(va)
			}
		}
		for _, dr := range ep.DR {
			c.PrefetchNTA(dr)
		}
		// Pipelined decode: bit i is read at iteration i+delay
		// (Figure 7: with two sets the receiver always detects the bit
		// sent one iteration earlier).
		delay := int64(1)
		if sets == 1 {
			delay = 0
		}
		for i := 0; i < n; i++ {
			c.WaitUntil(cfg.Start + (int64(i)+delay)*interval + cfg.ReceiverOffset)
			probeAt := c.Now()
			t := c.TimedPrefetchNTA(ep.DR[i%sets])
			received[i] = th.IsMiss(t)
			emitRxBit(c, probeAt, i, received[i], t, interval, th.MissThreshold)
			c.Spin(cfg.ProtocolOverhead)
		}
	})

	spawnNoise(m, cfg, ep, 2)
	m.Run()

	rep := Report{
		Channel:  "NTP+NTP",
		Platform: m.H.Config().Name,
		Bits:     n,
		Interval: interval,
	}
	for i := range msg {
		if received[i] != msg[i] {
			rep.Errors++
		}
	}
	finishReport(&rep, m.H.Config().FreqGHz, 1)
	return rep, received
}
