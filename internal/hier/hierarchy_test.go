package hier

import (
	"testing"

	"leakyway/internal/mem"
)

// testConfig is a small hierarchy so tests can fill sets quickly.
func testConfig() Config {
	return Config{
		Name: "test", Cores: 2, FreqGHz: 1,
		L1Sets: 8, L1Ways: 4,
		L2Sets: 16, L2Ways: 4,
		LLCSlices: 1, LLCSetsPerSlice: 32, LLCWays: 8,
		Lat:  quietLatency(),
		Seed: 1,
	}
}

// quietLatency removes jitter so tests can assert exact values.
func quietLatency() LatencyConfig {
	l := DefaultLatency()
	l.L1Jit, l.L2Jit, l.LLCJit, l.MemJit, l.FlushJit, l.TimerJit = 0, 0, 0, 0, 0, 0
	return l
}

// congruentLines returns n distinct lines mapping to the same LLC set as
// base, spaced so they also share L1/L2 sets (multiples of a large power of
// two), which is what paper-style eviction sets look like.
func congruentLines(h *Hierarchy, base mem.PAddr, n int) []mem.PAddr {
	geo := h.Geometry()
	target := base.Line()
	out := []mem.PAddr{}
	for i := uint64(1); len(out) < n; i++ {
		cand := mem.LineAddr(uint64(target) + i*uint64(h.Config().LLCSetsPerSlice))
		if geo.Congruent(cand, target) {
			out = append(out, cand.PAddr())
		}
	}
	return out
}

func TestLoadFillsAllLevels(t *testing.T) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0x4040)
	res := h.Load(0, pa, 0)
	if res.Level != LevelMem {
		t.Fatalf("cold load level = %v, want DRAM", res.Level)
	}
	for _, lvl := range []Level{LevelL1, LevelL2, LevelLLC} {
		if !h.Present(lvl, pa) {
			t.Errorf("line absent from %v after demand load", lvl)
		}
	}
	// Second load: L1 hit.
	res = h.Load(0, pa, 1000)
	if res.Level != LevelL1 {
		t.Fatalf("warm load level = %v, want L1", res.Level)
	}
	if res.Latency != quietLatency().L1Hit {
		t.Fatalf("L1 latency = %d, want %d", res.Latency, quietLatency().L1Hit)
	}
}

func TestNTABypassesL2(t *testing.T) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0x8080)
	res := h.PrefetchNTA(0, pa, 0)
	if res.Level != LevelMem {
		t.Fatalf("cold NTA level = %v, want DRAM", res.Level)
	}
	if !h.Present(LevelL1, pa) {
		t.Error("NTA should fill L1")
	}
	if h.Present(LevelL2, pa) {
		t.Error("NTA must bypass L2 (Intel inclusive-LLC behaviour)")
	}
	if !h.Present(LevelLLC, pa) {
		t.Error("NTA should fill the inclusive LLC")
	}
	if age := h.LLCAge(pa); age != 3 {
		t.Errorf("NTA LLC insertion age = %d, want 3 (Property #1)", age)
	}
}

func TestLoadInsertionAge(t *testing.T) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0x4040)
	h.Load(0, pa, 0)
	if age := h.LLCAge(pa); age != 2 {
		t.Errorf("load LLC insertion age = %d, want 2", age)
	}
	// A demand LLC hit (from another core, so no private copy) decrements.
	h.Load(1, pa, 100)
	if age := h.LLCAge(pa); age != 1 {
		t.Errorf("age after LLC demand hit = %d, want 1", age)
	}
}

func TestNTAHitDoesNotUpdateAge(t *testing.T) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0x4040)
	h.Load(0, pa, 0) // in LLC at age 2, private copies on core 0
	// NTA from core 1 hits the LLC: age must not change (Property #2).
	res := h.PrefetchNTA(1, pa, 100)
	if res.Level != LevelLLC {
		t.Fatalf("NTA level = %v, want LLC", res.Level)
	}
	if age := h.LLCAge(pa); age != 2 {
		t.Errorf("age after NTA LLC hit = %d, want 2 (Property #2)", age)
	}
}

func TestPrivateHitDoesNotTouchLLC(t *testing.T) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0x4040)
	h.Load(0, pa, 0)
	before := h.LLCAge(pa)
	for i := 0; i < 10; i++ {
		if res := h.Load(0, pa, int64(100+i)); res.Level != LevelL1 {
			t.Fatalf("expected L1 hits, got %v", res.Level)
		}
	}
	if h.LLCAge(pa) != before {
		t.Error("L1 hits must not change the LLC age (Prime+Scope invariant)")
	}
}

func TestInclusionBackInvalidate(t *testing.T) {
	h := MustNew(testConfig())
	victim := mem.PAddr(0x4040)
	h.Load(0, victim, 0)
	if !h.PresentInCore(LevelL1, 0, victim) {
		t.Fatal("victim not in core 0 L1")
	}
	// Fill the victim's LLC set from core 1 until the victim is evicted.
	evset := congruentLines(h, victim, h.Config().LLCWays+1)
	now := int64(1000)
	for round := 0; round < 4 && h.Present(LevelLLC, victim); round++ {
		for _, pa := range evset {
			h.Load(1, pa, now)
			now += 1000
		}
	}
	if h.Present(LevelLLC, victim) {
		t.Fatal("victim survived LLC thrashing")
	}
	if h.PresentInCore(LevelL1, 0, victim) || h.PresentInCore(LevelL2, 0, victim) {
		t.Fatal("inclusion violated: LLC eviction did not back-invalidate private copies")
	}
}

func TestFlushRemovesEverywhere(t *testing.T) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0x4040)
	h.Load(0, pa, 0)
	h.Load(1, pa, 10)
	res := h.Flush(pa, 100)
	if res.Latency != quietLatency().FlushPresent {
		t.Errorf("flush-present latency = %d, want %d", res.Latency, quietLatency().FlushPresent)
	}
	for _, lvl := range []Level{LevelL1, LevelL2, LevelLLC} {
		if h.Present(lvl, pa) {
			t.Errorf("line still in %v after CLFLUSH", lvl)
		}
	}
	// Flushing an absent line is cheaper (Flush+Flush signal).
	res = h.Flush(pa, 200)
	if res.Latency != quietLatency().FlushAbsent {
		t.Errorf("flush-absent latency = %d, want %d", res.Latency, quietLatency().FlushAbsent)
	}
}

func TestFlushDirtySlower(t *testing.T) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0x4040)
	h.Store(0, pa, 0)
	res := h.Flush(pa, 100)
	if res.Latency != quietLatency().FlushDirty {
		t.Errorf("flush-dirty latency = %d, want %d", res.Latency, quietLatency().FlushDirty)
	}
}

func TestLatencyTiers(t *testing.T) {
	h := MustNew(testConfig())
	lat := quietLatency()
	pa := mem.PAddr(0x4040)

	if res := h.Load(0, pa, 0); res.Latency != lat.Mem {
		t.Errorf("DRAM load latency = %d, want %d", res.Latency, lat.Mem)
	}
	if res := h.Load(0, pa, 1000); res.Latency != lat.L1Hit {
		t.Errorf("L1 load latency = %d, want %d", res.Latency, lat.L1Hit)
	}
	// From the other core: LLC hit.
	if res := h.Load(1, pa, 2000); res.Latency != lat.LLCHit {
		t.Errorf("LLC load latency = %d, want %d", res.Latency, lat.LLCHit)
	}
}

func TestPrefetchT0FillsL2(t *testing.T) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0xc0c0)
	h.PrefetchT0(0, pa, 0)
	if !h.Present(LevelL1, pa) || !h.Present(LevelL2, pa) || !h.Present(LevelLLC, pa) {
		t.Fatal("PREFETCHT0 should fill L1, L2 and LLC")
	}
	if age := h.LLCAge(pa); age != 2 {
		t.Errorf("T0 LLC insertion age = %d, want 2", age)
	}
}

func TestNTAEvictsCurrentCandidateAndBecomesCandidate(t *testing.T) {
	// The conflict primitive behind NTP+NTP (Section IV-B1).
	h := MustNew(testConfig())
	base := mem.PAddr(0x4040)
	lines := append([]mem.PAddr{base}, congruentLines(h, base, h.Config().LLCWays)...)
	now := int64(0)
	for _, pa := range lines[:h.Config().LLCWays] { // fill the set with loads
		h.Load(0, pa, now)
		now += 1000
	}
	dr := lines[h.Config().LLCWays]
	h.PrefetchNTA(1, dr, now)
	now += 1000
	if cand, ok := h.LLCCandidate(dr); !ok || cand != dr.Line() {
		t.Fatalf("prefetched line is not the eviction candidate (cand=%v ok=%v)", cand, ok)
	}
	// A second NTA on another congruent line must evict dr and take over.
	ds := lines[0]
	h.Flush(ds, now)
	now += 1000
	h.PrefetchNTA(0, ds, now)
	now += 1000
	if h.Present(LevelLLC, dr) {
		t.Fatal("sender's NTA did not evict the receiver's prefetched line")
	}
	if cand, ok := h.LLCCandidate(ds); !ok || cand != ds.Line() {
		t.Fatal("sender's line did not become the new eviction candidate")
	}
}

func TestDroppedFillWhenAllInFlight(t *testing.T) {
	cfg := testConfig()
	cfg.LLCWays = 2
	h := MustNew(cfg)
	base := mem.PAddr(0x4040)
	lines := congruentLines(h, base, 2)
	// Two fills at t=0, in flight until t≈160.
	h.Load(0, base, 0)
	h.Load(0, lines[0], 0)
	// A third miss at t=10 cannot displace anything.
	res := h.Load(0, lines[1], 10)
	if !res.Dropped {
		t.Fatal("expected dropped fill while all ways are in flight")
	}
	if h.Present(LevelLLC, lines[1]) {
		t.Fatal("dropped line must not be cached")
	}
	// After the windows close the fill works.
	res = h.Load(0, lines[1], 1000)
	if res.Dropped {
		t.Fatal("fill should succeed after in-flight windows close")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := testConfig()
	bad.Cores = 0
	if _, err := New(bad); err == nil {
		t.Error("Cores=0 accepted")
	}
	bad = testConfig()
	bad.LLCWays = 0
	if _, err := New(bad); err == nil {
		t.Error("LLCWays=0 accepted")
	}
	bad = testConfig()
	bad.FreqGHz = 0
	if _, err := New(bad); err == nil {
		t.Error("FreqGHz=0 accepted")
	}
}

func TestStatsAndFlushAll(t *testing.T) {
	h := MustNew(testConfig())
	pa := mem.PAddr(0x4040)
	h.Load(0, pa, 0)
	h.Load(0, pa, 100)
	if h.L1Stats(0).Hits == 0 {
		t.Error("no L1 hits recorded")
	}
	if h.LLCStats().Fills == 0 {
		t.Error("no LLC fills recorded")
	}
	h.FlushAll()
	for _, lvl := range []Level{LevelL1, LevelL2, LevelLLC} {
		if h.Present(lvl, pa) {
			t.Errorf("line survives FlushAll in %v", lvl)
		}
	}
}

func TestLevelString(t *testing.T) {
	for lvl, want := range map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelLLC: "LLC", LevelMem: "DRAM", Level(9): "?"} {
		if lvl.String() != want {
			t.Errorf("Level(%d).String() = %q, want %q", lvl, lvl.String(), want)
		}
	}
}
