package iofault

import (
	"io/fs"
	"math/rand"
	"sort"
	"sync"
	"syscall"
	"time"
)

// Canonical injected errors. They are the real errno values, so code
// under test sees exactly what a full or dying disk would produce.
var (
	// ErrNoSpace is ENOSPC — the disk is full.
	ErrNoSpace error = syscall.ENOSPC
	// ErrIO is EIO — the device failed the operation.
	ErrIO error = syscall.EIO
)

// OpKind names one filesystem operation class a rule can target.
type OpKind string

const (
	OpOpen   OpKind = "open"
	OpWrite  OpKind = "write"
	OpSync   OpKind = "sync"
	OpRename OpKind = "rename"
	OpRemove OpKind = "remove"
	OpMkdir  OpKind = "mkdir"
)

// Op describes one operation about to execute, as rules see it.
type Op struct {
	Kind OpKind
	Path string
	// Bytes is the write length (OpWrite only).
	Bytes int
}

// Fault is a rule's verdict for one operation. The zero value means "no
// fault".
type Fault struct {
	// Err, when non-nil, is returned to the caller instead of (or, for
	// torn writes, after partially) performing the operation.
	Err error
	// TornBytes, for OpWrite with Err set, writes this prefix of the
	// buffer through to the real file before failing — a torn write.
	// Negative means nothing is written.
	TornBytes int
	// Delay stalls the operation before it proceeds (slow I/O). A delay
	// with a nil Err slows the call but lets it succeed.
	Delay time.Duration
}

// Rule models one hostile disk condition. Check is called under the
// injector's lock with the injector's seeded rng, so stateful rules
// (cumulative byte budgets, every-Nth counters) need no locking of
// their own and stay deterministic for a fixed seed and call sequence.
type Rule interface {
	// Name identifies the rule in injection counts.
	Name() string
	// Check returns the fault to inject for op, or the zero Fault.
	Check(op Op, rng *rand.Rand) Fault
}

// Injector wraps an inner FS and consults its rules before every
// operation. Rules are checked in order; the first non-zero fault wins,
// except that delays accumulate across rules.
type Injector struct {
	inner FS

	mu     sync.Mutex
	rng    *rand.Rand
	rules  []Rule
	active bool
	counts map[string]int64
}

// NewInjector builds an injector over inner with the given rules,
// active immediately. All stochastic choices derive from seedv.
func NewInjector(inner FS, seedv int64, rules ...Rule) *Injector {
	return &Injector{
		inner:  inner,
		rng:    rand.New(rand.NewSource(seedv)),
		rules:  rules,
		active: true,
		counts: map[string]int64{},
	}
}

// SetActive switches fault injection on or off at runtime. While
// inactive every call passes straight through — the "fault cleared"
// half of a chaos window.
func (in *Injector) SetActive(v bool) {
	in.mu.Lock()
	in.active = v
	in.mu.Unlock()
}

// Active reports whether injection is enabled.
func (in *Injector) Active() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.active
}

// Injected returns how many faults the named rule has injected.
func (in *Injector) Injected(rule string) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[rule]
}

// InjectedTotal returns the total injected fault count across rules.
func (in *Injector) InjectedTotal() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n int64
	for _, c := range in.counts {
		n += c
	}
	return n
}

// check runs the rules for op. Counted as injected only when a rule
// returns an error (pure delays slow the call but do not fail it).
func (in *Injector) check(op Op) Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.active {
		return Fault{}
	}
	var out Fault
	for _, r := range in.rules {
		f := r.Check(op, in.rng)
		out.Delay += f.Delay
		if f.Err != nil && out.Err == nil {
			out.Err = f.Err
			out.TornBytes = f.TornBytes
			in.counts[r.Name()]++
		}
	}
	return out
}

// apply sleeps out any delay and reports whether an error fault is set.
func (f Fault) apply() bool {
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	return f.Err != nil
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if f := in.check(Op{Kind: OpMkdir, Path: path}); f.apply() {
		return &fs.PathError{Op: "mkdir", Path: path, Err: f.Err}
	}
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) MkdirTemp(dir, pattern string) (string, error) {
	if f := in.check(Op{Kind: OpMkdir, Path: dir}); f.apply() {
		return "", &fs.PathError{Op: "mkdirtemp", Path: dir, Err: f.Err}
	}
	return in.inner.MkdirTemp(dir, pattern)
}

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if f := in.check(Op{Kind: OpOpen, Path: name}); f.apply() {
		return nil, &fs.PathError{Op: "open", Path: name, Err: f.Err}
	}
	inner, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: inner, name: name}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if f := in.check(Op{Kind: OpOpen, Path: name}); f.apply() {
		return nil, &fs.PathError{Op: "open", Path: name, Err: f.Err}
	}
	inner, err := in.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: inner, name: name}, nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if f := in.check(Op{Kind: OpOpen, Path: name}); f.apply() {
		return nil, &fs.PathError{Op: "read", Path: name, Err: f.Err}
	}
	return in.inner.ReadFile(name)
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if f := in.check(Op{Kind: OpOpen, Path: name}); f.apply() {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: f.Err}
	}
	return in.inner.ReadDir(name)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if f := in.check(Op{Kind: OpRename, Path: newpath}); f.apply() {
		return &fs.PathError{Op: "rename", Path: newpath, Err: f.Err}
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if f := in.check(Op{Kind: OpRemove, Path: name}); f.apply() {
		return &fs.PathError{Op: "remove", Path: name, Err: f.Err}
	}
	return in.inner.Remove(name)
}

// RemoveAll under a remove fault is deliberately TORN: it deletes the
// first half of the tree's entries through the inner FS and then fails,
// modeling a crash or I/O error mid-eviction. The startup integrity
// sweep must be able to repair exactly this wreckage.
func (in *Injector) RemoveAll(path string) error {
	f := in.check(Op{Kind: OpRemove, Path: path})
	if !f.apply() {
		return in.inner.RemoveAll(path)
	}
	if ents, err := in.inner.ReadDir(path); err == nil {
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name())
		}
		sort.Strings(names)
		for _, name := range names[:len(names)/2+len(names)%2] {
			in.inner.RemoveAll(path + "/" + name)
		}
	}
	return &fs.PathError{Op: "removeall", Path: path, Err: f.Err}
}

// faultFile routes per-file operations back through the injector.
type faultFile struct {
	in   *Injector
	f    File
	name string
}

func (ff *faultFile) Read(p []byte) (int, error) { return ff.f.Read(p) }

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.in.check(Op{Kind: OpWrite, Path: ff.name, Bytes: len(p)})
	if !f.apply() {
		return ff.f.Write(p)
	}
	n := 0
	if f.TornBytes > 0 {
		torn := f.TornBytes
		if torn > len(p) {
			torn = len(p)
		}
		n, _ = ff.f.Write(p[:torn])
	}
	return n, &fs.PathError{Op: "write", Path: ff.name, Err: f.Err}
}

func (ff *faultFile) Sync() error {
	if f := ff.in.check(Op{Kind: OpSync, Path: ff.name}); f.apply() {
		return &fs.PathError{Op: "sync", Path: ff.name, Err: f.Err}
	}
	return ff.f.Sync()
}

func (ff *faultFile) Truncate(size int64) error { return ff.f.Truncate(size) }
func (ff *faultFile) Close() error              { return ff.f.Close() }
func (ff *faultFile) Name() string              { return ff.name }
