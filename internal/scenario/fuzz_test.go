package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadScenario throws arbitrary bytes at the full load pipeline
// (YAML parse → strict decode → validate). The corpus seeds with every
// shipped template plus hand-picked malformed documents. Invariants: no
// panic ever, and the all-or-nothing contract — an error means a nil
// Spec, success means a Spec that validates and whose canonical marshal
// parses right back.
func FuzzLoadScenario(f *testing.F) {
	if entries, err := os.ReadDir("../../templates"); err == nil {
		for _, e := range entries {
			if data, err := os.ReadFile(filepath.Join("../../templates", e.Name())); err == nil {
				f.Add(data)
			}
		}
	}
	for _, seed := range []string{
		"",
		"id: x",
		"id: x\nid: y\n",
		"\tid: x\n",
		"id: \"unterminated\n",
		"id: x\ntitle: [\n",
		"a: 1\n---\nb: 2\n",
		"id: x\ntitle: T\nkind: faults\nfaults:\n  scenarios:\n    - key: 1\n",
		"id: x\ntitle: T\nkind: sweep\nsweep:\n  bits: 99999999999999999999\n",
		"id: x\ntitle: T\nkind: statewalk\nstatewalk: 5\n",
		"id: x\ntitle: T\nkind: statewalk\nstatewalk:\n  message: \"10\"\n  bogus: 1\n",
		"{\"id\": 1, \"kind\": []}",
		"id: x\nextract:\n  - name: e\n    type: regex\n    pattern: \"(\"\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data, "fuzz.yaml")
		if err != nil {
			if spec != nil {
				t.Fatalf("error with a non-nil (partial) spec: %v", err)
			}
			return
		}
		if spec == nil {
			t.Fatal("nil spec without an error")
		}
		// A successfully loaded spec is fully validated...
		if verr := spec.Validate("fuzz.yaml"); verr != nil {
			t.Fatalf("loaded spec fails Validate: %v", verr)
		}
		// ...and survives the canonical marshal.
		if _, rerr := Parse(Marshal(spec), "remarshal.yaml"); rerr != nil {
			t.Fatalf("canonical marshal of a loaded spec does not reparse: %v\n%s",
				rerr, Marshal(spec))
		}
	})
}
