// Command leakyway runs the paper-reproduction experiments: every table and
// figure of "Leaky Way" (MICRO 2022), plus the ablations.
//
// Usage:
//
//	leakyway list                 # show available experiments
//	leakyway run fig8 table2      # run specific experiments
//	leakyway run all              # run the full suite
//
// Flags:
//
//	-platform skylake|kabylake|both   platforms to simulate (default both)
//	-seed N                           master seed (default 42)
//	-quick                            reduced trial counts
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"leakyway"
)

func main() {
	platformFlag := flag.String("platform", "both", "platform: skylake, kabylake or both")
	seed := flag.Int64("seed", 42, "master seed for all stochastic elements")
	quick := flag.Bool("quick", false, "run with reduced trial counts")
	flag.Usage = usage
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	switch args[0] {
	case "list":
		list()
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "run: need experiment IDs or 'all'")
			os.Exit(2)
		}
		if err := run(args[1:], *platformFlag, *seed, *quick, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `leakyway — reproduction of "Leaky Way" (MICRO 2022)

usage:
  leakyway [flags] list
  leakyway [flags] run <experiment>...
  leakyway [flags] run all

flags:
`)
	flag.PrintDefaults()
}

func list() {
	fmt.Println("available experiments:")
	for _, e := range leakyway.Experiments() {
		fmt.Printf("  %-14s %s\n", e.ID, e.Title)
	}
}

func run(ids []string, platformName string, seed int64, quick bool, out io.Writer) error {
	ctx := leakyway.NewExperimentContext(out)
	ctx.Seed = seed
	ctx.Quick = quick
	switch platformName {
	case "both", "":
		// default platforms
	default:
		p, ok := leakyway.PlatformByName(platformName)
		if !ok {
			return fmt.Errorf("unknown platform %q (want skylake, kabylake or both)", platformName)
		}
		ctx.Platforms = []leakyway.Platform{p}
	}

	if len(ids) == 1 && ids[0] == "all" {
		_, err := leakyway.RunAllExperiments(ctx)
		return err
	}
	for _, id := range ids {
		if _, err := leakyway.RunExperiment(ctx, id); err != nil {
			return err
		}
	}
	return nil
}
