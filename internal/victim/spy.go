package victim

import (
	"leakyway/internal/core"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

// SpyTTable mounts a Flush+Reload monitor over the victim's T-table: after
// each encryption it reloads every table line with timing (hit = the
// encryption touched it) and flushes it again for the next round. It
// returns one Observation per monitored encryption, aligned with the
// victim's recorded plaintexts.
//
// The attacker must share the T-table mapping (MapShared) and run on a
// different core. Windows must leave room for the 16 timed reloads plus 16
// flushes (≈4.5K cycles on the Skylake calibration); 8K-cycle windows work.
func SpyTTable(m *sim.Machine, coreID int, as *mem.AddressSpace, v *AESVictim, encryptions int) *[]Observation {
	obs := &[]Observation{}
	m.Spawn("aes-spy", coreID, as, func(c *sim.Core) {
		th := core.Calibrate(c, 48)
		// Prime: all table lines uncached before the first encryption.
		for l := 0; l < TTableLines; l++ {
			c.Flush(v.Table + mem.VAddr(l*mem.LineSize))
		}
		c.Fence()
		for i := 0; i < encryptions; i++ {
			// The encryption of window i runs right at the window
			// start; probe mid-window, after it finished and before
			// the next one begins.
			c.WaitUntil(v.Start + int64(i)*v.Window + v.Window/3)
			var o Observation
			for l := 0; l < TTableLines; l++ {
				va := v.Table + mem.VAddr(l*mem.LineSize)
				if t := c.TimedLoad(va); !th.IsMiss(t) {
					o.Lines[l] = true
				}
				c.Flush(va)
			}
			if i < len(v.Plaintexts) {
				o.Plaintext = v.Plaintexts[i]
				*obs = append(*obs, o)
			}
		}
	})
	return obs
}
