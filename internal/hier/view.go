package hier

import (
	"fmt"
	"strings"

	"leakyway/internal/cache"
	"leakyway/internal/mem"
)

// Present reports whether the line holding pa is currently cached at the
// given level (any core's private cache for L1/L2).
func (h *Hierarchy) Present(level Level, pa mem.PAddr) bool {
	la := pa.Line()
	switch level {
	case LevelL1:
		for c := 0; c < h.cfg.Cores; c++ {
			if _, ok := h.l1[c].Probe(h.l1Set(la), la); ok {
				return true
			}
		}
	case LevelL2:
		for c := 0; c < h.cfg.Cores; c++ {
			if _, ok := h.l2[c].Probe(h.l2Set(la), la); ok {
				return true
			}
		}
	case LevelLLC:
		slice, set := h.loc.Locate(la)
		_, ok := h.llc[slice].Probe(set, la)
		return ok
	}
	return false
}

// PresentInCore reports whether core's private cache at the given level
// holds the line.
func (h *Hierarchy) PresentInCore(level Level, core int, pa mem.PAddr) bool {
	h.checkCore(core)
	la := pa.Line()
	switch level {
	case LevelL1:
		_, ok := h.l1[core].Probe(h.l1Set(la), la)
		return ok
	case LevelL2:
		_, ok := h.l2[core].Probe(h.l2Set(la), la)
		return ok
	}
	return false
}

// SetView is a snapshot of the LLC set containing a probe address, used by
// the paper's state-walk figures and by tests asserting on ages.
type SetView struct {
	Slice int
	Set   int
	View  cache.View
}

// LLCSet snapshots the LLC set that pa maps to.
func (h *Hierarchy) LLCSet(pa mem.PAddr) SetView {
	la := pa.Line()
	slice, set := h.loc.Locate(la)
	return SetView{Slice: slice, Set: set, View: h.llc[slice].ViewSet(set)}
}

// LLCAge returns the quad-age of pa's line in the LLC, or -1 if absent.
func (h *Hierarchy) LLCAge(pa mem.PAddr) int {
	la := pa.Line()
	slice, set := h.loc.Locate(la)
	w, ok := h.llc[slice].Probe(set, la)
	if !ok {
		return -1
	}
	return h.llc[slice].ViewSet(set).Meta[w]
}

// LLCCandidate returns the line the LLC replacement policy would evict next
// from pa's set, matching the paper's "eviction candidate" notion.
func (h *Hierarchy) LLCCandidate(pa mem.PAddr) (mem.LineAddr, bool) {
	la := pa.Line()
	slice, set := h.loc.Locate(la)
	return h.llc[slice].EvictionCandidate(set)
}

// LLCOccupancy returns the number of valid ways in pa's LLC set.
func (h *Hierarchy) LLCOccupancy(pa mem.PAddr) int {
	la := pa.Line()
	slice, set := h.loc.Locate(la)
	return h.llc[slice].Occupancy(set)
}

// Format renders the set like the paper's figures: each way as "name:age",
// left to right in replacement-scan order. names maps line addresses to
// labels; unlabeled lines render as "·".
func (v SetView) Format(names map[mem.LineAddr]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "slice %d set %4d |", v.Slice, v.Set)
	for w, ln := range v.View.Lines {
		label := "—"
		if ln.Valid {
			label = "·"
			if n, ok := names[ln.Addr]; ok {
				label = n
			}
		}
		age := v.View.Meta[w]
		if ln.Valid {
			fmt.Fprintf(&b, " %s:%d", label, age)
		} else {
			fmt.Fprintf(&b, " %s", label)
		}
	}
	b.WriteString(" |")
	return b.String()
}

// FlushAll empties every cache in the hierarchy (test helper for preparing
// clean states without touching replacement metadata beyond invalidation).
func (h *Hierarchy) FlushAll() {
	for c := 0; c < h.cfg.Cores; c++ {
		h.flushCache(h.l1[c])
		h.flushCache(h.l2[c])
	}
	for _, s := range h.llc {
		h.flushCache(s)
	}
}

func (h *Hierarchy) flushCache(c *cache.Cache) {
	for set := 0; set < c.Sets(); set++ {
		v := c.ViewSet(set)
		for _, ln := range v.Lines {
			if ln.Valid {
				c.Invalidate(set, ln.Addr)
			}
		}
	}
}

// L1Stats, L2Stats and LLCStats expose event counters for experiments.
func (h *Hierarchy) L1Stats(core int) cache.Stats { h.checkCore(core); return h.l1[core].Stats() }

// L2Stats returns core's L2 counters.
func (h *Hierarchy) L2Stats(core int) cache.Stats { h.checkCore(core); return h.l2[core].Stats() }

// LLCStats returns the summed counters across slices.
func (h *Hierarchy) LLCStats() cache.Stats {
	var total cache.Stats
	for _, s := range h.llc {
		st := s.Stats()
		total.Hits += st.Hits
		total.Misses += st.Misses
		total.Evictions += st.Evictions
		total.Fills += st.Fills
		total.Flushes += st.Flushes
	}
	return total
}

// LLCSlices returns the number of LLC slices.
func (h *Hierarchy) LLCSlices() int { return len(h.llc) }

// LLCSliceStats returns one slice's counters — the per-slice view the
// pollution and slice-hash experiments need (LLCStats only exposes the
// sum across slices).
func (h *Hierarchy) LLCSliceStats(slice int) cache.Stats {
	if slice < 0 || slice >= len(h.llc) {
		panic(fmt.Sprintf("hier: LLC slice %d out of range [0,%d)", slice, len(h.llc)))
	}
	return h.llc[slice].Stats()
}
