package policy

import "testing"

// BenchmarkQuadAgeScan measures the quad-age victim scan plus reinsertion on
// a full 16-way set — the inner loop of every LLC eviction. Must stay
// allocation-free.
func BenchmarkQuadAgeScan(b *testing.B) {
	s := NewQuadAge().NewSet(16)
	for w := 0; w < 16; w++ {
		s.OnFill(w, ClassLoad)
	}
	all := AllWays(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := s.Victim(all)
		s.OnInvalidate(v)
		s.OnFill(v, ClassLoad)
	}
}

// BenchmarkQuadAgeHit measures the hit-promotion path.
func BenchmarkQuadAgeHit(b *testing.B) {
	s := NewQuadAge().NewSet(16)
	for w := 0; w < 16; w++ {
		s.OnFill(w, ClassLoad)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.OnHit(i&15, ClassLoad)
	}
}
