package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("jobs_total", "jobs", L("status", "done"))
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("depth", "queue depth")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}

	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("hist count = %d, want 5", got)
	}
	if got := h.Sum(); got != 56.05 {
		t.Fatalf("hist sum = %v, want 56.05", got)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("k", "v"))
	b := r.Counter("x_total", "x", L("k", "v"))
	if a != b {
		t.Fatalf("same name+labels returned distinct handles")
	}
	c := r.Counter("x_total", "x", L("k", "other"))
	if a == c {
		t.Fatalf("distinct labels returned the same handle")
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestGaugeFuncSampledAtSnapshot(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	var mu sync.Mutex
	r.GaugeFunc("live", "sampled", func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return v
	})
	snap := r.Snapshot()
	if snap[0].Series[0].Value != 1 {
		t.Fatalf("first sample = %v", snap[0].Series[0].Value)
	}
	mu.Lock()
	v = 7
	mu.Unlock()
	snap = r.Snapshot()
	if snap[0].Series[0].Value != 7 {
		t.Fatalf("second sample = %v, want 7", snap[0].Series[0].Value)
	}
}

// TestSnapshotDeterministicOrder registers families and series in
// scrambled order and checks the snapshot sorts them canonically.
func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "z")
	r.Counter("aa_total", "a", L("x", "2"))
	r.Counter("aa_total", "a", L("x", "1"))
	r.Gauge("mm", "m")

	snap := r.Snapshot()
	var names []string
	for _, f := range snap {
		names = append(names, f.Name)
	}
	want := []string{"aa_total", "mm", "zz_total"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("family order %v, want %v", names, want)
		}
	}
	aa := snap[0]
	if aa.Series[0].Labels[0].Value != "1" || aa.Series[1].Labels[0].Value != "2" {
		t.Fatalf("series not sorted by label signature: %+v", aa.Series)
	}
}

// TestPrometheusExpositionGolden pins the exact exposition bytes for a
// fixed registry state — the wire format /metricsz serves.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("leakywayd_jobs_total", "Jobs by terminal status.", L("status", "done")).Add(3)
	r.Counter("leakywayd_jobs_total", "Jobs by terminal status.", L("status", "failed")).Add(1)
	r.Gauge("leakywayd_queue_depth", "Executions queued, not yet running.").Set(2)
	h := r.Histogram("leakywayd_queue_wait_seconds", "Queue wait.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# HELP leakywayd_jobs_total Jobs by terminal status.
# TYPE leakywayd_jobs_total counter
leakywayd_jobs_total{status="done"} 3
leakywayd_jobs_total{status="failed"} 1
# HELP leakywayd_queue_depth Executions queued, not yet running.
# TYPE leakywayd_queue_depth gauge
leakywayd_queue_depth 2
# HELP leakywayd_queue_wait_seconds Queue wait.
# TYPE leakywayd_queue_wait_seconds histogram
leakywayd_queue_wait_seconds_bucket{le="0.01"} 1
leakywayd_queue_wait_seconds_bucket{le="0.1"} 2
leakywayd_queue_wait_seconds_bucket{le="1"} 2
leakywayd_queue_wait_seconds_bucket{le="+Inf"} 3
leakywayd_queue_wait_seconds_sum 5.055
leakywayd_queue_wait_seconds_count 3
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("path", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped series line missing:\n%s\nwant substring %q", b.String(), want)
	}
}

// TestConcurrentUpdatesRaceClean hammers every metric kind from many
// goroutines while snapshots run — the -race gate for the lock-cheap
// update paths.
func TestConcurrentUpdatesRaceClean(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", nil)
	p := NewProgress()
	p.SetEventSource(func() map[string]int64 { return map[string]int64{"hier": c.Value()} })

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / 100)
				p.AddShards(1)
				p.ShardDone()
				if i%100 == 0 {
					p.StartPhase("p")
					_ = r.Snapshot()
					_ = p.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("hist count = %d, want 8000", h.Count())
	}
	s := p.Snapshot()
	if s.ShardsDone != 8000 || s.ShardsTotal != 8000 {
		t.Fatalf("progress shards = %d/%d, want 8000/8000", s.ShardsDone, s.ShardsTotal)
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.SetPhasesTotal(3)
	p.StartPhase("x")
	p.EndPhase()
	p.AddShards(2)
	p.ShardDone()
	p.SetEventSource(func() map[string]int64 { return nil })
	if s := p.Snapshot(); !s.Equal(ProgressSnapshot{}) {
		t.Fatalf("nil progress snapshot = %+v, want zero", s)
	}
}

func TestProgressSnapshotEqual(t *testing.T) {
	a := ProgressSnapshot{Phase: "fig6", ShardsDone: 2, Events: map[string]int64{"sim": 5}}
	b := ProgressSnapshot{Phase: "fig6", ShardsDone: 2, Events: map[string]int64{"sim": 5}}
	if !a.Equal(b) {
		t.Fatalf("equal snapshots compared unequal")
	}
	b.Events["sim"] = 6
	if a.Equal(b) {
		t.Fatalf("different event counts compared equal")
	}
	c := ProgressSnapshot{Phase: "fig6", ShardsDone: 3}
	if a.Equal(c) {
		t.Fatalf("different shard counts compared equal")
	}
}
