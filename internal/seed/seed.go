// Package seed provides the deterministic seed-derivation primitives the
// whole module shares. No parallel unit of work — experiment, platform,
// trial shard, fault scenario — ever feeds the master seed to an RNG
// directly: it derives a private stream keyed by its own path, so results
// depend only on (master seed, key) and never on scheduling order, worker
// count, or composition order.
package seed

import "strconv"

// Split derives a child seed from a master seed and a task key.
//
// Each key part is absorbed with FNV-1a and the state is then passed
// through the SplitMix64 finalizer, so the derivation folds left:
//
//	Split(m, "a", "b") == Split(Split(m, "a"), "b")
//
// which lets a task derive sub-task seeds without knowing its own full
// path. Distinct keys yield (with overwhelming probability) distinct,
// decorrelated streams; the same key always yields the same stream.
func Split(master int64, parts ...string) int64 {
	s := uint64(master)
	for _, p := range parts {
		s ^= fnv1a64(p)
		s = mix64(s)
	}
	return int64(s)
}

// Index derives the seed for numbered shard i — the common case when
// fanning trials out across goroutines.
func Index(master int64, i int) int64 {
	return Split(master, "shard/"+strconv.Itoa(i))
}

// mix64 is the SplitMix64 output function (Steele, Lea & Flood,
// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014): a
// bijective avalanche over 64 bits, so no two states collide.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fnv1a64 hashes a key part (FNV-1a, 64-bit).
func fnv1a64(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
