package channel

import (
	"strings"
	"testing"

	"leakyway/internal/platform"
	"leakyway/internal/sim"
)

func transportConfig() TransportConfig {
	p := platform.Skylake()
	return DefaultTransportConfig(p.Name, p.FreqGHz)
}

func TestARQCleanChannelDelivers(t *testing.T) {
	p := platform.Skylake()
	tcfg := transportConfig()
	tcfg.Channel.NoisePeriod = 0
	payload := RandomMessage(160, 21)
	m := sim.MustNewMachine(p, 1<<30, 11)
	rep, got, err := RunARQ(m, tcfg, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delivered {
		t.Fatalf("clean channel did not deliver: %v", rep)
	}
	if rep.ResidualErrors != 0 {
		t.Fatalf("%d residual errors on a clean channel", rep.ResidualErrors)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
	if rep.Frames != 5 || rep.Attempts < rep.Frames {
		t.Fatalf("frames=%d attempts=%d", rep.Frames, rep.Attempts)
	}
	if rep.GoodputKBps <= 0 {
		t.Fatalf("goodput %.3f", rep.GoodputKBps)
	}
}

func TestARQSurvivesNoise(t *testing.T) {
	p := platform.Skylake()
	tcfg := transportConfig()
	tcfg.Channel.NoisePeriod = 60_000 // much hotter than the default 450k
	payload := RandomMessage(128, 22)
	m := sim.MustNewMachine(p, 1<<30, 12)
	rep, got, err := RunARQ(m, tcfg, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delivered || rep.ResidualErrors != 0 {
		t.Fatalf("noisy delivery failed: %v", rep)
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func TestARQValidation(t *testing.T) {
	p := platform.Skylake()
	m := sim.MustNewMachine(p, 1<<30, 13)
	tcfg := transportConfig()
	tcfg.Channel.Interval = 1000 // below the re-prime floor
	if _, _, err := RunARQ(m, tcfg, RandomMessage(32, 1)); err == nil ||
		!strings.Contains(err.Error(), "re-prime minimum") {
		t.Fatalf("interval floor not enforced: %v", err)
	}
	tcfg = transportConfig()
	if _, _, err := RunARQ(m, tcfg, nil); err == nil ||
		!strings.Contains(err.Error(), "non-empty") {
		t.Fatalf("empty payload not rejected: %v", err)
	}
	tcfg = transportConfig()
	tcfg.FERWindow = 0
	if _, _, err := RunARQ(m, tcfg, RandomMessage(32, 1)); err == nil {
		t.Fatal("FERWindow=0 not rejected")
	}
}

func TestConfigValidate(t *testing.T) {
	p := platform.Skylake()
	good := DefaultConfig(p.Name, p.FreqGHz)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := good
	bad.Interval = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero interval accepted")
	}
	bad = good
	bad.ReceiverOffset = good.Interval
	if err := bad.Validate(); err == nil {
		t.Fatal("receiver offset at interval accepted")
	}
	bad = good
	bad.Interval = MinSelfSyncInterval - 1
	bad.ReceiverOffset = 0
	if err := bad.ValidateSelfSync(); err == nil {
		t.Fatal("self-sync interval below floor accepted")
	}
	if err := bad.Validate(); err != nil {
		t.Fatalf("plain channel should accept short intervals: %v", err)
	}
}

func TestRunEntryPointsRejectBadConfig(t *testing.T) {
	p := platform.Skylake()
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not reject invalid input", name)
			}
		}()
		fn()
	}
	cfg := DefaultConfig(p.Name, p.FreqGHz)
	cfg.Interval = -5
	expectPanic("RunNTPNTP", func() {
		RunNTPNTP(sim.MustNewMachine(p, 1<<30, 1), cfg, RandomMessage(8, 1))
	})
	expectPanic("RunNTPNTP empty msg", func() {
		RunNTPNTP(sim.MustNewMachine(p, 1<<30, 1), DefaultConfig(p.Name, p.FreqGHz), nil)
	})
	expectPanic("RunPrimeProbe", func() {
		RunPrimeProbe(sim.MustNewMachine(p, 1<<30, 1), cfg, RandomMessage(8, 1))
	})
	short := DefaultConfig(p.Name, p.FreqGHz)
	short.Interval = 1500 // legal for the epoch channel, too short for self-sync
	expectPanic("RunNTPNTPSelfSync", func() {
		RunNTPNTPSelfSync(sim.MustNewMachine(p, 1<<30, 1), short, RandomMessage(8, 1))
	})
	expectPanic("Sweep", func() {
		Sweep(p, RunNTPNTP, DefaultConfig(p.Name, p.FreqGHz), []int64{2000}, 0, 1)
	})
}
