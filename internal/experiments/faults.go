package experiments

import (
	"fmt"

	"leakyway/internal/channel"
	"leakyway/internal/fault"
	"leakyway/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "faults",
		Title: "Extension — fault injection: raw vs Hamming vs ARQ transport",
		Paper: "Section IV-B3 lists preemption, noise and timing degradation as reliability threats; the ARQ transport must deliver through all of them",
		Run:   runFaults,
	})
}

// faultScenarios builds the injection menu. Strengths are proportional to
// the run horizon, so raw transmissions of different lengths see a
// comparable fault density.
func faultScenarios() []struct {
	key      string
	scenario func() fault.Scenario
} {
	return []struct {
		key      string
		scenario func() fault.Scenario
	}{
		{"none", func() fault.Scenario { return nil }},
		{"preempt", func() fault.Scenario {
			return fault.Preemption{Count: 6, MinDur: 20_000, MaxDur: 60_000}
		}},
		{"pollute", func() fault.Scenario {
			return fault.Pollution{Bursts: 8, Walks: 4, Gap: 60}
		}},
		{"drift", func() fault.Scenario {
			// A slow receiver clock: strong enough that the slot grids
			// slide a full slot apart within even a quick-mode raw
			// transmission (~340k cycles).
			return fault.ClockDrift{PPM: -8000}
		}},
		{"spikes", func() fault.Scenario {
			return fault.TimerSpikes{Count: 6, Dur: 60_000, Extra: 400}
		}},
		{"migrate", func() fault.Scenario {
			return fault.Migration{Cost: 60_000}
		}},
		{"all", func() fault.Scenario {
			return fault.Compose(
				fault.Preemption{Count: 3, MinDur: 15_000, MaxDur: 40_000},
				fault.Pollution{Bursts: 4, Walks: 3, Gap: 60},
				fault.ClockDrift{PPM: 800},
				fault.TimerSpikes{Count: 3, Dur: 40_000, Extra: 400},
			)
		}},
	}
}

func runFaults(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	rawBits := ctx.Trials(1200)
	const arqBits = 128

	base := channel.DefaultConfig(cfg.Name, cfg.FreqGHz)
	base.Interval = 2000
	base.NoisePeriod = 0 // the fault framework injects the interference

	tcfg := channel.DefaultTransportConfig(cfg.Name, cfg.FreqGHz)
	tcfg.Channel.NoisePeriod = 0

	scenarios := faultScenarios()
	type out struct {
		raw      channel.Report
		residual float64
		arq      channel.TransportReport
		fired    int
	}
	outs := make([]out, len(scenarios))

	// inject stages a scenario against a machine whose channel agents are
	// about to be spawned; the target sets' noise pools double as the
	// pollution working set.
	inject := func(m *sim.Machine, sc fault.Scenario, seedv, horizon int64, pollAS fault.Target, log *fault.Log) {
		if sc == nil {
			return
		}
		tgt := pollAS
		tgt.Sender, tgt.Receiver = "sender", "receiver"
		tgt.SpareCore = 3
		tgt.Horizon = horizon
		log.Attach(m)
		sc.Inject(m, tgt, seedv, log)
	}

	// Every scenario cell runs its three variants on private machines with
	// a scenario-derived seed, so cells shard across free workers and the
	// result is schedule-independent.
	ctx.Parallel(len(scenarios), func(si int) {
		sc := scenarios[si]
		seedv := ctx.SeedFor("faults", sc.key)
		msg := channel.RandomMessage(rawBits, seedv)
		log := &fault.Log{}

		// Raw channel under the scenario.
		{
			m := sim.MustNewMachine(cfg, 1<<30, seedv)
			m.SetTracer(ctx.Tracer(sc.key, "raw"))
			ep, err := channel.Setup(m, 2, 0)
			if err != nil {
				panic(err)
			}
			horizon := base.Start + int64(rawBits)*base.Interval
			inject(m, sc.scenario(), seedv, horizon,
				fault.Target{PolluteAS: ep.NoiseAS, Pollute: ep.NoiseLines}, log)
			outs[si].raw, _ = channel.RunNTPNTPOn(m, base, ep, msg)
			outs[si].fired = len(log.Fired())
		}

		// Interleaved Hamming(7,4) over the same raw channel.
		{
			const depth = 56
			enc := channel.Interleave(channel.EncodeHamming74(msg), depth)
			m := sim.MustNewMachine(cfg, 1<<30, seedv)
			m.SetTracer(ctx.Tracer(sc.key, "hamming"))
			ep, err := channel.Setup(m, 2, 0)
			if err != nil {
				panic(err)
			}
			horizon := base.Start + int64(len(enc))*base.Interval
			inject(m, sc.scenario(), seedv, horizon,
				fault.Target{PolluteAS: ep.NoiseAS, Pollute: ep.NoiseLines}, &fault.Log{})
			_, encBits := channel.RunNTPNTPOn(m, base, ep, enc)
			dec := channel.DecodeHamming74(channel.Deinterleave(encBits, depth))
			decErr := 0
			for i := range msg {
				if i >= len(dec) || dec[i] != msg[i] {
					decErr++
				}
			}
			outs[si].residual = float64(decErr) / float64(len(msg))
		}

		// ARQ transport under the same scenario.
		{
			payload := channel.RandomMessage(arqBits, seedv+1)
			m := sim.MustNewMachine(cfg, 1<<30, seedv)
			m.SetTracer(ctx.Tracer(sc.key, "arq"))
			dx, err := channel.SetupDuplex(m)
			if err != nil {
				panic(err)
			}
			frames := (arqBits + channel.FramePayloadBits - 1) / channel.FramePayloadBits
			horizon := tcfg.Channel.Start + int64(frames)*170*tcfg.Channel.Interval
			inject(m, sc.scenario(), seedv, horizon,
				fault.Target{PolluteAS: dx.NoiseAS, Pollute: dx.NoiseLines}, &fault.Log{})
			rep, _, err := channel.RunARQOn(m, tcfg, dx, payload)
			if err != nil {
				panic(err)
			}
			outs[si].arq = rep
		}
	})

	rows := [][]string{}
	for si, sc := range scenarios {
		o := outs[si]
		arqCell := fmt.Sprintf("0 errors, %d retx, %.2f KB/s", o.arq.Retransmits, o.arq.GoodputKBps)
		if !o.arq.Delivered || o.arq.ResidualErrors > 0 {
			arqCell = fmt.Sprintf("FAILED (%d residual)", o.arq.ResidualErrors)
		}
		rows = append(rows, []string{
			sc.key,
			fmt.Sprintf("%d", o.fired),
			fmt.Sprintf("%.2f%%", 100*o.raw.BER),
			fmt.Sprintf("%.2f%%", 100*o.residual),
			arqCell,
		})
		key := "faults_" + sc.key
		res.Metric(key+"_raw_ber", o.raw.BER)
		res.Metric(key+"_hamming_residual", o.residual)
		res.Metric(key+"_arq_residual", float64(o.arq.ResidualErrors)/float64(o.arq.PayloadBits))
		res.Metric(key+"_arq_delivered", b2f(o.arq.Delivered))
		res.Metric(key+"_arq_goodput_kbps", o.arq.GoodputKBps)
	}
	renderTable(ctx, []string{"fault scenario", "fired", "raw BER", "interleaved Hamming residual", "ARQ transport"}, rows)
	ctx.Printf("every injected fault corrupts the raw channel; forward error correction absorbs\n")
	ctx.Printf("some of it, but only the ARQ transport (CRC-8 frames, retransmission, adaptive\n")
	ctx.Printf("recalibration) delivers a byte-exact message under all of them\n")
	return res, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
