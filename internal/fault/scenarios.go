package fault

import (
	"math/rand"

	"leakyway/internal/seed"
	"leakyway/internal/sim"
)

// Preemption deschedules an agent at random points — the OS stealing the
// receiver's core mid-transmission, the dominant desynchronization threat
// for epoch-based channels.
type Preemption struct {
	// Role is the preempted party (default receiver).
	Role string
	// Count preemptions of duration uniform in [MinDur, MaxDur] cycles.
	Count          int
	MinDur, MaxDur int64
}

func (p Preemption) Name() string { return "preempt-" + roleOf(p.Role) }

func (p Preemption) Inject(m *sim.Machine, tgt Target, seedv int64, log *Log) {
	rng := rand.New(rand.NewSource(seedv))
	agent := tgt.agent(roleOf(p.Role))
	lo, hi := p.MinDur, p.MaxDur
	if hi < lo {
		hi = lo
	}
	for _, at := range points(rng, p.Count, tgt.Horizon) {
		dur := lo
		if hi > lo {
			dur += rng.Int63n(hi - lo + 1)
		}
		m.SchedulePreempt(agent, at, dur)
		log.schedule(Event{Scenario: p.Name(), Agent: agent, Kind: sim.FaultPreempt, At: at, Detail: dur})
	}
}

// Pollution runs a hostile co-tenant that thrashes the channel's target
// sets in bursts — beyond the single periodic noise daemon, this models
// cache-filling phases of real workloads (Section IV-B3's reliability
// threat, turned up).
type Pollution struct {
	// Bursts fill walks over the target-congruent pool; each burst walks
	// the pool Walks times with Gap idle cycles between loads.
	Bursts, Walks int
	Gap           int64
}

func (p Pollution) Name() string { return "pollute" }

func (p Pollution) Inject(m *sim.Machine, tgt Target, seedv int64, log *Log) {
	if len(tgt.Pollute) == 0 || tgt.PolluteAS == nil {
		return
	}
	rng := rand.New(rand.NewSource(seedv))
	walks := p.Walks
	if walks <= 0 {
		walks = 1
	}
	starts := points(rng, p.Bursts, tgt.Horizon)
	for _, at := range starts {
		log.schedule(Event{Scenario: p.Name(), Agent: "pollution", Kind: "pollute-burst", At: at, Detail: int64(walks)})
	}
	lines := tgt.Pollute
	gap := p.Gap
	name := p.Name()
	m.SpawnDaemon("pollution", tgt.SpareCore, tgt.PolluteAS, func(c *sim.Core) {
		for _, at := range starts {
			c.WaitUntil(at)
			begin := c.Now()
			for w := 0; w < walks; w++ {
				for _, va := range lines {
					c.Load(va)
					if gap > 0 {
						c.Spin(gap)
					}
				}
			}
			// Fired once the burst window is known, so diagnostics can
			// attribute every slot the walk actually overlapped.
			log.fire(Event{Scenario: name, Agent: "pollution", Kind: "pollute-burst", At: at, Detail: int64(walks), Dur: c.Now() - begin})
		}
		for {
			c.Spin(1 << 20) // park until teardown
		}
	})
}

// ClockDrift skews one party's TSC by PPM parts per million — unsynced
// clocks across sockets, slowly sliding the parties' slot grids apart.
type ClockDrift struct {
	Role string
	PPM  int64
}

func (d ClockDrift) Name() string { return "drift-" + roleOf(d.Role) }

func (d ClockDrift) Inject(m *sim.Machine, tgt Target, seedv int64, log *Log) {
	agent := tgt.agent(roleOf(d.Role))
	m.SetClockDrift(agent, d.PPM)
	ev := Event{Scenario: d.Name(), Agent: agent, Kind: "drift", At: 0, Detail: d.PPM}
	log.schedule(ev)
	log.fire(ev) // takes effect immediately and unconditionally
}

// TimerSpikes degrades an agent's timer in windows — SMIs, frequency
// transitions and co-runner interference blurring the latency threshold
// that separates a conflict miss from a hit.
type TimerSpikes struct {
	Role  string
	Count int
	// Dur is each window's length; Extra the worst-case added cycles.
	Dur, Extra int64
}

func (s TimerSpikes) Name() string { return "spikes-" + roleOf(s.Role) }

func (s TimerSpikes) Inject(m *sim.Machine, tgt Target, seedv int64, log *Log) {
	rng := rand.New(rand.NewSource(seedv))
	agent := tgt.agent(roleOf(s.Role))
	for i, at := range points(rng, s.Count, tgt.Horizon) {
		m.ScheduleTimerSpike(agent, at, s.Dur, s.Extra, seed.Index(seedv, i))
		log.schedule(Event{Scenario: s.Name(), Agent: agent, Kind: sim.FaultTimerSpike, At: at, Detail: s.Extra})
	}
}

// Migration moves a party to the spare core mid-transmission: its private
// caches go cold and every line it had primed must be re-established.
type Migration struct {
	Role string
	// Cost is the rescheduling stall in cycles.
	Cost int64
}

func (g Migration) Name() string { return "migrate-" + roleOf(g.Role) }

func (g Migration) Inject(m *sim.Machine, tgt Target, seedv int64, log *Log) {
	rng := rand.New(rand.NewSource(seedv))
	agent := tgt.agent(roleOf(g.Role))
	at := points(rng, 1, tgt.Horizon)[0]
	m.ScheduleMigrate(agent, at, tgt.SpareCore, g.Cost)
	log.schedule(Event{Scenario: g.Name(), Agent: agent, Kind: sim.FaultMigrate, At: at, Detail: int64(tgt.SpareCore)})
}

func roleOf(role string) string {
	if role == RoleSender {
		return RoleSender
	}
	return RoleReceiver
}
