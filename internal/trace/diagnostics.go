package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Channel diagnostics: turn one machine's channel + fault events into the
// report a channel engineer wants when a BER regression appears — the
// latency "eye" between the two symbol populations, and, for every
// corrupted bit, which injected fault window overlapped its slot.

// LatStats summarizes one symbol population's latency samples.
type LatStats struct {
	Count    int
	Min, Max int64
	Mean     float64
	P50      int64
}

func latStats(samples []int64) LatStats {
	s := LatStats{Count: len(samples)}
	if s.Count == 0 {
		return s
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.P50 = sorted[len(sorted)/2]
	sum := int64(0)
	for _, v := range sorted {
		sum += v
	}
	s.Mean = float64(sum) / float64(s.Count)
	return s
}

// BitError is one corrupted bit with its attributed cause.
type BitError struct {
	Slot      int
	Sent, Got int
	At        int64 // receiver's probe cycle
	// Cause names the fault event whose window overlapped the slot
	// ("preempt @1203456 (+40000)"), or "unattributed".
	Cause string
}

// LaneDiag is the diagnostics of one traced machine's channel lane.
type LaneDiag struct {
	Label string
	// Threshold is the receiver's calibrated miss threshold (from the
	// latest calibrate event), 0 if never calibrated.
	Threshold int64
	// Zero/One are the latency populations of slots decoded as 0 (cache
	// hit) and 1 (miss). EyeMargin = One.Min - Zero.Max: positive means
	// the populations separate and the threshold has room; negative
	// means the eye is closed and errors are inevitable.
	Zero, One LatStats
	EyeMargin int64
	TxBits    int
	RxBits    int
	Errors    []BitError
	// Attributed counts errors matched to a fault window.
	Attributed int
}

// faultWindow is a fault occurrence widened into a time interval.
type faultWindow struct {
	from, to int64
	desc     string
}

// Diagnose builds per-lane diagnostics for every buffer that recorded
// channel slot samples. Buffers without rx-bit events are skipped.
func Diagnose(bufs []*Buffer) []LaneDiag {
	var out []LaneDiag
	for _, b := range bufs {
		if d, ok := diagnoseBuffer(b); ok {
			out = append(out, d)
		}
	}
	return out
}

func diagnoseBuffer(b *Buffer) (LaneDiag, bool) {
	d := LaneDiag{Label: b.label}
	sent := map[int]Event{}
	var rx []Event
	var windows []faultWindow
	var slotLen int64

	for _, e := range b.events {
		switch {
		case e.Pkg == "channel" && e.Kind == "tx-bit":
			sent[e.Slot] = e
			d.TxBits++
		case e.Pkg == "channel" && e.Kind == "rx-bit":
			rx = append(rx, e)
			d.RxBits++
			if e.Dur > slotLen {
				slotLen = e.Dur
			}
		case e.Pkg == "channel" && e.Kind == "calibrate":
			d.Threshold = e.Lat
		case e.Pkg == "fault":
			to := e.Time + e.Dur
			desc := e.Kind
			if e.Note != "" {
				desc = e.Note + "/" + e.Kind
			}
			windows = append(windows, faultWindow{
				from: e.Time,
				to:   to,
				desc: fmt.Sprintf("%s @%d (+%d)", desc, e.Time, e.Dur),
			})
		}
	}
	if len(rx) == 0 {
		return d, false
	}

	var zeros, ones []int64
	for _, e := range rx {
		if e.Bit == 1 {
			ones = append(ones, e.Lat)
		} else {
			zeros = append(zeros, e.Lat)
		}
	}
	d.Zero, d.One = latStats(zeros), latStats(ones)
	if d.Zero.Count > 0 && d.One.Count > 0 {
		d.EyeMargin = d.One.Min - d.Zero.Max
	}

	// Error attribution: an rx-bit disagreeing with the tx-bit of the
	// same slot is corrupted; blame the fault window overlapping the
	// probe (widened by one slot on each side, since a disturbance ending
	// just before the probe still corrupts the set state it reads).
	slack := slotLen
	if slack == 0 {
		slack = 1
	}
	for _, e := range rx {
		tx, ok := sent[e.Slot]
		if !ok || tx.Bit == e.Bit {
			continue
		}
		be := BitError{Slot: e.Slot, Sent: tx.Bit, Got: e.Bit, At: e.Time, Cause: "unattributed"}
		for _, w := range windows {
			if e.Time >= w.from-slack && e.Time <= w.to+slack {
				be.Cause = w.desc
				d.Attributed++
				break
			}
		}
		d.Errors = append(d.Errors, be)
	}
	return d, true
}

// Summary renders the lane in one line.
func (d LaneDiag) Summary() string {
	return fmt.Sprintf("%-48s bits=%d errs=%d (%d attributed) eye=[hit≤%d | miss≥%d] margin=%d th=%d",
		d.Label, d.RxBits, len(d.Errors), d.Attributed, d.Zero.Max, d.One.Min, d.EyeMargin, d.Threshold)
}

// Render writes the full diagnostics report: one summary line per lane
// plus up to maxErrs attributed-error detail lines each.
func Render(diags []LaneDiag, maxErrs int) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.Summary())
		sb.WriteByte('\n')
		sb.WriteString(fmt.Sprintf("  eye detail: hit n=%d [%d..%d] mean=%.1f p50=%d | miss n=%d [%d..%d] mean=%.1f p50=%d\n",
			d.Zero.Count, d.Zero.Min, d.Zero.Max, d.Zero.Mean, d.Zero.P50,
			d.One.Count, d.One.Min, d.One.Max, d.One.Mean, d.One.P50))
		for i, e := range d.Errors {
			if maxErrs >= 0 && i >= maxErrs {
				sb.WriteString(fmt.Sprintf("  ... and %d more corrupted bits\n", len(d.Errors)-i))
				break
			}
			sb.WriteString(fmt.Sprintf("  bit %4d corrupted (sent %d, read %d) @%d <- %s\n",
				e.Slot, e.Sent, e.Got, e.At, e.Cause))
		}
	}
	return sb.String()
}
