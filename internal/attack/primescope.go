package attack

import (
	"leakyway/internal/core"
	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

// ScopeVariant selects the preparation step of the scope attack.
type ScopeVariant int

const (
	// PrimeScope is the original attack: the 192-reference Listing 1
	// pattern leaves the scope line L1-resident and (by fill order) the
	// LLC eviction candidate.
	PrimeScope ScopeVariant = iota
	// PrimePrefetchScope is the paper's improvement (Listing 2): prime
	// the other lines twice and install the scope line with PREFETCHNTA —
	// 31 references on our 16-line eviction set (the paper primes 16
	// non-scope lines for 33; we keep the scope line inside the 16 so
	// that after each detection the set is exactly full).
	PrimePrefetchScope
)

// String implements fmt.Stringer.
func (v ScopeVariant) String() string {
	if v == PrimeScope {
		return "Prime+Scope"
	}
	return "Prime+Prefetch+Scope"
}

// ScopeConfig parameterizes a scope-attack run.
type ScopeConfig struct {
	// Iterations is the number of prepare→scope cycles to run.
	Iterations int
	// VictimPeriod is the victim's access period (1.5K cycles in the
	// paper's false-negative experiment).
	VictimPeriod int64
	// ScopeTimeout bounds one scoping phase; after it the attacker
	// re-prepares (standard practice against lost events).
	ScopeTimeout int64
}

// ScopeResult reports the run.
type ScopeResult struct {
	Variant ScopeVariant
	// PrepLatencies is the cost of each preparation step (Figure 11).
	PrepLatencies []int64
	// PrepRefs is the number of cache references per preparation.
	PrepRefs int
	// Detections are the cycle times at which the attacker observed a
	// victim access.
	Detections []int64
	// VictimAccesses are the ground-truth access times.
	VictimAccesses []int64
	// FalseNegativeRate is the fraction of victim accesses with no
	// detection inside the following period.
	FalseNegativeRate float64
}

// RunScope mounts the scope attack on a fresh machine of the given platform
// and measures preparation latency and event coverage.
func RunScope(platformCfg hier.Config, variant ScopeVariant, cfg ScopeConfig, seed int64) ScopeResult {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 1000
	}
	if cfg.VictimPeriod <= 0 {
		cfg.VictimPeriod = 1500
	}
	if cfg.ScopeTimeout <= 0 {
		cfg.ScopeTimeout = 2 * cfg.VictimPeriod
	}
	m := sim.MustNewMachine(platformCfg, 1<<30, seed)
	attackerAS := m.NewSpace()
	victimAS := m.NewSpace()

	res := ScopeResult{Variant: variant}

	// The scope line anchors the target set; both variants use a 16-line
	// eviction set with the scope line at index 0 (as in Listing 1). The
	// prefetch variant primes the 15 non-scope lines twice and installs
	// the scope line with PREFETCHNTA: 31 references — after a detection
	// the target set holds exactly the 15 primed lines plus the victim's
	// line, so the single NTA fill reliably displaces the victim's line.
	extra := m.H.Config().LLCWays - 1
	anchor, err := attackerAS.Alloc(mem.PageSize)
	if err != nil {
		panic(err)
	}
	evset := append([]mem.VAddr{anchor}, core.MustCongruentLines(m, attackerAS, anchor, extra)...)
	scopeLine := evset[0]

	// The victim's line maps to the same LLC set.
	dvs, err := core.CongruentWithLine(m, victimAS, attackerAS.MustTranslate(scopeLine).Line(), 1)
	if err != nil {
		panic(err)
	}
	victim := SpawnPeriodicVictim(m, 1, victimAS, dvs[0], cfg.VictimPeriod)

	var attackEnd int64
	m.Spawn("attacker", 0, attackerAS, func(c *sim.Core) {
		th := core.Calibrate(c, 48)
		// The priming order rotates across iterations (scope line fixed
		// at index 0). Without rotation, the L1 retains a fixed subset
		// of the eviction set across the whole attack, and those lines'
		// LLC ages are never refreshed — they saturate at age 3 and
		// absorb every eviction meant for the victim's line.
		view := make([]mem.VAddr, len(evset))
		view[0] = evset[0]
		for it := 0; it < cfg.Iterations; it++ {
			for i := 1; i < len(evset); i++ {
				view[i] = evset[1+(i-1+it)%(len(evset)-1)]
			}
			t0 := c.Now()
			var refs int
			if variant == PrimeScope {
				refs = core.PrimeScopePrepare(c, view)
			} else {
				refs = core.PrimePrefetchScopePrepare(c, view, 2)
			}
			res.PrepRefs = refs
			res.PrepLatencies = append(res.PrepLatencies, c.Now()-t0)

			// Scope: hammer the scope line until it leaves the L1
			// (the victim's fill evicted it from the inclusive LLC).
			deadline := c.Now() + cfg.ScopeTimeout
			for c.Now() < deadline {
				if t := c.TimedLoad(scopeLine); t > th.L1Threshold {
					res.Detections = append(res.Detections, c.Now())
					break
				}
			}
		}
		attackEnd = c.Now()
	})
	m.Run()

	res.VictimAccesses = victim.Accesses
	res.FalseNegativeRate = falseNegativeRate(victim.Accesses, res.Detections, cfg.VictimPeriod, attackEnd-cfg.VictimPeriod)
	return res
}

// falseNegativeRate matches each detection to the most recent unmatched
// victim access within one period before it; unmatched accesses are false
// negatives. Accesses after the horizon (the end of the attack, minus one
// period of slack) are ignored.
func falseNegativeRate(accesses, detections []int64, period, horizon int64) float64 {
	if len(accesses) == 0 {
		return 0
	}
	matched := 0
	total := 0
	di := 0
	for _, a := range accesses {
		if a > horizon {
			break
		}
		total++
		for di < len(detections) && detections[di] < a {
			di++
		}
		if di < len(detections) && detections[di]-a <= period {
			matched++
			di++
		}
	}
	if total == 0 {
		return 1
	}
	return 1 - float64(matched)/float64(total)
}
