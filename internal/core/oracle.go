package core

import (
	"fmt"

	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

// The oracles below stage experiments that are *not* about congruence
// discovery: they allocate memory in an agent's address space and use the
// machine's geometry to pick lines that collide (or deliberately do not
// collide) in the LLC. The realistic, timing-only construction lives in
// package evset; the paper likewise assumes eviction sets "constructed with
// methods from prior work" for its channel experiments.

// CongruentLines returns n distinct virtual lines in as that are
// LLC-congruent with target (same slice, same set) and do not share target's
// line. Pages are allocated on demand.
func CongruentLines(m *sim.Machine, as *mem.AddressSpace, target mem.VAddr, n int) ([]mem.VAddr, error) {
	tpa, err := as.Translate(target)
	if err != nil {
		return nil, fmt.Errorf("core: target unmapped: %w", err)
	}
	return CongruentWithLine(m, as, tpa.Line(), n)
}

// CongruentWithLine returns n virtual lines in as whose physical lines are
// LLC-congruent with tline (which may belong to a different process — this
// is how a covert-channel sender and receiver end up with lines in one
// agreed LLC set). Pages are allocated on demand.
func CongruentWithLine(m *sim.Machine, as *mem.AddressSpace, tline mem.LineAddr, n int) ([]mem.VAddr, error) {
	geo := m.H.Geometry()
	lineOff := (uint64(tline) % mem.LinesPerPage) * mem.LineSize
	var out []mem.VAddr
	const batch = 64
	for budget := 0; len(out) < n; budget++ {
		if budget > 4096 {
			return nil, fmt.Errorf("core: exhausted %d pages finding congruent lines", budget*batch)
		}
		base, err := as.Alloc(batch * mem.PageSize)
		if err != nil {
			return nil, err
		}
		for p := uint64(0); p < batch && len(out) < n; p++ {
			va := base + mem.VAddr(p*mem.PageSize) + mem.VAddr(lineOff)
			la := as.MustTranslate(va).Line()
			if la != tline && geo.Congruent(la, tline) {
				out = append(out, va)
			}
		}
	}
	return out, nil
}

// MustCongruentLines panics on failure (experiment setup helper).
func MustCongruentLines(m *sim.Machine, as *mem.AddressSpace, target mem.VAddr, n int) []mem.VAddr {
	out, err := CongruentLines(m, as, target, n)
	if err != nil {
		panic(err)
	}
	return out
}

// PrivateCongruentLines returns n lines that share target's L1 and L2 sets
// but are NOT LLC-congruent with it — the "l′" eviction set of the paper's
// Figure 4 experiment, used to evict a line from the private caches while
// leaving its LLC copy in place.
func PrivateCongruentLines(m *sim.Machine, as *mem.AddressSpace, target mem.VAddr, n int) ([]mem.VAddr, error) {
	cfg := m.H.Config()
	geo := m.H.Geometry()
	tpa, err := as.Translate(target)
	if err != nil {
		return nil, fmt.Errorf("core: target unmapped: %w", err)
	}
	tline := tpa.Line()
	l1Mask := uint64(cfg.L1Sets - 1)
	l2Mask := uint64(cfg.L2Sets - 1)
	lineOff := target.PageOffset() &^ (mem.LineSize - 1)
	var out []mem.VAddr
	const batch = 64
	for budget := 0; len(out) < n; budget++ {
		if budget > 4096 {
			return nil, fmt.Errorf("core: exhausted %d pages finding private-congruent lines", budget*batch)
		}
		base, err := as.Alloc(batch * mem.PageSize)
		if err != nil {
			return nil, err
		}
		for p := uint64(0); p < batch && len(out) < n; p++ {
			va := base + mem.VAddr(p*mem.PageSize) + mem.VAddr(lineOff)
			la := as.MustTranslate(va).Line()
			if la == tline || geo.Congruent(la, tline) {
				continue
			}
			if uint64(la)&l1Mask != uint64(tline)&l1Mask {
				continue
			}
			if uint64(la)&l2Mask != uint64(tline)&l2Mask {
				continue
			}
			out = append(out, va)
		}
	}
	return out, nil
}

// MustPrivateCongruentLines panics on failure.
func MustPrivateCongruentLines(m *sim.Machine, as *mem.AddressSpace, target mem.VAddr, n int) []mem.VAddr {
	out, err := PrivateCongruentLines(m, as, target, n)
	if err != nil {
		panic(err)
	}
	return out
}

// EvictPrivate drives target out of the agent's L1 and L2 without touching
// its LLC set, by walking a private-congruent eviction set several times
// (Step 1 of the Figure 4 experiment). The caller provides the set from
// PrivateCongruentLines; w+1 lines walked twice suffice because
// L1ways + L2ways < LLCways on the modelled parts.
func EvictPrivate(c *sim.Core, evset []mem.VAddr, rounds int) {
	if rounds <= 0 {
		rounds = 2
	}
	for r := 0; r < rounds; r++ {
		for _, va := range evset {
			c.Load(va)
		}
	}
}
