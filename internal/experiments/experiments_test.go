package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quickCtx returns a quick-mode context capturing output.
func quickCtx() (*Context, *bytes.Buffer) {
	var buf bytes.Buffer
	ctx := NewContext(&buf)
	ctx.Quick = true
	return ctx, &buf
}

func metric(t *testing.T, r *Result, name string) float64 {
	t.Helper()
	v, ok := r.Metrics[name]
	if !ok {
		t.Fatalf("metric %q missing (have %v)", name, sortedMetricNames(r))
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig1", "fig2", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig8", "table2",
		"fig11", "fnrate", "fig9", "fig10", "fig12", "table3",
		"fig13", "counter", "classic", "defense", "noninclusive", "ablate-lanes", "selfsync", "pollution", "noise",
		"resolution", "stealth", "evset-algos",
		"ablate-sets", "ablate-hwpf", "ablate-policy",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a nonexistent experiment")
	}
	if _, err := RunOne(quickCtxOnly(), "nope"); err == nil {
		t.Error("RunOne accepted a nonexistent experiment")
	}
}

func quickCtxOnly() *Context {
	ctx, _ := quickCtx()
	return ctx
}

func TestFig1(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "fig1")
	if err != nil {
		t.Fatal(err)
	}
	if metric(t, r, "eviction_order_matches_paper") != 1 {
		t.Fatal("Figure 1 walk does not evict l0 then l1")
	}
}

func TestFig2(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "fig2")
	if err != nil {
		t.Fatal(err)
	}
	if v := metric(t, r, "min_prefetched_reload_cycles"); v < 200 {
		t.Fatalf("prefetched line not always evicted: min reload %.0f cycles, want >200", v)
	}
	if v := metric(t, r, "control_fast_positions"); v < 14 {
		t.Fatalf("control survived at only %.0f/16 positions", v)
	}
}

func TestFig3(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "fig3")
	if err != nil {
		t.Fatal(err)
	}
	if metric(t, r, "order_match_fraction") != 1 {
		t.Fatal("insertion-policy eviction order did not match l1..l15 in every run")
	}
}

func TestFig4(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "fig4")
	if err != nil {
		t.Fatal(err)
	}
	if v := metric(t, r, "stock_dram_fraction"); v < 0.99 {
		t.Fatalf("stock policy: line evicted in only %.1f%% of trials, want ~100%%", 100*v)
	}
	if v := metric(t, r, "ablation_dram_fraction"); v > 0.01 {
		t.Fatalf("ablation: line evicted in %.1f%% of trials, want ~0%%", 100*v)
	}
}

func TestFig5(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	l1 := metric(t, r, "l1_mean")
	llc := metric(t, r, "llc_mean")
	mem := metric(t, r, "dram_mean")
	if !(l1 < llc && llc < mem) {
		t.Fatalf("timing tiers out of order: %f %f %f", l1, llc, mem)
	}
	if l1 < 55 || l1 > 85 {
		t.Errorf("L1 tier %.0f, want ≈70", l1)
	}
	if llc < 85 || llc > 110 {
		t.Errorf("LLC tier %.0f, want 90-100", llc)
	}
	if mem < 200 {
		t.Errorf("DRAM tier %.0f, want >200", mem)
	}
}

func TestFig6And7(t *testing.T) {
	ctx, out := quickCtx()
	r, err := RunOne(ctx, "fig6")
	if err != nil {
		t.Fatal(err)
	}
	if metric(t, r, "state_walk_correct") != 1 {
		t.Fatal("NTP+NTP state walk decoded wrong bits")
	}
	if !strings.Contains(out.String(), "dr:3") {
		t.Error("trace does not show dr installed at age 3")
	}
	r, err = RunOne(ctx, "fig7")
	if err != nil {
		t.Fatal(err)
	}
	if metric(t, r, "pipeline_errors") != 0 {
		t.Fatal("two-set pipeline dropped bits")
	}
}

func TestTable2Shape(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "table2")
	if err != nil {
		t.Fatal(err)
	}
	for _, plat := range []string{"skylake", "kabylake"} {
		ntp := metric(t, r, plat+"/ntpntp_peak_kbps")
		pp := metric(t, r, plat+"/primeprobe_peak_kbps")
		if ntp < 2*pp {
			t.Errorf("%s: NTP+NTP %.0f KB/s not >2x Prime+Probe %.0f KB/s", plat, ntp, pp)
		}
		if ntp < 150 || ntp > 450 {
			t.Errorf("%s: NTP+NTP peak %.0f KB/s outside the plausible band", plat, ntp)
		}
	}
}

func TestFig11AndFNRate(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "fig11")
	if err != nil {
		t.Fatal(err)
	}
	for _, plat := range []string{"skylake", "kabylake"} {
		if v := metric(t, r, plat+"/prep_speedup"); v < 1.5 {
			t.Errorf("%s: prep speedup %.2fx, want >1.5x", plat, v)
		}
	}
	r, err = RunOne(ctx, "fnrate")
	if err != nil {
		t.Fatal(err)
	}
	ps := metric(t, r, "skylake/primescope_fn_rate")
	pps := metric(t, r, "skylake/prefetchscope_fn_rate")
	if pps > 0.05 {
		t.Errorf("Prime+Prefetch+Scope FN %.1f%%, want <5%%", 100*pps)
	}
	if ps < 0.3 {
		t.Errorf("Prime+Scope FN %.1f%%, want large (paper ≈50%%)", 100*ps)
	}
}

func TestFig9And10(t *testing.T) {
	ctx, _ := quickCtx()
	for _, id := range []string{"fig9", "fig10"} {
		r, err := RunOne(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if metric(t, r, "state_walk_correct") != 1 {
			t.Fatalf("%s: wrong verdicts in the state walk", id)
		}
	}
}

func TestFig12Ordering(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "fig12")
	if err != nil {
		t.Fatal(err)
	}
	for _, plat := range []string{"skylake", "kabylake"} {
		rr := metric(t, r, plat+"/reload_refresh_mean")
		v1 := metric(t, r, plat+"/prefetch_refresh_v1_mean")
		v2 := metric(t, r, plat+"/prefetch_refresh_v2_mean")
		if !(rr > v1 && v1 > v2) {
			t.Errorf("%s: ordering broken: %f %f %f", plat, rr, v1, v2)
		}
	}
}

func TestTable3Counts(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "table3")
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"variant0/flushes": 2, "variant0/dram": 2, "variant0/llc": 14,
		"variant1/flushes": 2, "variant1/dram": 2, "variant1/llc": 0,
		"variant2/flushes": 1, "variant2/dram": 1, "variant2/llc": 0,
	}
	for name, want := range checks {
		if got := metric(t, r, name); got != want {
			t.Errorf("%s = %.0f, want %.0f", name, got, want)
		}
	}
}

func TestFig13(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "fig13")
	if err != nil {
		t.Fatal(err)
	}
	for _, plat := range []string{"skylake", "kabylake"} {
		if v := metric(t, r, plat+"/time_speedup"); v < 2 {
			t.Errorf("%s: construction speedup %.1fx, want well above 1", plat, v)
		}
	}
}

func TestCounter(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "counter")
	if err != nil {
		t.Fatal(err)
	}
	intel := metric(t, r, "intel_ratio")
	cm := metric(t, r, "countermeasure_ratio")
	if intel < 4 {
		t.Errorf("Intel-policy improvement %.2fx, want large (paper 7.25x)", intel)
	}
	if cm > 1.6 {
		t.Errorf("countermeasure improvement %.2fx, want ≈1x (paper 1.26x)", cm)
	}
}

func TestAblations(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "ablate-sets")
	if err != nil {
		t.Fatal(err)
	}
	if two, bad := metric(t, r, "two_set_peak"), metric(t, r, "one_set_inflight_peak"); two < 10*bad+50 {
		t.Errorf("in-flight probing should collapse capacity: two-set %.1f vs %.1f", two, bad)
	}
	r, err = RunOne(ctx, "ablate-policy")
	if err != nil {
		t.Fatal(err)
	}
	if stock, cm := metric(t, r, "stock_capacity"), metric(t, r, "countermeasure_capacity"); cm > stock/5 {
		t.Errorf("countermeasure should break the channel: stock %.1f vs cm %.1f", stock, cm)
	}
	r, err = RunOne(ctx, "ablate-hwpf")
	if err != nil {
		t.Fatal(err)
	}
	if on := metric(t, r, "hwpf_on_ber"); on > 0.05 {
		t.Errorf("hardware prefetchers should not disturb the channel: BER %.2f%%", 100*on)
	}
}

func TestClassicExperiment(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "classic")
	if err != nil {
		t.Fatal(err)
	}
	if metric(t, r, "flush_flush_target_accesses") != 0 {
		t.Error("Flush+Flush should never access the shared line")
	}
	for _, k := range []string{"flush_reload_accuracy", "flush_flush_accuracy", "evict_reload_accuracy"} {
		if metric(t, r, k) < 0.97 {
			t.Errorf("%s = %.2f, want ≈1", k, r.Metrics[k])
		}
	}
	if metric(t, r, "evict_reload_mean") < 3*metric(t, r, "flush_reload_mean") {
		t.Error("Evict+Reload should be much slower than Flush+Reload")
	}
}

func TestEvsetAlgosExperiment(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "evset-algos")
	if err != nil {
		t.Fatal(err)
	}
	pref := metric(t, r, "prefetch_refs")
	base := metric(t, r, "baseline_refs")
	huge := metric(t, r, "hugepage_refs")
	if base < 3*pref {
		t.Errorf("baseline (%.0f refs) should dwarf Algorithm 2 (%.0f)", base, pref)
	}
	if huge > pref/5 {
		t.Errorf("huge pages (%.0f refs) should dwarf-reduce Algorithm 2's cost (%.0f)", huge, pref)
	}
	if gt := metric(t, r, "grouptest_congruent"); gt < 16 {
		t.Errorf("group testing superset holds %.0f congruent lines, want 16", gt)
	}
}

func TestResolutionExperiment(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "resolution")
	if err != nil {
		t.Fatal(err)
	}
	scope := metric(t, r, "scope_median_delay")
	probe := metric(t, r, "probe_median_delay")
	if scope > 300 {
		t.Errorf("scope median delay %.0f cycles; paper-class resolution is ≈100", scope)
	}
	if probe < 5*scope {
		t.Errorf("probing (%.0f) should be far coarser than scoping (%.0f)", probe, scope)
	}
}

func TestStealthExperiment(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "stealth")
	if err != nil {
		t.Fatal(err)
	}
	if fr := metric(t, r, "flush_reload_victim_missfrac"); fr < 0.95 {
		t.Errorf("Flush+Reload victim miss fraction %.2f, want ≈1", fr)
	}
	for _, k := range []string{"reload_refresh_victim_missfrac", "prefetch_refresh_victim_missfrac"} {
		if v := metric(t, r, k); v > 0.05 {
			t.Errorf("%s = %.2f, want ≈0 (the stealth claim)", k, v)
		}
	}
}

func TestNoiseExperiment(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "noise")
	if err != nil {
		t.Fatal(err)
	}
	quietRaw := metric(t, r, "noise0_raw_ber")
	heavyRaw := metric(t, r, "noise40000_raw_ber")
	if heavyRaw <= quietRaw {
		t.Errorf("heavier noise should raise raw BER: %.3f vs %.3f", heavyRaw, quietRaw)
	}
	if ham := metric(t, r, "noise400000_hamming_residual"); ham > metric(t, r, "noise400000_raw_ber") {
		t.Errorf("Hamming should not be worse than raw under sparse noise")
	}
}

func TestPollutionExperiment(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "pollution")
	if err != nil {
		t.Fatal(err)
	}
	stock := metric(t, r, "stock_worker_hitrate")
	cm := metric(t, r, "countermeasure_worker_hitrate")
	if stock < 0.99 {
		t.Errorf("stock policy should protect the worker: hit rate %.1f%%", 100*stock)
	}
	if cm > stock-0.02 {
		t.Errorf("countermeasure should cost the worker hits: %.1f%% vs %.1f%%", 100*cm, 100*stock)
	}
}

func TestSelfSyncExperiment(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "selfsync")
	if err != nil {
		t.Fatal(err)
	}
	if metric(t, r, "quiet_ber") > 0.02 {
		t.Errorf("quiet self-sync BER %.2f%%, want ≈0", 100*r.Metrics["quiet_ber"])
	}
}

func TestLanesScaling(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "ablate-lanes")
	if err != nil {
		t.Fatal(err)
	}
	one := metric(t, r, "lanes1_capacity")
	four := metric(t, r, "lanes4_capacity")
	if four < 1.5*one {
		t.Errorf("4 lanes (%.1f) should clearly beat 1 lane (%.1f)", four, one)
	}
}

func TestNonInclusiveExperiment(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "noninclusive")
	if err != nil {
		t.Fatal(err)
	}
	inc := metric(t, r, "inclusive_capacity")
	non := metric(t, r, "noninclusive_capacity")
	if non > inc/10 {
		t.Errorf("non-inclusive LLC should kill the channel: %.1f vs %.1f KB/s", non, inc)
	}
	if plain := metric(t, r, "dir_plain_capacity"); plain > inc/10 {
		t.Errorf("plain directory should not revive the channel: %.1f KB/s", plain)
	}
	if dir := metric(t, r, "dir_ntp_capacity"); dir < inc*0.8 {
		t.Errorf("the Section VI-B conjecture should revive the channel: %.1f vs %.1f KB/s", dir, inc)
	}
}

func TestDefenseExperiment(t *testing.T) {
	ctx, _ := quickCtx()
	r, err := RunOne(ctx, "defense")
	if err != nil {
		t.Fatal(err)
	}
	stock := metric(t, r, "stock_capacity")
	if stock < 100 {
		t.Fatalf("undefended capacity %.1f too low", stock)
	}
	for _, k := range []string{"partition_capacity", "hardened_capacity"} {
		if v := metric(t, r, k); v > stock/10 {
			t.Errorf("%s = %.1f KB/s; the defense should break the channel", k, v)
		}
	}
}

func TestTable1(t *testing.T) {
	ctx, out := quickCtx()
	r, err := RunOne(ctx, "table1")
	if err != nil {
		t.Fatal(err)
	}
	if metric(t, r, "skylake/llc_ways") != 16 {
		t.Error("Skylake LLC associativity wrong")
	}
	if !strings.Contains(out.String(), "Kaby Lake") {
		t.Error("Kaby Lake missing from Table I output")
	}
}
