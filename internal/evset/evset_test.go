package evset

import (
	"testing"

	"leakyway/internal/core"
	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/platform"
	"leakyway/internal/sim"
)

// smallMachine shrinks the LLC so construction tests stay fast: 1 slice of
// 64 sets, 8 ways. Note the whole set index then fits in the page offset,
// so every same-offset candidate is congruent — fine for correctness tests;
// use mediumMachine when discovery sparsity matters.
func smallMachine(seed int64) *sim.Machine {
	cfg := platformConfigForTests()
	cfg.LLCSlices = 1
	cfg.LLCSetsPerSlice = 64
	cfg.LLCWays = 8
	return sim.MustNewMachine(cfg, 1<<28, seed)
}

// platformConfigForTests returns the Skylake base config.
func platformConfigForTests() hier.Config {
	return platform.Skylake()
}

func TestBuildPrefetchFindsCongruentLines(t *testing.T) {
	m := smallMachine(1)
	as := m.NewSpace()
	var res Result
	var err error
	var target mem.VAddr
	m.Spawn("attacker", 0, as, func(c *sim.Core) {
		target = c.Alloc(mem.PageSize)
		th := core.Calibrate(c, 32)
		pool := NewPool(c, target, 4096)
		res, err = BuildPrefetch(c, target, Options{Desired: 8, Pool: pool, Thresholds: th})
	})
	m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 8 {
		t.Fatalf("found %d lines, want 8", len(res.Set))
	}
	if ok := Verify(m, as, target, res.Set); ok != 8 {
		t.Fatalf("only %d/8 found lines are truly congruent", ok)
	}
	if res.MemRefs <= 0 || res.Cycles <= 0 {
		t.Fatalf("bogus cost accounting: %+v", res)
	}
}

func TestBuildBaselineFindsCongruentLines(t *testing.T) {
	m := smallMachine(2)
	as := m.NewSpace()
	var res Result
	var err error
	var target mem.VAddr
	m.Spawn("attacker", 0, as, func(c *sim.Core) {
		target = c.Alloc(mem.PageSize)
		th := core.Calibrate(c, 32)
		pool := NewPool(c, target, 8192)
		res, err = BuildBaseline(c, target, Options{Desired: 4, Pool: pool, Thresholds: th})
	})
	m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 4 {
		t.Fatalf("found %d lines, want 4", len(res.Set))
	}
	ok := Verify(m, as, target, res.Set)
	if ok < 3 {
		t.Fatalf("only %d/4 found lines are truly congruent", ok)
	}
}

func TestPrefetchBeatsBaseline(t *testing.T) {
	// The headline Figure 13 claim, at reduced scale: the prefetch-based
	// construction needs far fewer references and cycles.
	m := smallMachine(3)
	as := m.NewSpace()
	var pref, base Result
	m.Spawn("attacker", 0, as, func(c *sim.Core) {
		th := core.Calibrate(c, 32)
		t1 := c.Alloc(mem.PageSize)
		pool1 := NewPool(c, t1, 4096)
		var err error
		pref, err = BuildPrefetch(c, t1, Options{Desired: 6, Pool: pool1, Thresholds: th})
		if err != nil {
			t.Errorf("prefetch build: %v", err)
		}
		t2 := c.Alloc(mem.PageSize)
		pool2 := NewPool(c, t2, 8192)
		base, err = BuildBaseline(c, t2, Options{Desired: 6, Pool: pool2, Thresholds: th})
		if err != nil {
			t.Errorf("baseline build: %v", err)
		}
	})
	m.Run()
	if base.MemRefs <= pref.MemRefs {
		t.Fatalf("baseline refs (%d) should exceed prefetch refs (%d)", base.MemRefs, pref.MemRefs)
	}
	if base.Cycles <= pref.Cycles {
		t.Fatalf("baseline cycles (%d) should exceed prefetch cycles (%d)", base.Cycles, pref.Cycles)
	}
	if ratio := float64(base.MemRefs) / float64(pref.MemRefs); ratio < 2 {
		t.Fatalf("improvement ratio %.2f; expected clear (>2x) advantage", ratio)
	}
}

func TestPoolExhausted(t *testing.T) {
	m := smallMachine(4)
	as := m.NewSpace()
	var err error
	m.Spawn("attacker", 0, as, func(c *sim.Core) {
		target := c.Alloc(mem.PageSize)
		th := core.Calibrate(c, 16)
		pool := NewPool(c, target, 8) // far too small
		_, err = BuildPrefetch(c, target, Options{Desired: 8, Pool: pool, Thresholds: th})
	})
	m.Run()
	if err != ErrPoolExhausted {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
}

func TestDesiredValidation(t *testing.T) {
	m := smallMachine(5)
	var err1, err2 error
	m.Spawn("attacker", 0, nil, func(c *sim.Core) {
		target := c.Alloc(mem.PageSize)
		_, err1 = BuildPrefetch(c, target, Options{Desired: 0})
		_, err2 = BuildBaseline(c, target, Options{Desired: -1})
	})
	m.Run()
	if err1 == nil || err2 == nil {
		t.Fatal("non-positive Desired accepted")
	}
}

func TestNewPoolShape(t *testing.T) {
	m := smallMachine(6)
	m.Spawn("attacker", 0, nil, func(c *sim.Core) {
		target := c.Alloc(mem.PageSize) + 3*mem.LineSize + 7
		pool := NewPool(c, target, 16)
		if len(pool) != 16 {
			t.Errorf("pool size = %d, want 16", len(pool))
		}
		for _, va := range pool {
			if va.PageOffset() != 3*mem.LineSize {
				t.Errorf("candidate %#x has page offset %#x, want %#x",
					uint64(va), va.PageOffset(), 3*mem.LineSize)
			}
		}
	})
	m.Run()
}

func TestHugePoolDensity(t *testing.T) {
	// On the full Skylake geometry a page-offset pool is congruent with
	// probability 1/128; a huge-page pool hits 1/4 (slice bits only).
	m := sim.MustNewMachine(platform.Skylake(), 1<<30, 31)
	as := m.NewSpace()
	var target mem.VAddr
	var pool []mem.VAddr
	m.Spawn("a", 0, as, func(c *sim.Core) {
		var err error
		target, pool, err = NewHugePool(c, m.H.Config().LLCSetsPerSlice, 256)
		if err != nil {
			t.Error(err)
		}
	})
	m.Run()
	geo := m.H.Geometry()
	tl := as.MustTranslate(target).Line()
	congruent := 0
	for _, va := range pool {
		la := as.MustTranslate(va).Line()
		if geo.Set(la) != geo.Set(tl) {
			t.Fatal("huge-page candidate has wrong set bits — contiguity broken")
		}
		if geo.Congruent(la, tl) {
			congruent++
		}
	}
	frac := float64(congruent) / float64(len(pool))
	if frac < 0.15 || frac > 0.4 {
		t.Fatalf("congruent fraction %.2f, want ≈1/slices (0.25)", frac)
	}
}

func TestHugePoolConstructionIsCheaper(t *testing.T) {
	m := sim.MustNewMachine(platform.Skylake(), 1<<31, 32)
	as := m.NewSpace()
	var huge, norm Result
	m.Spawn("a", 0, as, func(c *sim.Core) {
		th := core.Calibrate(c, 32)
		ht, hp, err := NewHugePool(c, m.H.Config().LLCSetsPerSlice, 256)
		if err != nil {
			t.Error(err)
			return
		}
		huge, err = BuildPrefetch(c, ht, Options{Desired: 16, Pool: hp, Thresholds: th})
		if err != nil {
			t.Errorf("huge build: %v", err)
		}
		nt := c.Alloc(mem.PageSize)
		np := NewPool(c, nt, 8192)
		norm, err = BuildPrefetch(c, nt, Options{Desired: 16, Pool: np, Thresholds: th})
		if err != nil {
			t.Errorf("normal build: %v", err)
		}
	})
	m.Run()
	if huge.Tested*8 > norm.Tested {
		t.Fatalf("huge-page pool tested %d candidates vs %d — expected ≳30x fewer", huge.Tested, norm.Tested)
	}
}
