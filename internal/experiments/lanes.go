package experiments

import (
	"fmt"

	"leakyway/internal/channel"
	"leakyway/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "ablate-lanes",
		Title: "Extension — multi-lane NTP+NTP bandwidth scaling",
		Paper: "the paper uses one two-set lane; extra lanes multiply bits per iteration until receiver probing saturates the interval",
		Run:   runAblateLanes,
	})
}

func runAblateLanes(ctx *Context) (*Result, error) {
	res := &Result{}
	cfg := ctx.Platforms[0]
	bits := ctx.Trials(2000)
	rows := [][]string{}
	laneCounts := []int{1, 2, 4, 8}
	// Each extra lane adds one timed prefetch (~300 cycles worst case) of
	// receiver work per iteration; sweep a few interval offsets around
	// the expected knee and keep the best. The lanes × offsets grid
	// flattens into independent cells sharded across free workers.
	offsets := []int64{120, 400, 900}
	reps := make([]channel.Report, len(laneCounts)*len(offsets))
	ctx.Parallel(len(reps), func(cell int) {
		lanes := laneCounts[cell/len(offsets)]
		base := channel.DefaultConfig(cfg.Name, cfg.FreqGHz)
		base.NoisePeriod = 0
		c := base
		c.Interval = base.ProtocolOverhead + int64(lanes)*330 + offsets[cell%len(offsets)]
		seed := ctx.SeedFor(fmt.Sprintf("lanes%d", lanes))
		m := sim.MustNewMachine(cfg, 1<<30, seed)
		reps[cell], _ = channel.RunNTPNTPLanes(m, c, lanes, channel.RandomMessage(bits, seed))
	})
	for li, lanes := range laneCounts {
		best := channel.Report{}
		for oi := range offsets {
			if rep := reps[li*len(offsets)+oi]; rep.CapacityKBps > best.CapacityKBps {
				best = rep
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", lanes),
			fmt.Sprintf("%d", 2*lanes),
			fmt.Sprintf("%d", best.Interval),
			fmt.Sprintf("%.2f%%", 100*best.BER),
			fmt.Sprintf("%.1f KB/s", best.CapacityKBps),
		})
		res.Metric(fmt.Sprintf("lanes%d_capacity", lanes), best.CapacityKBps)
	}
	renderTable(ctx, []string{"lanes", "LLC sets", "best interval (cyc)", "BER", "capacity"}, rows)
	ctx.Printf("aggregate capacity grows sublinearly: the fixed per-iteration protocol cost amortizes\n")
	ctx.Printf("while per-lane probe work accumulates\n")
	return res, nil
}
