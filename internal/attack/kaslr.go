package attack

import (
	"math/rand"

	"leakyway/internal/hier"
	"leakyway/internal/mem"
	"leakyway/internal/sim"
)

// KASLR break via prefetch timing (Gruss et al., surveyed in the paper's
// Section VI-C): the kernel image is mapped at a randomized slot inside a
// known region. Prefetches of kernel addresses never fault, but the
// page-table walk they trigger stops at the first absent entry — so the
// walk, and therefore the prefetch, takes measurably longer at the one
// candidate slot whose translation fully resolves.

// KASLRConfig parameterizes the break.
type KASLRConfig struct {
	// Slots is the number of possible load addresses (the entropy).
	Slots int
	// SlotBytes is the spacing between candidate bases.
	SlotBytes uint64
	// ImageBytes is the size of the mapped kernel image.
	ImageBytes uint64
	// Probes is the number of timing samples per candidate.
	Probes int
}

// KASLRResult reports the run.
type KASLRResult struct {
	// TrueSlot is the secret slide the harness chose.
	TrueSlot int
	// RecoveredSlot is the attacker's answer (argmax probe time).
	RecoveredSlot int
	// SlotMeans are the per-candidate mean probe times.
	SlotMeans []float64
	// Probes is the total number of timing measurements spent.
	Probes int
}

// kaslrRegionBase is the bottom of the modelled kernel text region. High
// enough that user allocations never share upper-level entries with it.
const kaslrRegionBase = mem.VAddr(0xffff_8000_0000_0000 >> 16 << 16) // keep arithmetic simple

// RunKASLR maps a kernel image at a seed-chosen random slot and mounts the
// prefetch-timing attack from an unprivileged agent.
func RunKASLR(platformCfg hier.Config, cfg KASLRConfig, seed int64) KASLRResult {
	if cfg.Slots <= 0 {
		cfg.Slots = 128
	}
	if cfg.SlotBytes == 0 {
		cfg.SlotBytes = 2 << 20 // 2 MiB, one level-2 entry
	}
	if cfg.ImageBytes == 0 {
		cfg.ImageBytes = 1 << 20
	}
	if cfg.Probes <= 0 {
		cfg.Probes = 8
	}
	m := sim.MustNewMachine(platformCfg, 1<<30, seed)

	// The "boot" chooses the secret slide and maps the kernel there.
	rng := rand.New(rand.NewSource(seed ^ 0x5a1de))
	trueSlot := rng.Intn(cfg.Slots)
	kernel := m.KernelSpace()
	base := kaslrRegionBase + mem.VAddr(uint64(trueSlot)*cfg.SlotBytes)
	if err := kernel.AllocAt(base, cfg.ImageBytes); err != nil {
		panic(err)
	}

	res := KASLRResult{TrueSlot: trueSlot, SlotMeans: make([]float64, cfg.Slots)}
	m.Spawn("attacker", 0, nil, func(c *sim.Core) {
		for slot := 0; slot < cfg.Slots; slot++ {
			va := kaslrRegionBase + mem.VAddr(uint64(slot)*cfg.SlotBytes)
			var sum int64
			for p := 0; p < cfg.Probes; p++ {
				sum += c.TimedPrefetchProbe(va)
				res.Probes++
			}
			res.SlotMeans[slot] = float64(sum) / float64(cfg.Probes)
		}
	})
	m.Run()

	best := 0
	for slot, v := range res.SlotMeans {
		if v > res.SlotMeans[best] {
			best = slot
		}
	}
	res.RecoveredSlot = best
	return res
}
